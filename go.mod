module hydra

go 1.23
