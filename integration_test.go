// Integration tests: end-to-end checks of the paper's headline claims at
// reduced (but still meaningful) scale, guarding the numbers recorded in
// EXPERIMENTS.md against regressions.
package hydra_test

import (
	"testing"

	"hydra/internal/core"
	"hydra/internal/experiments"
	"hydra/internal/partition"
	"hydra/internal/workloads"
)

// Fig. 1 claim: HYDRA detects intrusions faster than SingleCore on the UAV
// case study at every platform size, with double-digit percentage
// improvement at full horizon.
func TestIntegrationFig1Claim(t *testing.T) {
	if testing.Short() {
		t.Skip("full-horizon case study")
	}
	res, err := experiments.RunFig1(experiments.Fig1Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		hyd, sc := row.Schemes[0], row.Schemes[1]
		if row.ImprovementPct < 10 {
			t.Errorf("M=%d: improvement %.2f%% below the double-digit claim", row.M, row.ImprovementPct)
		}
		if hyd.Misses != 0 || sc.Misses != 0 {
			t.Errorf("M=%d: real-time deadline misses observed", row.M)
		}
		// ECDF domination: HYDRA's CDF is never below SingleCore's by more
		// than sampling noise at any plotted point.
		for i := range hyd.Series {
			h, s := hyd.Series[i][1], sc.Series[i][1]
			if h < s-0.05 {
				t.Errorf("M=%d: HYDRA CDF %0.3f below SingleCore %0.3f at x=%v",
					row.M, h, s, hyd.Series[i][0])
			}
		}
	}
	// Improvement grows markedly beyond 2 cores (paper: 19.8 -> 27.2/29.8).
	if res.Rows[1].ImprovementPct <= res.Rows[0].ImprovementPct {
		t.Errorf("improvement should grow from 2 to 4 cores: %v vs %v",
			res.Rows[0].ImprovementPct, res.Rows[1].ImprovementPct)
	}
}

// Fig. 2 claim: zero improvement at low utilization, approaching 100% at
// the top of the sweep, with HYDRA dominating everywhere.
func TestIntegrationFig2Claim(t *testing.T) {
	pts, err := experiments.RunFig2(experiments.Fig2Config{M: 2, TasksetsPerPoint: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].ImprovementPct != 0 {
		t.Errorf("lowest utilization improvement = %v, want 0", pts[0].ImprovementPct)
	}
	last := pts[len(pts)-1]
	if last.ImprovementPct < 90 {
		t.Errorf("highest utilization improvement = %v, want >= 90", last.ImprovementPct)
	}
	for _, p := range pts {
		if p.Accepted[0] < p.Accepted[1] {
			t.Errorf("U=%v: HYDRA accepted %d < SingleCore %d", p.TotalUtil, p.Accepted[0], p.Accepted[1])
		}
	}
}

// Fig. 3 claim: the HYDRA-vs-optimal gap is zero through medium utilization
// and bounded by ~22% at the top.
func TestIntegrationFig3Claim(t *testing.T) {
	pts, err := experiments.RunFig3(experiments.Fig3Config{TasksetsPerPoint: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.TotalUtil <= 1.2 && p.MeanGapPct != 0 {
			t.Errorf("U=%v: gap %v should be zero at low/medium utilization", p.TotalUtil, p.MeanGapPct)
		}
		if p.MaxGapPct > 30 {
			t.Errorf("U=%v: max gap %v far above the paper's ~22%% bound", p.TotalUtil, p.MaxGapPct)
		}
	}
}

// Every registered workload runs the whole pipeline: allocate with both
// schemes, verify with both analyses, and confirm HYDRA's cumulative
// tightness is never below SingleCore's on these case studies.
func TestIntegrationWorkloadPipeline(t *testing.T) {
	for _, name := range workloads.Names() {
		w, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		part, err := core.PartitionForHydra(w.RT, 4, partition.BestFit)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		in, err := core.NewInput(4, w.RT, part, w.Sec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		hyd := core.Hydra(in, core.HydraOptions{})
		if !hyd.Schedulable {
			t.Fatalf("%s: HYDRA failed: %s", name, hyd.Reason)
		}
		if err := core.Verify(in, hyd); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := core.VerifyExact(in, hyd); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sc := core.SingleCore(4, w.RT, w.Sec, partition.BestFit)
		if sc.Schedulable && hyd.Cumulative < sc.Cumulative-1e-9 {
			t.Errorf("%s: HYDRA tightness %v below SingleCore %v", name, hyd.Cumulative, sc.Cumulative)
		}
		// The explainer agrees with the plain run.
		ex := core.ExplainHydra(in)
		if !ex.Result.Schedulable || ex.Result.Cumulative != hyd.Cumulative {
			t.Errorf("%s: explainer diverged", name)
		}
	}
}
