// Command hydra allocates security tasks onto a partitioned multicore
// real-time system, implementing the HYDRA heuristic of Hasan et al.
// (DATE 2018) alongside the SingleCore, exhaustive-optimal, and bin-packing
// baselines. Any scheme registered in the allocator registry can be selected
// by name (-list-schemes prints the catalogue).
//
// Usage:
//
//	hydra -input taskset.json [-scheme <name>] [-policy ...]
//
// The input format is documented in internal/tasksetio; see
// examples/quickstart for a minimal programmatic use of the library.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hydra/internal/core"
	"hydra/internal/partition"
	"hydra/internal/report"
	"hydra/internal/tasksetio"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hydra:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("hydra", flag.ContinueOnError)
	input := fs.String("input", "-", "taskset JSON file ('-' for stdin)")
	scheme := fs.String("scheme", "hydra", "allocation scheme by registry name (see -list-schemes)")
	policy := fs.String("policy", "best-tightness", "hydra scheme: commitment policy: best-tightness, first-feasible or least-loaded")
	heuristic := fs.String("heuristic", "best-fit", "RT partition heuristic: first-fit, best-fit, worst-fit or next-fit")
	useGP := fs.Bool("gp", false, "hydra scheme: solve period adaptation with the geometric-programming solver instead of the closed form")
	explain := fs.Bool("explain", false, "hydra scheme: print the per-task decision trace (candidate cores, periods, hints)")
	refine := fs.Bool("refine", false, "opt scheme: refine per-core periods with the signomial sequential-GP maximizer")
	format := fs.String("format", "text", "output format: text or csv")
	jsonOut := fs.Bool("json", false, "emit the result as JSON (the tasksetio.ResultJSON interchange format)")
	list := fs.Bool("list-schemes", false, "print the registered allocation schemes and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(stdout, strings.Join(core.Names(), "\n"))
		return nil
	}

	problem, err := tasksetio.Load(*input, stdin)
	if err != nil {
		return err
	}
	h, err := partition.ParseHeuristic(*heuristic)
	if err != nil {
		return err
	}

	// Resolve the allocator. The schemes with CLI modifier flags are built
	// directly so -policy/-gp/-refine/-heuristic take effect; everything
	// else comes from the registry by name.
	var alloc core.Allocator
	switch *scheme {
	case "hydra":
		pol, err := parsePolicy(*policy)
		if err != nil {
			return err
		}
		alloc = core.NewHydraAllocator(core.HydraOptions{Policy: pol, UseGP: *useGP})
	case "opt":
		alloc = core.NewOptimalAllocator(core.OptimalOptions{RefineJointGP: *refine, MaxAssignments: 1 << 20})
	case "singlecore":
		alloc = core.NewSingleCoreAllocator(h)
	default:
		var ok bool
		if alloc, ok = core.Lookup(*scheme); !ok {
			return fmt.Errorf("unknown scheme %q (available: %s)", *scheme, strings.Join(core.Names(), ", "))
		}
	}

	in, err := tasksetio.BuildInput(problem, alloc, h)
	if err != nil {
		return err
	}
	if *explain && *scheme == "hydra" {
		// ExplainHydra traces Algorithm 1 in the paper's default
		// configuration; refuse combinations where the trace would describe
		// a different allocation than the result below.
		if *policy != "best-tightness" || *useGP {
			return fmt.Errorf("-explain supports only the default best-tightness closed-form configuration (got -policy %s, -gp %v)", *policy, *useGP)
		}
		if *jsonOut {
			return fmt.Errorf("-explain writes a text trace and cannot be combined with -json")
		}
		ex := core.ExplainHydra(in)
		if err := ex.WriteText(stdout); err != nil {
			return err
		}
		if !ex.Result.Schedulable {
			fmt.Fprintf(stdout, "UNSCHEDULABLE (%s): %s\n", ex.Result.Scheme, ex.Result.Reason)
			return nil
		}
		fmt.Fprintln(stdout)
	}
	res := alloc.Allocate(in)

	if !res.Schedulable {
		if *jsonOut {
			return tasksetio.EncodeResult(stdout, problem, res)
		}
		fmt.Fprintf(stdout, "UNSCHEDULABLE (%s): %s\n", res.Scheme, res.Reason)
		return nil
	}
	if err := core.Verify(in, res); err != nil {
		return fmt.Errorf("internal error: result failed verification: %w", err)
	}
	if *jsonOut {
		return tasksetio.EncodeResult(stdout, problem, res)
	}

	tb := report.NewTable("task", "core", "period_ms", "tightness", "weight")
	for i, s := range problem.Sec {
		tb.AddRowf("%s\t%d\t%s\t%s\t%s",
			s.Name, res.Assignment[i], report.F(res.Periods[i]), report.F(res.Tightness[i]), report.F(s.EffectiveWeight()))
	}
	switch *format {
	case "text":
		fmt.Fprintf(stdout, "scheme: %s  cores: %d  cumulative tightness: %s\n\n", res.Scheme, problem.M, report.F(res.Cumulative))
		if err := tb.WriteText(stdout); err != nil {
			return err
		}
	case "csv":
		if err := tb.WriteCSV(stdout); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	return nil
}

func parsePolicy(s string) (core.Policy, error) {
	switch s {
	case "best-tightness":
		return core.BestTightness, nil
	case "first-feasible":
		return core.FirstFeasible, nil
	case "least-loaded":
		return core.LeastLoaded, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}
