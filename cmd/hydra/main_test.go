package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hydra/internal/tasksetio"
)

const sampleDoc = `{
  "cores": 2,
  "rt_tasks": [
    {"name": "ctl", "wcet_ms": 5, "period_ms": 20},
    {"name": "nav", "wcet_ms": 30, "period_ms": 100}
  ],
  "security_tasks": [
    {"name": "tw", "wcet_ms": 50, "desired_period_ms": 1000, "max_period_ms": 10000},
    {"name": "bro", "wcet_ms": 30, "desired_period_ms": 500, "max_period_ms": 5000}
  ]
}`

func runCLI(t *testing.T, args []string, stdin string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, strings.NewReader(stdin), &sb)
	return sb.String(), err
}

func TestSchemesOnStdin(t *testing.T) {
	for _, scheme := range []string{"hydra", "singlecore", "opt"} {
		out, err := runCLI(t, []string{"-scheme", scheme}, sampleDoc)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if !strings.Contains(out, "cumulative tightness") {
			t.Fatalf("%s output missing summary:\n%s", scheme, out)
		}
		if !strings.Contains(out, "tw") || !strings.Contains(out, "bro") {
			t.Fatalf("%s output missing tasks:\n%s", scheme, out)
		}
	}
}

func TestInputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "taskset.json")
	if err := os.WriteFile(path, []byte(sampleDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, []string{"-input", path}, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hydra") {
		t.Fatalf("output:\n%s", out)
	}
	if _, err := runCLI(t, []string{"-input", filepath.Join(t.TempDir(), "missing.json")}, ""); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestCSVFormat(t *testing.T) {
	out, err := runCLI(t, []string{"-format", "csv"}, sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "task,core,period_ms") {
		t.Fatalf("csv output:\n%s", out)
	}
}

func TestGPFlagAgrees(t *testing.T) {
	plain, err := runCLI(t, nil, sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := runCLI(t, []string{"-gp"}, sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	// Periods are printed with 3 decimals; closed form and GP agree to that.
	if plain != gp {
		t.Fatalf("closed form and GP outputs differ:\n%s\nvs\n%s", plain, gp)
	}
}

func TestPoliciesAndHeuristics(t *testing.T) {
	for _, pol := range []string{"best-tightness", "first-feasible", "least-loaded"} {
		if _, err := runCLI(t, []string{"-policy", pol}, sampleDoc); err != nil {
			t.Fatalf("policy %s: %v", pol, err)
		}
	}
	for _, h := range []string{"first-fit", "best-fit", "worst-fit", "next-fit"} {
		if _, err := runCLI(t, []string{"-heuristic", h}, sampleDoc); err != nil {
			t.Fatalf("heuristic %s: %v", h, err)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	out, err := runCLI(t, []string{"-json"}, sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := tasksetio.DecodeResult(strings.NewReader(out))
	if err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if !rj.Schedulable || rj.Scheme != "hydra" || len(rj.Tasks) != 2 || len(rj.RTPartition) != 2 {
		t.Fatalf("unexpected JSON result: %+v", rj)
	}
	// Unschedulable verdicts are JSON too under -json.
	doc := `{
	  "cores": 1,
	  "rt_tasks": [{"name": "a", "wcet_ms": 90, "period_ms": 100}],
	  "security_tasks": [{"name": "s", "wcet_ms": 50, "desired_period_ms": 100, "max_period_ms": 120}]
	}`
	out, err = runCLI(t, []string{"-json"}, doc)
	if err != nil {
		t.Fatal(err)
	}
	rj, err = tasksetio.DecodeResult(strings.NewReader(out))
	if err != nil {
		t.Fatalf("-json unschedulable output does not parse: %v\n%s", err, out)
	}
	if rj.Schedulable || rj.Reason == "" {
		t.Fatalf("unexpected JSON verdict: %+v", rj)
	}
	// The explain trace is plain text; mixing it with -json is refused.
	if _, err := runCLI(t, []string{"-json", "-explain"}, sampleDoc); err == nil {
		t.Fatal("-json with -explain must error")
	}
}

func TestUnschedulableReported(t *testing.T) {
	doc := `{
	  "cores": 2,
	  "rt_tasks": [
	    {"name": "a", "wcet_ms": 90, "period_ms": 100},
	    {"name": "b", "wcet_ms": 90, "period_ms": 100}
	  ],
	  "security_tasks": [
	    {"name": "s", "wcet_ms": 50, "desired_period_ms": 100, "max_period_ms": 200}
	  ]
	}`
	out, err := runCLI(t, nil, doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "UNSCHEDULABLE") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-scheme", "bogus"},
		{"-policy", "bogus"},
		{"-heuristic", "bogus"},
		{"-format", "bogus"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args, sampleDoc); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
	if _, err := runCLI(t, nil, "{"); err == nil {
		t.Error("bad JSON must error")
	}
}

func TestRefineOpt(t *testing.T) {
	out, err := runCLI(t, []string{"-scheme", "opt", "-refine"}, sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "opt") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestExplainFlag(t *testing.T) {
	out, err := runCLI(t, []string{"-explain"}, sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "* core") || !strings.Contains(out, "cumulative tightness") {
		t.Fatalf("explain output incomplete:\n%s", out)
	}
	// Infeasible workload: the trace plus the verdict, no panic.
	doc := `{
	  "cores": 2,
	  "rt_tasks": [
	    {"name": "a", "wcet_ms": 90, "period_ms": 100},
	    {"name": "b", "wcet_ms": 90, "period_ms": 100}
	  ],
	  "security_tasks": [
	    {"name": "s", "wcet_ms": 50, "desired_period_ms": 100, "max_period_ms": 200}
	  ]
	}`
	out, err = runCLI(t, []string{"-explain"}, doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hint:") || !strings.Contains(out, "UNSCHEDULABLE") {
		t.Fatalf("explain infeasible output:\n%s", out)
	}
	// The trace only describes the default configuration; combinations that
	// would allocate differently are refused rather than mis-explained.
	if _, err := runCLI(t, []string{"-explain", "-policy", "least-loaded"}, sampleDoc); err == nil {
		t.Fatal("-explain with a non-default policy must error")
	}
	if _, err := runCLI(t, []string{"-explain", "-gp"}, sampleDoc); err == nil {
		t.Fatal("-explain with -gp must error")
	}
}
