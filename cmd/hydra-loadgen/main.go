// Command hydra-loadgen drives a hydra-serve instance with a configurable
// request mix and reports achieved throughput and latency quantiles. It is
// the measurement tool behind ROADMAP item "prove the concurrent-load story"
// and the CI load smoke.
//
// Two operating modes:
//
//   - open loop (-qps > 0): arrivals are scheduled on the wall clock at the
//     target rate regardless of completions, for a fixed -duration. A server
//     that cannot keep up shows a growing backlog and rising quantiles
//     instead of a silently throttled request rate.
//   - closed loop (-qps 0, the default): every worker fires back to back,
//     measuring saturation throughput.
//
// The target is either a live server (-url) or a throwaway in-process server
// (-self, listening on 127.0.0.1:0) so CI and A/B cache experiments need no
// separate process. -self-cache-stripes 1 recreates the old single-mutex
// result cache for before/after comparisons.
//
// Output is a JSON report on stdout, or benchjson-compatible benchmark lines
// when -bench NAME is given (appendable to a bench.txt consumed by
// cmd/benchjson).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"hydra/internal/loadgen"
	"hydra/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hydra-loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hydra-loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "", "target server base URL, e.g. http://127.0.0.1:8080 (mutually exclusive with -self)")
	self := fs.Bool("self", false, "serve an in-process server on 127.0.0.1:0 and load-test it (no external process needed)")
	selfCache := fs.Int("self-cache", 1024, "result-cache capacity of the -self server")
	selfStripes := fs.Int("self-cache-stripes", 0, "result-cache stripes of the -self server (0 = GOMAXPROCS-derived default; 1 = old single-mutex cache, for A/B runs)")
	duration := fs.Duration("duration", 5*time.Second, "measured run length")
	qps := fs.Float64("qps", 0, "open-loop target arrival rate; 0 = closed loop (saturation throughput)")
	workers := fs.Int("workers", 8, "concurrent request senders")
	mixFlag := fs.String("mix", "hit=1", "request-class mix as class=weight pairs over hit, cold, admit and churn, e.g. hit=0.9,cold=0.05,admit=0.04,churn=0.01")
	seed := fs.Int64("seed", 1, "class-selection RNG seed")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	bench := fs.String("bench", "", "emit benchjson-compatible benchmark lines named Benchmark<NAME>/<class> instead of the JSON report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*url == "") == !*self {
		return fmt.Errorf("exactly one of -url or -self is required")
	}
	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		return err
	}

	ctx := context.Background()
	base := *url
	if *self {
		addr, shutdown, err := startSelf(*selfCache, *selfStripes)
		if err != nil {
			return err
		}
		defer shutdown()
		base = "http://" + addr
		fmt.Fprintf(stderr, "hydra-loadgen: in-process server on %s (cache %d, stripes per -self-cache-stripes %d)\n", base, *selfCache, *selfStripes)
	}

	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:   base,
		Duration:  *duration,
		TargetQPS: *qps,
		Workers:   *workers,
		Mix:       mix,
		Seed:      *seed,
		Timeout:   *timeout,
	})
	if err != nil {
		return err
	}
	if *bench != "" {
		_, err = io.WriteString(stdout, rep.BenchLines(*bench))
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// startSelf boots an in-process hydra service on a loopback port and returns
// its address plus a shutdown func.
func startSelf(cacheSize, cacheStripes int) (string, func(), error) {
	svc, err := service.New(service.Config{CacheSize: cacheSize, CacheStripes: cacheStripes})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return "", nil, err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() { _ = srv.Serve(ln) }()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		svc.Close()
	}
	return ln.Addr().String(), shutdown, nil
}
