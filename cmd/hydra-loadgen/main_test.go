package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hydra/internal/loadgen"
)

// TestSelfModeJSONReport: -self boots an in-process server, runs the mix, and
// the stdout JSON decodes into a sane report.
func TestSelfModeJSONReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-self", "-duration", "200ms", "-workers", "2",
		"-mix", "hit=0.8,cold=0.1,admit=0.1", "-seed", "7",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	var rep loadgen.Report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout.String())
	}
	if rep.Completed == 0 || rep.AchievedRPS <= 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors in self-mode run: %+v", rep)
	}
}

// TestSelfModeBenchLines: -bench emits only benchjson-parsable lines.
func TestSelfModeBenchLines(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-self", "-self-cache-stripes", "1", "-duration", "150ms",
		"-workers", "2", "-bench", "LoadgenSmoke",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	out := strings.TrimSpace(stdout.String())
	if out == "" {
		t.Fatal("no bench output")
	}
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "BenchmarkLoadgenSmoke/") {
			t.Fatalf("unexpected stdout line %q (bench mode must print only benchmark lines)", line)
		}
		if !strings.Contains(line, "ns/op") || !strings.Contains(line, "req/s") {
			t.Fatalf("line %q lacks ns/op or req/s", line)
		}
	}
}

// TestBadFlags pins the CLI contract: conflicting or invalid flags error out
// before any traffic is generated.
func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{},                                      // neither -url nor -self
		{"-url", "http://x", "-self"},           // both
		{"-self", "-mix", "bogus=1"},            // unknown mix class
		{"-self", "-mix", "hit"},                // malformed mix
		{"-self", "-duration", "0s"},            // run too short
		{"-self", "-self-cache-stripes", "257"}, // out of range, rejected by service.New
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}
