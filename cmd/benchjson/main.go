// Command benchjson converts `go test -bench` text output (stdin) into a
// machine-readable JSON document (stdout), so CI can publish benchmark
// trajectories as artifacts instead of burying them in logs:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics carries every further "<value> <unit>" pair from the line
	// (B/op, allocs/op, and any custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(r io.Reader, w io.Writer) error {
	report := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		b, ok, err := parseLine(sc.Text())
		if err != nil {
			return err
		}
		if ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&report)
}

// parseLine parses one "BenchmarkX-8  10  123 ns/op  45 B/op ..." line; ok
// is false for every other line (package headers, PASS, ok, ...).
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil // e.g. "BenchmarkX ... --- SKIP" shapes
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("line %q: bad value %q", line, fields[i])
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = val
			seenNs = true
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = val
	}
	if !seenNs {
		return Benchmark{}, false, fmt.Errorf("line %q: no ns/op field", line)
	}
	return b, true, nil
}
