// Command benchjson converts `go test -bench` text output (stdin) into a
// machine-readable JSON document (stdout), so CI can publish benchmark
// trajectories as artifacts instead of burying them in logs:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchjson > BENCH.json
//
// It is also CI's bench-regression gate: -compare checks a fresh report
// against a committed baseline and fails (exit 1) when any benchmark
// tracked by the baseline slowed down beyond the tolerance:
//
//	benchjson -compare BENCH_baseline.json BENCH_new.json -tolerance 0.25
//
// ns/op gates lower-is-better; throughput metrics (req/s, from the load
// smoke) gate higher-is-better — a drop below baseline*(1-tolerance) fails.
// Other metric units (B/op, allocs/op, p99_ns, ...) are recorded but not
// gated.
//
// Benchmarks present only in the new report are listed as untracked (new
// code is not penalized); benchmarks that vanished are flagged but do not
// fail the gate (renames happen — refresh the baseline instead).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics carries every further "<value> <unit>" pair from the line
	// (B/op, allocs/op, and any custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := cli(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// cli dispatches between convert mode (default) and compare mode.
func cli(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	compareFlag := fs.Bool("compare", false, "compare two reports: benchjson -compare old.json new.json")
	tolerance := fs.Float64("tolerance", 0.25, "allowed ns/op slowdown fraction before -compare fails (0.25 = +25%)")
	// Collect positionals while letting flags appear anywhere on the line
	// (stdlib flag parsing stops at the first positional otherwise).
	var reports []string
	for {
		if err := fs.Parse(args); err != nil {
			return err
		}
		args = fs.Args()
		if len(args) == 0 {
			break
		}
		reports = append(reports, args[0])
		args = args[1:]
	}
	if !*compareFlag {
		if len(reports) != 0 {
			return fmt.Errorf("convert mode reads stdin and takes no arguments (use -compare old.json new.json)")
		}
		return run(stdin, stdout)
	}
	if len(reports) != 2 {
		return fmt.Errorf("-compare needs exactly two reports: old.json new.json")
	}
	if *tolerance < 0 {
		return fmt.Errorf("-tolerance must be >= 0, got %g", *tolerance)
	}
	return compare(reports[0], reports[1], *tolerance, stdout)
}

// loadReport reads a report produced by convert mode.
func loadReport(path string) (map[string]Benchmark, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Benchmark, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		out[b.Name] = b
	}
	return out, nil
}

// higherBetter lists metric units where larger values are improvements, so
// the regression direction flips: a drop below old*(1-tolerance) fails. All
// other units (B/op, allocs/op, p99_ns, ...) follow the default
// lower-is-better direction like ns/op.
var higherBetter = map[string]bool{
	"req/s": true,
}

// compare gates newPath against the oldPath baseline: any benchmark tracked
// by the baseline whose ns/op grew beyond old*(1+tolerance) is a regression
// and fails the run. Metric pairs tracked by both reports are gated too, in
// the direction their unit implies (see higherBetter).
func compare(oldPath, newPath string, tolerance float64, w io.Writer) error {
	oldBench, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newBench, err := loadReport(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(oldBench))
	for name := range oldBench {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	for _, name := range names {
		old := oldBench[name]
		cur, ok := newBench[name]
		if !ok {
			fmt.Fprintf(w, "MISSING  %s: in baseline but not in new report (refresh the baseline?)\n", name)
			continue
		}
		if old.NsPerOp <= 0 {
			fmt.Fprintf(w, "SKIP     %s: baseline ns/op is %g\n", name, old.NsPerOp)
			continue
		}
		ratio := cur.NsPerOp / old.NsPerOp
		switch {
		case ratio > 1+tolerance:
			fmt.Fprintf(w, "FAIL     %s: %.0f -> %.0f ns/op (%+.1f%%, tolerance %.0f%%)\n",
				name, old.NsPerOp, cur.NsPerOp, (ratio-1)*100, tolerance*100)
			regressions = append(regressions, name)
		default:
			fmt.Fprintf(w, "OK       %s: %.0f -> %.0f ns/op (%+.1f%%)\n",
				name, old.NsPerOp, cur.NsPerOp, (ratio-1)*100)
		}
		// Gate higher-is-better metrics tracked by both reports (req/s from
		// the load smoke): a throughput drop is a regression even when mean
		// latency stayed flat.
		units := make([]string, 0, len(old.Metrics))
		for unit := range old.Metrics {
			if higherBetter[unit] {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			oldVal := old.Metrics[unit]
			curVal, ok := cur.Metrics[unit]
			if !ok || oldVal <= 0 {
				continue
			}
			mRatio := curVal / oldVal
			if mRatio < 1-tolerance {
				fmt.Fprintf(w, "FAIL     %s: %.1f -> %.1f %s (%+.1f%%, tolerance -%.0f%%)\n",
					name, oldVal, curVal, unit, (mRatio-1)*100, tolerance*100)
				regressions = append(regressions, name+" "+unit)
			} else {
				fmt.Fprintf(w, "OK       %s: %.1f -> %.1f %s (%+.1f%%)\n",
					name, oldVal, curVal, unit, (mRatio-1)*100)
			}
		}
	}
	untracked := make([]string, 0)
	for name := range newBench {
		if _, ok := oldBench[name]; !ok {
			untracked = append(untracked, name)
		}
	}
	sort.Strings(untracked)
	for _, name := range untracked {
		fmt.Fprintf(w, "NEW      %s: %.0f ns/op (untracked; add to the baseline)\n", name, newBench[name].NsPerOp)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%: %s",
			len(regressions), tolerance*100, strings.Join(regressions, ", "))
	}
	fmt.Fprintf(w, "all %d tracked benchmarks within tolerance\n", len(names))
	return nil
}

func run(r io.Reader, w io.Writer) error {
	report := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		b, ok, err := parseLine(sc.Text())
		if err != nil {
			return err
		}
		if ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&report)
}

// parseLine parses one "BenchmarkX-8  10  123 ns/op  45 B/op ..." line; ok
// is false for every other line (package headers, PASS, ok, ...).
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil // e.g. "BenchmarkX ... --- SKIP" shapes
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("line %q: bad value %q", line, fields[i])
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = val
			seenNs = true
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = val
	}
	if !seenNs {
		return Benchmark{}, false, fmt.Errorf("line %q: no ns/op field", line)
	}
	return b, true, nil
}
