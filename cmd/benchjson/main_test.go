package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: hydra/internal/service
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServeAllocateCold     	      10	     44401 ns/op	   14735 B/op	     135 allocs/op
BenchmarkServeAllocateCacheHit 	    1000	      4187.5 ns/op	   10737 B/op	      76 allocs/op
PASS
ok  	hydra/internal/service	0.007s
pkg: hydra/internal/engine
BenchmarkEngineGrid/workers=8-8 	       1	  31415926 ns/op
ok  	hydra/internal/engine	0.100s
`

func TestRunParsesBenchOutput(t *testing.T) {
	var sb strings.Builder
	if err := run(strings.NewReader(sampleBenchOutput), &sb); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3:\n%s", len(rep.Benchmarks), sb.String())
	}
	cold := rep.Benchmarks[0]
	if cold.Name != "BenchmarkServeAllocateCold" || cold.Iterations != 10 || cold.NsPerOp != 44401 {
		t.Fatalf("cold: %+v", cold)
	}
	if cold.Metrics["B/op"] != 14735 || cold.Metrics["allocs/op"] != 135 {
		t.Fatalf("cold metrics: %+v", cold.Metrics)
	}
	hit := rep.Benchmarks[1]
	if hit.NsPerOp != 4187.5 {
		t.Fatalf("hit: %+v", hit)
	}
	grid := rep.Benchmarks[2]
	if grid.Name != "BenchmarkEngineGrid/workers=8-8" || grid.NsPerOp != 31415926 || grid.Metrics != nil {
		t.Fatalf("grid: %+v", grid)
	}
}

func TestRunEmptyInput(t *testing.T) {
	var sb strings.Builder
	if err := run(strings.NewReader("PASS\nok x 0.1s\n"), &sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != `{
  "benchmarks": []
}` {
		t.Fatalf("empty report: %s", got)
	}
}

func TestRunRejectsMalformedBenchLine(t *testing.T) {
	if err := run(strings.NewReader("BenchmarkX 10 garbage ns/op\n"), &strings.Builder{}); err == nil {
		t.Fatal("malformed value must error")
	}
}

// writeReport marshals a Report into a temp file for compare tests.
func writeReport(t *testing.T, benchmarks ...Benchmark) string {
	t.Helper()
	body, err := json.Marshal(Report{Benchmarks: benchmarks})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The regression gate's two contractual cases: a synthetic 2x slowdown
// fails, and comparing a report against itself passes.
func TestCompareFailsOnSyntheticRegression(t *testing.T) {
	base := writeReport(t,
		Benchmark{Name: "BenchmarkServeAllocateCold", Iterations: 10, NsPerOp: 40000},
		Benchmark{Name: "BenchmarkServeAllocateCacheHit", Iterations: 100, NsPerOp: 4000},
	)
	slow := writeReport(t,
		Benchmark{Name: "BenchmarkServeAllocateCold", Iterations: 10, NsPerOp: 80000}, // 2x
		Benchmark{Name: "BenchmarkServeAllocateCacheHit", Iterations: 100, NsPerOp: 4100},
	)
	var sb strings.Builder
	err := cli([]string{"-compare", base, slow, "-tolerance", "0.25"}, nil, &sb)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkServeAllocateCold") {
		t.Fatalf("2x regression must fail naming the benchmark, got %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "FAIL     BenchmarkServeAllocateCold") ||
		!strings.Contains(sb.String(), "OK       BenchmarkServeAllocateCacheHit") {
		t.Fatalf("report output:\n%s", sb.String())
	}
}

func TestCompareBaselineAgainstItselfPasses(t *testing.T) {
	base := writeReport(t,
		Benchmark{Name: "BenchmarkA", Iterations: 10, NsPerOp: 1234},
		Benchmark{Name: "BenchmarkB", Iterations: 10, NsPerOp: 5678},
	)
	var sb strings.Builder
	if err := cli([]string{"-compare", base, base}, nil, &sb); err != nil {
		t.Fatalf("self-comparison must pass: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "all 2 tracked benchmarks within tolerance") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestCompareWithinToleranceAndBoundaries(t *testing.T) {
	base := writeReport(t, Benchmark{Name: "BenchmarkA", NsPerOp: 1000})
	// +24% passes at 0.25, +26% fails.
	ok := writeReport(t, Benchmark{Name: "BenchmarkA", NsPerOp: 1240})
	if err := cli([]string{"-compare", base, ok}, nil, &strings.Builder{}); err != nil {
		t.Fatalf("+24%% within 25%% tolerance must pass: %v", err)
	}
	bad := writeReport(t, Benchmark{Name: "BenchmarkA", NsPerOp: 1260})
	if err := cli([]string{"-compare", base, bad}, nil, &strings.Builder{}); err == nil {
		t.Fatal("+26% beyond 25% tolerance must fail")
	}
	// A stricter tolerance flips the verdict on the same pair.
	if err := cli([]string{"-compare", base, ok, "-tolerance", "0.1"}, nil, &strings.Builder{}); err == nil {
		t.Fatal("+24% beyond 10% tolerance must fail")
	}
}

// Missing and untracked benchmarks are reported but do not fail the gate.
func TestCompareMissingAndUntracked(t *testing.T) {
	base := writeReport(t,
		Benchmark{Name: "BenchmarkGone", NsPerOp: 100},
		Benchmark{Name: "BenchmarkKept", NsPerOp: 100},
	)
	cur := writeReport(t,
		Benchmark{Name: "BenchmarkKept", NsPerOp: 100},
		Benchmark{Name: "BenchmarkNew", NsPerOp: 100},
	)
	var sb strings.Builder
	if err := cli([]string{"-compare", base, cur}, nil, &sb); err != nil {
		t.Fatalf("missing/untracked must not fail the gate: %v", err)
	}
	if !strings.Contains(sb.String(), "MISSING  BenchmarkGone") || !strings.Contains(sb.String(), "NEW      BenchmarkNew") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

// The higher-is-better direction: a req/s drop beyond tolerance fails even
// when ns/op is flat, a req/s gain never fails, and the boundary mirrors the
// ns/op one at baseline*(1-tolerance).
func TestCompareThroughputHigherIsBetter(t *testing.T) {
	base := writeReport(t, Benchmark{
		Name: "BenchmarkLoadgenSmoke/cache-hit", NsPerOp: 100000,
		Metrics: map[string]float64{"req/s": 1000, "p99_ns": 500000},
	})

	// 30% throughput drop at flat latency fails at 25% tolerance, naming the
	// metric.
	drop := writeReport(t, Benchmark{
		Name: "BenchmarkLoadgenSmoke/cache-hit", NsPerOp: 100000,
		Metrics: map[string]float64{"req/s": 700, "p99_ns": 500000},
	})
	var sb strings.Builder
	err := cli([]string{"-compare", base, drop, "-tolerance", "0.25"}, nil, &sb)
	if err == nil || !strings.Contains(err.Error(), "req/s") {
		t.Fatalf("-30%% req/s must fail naming the metric, got %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "FAIL     BenchmarkLoadgenSmoke/cache-hit: 1000.0 -> 700.0 req/s") {
		t.Fatalf("output:\n%s", sb.String())
	}

	// A large throughput GAIN passes — direction matters.
	gain := writeReport(t, Benchmark{
		Name: "BenchmarkLoadgenSmoke/cache-hit", NsPerOp: 100000,
		Metrics: map[string]float64{"req/s": 3000},
	})
	if err := cli([]string{"-compare", base, gain, "-tolerance", "0.25"}, nil, &strings.Builder{}); err != nil {
		t.Fatalf("+200%% req/s must pass: %v", err)
	}

	// Boundary: -24% passes at 0.25 tolerance, -26% fails.
	okDrop := writeReport(t, Benchmark{
		Name: "BenchmarkLoadgenSmoke/cache-hit", NsPerOp: 100000,
		Metrics: map[string]float64{"req/s": 760},
	})
	if err := cli([]string{"-compare", base, okDrop, "-tolerance", "0.25"}, nil, &strings.Builder{}); err != nil {
		t.Fatalf("-24%% req/s within 25%% tolerance must pass: %v", err)
	}

	// Lower-is-better units stay ungated beyond ns/op: a p99_ns blowup alone
	// is recorded, not failed (short smoke runs are tail-noisy), while a
	// simultaneous ns/op regression still fails on ns/op.
	tailOnly := writeReport(t, Benchmark{
		Name: "BenchmarkLoadgenSmoke/cache-hit", NsPerOp: 100000,
		Metrics: map[string]float64{"req/s": 1000, "p99_ns": 5000000},
	})
	if err := cli([]string{"-compare", base, tailOnly, "-tolerance", "0.25"}, nil, &strings.Builder{}); err != nil {
		t.Fatalf("p99_ns is not gated, must pass: %v", err)
	}

	// Baseline without the metric in the new report: skipped, not failed.
	noMetric := writeReport(t, Benchmark{
		Name: "BenchmarkLoadgenSmoke/cache-hit", NsPerOp: 100000,
	})
	if err := cli([]string{"-compare", base, noMetric, "-tolerance", "0.25"}, nil, &strings.Builder{}); err != nil {
		t.Fatalf("missing req/s in new report must not fail: %v", err)
	}
}

func TestCompareBadUsage(t *testing.T) {
	base := writeReport(t, Benchmark{Name: "BenchmarkA", NsPerOp: 1})
	cases := [][]string{
		{"-compare", base},                           // one report
		{"-compare", base, base, base},               // three reports
		{"-compare", base, "does-not-exist.json"},    // unreadable
		{"-compare", base, base, "-tolerance", "-1"}, // negative tolerance
		{"stray-arg"},                                // convert mode takes no args
	}
	for _, args := range cases {
		if err := cli(args, strings.NewReader(""), &strings.Builder{}); err == nil {
			t.Errorf("args %v must error", args)
		}
	}
	// Convert mode still works through the dispatcher.
	var sb strings.Builder
	if err := cli(nil, strings.NewReader(sampleBenchOutput), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "BenchmarkServeAllocateCold") {
		t.Fatalf("convert output:\n%s", sb.String())
	}
}
