package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: hydra/internal/service
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServeAllocateCold     	      10	     44401 ns/op	   14735 B/op	     135 allocs/op
BenchmarkServeAllocateCacheHit 	    1000	      4187.5 ns/op	   10737 B/op	      76 allocs/op
PASS
ok  	hydra/internal/service	0.007s
pkg: hydra/internal/engine
BenchmarkEngineGrid/workers=8-8 	       1	  31415926 ns/op
ok  	hydra/internal/engine	0.100s
`

func TestRunParsesBenchOutput(t *testing.T) {
	var sb strings.Builder
	if err := run(strings.NewReader(sampleBenchOutput), &sb); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3:\n%s", len(rep.Benchmarks), sb.String())
	}
	cold := rep.Benchmarks[0]
	if cold.Name != "BenchmarkServeAllocateCold" || cold.Iterations != 10 || cold.NsPerOp != 44401 {
		t.Fatalf("cold: %+v", cold)
	}
	if cold.Metrics["B/op"] != 14735 || cold.Metrics["allocs/op"] != 135 {
		t.Fatalf("cold metrics: %+v", cold.Metrics)
	}
	hit := rep.Benchmarks[1]
	if hit.NsPerOp != 4187.5 {
		t.Fatalf("hit: %+v", hit)
	}
	grid := rep.Benchmarks[2]
	if grid.Name != "BenchmarkEngineGrid/workers=8-8" || grid.NsPerOp != 31415926 || grid.Metrics != nil {
		t.Fatalf("grid: %+v", grid)
	}
}

func TestRunEmptyInput(t *testing.T) {
	var sb strings.Builder
	if err := run(strings.NewReader("PASS\nok x 0.1s\n"), &sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != `{
  "benchmarks": []
}` {
		t.Fatalf("empty report: %s", got)
	}
}

func TestRunRejectsMalformedBenchLine(t *testing.T) {
	if err := run(strings.NewReader("BenchmarkX 10 garbage ns/op\n"), &strings.Builder{}); err == nil {
		t.Fatal("malformed value must error")
	}
}
