// Command hydra-sim allocates a JSON taskset (same format as cmd/hydra),
// simulates the resulting partitioned schedule, and reports per-core
// statistics, intrusion-detection latency under random attack injection,
// and an optional text Gantt timeline — the per-taskset counterpart of the
// paper's Fig. 1 measurement.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hydra/internal/core"
	"hydra/internal/detect"
	"hydra/internal/experiments"
	"hydra/internal/partition"
	"hydra/internal/report"
	"hydra/internal/sim"
	"hydra/internal/stats"
	"hydra/internal/tasksetio"
	"hydra/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hydra-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("hydra-sim", flag.ContinueOnError)
	input := fs.String("input", "-", "taskset JSON file ('-' for stdin)")
	workload := fs.String("workload", "", "use a named built-in workload (uav, automotive, avionics) instead of -input")
	coresFlag := fs.Int("m", 2, "core count when using -workload")
	scheme := fs.String("scheme", "hydra", "allocation scheme by registry name (hydra, singlecore, partition-best-fit, ...)")
	horizon := fs.Float64("horizon", 100_000, "simulation window in ms")
	attacks := fs.Int("attacks", 500, "random attacks to inject (0 disables)")
	seed := fs.Int64("seed", 1, "attack-injection RNG seed")
	gantt := fs.Float64("gantt", 0, "render a Gantt timeline of the first N ms (0 disables)")
	slack := fs.Bool("slack", false, "use runtime slack reclamation (security jobs migrate to idle cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var problem *tasksetio.Problem
	if *workload != "" {
		w, err := workloads.Get(*workload)
		if err != nil {
			return err
		}
		problem = &tasksetio.Problem{M: *coresFlag, RT: w.RT, Sec: w.Sec}
	} else {
		var err error
		problem, err = tasksetio.Load(*input, stdin)
		if err != nil {
			return err
		}
	}

	// Allocate through the registry seam; input building (partitioning with
	// the self-partitioning fallback) is shared with cmd/hydra and the
	// allocation service.
	alloc, ok := core.Lookup(*scheme)
	if !ok {
		return fmt.Errorf("unknown scheme %q (available: %s)", *scheme, strings.Join(core.Names(), ", "))
	}
	in, err := tasksetio.BuildInput(problem, alloc, partition.BestFit)
	if err != nil {
		return err
	}
	res := alloc.Allocate(in)
	if !res.Schedulable {
		fmt.Fprintf(stdout, "UNSCHEDULABLE (%s): %s\n", res.Scheme, res.Reason)
		return nil
	}
	// Analyze and simulate against the partition the scheme actually used
	// (SingleCore repartitions the real-time tasks internally).
	in = core.EffectiveInput(in, res)
	if err := core.Verify(in, res); err != nil {
		return fmt.Errorf("allocation failed verification: %w", err)
	}

	perCore, taskCore, taskIndex, err := experiments.BuildSimSpecs(in, res)
	if err != nil {
		return err
	}

	// Simulate (pinned or slack-reclamation mode).
	var trace *sim.SystemTrace
	campCore, campIndex := taskCore, taskIndex
	if *slack {
		rtPerCore := make([][]sim.TaskSpec, in.M)
		var secSpecs []sim.TaskSpec
		campCore = make([]int, len(in.Sec))
		campIndex = make([]int, len(in.Sec))
		for c, specs := range perCore {
			for _, sp := range specs {
				if sp.Kind == sim.KindRT {
					rtPerCore[c] = append(rtPerCore[c], sp)
				}
			}
		}
		for i := range in.Sec {
			campCore[i] = in.M
			campIndex[i] = len(secSpecs)
			secSpecs = append(secSpecs, perCore[taskCore[i]][taskIndex[i]])
		}
		trace, err = sim.SimulateGlobalSlack(rtPerCore, secSpecs, *horizon)
	} else {
		trace, err = sim.SimulateSystem(perCore, *horizon)
	}
	if err != nil {
		return err
	}

	// Core statistics.
	fmt.Fprintf(stdout, "scheme: %s  cores: %d  horizon: %.0f ms  cumulative tightness: %s\n\n",
		res.Scheme, problem.M, *horizon, report.F(res.Cumulative))
	coreTab := report.NewTable("core", "tasks", "utilization", "idle_ms", "misses")
	for c, tr := range trace.Cores {
		label := fmt.Sprintf("%d", c)
		if *slack && c == in.M {
			label = "sec(any)"
		}
		coreTab.AddRowf("%s\t%d\t%s\t%s\t%d", label, len(tr.Specs), report.F(tr.Utilization()), report.F(tr.IdleTime), tr.Misses)
	}
	if err := coreTab.WriteText(stdout); err != nil {
		return err
	}

	// Attack campaign.
	if *attacks > 0 && len(in.Sec) > 0 {
		rng := stats.SplitRNG(*seed, 0)
		atk := detect.SampleAttacks(rng, *attacks, len(in.Sec), *horizon, 0.8)
		campaign, err := detect.NewCampaign(trace, campCore, campIndex)
		if err != nil {
			return err
		}
		ds, err := campaign.Run(atk)
		if err != nil {
			return err
		}
		lats := detect.Latencies(ds)
		e := stats.NewECDF(lats)
		fmt.Fprintf(stdout, "\nattacks: %d  detected: %d  mean detection: %s ms  p90: %s ms  max: %s ms\n",
			len(ds), len(lats), report.F(e.Mean()), report.F(e.Quantile(0.9)), report.F(e.Max()))
	}

	// Gantt timeline.
	if *gantt > 0 {
		fmt.Fprintln(stdout)
		for c, tr := range trace.Cores {
			if len(tr.Specs) == 0 {
				continue
			}
			if *slack && c == in.M {
				fmt.Fprintln(stdout, "security tasks (execute on any idle core):")
			} else {
				fmt.Fprintf(stdout, "core %d:\n", c)
			}
			if err := tr.WriteGantt(stdout, sim.GanttOptions{To: *gantt}); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
		}
	}
	return nil
}
