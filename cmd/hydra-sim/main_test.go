package main

import (
	"strings"
	"testing"
)

const sampleDoc = `{
  "cores": 2,
  "rt_tasks": [
    {"name": "ctl", "wcet_ms": 5, "period_ms": 20},
    {"name": "nav", "wcet_ms": 30, "period_ms": 100}
  ],
  "security_tasks": [
    {"name": "tw", "wcet_ms": 50, "desired_period_ms": 1000, "max_period_ms": 10000},
    {"name": "bro", "wcet_ms": 30, "desired_period_ms": 500, "max_period_ms": 5000}
  ]
}`

func runSim(t *testing.T, args []string, stdin string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, strings.NewReader(stdin), &sb)
	return sb.String(), err
}

func TestSimulateHydra(t *testing.T) {
	out, err := runSim(t, []string{"-horizon", "20000", "-attacks", "100"}, sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cumulative tightness", "utilization", "mean detection", "misses"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "detected: 100") {
		t.Fatalf("all attacks should be detected:\n%s", out)
	}
}

func TestSimulateSingleCore(t *testing.T) {
	out, err := runSim(t, []string{"-scheme", "singlecore", "-horizon", "20000", "-attacks", "50"}, sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "singlecore") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestSimulateSlackMode(t *testing.T) {
	out, err := runSim(t, []string{"-slack", "-horizon", "20000", "-attacks", "50", "-gantt", "200"}, sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sec(any)") {
		t.Fatalf("slack mode should show the virtual security row:\n%s", out)
	}
	if !strings.Contains(out, "execute on any idle core") {
		t.Fatalf("gantt label missing:\n%s", out)
	}
}

func TestSimulateGantt(t *testing.T) {
	out, err := runSim(t, []string{"-gantt", "300", "-horizon", "10000", "-attacks", "0"}, sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "t=[0, 300) ms") || !strings.Contains(out, "#") {
		t.Fatalf("gantt missing:\n%s", out)
	}
	if strings.Contains(out, "mean detection") {
		t.Fatal("-attacks 0 must disable the campaign")
	}
}

func TestSimulateUnschedulable(t *testing.T) {
	doc := `{
	  "cores": 2,
	  "rt_tasks": [{"name":"a","wcet_ms":90,"period_ms":100},{"name":"b","wcet_ms":90,"period_ms":100}],
	  "security_tasks": [{"name":"s","wcet_ms":50,"desired_period_ms":100,"max_period_ms":200}]
	}`
	out, err := runSim(t, nil, doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "UNSCHEDULABLE") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestSimulateBadInput(t *testing.T) {
	if _, err := runSim(t, nil, "{"); err == nil {
		t.Fatal("bad JSON must error")
	}
	if _, err := runSim(t, []string{"-scheme", "bogus"}, sampleDoc); err == nil {
		t.Fatal("unknown scheme must error")
	}
	if _, err := runSim(t, []string{"-input", "/nonexistent/x.json"}, ""); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestNamedWorkloads(t *testing.T) {
	for _, w := range []string{"uav", "automotive", "avionics"} {
		out, err := runSim(t, []string{"-workload", w, "-m", "2", "-horizon", "30000", "-attacks", "50"}, "")
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if !strings.Contains(out, "cumulative tightness") {
			t.Fatalf("%s output:\n%s", w, out)
		}
	}
	if _, err := runSim(t, []string{"-workload", "bogus"}, ""); err == nil {
		t.Fatal("unknown workload must error")
	}
}
