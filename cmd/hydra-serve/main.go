// Command hydra-serve runs the allocation service: the HYDRA allocator
// registry, batch engine, verifiers and schedule simulator behind an HTTP
// JSON API with a canonical-hash result cache.
//
// Endpoints:
//
//	POST   /v1/allocate                 allocate one taskset (cached, singleflight)
//	POST   /v1/allocate/batch           allocate many tasksets on the worker pool
//	POST   /v1/verify                   check a result against the linear and exact analyses
//	POST   /v1/simulate                 allocate and run the discrete-event simulator
//	POST   /v1/systems                  create a long-lived online system (cold allocation)
//	GET    /v1/systems                  list hosted systems
//	GET    /v1/systems/{id}             one system's committed state
//	DELETE /v1/systems/{id}             delete a system
//	POST   /v1/systems/{id}/tasks       try-admit a task incrementally (409 + verdicts on reject)
//	DELETE /v1/systems/{id}/tasks/{t}   retire a task by name
//	POST   /v1/systems/{id}/reallocate  full re-run of the system's scheme (escape hatch)
//	GET    /v1/systems/{id}/events      SSE decision log (?since=V, ?follow=1)
//	POST   /v1/experiments              start an experiment campaign job (fig1/fig2/...)
//	GET    /v1/experiments              list campaign jobs and runnable experiments
//	GET    /v1/experiments/{id}         job status: state, per-cell progress, ETA
//	GET    /v1/experiments/{id}/result  the figure's row/point JSON once done
//	GET    /v1/experiments/{id}/events  SSE progress stream
//	DELETE /v1/experiments/{id}         cancel a campaign
//	GET    /v1/schemes                  list registered allocation schemes
//	GET    /v1/stats                    cache, latency and job counters
//	GET    /v1/version                  build/version report (module, VCS, toolchain, results contract)
//	GET    /metrics                     Prometheus text exposition
//	GET    /v1/debug/traces             sampled request traces (?min_ms=N)
//	GET    /healthz                     liveness probe
//
// With -debug-addr a second listener serves the operational surface away
// from the API port: /metrics, /v1/debug/traces and net/http/pprof under
// /debug/pprof/ (pprof is served only there). Request tracing is off by
// default; -trace-sample N records one trace per N requests into a bounded
// in-memory ring. Logs are structured (log/slog, -log-format text|json,
// -log-level debug enables the per-request access log).
//
// The server shuts down gracefully on SIGINT/SIGTERM: new connections stop,
// in-flight batch runs are cancelled via context between grid cells, and
// running campaigns checkpoint and stop between cells. A campaign
// interrupted this way resumes from its -jobs-dir checkpoint on the next
// start and produces a result byte-identical to an uninterrupted run.
//
// Hosted systems are durable when -systems-dir is set: every mutation is
// written to a per-system write-ahead op log before it is acknowledged, a
// snapshot is taken every -snapshot-every ops, and the next start recovers
// every system by snapshot restore + log replay — bit-identical to a process
// that never stopped, including event-log versions. The registry is sharded
// (-system-shards) by consistent hash of the system id.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hydra/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "hydra-serve:", err)
		os.Exit(1)
	}
}

// parseLogLevel maps the -log-level flag onto slog levels.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("-log-level must be debug, info, warn or error, got %q", s)
}

// newLogger builds the process logger from the -log-format/-log-level flags.
func newLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("-log-format must be text or json, got %q", format)
}

// run parses flags and serves until SIGINT/SIGTERM. ready and debugReady,
// when non-nil, are called with the bound addresses once the respective
// listener is up (the test seam for -addr/-debug-addr :0).
func run(args []string, logw io.Writer, ready, debugReady func(net.Addr)) error {
	fs := flag.NewFlagSet("hydra-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheSize := fs.Int("cache", 1024, "allocation result cache capacity (entries)")
	cacheStripes := fs.Int("cache-stripes", 0, "independently locked result-cache stripes, rounded up to a power of two, max 256 (0 = GOMAXPROCS-derived default; 1 = the old single-mutex cache, for A/B load tests)")
	workers := fs.Int("workers", 0, "default batch worker-pool width (0 = GOMAXPROCS)")
	jobsDir := fs.String("jobs-dir", "", "experiment-campaign checkpoint directory; interrupted campaigns found there resume on startup (empty = fresh temp dir, campaigns do not survive the process)")
	maxJobs := fs.Int("max-jobs", 2, "concurrently running experiment campaigns; further submissions queue")
	maxSystems := fs.Int("max-systems", 64, "long-lived online systems hosted under /v1/systems")
	systemsDir := fs.String("systems-dir", "", "hosted-system persistence root: every system lives as a manifest + write-ahead op log + periodic snapshot, and is recovered by log replay on startup (empty = fresh temp dir, systems do not survive the process)")
	systemShards := fs.Int("system-shards", 0, "independently locked system-registry shards selected by consistent hash of the system id, rounded up to a power of two, max 256 (0 = GOMAXPROCS-derived default; 1 = a single global lock, for A/B load tests)")
	snapshotEvery := fs.Int("snapshot-every", 64, "ops between per-system snapshots — the recovery replay bound (<= 0 selects the default 64)")
	walFsync := fs.Bool("wal-fsync", false, "fsync every system op-log append before acknowledging the mutation (survives kernel crashes at a per-admit latency cost; off = page-cache durability, survives process crashes)")
	debugAddr := fs.String("debug-addr", "", "separate listener for the operational surface: /metrics, /v1/debug/traces and net/http/pprof under /debug/pprof/ (empty = no debug listener; pprof is only ever served here)")
	traceSample := fs.Int("trace-sample", 0, "record one request trace per N requests into the /v1/debug/traces ring (0 = tracing off, no per-request trace work at all)")
	traceRing := fs.Int("trace-ring", 0, "completed request traces retained for /v1/debug/traces (0 = default 256)")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn or error (debug enables the per-request access log)")
	logFormat := fs.String("log-format", "text", "structured log encoding: text or json")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "grace period for draining connections on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cacheStripes < 0 || *cacheStripes > 256 {
		return fmt.Errorf("-cache-stripes must be in [0, 256] (0 = GOMAXPROCS-derived default), got %d", *cacheStripes)
	}
	if *systemShards < 0 || *systemShards > 256 {
		return fmt.Errorf("-system-shards must be in [0, 256] (0 = GOMAXPROCS-derived default), got %d", *systemShards)
	}
	if *traceSample < 0 {
		return fmt.Errorf("-trace-sample must be >= 0 (0 = off), got %d", *traceSample)
	}
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := newLogger(logw, *logFormat, level)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := service.Config{
		CacheSize: *cacheSize, CacheStripes: *cacheStripes, Workers: *workers,
		JobsDir: *jobsDir, MaxJobs: *maxJobs, MaxSystems: *maxSystems,
		SystemsDir: *systemsDir, SystemShards: *systemShards, SnapshotEvery: *snapshotEvery, SystemWALSync: *walFsync,
		TraceSample: *traceSample, TraceRing: *traceRing, Logger: logger,
	}
	return serve(ctx, *addr, *debugAddr, cfg, *shutdownTimeout, ready, debugReady)
}

// serve runs the service on addr (and the operational surface on debugAddr,
// when set) until ctx is cancelled, then shuts down gracefully: the service
// context is cancelled first (in-flight batch runs observe it between grid
// cells and return), then the HTTP servers drain.
func serve(ctx context.Context, addr, debugAddr string, cfg service.Config, grace time.Duration, ready, debugReady func(net.Addr)) error {
	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	defer svc.Close()
	log := svc.Log()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	log.Info("listening",
		slog.String("addr", ln.Addr().String()),
		slog.String("jobs_dir", svc.JobsDir()),
		slog.String("systems_dir", svc.SystemsDir()),
	)
	errc := make(chan error, 1)
	var debugSrv *http.Server
	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		debugSrv = &http.Server{Handler: svc.DebugHandler()}
		log.Info("debug listening", slog.String("addr", dln.Addr().String()))
		if debugReady != nil {
			debugReady(dln.Addr())
		}
		// Debug-listener failures are logged, not fatal: losing pprof must
		// not take the API down.
		go func() {
			if err := debugSrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				log.Error("debug listener failed", slog.String("error", err.Error()))
			}
		}()
	}
	if ready != nil {
		ready(ln.Addr())
	}
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Info("shutting down")
	svc.Close() // cancel in-flight batch work before draining connections
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if debugSrv != nil {
		_ = debugSrv.Shutdown(shutdownCtx)
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	log.Info("stopped")
	return nil
}
