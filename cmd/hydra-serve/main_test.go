package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"hydra/internal/core"
)

const serveSampleTaskset = `{
  "cores": 2,
  "rt_tasks": [
    {"name": "ctl", "wcet_ms": 5, "period_ms": 20},
    {"name": "nav", "wcet_ms": 30, "period_ms": 100}
  ],
  "security_tasks": [
    {"name": "tw", "wcet_ms": 50, "desired_period_ms": 1000, "max_period_ms": 10000}
  ]
}`

// slowAllocator drags out each allocation so shutdown races are observable.
type slowAllocator struct {
	calls atomic.Int64
	inner core.Allocator
}

func (a *slowAllocator) Name() string { return "test-serve-slow" }
func (a *slowAllocator) Allocate(in *core.Input) *core.Result {
	a.calls.Add(1)
	time.Sleep(30 * time.Millisecond)
	return a.inner.Allocate(in)
}

var slow = &slowAllocator{inner: core.MustLookup("hydra")}

func TestMain(m *testing.M) {
	core.Register(slow)
	os.Exit(m.Run())
}

// startServer runs the binary's run() on an ephemeral port and returns its
// base URL plus a channel carrying run's return value.
func startServer(t *testing.T, args ...string) (string, <-chan error) {
	t.Helper()
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), io.Discard, func(a net.Addr) { addrCh <- a })
	}()
	select {
	case a := <-addrCh:
		return "http://" + a.String(), errCh
	case err := <-errCh:
		t.Fatalf("server exited before binding: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server did not come up")
	}
	return "", nil
}

func interrupt(t *testing.T) {
	t.Helper()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
}

func waitExit(t *testing.T, errCh <-chan error) {
	t.Helper()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("server exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestServeEndpointsAndGracefulShutdown(t *testing.T) {
	base, errCh := startServer(t)

	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	for _, probe := range []struct {
		method, path, body string
	}{
		{"POST", "/v1/allocate", fmt.Sprintf(`{"taskset": %s}`, serveSampleTaskset)},
		{"POST", "/v1/allocate/batch", fmt.Sprintf(`{"tasksets": [%s]}`, serveSampleTaskset)},
		{"POST", "/v1/verify", ""}, // filled below
		{"POST", "/v1/simulate", fmt.Sprintf(`{"taskset": %s, "horizon_ms": 1000}`, serveSampleTaskset)},
		{"GET", "/v1/schemes", ""},
		{"GET", "/v1/stats", ""},
	} {
		var resp *http.Response
		var err error
		switch probe.method {
		case "GET":
			resp, err = http.Get(base + probe.path)
		default:
			body := probe.body
			if probe.path == "/v1/verify" {
				a, aerr := http.Post(base+"/v1/allocate", "application/json",
					strings.NewReader(fmt.Sprintf(`{"taskset": %s}`, serveSampleTaskset)))
				if aerr != nil {
					t.Fatal(aerr)
				}
				raw, _ := io.ReadAll(a.Body)
				a.Body.Close()
				body = fmt.Sprintf(`{"taskset": %s, "result": %s}`, serveSampleTaskset, raw)
			}
			resp, err = http.Post(base+probe.path, "application/json", strings.NewReader(body))
		}
		if err != nil {
			t.Fatalf("%s %s: %v", probe.method, probe.path, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s %s: status %d: %s", probe.method, probe.path, resp.StatusCode, raw)
		}
		var v map[string]any
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("%s %s: not JSON: %s", probe.method, probe.path, raw)
		}
	}

	interrupt(t)
	waitExit(t, errCh)
}

func TestSigintCancelsInflightBatch(t *testing.T) {
	base, errCh := startServer(t)

	// 100 distinct tasksets x 30ms on one worker = 3s of work; SIGINT must
	// cut it short by cancelling the batch context between cells.
	docs := make([]string, 100)
	for i := range docs {
		docs[i] = fmt.Sprintf(`{
		  "cores": 2,
		  "rt_tasks": [{"name": "ctl", "wcet_ms": 5, "period_ms": %d}],
		  "security_tasks": [{"name": "tw", "wcet_ms": 50, "desired_period_ms": 1000, "max_period_ms": 10000}]
		}`, 20+i)
	}
	body := fmt.Sprintf(`{"scheme": "test-serve-slow", "workers": 1, "tasksets": [%s]}`, strings.Join(docs, ","))

	type batchOutcome struct {
		status int
		err    error
	}
	outcome := make(chan batchOutcome, 1)
	start := time.Now()
	go func() {
		resp, err := http.Post(base+"/v1/allocate/batch", "application/json", strings.NewReader(body))
		if err != nil {
			outcome <- batchOutcome{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		outcome <- batchOutcome{status: resp.StatusCode}
	}()

	// Wait until the slow allocator is actually running a cell.
	for i := 0; slow.calls.Load() == 0; i++ {
		if i > 500 {
			t.Fatal("batch never started")
		}
		time.Sleep(10 * time.Millisecond)
	}
	interrupt(t)
	waitExit(t, errCh)
	elapsed := time.Since(start)

	o := <-outcome
	if o.err != nil {
		t.Fatalf("batch request failed at transport level: %v", o.err)
	}
	if o.status != http.StatusServiceUnavailable {
		t.Fatalf("batch status %d, want 503", o.status)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("shutdown with in-flight batch took %v; cancellation is not prompt", elapsed)
	}
	if calls := slow.calls.Load(); calls >= 100 {
		t.Fatalf("batch ran all %d cells despite cancellation", calls)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard, nil); err == nil {
		t.Fatal("unknown flag must error")
	}
	if err := run([]string{"-addr", "256.256.256.256:99999"}, io.Discard, nil); err == nil {
		t.Fatal("unlistenable address must error")
	}
}
