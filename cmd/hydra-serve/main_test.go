package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"hydra/internal/core"
)

const serveSampleTaskset = `{
  "cores": 2,
  "rt_tasks": [
    {"name": "ctl", "wcet_ms": 5, "period_ms": 20},
    {"name": "nav", "wcet_ms": 30, "period_ms": 100}
  ],
  "security_tasks": [
    {"name": "tw", "wcet_ms": 50, "desired_period_ms": 1000, "max_period_ms": 10000}
  ]
}`

// slowAllocator drags out each allocation so shutdown races are observable.
type slowAllocator struct {
	calls atomic.Int64
	inner core.Allocator
}

func (a *slowAllocator) Name() string { return "test-serve-slow" }
func (a *slowAllocator) Allocate(in *core.Input) *core.Result {
	a.calls.Add(1)
	time.Sleep(30 * time.Millisecond)
	return a.inner.Allocate(in)
}

var slow = &slowAllocator{inner: core.MustLookup("hydra")}

func TestMain(m *testing.M) {
	core.Register(slow)
	os.Exit(m.Run())
}

// startServer runs the binary's run() on an ephemeral port and returns its
// base URL plus a channel carrying run's return value.
func startServer(t *testing.T, args ...string) (string, <-chan error) {
	t.Helper()
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), io.Discard, func(a net.Addr) { addrCh <- a }, nil)
	}()
	select {
	case a := <-addrCh:
		return "http://" + a.String(), errCh
	case err := <-errCh:
		t.Fatalf("server exited before binding: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server did not come up")
	}
	return "", nil
}

func interrupt(t *testing.T) {
	t.Helper()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
}

func waitExit(t *testing.T, errCh <-chan error) {
	t.Helper()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("server exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestServeEndpointsAndGracefulShutdown(t *testing.T) {
	base, errCh := startServer(t)

	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	for _, probe := range []struct {
		method, path, body string
	}{
		{"POST", "/v1/allocate", fmt.Sprintf(`{"taskset": %s}`, serveSampleTaskset)},
		{"POST", "/v1/allocate/batch", fmt.Sprintf(`{"tasksets": [%s]}`, serveSampleTaskset)},
		{"POST", "/v1/verify", ""}, // filled below
		{"POST", "/v1/simulate", fmt.Sprintf(`{"taskset": %s, "horizon_ms": 1000}`, serveSampleTaskset)},
		{"GET", "/v1/schemes", ""},
		{"GET", "/v1/stats", ""},
	} {
		var resp *http.Response
		var err error
		switch probe.method {
		case "GET":
			resp, err = http.Get(base + probe.path)
		default:
			body := probe.body
			if probe.path == "/v1/verify" {
				a, aerr := http.Post(base+"/v1/allocate", "application/json",
					strings.NewReader(fmt.Sprintf(`{"taskset": %s}`, serveSampleTaskset)))
				if aerr != nil {
					t.Fatal(aerr)
				}
				raw, _ := io.ReadAll(a.Body)
				a.Body.Close()
				body = fmt.Sprintf(`{"taskset": %s, "result": %s}`, serveSampleTaskset, raw)
			}
			resp, err = http.Post(base+probe.path, "application/json", strings.NewReader(body))
		}
		if err != nil {
			t.Fatalf("%s %s: %v", probe.method, probe.path, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s %s: status %d: %s", probe.method, probe.path, resp.StatusCode, raw)
		}
		var v map[string]any
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("%s %s: not JSON: %s", probe.method, probe.path, raw)
		}
	}

	interrupt(t)
	waitExit(t, errCh)
}

func TestSigintCancelsInflightBatch(t *testing.T) {
	base, errCh := startServer(t)

	// 100 distinct tasksets x 30ms on one worker = 3s of work; SIGINT must
	// cut it short by cancelling the batch context between cells.
	docs := make([]string, 100)
	for i := range docs {
		docs[i] = fmt.Sprintf(`{
		  "cores": 2,
		  "rt_tasks": [{"name": "ctl", "wcet_ms": 5, "period_ms": %d}],
		  "security_tasks": [{"name": "tw", "wcet_ms": 50, "desired_period_ms": 1000, "max_period_ms": 10000}]
		}`, 20+i)
	}
	body := fmt.Sprintf(`{"scheme": "test-serve-slow", "workers": 1, "tasksets": [%s]}`, strings.Join(docs, ","))

	type batchOutcome struct {
		status int
		err    error
	}
	outcome := make(chan batchOutcome, 1)
	start := time.Now()
	go func() {
		resp, err := http.Post(base+"/v1/allocate/batch", "application/json", strings.NewReader(body))
		if err != nil {
			outcome <- batchOutcome{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		outcome <- batchOutcome{status: resp.StatusCode}
	}()

	// Wait until the slow allocator is actually running a cell.
	for i := 0; slow.calls.Load() == 0; i++ {
		if i > 500 {
			t.Fatal("batch never started")
		}
		time.Sleep(10 * time.Millisecond)
	}
	interrupt(t)
	waitExit(t, errCh)
	elapsed := time.Since(start)

	o := <-outcome
	if o.err != nil {
		t.Fatalf("batch request failed at transport level: %v", o.err)
	}
	if o.status != http.StatusServiceUnavailable {
		t.Fatalf("batch status %d, want 503", o.status)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("shutdown with in-flight batch took %v; cancellation is not prompt", elapsed)
	}
	if calls := slow.calls.Load(); calls >= 100 {
		t.Fatalf("batch ran all %d cells despite cancellation", calls)
	}
}

// experimentJSON posts/gets helpers for the campaign endpoints.
func postExperiment(t *testing.T, base, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/experiments", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &st); err != nil || st.ID == "" {
		t.Fatalf("submit response %s: %v", raw, err)
	}
	return st.ID
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK && v != nil {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("%s: %v in %s", url, err, raw)
		}
	}
	return resp.StatusCode
}

type jobStatus struct {
	ID            string  `json:"id"`
	State         string  `json:"state"`
	TotalCells    int     `json:"total_cells"`
	DoneCells     int     `json:"done_cells"`
	ReplayedCells int     `json:"replayed_cells"`
	EtaMS         float64 `json:"eta_ms"`
	Error         string  `json:"error"`
}

func waitJobDone(t *testing.T, base, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st jobStatus
		if code := getJSON(t, base+"/v1/experiments/"+id, &st); code != http.StatusOK {
			t.Fatalf("status: %d", code)
		}
		if st.State == "done" || st.State == "failed" || st.State == "cancelled" {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("campaign never finished")
	return jobStatus{}
}

func fetchResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/experiments/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d: %s", resp.StatusCode, raw)
	}
	return raw
}

// The acceptance test of the campaign tentpole: a campaign killed by a real
// in-process SIGINT mid-grid resumes from its -jobs-dir checkpoint on the
// next server start and emits a result byte-identical to an uninterrupted
// run.
func TestSigintInterruptsAndCampaignResumesOnRestart(t *testing.T) {
	// 19 levels x 3200 draws = 60800 cells: the grid is sized so the
	// one-worker run takes whole seconds on a fast machine — the interrupt
	// below must land while the grid is still mid-flight, and each time the
	// per-cell cost halves this window halves with it (the 15200-cell grid
	// flaked once cells hit ~60µs). The reference runs the same grid at 8
	// workers — the engine's determinism guarantee makes the results
	// byte-identical anyway, so the comparison also re-proves worker-count
	// independence.
	campaign := `{"experiment": "fig2", "config": {"M": 2, "TasksetsPerPoint": 3200, "UtilStepFrac": 0.05, "Seed": 9, "Workers": 1}}`
	reference := strings.Replace(campaign, `"Workers": 1`, `"Workers": 8`, 1)

	// Uninterrupted reference run (sequential: SIGINT is process-wide, so
	// only one server lives at a time).
	refBase, refErrCh := startServer(t, "-jobs-dir", t.TempDir())
	refID := postExperiment(t, refBase, reference)
	if st := waitJobDone(t, refBase, refID); st.State != "done" {
		t.Fatalf("reference campaign: %+v", st)
	}
	want := fetchResult(t, refBase, refID)
	interrupt(t)
	waitExit(t, refErrCh)

	// Interrupted run: SIGINT once the campaign has checkpointed some cells.
	jobsDir := t.TempDir()
	base, errCh := startServer(t, "-jobs-dir", jobsDir)
	id := postExperiment(t, base, campaign)
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st jobStatus
		getJSON(t, base+"/v1/experiments/"+id, &st)
		// Interrupt early but well inside the grid: past the first
		// checkpoint flushes, with most of the grid still ahead so the
		// SIGINT cannot race the campaign's natural completion.
		if st.DoneCells >= 100 && st.TotalCells > 0 && st.DoneCells <= st.TotalCells/4 {
			break
		}
		if st.State == "done" || time.Now().After(deadline) {
			t.Fatalf("campaign too fast or stuck to interrupt mid-grid: %+v", st)
		}
	}
	interrupt(t)
	waitExit(t, errCh)

	// Restart on the same jobs dir: the campaign resumes automatically
	// under its original id and completes.
	base2, errCh2 := startServer(t, "-jobs-dir", jobsDir)
	final := waitJobDone(t, base2, id)
	if final.State != "done" {
		t.Fatalf("resumed campaign: %+v", final)
	}
	if final.ReplayedCells < 100 || final.ReplayedCells >= final.TotalCells {
		t.Fatalf("resume replayed %d of %d cells, want a partial replay", final.ReplayedCells, final.TotalCells)
	}
	got := fetchResult(t, base2, id)
	if string(got) != string(want) {
		t.Fatal("resumed campaign result differs from uninterrupted run")
	}
	var stats struct {
		Jobs struct {
			Resumed uint64 `json:"resumed"`
			Done    int    `json:"done"`
		} `json:"jobs"`
	}
	getJSON(t, base2+"/v1/stats", &stats)
	if stats.Jobs.Resumed != 1 || stats.Jobs.Done != 1 {
		t.Fatalf("job stats after restart: %+v", stats.Jobs)
	}
	interrupt(t)
	waitExit(t, errCh2)
}

// postJSON posts a body and returns status + raw response.
func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, raw
}

func getRaw(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, raw
}

// The acceptance test of the durable-systems tentpole: systems created and
// mutated before a real in-process SIGINT come back on the next server start
// from the same -systems-dir — same committed state byte for byte, event
// versions contiguous across the restart — and keep taking mutations. The
// restart also changes the shard count (4 -> 1), so the consistent-hash
// rehome path runs end to end through the server.
func TestSigintAndDurableSystemsRecoverOnRestart(t *testing.T) {
	systemsDir := t.TempDir()
	base, errCh := startServer(t, "-systems-dir", systemsDir, "-system-shards", "4", "-snapshot-every", "3")

	for _, id := range []string{"alpha", "beta"} {
		if code, raw := postJSON(t, base+"/v1/systems",
			fmt.Sprintf(`{"id": %q, "taskset": %s}`, id, serveSampleTaskset)); code != http.StatusCreated {
			t.Fatalf("create %s: status %d: %s", id, code, raw)
		}
	}
	// Mutate alpha past the snapshot cadence so recovery exercises
	// snapshot restore + tail replay, not just a full log replay.
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf(`{"security_task": {"name": "s%d", "wcet_ms": 1, "desired_period_ms": 2000, "max_period_ms": 30000}}`, i)
		if code, raw := postJSON(t, base+"/v1/systems/alpha/tasks", body); code != http.StatusOK {
			t.Fatalf("admit s%d: status %d: %s", i, code, raw)
		}
	}
	resp, err := http.NewRequest(http.MethodDelete, base+"/v1/systems/alpha/tasks/s1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := http.DefaultClient.Do(resp); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("remove s1: %v %v", r, err)
	} else {
		r.Body.Close()
	}
	var pre struct {
		Version uint64 `json:"version"`
	}
	_, alphaBytes := getRaw(t, base+"/v1/systems/alpha")
	if err := json.Unmarshal(alphaBytes, &pre); err != nil || pre.Version == 0 {
		t.Fatalf("alpha detail %s: %v", alphaBytes, err)
	}
	_, betaBytes := getRaw(t, base+"/v1/systems/beta")

	interrupt(t)
	waitExit(t, errCh)

	base2, errCh2 := startServer(t, "-systems-dir", systemsDir, "-system-shards", "1", "-snapshot-every", "3")
	var list SystemListProbe
	if code := getJSON(t, base2+"/v1/systems", &list); code != http.StatusOK {
		t.Fatalf("list after restart: %d", code)
	}
	if len(list.Systems) != 2 {
		t.Fatalf("recovered %d systems, want 2: %+v", len(list.Systems), list.Systems)
	}
	if _, raw := getRaw(t, base2+"/v1/systems/alpha"); string(raw) != string(alphaBytes) {
		t.Fatalf("alpha state changed across restart:\n%s\nvs\n%s", raw, alphaBytes)
	}
	if _, raw := getRaw(t, base2+"/v1/systems/beta"); string(raw) != string(betaBytes) {
		t.Fatalf("beta state changed across restart:\n%s\nvs\n%s", raw, betaBytes)
	}
	// Event versions must continue exactly where the previous life stopped.
	code, raw := postJSON(t, base2+"/v1/systems/alpha/tasks",
		`{"security_task": {"name": "post-restart", "wcet_ms": 1, "desired_period_ms": 2000, "max_period_ms": 30000}}`)
	if code != http.StatusOK {
		t.Fatalf("admit after restart: status %d: %s", code, raw)
	}
	var admit struct {
		Admitted bool   `json:"admitted"`
		Version  uint64 `json:"version"`
	}
	if err := json.Unmarshal(raw, &admit); err != nil || !admit.Admitted {
		t.Fatalf("admit after restart: %s (%v)", raw, err)
	}
	if admit.Version != pre.Version+1 {
		t.Fatalf("post-restart version %d, want contiguous %d", admit.Version, pre.Version+1)
	}
	interrupt(t)
	waitExit(t, errCh2)
}

// SystemListProbe decodes just enough of the systems list.
type SystemListProbe struct {
	Systems []struct {
		ID string `json:"id"`
	} `json:"systems"`
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard, nil, nil); err == nil {
		t.Fatal("unknown flag must error")
	}
	if err := run([]string{"-addr", "256.256.256.256:99999"}, io.Discard, nil, nil); err == nil {
		t.Fatal("unlistenable address must error")
	}
	for _, stripes := range []string{"-1", "-17", "257", "100000"} {
		err := run([]string{"-cache-stripes", stripes}, io.Discard, nil, nil)
		if err == nil {
			t.Fatalf("-cache-stripes %s must error", stripes)
		}
		if !strings.Contains(err.Error(), "cache-stripes") {
			t.Fatalf("-cache-stripes %s: error %q does not name the flag", stripes, err)
		}
	}
	for _, shards := range []string{"-1", "257", "100000"} {
		err := run([]string{"-system-shards", shards}, io.Discard, nil, nil)
		if err == nil {
			t.Fatalf("-system-shards %s must error", shards)
		}
		if !strings.Contains(err.Error(), "system-shards") {
			t.Fatalf("-system-shards %s: error %q does not name the flag", shards, err)
		}
	}
	for flagArgs, name := range map[string]string{
		"-trace-sample,-1":                  "trace-sample",
		"-log-level,loud":                   "log-level",
		"-log-format,yaml":                  "log-format",
		"-debug-addr,256.256.256.256:99999": "debug listener",
	} {
		args := strings.Split(flagArgs, ",")
		if name == "debug listener" {
			args = append([]string{"-addr", "127.0.0.1:0"}, args...)
		}
		err := run(args, io.Discard, nil, nil)
		if err == nil {
			t.Fatalf("%v must error", args)
		}
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("%v: error %q does not name %q", args, err, name)
		}
	}
}

// TestDebugListenerServesOperationalSurface: -debug-addr brings up a second
// listener with /metrics, the trace ring and pprof; the API port serves
// /metrics too but never pprof.
func TestDebugListenerServesOperationalSurface(t *testing.T) {
	debugCh := make(chan net.Addr, 1)
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0", "-trace-sample", "1"},
			io.Discard, func(a net.Addr) { addrCh <- a }, func(a net.Addr) { debugCh <- a })
	}()
	var base, debugBase string
	for i := 0; i < 2; i++ {
		select {
		case a := <-addrCh:
			base = "http://" + a.String()
		case a := <-debugCh:
			debugBase = "http://" + a.String()
		case err := <-errCh:
			t.Fatalf("server exited before binding: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("listeners did not come up")
		}
	}

	// Traffic so the trace ring and request counters have content.
	if code, raw := postJSON(t, base+"/v1/allocate", fmt.Sprintf(`{"taskset": %s}`, serveSampleTaskset)); code != 200 {
		t.Fatalf("allocate: %d %s", code, raw)
	}

	code, raw := getRaw(t, debugBase+"/metrics")
	if code != 200 || !strings.Contains(string(raw), "hydra_http_requests_total") {
		t.Fatalf("debug /metrics: %d %.200s", code, raw)
	}
	var traces struct {
		Traces []struct {
			Route string `json:"route"`
		} `json:"traces"`
	}
	if code := getJSON(t, debugBase+"/v1/debug/traces", &traces); code != 200 {
		t.Fatalf("debug traces: %d", code)
	}
	if len(traces.Traces) == 0 {
		t.Fatal("trace ring empty with -trace-sample 1")
	}
	if code, _ := getRaw(t, debugBase+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("debug pprof cmdline: %d", code)
	}
	if code, raw := getRaw(t, base+"/metrics"); code != 200 || !strings.Contains(string(raw), "hydra_go_goroutines") {
		t.Fatalf("API /metrics: %d %.200s", code, raw)
	}
	if code, _ := getRaw(t, base+"/debug/pprof/cmdline"); code == 200 {
		t.Fatal("pprof must not be served on the API port")
	}

	interrupt(t)
	waitExit(t, errCh)
}

// TestStructuredLogs: lifecycle logs come out as JSON when asked, and
// -log-level debug turns on the per-request access log with the request id.
func TestStructuredLogs(t *testing.T) {
	var buf syncBuffer
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-log-format", "json", "-log-level", "debug", "-trace-sample", "1"},
			&buf, func(a net.Addr) { addrCh <- a }, nil)
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-errCh:
		t.Fatalf("server exited before binding: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server did not come up")
	}
	if code, raw := postJSON(t, base+"/v1/allocate", fmt.Sprintf(`{"taskset": %s}`, serveSampleTaskset)); code != 200 {
		t.Fatalf("allocate: %d %s", code, raw)
	}
	interrupt(t)
	waitExit(t, errCh)

	out := buf.String()
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
	}
	for _, want := range []string{`"msg":"listening"`, `"msg":"request"`, `"route":"POST /v1/allocate"`, `"request_id":`, `"msg":"stopped"`} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %s:\n%s", want, out)
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the slog handler writes from
// the serve goroutine while the test reads after exit.
type syncBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestCacheStripesFlagAccepted: valid stripe counts (including the explicit
// single-mutex 1) come up and serve.
func TestCacheStripesFlagAccepted(t *testing.T) {
	base, errCh := startServer(t, "-cache-stripes", "1")
	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz with -cache-stripes 1: %v %v", resp, err)
	}
	interrupt(t)
	waitExit(t, errCh)
}
