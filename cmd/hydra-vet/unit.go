package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"hydra/internal/analysis"
	"hydra/internal/analysis/suite"
)

// unitConfig is the compilation-unit description the go command hands a
// vettool — the same JSON shape golang.org/x/tools' unitchecker consumes.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string // source import path -> package path
	PackageFile               map[string]string // package path -> export data file
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// runUnit analyzes one compilation unit described by a .cfg file and
// returns the process exit code: 0 clean, 1 findings, 2 operational error.
func runUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-vet: %v\n", err)
		return 2
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hydra-vet: decode %s: %v\n", cfgFile, err)
		return 2
	}

	// The go command caches vet results keyed on the facts file; hydra-vet
	// computes no facts but must still produce the output file.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "hydra-vet: %v\n", err)
			}
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintf(os.Stderr, "hydra-vet: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	// Types for dependencies come from the compiler's export data, exactly
	// as the build system prepared them for this unit.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "hydra-vet: %v\n", err)
		return 2
	}

	writeVetx()
	if cfg.VetxOnly {
		return 0
	}

	pkg := &analysis.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	findings, err := analysis.RunPackage(pkg, suite.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-vet: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
