package main

import (
	"fmt"
	"io"

	"hydra/internal/analysis"
	"hydra/internal/analysis/load"
	"hydra/internal/analysis/suite"
)

// runStandalone loads the packages matched by patterns (relative to dir),
// runs the full analyzer suite, prints findings to w, and returns how many
// findings survived suppression.
func runStandalone(dir string, patterns []string, w io.Writer) (int, error) {
	pkgs, err := load.GoList(dir, patterns)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, pkg := range pkgs {
		findings, err := analysis.RunPackage(pkg, suite.Analyzers())
		if err != nil {
			return total, err
		}
		for _, f := range findings {
			fmt.Fprintln(w, f)
		}
		total += len(findings)
	}
	return total, nil
}
