// Command hydra-vet runs the repo's invariant analyzers (see
// internal/analysis/suite): detpath, errcontract, poolsafety, rngstream and
// walorder. It supports two modes:
//
// Standalone, over go list patterns (the CI gate):
//
//	hydra-vet ./...
//
// As a go vet tool, speaking the vettool/unitchecker protocol (-V=full,
// -flags, and a JSON .cfg file per compilation unit):
//
//	go build -o /tmp/hydra-vet ./cmd/hydra-vet
//	go vet -vettool=/tmp/hydra-vet ./...
//
// `hydra-vet help` describes each analyzer. Findings are suppressed line-by-
// line with `//lint:allow <analyzer> <reason>`; findings in _test.go files
// are always ignored (the invariants target production code).
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"hydra/internal/analysis/suite"
)

func main() {
	args := os.Args[1:]

	// vettool protocol: go vet probes the tool identity and flag set
	// before handing it compilation units.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			printVersion()
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(runUnit(args[0]))
		}
	}
	if len(args) > 0 && args[0] == "help" {
		printHelp(os.Stdout)
		return
	}
	if len(args) > 0 && strings.HasPrefix(args[0], "-") {
		fmt.Fprintf(os.Stderr, "hydra-vet: unknown flag %s (usage: hydra-vet [help | packages...])\n", args[0])
		os.Exit(2)
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := runStandalone(".", patterns, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-vet: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}

// printVersion implements -V=full: the go command hashes this line into its
// build cache key for vet results.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-vet: %v\n", err)
		os.Exit(2)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-vet: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("%s version devel hydra-vet buildID=%02x\n", exe, sha256.Sum256(data))
}

func printHelp(w io.Writer) {
	fmt.Fprintf(w, "hydra-vet enforces this repo's determinism, RNG, pooling, error-contract\nand WAL-ordering invariants.\n\n")
	fmt.Fprintf(w, "Usage:\n  hydra-vet [packages]          analyze go list patterns (default ./...)\n")
	fmt.Fprintf(w, "  go vet -vettool=$(which hydra-vet) [packages]\n\n")
	fmt.Fprintf(w, "Suppress a finding on its line (or the line above) with:\n  //lint:allow <analyzer> <reason>\n\nAnalyzers:\n\n")
	for _, a := range suite.Analyzers() {
		fmt.Fprintf(w, "%s: %s\n\n", a.Name, a.Doc)
	}
}
