package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the CI gate in miniature: the repo's own packages must
// produce zero findings (every invariant either holds or carries a reasoned
// //lint:allow).
func TestRepoIsClean(t *testing.T) {
	var buf bytes.Buffer
	n, err := runStandalone("../..", []string{"./..."}, &buf)
	if err != nil {
		t.Fatalf("runStandalone: %v", err)
	}
	if n != 0 {
		t.Fatalf("hydra-vet found %d findings in the repo:\n%s", n, buf.String())
	}
}

// writeViolatingModule lays out a throwaway module whose package path puts it
// in detpath scope and whose body violates several invariants.
func writeViolatingModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/victim\n\ngo 1.23\n",
		"internal/obs/obs.go": `package obs

type Histogram struct{}

func (h *Histogram) Observe(v float64) {}
`,
		"internal/engine/bad.go": `package engine

import (
	"math/rand"
	"time"

	"example.com/victim/internal/obs"
)

func Bad(m map[string]int) int {
	_ = time.Now()
	n := rand.Intn(10)
	for range m {
		n++
	}
	return n
}

func BadObs(h *obs.Histogram) {
	h.Observe(1.5)
}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestStandaloneFindsViolations proves the standalone mode actually fires on
// a module with real violations (the smoke test above would also pass if the
// analyzers were inert).
func TestStandaloneFindsViolations(t *testing.T) {
	dir := writeViolatingModule(t)
	var buf bytes.Buffer
	n, err := runStandalone(dir, []string{"./..."}, &buf)
	if err != nil {
		t.Fatalf("runStandalone: %v", err)
	}
	if n != 4 {
		t.Fatalf("got %d findings, want 4 (time.Now, rand.Intn, map range, obs histogram):\n%s", n, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"time.Now", "math/rand", "map iteration", "count-only observability"} {
		if !strings.Contains(out, want) {
			t.Errorf("findings missing %q:\n%s", want, out)
		}
	}
}

// TestVettoolProtocol builds the binary and drives it through the go
// command's vettool protocol (-V=full, -flags, per-unit .cfg files) against
// the violating module: `go vet -vettool=` must fail with our diagnostics.
func TestVettoolProtocol(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("no go tool: %v", err)
	}
	tool := filepath.Join(t.TempDir(), "hydra-vet")
	build := exec.Command("go", "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	dir := writeViolatingModule(t)
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = dir
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool succeeded on a violating module:\n%s", out)
	}
	for _, want := range []string{"detpath", "time.Now", "map iteration"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("vet output missing %q:\n%s", want, out)
		}
	}

	// A //lint:allow annotation must silence the finding through the same
	// protocol path.
	bad := filepath.Join(dir, "internal", "engine", "bad.go")
	src, err := os.ReadFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	fixed := strings.ReplaceAll(string(src), "_ = time.Now()",
		"_ = time.Now() //lint:allow detpath test fixture")
	fixed = strings.ReplaceAll(fixed, "n := rand.Intn(10)",
		"n := rand.Intn(10) //lint:allow detpath test fixture")
	fixed = strings.ReplaceAll(fixed, "for range m {",
		"//lint:allow detpath test fixture\n\tfor range m {")
	fixed = strings.ReplaceAll(fixed, "h.Observe(1.5)",
		"h.Observe(1.5) //lint:allow obsbound test fixture")
	if err := os.WriteFile(bad, []byte(fixed), 0o666); err != nil {
		t.Fatal(err)
	}
	vet = exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = dir
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed on a fully annotated module: %v\n%s", err, out)
	}
}

// TestHelpListsAnalyzers keeps the -help catalogue in sync with the suite.
func TestHelpListsAnalyzers(t *testing.T) {
	var buf bytes.Buffer
	printHelp(&buf)
	for _, name := range []string{"detpath", "errcontract", "obsbound", "poolsafety", "rngstream", "walorder"} {
		if !strings.Contains(buf.String(), name+":") {
			t.Errorf("help output missing analyzer %s:\n%s", name, buf.String())
		}
	}
}
