// Command hydra-experiments regenerates every table and figure of the
// paper's evaluation section:
//
//	table1   — the Table I security-task inventory
//	fig1     — UAV case study: detection-time ECDFs across schemes
//	fig2     — synthetic tasksets: acceptance-ratio improvement vs utilization
//	fig3     — scheme vs exhaustive-optimal cumulative-tightness gap
//	ablation — commitment policy x RT-partition heuristic sweep
//
// Schemes are selected by name from the allocator registry (-schemes; see
// -list-schemes for the catalogue), and the experiment grids run on the
// parallel engine (-workers). Each experiment prints plot-ready rows (text
// or CSV). Runs are deterministic for a fixed -seed regardless of -workers.
//
// Long campaigns can checkpoint: -checkpoint <dir> runs one experiment as a
// resumable campaign (the same per-cell checkpoint format hydra-serve's
// /v1/experiments jobs use), and -resume <dir> continues an interrupted
// campaign — its own or one left behind by a killed server — emitting the
// byte-identical result JSON an uninterrupted run would have produced.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"hydra/internal/core"
	"hydra/internal/experiments"
	"hydra/internal/jobs"
	"hydra/internal/online"
	"hydra/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hydra-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hydra-experiments", flag.ContinueOnError)
	which := fs.String("experiment", "all", "table1, fig1, fig2, fig3, ablation, online or all")
	seed := fs.Int64("seed", 1, "RNG seed (experiments are deterministic per seed)")
	tasksets := fs.Int("tasksets", 250, "tasksets per utilization point (fig2; fig3 uses a quarter)")
	attacks := fs.Int("attacks", 1000, "attacks per scheme and core count (fig1)")
	cores := fs.String("cores", "2,4,8", "comma-separated platform sizes (fig1, fig2)")
	schemes := fs.String("schemes", "hydra,singlecore", "comma-separated allocation schemes: fig1 compares the first two or more, fig2 tabulates all, fig3 measures the first against opt; ablation has its own scheme grid (see -list-schemes)")
	workers := fs.Int("workers", 0, "parallel grid workers (0 = all hardware threads; results identical for any value)")
	format := fs.String("format", "text", "output format: text or csv")
	refine := fs.Bool("refine", false, "fig3: refine optimal periods with the sequential-GP maximizer")
	list := fs.Bool("list-schemes", false, "print the registered allocation schemes and exit")
	checkpoint := fs.String("checkpoint", "", "run one experiment as a resumable campaign checkpointed in this directory, printing the result JSON")
	resume := fs.String("resume", "", "resume an interrupted campaign from its checkpoint directory, printing the result JSON")
	resultsVersion := fs.Int("results-version", 0, "RNG/results version: 0 = current default (2), 1 = legacy math/rand streams, 2 = splittable SplitMix64")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(stdout, strings.Join(core.Names(), "\n"))
		return nil
	}
	if *resume != "" && *checkpoint != "" {
		return fmt.Errorf("-checkpoint and -resume are mutually exclusive")
	}
	if *resume != "" {
		return resumeCampaign(*resume, stdout)
	}
	coreList, err := parseCores(*cores)
	if err != nil {
		return err
	}
	schemeList, err := parseSchemes(*schemes)
	if err != nil {
		return err
	}
	if *checkpoint != "" {
		config, err := campaignConfig(*which, coreList, schemeList, *seed, *tasksets, *attacks, *workers, *refine, *resultsVersion)
		if err != nil {
			return err
		}
		return startCampaign(*checkpoint, *which, config, stdout)
	}
	emit := func(tb *report.Table) error {
		if *format == "csv" {
			return tb.WriteCSV(stdout)
		}
		return tb.WriteText(stdout)
	}

	runTable1 := func() error {
		fmt.Fprintln(stdout, "== Table I: security tasks (Tripwire + Bro) ==")
		_, err := io.WriteString(stdout, experiments.FormatTable1())
		return err
	}

	runFig1 := func() error {
		fmt.Fprintf(stdout, "\n== Fig. 1: UAV case study, detection-time ECDF (%s) ==\n", strings.Join(schemeList, " vs "))
		res, err := experiments.RunFig1(experiments.Fig1Config{
			Cores: coreList, Schemes: schemeList, Attacks: *attacks, Seed: *seed, Workers: *workers,
			ResultsVersion: *resultsVersion,
		})
		if err != nil {
			return err
		}
		header := []string{"cores"}
		for _, s := range schemeList {
			header = append(header, s+"_mean_ms")
		}
		header = append(header, "improvement")
		for _, s := range schemeList {
			header = append(header, s+"_censored")
		}
		summary := report.NewTable(header...)
		for _, row := range res.Rows {
			fields := []string{fmt.Sprintf("%d", row.M)}
			for _, sc := range row.Schemes {
				fields = append(fields, report.F(sc.MeanDetection))
			}
			fields = append(fields, report.Pct(row.ImprovementPct))
			for _, sc := range row.Schemes {
				fields = append(fields, fmt.Sprintf("%d", sc.Censored))
			}
			summary.AddRowf("%s", strings.Join(fields, "\t"))
		}
		if err := emit(summary); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nECDF series (detection time ms -> empirical CDF):")
		for _, row := range res.Rows {
			header := []string{"detection_ms"}
			for _, s := range schemeList {
				header = append(header, fmt.Sprintf("%s_M%d", s, row.M))
			}
			tb := report.NewTable(header...)
			for i := range row.Schemes[0].Series {
				fields := []string{fmt.Sprintf("%.0f", row.Schemes[0].Series[i][0])}
				for _, sc := range row.Schemes {
					fields = append(fields, report.F(sc.Series[i][1]))
				}
				tb.AddRowf("%s", strings.Join(fields, "\t"))
			}
			if err := emit(tb); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
		}
		return nil
	}

	runFig2 := func() error {
		fmt.Fprintln(stdout, "\n== Fig. 2: improvement in acceptance ratio vs total utilization ==")
		for _, m := range coreList {
			pts, err := experiments.RunFig2(experiments.Fig2Config{
				M: m, TasksetsPerPoint: *tasksets, Seed: *seed, Schemes: schemeList, Workers: *workers,
				ResultsVersion: *resultsVersion,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "\n-- %d cores --\n", m)
			header := []string{"total_util", "generated"}
			for _, s := range schemeList {
				header = append(header, s+"_ratio")
			}
			header = append(header, "improvement")
			tb := report.NewTable(header...)
			for _, p := range pts {
				fields := []string{report.F(p.TotalUtil), fmt.Sprintf("%d", p.Generated)}
				for i := range schemeList {
					fields = append(fields, report.F(p.Ratio(i)))
				}
				fields = append(fields, report.Pct(p.ImprovementPct))
				tb.AddRowf("%s", strings.Join(fields, "\t"))
			}
			if err := emit(tb); err != nil {
				return err
			}
		}
		return nil
	}

	runFig3 := func() error {
		fmt.Fprintf(stdout, "\n== Fig. 3: cumulative-tightness gap, %s vs optimal (M=2, NS in [2,6]) ==\n", schemeList[0])
		pts, err := experiments.RunFig3(experiments.Fig3Config{
			TasksetsPerPoint: max(1, *tasksets/4), Seed: *seed, Scheme: schemeList[0],
			RefineJointGP: *refine, Workers: *workers, ResultsVersion: *resultsVersion,
		})
		if err != nil {
			return err
		}
		tb := report.NewTable("total_util", "compared", "mean_gap", "max_gap")
		for _, p := range pts {
			tb.AddRowf("%s\t%d\t%s\t%s", report.F(p.TotalUtil), p.Compared, report.Pct(p.MeanGapPct), report.Pct(p.MaxGapPct))
		}
		return emit(tb)
	}

	runAblation := func() error {
		fmt.Fprintln(stdout, "\n== Ablation: allocation scheme x RT-partition heuristic (DESIGN.md §5) ==")
		for _, m := range coreList {
			cells, err := experiments.RunAblation(experiments.AblationConfig{
				M: m, TasksetsPerCell: max(1, *tasksets/2), Seed: *seed, Workers: *workers,
				ResultsVersion: *resultsVersion,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "\n-- %d cores, U = 0.8M --\n", m)
			tb := report.NewTable("scheme", "rt_heuristic", "acceptance", "mean_tightness")
			for _, c := range cells {
				tb.AddRowf("%s\t%s\t%s\t%s", c.Scheme, c.Heuristic,
					report.F(c.AcceptanceRatio()), report.F(c.MeanTightness))
			}
			if err := emit(tb); err != nil {
				return err
			}
		}
		return nil
	}

	runOnline := func() error {
		schemes, err := onlineSchemes(schemeList)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\n== Online churn: dynamic task arrival/departure (%s) ==\n", strings.Join(schemes, " vs "))
		for _, m := range coreList {
			res, err := experiments.RunOnline(experiments.OnlineConfig{
				M: m, Schemes: schemes, SystemsPerCell: max(1, *tasksets/25),
				Seed: *seed, Workers: *workers, ResultsVersion: *resultsVersion,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "\n-- %d cores --\n", m)
			// inc_us/cold_us/speedup come from the result's machine-relative
			// timing section; everything left of them is seed-deterministic.
			tb := report.NewTable("scheme", "total_util", "depart_rate", "systems", "acceptance", "cold_allocs", "inc_us", "cold_us", "speedup")
			for i, p := range res.Points {
				tm := res.Timing[i]
				tb.AddRowf("%s\t%s\t%s\t%d\t%s\t%d\t%.1f\t%.1f\t%.1fx",
					p.Scheme, report.F(p.TotalUtil), report.F(p.DepartRate), p.Systems,
					report.F(p.AcceptanceRatio), p.ColdAllocations, tm.IncrementalMeanUS, tm.ColdMeanUS, tm.SpeedupX)
			}
			if err := emit(tb); err != nil {
				return err
			}
		}
		return nil
	}

	switch *which {
	case "table1":
		return runTable1()
	case "fig1":
		return runFig1()
	case "fig2":
		return runFig2()
	case "fig3":
		return runFig3()
	case "ablation":
		return runAblation()
	case "online":
		return runOnline()
	case "all":
		for _, f := range []func() error{runTable1, runFig1, runFig2, runFig3, runAblation} {
			if err := f(); err != nil {
				return err
			}
		}
		// The online stage needs incrementally admissible schemes; a -schemes
		// list without any (valid for every other experiment) skips it with a
		// notice instead of failing the whole run after five experiments.
		if _, err := onlineSchemes(schemeList); err != nil {
			fmt.Fprintf(stdout, "\n== Online churn: skipped (%v) ==\n", err)
			return nil
		}
		return runOnline()
	default:
		return fmt.Errorf("unknown experiment %q", *which)
	}
}

// onlineSchemes filters the -schemes list down to the schemes the online
// admission layer supports (the CLI default includes "singlecore", which has
// no incremental step); an explicitly unusable list is an error rather than
// a silent fallback.
func onlineSchemes(schemeList []string) ([]string, error) {
	supported := map[string]bool{}
	for _, name := range online.SupportedSchemes() {
		supported[name] = true
	}
	var out []string
	for _, name := range schemeList {
		if supported[name] {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("none of the schemes %v supports online admission (want a subset of %v)",
			schemeList, online.SupportedSchemes())
	}
	return out, nil
}

// campaignConfig maps the CLI flags onto the named spec's JSON config,
// mirroring what the non-campaign code paths run (fig2, ablation and online
// campaigns cover the first -cores entry; run one campaign per M for the
// full figure).
func campaignConfig(which string, coreList []int, schemeList []string, seed int64, tasksets, attacks, workers int, refine bool, resultsVersion int) (json.RawMessage, error) {
	var cfg any
	switch which {
	case "table1":
		return nil, nil
	case "fig1":
		cfg = experiments.Fig1Config{Cores: coreList, Schemes: schemeList, Attacks: attacks, Seed: seed, Workers: workers, ResultsVersion: resultsVersion}
	case "fig2":
		cfg = experiments.Fig2Config{M: coreList[0], TasksetsPerPoint: tasksets, Seed: seed, Schemes: schemeList, Workers: workers, ResultsVersion: resultsVersion}
	case "fig3":
		cfg = experiments.Fig3Config{TasksetsPerPoint: max(1, tasksets/4), Seed: seed, Scheme: schemeList[0], RefineJointGP: refine, Workers: workers, ResultsVersion: resultsVersion}
	case "ablation":
		cfg = experiments.AblationConfig{M: coreList[0], TasksetsPerCell: max(1, tasksets/2), Seed: seed, Workers: workers, ResultsVersion: resultsVersion}
	case "online":
		schemes, err := onlineSchemes(schemeList)
		if err != nil {
			return nil, err
		}
		cfg = experiments.OnlineConfig{M: coreList[0], Schemes: schemes, SystemsPerCell: max(1, tasksets/25), Seed: seed, Workers: workers, ResultsVersion: resultsVersion}
	default:
		return nil, fmt.Errorf("-checkpoint needs a single experiment (table1, fig1, fig2, fig3, ablation or online), got %q", which)
	}
	return json.Marshal(cfg)
}

// startCampaign creates and runs a checkpointed campaign; an interrupted run
// (SIGINT) leaves the directory resumable with -resume.
func startCampaign(dir, spec string, config json.RawMessage, stdout io.Writer) error {
	c, err := jobs.Create(dir, spec, config)
	if err != nil {
		return err
	}
	return runCampaign(c, stdout)
}

// resumeCampaign continues an interrupted campaign from its directory.
func resumeCampaign(dir string, stdout io.Writer) error {
	c, err := jobs.Open(dir)
	if err != nil {
		return err
	}
	return runCampaign(c, stdout)
}

// runCampaign drives a campaign to completion under SIGINT/SIGTERM
// cancellation (the campaign checkpoints between cells, staying resumable)
// and prints the result document.
func runCampaign(c *jobs.Campaign, stdout io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var last jobs.Progress
	body, err := c.Run(ctx, func(p jobs.Progress) { last = p })
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("campaign interrupted at %d/%d cells; resume with -resume %s", last.Done, last.Total, c.Dir())
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign complete: %d cells (%d replayed from checkpoint), result in %s\n",
		last.Done, last.Replayed, c.Dir())
	_, err = stdout.Write(body)
	return err
}

func parseCores(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m, err := strconv.Atoi(part)
		if err != nil || m < 2 {
			return nil, fmt.Errorf("invalid core count %q (need integers >= 2)", part)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no core counts given")
	}
	return out, nil
}

// parseSchemes splits and validates the -schemes list against the registry.
func parseSchemes(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		out = append(out, part)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no schemes given")
	}
	if _, err := core.Resolve(out...); err != nil {
		return nil, err
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
