// Command hydra-experiments regenerates every table and figure of the
// paper's evaluation section:
//
//	table1 — the Table I security-task inventory
//	fig1   — UAV case study: detection-time ECDFs, HYDRA vs SingleCore
//	fig2   — synthetic tasksets: acceptance-ratio improvement vs utilization
//	fig3   — HYDRA vs exhaustive-optimal cumulative-tightness gap
//
// Each experiment prints plot-ready rows (text or CSV). Runs are
// deterministic for a fixed -seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hydra/internal/experiments"
	"hydra/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hydra-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hydra-experiments", flag.ContinueOnError)
	which := fs.String("experiment", "all", "table1, fig1, fig2, fig3, ablation or all")
	seed := fs.Int64("seed", 1, "RNG seed (experiments are deterministic per seed)")
	tasksets := fs.Int("tasksets", 250, "tasksets per utilization point (fig2; fig3 uses a quarter)")
	attacks := fs.Int("attacks", 1000, "attacks per scheme and core count (fig1)")
	cores := fs.String("cores", "2,4,8", "comma-separated platform sizes (fig1, fig2)")
	format := fs.String("format", "text", "output format: text or csv")
	refine := fs.Bool("refine", false, "fig3: refine optimal periods with the sequential-GP maximizer")
	if err := fs.Parse(args); err != nil {
		return err
	}
	coreList, err := parseCores(*cores)
	if err != nil {
		return err
	}
	emit := func(tb *report.Table) error {
		if *format == "csv" {
			return tb.WriteCSV(stdout)
		}
		return tb.WriteText(stdout)
	}

	runTable1 := func() error {
		fmt.Fprintln(stdout, "== Table I: security tasks (Tripwire + Bro) ==")
		_, err := io.WriteString(stdout, experiments.FormatTable1())
		return err
	}

	runFig1 := func() error {
		fmt.Fprintln(stdout, "\n== Fig. 1: UAV case study, detection-time ECDF (HYDRA vs SingleCore) ==")
		res, err := experiments.RunFig1(experiments.Fig1Config{Cores: coreList, Attacks: *attacks, Seed: *seed})
		if err != nil {
			return err
		}
		summary := report.NewTable("cores", "hydra_mean_ms", "singlecore_mean_ms", "improvement", "censored_h", "censored_s")
		for _, row := range res.Rows {
			summary.AddRowf("%d\t%s\t%s\t%s\t%d\t%d",
				row.M, report.F(row.Hydra.MeanDetection), report.F(row.SingleCore.MeanDetection),
				report.Pct(row.ImprovementPct), row.Hydra.Censored, row.SingleCore.Censored)
		}
		if err := emit(summary); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nECDF series (detection time ms -> empirical CDF):")
		for _, row := range res.Rows {
			tb := report.NewTable("detection_ms", fmt.Sprintf("hydra_M%d", row.M), fmt.Sprintf("singlecore_M%d", row.M))
			for i := range row.Hydra.Series {
				tb.AddRowf("%.0f\t%s\t%s", row.Hydra.Series[i][0],
					report.F(row.Hydra.Series[i][1]), report.F(row.SingleCore.Series[i][1]))
			}
			if err := emit(tb); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
		}
		return nil
	}

	runFig2 := func() error {
		fmt.Fprintln(stdout, "\n== Fig. 2: improvement in acceptance ratio vs total utilization ==")
		for _, m := range coreList {
			pts, err := experiments.RunFig2(experiments.Fig2Config{M: m, TasksetsPerPoint: *tasksets, Seed: *seed})
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "\n-- %d cores --\n", m)
			tb := report.NewTable("total_util", "generated", "hydra_ratio", "singlecore_ratio", "improvement")
			for _, p := range pts {
				tb.AddRowf("%s\t%d\t%s\t%s\t%s",
					report.F(p.TotalUtil), p.Generated, report.F(p.HydraRatio()), report.F(p.SingleRatio()), report.Pct(p.ImprovementPct))
			}
			if err := emit(tb); err != nil {
				return err
			}
		}
		return nil
	}

	runFig3 := func() error {
		fmt.Fprintln(stdout, "\n== Fig. 3: cumulative-tightness gap, HYDRA vs optimal (M=2, NS in [2,6]) ==")
		pts, err := experiments.RunFig3(experiments.Fig3Config{
			TasksetsPerPoint: max(1, *tasksets/4), Seed: *seed, RefineJointGP: *refine,
		})
		if err != nil {
			return err
		}
		tb := report.NewTable("total_util", "compared", "mean_gap", "max_gap")
		for _, p := range pts {
			tb.AddRowf("%s\t%d\t%s\t%s", report.F(p.TotalUtil), p.Compared, report.Pct(p.MeanGapPct), report.Pct(p.MaxGapPct))
		}
		return emit(tb)
	}

	runAblation := func() error {
		fmt.Fprintln(stdout, "\n== Ablation: commitment policy x RT-partition heuristic (DESIGN.md §5) ==")
		for _, m := range coreList {
			cells, err := experiments.RunAblation(experiments.AblationConfig{
				M: m, TasksetsPerCell: max(1, *tasksets/2), Seed: *seed,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "\n-- %d cores, U = 0.8M --\n", m)
			tb := report.NewTable("policy", "rt_heuristic", "acceptance", "mean_tightness")
			for _, c := range cells {
				tb.AddRowf("%s\t%s\t%s\t%s", c.Policy, c.Heuristic,
					report.F(c.AcceptanceRatio()), report.F(c.MeanTightness))
			}
			if err := emit(tb); err != nil {
				return err
			}
		}
		return nil
	}

	switch *which {
	case "table1":
		return runTable1()
	case "fig1":
		return runFig1()
	case "fig2":
		return runFig2()
	case "fig3":
		return runFig3()
	case "ablation":
		return runAblation()
	case "all":
		for _, f := range []func() error{runTable1, runFig1, runFig2, runFig3, runAblation} {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", *which)
	}
}

func parseCores(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m, err := strconv.Atoi(part)
		if err != nil || m < 2 {
			return nil, fmt.Errorf("invalid core count %q (need integers >= 2)", part)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no core counts given")
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
