package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"hydra/internal/jobs"
)

func runExp(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestTable1Experiment(t *testing.T) {
	out, err := runExp(t, "-experiment", "table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Tripwire") || !strings.Contains(out, "Bro") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestFig1ExperimentSmall(t *testing.T) {
	out, err := runExp(t, "-experiment", "fig1", "-attacks", "100", "-cores", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "improvement") || !strings.Contains(out, "hydra_M2") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestFig2ExperimentSmall(t *testing.T) {
	out, err := runExp(t, "-experiment", "fig2", "-tasksets", "5", "-cores", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hydra_ratio") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestFig3ExperimentSmall(t *testing.T) {
	out, err := runExp(t, "-experiment", "fig3", "-tasksets", "8")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mean_gap") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCSVOutput(t *testing.T) {
	out, err := runExp(t, "-experiment", "fig2", "-tasksets", "3", "-cores", "2", "-format", "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "total_util,generated") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestBadArgs(t *testing.T) {
	if _, err := runExp(t, "-experiment", "bogus"); err == nil {
		t.Fatal("unknown experiment must error")
	}
	if _, err := runExp(t, "-cores", "1"); err == nil {
		t.Fatal("core count < 2 must error")
	}
	if _, err := runExp(t, "-cores", "x"); err == nil {
		t.Fatal("non-numeric cores must error")
	}
	if _, err := runExp(t, "-cores", ""); err == nil {
		t.Fatal("empty cores must error")
	}
}

func TestParseCores(t *testing.T) {
	got, err := parseCores("2, 4,8")
	if err != nil || len(got) != 3 || got[0] != 2 || got[1] != 4 || got[2] != 8 {
		t.Fatalf("got %v err %v", got, err)
	}
}

func TestAblationExperimentSmall(t *testing.T) {
	out, err := runExp(t, "-experiment", "ablation", "-tasksets", "6", "-cores", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mean_tightness") || !strings.Contains(out, "hydra-least-loaded") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestOnlineExperimentSmall(t *testing.T) {
	out, err := runExp(t, "-experiment", "online", "-tasksets", "25", "-cores", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "depart_rate") || !strings.Contains(out, "hydra") {
		t.Fatalf("output:\n%s", out)
	}
	// The default -schemes list is filtered to the online-admissible subset;
	// an explicitly unusable list errors instead of silently falling back.
	if _, err := runExp(t, "-experiment", "online", "-schemes", "singlecore"); err == nil {
		t.Fatal("singlecore-only online run must error")
	}
	// ...while -experiment all routes through the same filter and skips the
	// online stage (with a notice) instead of failing after five experiments.
	if _, err := onlineSchemes([]string{"singlecore"}); err == nil {
		t.Fatal("onlineSchemes must reject a list with no admissible scheme")
	}
	got, err := onlineSchemes([]string{"hydra", "singlecore"})
	if err != nil || len(got) != 1 || got[0] != "hydra" {
		t.Fatalf("onlineSchemes filter: got %v, %v", got, err)
	}
}

func TestSchemesFlag(t *testing.T) {
	out, err := runExp(t, "-experiment", "fig2", "-tasksets", "3", "-cores", "2",
		"-schemes", "hydra,partition-best-fit")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "partition-best-fit_ratio") {
		t.Fatalf("scheme column missing:\n%s", out)
	}
	if _, err := runExp(t, "-schemes", "hydra,bogus"); err == nil {
		t.Fatal("unknown scheme must error")
	}
	if _, err := runExp(t, "-schemes", ""); err == nil {
		t.Fatal("empty scheme list must error")
	}
	// fig3 needs only one scheme; fig1 is a comparison and needs two.
	if _, err := runExp(t, "-experiment", "fig3", "-tasksets", "4", "-schemes", "hydra-least-loaded"); err != nil {
		t.Fatalf("fig3 with a single scheme: %v", err)
	}
	if _, err := runExp(t, "-experiment", "fig1", "-attacks", "10", "-cores", "2", "-schemes", "hydra"); err == nil {
		t.Fatal("fig1 with a single scheme must error (nothing to compare)")
	}
}

func TestListSchemes(t *testing.T) {
	out, err := runExp(t, "-list-schemes")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hydra", "singlecore", "opt", "partition-best-fit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Sorted output keeps diffs stable across runs and registrations.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !sort.StringsAreSorted(lines) {
		t.Fatalf("scheme listing not sorted:\n%s", out)
	}
}

// -checkpoint runs a campaign to completion, prints its result JSON, and
// leaves a resumable directory; -resume on a completed campaign replays the
// persisted result byte-for-byte.
func TestCheckpointCampaignAndResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "campaign")
	args := []string{"-experiment", "fig2", "-tasksets", "2", "-cores", "2", "-seed", "5"}
	out, err := runExp(t, append(args, "-checkpoint", dir)...)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		ResultsVersion int `json:"results_version"`
		Points         []struct {
			TotalUtil float64
			Generated int
		}
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("checkpoint output not result JSON: %v\n%s", err, out)
	}
	if res.ResultsVersion != 2 {
		t.Fatalf("campaign result records results_version %d, want 2", res.ResultsVersion)
	}
	if len(res.Points) != 39 {
		t.Fatalf("got %d utilization points, want 39", len(res.Points))
	}
	if _, err := os.Stat(filepath.Join(dir, "result.json")); err != nil {
		t.Fatalf("result.json missing: %v", err)
	}
	resumed, err := runExp(t, "-resume", dir)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != out {
		t.Fatal("resume of a completed campaign returned different bytes")
	}
	// Double-starting a campaign in the same directory must error.
	if _, err := runExp(t, append(args, "-checkpoint", dir)...); err == nil {
		t.Fatal("re-checkpoint into an existing campaign dir must error")
	}
}

// A campaign interrupted mid-grid resumes through the CLI and the final
// result is byte-identical to an uninterrupted CLI run — the shared
// checkpoint format contract with hydra-serve.
func TestResumeInterruptedCampaign(t *testing.T) {
	config, err := campaignConfig("fig2", []int{2}, []string{"hydra", "singlecore"}, 5, 4, 0, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	cleanDir := filepath.Join(t.TempDir(), "clean")
	var clean strings.Builder
	if err := startCampaign(cleanDir, "fig2", config, &clean); err != nil {
		t.Fatal(err)
	}

	// Interrupt a twin campaign mid-grid (context cancel stands in for the
	// CLI's SIGINT path, which shares the same ctx seam).
	dir := filepath.Join(t.TempDir(), "interrupted")
	c, err := jobs.Create(dir, "fig2", config)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := c.Run(ctx, func(p jobs.Progress) {
		if p.Done >= 20 {
			cancel()
		}
	}); err == nil {
		t.Fatal("interrupted campaign run must error")
	}

	var resumed strings.Builder
	if err := run([]string{"-resume", dir}, &resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != clean.String() {
		t.Fatal("resumed CLI result differs from uninterrupted run")
	}
}

func TestCheckpointFlagErrors(t *testing.T) {
	if _, err := runExp(t, "-checkpoint", t.TempDir(), "-resume", t.TempDir()); err == nil {
		t.Fatal("-checkpoint with -resume must error")
	}
	if _, err := runExp(t, "-experiment", "all", "-checkpoint", filepath.Join(t.TempDir(), "c")); err == nil {
		t.Fatal("-checkpoint with -experiment all must error")
	}
	if _, err := runExp(t, "-resume", filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("-resume of a missing directory must error")
	}
}

// -workers must not change any output byte.
func TestWorkersFlagDeterministic(t *testing.T) {
	one, err := runExp(t, "-experiment", "fig2", "-tasksets", "4", "-cores", "2", "-workers", "1")
	if err != nil {
		t.Fatal(err)
	}
	eight, err := runExp(t, "-experiment", "fig2", "-tasksets", "4", "-cores", "2", "-workers", "8")
	if err != nil {
		t.Fatal(err)
	}
	if one != eight {
		t.Fatalf("output differs between -workers 1 and 8:\n%s\nvs\n%s", one, eight)
	}
}
