package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(b)) }

func TestKindString(t *testing.T) {
	if KindRT.String() != "rt" || KindSecurity.String() != "security" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatal("unknown kind string")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := SimulateCore(nil, 0); err == nil {
		t.Fatal("zero horizon must error")
	}
	bad := []TaskSpec{{Name: "x", C: 0, T: 10}}
	if _, err := SimulateCore(bad, 100); err == nil {
		t.Fatal("zero WCET must error")
	}
	bad2 := []TaskSpec{{Name: "x", C: 1, T: 10, Offset: -1}}
	if _, err := SimulateCore(bad2, 100); err == nil {
		t.Fatal("negative offset must error")
	}
}

func TestSingleTaskSchedule(t *testing.T) {
	specs := []TaskSpec{{Name: "a", C: 2, T: 10, Prio: 0}}
	tr, err := SimulateCore(specs, 50)
	if err != nil {
		t.Fatal(err)
	}
	jobs := tr.JobsOf(0)
	if len(jobs) != 5 {
		t.Fatalf("job count = %d, want 5", len(jobs))
	}
	for k, j := range jobs {
		wantRel := Time(10 * k)
		if !near(j.Release, wantRel, 1e-12) || !near(j.Start, wantRel, 1e-12) || !near(j.Finish, wantRel+2, 1e-12) {
			t.Fatalf("job %d = %+v", k, j)
		}
		if got := j.ResponseTime(); !near(got, 2, 1e-12) {
			t.Fatalf("response time = %v", got)
		}
	}
	if tr.Misses != 0 || tr.Unstarted != 0 {
		t.Fatalf("misses=%d unstarted=%d", tr.Misses, tr.Unstarted)
	}
	// Idle: 8 ms of every 10 ms period.
	if !near(tr.IdleTime, 40, 1e-9) {
		t.Fatalf("idle = %v, want 40", tr.IdleTime)
	}
	if !near(tr.Utilization(), 0.2, 1e-9) {
		t.Fatalf("utilization = %v", tr.Utilization())
	}
}

func TestPreemption(t *testing.T) {
	// Low-priority long job released at 0; high-priority short job at 1.
	specs := []TaskSpec{
		{Name: "hi", C: 1, T: 100, Offset: 1, Prio: 0},
		{Name: "lo", C: 5, T: 100, Offset: 0, Prio: 1},
	}
	tr, err := SimulateCore(specs, 100)
	if err != nil {
		t.Fatal(err)
	}
	lo := tr.JobsOf(1)[0]
	hi := tr.JobsOf(0)[0]
	if !near(hi.Start, 1, 1e-12) || !near(hi.Finish, 2, 1e-12) {
		t.Fatalf("hi = %+v", hi)
	}
	// lo runs [0,1), preempted, resumes [2,6).
	if !near(lo.Start, 0, 1e-12) || !near(lo.Finish, 6, 1e-12) {
		t.Fatalf("lo = %+v", lo)
	}
	if lo.Preemptions != 1 {
		t.Fatalf("lo preemptions = %d, want 1", lo.Preemptions)
	}
}

func TestNonPreemptiveBlocksHigherPriority(t *testing.T) {
	specs := []TaskSpec{
		{Name: "hi", C: 1, T: 100, Offset: 1, Prio: 0},
		{Name: "lo-np", C: 5, T: 100, Offset: 0, Prio: 1, NonPreemptive: true},
	}
	tr, err := SimulateCore(specs, 100)
	if err != nil {
		t.Fatal(err)
	}
	lo := tr.JobsOf(1)[0]
	hi := tr.JobsOf(0)[0]
	// lo runs to completion [0,5); hi waits until 5 despite higher priority.
	if !near(lo.Finish, 5, 1e-12) || lo.Preemptions != 0 {
		t.Fatalf("lo = %+v", lo)
	}
	if !near(hi.Start, 5, 1e-12) || !near(hi.Finish, 6, 1e-12) {
		t.Fatalf("hi = %+v", hi)
	}
}

func TestRateMonotonicTextbookResponse(t *testing.T) {
	// Same set as the RTA test: (1,4),(2,6),(3,12) — worst-case response of
	// the lowest task is 10 at the critical instant (all offsets 0).
	specs := []TaskSpec{
		{Name: "t1", C: 1, T: 4, Prio: 0},
		{Name: "t2", C: 2, T: 6, Prio: 1},
		{Name: "t3", C: 3, T: 12, Prio: 2},
	}
	tr, err := SimulateCore(specs, 12)
	if err != nil {
		t.Fatal(err)
	}
	j := tr.JobsOf(2)[0]
	if !near(j.Finish, 10, 1e-9) {
		t.Fatalf("t3 first-job finish = %v, want 10 (matches RTA)", j.Finish)
	}
	if tr.Misses != 0 {
		t.Fatalf("misses = %d", tr.Misses)
	}
}

func TestDeadlineMissDetected(t *testing.T) {
	specs := []TaskSpec{
		{Name: "hog", C: 9, T: 10, Prio: 0},
		{Name: "starved", C: 5, T: 10, Prio: 1},
	}
	tr, err := SimulateCore(specs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Misses == 0 {
		t.Fatal("overload must produce deadline misses")
	}
}

func TestOffsetRelease(t *testing.T) {
	specs := []TaskSpec{{Name: "a", C: 1, T: 10, Offset: 3, Prio: 0}}
	tr, err := SimulateCore(specs, 30)
	if err != nil {
		t.Fatal(err)
	}
	jobs := tr.JobsOf(0)
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d, want 3 (releases at 3, 13, 23)", len(jobs))
	}
	if !near(jobs[0].Release, 3, 1e-12) {
		t.Fatalf("first release = %v", jobs[0].Release)
	}
}

func TestUnfinishedAtHorizon(t *testing.T) {
	specs := []TaskSpec{{Name: "a", C: 10, T: 100, Prio: 0}}
	tr, err := SimulateCore(specs, 5)
	if err != nil {
		t.Fatal(err)
	}
	j := tr.JobsOf(0)[0]
	if j.Finish >= 0 {
		t.Fatalf("job should be unfinished, got finish %v", j.Finish)
	}
	if j.ResponseTime() != -1 {
		t.Fatal("unfinished response time must be -1")
	}
}

func TestSimulateSystem(t *testing.T) {
	perCore := [][]TaskSpec{
		{{Name: "a", C: 1, T: 10, Prio: 0}},
		{{Name: "b", C: 2, T: 10, Prio: 0}},
	}
	st, err := SimulateSystem(perCore, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cores) != 2 {
		t.Fatalf("cores = %d", len(st.Cores))
	}
	if st.TotalMisses() != 0 {
		t.Fatalf("misses = %d", st.TotalMisses())
	}
	bad := [][]TaskSpec{{{Name: "x", C: 0, T: 1}}}
	if _, err := SimulateSystem(bad, 100); err == nil {
		t.Fatal("invalid core spec must error")
	}
}

// Property: total busy time equals the executed demand: for feasible
// workloads (all jobs finish), busy = sum over jobs of C, and
// idle + busy = horizon.
func TestWorkConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		specs := make([]TaskSpec, n)
		var util float64
		for i := range specs {
			period := 20 + 80*rng.Float64()
			u := 0.05 + 0.15*rng.Float64()
			specs[i] = TaskSpec{Name: "t", C: u * period, T: period, Prio: i}
			util += u
		}
		if util >= 0.95 {
			return true
		}
		horizon := Time(2000)
		tr, err := SimulateCore(specs, horizon)
		if err != nil {
			return false
		}
		var demand Time
		for _, j := range tr.Jobs {
			if j.Finish >= 0 {
				demand += specs[j.Task].C
			} else if j.Start >= 0 {
				// Partially executed tail job: count executed portion.
				demand += horizon - j.Start // upper bound; refine below
			}
		}
		busy := horizon - tr.IdleTime
		// Allow the tail-job slack in the comparison.
		return busy <= demand+1e-6 && busy >= demand-specs[0].C-1e-6-40
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: priority isolation — the highest-priority task's response time
// always equals its WCET (no blocking without non-preemptive tasks).
func TestHighestPriorityIsolationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		specs := make([]TaskSpec, n)
		for i := range specs {
			period := 20 + 180*rng.Float64()
			specs[i] = TaskSpec{Name: "t", C: 0.1 * period, T: period, Prio: i}
		}
		tr, err := SimulateCore(specs, 1000)
		if err != nil {
			return false
		}
		for _, j := range tr.JobsOf(0) {
			if j.Finish < 0 {
				continue
			}
			if !near(j.ResponseTime(), specs[0].C, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
