package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// SimulateGlobalSlack implements the runtime slack-reclamation mode the
// paper's Discussion (Sec. V) leaves as future work: real-time tasks stay
// partitioned (their schedule is untouched), while ready security jobs may
// execute on *any* core that is currently free of ready real-time work —
// migrating at dispatch granularity instead of being pinned to their HYDRA
// core. Security jobs still never delay real-time jobs: a real-time release
// on the core a security job occupies preempts it immediately, and the job
// may resume elsewhere.
//
// rtPerCore pins the real-time tasks; sec lists the security tasks with
// their adapted periods (priorities inside sec follow TaskSpec.Prio).
// The returned trace uses a synthetic core layout: core c's spec list is
// rtPerCore[c] (RT jobs are recorded per home core), and security jobs are
// recorded on a virtual "core" appended at index len(rtPerCore) whose specs
// are sec — their executing core varies and is not tracked per job.
func SimulateGlobalSlack(rtPerCore [][]TaskSpec, sec []TaskSpec, horizon Time) (*SystemTrace, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("sim: horizon must be positive, got %g", horizon)
	}
	m := len(rtPerCore)
	if m == 0 {
		return nil, fmt.Errorf("sim: need at least one core")
	}
	for c, specs := range rtPerCore {
		for i, s := range specs {
			if !(s.C > 0) || !(s.T > 0) || s.Offset < 0 {
				return nil, fmt.Errorf("sim: rt core %d task %d invalid", c, i)
			}
		}
	}
	for i, s := range sec {
		if !(s.C > 0) || !(s.T > 0) || s.Offset < 0 {
			return nil, fmt.Errorf("sim: security task %d invalid", i)
		}
	}

	// Traces: one per real core plus the virtual security core.
	traces := make([]*CoreTrace, m+1)
	for c := 0; c < m; c++ {
		traces[c] = &CoreTrace{Specs: rtPerCore[c], Horizon: horizon}
	}
	traces[m] = &CoreTrace{Specs: sec, Horizon: horizon}

	// Global release list: (time, core-or-virtual, task index).
	type rel struct {
		at   Time
		core int // m = security
		task int
	}
	var rels []rel
	for c := 0; c < m; c++ {
		for ti, s := range rtPerCore[c] {
			for at := s.Offset; at < horizon; at += s.T {
				rels = append(rels, rel{at, c, ti})
			}
		}
	}
	for ti, s := range sec {
		for at := s.Offset; at < horizon; at += s.T {
			rels = append(rels, rel{at, m, ti})
		}
	}
	sort.SliceStable(rels, func(a, b int) bool { return rels[a].at < rels[b].at })

	// Pre-create job records per trace, indexed in release order.
	jobIdx := make([]int, len(rels))
	for i, r := range rels {
		jobIdx[i] = len(traces[r.core].Jobs)
		traces[r.core].Jobs = append(traces[r.core].Jobs, Job{Task: r.task, Release: r.at, Start: -1, Finish: -1})
	}

	// Ready queues: one per real core for RT jobs, one global for security.
	rtReady := make([]readyQueue, m)
	var secReady readyQueue
	for c := range rtReady {
		heap.Init(&rtReady[c])
	}
	heap.Init(&secReady)

	type runSlot struct {
		p      *pending
		core   int // trace core (m for security jobs)
		curRun int // physical core currently executing the job
	}
	running := make([]*runSlot, m) // per physical core

	now := Time(0)
	next := 0
	admit := func() {
		for next < len(rels) && rels[next].at <= now+timeEps {
			r := rels[next]
			var prio int
			var np bool
			if r.core == m {
				prio = sec[r.task].Prio
				np = sec[r.task].NonPreemptive
			} else {
				prio = rtPerCore[r.core][r.task].Prio
				np = rtPerCore[r.core][r.task].NonPreemptive
			}
			p := &pending{job: jobIdx[next], prio: prio, seq: next, nonPre: np}
			if r.core == m {
				p.remaining = sec[r.task].C
				heap.Push(&secReady, p)
			} else {
				p.remaining = rtPerCore[r.core][r.task].C
				heap.Push(&rtReady[r.core], p)
			}
			next++
		}
	}
	admit()

	// coreOfPending maps a running slot back to its trace for job records.
	idle := make([]Time, m)
	for now < horizon-timeEps {
		// Dispatch per physical core: pinned RT work first, then one global
		// security job if the core would otherwise idle.
		for c := 0; c < m; c++ {
			cur := running[c]
			// RT preemption/dispatch.
			if len(rtReady[c]) > 0 {
				top := rtReady[c][0]
				if cur == nil || cur.core == m || top.prio < cur.p.prio {
					if cur != nil {
						if cur.core == m {
							// Security job evicted back to the global queue.
							if cur.p.started && cur.p.remaining > timeEps {
								traces[m].Jobs[cur.p.job].Preemptions++
							}
							heap.Push(&secReady, cur.p)
						} else {
							if cur.p.started && cur.p.remaining > timeEps {
								traces[c].Jobs[cur.p.job].Preemptions++
							}
							heap.Push(&rtReady[c], cur.p)
						}
					}
					heap.Pop(&rtReady[c])
					running[c] = &runSlot{p: top, core: c, curRun: c}
				}
			}
		}
		// Fill idle cores with security jobs (highest priority first).
		for c := 0; c < m; c++ {
			if running[c] == nil && len(secReady) > 0 {
				p := heap.Pop(&secReady).(*pending)
				running[c] = &runSlot{p: p, core: m, curRun: c}
			}
		}

		// Find the next event: release or earliest completion.
		step := horizon - now
		if next < len(rels) {
			if d := rels[next].at - now; d < step {
				step = d
			}
		}
		anyRunning := false
		for c := 0; c < m; c++ {
			if running[c] != nil {
				anyRunning = true
				if running[c].p.remaining < step {
					step = running[c].p.remaining
				}
			}
		}
		if !anyRunning && next >= len(rels) {
			for c := 0; c < m; c++ {
				idle[c] += horizon - now
			}
			now = horizon
			break
		}
		if step < 0 {
			step = 0
		}

		// Execute the interval.
		for c := 0; c < m; c++ {
			slot := running[c]
			if slot == nil {
				idle[c] += step
				continue
			}
			if !slot.p.started {
				slot.p.started = true
				traces[slot.core].Jobs[slot.p.job].Start = now
			}
			slot.p.remaining -= step
		}
		now += step
		admit()
		for c := 0; c < m; c++ {
			if slot := running[c]; slot != nil && slot.p.remaining <= timeEps {
				traces[slot.core].Jobs[slot.p.job].Finish = now
				running[c] = nil
			}
		}
	}

	for c := 0; c < m; c++ {
		traces[c].IdleTime = idle[c]
	}
	// Post-process misses/unstarted per trace.
	for tc, tr := range traces {
		specs := tr.Specs
		for i := range tr.Jobs {
			j := &tr.Jobs[i]
			if j.Start < 0 {
				tr.Unstarted++
				continue
			}
			if j.Finish >= 0 && j.Finish > j.Release+specs[j.Task].T+timeEps {
				tr.Misses++
			}
		}
		_ = tc
	}
	return &SystemTrace{Cores: traces}, nil
}
