// Package sim provides a deterministic discrete-event simulator of
// preemptive fixed-priority scheduling on one core. Cores are independent
// under partitioned scheduling, so a multicore platform is simulated as a
// set of per-core runs (see SimulateSystem).
//
// The simulator substitutes for the paper's ARM Cortex-A8 / Xenomai testbed
// (Sec. IV-A): Fig. 1 measures scheduling-level intrusion-detection latency,
// which depends only on the schedule the simulator reproduces exactly.
// Released jobs execute for their full WCET (the worst case the paper's
// analysis targets); releases are strictly periodic from a per-task offset —
// the critical-instant pattern for offset zero.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Time is milliseconds, matching the rts package.
type Time = float64

// Kind distinguishes real-time from security tasks in traces.
type Kind int

const (
	// KindRT marks a real-time task.
	KindRT Kind = iota
	// KindSecurity marks a security task.
	KindSecurity
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRT:
		return "rt"
	case KindSecurity:
		return "security"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// TaskSpec is one periodic task pinned to the simulated core.
type TaskSpec struct {
	Name   string
	C      Time // execution demand per job (WCET)
	T      Time // period
	Offset Time // release of the first job
	Prio   int  // static priority: smaller value preempts larger
	Kind   Kind
	// NonPreemptive makes every job of this task run to completion once it
	// first gets the processor (the Sec. V extension for critical security
	// checks). Higher-priority jobs arriving meanwhile are blocked.
	NonPreemptive bool
}

// Job is one completed (or still-pending) job instance in a trace.
type Job struct {
	Task        int // index into the spec slice
	Release     Time
	Start       Time // first instant the job executed; -1 if never started
	Finish      Time // completion; -1 if unfinished at the horizon
	Preemptions int  // times the job was preempted after starting
}

// ResponseTime returns Finish - Release, or -1 for unfinished jobs.
func (j Job) ResponseTime() Time {
	if j.Finish < 0 {
		return -1
	}
	return j.Finish - j.Release
}

// CoreTrace is the outcome of simulating one core.
type CoreTrace struct {
	Specs     []TaskSpec
	Horizon   Time
	Jobs      []Job // all jobs released before the horizon, in release order
	IdleTime  Time  // total time the core was idle
	Misses    int   // jobs finishing after release+period (implicit deadline)
	Unstarted int   // jobs never dispatched before the horizon
}

// JobsOf returns the completed jobs of one task, in release order.
func (tr *CoreTrace) JobsOf(task int) []Job {
	var out []Job
	for _, j := range tr.Jobs {
		if j.Task == task {
			out = append(out, j)
		}
	}
	return out
}

// Utilization returns the fraction of the horizon the core was busy.
func (tr *CoreTrace) Utilization() float64 {
	if tr.Horizon <= 0 {
		return 0
	}
	return 1 - tr.IdleTime/tr.Horizon
}

// pending is a released, unfinished job in the ready queue.
type pending struct {
	job       int // index into trace.Jobs
	prio      int
	seq       int // release tie-break: earlier release first
	remaining Time
	started   bool
	nonPre    bool
}

// readyQueue orders pending jobs by (prio, seq).
type readyQueue []*pending

func (q readyQueue) Len() int { return len(q) }
func (q readyQueue) Less(i, j int) bool {
	if q[i].prio != q[j].prio {
		return q[i].prio < q[j].prio
	}
	return q[i].seq < q[j].seq
}
func (q readyQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *readyQueue) Push(x interface{}) { *q = append(*q, x.(*pending)) }
func (q *readyQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}

// release is one future job arrival.
type release struct {
	at   Time
	task int
}

const timeEps = 1e-9

// SimulateCore runs the core for [0, horizon) and returns the trace.
func SimulateCore(specs []TaskSpec, horizon Time) (*CoreTrace, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("sim: horizon must be positive, got %g", horizon)
	}
	for i, s := range specs {
		if !(s.C > 0) || !(s.T > 0) || s.Offset < 0 || math.IsNaN(s.C+s.T+s.Offset) {
			return nil, fmt.Errorf("sim: task %d (%q) has invalid parameters C=%g T=%g Offset=%g", i, s.Name, s.C, s.T, s.Offset)
		}
	}

	// Materialize all releases up front; horizons are short enough (the
	// paper observes 500 s windows) that this stays small.
	var releases []release
	for ti, s := range specs {
		for at := s.Offset; at < horizon; at += s.T {
			releases = append(releases, release{at: at, task: ti})
		}
	}
	sort.SliceStable(releases, func(a, b int) bool { return releases[a].at < releases[b].at })

	tr := &CoreTrace{Specs: specs, Horizon: horizon}
	tr.Jobs = make([]Job, len(releases))
	for i, r := range releases {
		tr.Jobs[i] = Job{Task: r.task, Release: r.at, Start: -1, Finish: -1}
	}

	var ready readyQueue
	heap.Init(&ready)
	now := Time(0)
	nextRel := 0
	var running *pending // the job currently holding the processor

	admit := func() {
		for nextRel < len(releases) && releases[nextRel].at <= now+timeEps {
			r := releases[nextRel]
			heap.Push(&ready, &pending{
				job:       nextRel,
				prio:      specs[r.task].Prio,
				seq:       nextRel,
				remaining: specs[r.task].C,
				nonPre:    specs[r.task].NonPreemptive,
			})
			nextRel++
		}
	}
	admit()

	for now < horizon-timeEps {
		// Choose the job to run: a started non-preemptive job keeps the
		// processor; otherwise the highest-priority ready job runs.
		if running == nil || !(running.nonPre && running.started) {
			if len(ready) > 0 {
				top := ready[0]
				if running == nil {
					running = top
					heap.Pop(&ready)
				} else if top.prio < running.prio {
					// Preempt: running returns to the queue.
					if running.started && running.remaining > timeEps {
						tr.Jobs[running.job].Preemptions++
					}
					heap.Push(&ready, running)
					running = top
					heap.Pop(&ready)
				}
			}
		}

		if running == nil {
			// Idle until the next release (or horizon).
			if nextRel >= len(releases) {
				tr.IdleTime += horizon - now
				now = horizon
				break
			}
			next := releases[nextRel].at
			if next > horizon {
				next = horizon
			}
			tr.IdleTime += next - now
			now = next
			admit()
			continue
		}

		if !running.started {
			running.started = true
			tr.Jobs[running.job].Start = now
		}
		// Run until completion or the next release, whichever is first.
		runUntil := now + running.remaining
		if nextRel < len(releases) && releases[nextRel].at < runUntil {
			runUntil = releases[nextRel].at
		}
		if runUntil > horizon {
			runUntil = horizon
		}
		running.remaining -= runUntil - now
		now = runUntil
		admit()
		if running.remaining <= timeEps {
			tr.Jobs[running.job].Finish = now
			running = nil
		}
	}

	// Post-process statistics.
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		if j.Start < 0 {
			tr.Unstarted++
			continue
		}
		if j.Finish >= 0 && j.Finish > j.Release+specs[j.Task].T+timeEps {
			tr.Misses++
		}
	}
	return tr, nil
}

// SystemTrace bundles the per-core traces of a partitioned platform.
type SystemTrace struct {
	Cores []*CoreTrace
}

// SimulateSystem simulates every core independently (partitioned scheduling
// has no cross-core interaction) for the same horizon.
func SimulateSystem(perCore [][]TaskSpec, horizon Time) (*SystemTrace, error) {
	st := &SystemTrace{Cores: make([]*CoreTrace, len(perCore))}
	for c, specs := range perCore {
		tr, err := SimulateCore(specs, horizon)
		if err != nil {
			return nil, fmt.Errorf("sim: core %d: %w", c, err)
		}
		st.Cores[c] = tr
	}
	return st, nil
}

// TotalMisses sums deadline misses across cores.
func (st *SystemTrace) TotalMisses() int {
	var n int
	for _, c := range st.Cores {
		n += c.Misses
	}
	return n
}

// MaxObservedResponse returns the largest response time among the finished
// jobs of one task, or -1 when no job of the task finished.
func (tr *CoreTrace) MaxObservedResponse(task int) Time {
	worst := Time(-1)
	for _, j := range tr.Jobs {
		if j.Task != task || j.Finish < 0 {
			continue
		}
		if r := j.ResponseTime(); r > worst {
			worst = r
		}
	}
	return worst
}

// ResponseTimes returns the response times of all finished jobs of a task,
// in release order.
func (tr *CoreTrace) ResponseTimes(task int) []Time {
	var out []Time
	for _, j := range tr.Jobs {
		if j.Task == task && j.Finish >= 0 {
			out = append(out, j.ResponseTime())
		}
	}
	return out
}
