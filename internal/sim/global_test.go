package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGlobalSlackValidation(t *testing.T) {
	if _, err := SimulateGlobalSlack(nil, nil, 100); err == nil {
		t.Fatal("no cores must error")
	}
	rt := [][]TaskSpec{{{Name: "a", C: 1, T: 10, Prio: 0}}}
	if _, err := SimulateGlobalSlack(rt, nil, 0); err == nil {
		t.Fatal("zero horizon must error")
	}
	badRT := [][]TaskSpec{{{Name: "a", C: 0, T: 10}}}
	if _, err := SimulateGlobalSlack(badRT, nil, 100); err == nil {
		t.Fatal("invalid rt spec must error")
	}
	badSec := []TaskSpec{{Name: "s", C: 0, T: 10}}
	if _, err := SimulateGlobalSlack(rt, badSec, 100); err == nil {
		t.Fatal("invalid security spec must error")
	}
}

func TestGlobalSlackRTScheduleUntouched(t *testing.T) {
	// RT jobs must see exactly the same schedule with and without migrating
	// security jobs in the system.
	rt := [][]TaskSpec{
		{{Name: "a", C: 4, T: 10, Prio: 0}},
		{{Name: "b", C: 6, T: 20, Prio: 0}},
	}
	sec := []TaskSpec{
		{Name: "s0", C: 5, T: 50, Prio: 100, Kind: KindSecurity},
		{Name: "s1", C: 8, T: 100, Prio: 101, Kind: KindSecurity},
	}
	withSec, err := SimulateGlobalSlack(rt, sec, 500)
	if err != nil {
		t.Fatal(err)
	}
	withoutSec, err := SimulateGlobalSlack(rt, nil, 500)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		a, b := withSec.Cores[c].Jobs, withoutSec.Cores[c].Jobs
		if len(a) != len(b) {
			t.Fatalf("core %d: job counts differ", c)
		}
		for i := range a {
			if a[i].Start != b[i].Start || a[i].Finish != b[i].Finish {
				t.Fatalf("core %d job %d: RT schedule perturbed: %+v vs %+v", c, i, a[i], b[i])
			}
		}
	}
	if withSec.Cores[0].Misses != 0 || withSec.Cores[1].Misses != 0 {
		t.Fatal("RT misses in a feasible workload")
	}
}

func TestGlobalSlackSecurityMigrates(t *testing.T) {
	// Core 0 is saturated early; core 1 is idle. A security job "homed"
	// anywhere must run immediately on core 1 under global slack.
	rt := [][]TaskSpec{
		{{Name: "hog", C: 9, T: 10, Prio: 0}},
		{}, // idle core
	}
	sec := []TaskSpec{{Name: "s", C: 5, T: 100, Prio: 100, Kind: KindSecurity}}
	st, err := SimulateGlobalSlack(rt, sec, 200)
	if err != nil {
		t.Fatal(err)
	}
	secJobs := st.Cores[2].JobsOf(0)
	if len(secJobs) != 2 {
		t.Fatalf("security jobs = %d", len(secJobs))
	}
	// First job starts at 0 on the idle core and completes at 5 despite the
	// hog on core 0.
	if secJobs[0].Start != 0 || secJobs[0].Finish != 5 {
		t.Fatalf("security job should use the idle core: %+v", secJobs[0])
	}
}

func TestGlobalSlackFasterThanPartitioned(t *testing.T) {
	// Partitioned: security pinned to the loaded core finishes late.
	// Global: it escapes to the idle core.
	rtLoaded := []TaskSpec{{Name: "rt", C: 8, T: 10, Prio: 0}}
	sec := TaskSpec{Name: "s", C: 6, T: 100, Prio: 100, Kind: KindSecurity}

	pinned, err := SimulateCore(append(append([]TaskSpec{}, rtLoaded...), sec), 100)
	if err != nil {
		t.Fatal(err)
	}
	pinnedJob := pinned.JobsOf(1)[0]

	global, err := SimulateGlobalSlack([][]TaskSpec{rtLoaded, {}}, []TaskSpec{sec}, 100)
	if err != nil {
		t.Fatal(err)
	}
	globalJob := global.Cores[2].JobsOf(0)[0]
	if globalJob.Finish >= pinnedJob.Finish {
		t.Fatalf("global slack should finish earlier: %v vs %v", globalJob.Finish, pinnedJob.Finish)
	}
}

func TestGlobalSlackSecurityEvictedByRT(t *testing.T) {
	// Security job starts on a core, RT job arrives there, security must not
	// delay it.
	rt := [][]TaskSpec{{{Name: "rt", C: 5, T: 100, Offset: 2, Prio: 0}}}
	sec := []TaskSpec{{Name: "s", C: 10, T: 100, Prio: 100, Kind: KindSecurity}}
	st, err := SimulateGlobalSlack(rt, sec, 100)
	if err != nil {
		t.Fatal(err)
	}
	rtJob := st.Cores[0].JobsOf(0)[0]
	if rtJob.Start != 2 || rtJob.Finish != 7 {
		t.Fatalf("RT job delayed by security job: %+v", rtJob)
	}
	secJob := st.Cores[1].JobsOf(0)[0]
	// Security: runs [0,2), evicted, resumes [7, 15).
	if secJob.Finish != 15 {
		t.Fatalf("security completion = %v, want 15", secJob.Finish)
	}
	if secJob.Preemptions != 1 {
		t.Fatalf("security preemptions = %d, want 1", secJob.Preemptions)
	}
}

// Property: on a single core, global-slack and partitioned simulation agree
// for the same task system (global degenerates to partitioned).
func TestGlobalMatchesPartitionedSingleCoreProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt := []TaskSpec{{Name: "rt", C: 1 + 3*rng.Float64(), T: 10 + 10*rng.Float64(), Prio: 0}}
		sec := []TaskSpec{{Name: "s", C: 1 + 2*rng.Float64(), T: 30 + 30*rng.Float64(), Prio: 100, Kind: KindSecurity}}
		combined := append(append([]TaskSpec{}, rt...), sec...)
		pinned, err := SimulateCore(combined, 300)
		if err != nil {
			return false
		}
		global, err := SimulateGlobalSlack([][]TaskSpec{rt}, sec, 300)
		if err != nil {
			return false
		}
		pj := pinned.JobsOf(1)
		gj := global.Cores[1].JobsOf(0)
		if len(pj) != len(gj) {
			return false
		}
		for i := range pj {
			if pj[i].Finish != gj[i].Finish {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
