package sim

import (
	"strings"
	"testing"
)

func TestWriteGanttBasic(t *testing.T) {
	specs := []TaskSpec{
		{Name: "hi", C: 2, T: 10, Prio: 0},
		{Name: "lo", C: 4, T: 20, Prio: 1},
	}
	tr, err := SimulateCore(specs, 40)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tr.WriteGantt(&sb, GanttOptions{Width: 40}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "t=[0, 40) ms") {
		t.Fatalf("header: %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, "#") {
			t.Fatalf("row without execution: %q", l)
		}
	}
	// The preempted low task shows waiting dots at t=0 region? lo is released
	// at 0 but hi runs first, so lo's row must contain at least one '.'.
	if !strings.Contains(lines[2], ".") {
		t.Fatalf("lo row should show waiting time: %q", lines[2])
	}
}

func TestWriteGanttWindow(t *testing.T) {
	specs := []TaskSpec{{Name: "a", C: 2, T: 10, Prio: 0}}
	tr, err := SimulateCore(specs, 100)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tr.WriteGantt(&sb, GanttOptions{From: 50, To: 60, Width: 10}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "t=[50, 60) ms") {
		t.Fatalf("window header wrong:\n%s", sb.String())
	}
	// Empty window must error.
	if err := tr.WriteGantt(&sb, GanttOptions{From: 60, To: 60}); err == nil {
		t.Fatal("empty window must error")
	}
}

func TestWriteGanttDefaultsAndClamps(t *testing.T) {
	specs := []TaskSpec{{Name: "a", C: 2, T: 10, Prio: 0}}
	tr, err := SimulateCore(specs, 30)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	// To beyond the horizon clamps; zero width defaults.
	if err := tr.WriteGantt(&sb, GanttOptions{To: 1e9}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "t=[0, 30) ms") {
		t.Fatalf("horizon clamp failed:\n%s", sb.String())
	}
}
