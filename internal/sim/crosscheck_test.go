package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hydra/internal/rts"
)

// Cross-validation between the simulator and the analytical models in
// internal/rts: the simulated synchronous (offset-0) schedule must never
// exceed the exact response-time-analysis bound, and at the critical instant
// the first job of the lowest-priority task must achieve it exactly.

func TestSimMatchesRTAAtCriticalInstant(t *testing.T) {
	tasks := []rts.RTTask{
		rts.NewRTTask("t1", 1, 4),
		rts.NewRTTask("t2", 2, 6),
		rts.NewRTTask("t3", 3, 12),
	}
	specs := make([]TaskSpec, len(tasks))
	for i, task := range tasks {
		specs[i] = TaskSpec{Name: task.Name, C: task.C, T: task.T, Prio: i}
	}
	tr, err := SimulateCore(specs, 120)
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range tasks {
		bound, ok := rts.ResponseTime(task.C, task.D, tasks[:i])
		if !ok {
			t.Fatalf("task %d not schedulable analytically", i)
		}
		first := tr.JobsOf(i)[0]
		if first.ResponseTime() != bound {
			t.Fatalf("task %d: first-job response %v != RTA bound %v", i, first.ResponseTime(), bound)
		}
		if worst := tr.MaxObservedResponse(i); worst > bound+1e-9 {
			t.Fatalf("task %d: observed worst %v exceeds RTA bound %v", i, worst, bound)
		}
	}
}

// Property: for random schedulable synchronous tasksets, every simulated
// response time is bounded by the RTA worst case, and the first job hits it.
func TestSimNeverExceedsRTAProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		tasks := make([]rts.RTTask, n)
		for i := range tasks {
			period := 10 + 190*rng.Float64()
			u := 0.05 + 0.15*rng.Float64()
			tasks[i] = rts.NewRTTask("t", u*period, period)
		}
		rts.SortRateMonotonic(tasks)
		if !rts.CoreSchedulable(tasks) {
			return true
		}
		specs := make([]TaskSpec, n)
		for i, task := range tasks {
			specs[i] = TaskSpec{Name: task.Name, C: task.C, T: task.T, Prio: i}
		}
		tr, err := SimulateCore(specs, 2000)
		if err != nil {
			return false
		}
		for i, task := range tasks {
			bound, ok := rts.ResponseTime(task.C, task.D, tasks[:i])
			if !ok {
				return false
			}
			if worst := tr.MaxObservedResponse(i); worst > bound+1e-6 {
				return false
			}
			first := tr.JobsOf(i)[0]
			if first.Finish >= 0 && first.ResponseTime() > bound+1e-6 {
				return false
			}
		}
		return tr.Misses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestResponseTimesHelper(t *testing.T) {
	specs := []TaskSpec{{Name: "a", C: 2, T: 10, Prio: 0}}
	tr, err := SimulateCore(specs, 35)
	if err != nil {
		t.Fatal(err)
	}
	rs := tr.ResponseTimes(0)
	if len(rs) != 4 {
		t.Fatalf("response times = %v", rs)
	}
	for _, r := range rs {
		if r != 2 {
			t.Fatalf("response = %v, want 2", r)
		}
	}
	if tr.MaxObservedResponse(0) != 2 {
		t.Fatalf("max observed = %v", tr.MaxObservedResponse(0))
	}
	if tr.MaxObservedResponse(99) != -1 {
		t.Fatal("unknown task must return -1")
	}
}
