package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// GanttOptions controls the text timeline rendering.
type GanttOptions struct {
	From, To Time // window to render; To <= 0 means the trace horizon
	Width    int  // characters across the window; default 100
}

// WriteGantt renders a per-task text timeline of the core's schedule:
// one row per task, '#' where the task is executing, '.' where it is
// released-but-waiting, and spaces when inactive. Execution intervals are
// reconstructed from job (Start, Finish, Preemptions) conservatively: a
// preempted job's busy time is drawn from its start to its finish minus the
// idle gaps that belong to higher-priority rows, so overlapping '#' cells
// between rows can occur only for preempted jobs — the renderer is a
// human-inspection aid, not an analysis tool.
func (tr *CoreTrace) WriteGantt(w io.Writer, opt GanttOptions) error {
	width := opt.Width
	if width <= 0 {
		width = 100
	}
	from := opt.From
	to := opt.To
	if to <= 0 || to > tr.Horizon {
		to = tr.Horizon
	}
	if !(to > from) {
		return fmt.Errorf("sim: empty gantt window [%g, %g)", from, to)
	}
	scale := float64(width) / (to - from)
	cell := func(t Time) int {
		c := int((t - from) * scale)
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	// Longest name for alignment.
	nameW := 4
	for _, s := range tr.Specs {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}

	header := fmt.Sprintf("%-*s |%s| t=[%.0f, %.0f) ms", nameW, "task", strings.Repeat("-", width), from, to)
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}

	// Jobs per task sorted by release.
	jobsPerTask := make([][]Job, len(tr.Specs))
	for _, j := range tr.Jobs {
		jobsPerTask[j.Task] = append(jobsPerTask[j.Task], j)
	}
	for ti := range jobsPerTask {
		sort.SliceStable(jobsPerTask[ti], func(a, b int) bool {
			return jobsPerTask[ti][a].Release < jobsPerTask[ti][b].Release
		})
	}

	for ti, spec := range tr.Specs {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, j := range jobsPerTask[ti] {
			if j.Release >= to {
				break
			}
			end := j.Finish
			if end < 0 {
				end = to
			}
			if end <= from {
				continue
			}
			// Waiting segment: release -> start (or window end).
			ws := j.Start
			if ws < 0 {
				ws = to
			}
			for c := cell(j.Release); c <= cell(minT(ws, to)); c++ {
				if row[c] == ' ' {
					row[c] = '.'
				}
			}
			if j.Start >= 0 {
				for c := cell(maxT(j.Start, from)); c <= cell(minT(end, to)); c++ {
					row[c] = '#'
				}
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", nameW, spec.Name, string(row)); err != nil {
			return err
		}
	}
	return nil
}

func minT(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

func maxT(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
