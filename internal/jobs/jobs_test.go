package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hydra/internal/engine"
	"hydra/internal/experiments"
)

// slowSpec is a registered test experiment with a controllable per-cell
// delay, so manager cancellation and restart tests have predictable timing.
// It follows the same campaign-hook contract as the real specs.
type slowSpec struct{}

type slowSpecConfig struct {
	Cells   int
	DelayMS int
	Workers int
	Seed    int64
}

func (slowSpec) Name() string { return "test-slow-spec" }

func (slowSpec) Run(ctx context.Context, config json.RawMessage, h experiments.Hooks) (any, error) {
	var cfg slowSpecConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return nil, err
	}
	cells := make([]int, cfg.Cells)
	if h.Total != nil {
		h.Total(len(cells))
	}
	opts := engine.Options{Workers: cfg.Workers, Seed: cfg.Seed}
	if h.OnCell != nil {
		opts.OnCell = func(idx int, r any) {
			b, err := json.Marshal(r.(float64))
			if err != nil {
				return
			}
			h.OnCell(idx, b)
		}
	}
	if h.Resume != nil {
		opts.Precomputed = func(idx int) (any, bool) {
			b, ok := h.Resume(idx)
			if !ok {
				return nil, false
			}
			var v float64
			if err := json.Unmarshal(b, &v); err != nil {
				return nil, false
			}
			return v, true
		}
	}
	results, err := engine.Run(ctx, cells, func(ctx context.Context, idx int, rng *rand.Rand, cell int) (float64, error) {
		time.Sleep(time.Duration(cfg.DelayMS) * time.Millisecond)
		return rng.Float64(), nil
	}, opts)
	if err != nil {
		return nil, err
	}
	var sum float64
	for _, v := range results {
		sum += v
	}
	return map[string]any{"sum": sum, "values": results}, nil
}

func TestMain(m *testing.M) {
	experiments.RegisterSpec(slowSpec{})
	os.Exit(m.Run())
}

// fig2Config builds the small acceptance-ratio campaign the determinism
// tests run: 19 utilization levels x 4 draws = 76 cells at M=2.
func fig2Config(workers int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(
		`{"M": 2, "TasksetsPerPoint": 4, "UtilStepFrac": 0.05, "Seed": 11, "Workers": %d}`, workers))
}

// The tentpole guarantee: a campaign cancelled mid-grid and resumed emits a
// result byte-identical to an uninterrupted run, at 1 worker and at 8.
func TestCampaignKillResumeByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := fig2Config(workers)

			clean, err := Create(t.TempDir(), "fig2", cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := clean.Run(context.Background(), nil)
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			interrupted, err := Create(dir, "fig2", cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			_, err = interrupted.Run(ctx, func(p Progress) {
				if p.Done >= 10 {
					cancel() // kill the campaign mid-grid
				}
			})
			if err == nil {
				t.Fatal("interrupted run must error")
			}
			if m := interrupted.Meta(); m.State != StateRunning {
				t.Fatalf("interrupted campaign state = %s, want running (resumable)", m.State)
			}

			resumed, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			ck := resumed.Checkpointed()
			if ck < 10 || ck >= 76 {
				t.Fatalf("checkpointed cells = %d, want a partial grid", ck)
			}
			var last Progress
			got, err := resumed.Run(context.Background(), func(p Progress) { last = p })
			if err != nil {
				t.Fatal(err)
			}
			if last.Replayed < 10 || last.Total != 76 || last.Done != 76 {
				t.Fatalf("resume progress %+v, want replayed>=10 over 76/76", last)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("resumed result differs from uninterrupted run:\n%s\nvs\n%s", got, want)
			}
			if m := resumed.Meta(); m.State != StateDone {
				t.Fatalf("state after resume = %s, want done", m.State)
			}
			// The persisted result matches what Run returned.
			onDisk, err := resumed.Result()
			if err != nil || !bytes.Equal(onDisk, want) {
				t.Fatalf("result.json mismatch (err %v)", err)
			}
		})
	}
}

// A torn final checkpoint line (process killed mid-append) is discarded and
// the lost cell recomputed; the result is still byte-identical.
func TestCampaignTornCheckpointTail(t *testing.T) {
	cfg := fig2Config(2)
	clean, err := Create(t.TempDir(), "fig2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	c, err := Create(dir, "fig2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := c.Run(ctx, func(p Progress) {
		if p.Done >= 5 {
			cancel()
		}
	}); err == nil {
		t.Fatal("interrupted run must error")
	}
	// Tear the log: chop the final line in half mid-record.
	logPath := filepath.Join(dir, cellsFile)
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("torn checkpoint changed the result")
	}
}

// A checkpoint entry whose payload no longer decodes (e.g. written by an
// older cell-result shape) is recomputed without double-counting progress.
func TestCampaignCorruptEntryProgressAccounting(t *testing.T) {
	cfg := fig2Config(2)
	clean, err := Create(t.TempDir(), "fig2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	c, err := Create(dir, "fig2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := c.Run(ctx, func(p Progress) {
		if p.Done >= 8 {
			cancel()
		}
	}); err == nil {
		t.Fatal("interrupted run must error")
	}
	// Replace one entry's payload with valid JSON that does not decode as a
	// fig2 cell result.
	logPath := filepath.Join(dir, cellsFile)
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	var first checkpointLine
	if err := json.Unmarshal(lines[0], &first); err != nil {
		t.Fatal(err)
	}
	lines[0], err = json.Marshal(checkpointLine{Idx: first.Idx, Result: json.RawMessage(`42`)})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, append(bytes.Join(lines, []byte("\n")), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck := resumed.Checkpointed()
	var last Progress
	got, err := resumed.Run(context.Background(), func(p Progress) { last = p })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("corrupt entry changed the result")
	}
	// The corrupt cell recomputed: counted once in Done, not in Replayed.
	if last.Done != last.Total || last.Replayed != ck-1 {
		t.Fatalf("progress %+v with %d checkpointed, want Done==Total and Replayed==%d", last, ck, ck-1)
	}
}

// A failed campaign re-run to success must drop its stale error.
func TestCampaignRerunAfterFailureClearsError(t *testing.T) {
	dir := t.TempDir()
	c, err := Create(dir, "table1", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a past transient failure persisted in the manifest.
	c.mu.Lock()
	c.meta.State = StateFailed
	c.meta.Error = "boom"
	if err := c.writeMetaLocked(); err != nil {
		t.Fatal(err)
	}
	c.mu.Unlock()

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reopened.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if m := reopened.Meta(); m.State != StateDone || m.Error != "" {
		t.Fatalf("meta after successful re-run: %+v, want done with no error", m)
	}
}

// Cancelling an already-terminal job must not rewrite its persisted state.
func TestManagerCancelOfFailedJobKeepsFailure(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit("fig2", json.RawMessage(`{"Bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got, _ := m.Get(st.ID); got.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never failed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := m.Cancel(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed {
		t.Fatalf("cancel of failed job reported %s, want failed", got.State)
	}
	m.Close()

	// The failure (and its error) survives a restart untouched.
	m2, err := NewManager(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	after, ok := m2.Get(st.ID)
	if !ok || after.State != StateFailed || after.Error == "" {
		t.Fatalf("job after restart: %+v, want failed with error", after)
	}
}

func TestCampaignCreateAndOpenErrors(t *testing.T) {
	if _, err := Create(t.TempDir(), "bogus", nil); err == nil {
		t.Fatal("unknown spec must error")
	}
	dir := t.TempDir()
	if _, err := Create(dir, "table1", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, "table1", nil); err == nil {
		t.Fatal("double create in one directory must error")
	}
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("open of an empty directory must error")
	}
}

func TestCampaignCancelledRefusesRun(t *testing.T) {
	dir := t.TempDir()
	c, err := Create(dir, "table1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MarkCancelled(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), nil); !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	// And the cancellation is persistent.
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reopened.Run(context.Background(), nil); !errors.Is(err, ErrCancelled) {
		t.Fatalf("reopened err = %v, want ErrCancelled", err)
	}
}

func TestCampaignCompletedReturnsPersistedResult(t *testing.T) {
	dir := t.TempDir()
	c, err := Create(dir, "table1", nil)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	again, err := reopened.Run(context.Background(), nil)
	if err != nil || !bytes.Equal(first, again) {
		t.Fatalf("completed campaign re-run: err=%v, bytes equal=%v", err, bytes.Equal(first, again))
	}
}

// waitState polls a job until it reaches want (or any terminal state).
func waitState(t *testing.T, m *Manager, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Status{}
}

func slowConfig(cells, delayMS int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"Cells": %d, "DelayMS": %d, "Workers": 1, "Seed": 5}`, cells, delayMS))
}

func TestManagerSubmitRunsToCompletion(t *testing.T) {
	m, err := NewManager(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st, err := m.Submit("test-slow-spec", slowConfig(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, st.ID, StateDone)
	if final.TotalCells != 10 || final.DoneCells != 10 || final.ReplayedCells != 0 {
		t.Fatalf("final status %+v", final)
	}
	body, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Sum    float64   `json:"sum"`
		Values []float64 `json:"values"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 10 || res.Sum == 0 {
		t.Fatalf("result %+v", res)
	}
	c := m.Counters()
	if c.Submitted != 1 || c.Done != 1 || c.CellsCompleted != 10 {
		t.Fatalf("counters %+v", c)
	}
}

func TestManagerUnknownSpecAndUnknownJob(t *testing.T) {
	m, err := NewManager(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Submit("bogus", nil); err == nil {
		t.Fatal("unknown spec must error")
	}
	if _, ok := m.Get("nope"); ok {
		t.Fatal("unknown job must not resolve")
	}
	if _, err := m.Result("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestManagerBadConfigFailsJob(t *testing.T) {
	m, err := NewManager(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st, err := m.Submit("fig2", json.RawMessage(`{"Bogus": true}`))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := m.Get(st.ID)
		if got.State == StateFailed {
			if got.Error == "" {
				t.Fatal("failed job must carry its error")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestManagerCancelRunningJob(t *testing.T) {
	m, err := NewManager(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st, err := m.Submit("test-slow-spec", slowConfig(500, 10)) // 5s uncancelled
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateRunning)
	start := time.Now()
	got, err := m.Cancel(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state after cancel = %s", got.State)
	}
	// The run slot frees promptly (between cells), long before 5s.
	next, err := m.Submit("test-slow-spec", slowConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, next.ID, StateDone)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancellation was not prompt: %v", elapsed)
	}
	if _, err := m.Result(st.ID); err == nil {
		t.Fatal("cancelled job must not serve a result")
	}
}

func TestManagerMaxJobsQueuesAndCancelSkipsQueued(t *testing.T) {
	m, err := NewManager(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	first, err := m.Submit("test-slow-spec", slowConfig(300, 10))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, first.ID, StateRunning)
	second, err := m.Submit("test-slow-spec", slowConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := m.Get(second.ID); st.State != StateQueued {
		t.Fatalf("second job state = %s, want queued behind max-jobs=1", st.State)
	}
	if c := m.Counters(); c.Queued != 1 || c.Running != 1 {
		t.Fatalf("counters %+v", c)
	}
	// Cancelling the queued job prevents it from ever starting.
	if _, err := m.Cancel(second.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if st, _ := m.Get(second.ID); st.State != StateCancelled || st.DoneCells != 0 {
		t.Fatalf("queued-then-cancelled job: %+v", st)
	}
}

// A manager killed mid-campaign (Close cancels between cells) leaves the
// campaign resumable; a new manager on the same directory finishes it and
// the result is byte-identical to an uninterrupted run.
func TestManagerRestartResumesInterruptedJob(t *testing.T) {
	cfg := slowConfig(150, 5) // ~750ms uncancelled
	cleanDir := t.TempDir()
	clean, err := Create(cleanDir, "test-slow-spec", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	m1, err := NewManager(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit("test-slow-spec", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Let it checkpoint a few cells, then kill the manager.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := m1.Get(st.ID)
		if got.DoneCells >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job made no progress: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	m1.Close()

	m2, err := NewManager(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if c := m2.Counters(); c.Resumed != 1 {
		t.Fatalf("counters after restart: %+v", c)
	}
	final := waitState(t, m2, st.ID, StateDone)
	if final.ReplayedCells < 5 {
		t.Fatalf("resume did not replay checkpointed cells: %+v", final)
	}
	got, err := m2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restarted job result differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
}

func TestManagerWatchSeesTerminalState(t *testing.T) {
	m, err := NewManager(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st, err := m.Submit("test-slow-spec", slowConfig(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		got, ok := m.Get(st.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if got.State.Terminal() {
			if got.State != StateDone {
				t.Fatalf("terminal state %s", got.State)
			}
			return
		}
		ch, ok := m.Watch(st.ID)
		if !ok {
			t.Fatal("watch on live job failed")
		}
		select {
		case <-ch:
		case <-deadline:
			t.Fatal("no status change before deadline")
		}
	}
}
