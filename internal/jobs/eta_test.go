package jobs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden status files")

// TestJustSubmittedStatusGolden pins the status JSON of a campaign that has
// not completed a single cell: the throughput ETA has no data yet, so eta_ms
// must be absent — not 0/0 or x/0 leaked as Inf/NaN (which encoding/json
// refuses to marshal at all, turning a status poll into a 500).
func TestJustSubmittedStatusGolden(t *testing.T) {
	m, err := NewManager(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Occupy the only run slot so the next submission deterministically
	// stays queued with zero progress.
	blocker, err := m.Submit("test-slow-spec", json.RawMessage(`{"Cells": 200, "DelayMS": 50, "Workers": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := m.Get(blocker.ID)
		if ok && st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker never started running: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	st, err := m.Submit("test-slow-spec", json.RawMessage(`{"Cells": 4, "DelayMS": 1, "Workers": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		t.Fatalf("a just-submitted status must marshal cleanly: %v", err)
	}
	// The random job id is the only nondeterministic field.
	body = bytes.Replace(body, []byte(st.ID), []byte("JOBID"), 1)

	path := filepath.Join("testdata", "status_just_submitted.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(body, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(append(body, '\n'), want) {
		t.Fatalf("status drifted from golden %s:\ngot:\n%s\nwant:\n%s", path, body, want)
	}
	for _, forbidden := range []string{"eta_ms", "Inf", "NaN", "null"} {
		if strings.Contains(string(body), forbidden) {
			t.Fatalf("just-submitted status contains %q:\n%s", forbidden, body)
		}
	}
}

// TestEtaGuards white-boxes snapshot's division guards: no ETA without fresh
// cells, without a start timestamp, or on a finished grid — and a genuine
// throughput sample yields a finite positive ETA.
func TestEtaGuards(t *testing.T) {
	m := &Manager{}
	cases := []struct {
		name    string
		job     func() *Job
		wantEta bool
	}{
		{"queued zero progress", func() *Job {
			return &Job{state: StateQueued, prog: Progress{Total: 10}}
		}, false},
		{"running zero fresh cells", func() *Job {
			return &Job{state: StateRunning, prog: Progress{Total: 10, Done: 4, Replayed: 4}, started: time.Now()}
		}, false},
		{"running unset start time", func() *Job {
			return &Job{state: StateRunning, prog: Progress{Total: 10, Done: 4}, fresh: 4}
		}, false},
		{"running all cells done", func() *Job {
			return &Job{state: StateRunning, prog: Progress{Total: 10, Done: 10}, fresh: 10, started: time.Now().Add(-time.Second)}
		}, false},
		{"running with throughput", func() *Job {
			return &Job{state: StateRunning, prog: Progress{Total: 10, Done: 4}, fresh: 4, started: time.Now().Add(-time.Second)}
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := tc.job()
			j.changed = make(chan struct{})
			st := m.snapshot(j)
			if gotEta := st.EtaMS != 0; gotEta != tc.wantEta {
				t.Fatalf("EtaMS = %g, want eta present=%v", st.EtaMS, tc.wantEta)
			}
			body, err := json.Marshal(st)
			if err != nil {
				t.Fatalf("status must marshal: %v", err)
			}
			if s := string(body); strings.Contains(s, "Inf") || strings.Contains(s, "NaN") {
				t.Fatalf("status leaks a non-finite number: %s", s)
			}
			if tc.wantEta && (st.EtaMS < 0 || st.EtaMS > float64(time.Hour/time.Millisecond)) {
				t.Fatalf("implausible ETA %g ms", st.EtaMS)
			}
		})
	}
}
