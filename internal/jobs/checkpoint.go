package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// checkpointLine is one cells.jsonl record: a completed grid cell and its
// spec-encoded result.
type checkpointLine struct {
	Idx    int             `json:"idx"`
	Result json.RawMessage `json:"result"`
}

// loadCheckpoint replays a cells.jsonl log into an idx -> result map. The
// log is append-only and may end in a truncated line when the writing
// process was killed mid-append; everything from the first malformed line on
// is discarded and truncated away so future appends keep the file
// well-formed. A missing log is an empty checkpoint.
func loadCheckpoint(path string) (map[int][]byte, error) {
	done := map[int][]byte{}
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return done, nil
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: read checkpoint: %w", err)
	}
	valid := 0 // byte length of the well-formed prefix
	for off := 0; off < len(raw); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // truncated final line
		}
		line := raw[off : off+nl]
		var rec checkpointLine
		if err := json.Unmarshal(line, &rec); err != nil || rec.Idx < 0 || len(rec.Result) == 0 {
			break // corrupt from here on; drop the tail
		}
		done[rec.Idx] = append([]byte(nil), rec.Result...)
		off += nl + 1
		valid = off
	}
	if valid < len(raw) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, fmt.Errorf("jobs: trim torn checkpoint tail: %w", err)
		}
	}
	return done, nil
}
