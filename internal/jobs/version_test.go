package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyFig2 is a 2-point grid small enough to run to completion in every
// version-routing case below.
const tinyFig2 = `{"M": 2, "TasksetsPerPoint": 2, "UtilStepFrac": 0.5, "Seed": 11}`

// New campaigns default to results_version 2; a config that pins a version
// gets that version stamped instead; an unknown version is a Create error.
func TestCreateStampsResultsVersion(t *testing.T) {
	c, err := Create(t.TempDir(), "fig2", json.RawMessage(tinyFig2))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Meta().ResultsVersion; got != 2 {
		t.Fatalf("default campaign stamped results_version %d, want 2", got)
	}

	pinned, err := Create(t.TempDir(), "fig2",
		json.RawMessage(strings.Replace(tinyFig2, `"Seed": 11`, `"Seed": 11, "results_version": 1`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := pinned.Meta().ResultsVersion; got != 1 {
		t.Fatalf("v1-pinned campaign stamped results_version %d, want 1", got)
	}

	_, err = Create(t.TempDir(), "fig2",
		json.RawMessage(strings.Replace(tinyFig2, `"Seed": 11`, `"Seed": 11, "results_version": 9`, 1)))
	if err == nil || !strings.Contains(err.Error(), "results_version") {
		t.Fatalf("unknown version: err = %v, want explicit results_version error", err)
	}
	// table1 has a nil config; the default version must still stamp cleanly.
	nilCfg, err := Create(t.TempDir(), "table1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := nilCfg.Meta().ResultsVersion; got != 2 {
		t.Fatalf("nil-config campaign stamped results_version %d, want 2", got)
	}
}

// A manifest with no results_version field — every campaign that predates
// the field — must keep replaying under v1, byte-identical to an explicitly
// v1-pinned run. A manifest with an unknown version is an Open error.
func TestOpenLegacyManifestRunsV1(t *testing.T) {
	v1cfg := json.RawMessage(strings.Replace(tinyFig2, `"Seed": 11`, `"Seed": 11, "results_version": 1`, 1))
	pinned, err := Create(t.TempDir(), "fig2", v1cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pinned.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// A legacy campaign: created today, then campaign.json rewritten without
	// the results_version field (and a version-free config), exactly what a
	// pre-versioning checkpoint directory looks like on disk.
	dir := t.TempDir()
	if _, err := Create(dir, "fig2", json.RawMessage(tinyFig2)); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "campaign.json")
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var meta map[string]any
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	delete(meta, "results_version")
	meta["config"] = json.RawMessage(tinyFig2)
	stripped, err := json.Marshal(meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifest, stripped, 0o644); err != nil {
		t.Fatal(err)
	}

	legacy, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := legacy.Meta().ResultsVersion; got != 0 {
		t.Fatalf("legacy manifest read back results_version %d, want absent (0)", got)
	}
	got, err := legacy.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("legacy campaign result differs from explicit v1 run:\n%s\nvs\n%s", got, want)
	}

	// Unknown version in the manifest: explicit Open error, never a silent
	// fallback that would move the resumed campaign's streams.
	meta["results_version"] = 9
	corrupt, err := json.Marshal(meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifest, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "results_version") {
		t.Fatalf("unknown manifest version: err = %v, want explicit results_version error", err)
	}
}

// v1 and v2 campaigns over the same config must produce different result
// bytes — the version is routing the generator, not just a label.
func TestCampaignVersionsDiverge(t *testing.T) {
	run := func(version string) []byte {
		// A finer grid than tinyFig2: mid-range utilization levels are where
		// individual draws move the acceptance counts.
		base := `{"M": 2, "TasksetsPerPoint": 4, "UtilStepFrac": 0.05, "Seed": 11}`
		cfg := base
		if version != "" {
			cfg = strings.Replace(base, `"Seed": 11`, `"Seed": 11, "results_version": `+version, 1)
		}
		c, err := Create(t.TempDir(), "fig2", json.RawMessage(cfg))
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Run(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	v1 := run("1")
	v2 := run("2")
	def := run("")
	// Compare the draws themselves, not the result envelope: the envelope's
	// results_version label would make the bytes differ even if the version
	// never reached the generator.
	points := func(doc []byte) json.RawMessage {
		var res struct{ Points json.RawMessage }
		if err := json.Unmarshal(doc, &res); err != nil {
			t.Fatal(err)
		}
		return res.Points
	}
	if bytes.Equal(points(v1), points(v2)) {
		t.Fatal("v1 and v2 campaigns drew identical points")
	}
	if !bytes.Equal(def, v2) {
		t.Fatal("unpinned campaign did not default to v2")
	}
}
