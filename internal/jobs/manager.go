package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// StateQueued is the in-memory state of a job waiting for a run slot; it is
// never persisted (a queued campaign's manifest says "running", which is
// exactly what makes it resume after a crash).
const StateQueued State = "queued"

// Status is the externally visible snapshot of one job, shaped for the
// /v1/experiments API.
type Status struct {
	ID   string `json:"id"`
	Spec string `json:"spec"`
	// ResultsVersion is the campaign's stamped RNG version (see
	// Meta.ResultsVersion); 0 for campaigns created before versioning,
	// which replay under v1.
	ResultsVersion int   `json:"results_version,omitempty"`
	State          State `json:"state"`
	TotalCells     int   `json:"total_cells"`
	DoneCells      int   `json:"done_cells"`
	ReplayedCells  int   `json:"replayed_cells"`
	// EtaMS estimates the remaining runtime from the throughput of the
	// cells completed in this process (fresh cells / elapsed); 0 until the
	// first fresh cell completes or when the job is not running.
	EtaMS float64 `json:"eta_ms,omitempty"`
	Error string  `json:"error,omitempty"`
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Counters aggregates job activity for /v1/stats: monotonic process-lifetime
// counters (Submitted, Resumed, CellsCompleted) plus per-state gauges over
// every job the manager knows, including campaigns loaded from disk.
type Counters struct {
	Submitted      uint64 `json:"submitted"`
	Resumed        uint64 `json:"resumed"`
	Queued         int    `json:"queued"`
	Running        int    `json:"running"`
	Done           int    `json:"done"`
	Failed         int    `json:"failed"`
	Cancelled      int    `json:"cancelled"`
	CellsCompleted uint64 `json:"cells_completed"`
}

// Job is one managed campaign.
type Job struct {
	id      string
	spec    string // cached from the campaign manifest (avoids camp.mu under j.mu)
	version int    // results_version, cached like spec; immutable after Create/Open
	camp    *Campaign

	mu      sync.Mutex
	state   State
	prog    Progress
	errMsg  string
	cancel  context.CancelFunc
	changed chan struct{} // closed and replaced on every status change
	started time.Time     // when this process started running it
	fresh   int           // fresh cells completed this process
}

// notifyLocked wakes every watcher; callers hold j.mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// Manager hosts experiment campaigns as background jobs under one jobs
// directory (one campaign subdirectory per job, named by job id). At
// startup it reloads every campaign found there and resumes the interrupted
// ones; at most maxJobs campaigns run concurrently, the rest queue.
type Manager struct {
	dir       string
	ephemeral bool // dir is a temp dir we created; removed on Close
	ctx       context.Context
	cancel    context.CancelFunc
	sem       chan struct{}
	wg        sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*Job
	submitted uint64
	resumed   uint64
	cells     uint64
}

// ErrNotFound is returned for unknown job ids.
var ErrNotFound = errors.New("jobs: no such job")

// NewManager opens (creating if needed) the jobs directory and resumes every
// interrupted campaign found in it. An empty dir selects a fresh temporary
// directory (campaigns then survive only as long as the directory does).
// maxJobs bounds concurrently running campaigns; <= 0 selects 2.
func NewManager(dir string, maxJobs int) (*Manager, error) {
	var err error
	ephemeral := false
	if dir == "" {
		if dir, err = os.MkdirTemp("", "hydra-jobs-"); err != nil {
			return nil, err
		}
		ephemeral = true
	} else if err = os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if maxJobs <= 0 {
		maxJobs = 2
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		dir:       dir,
		ephemeral: ephemeral,
		ctx:       ctx,
		cancel:    cancel,
		sem:       make(chan struct{}, maxJobs),
		jobs:      map[string]*Job{},
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		cancel()
		return nil, err
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].Name() < entries[b].Name() })
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		camp, err := Open(filepath.Join(dir, e.Name()))
		if err != nil {
			continue // not a campaign directory (or unreadable); leave it alone
		}
		meta := camp.Meta()
		j := &Job{id: e.Name(), spec: meta.Spec, version: meta.ResultsVersion, camp: camp, changed: make(chan struct{})}
		j.state = meta.State
		j.errMsg = meta.Error
		j.prog = Progress{Done: camp.Checkpointed(), Replayed: camp.Checkpointed()}
		m.jobs[e.Name()] = j
		if meta.State == StateRunning {
			j.state = StateQueued
			m.resumed++
			m.launch(j)
		}
	}
	return m, nil
}

// Dir returns the jobs directory.
func (m *Manager) Dir() string { return m.dir }

// Close cancels every running campaign (between grid cells) and waits for
// them to unwind. Interrupted campaigns stay resumable: their manifests
// still say "running", so the next Manager on the same directory picks them
// back up.
func (m *Manager) Close() {
	m.cancel()
	m.wg.Wait()
	if m.ephemeral {
		os.RemoveAll(m.dir)
	}
}

// Submit creates a new campaign for the named experiment spec and schedules
// it. The returned Status reflects the freshly queued job.
func (m *Manager) Submit(spec string, config json.RawMessage) (Status, error) {
	id, err := newID()
	if err != nil {
		return Status{}, err
	}
	camp, err := Create(filepath.Join(m.dir, id), spec, config)
	if err != nil {
		return Status{}, err
	}
	j := &Job{id: id, spec: spec, version: camp.Meta().ResultsVersion, camp: camp, state: StateQueued, changed: make(chan struct{})}
	m.mu.Lock()
	m.jobs[id] = j
	m.submitted++
	m.mu.Unlock()
	m.launch(j)
	return m.snapshot(j), nil
}

// launch schedules a job onto the bounded run pool.
func (m *Manager) launch(j *Job) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		select {
		case m.sem <- struct{}{}:
			defer func() { <-m.sem }()
		case <-m.ctx.Done():
			return // shutting down; the campaign stays resumable
		}
		j.mu.Lock()
		if j.state != StateQueued { // cancelled while waiting for a slot
			j.mu.Unlock()
			return
		}
		ctx, cancel := context.WithCancel(m.ctx)
		j.cancel = cancel
		j.state = StateRunning
		j.started = time.Now() //lint:allow detpath job wall-clock start feeds status/ETA reporting, never campaign results
		j.notifyLocked()
		j.mu.Unlock()
		defer cancel()

		_, err := j.camp.Run(ctx, func(p Progress) { m.onProgress(j, p) })

		j.mu.Lock()
		defer j.mu.Unlock()
		switch {
		case err == nil:
			j.state = StateDone
		case j.state == StateCancelled || errors.Is(err, ErrCancelled):
			j.state = StateCancelled
		case m.ctx.Err() != nil:
			// Manager shutdown: the campaign was interrupted, not finished.
			// Keep the in-memory state at "running" to mirror the manifest.
			j.state = StateRunning
		default:
			j.state = StateFailed
			j.errMsg = err.Error()
		}
		j.notifyLocked()
	}()
}

// onProgress folds a campaign progress snapshot into the job and the
// manager's cell counter.
func (m *Manager) onProgress(j *Job, p Progress) {
	j.mu.Lock()
	freshDelta := (p.Done - p.Replayed) - (j.prog.Done - j.prog.Replayed)
	j.prog = p
	j.fresh += freshDelta
	j.notifyLocked()
	j.mu.Unlock()
	if freshDelta > 0 {
		m.mu.Lock()
		m.cells += uint64(freshDelta)
		m.mu.Unlock()
	}
}

// Cancel stops a job: a queued job never starts, a running one observes the
// cancellation between grid cells. The campaign is marked cancelled on disk
// so a restart does not resurrect it. Cancelling a finished job is a no-op.
func (m *Manager) Cancel(id string) (Status, error) {
	j, ok := m.get(id)
	if !ok {
		return Status{}, ErrNotFound
	}
	j.mu.Lock()
	var cancel context.CancelFunc
	terminal := j.state.Terminal()
	if !terminal {
		j.state = StateCancelled
		cancel = j.cancel
		j.notifyLocked()
	}
	j.mu.Unlock()
	if terminal { // already finished one way or another; nothing to cancel
		return m.snapshot(j), nil
	}
	if err := j.camp.MarkCancelled(); err != nil {
		return Status{}, err
	}
	if cancel != nil {
		cancel()
	}
	return m.snapshot(j), nil
}

// Get returns the status of one job.
func (m *Manager) Get(id string) (Status, bool) {
	j, ok := m.get(id)
	if !ok {
		return Status{}, false
	}
	return m.snapshot(j), true
}

// List returns every job's status, sorted by id.
func (m *Manager) List() []Status {
	m.mu.Lock()
	js := make([]*Job, 0, len(m.jobs))
	//lint:allow detpath jobs are sorted by id immediately below
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	sort.Slice(js, func(a, b int) bool { return js[a].id < js[b].id })
	out := make([]Status, len(js))
	for i, j := range js {
		out[i] = m.snapshot(j)
	}
	return out
}

// Result returns the completed job's result document. A job that exists but
// has not completed yields an error naming its state.
func (m *Manager) Result(id string) ([]byte, error) {
	j, ok := m.get(id)
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	if state != StateDone {
		return nil, fmt.Errorf("jobs: job %s is %s, not done", id, state)
	}
	return j.camp.Result()
}

// Watch returns a channel closed on the job's next status change, for
// event-stream endpoints: snapshot with Get, send, then wait on Watch.
func (m *Manager) Watch(id string) (<-chan struct{}, bool) {
	j, ok := m.get(id)
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.changed, true
}

// Counters returns the /v1/stats aggregate.
func (m *Manager) Counters() Counters {
	m.mu.Lock()
	c := Counters{Submitted: m.submitted, Resumed: m.resumed, CellsCompleted: m.cells}
	js := make([]*Job, 0, len(m.jobs))
	//lint:allow detpath commutative counter sums; visit order cannot change the totals
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	for _, j := range js {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			c.Queued++
		case StateRunning:
			c.Running++
		case StateDone:
			c.Done++
		case StateFailed:
			c.Failed++
		case StateCancelled:
			c.Cancelled++
		}
		j.mu.Unlock()
	}
	return c
}

func (m *Manager) get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// snapshot builds a Status under the job lock.
func (m *Manager) snapshot(j *Job) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID:             j.id,
		Spec:           j.spec,
		ResultsVersion: j.version,
		State:          j.state,
		TotalCells:     j.prog.Total,
		DoneCells:      j.prog.Done,
		ReplayedCells:  j.prog.Replayed,
		Error:          j.errMsg,
	}
	// Throughput-based ETA: remaining cells / (fresh cells per elapsed time).
	// Guard every denominator — a just-submitted or just-resumed campaign has
	// zero fresh cells and/or zero elapsed time, and an unguarded division
	// would leak Inf/NaN into the status JSON (which encoding/json cannot
	// even marshal). EtaMS stays 0 (omitted) until the first fresh cell
	// completes after a measurable interval.
	if j.state == StateRunning && j.prog.Total > j.prog.Done && j.fresh > 0 && !j.started.IsZero() {
		if elapsed := time.Since(j.started); elapsed > 0 { //lint:allow detpath ETA is advisory wall-clock status, not a deterministic result
			perCell := elapsed / time.Duration(j.fresh)
			s.EtaMS = float64(time.Duration(j.prog.Total-j.prog.Done)*perCell) / float64(time.Millisecond)
		}
	}
	return s
}

// newID draws a 64-bit random job id, hex-encoded.
func newID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}
