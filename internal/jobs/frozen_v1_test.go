package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// v1FixtureDir holds a frozen, half-finished fig1 campaign pinned to
// results_version 1: the manifest (state "running"), a partial cells.jsonl,
// and the byte-exact result an uninterrupted run produced when the fixture
// was frozen. Replaying it proves today's code still reproduces yesterday's
// v1 streams bit-for-bit — the compatibility promise behind defaulting new
// campaigns to v2. Regenerate (only after an intentional, documented results
// break) with:
//
//	go test ./internal/jobs -run TestFrozenV1CampaignReplay -update
const v1FixtureDir = "testdata/v1_fig1_campaign"

// v1FixtureConfig is deliberately tiny (two platform sizes, 40 attacks) so
// the replay finishes in well under a second.
const v1FixtureConfig = `{"Cores": [2, 4], "Attacks": 40, "Horizon": 100000, "CDFPoints": 5, "Seed": 23, "Workers": 1, "results_version": 1}`

func TestFrozenV1CampaignReplay(t *testing.T) {
	if *updateGolden {
		regenerateV1Fixture(t)
	}

	// Work on a copy: resuming mutates the campaign directory.
	dir := t.TempDir()
	for _, name := range []string{"campaign.json", "cells.jsonl"} {
		b, err := os.ReadFile(filepath.Join(v1FixtureDir, name))
		if err != nil {
			t.Fatalf("read fixture (run with -update to create): %v", err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(filepath.Join(v1FixtureDir, "expected_result.json"))
	if err != nil {
		t.Fatal(err)
	}

	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Meta().ResultsVersion; got != 1 {
		t.Fatalf("fixture manifest results_version = %d, want 1", got)
	}
	var last Progress
	got, err := c.Run(context.Background(), func(p Progress) { last = p })
	if err != nil {
		t.Fatal(err)
	}
	if last.Replayed < 1 {
		t.Fatalf("fixture replayed %d cells, want >= 1 (checkpoint not exercised)", last.Replayed)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("frozen v1 campaign no longer reproduces its committed result:\n got %s\nwant %s", got, want)
	}
}

// regenerateV1Fixture rebuilds the committed fixture: an uninterrupted twin
// supplies expected_result.json, then a second campaign is cancelled after
// its first checkpointed cell and its directory frozen mid-run.
func regenerateV1Fixture(t *testing.T) {
	t.Helper()
	cfg := json.RawMessage(v1FixtureConfig)

	clean, err := Create(t.TempDir(), "fig1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}

	if err := os.RemoveAll(v1FixtureDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	interrupted, err := Create(v1FixtureDir, "fig1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := interrupted.Run(ctx, func(p Progress) {
		if p.Done >= 1 {
			cancel()
		}
	}); err == nil {
		t.Fatal("interrupted fixture run must error")
	}
	if m := interrupted.Meta(); m.State != StateRunning {
		t.Fatalf("fixture state = %s, want running", m.State)
	}
	if err := os.WriteFile(filepath.Join(v1FixtureDir, "expected_result.json"), want, 0o644); err != nil {
		t.Fatal(err)
	}
}
