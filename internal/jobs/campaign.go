// Package jobs turns experiment campaigns — full design-space sweeps such as
// the paper's fig1/fig2/fig3, the ablation grid, or Table I — into resumable
// background jobs. A campaign runs a registered experiment spec
// (experiments.LookupSpec) over the parallel engine and checkpoints every
// completed grid cell to disk, so a killed or restarted process resumes
// exactly where it left off. Because each engine cell draws its RNG from the
// run seed and its own stream label (never shared state), replaying
// checkpointed cells and computing the rest yields a result byte-identical
// to a single uninterrupted run, for any worker count.
//
// # Campaign directory layout (the checkpoint format)
//
// A campaign lives in one directory with at most three files:
//
//	campaign.json   The campaign manifest, rewritten atomically
//	                (temp file + rename) on every state change:
//
//	                  {
//	                    "spec":   "fig2",          // experiments registry name
//	                    "config": { ... },         // spec config, verbatim JSON
//	                    "state":  "running",       // running|done|failed|cancelled
//	                    "error":  "..."            // present when state == "failed"
//	                  }
//
//	cells.jsonl     The append-only cell checkpoint log. One line per
//	                completed grid cell, appended (and flushed) as cells
//	                finish, in completion order — NOT cell order:
//
//	                  {"idx": 17, "result": <cell-result JSON>}
//
//	                The <cell-result JSON> payload is the spec's own cell
//	                encoding (experiments.Hooks.OnCell). Lines may appear in
//	                any order; later duplicates of an idx win. A process
//	                killed mid-append leaves a truncated final line, which
//	                Open discards (and truncates away) before resuming —
//	                the lost cell is simply recomputed, and determinism
//	                makes the recomputation indistinguishable from replay.
//
//	result.json     The final result document (the spec result marshaled
//	                with indentation), written atomically once the campaign
//	                completes. Its bytes are the contract: resumed and
//	                uninterrupted runs of the same campaign produce
//	                identical files.
package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"hydra/internal/experiments"
	"hydra/internal/stats"
)

// State is a campaign's persisted lifecycle state.
type State string

const (
	// StateRunning marks a campaign that has been created and not yet
	// finished; a campaign found in this state at startup was interrupted
	// and is resumable.
	StateRunning State = "running"
	// StateDone marks a campaign whose result.json has been written.
	StateDone State = "done"
	// StateFailed marks a campaign whose spec returned an error.
	StateFailed State = "failed"
	// StateCancelled marks a campaign cancelled by the user; it is not
	// resumed at startup.
	StateCancelled State = "cancelled"
)

const (
	metaFile   = "campaign.json"
	cellsFile  = "cells.jsonl"
	resultFile = "result.json"
)

// Meta is the campaign manifest persisted as campaign.json.
type Meta struct {
	Spec   string          `json:"spec"`
	Config json.RawMessage `json:"config,omitempty"`
	State  State           `json:"state"`
	Error  string          `json:"error,omitempty"`
	// ResultsVersion is the RNG family the campaign's streams draw from
	// (stats.RNGVersion: 1 = historical math/rand, 2 = SplitMix64). Create
	// stamps it on every new campaign (the config's explicit version, else
	// the default); manifests written before versioning existed carry none
	// and replay under v1 — the streams that produced their checkpoints.
	ResultsVersion int `json:"results_version,omitempty"`
}

// Progress is a snapshot of a running campaign, delivered to Run's progress
// callback after every cell (replayed or fresh).
type Progress struct {
	// Total is the grid's cell count (0 until the spec announces it).
	Total int
	// Done counts completed cells, including replayed ones.
	Done int
	// Replayed counts cells satisfied from the checkpoint log.
	Replayed int
}

// Campaign is one on-disk experiment campaign. Create starts a new one, Open
// loads an existing directory; Run executes (or resumes) it.
type Campaign struct {
	dir  string
	meta Meta

	mu      sync.Mutex
	done    map[int][]byte // checkpointed cells, idx -> cell-result JSON
	running bool
}

// ErrCancelled is returned by Run for campaigns in StateCancelled.
var ErrCancelled = errors.New("jobs: campaign cancelled")

// Create initializes a new campaign directory for the named experiment spec
// with the given JSON config (empty config selects the spec's defaults). It
// fails if the spec is unknown or the directory already holds a campaign.
func Create(dir, spec string, config json.RawMessage) (*Campaign, error) {
	if _, err := experiments.ResolveSpec(spec); err != nil {
		return nil, err
	}
	version, err := configResultsVersion(config)
	if err != nil {
		return nil, err
	}
	if version == 0 {
		version = stats.DefaultResultsVersion // new campaigns take the fast generator
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, metaFile)); err == nil {
		return nil, fmt.Errorf("jobs: %s already holds a campaign", dir)
	}
	c := &Campaign{
		dir:  dir,
		meta: Meta{Spec: spec, Config: config, State: StateRunning, ResultsVersion: int(version)},
		done: map[int][]byte{},
	}
	if err := c.writeMeta(); err != nil {
		return nil, err
	}
	return c, nil
}

// Open loads an existing campaign directory, replaying its checkpoint log.
// A truncated final log line (process killed mid-append) is discarded and
// truncated away so subsequent appends keep the log well-formed.
func Open(dir string) (*Campaign, error) {
	raw, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("jobs: open campaign: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("jobs: parse %s: %w", metaFile, err)
	}
	if _, err := experiments.ResolveSpec(meta.Spec); err != nil {
		return nil, err
	}
	// An absent version means a pre-versioning manifest (replayed under v1
	// at Run); a present-but-unknown one is an explicit error — resuming it
	// under any known generator would silently change its streams.
	if meta.ResultsVersion != 0 {
		if _, err := stats.ParseResultsVersion(meta.ResultsVersion); err != nil {
			return nil, fmt.Errorf("jobs: %s: %w", metaFile, err)
		}
	}
	c := &Campaign{dir: dir, meta: meta}
	if c.done, err = loadCheckpoint(filepath.Join(dir, cellsFile)); err != nil {
		return nil, err
	}
	return c, nil
}

// Dir returns the campaign directory.
func (c *Campaign) Dir() string { return c.dir }

// Meta returns the campaign manifest.
func (c *Campaign) Meta() Meta {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.meta
}

// Checkpointed returns how many cells the checkpoint log holds.
func (c *Campaign) Checkpointed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Result returns the final result document, or an error when the campaign
// has not completed.
func (c *Campaign) Result() ([]byte, error) {
	return os.ReadFile(filepath.Join(c.dir, resultFile))
}

// MarkCancelled persists the cancelled state; a cancelled campaign refuses
// Run and is not resumed at startup.
func (c *Campaign) MarkCancelled() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.meta.State == StateDone {
		return nil // completed first; nothing to cancel
	}
	c.meta.State = StateCancelled
	return c.writeMetaLocked()
}

// Run executes the campaign to completion, resuming from the checkpoint log,
// and returns the final result document (also persisted as result.json). A
// campaign that already completed returns its persisted result unchanged. On
// cancellation (ctx) the campaign stays resumable; on a spec error it is
// marked failed. progress, when non-nil, is called after every replayed or
// freshly completed cell, serialized under the campaign lock.
func (c *Campaign) Run(ctx context.Context, progress func(Progress)) ([]byte, error) {
	c.mu.Lock()
	if c.running {
		c.mu.Unlock()
		return nil, fmt.Errorf("jobs: campaign already running")
	}
	switch c.meta.State {
	case StateCancelled:
		c.mu.Unlock()
		return nil, ErrCancelled
	case StateDone:
		c.mu.Unlock()
		return c.Result()
	}
	c.running = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.running = false
		c.mu.Unlock()
	}()

	spec, err := experiments.ResolveSpec(c.meta.Spec)
	if err != nil {
		return nil, err
	}
	log, err := os.OpenFile(filepath.Join(c.dir, cellsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	defer log.Close()

	var prog Progress
	// replayed tracks cells counted as replayed this run: a checkpoint entry
	// that later turns out to be undecodable is recomputed and fires OnCell
	// for the same idx — reclassify it as fresh instead of double-counting.
	replayed := map[int]bool{}
	report := func() {
		if progress != nil {
			progress(prog)
		}
	}
	// The effective version: the stamped manifest's, or v1 for manifests
	// written before versioning existed (their checkpoints were drawn from
	// the v1 streams). The spec refuses a config that contradicts it.
	version := stats.RNGVersion(c.meta.ResultsVersion)
	if version == 0 {
		version = stats.LegacyResultsVersion
	}
	hooks := experiments.Hooks{
		ResultsVersion: version,
		Total: func(n int) {
			c.mu.Lock()
			prog.Total = n
			report()
			c.mu.Unlock()
		},
		OnCell: func(idx int, encoded []byte) {
			line, err := json.Marshal(checkpointLine{Idx: idx, Result: encoded})
			if err != nil {
				return
			}
			c.mu.Lock()
			defer c.mu.Unlock()
			if _, err := log.Write(append(line, '\n')); err == nil {
				c.done[idx] = append([]byte(nil), encoded...)
			}
			if replayed[idx] {
				delete(replayed, idx)
				prog.Replayed-- // corrupt entry recomputed; Done already counted
			} else {
				prog.Done++
			}
			report()
		},
		Resume: func(idx int) ([]byte, bool) {
			c.mu.Lock()
			defer c.mu.Unlock()
			b, ok := c.done[idx]
			if ok && !replayed[idx] {
				replayed[idx] = true
				prog.Done++
				prog.Replayed++
				report()
			}
			return b, ok
		},
	}

	res, err := spec.Run(ctx, c.meta.Config, hooks)
	if err != nil {
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err // interrupted: stays StateRunning, resumable
		}
		c.mu.Lock()
		c.meta.State = StateFailed
		c.meta.Error = err.Error()
		werr := c.writeMetaLocked()
		c.mu.Unlock()
		if werr != nil {
			return nil, errors.Join(err, werr)
		}
		return nil, err
	}

	body, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	body = append(body, '\n')
	if err := writeFileAtomic(filepath.Join(c.dir, resultFile), body); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.meta.State = StateDone
	c.meta.Error = "" // a re-run of a failed campaign succeeded; drop the stale error
	err = c.writeMetaLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return body, nil
}

// configResultsVersion peeks the results_version field of a spec config
// without decoding the rest (spec configs are strict-decoded by the spec
// itself at Run). Absent, null, or empty configs return 0; an explicit
// unknown version is an error at creation time, before anything is written.
func configResultsVersion(config json.RawMessage) (stats.RNGVersion, error) {
	if len(config) == 0 || string(config) == "null" {
		return 0, nil
	}
	var peek struct {
		ResultsVersion int `json:"results_version"`
	}
	if err := json.NewDecoder(bytes.NewReader(config)).Decode(&peek); err != nil {
		return 0, fmt.Errorf("jobs: parse config: %w", err)
	}
	if peek.ResultsVersion == 0 {
		return 0, nil
	}
	return stats.ParseResultsVersion(peek.ResultsVersion)
}

func (c *Campaign) writeMeta() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeMetaLocked()
}

func (c *Campaign) writeMetaLocked() error {
	body, err := json.MarshalIndent(c.meta, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(c.dir, metaFile), append(body, '\n'))
}

// writeFileAtomic writes via a temp file + rename so a kill mid-write never
// leaves a half-written manifest or result.
func writeFileAtomic(path string, body []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
