package rts

import "testing"

// Pathological slow convergence: a single interferer with utilization within
// ~1e-4 of 1 makes the fixed point R ~= c/(1-U) ~ 15000, approached in steps
// of ~C = 1, i.e. ~15000 iterations — beyond MaxRTAIterations — while the
// deadline (20000) is never exceeded along the way. The old code returned a
// bare false here, indistinguishable from a proven miss; the contract now
// reports the divergence explicitly.
func TestResponseTimeNonConvergenceReported(t *testing.T) {
	hp := []RTTask{NewRTTask("creep", 1, 1.0001)}
	c, d := Time(1.5), Time(20000)

	r, schedulable, converged := ResponseTimeFull(c, d, hp)
	if schedulable {
		t.Fatalf("pathological taskset reported schedulable (r=%g)", r)
	}
	if converged {
		t.Fatalf("iteration cannot converge in %d iterations, got converged=true (r=%g)", MaxRTAIterations, r)
	}
	if r > d {
		t.Fatalf("non-convergent iterate %g must still be below the deadline %g", r, d)
	}
	// The wrapper folds divergence into the conservative false.
	if _, ok := ResponseTime(c, d, hp); ok {
		t.Fatal("ResponseTime must treat non-convergence as unschedulable")
	}
}

// A genuine miss is reported as converged: the demand provably exceeds the
// deadline.
func TestResponseTimeMissIsConverged(t *testing.T) {
	hp := []RTTask{NewRTTask("hog", 6, 10)}
	r, schedulable, converged := ResponseTimeFull(5, 10, hp)
	if schedulable {
		t.Fatalf("r=%g should miss d=10", r)
	}
	if !converged {
		t.Fatal("a proven miss must be reported as converged")
	}
	if r <= 10 {
		t.Fatalf("missing iterate %g should exceed the deadline", r)
	}
}

// The happy path still reports the exact fixed point.
func TestResponseTimeFullConverges(t *testing.T) {
	hp := []RTTask{NewRTTask("a", 1, 4), NewRTTask("b", 1, 5)}
	r, schedulable, converged := ResponseTimeFull(2, 10, hp)
	if !schedulable || !converged {
		t.Fatalf("schedulable=%v converged=%v", schedulable, converged)
	}
	// R = 2 + ceil(R/4) + ceil(R/5): fixed point at R = 4.
	if r != 4 {
		t.Fatalf("r = %g, want 4", r)
	}
	// schedulable implies converged by contract — spot-check a few shapes.
	cases := []struct {
		c, d Time
		hp   []RTTask
	}{
		{1, 2, nil},
		{3, 100, []RTTask{NewRTTask("x", 2, 7)}},
		{0.5, 4, []RTTask{NewRTTask("y", 1, 3), NewRTTask("z", 0.5, 5)}},
	}
	for _, tc := range cases {
		if _, ok, conv := ResponseTimeFull(tc.c, tc.d, tc.hp); ok && !conv {
			t.Fatalf("contract violation: schedulable without convergence for %+v", tc)
		}
	}
}
