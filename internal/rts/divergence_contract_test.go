package rts

import "testing"

// The three fixed-point loops beyond ResponseTimeFull carried hard-coded
// iteration caps and folded non-convergence into their failure verdict. These
// tests pin the ported contract: a pathological slowly-converging instance is
// reported as !converged (not as a proven miss), and the legacy wrappers stay
// conservative.

// Pathological slow convergence for the exact security RTA: one interferer
// with utilization within ~1e-4 of 1 pushes the fixed point to ~15000,
// approached in steps of ~1 — beyond MaxRTAIterations — while the deadline
// (20000) is never exceeded along the way.
func TestExactSecurityResponseTimeNonConvergenceReported(t *testing.T) {
	hp := []InterferingTask{{C: 1, T: 1.0001}}
	c, d := Time(1.5), Time(20000)

	r, schedulable, converged := ExactSecurityResponseTimeFull(c, d, hp)
	if schedulable {
		t.Fatalf("pathological instance reported schedulable (r=%g)", r)
	}
	if converged {
		t.Fatalf("iteration cannot converge in %d iterations, got converged=true (r=%g)", MaxRTAIterations, r)
	}
	if r > d {
		t.Fatalf("non-convergent iterate %g must still be below the deadline %g", r, d)
	}
	// The wrapper folds divergence into the conservative false.
	if _, ok := ExactSecurityResponseTime(c, d, hp); ok {
		t.Fatal("ExactSecurityResponseTime must treat non-convergence as unschedulable")
	}
}

// A genuine miss of the security RTA is reported as converged.
func TestExactSecurityResponseTimeMissIsConverged(t *testing.T) {
	hp := []InterferingTask{{C: 6, T: 10}}
	r, schedulable, converged := ExactSecurityResponseTimeFull(5, 10, hp)
	if schedulable {
		t.Fatalf("r=%g should miss d=10", r)
	}
	if !converged {
		t.Fatal("a proven miss must be reported as converged")
	}
	if r <= 10 {
		t.Fatalf("missing iterate %g should exceed the deadline", r)
	}
}

// The happy path of the security RTA still reports the exact fixed point with
// schedulable && converged.
func TestExactSecurityResponseTimeFullConverges(t *testing.T) {
	hp := []InterferingTask{{C: 1, T: 4}, {C: 1, T: 5}}
	r, schedulable, converged := ExactSecurityResponseTimeFull(2, 10, hp)
	if !schedulable || !converged {
		t.Fatalf("schedulable=%v converged=%v", schedulable, converged)
	}
	if r != 4 {
		t.Fatalf("r = %g, want 4", r)
	}
}

// Pathological slow convergence for the busy period: a large-WCET task with a
// huge period plus a creeper within 1e-4 of full utilization push the fixed
// point to L ~= 1000/(1-U) ~ 1e7, approached geometrically at rate ~(1-1e-4)
// — ~1.6e5 iterations, far beyond MaxRTAIterations. BusyPeriod has no
// deadline to exceed, so the only exit is the cap.
func TestBusyPeriodNonConvergenceReported(t *testing.T) {
	tasks := []RTTask{NewRTTask("bulk", 1000, 1e9), NewRTTask("creep", 1, 1.0001)}

	l, ok, converged := BusyPeriodFull(tasks)
	if ok {
		t.Fatalf("pathological taskset reported a settled busy period (l=%g)", l)
	}
	if converged {
		t.Fatalf("iteration cannot converge in %d iterations, got converged=true (l=%g)", MaxRTAIterations, l)
	}
	if l <= 0 {
		t.Fatalf("last iterate %g must be positive", l)
	}
	// The wrapper folds divergence into the conservative false.
	if _, ok := BusyPeriod(tasks); ok {
		t.Fatal("BusyPeriod must treat non-convergence as unavailable")
	}
}

// Over-utilization is a *proven* divergence of the busy period: converged
// (the verdict is final), not a blown iteration budget.
func TestBusyPeriodOverUtilizationIsConverged(t *testing.T) {
	tasks := []RTTask{NewRTTask("a", 3, 4), NewRTTask("b", 2, 4)}
	if _, ok, converged := BusyPeriodFull(tasks); ok || !converged {
		t.Fatalf("over-utilized core: ok=%v converged=%v, want false/true", ok, converged)
	}
}

// The happy path of the busy period still settles.
func TestBusyPeriodFullConverges(t *testing.T) {
	tasks := []RTTask{NewRTTask("a", 1, 4), NewRTTask("b", 1, 5)}
	l, ok, converged := BusyPeriodFull(tasks)
	if !ok || !converged {
		t.Fatalf("ok=%v converged=%v", ok, converged)
	}
	// L = ceil(L/4) + ceil(L/5): fixed point at L = 2.
	if l != 2 {
		t.Fatalf("l = %g, want 2", l)
	}
}

// Pathological slow convergence for the jitter+blocking RTA, same shape as
// TestResponseTimeNonConvergenceReported with a nonzero blocking term.
func TestResponseTimeWithJitterBlockingNonConvergenceReported(t *testing.T) {
	hp := []JitteredTask{{C: 1, T: 1.0001, J: 0}}
	c, b, d := Time(1), Time(0.5), Time(20000)

	r, schedulable, converged := ResponseTimeWithJitterBlockingFull(c, b, d, hp)
	if schedulable {
		t.Fatalf("pathological instance reported schedulable (r=%g)", r)
	}
	if converged {
		t.Fatalf("iteration cannot converge in %d iterations, got converged=true (r=%g)", MaxRTAIterations, r)
	}
	if r > d {
		t.Fatalf("non-convergent iterate %g must still be below the deadline %g", r, d)
	}
	// The wrapper folds divergence into the conservative false.
	if _, ok := ResponseTimeWithJitterBlocking(c, b, d, hp); ok {
		t.Fatal("ResponseTimeWithJitterBlocking must treat non-convergence as unschedulable")
	}
}

// A genuine miss of the jitter+blocking RTA is reported as converged, and the
// happy path reaches its fixed point.
func TestResponseTimeWithJitterBlockingContract(t *testing.T) {
	if r, schedulable, converged := ResponseTimeWithJitterBlockingFull(5, 0, 10, []JitteredTask{{C: 6, T: 10}}); schedulable || !converged || r <= 10 {
		t.Fatalf("miss: r=%g schedulable=%v converged=%v, want >10/false/true", r, schedulable, converged)
	}
	// R = 2.5 + ceil((R+1)/5): blocking 0.5, jitter 1 -> fixed point 4.5? Walk
	// it: r0=2.5, next=2+0.5+ceil(3.5/5)*1=3.5; next=2.5+ceil(4.5/5)=3.5. Fixed.
	r, schedulable, converged := ResponseTimeWithJitterBlockingFull(2, 0.5, 10, []JitteredTask{{C: 1, T: 5, J: 1}})
	if !schedulable || !converged {
		t.Fatalf("schedulable=%v converged=%v", schedulable, converged)
	}
	if r != 3.5 {
		t.Fatalf("r = %g, want 3.5", r)
	}
}
