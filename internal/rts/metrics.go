package rts

import "sync/atomic"

// This file is the package's entire observability surface, and it is
// deliberately count-only: plain per-state counters on the hot path, flushed
// in one batch of atomic adds when a state is reset, released, or explicitly
// flushed. No clocks, no logging, no allocation — the detpath/obsbound
// analyzers hold the deterministic packages to exactly this shape, and the
// per-state staging keeps the RTA inner loop free of cross-core cache-line
// contention.

// IterationBucketBounds are the inclusive upper bounds of the RTA iteration
// histogram; a final implicit bucket catches everything above the last bound.
var IterationBucketBounds = [...]uint64{1, 2, 4, 8, 16, 32, 64, 128}

const numIterBuckets = len(IterationBucketBounds) + 1

// AnalysisMetrics stages one AnalysisState's instrumentation between flushes.
// Counters are plain integers because a state is single-goroutine by
// contract; they become visible via FlushMetrics.
type AnalysisMetrics struct {
	FixedPoints uint64                 // rtResponse invocations
	Iterations  uint64                 // total RTA iterations across invocations
	WarmStarts  uint64                 // invocations seeded above the cold start C
	TrialReuses uint64                 // AddRT commits that reused the TryAddRT trial
	IterBuckets [numIterBuckets]uint64 // iterations-per-invocation histogram
}

// observe records one rtResponse invocation that took iters iterations.
func (m *AnalysisMetrics) observe(iters int, warm bool) {
	m.FixedPoints++
	m.Iterations += uint64(iters)
	if warm {
		m.WarmStarts++
	}
	b := 0
	for b < len(IterationBucketBounds) && uint64(iters) > IterationBucketBounds[b] {
		b++
	}
	m.IterBuckets[b]++
}

// aggMetrics are the package-level totals the service scrapes.
var aggMetrics struct {
	fixedPoints atomic.Uint64
	iterations  atomic.Uint64
	warmStarts  atomic.Uint64
	trialReuses atomic.Uint64
	iterBuckets [numIterBuckets]atomic.Uint64
}

// FlushMetrics folds the state's staged counters into the package totals and
// zeroes the stage. Reset and ReleaseAnalysisState flush automatically;
// long-lived holders (online systems keep one state for their whole life)
// call it after each admission batch so their counts surface too.
func (st *AnalysisState) FlushMetrics() {
	m := &st.met
	if m.FixedPoints == 0 && m.TrialReuses == 0 {
		return
	}
	aggMetrics.fixedPoints.Add(m.FixedPoints)
	aggMetrics.iterations.Add(m.Iterations)
	aggMetrics.warmStarts.Add(m.WarmStarts)
	aggMetrics.trialReuses.Add(m.TrialReuses)
	for i, n := range m.IterBuckets {
		if n != 0 {
			aggMetrics.iterBuckets[i].Add(n)
		}
	}
	*m = AnalysisMetrics{}
}

// AnalysisMetricsSnapshot is one consistent-enough read of the package
// totals (individual counters are exact; cross-counter skew is bounded by
// in-flight flushes, which scrapes tolerate).
type AnalysisMetricsSnapshot struct {
	FixedPoints uint64
	Iterations  uint64
	WarmStarts  uint64
	TrialReuses uint64
	IterBuckets [numIterBuckets]uint64
}

// ReadAnalysisMetrics snapshots the package-level RTA totals.
func ReadAnalysisMetrics() AnalysisMetricsSnapshot {
	var s AnalysisMetricsSnapshot
	s.FixedPoints = aggMetrics.fixedPoints.Load()
	s.Iterations = aggMetrics.iterations.Load()
	s.WarmStarts = aggMetrics.warmStarts.Load()
	s.TrialReuses = aggMetrics.trialReuses.Load()
	for i := range s.IterBuckets {
		s.IterBuckets[i] = aggMetrics.iterBuckets[i].Load()
	}
	return s
}
