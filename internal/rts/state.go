package rts

import (
	"math"
	"sync"
)

// AnalysisState is reusable, incremental per-core schedulability state — the
// allocation hot path's replacement for re-deriving sorted interferer sets
// and re-running cold response-time fixed points on every call.
//
// For each core it maintains:
//
//   - the committed real-time tasks in rate-monotonic order (insertion on
//     commit — no per-call copy+sort), with the converged response time of
//     every task memoized. Committing another task can only grow response
//     times, so the memoized fixed point is a valid warm-start seed: the RTA
//     iteration is monotone from below and restarting it at any value in
//     [C, R] reaches exactly the same least fixed point (see
//     TestWarmStartMatchesCold*). Admission trials therefore re-analyze only
//     the incoming task plus the tasks it would preempt, each warm-started;
//   - the exact-RTA interferer list (real-time tasks in seed order, then
//     committed security tasks in commit order), matching bit-for-bit the
//     interference summation order of the historical slice-building code in
//     core.VerifyExact.
//
// States are pooled: AcquireAnalysisState hands out a reset instance whose
// internal buffers are recycled across calls, keeping the steady-state
// allocation count of admission and verification loops at zero. A state is
// not safe for concurrent use; each goroutine acquires its own.
type AnalysisState struct {
	cores []coreState
	met   AnalysisMetrics // staged count-only instrumentation (metrics.go)
}

// coreState is the per-core half of AnalysisState.
type coreState struct {
	rm   []RTTask // committed RT tasks, rate-monotonic order (T asc, Name asc)
	resp []Time   // memoized converged response time per rm index; 0 = unknown
	rt   CoreLoad // Eq. 5 aggregates of the committed RT tasks

	hp  []InterferingTask // exact-RTA interferers in seed/commit order
	nRT int               // prefix of hp holding real-time tasks

	// seq logs the real-time tasks in seed/commit (arrival) order — the
	// rebuild source for RemoveRT. Float folds (rt) and interference
	// summation orders (hp) are arrival-order dependent, so a removal must
	// replay the surviving arrivals in their original order to stay
	// bit-identical to a state that never saw the removed task.
	seq []RTTask

	tmp       []Time            // trial scratch for commit-time response updates
	reseedRT  []RTTask          // RemoveRT scratch: surviving RT arrivals
	reseedSec []InterferingTask // RemoveRT scratch: committed security interferers

	// trial memoizes the last successful TryAddRT on this core, so the
	// AddRT that typically follows (the heuristics probe a core, pick it,
	// then commit) reuses the computed responses instead of re-running the
	// identical analysis. Invalidated by any commit or seed on the core.
	trial struct {
		valid bool
		task  RTTask
		k     int    // RM insertion index
		rNew  Time   // response time of the trial task
		resp  []Time // updated responses of the preempted tasks (rm[k:])
	}
}

// statePool recycles AnalysisState instances (and their internal buffers)
// across allocation calls and grid cells.
var statePool = sync.Pool{New: func() any { return new(AnalysisState) }}

// AcquireAnalysisState returns a reset m-core state from the pool.
func AcquireAnalysisState(m int) *AnalysisState {
	st := statePool.Get().(*AnalysisState)
	st.Reset(m)
	return st
}

// ReleaseAnalysisState returns a state to the pool. The caller must not use
// it afterwards.
func ReleaseAnalysisState(st *AnalysisState) {
	if st != nil {
		st.FlushMetrics()
		statePool.Put(st)
	}
}

// NewAnalysisState builds an empty m-core state (unpooled).
func NewAnalysisState(m int) *AnalysisState {
	st := new(AnalysisState)
	st.Reset(m)
	return st
}

// Reset clears the state to m empty cores, retaining internal buffers. Any
// staged instrumentation is flushed to the package totals first.
func (st *AnalysisState) Reset(m int) {
	st.FlushMetrics()
	if cap(st.cores) < m {
		st.cores = append(st.cores[:cap(st.cores)], make([]coreState, m-cap(st.cores))...)
	}
	st.cores = st.cores[:m]
	for c := range st.cores {
		cs := &st.cores[c]
		cs.clear()
	}
}

// clear empties one core's committed state, retaining buffers.
func (cs *coreState) clear() {
	cs.rm = cs.rm[:0]
	cs.resp = cs.resp[:0]
	cs.hp = cs.hp[:0]
	cs.nRT = 0
	cs.rt = CoreLoad{}
	cs.seq = cs.seq[:0]
	cs.trial.valid = false
}

// M returns the number of cores.
func (st *AnalysisState) M() int { return len(st.cores) }

// RTLoad returns the Eq. 5 aggregates of the real-time tasks committed to
// core c, accumulated in commit order (so values are bit-identical to a
// sequential CoreLoad fold over the same commits).
func (st *AnalysisState) RTLoad(c int) CoreLoad { return st.cores[c].rt }

// RTUtil returns the summed utilization of the real-time tasks on core c —
// the load metric of the partitioning heuristics.
func (st *AnalysisState) RTUtil(c int) float64 { return st.cores[c].rt.SumU }

// RTCount returns the number of real-time tasks committed to core c.
func (st *AnalysisState) RTCount(c int) int { return len(st.cores[c].rm) }

// rmInsertionIndex returns the RM-order insertion position for t: after every
// committed task with a strictly higher rate-monotonic priority and after
// equal (T, Name) keys, matching SortRateMonotonic's stable tie-break for a
// task appended last.
func (cs *coreState) rmInsertionIndex(t RTTask) int {
	lo, hi := 0, len(cs.rm)
	for lo < hi {
		mid := (lo + hi) / 2
		o := cs.rm[mid]
		if o.T < t.T || (o.T == t.T && o.Name <= t.Name) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// rtResponse computes the RTA fixed point of a task with WCET c and deadline
// d against the committed tasks rm[:hi], with the trial task extra (when
// non-nil) interfering from RM position insertAt — the exact interference
// summation order the historical copy+sort path produced. The iteration is
// warm-started from seed (clamped up to c); any seed at or below the true
// fixed point yields the identical fixed point and verdicts. met stages the
// invocation's iteration count (count-only; never nil — callers pass the
// owning state's stage).
func (cs *coreState) rtResponse(met *AnalysisMetrics, c, d Time, hi, insertAt int, extra *RTTask, seed Time) (Time, bool, bool) {
	r := seed
	warm := r > c
	if r < c {
		r = c
	}
	for iter := 0; iter < MaxRTAIterations; iter++ {
		next := c
		for i := 0; i < insertAt; i++ {
			next += math.Ceil(r/cs.rm[i].T) * cs.rm[i].C
		}
		if extra != nil {
			next += math.Ceil(r/extra.T) * extra.C
		}
		for i := insertAt; i < hi; i++ {
			next += math.Ceil(r/cs.rm[i].T) * cs.rm[i].C
		}
		if next == r {
			met.observe(iter+1, warm)
			return r, r <= d, true
		}
		if next > d {
			met.observe(iter+1, warm)
			return next, false, true
		}
		r = next
	}
	met.observe(MaxRTAIterations, warm)
	return r, false, false
}

// TryAddRT reports whether core c would remain schedulable under exact RTA
// with t added, without committing anything. Only t itself (cold) and the
// committed tasks it would preempt (warm-started from their memoized
// response times) are re-analyzed; higher-priority tasks are unaffected by
// a lower-priority arrival.
func (st *AnalysisState) TryAddRT(c int, t RTTask) bool {
	cs := &st.cores[c]
	cs.trial.valid = false
	k := cs.rmInsertionIndex(t)
	rNew, ok, _ := cs.rtResponse(&st.met, t.C, t.D, k, k, nil, t.C)
	if !ok {
		return false
	}
	cs.trial.resp = cs.trial.resp[:0]
	for i := k; i < len(cs.rm); i++ {
		r, ok, _ := cs.rtResponse(&st.met, cs.rm[i].C, cs.rm[i].D, i, k, &t, cs.resp[i])
		if !ok {
			return false
		}
		cs.trial.resp = append(cs.trial.resp, r)
	}
	cs.trial.valid, cs.trial.task, cs.trial.k, cs.trial.rNew = true, t, k, rNew
	return true
}

// AddRT commits t to core c, updating the RM order, the memoized response
// times and the load aggregates. It reports whether the core remains
// schedulable; on false the state is left unchanged. Real-time tasks must be
// committed before any CommitSecurity on the same core.
func (st *AnalysisState) AddRT(c int, t RTTask) bool {
	cs := &st.cores[c]
	var k int
	var rNew Time
	if cs.trial.valid && cs.trial.task == t {
		// The heuristics probe with TryAddRT and then commit the chosen
		// core; reuse that trial's analysis instead of repeating it.
		st.met.TrialReuses++
		k, rNew = cs.trial.k, cs.trial.rNew
		cs.tmp = append(cs.tmp[:0], cs.trial.resp...)
	} else {
		k = cs.rmInsertionIndex(t)
		var ok bool
		rNew, ok, _ = cs.rtResponse(&st.met, t.C, t.D, k, k, nil, t.C)
		if !ok {
			return false
		}
		cs.tmp = cs.tmp[:0]
		for i := k; i < len(cs.rm); i++ {
			r, ok, _ := cs.rtResponse(&st.met, cs.rm[i].C, cs.rm[i].D, i, k, &t, cs.resp[i])
			if !ok {
				return false
			}
			cs.tmp = append(cs.tmp, r)
		}
	}
	cs.trial.valid = false
	cs.rm = append(cs.rm, RTTask{})
	copy(cs.rm[k+1:], cs.rm[k:])
	cs.rm[k] = t
	cs.resp = append(cs.resp, 0)
	copy(cs.resp[k+1:], cs.resp[k:])
	cs.resp[k] = rNew
	copy(cs.resp[k+1:], cs.tmp)
	cs.hp = append(cs.hp, InterferingTask{})
	copy(cs.hp[cs.nRT+1:], cs.hp[cs.nRT:])
	cs.hp[cs.nRT] = InterferingTask{C: t.C, T: t.T}
	cs.nRT++
	cs.rt.AddRT(t)
	cs.seq = append(cs.seq, t)
	return true
}

// SeedRT records t on core c without any schedulability analysis — the bulk
// loading path for states built from an already-partitioned input (memoized
// response times start unknown and are derived on demand).
func (st *AnalysisState) SeedRT(c int, t RTTask) {
	cs := &st.cores[c]
	cs.trial.valid = false
	k := cs.rmInsertionIndex(t)
	cs.rm = append(cs.rm, RTTask{})
	copy(cs.rm[k+1:], cs.rm[k:])
	cs.rm[k] = t
	cs.resp = append(cs.resp, 0)
	copy(cs.resp[k+1:], cs.resp[k:])
	cs.resp[k] = 0
	// The unanalyzed arrival interferes with every lower-priority task, so
	// their memoized response times (if any commits preceded this seed) are
	// stale lower bounds — still valid warm-start seeds, but no longer the
	// fixed points RTResponseTimes may report. Drop them back to unknown.
	for i := k + 1; i < len(cs.resp); i++ {
		cs.resp[i] = 0
	}
	cs.hp = append(cs.hp, InterferingTask{})
	copy(cs.hp[cs.nRT+1:], cs.hp[cs.nRT:])
	cs.hp[cs.nRT] = InterferingTask{C: t.C, T: t.T}
	cs.nRT++
	cs.rt.AddRT(t)
	cs.seq = append(cs.seq, t)
}

// RemoveRT evicts the first committed or seeded real-time task on core c
// equal to t (all fields) and cold-reseeds the core: the surviving real-time
// tasks are re-seeded in their original arrival order and the committed
// security interferers are re-appended in commit order. Every derived
// quantity — the load fold, the interference summation order, the response
// times re-derived on demand — is therefore bit-identical to a state that
// never saw t. All memoized response times on the core drop back to unknown
// (a removal shrinks fixed points, so warm seeds would no longer be
// from-below). It reports whether t was present; the state is unchanged when
// it was not.
func (st *AnalysisState) RemoveRT(c int, t RTTask) bool {
	cs := &st.cores[c]
	idx := -1
	for i := range cs.seq {
		if cs.seq[i] == t {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	cs.reseedRT = append(cs.reseedRT[:0], cs.seq[:idx]...)
	cs.reseedRT = append(cs.reseedRT, cs.seq[idx+1:]...)
	cs.reseedSec = append(cs.reseedSec[:0], cs.hp[cs.nRT:]...)
	cs.clear()
	for _, rt := range cs.reseedRT {
		st.SeedRT(c, rt)
	}
	cs.hp = append(cs.hp, cs.reseedSec...)
	return true
}

// CommitSecurity records a committed security task (WCET c, adapted period
// ts) as an interferer for every security task committed to the core later.
func (st *AnalysisState) CommitSecurity(core int, c, ts Time) {
	cs := &st.cores[core]
	cs.hp = append(cs.hp, InterferingTask{C: c, T: ts})
}

// RemoveSecurity evicts the ordinal-th (0-based, in commit order) committed
// security interferer on core with the given WCET and period. The ordinal
// matters when distinct tasks share (C, T): splicing the wrong duplicate
// would keep an equal multiset but permute the commit order, and the exact
// RTA's float fold is order-sensitive — the caller identifies which of the
// equal entries its removed task actually is. The surviving interferers keep
// their commit order, so the list is exactly the one a state that never
// committed the task would hold (security commits carry no float-fold state
// beyond the list itself). It reports whether a matching interferer was
// present.
func (st *AnalysisState) RemoveSecurity(core int, c, ts Time, ordinal int) bool {
	cs := &st.cores[core]
	seen := 0
	for i := cs.nRT; i < len(cs.hp); i++ {
		if cs.hp[i].C == c && cs.hp[i].T == ts {
			if seen == ordinal {
				cs.hp = append(cs.hp[:i], cs.hp[i+1:]...)
				return true
			}
			seen++
		}
	}
	return false
}

// SecurityCount returns the number of committed security interferers on core.
func (st *AnalysisState) SecurityCount(core int) int {
	cs := &st.cores[core]
	return len(cs.hp) - cs.nRT
}

// SecurityResponseTime computes the exact ceiling-based response time of a
// security task (WCET c, deadline/period d) against core's interferer list —
// every seeded real-time task plus every committed security task, iterated
// in seed/commit order — under the ResponseTimeFull divergence contract.
func (st *AnalysisState) SecurityResponseTime(core int, c, d Time) (r Time, schedulable, converged bool) {
	return ExactSecurityResponseTimeFull(c, d, st.cores[core].hp)
}

// LinearSecurityBound evaluates the Eq. (5)+(6) left side c + sum (1+ts/T)*C
// over core's interferer list, mirroring LinearSecurityResponseBound.
func (st *AnalysisState) LinearSecurityBound(core int, c, ts Time) Time {
	return LinearSecurityResponseBound(c, ts, st.cores[core].hp)
}

// RTResponseTimes appends the memoized response time of every committed
// real-time task on core c (in RM order) to buf and returns it, deriving any
// still-unknown entries. Tasks past their deadline or non-convergent report
// the last iterate.
func (st *AnalysisState) RTResponseTimes(c int, buf []Time) []Time {
	cs := &st.cores[c]
	for i := range cs.rm {
		if cs.resp[i] == 0 {
			r, _, _ := cs.rtResponse(&st.met, cs.rm[i].C, cs.rm[i].D, i, i, nil, cs.resp[i])
			cs.resp[i] = r
		}
		buf = append(buf, cs.resp[i])
	}
	return buf
}

// RTSchedulable reports whether every committed or seeded real-time task on
// core c meets its deadline under exact RTA, memoizing response times along
// the way.
func (st *AnalysisState) RTSchedulable(c int) bool {
	cs := &st.cores[c]
	for i := range cs.rm {
		r, ok, _ := cs.rtResponse(&st.met, cs.rm[i].C, cs.rm[i].D, i, i, nil, cs.resp[i])
		if !ok {
			return false
		}
		cs.resp[i] = r
	}
	return true
}
