package rts_test

import (
	"sync"
	"testing"

	"hydra/internal/rts"
	"hydra/internal/stats"
	"hydra/internal/taskgen"
)

// rebuildReference builds a fresh state committing tasks in the given order —
// the cold reference every removal must be bit-identical to.
func rebuildReference(t *testing.T, tasks []rts.RTTask) *rts.AnalysisState {
	t.Helper()
	ref := rts.NewAnalysisState(1)
	for _, task := range tasks {
		if !ref.AddRT(0, task) {
			t.Fatalf("reference rebuild rejected task %q", task.Name)
		}
	}
	return ref
}

// TestRemoveRTMatchesColdRebuild is the remove-vs-rebuild property test:
// across randomized tasksets and random removal points, RemoveRT must leave
// the core bit-identical — response times, load fold, interferer list order —
// to a fresh state that committed the surviving tasks in the same arrival
// order and never saw the removed one.
func TestRemoveRTMatchesColdRebuild(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := stats.SplitRNG(4242, seed)
		util := 0.3 + 0.5*float64(seed%8)/8
		w, err := taskgen.Generate(taskgen.DefaultParams(1, util), rng)
		if err != nil {
			continue
		}
		st := rts.AcquireAnalysisState(1)
		var arrived []rts.RTTask
		for _, task := range w.RT {
			if st.AddRT(0, task) {
				arrived = append(arrived, task)
			}
		}
		if len(arrived) < 2 {
			rts.ReleaseAnalysisState(st)
			continue
		}
		// Commit a couple of security interferers so removal must preserve
		// the security tail of the interferer list too.
		st.CommitSecurity(0, 3, 900)
		st.CommitSecurity(0, 1.5, 1500)

		victim := rng.Intn(len(arrived))
		if !st.RemoveRT(0, arrived[victim]) {
			t.Fatalf("seed %d: RemoveRT did not find committed task %q", seed, arrived[victim].Name)
		}
		survivors := append(append([]rts.RTTask(nil), arrived[:victim]...), arrived[victim+1:]...)
		ref := rebuildReference(t, survivors)
		ref.CommitSecurity(0, 3, 900)
		ref.CommitSecurity(0, 1.5, 1500)
		compareCores(t, st, ref, len(survivors))

		// Re-adding the removed task arrives at the end of the order; the
		// state must match a cold build with that arrival order exactly.
		if st.AddRT(0, arrived[victim]) {
			readded := append(append([]rts.RTTask(nil), survivors...), arrived[victim])
			ref2 := rebuildReference(t, readded)
			ref2.CommitSecurity(0, 3, 900)
			ref2.CommitSecurity(0, 1.5, 1500)
			compareCores(t, st, ref2, len(readded))
		}
		rts.ReleaseAnalysisState(st)
	}
}

// compareCores asserts core 0 of two states is bit-identical in every
// externally observable quantity: memoized/derived response times, the Eq. 5
// load fold, the RT admission verdict for a probe, and the exact + linear
// security analyses over the full interferer list.
func compareCores(t *testing.T, got, want *rts.AnalysisState, n int) {
	t.Helper()
	if got.RTCount(0) != n || want.RTCount(0) != n {
		t.Fatalf("RT count: got %d, reference %d, want %d", got.RTCount(0), want.RTCount(0), n)
	}
	if g, w := got.RTLoad(0), want.RTLoad(0); g != w {
		t.Fatalf("load fold differs: got %+v, want %+v", g, w)
	}
	gr := got.RTResponseTimes(0, nil)
	wr := want.RTResponseTimes(0, nil)
	for i := range gr {
		if gr[i] != wr[i] {
			t.Fatalf("response time %d differs: got %g, want %g", i, gr[i], wr[i])
		}
	}
	for _, probe := range []struct{ c, d rts.Time }{{2, 50}, {0.5, 8}, {10, 200}} {
		task := rts.RTTask{Name: "zz-probe", C: probe.c, T: probe.d, D: probe.d}
		if g, w := got.TryAddRT(0, task), want.TryAddRT(0, task); g != w {
			t.Fatalf("TryAddRT(%+v) differs: got %v, want %v", task, g, w)
		}
	}
	for _, probe := range []struct{ c, d rts.Time }{{4, 300}, {2, 2000}} {
		gr, gok, gconv := got.SecurityResponseTime(0, probe.c, probe.d)
		wr, wok, wconv := want.SecurityResponseTime(0, probe.c, probe.d)
		if gr != wr || gok != wok || gconv != wconv {
			t.Fatalf("security RTA (%g,%g) differs: got (%g,%v,%v), want (%g,%v,%v)",
				probe.c, probe.d, gr, gok, gconv, wr, wok, wconv)
		}
		if gl, wl := got.LinearSecurityBound(0, probe.c, probe.d), want.LinearSecurityBound(0, probe.c, probe.d); gl != wl {
			t.Fatalf("linear bound (%g,%g) differs: got %g, want %g", probe.c, probe.d, gl, wl)
		}
	}
}

// TestRemoveRTDoesNotLeakMemoizedEntries pins that a removed task's memoized
// analysis cannot influence later admits: a probe that fits only when the
// victim is gone must be admitted after RemoveRT, and the trial memo of a
// TryAddRT involving the victim must not leak into the commit that follows
// the removal.
func TestRemoveRTDoesNotLeakMemoizedEntries(t *testing.T) {
	st := rts.AcquireAnalysisState(1)
	defer rts.ReleaseAnalysisState(st)
	heavy := rts.NewRTTask("heavy", 6, 10)
	light := rts.NewRTTask("light", 1, 100)
	if !st.AddRT(0, heavy) || !st.AddRT(0, light) {
		t.Fatal("setup tasks must be schedulable")
	}
	probe := rts.NewRTTask("probe", 5, 10)
	if st.TryAddRT(0, probe) {
		t.Fatal("probe must not fit while heavy is committed")
	}
	// Leave a successful trial memo behind, then remove its subject's peer:
	// the memo must be invalidated by the rebuild.
	small := rts.NewRTTask("small", 0.5, 50)
	if !st.TryAddRT(0, small) {
		t.Fatal("small trial must succeed")
	}
	if !st.RemoveRT(0, heavy) {
		t.Fatal("heavy not found")
	}
	if !st.TryAddRT(0, probe) || !st.AddRT(0, probe) {
		t.Fatal("probe must fit once heavy is removed")
	}
	ref := rebuildReference(t, []rts.RTTask{light, probe})
	compareCores(t, st, ref, 2)
	if st.RemoveRT(0, heavy) {
		t.Fatal("second removal of heavy must report absence")
	}
}

// TestRemoveSecurityMatchesColdList checks the security removal path: the
// surviving interferer list must be exactly the commit sequence without the
// removed entry, pinned against the slice-based exact analysis.
func TestRemoveSecurityMatchesColdList(t *testing.T) {
	st := rts.AcquireAnalysisState(1)
	defer rts.ReleaseAnalysisState(st)
	rtTasks := []rts.RTTask{rts.NewRTTask("a", 1, 9), rts.NewRTTask("b", 2, 14)}
	var hp []rts.InterferingTask
	for _, task := range rtTasks {
		st.SeedRT(0, task)
		hp = append(hp, rts.InterferingTask{C: task.C, T: task.T})
	}
	secs := []struct{ c, ts rts.Time }{{5, 120}, {2, 60}, {5, 120}, {8, 400}}
	for _, s := range secs {
		st.CommitSecurity(0, s.c, s.ts)
		hp = append(hp, rts.InterferingTask{C: s.c, T: s.ts})
	}
	if n := st.SecurityCount(0); n != len(secs) {
		t.Fatalf("security count %d, want %d", n, len(secs))
	}
	// Remove the SECOND (5,120) entry (ordinal 1): the first one — a
	// different task that merely shares the values — must keep its position,
	// because the exact RTA's float fold is commit-order-sensitive.
	if !st.RemoveSecurity(0, 5, 120, 1) {
		t.Fatal("RemoveSecurity did not find the second (5,120)")
	}
	// hp was [rt a, rt b, (5,120), (2,60), (5,120), (8,400)]; ordinal 1
	// removes index 4, keeping the commit order of everything else.
	want := append(append([]rts.InterferingTask(nil), hp[:4]...), hp[5])
	for _, probe := range []struct{ c, d rts.Time }{{3, 500}, {1, 70}} {
		wr, wok, wconv := rts.ExactSecurityResponseTimeFull(probe.c, probe.d, want)
		gr, gok, gconv := st.SecurityResponseTime(0, probe.c, probe.d)
		if gr != wr || gok != wok || gconv != wconv {
			t.Fatalf("after removal, security RTA (%g,%g): got (%g,%v,%v), want (%g,%v,%v)",
				probe.c, probe.d, gr, gok, gconv, wr, wok, wconv)
		}
	}
	// Only one (5,120) remains: ordinal 1 no longer exists, ordinal 0 does.
	if st.RemoveSecurity(0, 5, 120, 1) {
		t.Fatal("ordinal past the last duplicate must report false")
	}
	if !st.RemoveSecurity(0, 5, 120, 0) {
		t.Fatal("ordinal 0 must still match the surviving (5,120)")
	}
	if st.RemoveSecurity(0, 99, 99, 0) {
		t.Fatal("removing an absent interferer must report false")
	}
}

// TestRemoveRTConcurrentStates hammers removal from many goroutines, each on
// its own pooled state (meaningful under -race), re-checking the rebuild
// against a cold reference every time.
func TestRemoveRTConcurrentStates(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seed := int64(0); seed < 6; seed++ {
				rng := stats.SplitRNG(int64(g)*131+5, seed)
				w, err := taskgen.Generate(taskgen.DefaultParams(1, 0.6), rng)
				if err != nil {
					continue
				}
				st := rts.AcquireAnalysisState(1)
				var arrived []rts.RTTask
				for _, task := range w.RT {
					if st.AddRT(0, task) {
						arrived = append(arrived, task)
					}
				}
				if len(arrived) > 1 {
					victim := rng.Intn(len(arrived))
					if !st.RemoveRT(0, arrived[victim]) {
						t.Errorf("goroutine %d seed %d: victim not found", g, seed)
					}
					survivors := append(append([]rts.RTTask(nil), arrived[:victim]...), arrived[victim+1:]...)
					ref := rts.NewAnalysisState(1)
					okAll := true
					for _, task := range survivors {
						okAll = okAll && ref.AddRT(0, task)
					}
					if okAll {
						gr := st.RTResponseTimes(0, nil)
						wr := ref.RTResponseTimes(0, nil)
						for i := range gr {
							if gr[i] != wr[i] {
								t.Errorf("goroutine %d seed %d: response %d differs", g, seed, i)
							}
						}
					}
				}
				rts.ReleaseAnalysisState(st)
			}
		}(g)
	}
	wg.Wait()
}
