package rts

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHyperbolicBound(t *testing.T) {
	// Two tasks at U=0.41 each: product 1.41^2 = 1.9881 <= 2 -> schedulable.
	ok := []RTTask{NewRTTask("a", 41, 100), NewRTTask("b", 41, 100)}
	if !HyperbolicBoundHolds(ok) {
		t.Fatal("1.41^2 <= 2 must pass")
	}
	// Two tasks at U=0.45: 1.45^2 = 2.1025 > 2 -> bound fails (taskset may
	// still be schedulable, the bound is only sufficient).
	fail := []RTTask{NewRTTask("a", 45, 100), NewRTTask("b", 45, 100)}
	if HyperbolicBoundHolds(fail) {
		t.Fatal("1.45^2 > 2 must fail the bound")
	}
	if !HyperbolicBoundHolds(nil) {
		t.Fatal("empty set trivially passes")
	}
}

// Property: hyperbolic bound implies Liu-Layland-style schedulability via
// exact RTA (the bound is sufficient).
func TestHyperbolicImpliesRTAProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		tasks := make([]RTTask, n)
		for i := range tasks {
			period := 10 + 990*rng.Float64()
			u := 0.05 + 0.5*rng.Float64()
			tasks[i] = NewRTTask("t", u*period, period)
		}
		if !HyperbolicBoundHolds(tasks) {
			return true
		}
		return CoreSchedulable(tasks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: hyperbolic bound admits everything Liu-Layland admits.
func TestHyperbolicDominatesLLProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		tasks := make([]RTTask, n)
		var util float64
		for i := range tasks {
			period := 10 + 990*rng.Float64()
			u := 0.02 + 0.3*rng.Float64()
			tasks[i] = NewRTTask("t", u*period, period)
			util += u
		}
		if util > LiuLaylandBound(n) {
			return true // LL does not admit; nothing to check
		}
		return HyperbolicBoundHolds(tasks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestHyperperiod(t *testing.T) {
	tasks := []RTTask{
		NewRTTask("a", 1, 4),
		NewRTTask("b", 1, 6),
		NewRTTask("c", 1, 10),
	}
	h, ok := Hyperperiod(tasks, 1)
	if !ok || h != 60 {
		t.Fatalf("hyperperiod = %v ok=%v, want 60", h, ok)
	}
	// Sub-millisecond resolution.
	frac := []RTTask{NewRTTask("a", 0.1, 0.4), NewRTTask("b", 0.1, 0.6)}
	h, ok = Hyperperiod(frac, 0.1)
	if !ok || math.Abs(h-1.2) > 1e-9 {
		t.Fatalf("fractional hyperperiod = %v ok=%v, want 1.2", h, ok)
	}
	// Irrational-ish period at integer resolution: not representable.
	bad := []RTTask{NewRTTask("a", 1, 4.35)}
	if _, ok := Hyperperiod(bad, 1); ok {
		t.Fatal("non-integral period must be rejected at resolution 1")
	}
	if _, ok := Hyperperiod(nil, 1); ok {
		t.Fatal("empty set must be rejected")
	}
	if _, ok := Hyperperiod(tasks, 0); ok {
		t.Fatal("zero resolution must be rejected")
	}
	// Overflow: coprime huge periods.
	huge := []RTTask{NewRTTask("a", 1, 1e15), NewRTTask("b", 1, 1e15-1)}
	if _, ok := Hyperperiod(huge, 1); ok {
		t.Fatal("overflowing LCM must be rejected")
	}
}

// Property: the hyperperiod is a common multiple of every period.
func TestHyperperiodDividesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		tasks := make([]RTTask, n)
		for i := range tasks {
			period := Time(1 + rng.Intn(100))
			tasks[i] = NewRTTask("t", period/10, period)
		}
		h, ok := Hyperperiod(tasks, 1)
		if !ok {
			return false
		}
		for _, task := range tasks {
			q := h / task.T
			if math.Abs(q-math.Round(q)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBusyPeriod(t *testing.T) {
	// Single task: busy period = C.
	one := []RTTask{NewRTTask("a", 3, 10)}
	l, ok := BusyPeriod(one)
	if !ok || l != 3 {
		t.Fatalf("busy period = %v ok=%v, want 3", l, ok)
	}
	// Textbook: (1,4),(2,6),(3,12): L = 1+2+3 = 6 -> ceil(6/4)*1+ceil(6/6)*2+ceil(6/12)*3
	// = 2+2+3 = 7 -> ceil(7/4)=2 +2*ceil(7/6)=2... compute: 2*1+2*2... let's
	// just assert the fixed point property below; here check convergence.
	tasks := []RTTask{NewRTTask("a", 1, 4), NewRTTask("b", 2, 6), NewRTTask("c", 3, 12)}
	l, ok = BusyPeriod(tasks)
	if !ok {
		t.Fatal("busy period must converge")
	}
	var sum Time
	for _, task := range tasks {
		sum += math.Ceil(l/task.T) * task.C
	}
	if sum != l {
		t.Fatalf("fixed point violated: L=%v demand=%v", l, sum)
	}
	// Over-utilized: diverges.
	if _, ok := BusyPeriod([]RTTask{NewRTTask("a", 11, 10)}); ok {
		t.Fatal("over-utilized busy period must fail")
	}
	if l, ok := BusyPeriod(nil); !ok || l != 0 {
		t.Fatal("empty set busy period is 0")
	}
}

// Property: busy period >= max response time of the lowest-priority task.
func TestBusyPeriodBoundsResponseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		tasks := make([]RTTask, n)
		for i := range tasks {
			period := 10 + 190*rng.Float64()
			u := 0.05 + 0.15*rng.Float64()
			tasks[i] = NewRTTask("t", u*period, period)
		}
		SortRateMonotonic(tasks)
		l, ok := BusyPeriod(tasks)
		if !ok {
			return false
		}
		low := tasks[n-1]
		r, ok := ResponseTime(low.C, low.D, tasks[:n-1])
		if !ok {
			return true // unschedulable instance; busy period claim vacuous
		}
		return r <= l+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestResponseTimeWithJitterBlocking(t *testing.T) {
	// No jitter, no blocking: must equal plain RTA.
	hp := []JitteredTask{{C: 1, T: 4}, {C: 2, T: 6}}
	r, ok := ResponseTimeWithJitterBlocking(3, 0, 12, hp)
	if !ok || r != 10 {
		t.Fatalf("R = %v ok=%v, want 10", r, ok)
	}
	// Blocking adds directly.
	r, ok = ResponseTimeWithJitterBlocking(3, 1, 20, hp)
	if !ok || r < 11 {
		t.Fatalf("blocking not applied: %v", r)
	}
	// Jitter inflates interference: J=4 on the first interferer pulls one
	// extra preemption in.
	rj, ok := ResponseTimeWithJitterBlocking(3, 0, 30, []JitteredTask{{C: 1, T: 4, J: 4}, {C: 2, T: 6}})
	if !ok || rj <= 10 {
		t.Fatalf("jitter not applied: %v", rj)
	}
	// Unschedulable.
	if _, ok := ResponseTimeWithJitterBlocking(6, 0, 10, []JitteredTask{{C: 5, T: 10}}); ok {
		t.Fatal("overload must fail")
	}
}
