package rts

import "math"

// InterferingTask is one higher-priority interferer (WCET, period) for the
// exact security-task response-time analysis.
type InterferingTask struct {
	C Time
	T Time
}

// ExactSecurityResponseTime computes the exact worst-case response time of a
// security task with WCET c and period/deadline d under the ceiling-based
// interference model
//
//	R = c + sum_h ceil(R/T_h) * C_h,
//
// where hp is every real-time task and higher-priority security task on the
// same core. It returns the response time and true iff R <= d.
//
// This is strictly tighter than the paper's linear bound of Eq. (5),
// (1 + Ts/T_h)*C_h, because ceil(x) <= x + 1: any allocation feasible under
// Eq. (6) is feasible here too (see VerifyLinearImpliesExact tests), so the
// paper's analysis is sound, merely pessimistic.
//
// The false outcome folds together a proven miss and a failure to converge
// within MaxRTAIterations; callers that need to distinguish them use
// ExactSecurityResponseTimeFull.
func ExactSecurityResponseTime(c Time, d Time, hp []InterferingTask) (Time, bool) {
	r, schedulable, _ := ExactSecurityResponseTimeFull(c, d, hp) //lint:allow errcontract documented legacy fold: both outcomes are safely treated as a miss
	return r, schedulable
}

// ExactSecurityResponseTimeFull is ExactSecurityResponseTime with the
// explicit divergence contract of ResponseTimeFull:
//
//   - schedulable && converged: r is the exact response time, r <= d;
//   - !schedulable && converged: proven miss — the demand at the last
//     iterate already exceeds d (r > d);
//   - !schedulable && !converged: the iteration hit MaxRTAIterations while
//     still below d. The exact response time is unknown but >= r; treating
//     the task as unschedulable is conservative, never unsound.
func ExactSecurityResponseTimeFull(c Time, d Time, hp []InterferingTask) (r Time, schedulable, converged bool) {
	r = c
	for iter := 0; iter < MaxRTAIterations; iter++ {
		next := c
		for _, h := range hp {
			next += math.Ceil(r/h.T) * h.C
		}
		if next == r {
			return r, r <= d, true
		}
		if next > d {
			return next, false, true
		}
		r = next
	}
	return r, false, false
}

// LinearSecurityResponseBound evaluates the paper's Eq. (5)+(6) left side
// c + sum_h (1 + ts/T_h)*C_h for the same interferer set — the quantity the
// allocation schemes constrain to be <= ts.
func LinearSecurityResponseBound(c Time, ts Time, hp []InterferingTask) Time {
	b := c
	for _, h := range hp {
		b += (1 + ts/h.T) * h.C
	}
	return b
}
