package rts

import "math"

// DBF computes the demand bound function of a sporadic task over an interval
// of length t (Sec. II-A):
//
//	DBF(tau, t) = max(0, (floor((t - D)/T) + 1) * C).
func DBF(task RTTask, t Time) Time {
	if t < task.D {
		return 0
	}
	n := math.Floor((t-task.D)/task.T) + 1
	if n <= 0 {
		return 0
	}
	return n * task.C
}

// NecessaryConditionHolds checks the multiprocessor feasibility necessary
// condition of Eq. (1): sum_r DBF(tau_r, t) <= M*t for all t > 0.
//
// For implicit-deadline tasks DBF(tau, t) = floor(t/T)*C <= U*t, so the
// condition holds for every t whenever total utilization <= M; conversely a
// total utilization above M violates it for large t. For constrained
// deadlines the function additionally samples every absolute deadline
// D + k*T up to the evaluation horizon (the standard first-busy-period style
// test set), which is exact for the check.
func NecessaryConditionHolds(tasks []RTTask, m int) bool {
	if m <= 0 {
		return len(tasks) == 0
	}
	var util float64
	implicit := true
	for _, t := range tasks {
		util += t.Utilization()
		if t.D != t.T {
			implicit = false
		}
	}
	const eps = 1e-12
	if util > float64(m)+eps {
		return false
	}
	if implicit {
		return true
	}
	// Constrained deadlines: sample deadlines up to a utilization-derived
	// horizon; beyond it the linear bound M*t dominates because util <= M.
	horizon := dbfHorizon(tasks, m, util)
	for _, t := range tasks {
		for d := t.D; d <= horizon; d += t.T {
			var demand Time
			for _, o := range tasks {
				demand += DBF(o, d)
			}
			if demand > float64(m)*d+eps {
				return false
			}
		}
	}
	return true
}

// dbfHorizon returns a finite check horizon for the constrained-deadline
// necessary-condition test. DBF(tau,t) <= C + U*(t-D) + U*T, so total demand
// <= sum(C + U*(T-D)) + util*t; demand can exceed M*t only while
// t < sum(C + U*(T-D)) / (M - util). A small floor keeps the scan nonempty.
func dbfHorizon(tasks []RTTask, m int, util float64) Time {
	var num Time
	var maxD Time
	for _, t := range tasks {
		num += t.C + t.Utilization()*(t.T-t.D)
		if t.D > maxD {
			maxD = t.D
		}
	}
	denom := float64(m) - util
	if denom <= 0 {
		return maxD
	}
	h := num / denom
	if h < maxD {
		h = maxD
	}
	return h
}
