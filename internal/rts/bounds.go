package rts

import "math"

// HyperbolicBoundHolds applies Bini & Buttazzo's hyperbolic bound for
// rate-monotonic schedulability on one core: the taskset is schedulable if
//
//	prod_i (U_i + 1) <= 2.
//
// It is uniformly tighter than the Liu-Layland utilization bound and, like
// it, sufficient but not necessary.
func HyperbolicBoundHolds(tasks []RTTask) bool {
	p := 1.0
	for _, t := range tasks {
		p *= t.Utilization() + 1
	}
	return p <= 2+1e-12
}

// Hyperperiod returns the least common multiple of the task periods, the
// cycle after which a synchronous periodic schedule repeats. Periods are
// interpreted at the given resolution (e.g. 1.0 = millisecond, 0.1 = tenth
// of a millisecond); non-representable periods or an overflowing LCM return
// ok = false.
func Hyperperiod(tasks []RTTask, resolution Time) (Time, bool) {
	if resolution <= 0 || len(tasks) == 0 {
		return 0, false
	}
	lcm := uint64(1)
	const limit = uint64(1) << 53 // stay exactly representable in float64
	for _, t := range tasks {
		scaled := t.T / resolution
		n := math.Round(scaled)
		if n < 1 || math.Abs(scaled-n) > 1e-9*scaled {
			return 0, false // period not representable at this resolution
		}
		g := gcd(lcm, uint64(n))
		step := lcm / g
		if uint64(n) != 0 && step > limit/uint64(n) {
			return 0, false // overflow
		}
		lcm = step * uint64(n)
	}
	return Time(lcm) * resolution, true
}

// gcd is the binary-free Euclid on uint64.
func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// BusyPeriod returns the length of the level-n synchronous busy period of
// the taskset on one core — the first instant L > 0 with
//
//	L = sum_i ceil(L/T_i) * C_i,
//
// which bounds how far job interactions reach. ok is false if the taskset
// over-utilizes the core (the busy period diverges) or the fixed point does
// not settle within the iteration budget.
func BusyPeriod(tasks []RTTask) (Time, bool) {
	if len(tasks) == 0 {
		return 0, true
	}
	if TotalRTUtilization(tasks) > 1 {
		return 0, false
	}
	var l Time
	for _, t := range tasks {
		l += t.C
	}
	for iter := 0; iter < 100000; iter++ {
		var next Time
		for _, t := range tasks {
			next += math.Ceil(l/t.T) * t.C
		}
		if next == l {
			return l, true
		}
		l = next
	}
	return l, false
}

// ResponseTimeWithJitterBlocking extends the exact RTA with release jitter
// per interferer and a blocking term (for non-preemptive lower-priority
// sections):
//
//	R = c + b + sum_h ceil((R + J_h)/T_h) * C_h,
//
// returning R (measured from release, excluding the task's own jitter) and
// whether R <= d.
type JitteredTask struct {
	C, T, J Time
}

// ResponseTimeWithJitterBlocking computes the fixed point described above.
func ResponseTimeWithJitterBlocking(c, b, d Time, hp []JitteredTask) (Time, bool) {
	r := c + b
	for iter := 0; iter < 100000; iter++ {
		next := c + b
		for _, h := range hp {
			next += math.Ceil((r+h.J)/h.T) * h.C
		}
		if next == r {
			return r, r <= d
		}
		if next > d {
			return next, false
		}
		r = next
	}
	return r, false
}
