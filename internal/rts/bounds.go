package rts

import "math"

// HyperbolicBoundHolds applies Bini & Buttazzo's hyperbolic bound for
// rate-monotonic schedulability on one core: the taskset is schedulable if
//
//	prod_i (U_i + 1) <= 2.
//
// It is uniformly tighter than the Liu-Layland utilization bound and, like
// it, sufficient but not necessary.
func HyperbolicBoundHolds(tasks []RTTask) bool {
	p := 1.0
	for _, t := range tasks {
		p *= t.Utilization() + 1
	}
	return p <= 2+1e-12
}

// Hyperperiod returns the least common multiple of the task periods, the
// cycle after which a synchronous periodic schedule repeats. Periods are
// interpreted at the given resolution (e.g. 1.0 = millisecond, 0.1 = tenth
// of a millisecond); non-representable periods or an overflowing LCM return
// ok = false.
func Hyperperiod(tasks []RTTask, resolution Time) (Time, bool) {
	if resolution <= 0 || len(tasks) == 0 {
		return 0, false
	}
	lcm := uint64(1)
	const limit = uint64(1) << 53 // stay exactly representable in float64
	for _, t := range tasks {
		scaled := t.T / resolution
		n := math.Round(scaled)
		if n < 1 || math.Abs(scaled-n) > 1e-9*scaled {
			return 0, false // period not representable at this resolution
		}
		g := gcd(lcm, uint64(n))
		step := lcm / g
		if uint64(n) != 0 && step > limit/uint64(n) {
			return 0, false // overflow
		}
		lcm = step * uint64(n)
	}
	return Time(lcm) * resolution, true
}

// gcd is the binary-free Euclid on uint64.
func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// BusyPeriod returns the length of the level-n synchronous busy period of
// the taskset on one core — the first instant L > 0 with
//
//	L = sum_i ceil(L/T_i) * C_i,
//
// which bounds how far job interactions reach. ok is false if the taskset
// over-utilizes the core (the busy period diverges) or the fixed point does
// not settle within the iteration budget; callers that need to tell those
// two apart use BusyPeriodFull.
func BusyPeriod(tasks []RTTask) (Time, bool) {
	l, ok, _ := BusyPeriodFull(tasks) //lint:allow errcontract documented legacy fold: divergence and proven over-utilization both read as unschedulable
	return l, ok
}

// BusyPeriodFull is BusyPeriod with the explicit divergence contract of
// ResponseTimeFull:
//
//   - ok && converged: l is the exact busy-period length;
//   - !ok && converged: the taskset provably over-utilizes the core
//     (utilization > 1), so the synchronous busy period diverges;
//   - !ok && !converged: the iteration hit MaxRTAIterations before settling.
//     The true busy period is unknown but >= l; treating the bound as
//     unavailable is conservative.
func BusyPeriodFull(tasks []RTTask) (l Time, ok, converged bool) {
	if len(tasks) == 0 {
		return 0, true, true
	}
	if TotalRTUtilization(tasks) > 1 {
		return 0, false, true
	}
	for _, t := range tasks {
		l += t.C
	}
	for iter := 0; iter < MaxRTAIterations; iter++ {
		var next Time
		for _, t := range tasks {
			next += math.Ceil(l/t.T) * t.C
		}
		if next == l {
			return l, true, true
		}
		l = next
	}
	return l, false, false
}

// ResponseTimeWithJitterBlocking extends the exact RTA with release jitter
// per interferer and a blocking term (for non-preemptive lower-priority
// sections):
//
//	R = c + b + sum_h ceil((R + J_h)/T_h) * C_h,
//
// returning R (measured from release, excluding the task's own jitter) and
// whether R <= d.
type JitteredTask struct {
	C, T, J Time
}

// ResponseTimeWithJitterBlocking computes the fixed point described above.
// The false outcome folds together a proven miss and a failure to converge
// within MaxRTAIterations; callers that need to distinguish them use
// ResponseTimeWithJitterBlockingFull.
func ResponseTimeWithJitterBlocking(c, b, d Time, hp []JitteredTask) (Time, bool) {
	r, schedulable, _ := ResponseTimeWithJitterBlockingFull(c, b, d, hp) //lint:allow errcontract documented legacy fold: both outcomes are safely treated as a miss
	return r, schedulable
}

// ResponseTimeWithJitterBlockingFull is ResponseTimeWithJitterBlocking with
// the explicit divergence contract of ResponseTimeFull:
//
//   - schedulable && converged: r is the exact response time, r <= d;
//   - !schedulable && converged: proven miss (r > d at the last iterate);
//   - !schedulable && !converged: the iteration hit MaxRTAIterations while
//     still below d; the true response time is unknown but >= r.
func ResponseTimeWithJitterBlockingFull(c, b, d Time, hp []JitteredTask) (r Time, schedulable, converged bool) {
	r = c + b
	for iter := 0; iter < MaxRTAIterations; iter++ {
		next := c + b
		for _, h := range hp {
			next += math.Ceil((r+h.J)/h.T) * h.C
		}
		if next == r {
			return r, r <= d, true
		}
		if next > d {
			return next, false, true
		}
		r = next
	}
	return r, false, false
}
