package rts

import "math"

// MaxRTAIterations caps the fixed-point iteration of the response-time
// analyses. The iterate sequence is monotonically non-decreasing and exits as
// soon as it exceeds the deadline, so the cap only triggers on pathological
// tasksets whose fixed point lies below the deadline but is approached in
// tiny steps (utilization within ~d/MaxRTAIterations of 1 with small WCETs).
const MaxRTAIterations = 10000

// ResponseTime computes the exact worst-case response time of a task with
// WCET c and deadline d, suffering preemption from the higher-priority tasks
// hp (each contributing ceil(R/T)*C), by the standard fixed-point iteration
// of Audsley et al. [16]. It returns the response time and true when the
// iteration converges with R <= d; otherwise it returns the last iterate and
// false.
//
// The false outcome folds together a proven deadline miss and the (rare)
// failure to converge within MaxRTAIterations; both are safe to treat as
// unschedulable, since the iterate sequence only ever grows toward the true
// response time. Callers that need to tell the two apart (e.g. to report a
// diagnostic instead of a miss) use ResponseTimeFull.
func ResponseTime(c Time, d Time, hp []RTTask) (Time, bool) {
	r, schedulable, _ := ResponseTimeFull(c, d, hp) //lint:allow errcontract documented legacy fold: both outcomes are safely treated as a miss
	return r, schedulable
}

// ResponseTimeFull is ResponseTime with an explicit divergence contract:
//
//   - schedulable && converged: r is the exact response time, r <= d;
//   - !schedulable && converged: proven miss — the demand at the last
//     iterate already exceeds d (r > d);
//   - !schedulable && !converged: the iteration hit MaxRTAIterations while
//     still below d. The exact response time is unknown but >= r; treating
//     the task as unschedulable is conservative, never unsound.
//
// schedulable && !converged is impossible: schedulability is only ever
// reported at a reached fixed point.
func ResponseTimeFull(c Time, d Time, hp []RTTask) (r Time, schedulable, converged bool) {
	r = c
	for iter := 0; iter < MaxRTAIterations; iter++ {
		next := c
		for _, h := range hp {
			next += math.Ceil(r/h.T) * h.C
		}
		if next == r {
			return r, r <= d, true
		}
		if next > d {
			return next, false, true
		}
		r = next
	}
	return r, false, false
}

// CoreSchedulable reports whether the given real-time tasks, all assigned to
// one core and listed in any order, are schedulable under preemptive fixed
// priorities with rate-monotonic ordering. It runs exact RTA top-down on a
// pooled AnalysisState, so the per-call copy+sort of the historical
// implementation is gone; the RM order and RTA verdicts are identical.
func CoreSchedulable(tasks []RTTask) bool {
	if len(tasks) == 0 {
		return true
	}
	st := AcquireAnalysisState(1)
	for _, t := range tasks {
		st.SeedRT(0, t)
	}
	ok := st.RTSchedulable(0)
	ReleaseAnalysisState(st)
	return ok
}

// LiuLaylandBound returns the classic utilization bound n(2^{1/n}-1) for n
// tasks; any RM taskset with utilization at or below it is schedulable [14].
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	fn := float64(n)
	return fn * (math.Pow(2, 1/fn) - 1)
}

// CoreLoad aggregates the quantities that appear in the linear interference
// bound of Eq. (5) for one core: the sum of WCETs and the sum of utilizations
// of the tasks already on the core.
type CoreLoad struct {
	SumC Time    // sum of WCETs: the constant part of (1 + Ts/Tr)*Cr
	SumU float64 // sum of C/T: the slope part
}

// AddRT accumulates a real-time task into the load.
func (l *CoreLoad) AddRT(t RTTask) {
	l.SumC += t.C
	l.SumU += t.Utilization()
}

// AddPeriodic accumulates any periodic interferer (e.g. a committed security
// task with chosen period).
func (l *CoreLoad) AddPeriodic(c, period Time) {
	l.SumC += c
	l.SumU += c / period
}

// LinearInterference evaluates the paper's Eq. (5) upper bound on the
// interference suffered by a security task with period ts:
//
//	I = sum (1 + ts/T) * C  =  SumC + ts*SumU.
func (l CoreLoad) LinearInterference(ts Time) Time {
	return l.SumC + ts*l.SumU
}

// MinFeasiblePeriod returns the smallest period ts satisfying the
// schedulability constraint of Eq. (6), c + SumC + ts*SumU <= ts, i.e.
// ts >= (c + SumC) / (1 - SumU). It returns +Inf when SumU >= 1 (no period
// can absorb the interference).
func (l CoreLoad) MinFeasiblePeriod(c Time) Time {
	slack := 1 - l.SumU
	if slack <= 0 {
		return math.Inf(1)
	}
	return (c + l.SumC) / slack
}
