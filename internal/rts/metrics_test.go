package rts

import "testing"

// metricsTaskset commits a few tasks through the probe-then-commit pattern
// the heuristics use, returning the delta this produced in the package
// totals.
func metricsDelta(t *testing.T, fn func(st *AnalysisState)) AnalysisMetricsSnapshot {
	t.Helper()
	before := ReadAnalysisMetrics()
	st := NewAnalysisState(2)
	fn(st)
	st.FlushMetrics()
	after := ReadAnalysisMetrics()
	d := AnalysisMetricsSnapshot{
		FixedPoints: after.FixedPoints - before.FixedPoints,
		Iterations:  after.Iterations - before.Iterations,
		WarmStarts:  after.WarmStarts - before.WarmStarts,
		TrialReuses: after.TrialReuses - before.TrialReuses,
	}
	for i := range d.IterBuckets {
		d.IterBuckets[i] = after.IterBuckets[i] - before.IterBuckets[i]
	}
	return d
}

func TestAnalysisMetricsCountFixedPoints(t *testing.T) {
	d := metricsDelta(t, func(st *AnalysisState) {
		if !st.AddRT(0, RTTask{Name: "a", C: 1, T: 10, D: 10}) {
			t.Fatal("a rejected")
		}
		if !st.AddRT(0, RTTask{Name: "b", C: 2, T: 20, D: 20}) {
			t.Fatal("b rejected")
		}
	})
	// Task a: 1 fixed point. Task b: its own RTA plus none preempted below
	// it... b is lower priority, so only b's own analysis runs (a is not
	// re-analyzed: insertion at the end preempts nobody).
	if d.FixedPoints == 0 {
		t.Fatal("no fixed points recorded")
	}
	if d.Iterations < d.FixedPoints {
		t.Fatalf("iterations %d < fixed points %d", d.Iterations, d.FixedPoints)
	}
	var bucketSum uint64
	for _, b := range d.IterBuckets {
		bucketSum += b
	}
	if bucketSum != d.FixedPoints {
		t.Fatalf("bucket sum %d != fixed points %d", bucketSum, d.FixedPoints)
	}
}

func TestAnalysisMetricsTrialReuse(t *testing.T) {
	d := metricsDelta(t, func(st *AnalysisState) {
		task := RTTask{Name: "a", C: 1, T: 10, D: 10}
		if !st.TryAddRT(0, task) {
			t.Fatal("trial rejected")
		}
		if !st.AddRT(0, task) {
			t.Fatal("commit rejected")
		}
	})
	if d.TrialReuses != 1 {
		t.Fatalf("trial reuses = %d, want 1 (probe-then-commit must reuse)", d.TrialReuses)
	}
}

func TestAnalysisMetricsWarmStarts(t *testing.T) {
	d := metricsDelta(t, func(st *AnalysisState) {
		// Commit a low-priority task first, then a higher-priority one: the
		// re-analysis of the preempted task warm-starts from its memoized
		// response time, which interference has pushed above its WCET.
		if !st.AddRT(0, RTTask{Name: "low", C: 3, T: 100, D: 100}) {
			t.Fatal("low rejected")
		}
		if !st.AddRT(0, RTTask{Name: "mid", C: 2, T: 50, D: 50}) {
			t.Fatal("mid rejected")
		}
		if !st.AddRT(0, RTTask{Name: "high", C: 1, T: 10, D: 10}) {
			t.Fatal("high rejected")
		}
	})
	if d.WarmStarts == 0 {
		t.Fatal("no warm starts recorded for preempted-task re-analysis")
	}
}

func TestReleaseFlushesMetrics(t *testing.T) {
	before := ReadAnalysisMetrics()
	st := AcquireAnalysisState(1)
	if !st.AddRT(0, RTTask{Name: "a", C: 1, T: 10, D: 10}) {
		t.Fatal("a rejected")
	}
	ReleaseAnalysisState(st)
	after := ReadAnalysisMetrics()
	if after.FixedPoints == before.FixedPoints {
		t.Fatal("ReleaseAnalysisState did not flush staged counters")
	}
}
