// Package rts defines the real-time system model of the paper: sporadic
// real-time tasks under partitioned fixed-priority preemptive scheduling with
// rate-monotonic priorities, sporadic security tasks with adaptable periods,
// and the associated schedulability analyses (exact response-time analysis,
// demand-bound functions, and the linear interference bound of Eq. 5).
//
// All times are in milliseconds, represented as float64.
package rts

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Time is a duration or instant in milliseconds.
type Time = float64

// RTTask is a sporadic real-time task (C, T, D) — Sec. II-A. Deadlines are
// implicit in the paper (D = T); the model keeps D separate so extensions
// with constrained deadlines remain expressible.
type RTTask struct {
	Name string
	C    Time // worst-case execution time
	T    Time // minimum inter-arrival separation (period)
	D    Time // relative deadline
}

// Utilization returns C/T.
func (t RTTask) Utilization() float64 { return t.C / t.T }

// Validate checks the task parameters.
func (t RTTask) Validate() error {
	switch {
	case !(t.C > 0) || math.IsInf(t.C, 0) || math.IsNaN(t.C):
		return fmt.Errorf("rts: task %q: WCET must be positive and finite, got %g", t.Name, t.C)
	case !(t.T > 0) || math.IsInf(t.T, 0) || math.IsNaN(t.T):
		return fmt.Errorf("rts: task %q: period must be positive and finite, got %g", t.Name, t.T)
	case !(t.D > 0) || math.IsInf(t.D, 0) || math.IsNaN(t.D):
		return fmt.Errorf("rts: task %q: deadline must be positive and finite, got %g", t.Name, t.D)
	case t.C > t.D:
		return fmt.Errorf("rts: task %q: WCET %g exceeds deadline %g", t.Name, t.C, t.D)
	case t.D > t.T:
		return fmt.Errorf("rts: task %q: deadline %g exceeds period %g (constrained deadlines only)", t.Name, t.D, t.T)
	}
	return nil
}

// NewRTTask builds an implicit-deadline real-time task (D = T).
func NewRTTask(name string, c, t Time) RTTask {
	return RTTask{Name: name, C: c, T: t, D: t}
}

// SecurityTask is a sporadic security task (Cs, Tdes, Tmax) — Sec. II-C.
// The achievable period Ts is chosen by the allocator within [TDes, TMax];
// Weight is the tightness weight omega_s of Eq. (3).
type SecurityTask struct {
	Name   string
	C      Time    // worst-case execution time
	TDes   Time    // desired (best) period
	TMax   Time    // maximum period beyond which monitoring is ineffective
	Weight float64 // omega_s; zero means "use 1"
}

// EffectiveWeight returns the tightness weight, defaulting to 1.
func (s SecurityTask) EffectiveWeight() float64 {
	if s.Weight > 0 {
		return s.Weight
	}
	return 1
}

// Validate checks the security-task parameters.
func (s SecurityTask) Validate() error {
	switch {
	case !(s.C > 0) || math.IsInf(s.C, 0) || math.IsNaN(s.C):
		return fmt.Errorf("rts: security task %q: WCET must be positive and finite, got %g", s.Name, s.C)
	case !(s.TDes > 0) || math.IsInf(s.TDes, 0) || math.IsNaN(s.TDes):
		return fmt.Errorf("rts: security task %q: desired period must be positive and finite, got %g", s.Name, s.TDes)
	case !(s.TMax > 0) || math.IsInf(s.TMax, 0) || math.IsNaN(s.TMax):
		return fmt.Errorf("rts: security task %q: max period must be positive and finite, got %g", s.Name, s.TMax)
	case s.TDes > s.TMax:
		return fmt.Errorf("rts: security task %q: desired period %g exceeds max period %g", s.Name, s.TDes, s.TMax)
	case s.C > s.TDes:
		return fmt.Errorf("rts: security task %q: WCET %g exceeds desired period %g", s.Name, s.C, s.TDes)
	}
	return nil
}

// MinUtilization returns C/TMax, the least processor share the task can need.
func (s SecurityTask) MinUtilization() float64 { return s.C / s.TMax }

// DesiredUtilization returns C/TDes, the share at the desired rate.
func (s SecurityTask) DesiredUtilization() float64 { return s.C / s.TDes }

// Tightness returns eta_s = TDes/period for an achieved period (Eq. 2).
// It returns 0 for a non-positive period.
func (s SecurityTask) Tightness(period Time) float64 {
	if period <= 0 {
		return 0
	}
	return s.TDes / period
}

// ErrEmptyTaskSet is returned when an operation needs at least one task.
var ErrEmptyTaskSet = errors.New("rts: empty task set")

// SortRateMonotonic orders real-time tasks by rate-monotonic priority
// (shorter period first; ties broken by name for determinism). Index 0 is
// the highest priority, matching the paper's distinct-RM-priority assumption.
func SortRateMonotonic(tasks []RTTask) {
	sort.SliceStable(tasks, func(i, j int) bool {
		if tasks[i].T != tasks[j].T {
			return tasks[i].T < tasks[j].T
		}
		return tasks[i].Name < tasks[j].Name
	})
}

// SortSecurityPriority orders security tasks by the paper's rule
// pri(s1) > pri(s2) iff TMax_1 < TMax_2 (Sec. II-C), ties by name. Index 0
// is the highest-priority security task.
func SortSecurityPriority(tasks []SecurityTask) {
	sort.SliceStable(tasks, func(i, j int) bool {
		if tasks[i].TMax != tasks[j].TMax {
			return tasks[i].TMax < tasks[j].TMax
		}
		return tasks[i].Name < tasks[j].Name
	})
}

// TotalRTUtilization sums C/T over the real-time tasks.
func TotalRTUtilization(tasks []RTTask) float64 {
	var u float64
	for _, t := range tasks {
		u += t.Utilization()
	}
	return u
}

// TotalSecurityDesiredUtilization sums C/TDes over the security tasks.
func TotalSecurityDesiredUtilization(tasks []SecurityTask) float64 {
	var u float64
	for _, t := range tasks {
		u += t.DesiredUtilization()
	}
	return u
}

// ValidateAll validates every task in both sets.
func ValidateAll(rt []RTTask, sec []SecurityTask) error {
	for _, t := range rt {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	for _, s := range sec {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}
