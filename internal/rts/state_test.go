package rts_test

import (
	"math/rand"
	"sync"
	"testing"

	"hydra/internal/rts"
	"hydra/internal/stats"
	"hydra/internal/taskgen"
)

// coldResponseTimes is the historical analysis: copy, sort rate-monotonic,
// run every RTA fixed point from a cold start.
func coldResponseTimes(tasks []rts.RTTask) ([]rts.Time, bool) {
	sorted := append([]rts.RTTask(nil), tasks...)
	rts.SortRateMonotonic(sorted)
	out := make([]rts.Time, len(sorted))
	ok := true
	for i, t := range sorted {
		r, sched := rts.ResponseTime(t.C, t.D, sorted[:i])
		out[i] = r
		if !sched {
			ok = false
			break
		}
	}
	return out, ok
}

// TestWarmStartMatchesColdRandomized is the warm-start property test of the
// incremental analysis state: across randomized tasksets (fresh taskgen
// streams), committing tasks one at a time — where every commit re-derives
// the lower-priority response times warm-started from their memoized fixed
// points — must yield response times exactly equal (==, not approximately)
// to the cold-started analysis of the final task set, and the same
// schedulability verdict as CoreSchedulable.
func TestWarmStartMatchesColdRandomized(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := stats.SplitRNG(2024, seed)
		// Mix of loads: sweep utilization up so both schedulable and
		// unschedulable single-core sets appear.
		util := 0.3 + 0.65*float64(seed%10)/10
		w, err := taskgen.Generate(taskgen.DefaultParams(1, util), rng)
		if err != nil {
			continue
		}
		checkWarmMatchesCold(t, w.RT, rng)
	}
}

func checkWarmMatchesCold(t *testing.T, tasks []rts.RTTask, rng *rand.Rand) {
	t.Helper()
	st := rts.AcquireAnalysisState(1)
	defer rts.ReleaseAnalysisState(st)

	// Commit in a random order — the state's verdicts must not depend on
	// arrival order, only on the committed set.
	order := rng.Perm(len(tasks))
	warmOK := true
	committed := 0
	for _, i := range order {
		if !st.AddRT(0, tasks[i]) {
			warmOK = false
			break
		}
		committed++

		// Invariant after every commit: memoized (warm-started) response
		// times equal the cold analysis of the currently committed prefix.
		prefix := make([]rts.RTTask, 0, committed)
		for _, j := range order[:committed] {
			prefix = append(prefix, tasks[j])
		}
		cold, coldOK := coldResponseTimes(prefix)
		if !coldOK {
			t.Fatalf("cold analysis rejects a prefix the incremental state accepted (%d tasks)", committed)
		}
		warm := st.RTResponseTimes(0, nil)
		if len(warm) != len(cold) {
			t.Fatalf("response-time count: warm %d, cold %d", len(warm), len(cold))
		}
		for k := range warm {
			if warm[k] != cold[k] {
				t.Fatalf("task %d after %d commits: warm response %g != cold response %g", k, committed, warm[k], cold[k])
			}
		}
	}
	if !warmOK {
		// AddRT refused a task: the full set must also fail the historical
		// analysis with that task included on the core.
		withNext := make([]rts.RTTask, 0, committed+1)
		for _, j := range order[:committed+1] {
			withNext = append(withNext, tasks[j])
		}
		if rts.CoreSchedulable(withNext) {
			t.Fatalf("incremental state rejected a set CoreSchedulable accepts (%d tasks)", len(withNext))
		}
	}
}

// TestTryAddRTMatchesCoreSchedulable cross-checks the admission trial against
// the set-based verdict on randomized two-core placements.
func TestTryAddRTMatchesCoreSchedulable(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := stats.SplitRNG(77, seed)
		util := 0.5 + 1.2*float64(seed%6)/6
		w, err := taskgen.Generate(taskgen.DefaultParams(2, util), rng)
		if err != nil {
			continue
		}
		st := rts.AcquireAnalysisState(2)
		var on0, on1 []rts.RTTask
		for i, task := range w.RT {
			c := i % 2
			trial := append(append([]rts.RTTask(nil), map[int][]rts.RTTask{0: on0, 1: on1}[c]...), task)
			want := rts.CoreSchedulable(trial)
			if got := st.TryAddRT(c, task); got != want {
				t.Fatalf("seed %d task %d core %d: TryAddRT=%v, CoreSchedulable=%v", seed, i, c, got, want)
			}
			if want {
				if !st.AddRT(c, task) {
					t.Fatalf("seed %d task %d: AddRT refused an admitted task", seed, i)
				}
				if c == 0 {
					on0 = append(on0, task)
				} else {
					on1 = append(on1, task)
				}
			}
		}
		rts.ReleaseAnalysisState(st)
	}
}

// TestSecurityResponseTimeMatchesSliceAnalysis pins the state's exact
// security RTA (interferers iterated in seed/commit order) against the
// slice-based ExactSecurityResponseTimeFull on the identical interferer
// list, including the divergence contract.
func TestSecurityResponseTimeMatchesSliceAnalysis(t *testing.T) {
	st := rts.AcquireAnalysisState(1)
	defer rts.ReleaseAnalysisState(st)
	rtTasks := []rts.RTTask{
		rts.NewRTTask("b", 2, 14),
		rts.NewRTTask("a", 1, 9),
		rts.NewRTTask("c", 3, 40),
	}
	var hp []rts.InterferingTask
	for _, task := range rtTasks {
		st.SeedRT(0, task)
		hp = append(hp, rts.InterferingTask{C: task.C, T: task.T})
	}
	secs := []struct{ c, ts rts.Time }{{5, 120}, {2, 60}, {8, 400}}
	for _, s := range secs {
		wantR, wantOK, wantConv := rts.ExactSecurityResponseTimeFull(s.c, s.ts, hp)
		gotR, gotOK, gotConv := st.SecurityResponseTime(0, s.c, s.ts)
		if gotR != wantR || gotOK != wantOK || gotConv != wantConv {
			t.Fatalf("security RTA (C=%g, T=%g): state (%g,%v,%v) != slice (%g,%v,%v)",
				s.c, s.ts, gotR, gotOK, gotConv, wantR, wantOK, wantConv)
		}
		if lin := st.LinearSecurityBound(0, s.c, s.ts); lin != rts.LinearSecurityResponseBound(s.c, s.ts, hp) {
			t.Fatalf("linear bound mismatch: %g", lin)
		}
		st.CommitSecurity(0, s.c, s.ts)
		hp = append(hp, rts.InterferingTask{C: s.c, T: s.ts})
	}
}

// TestAnalysisStatePoolConcurrent hammers the pool from many goroutines
// (meaningful under -race): every goroutine acquires its own state, runs an
// independent incremental analysis and checks it against the cold one.
func TestAnalysisStatePoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seed := int64(0); seed < 8; seed++ {
				rng := stats.SplitRNG(int64(g)*1000+9, seed)
				w, err := taskgen.Generate(taskgen.DefaultParams(1, 0.7), rng)
				if err != nil {
					continue
				}
				st := rts.AcquireAnalysisState(1)
				allOK := true
				for _, task := range w.RT {
					if !st.AddRT(0, task) {
						allOK = false
						break
					}
				}
				if want := rts.CoreSchedulable(w.RT); allOK != want && allOK {
					// allOK false can mean a prefix failed where the full set
					// also fails; only a spurious accept is a bug here.
					t.Errorf("goroutine %d seed %d: incremental accepted, cold rejects", g, seed)
				}
				rts.ReleaseAnalysisState(st)
			}
		}(g)
	}
	wg.Wait()
}

// TestSeedRTInvalidatesMemoizedResponses pins the SeedRT staleness fix: a
// higher-priority seed arriving after commits must drop the memoized fixed
// points of the tasks it preempts, so RTResponseTimes re-derives them.
func TestSeedRTInvalidatesMemoizedResponses(t *testing.T) {
	st := rts.AcquireAnalysisState(1)
	defer rts.ReleaseAnalysisState(st)
	low := rts.NewRTTask("low", 2, 100)
	if !st.AddRT(0, low) {
		t.Fatal("low-priority task must be schedulable alone")
	}
	// Memoized now: resp(low) = 2. Seed a higher-priority interferer.
	st.SeedRT(0, rts.NewRTTask("high", 5, 10))
	got := st.RTResponseTimes(0, nil)
	want, _ := coldResponseTimes([]rts.RTTask{low, rts.NewRTTask("high", 5, 10)})
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("response times after late seed: got %v, want %v", got, want)
	}
}
