package rts

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRTTaskValidate(t *testing.T) {
	good := NewRTTask("a", 1, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	cases := []RTTask{
		{Name: "zeroC", C: 0, T: 10, D: 10},
		{Name: "negC", C: -1, T: 10, D: 10},
		{Name: "zeroT", C: 1, T: 0, D: 10},
		{Name: "zeroD", C: 1, T: 10, D: 0},
		{Name: "CgtD", C: 11, T: 20, D: 10},
		{Name: "DgtT", C: 1, T: 10, D: 20},
		{Name: "nanC", C: math.NaN(), T: 10, D: 10},
		{Name: "infT", C: 1, T: math.Inf(1), D: 10},
	}
	for _, tc := range cases {
		if err := tc.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.Name)
		}
	}
}

func TestSecurityTaskValidate(t *testing.T) {
	good := SecurityTask{Name: "s", C: 10, TDes: 100, TMax: 1000}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid security task rejected: %v", err)
	}
	cases := []SecurityTask{
		{Name: "zeroC", C: 0, TDes: 100, TMax: 1000},
		{Name: "TdesGtTmax", C: 1, TDes: 2000, TMax: 1000},
		{Name: "CgtTdes", C: 200, TDes: 100, TMax: 1000},
		{Name: "nan", C: math.NaN(), TDes: 100, TMax: 1000},
	}
	for _, tc := range cases {
		if err := tc.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.Name)
		}
	}
}

func TestTightnessAndWeights(t *testing.T) {
	s := SecurityTask{Name: "s", C: 10, TDes: 100, TMax: 1000}
	if got := s.Tightness(100); got != 1 {
		t.Fatalf("Tightness(TDes) = %v, want 1", got)
	}
	if got := s.Tightness(200); got != 0.5 {
		t.Fatalf("Tightness(2*TDes) = %v, want 0.5", got)
	}
	if got := s.Tightness(0); got != 0 {
		t.Fatalf("Tightness(0) = %v, want 0", got)
	}
	if got := s.EffectiveWeight(); got != 1 {
		t.Fatalf("default weight = %v, want 1", got)
	}
	s.Weight = 3
	if got := s.EffectiveWeight(); got != 3 {
		t.Fatalf("weight = %v, want 3", got)
	}
	if got := s.MinUtilization(); got != 0.01 {
		t.Fatalf("MinUtilization = %v", got)
	}
	if got := s.DesiredUtilization(); got != 0.1 {
		t.Fatalf("DesiredUtilization = %v", got)
	}
}

func TestSortRateMonotonic(t *testing.T) {
	tasks := []RTTask{
		NewRTTask("slow", 1, 100),
		NewRTTask("fast", 1, 10),
		NewRTTask("mid", 1, 50),
		NewRTTask("fast2", 1, 10),
	}
	SortRateMonotonic(tasks)
	want := []string{"fast", "fast2", "mid", "slow"}
	for i, w := range want {
		if tasks[i].Name != w {
			t.Fatalf("position %d = %s, want %s", i, tasks[i].Name, w)
		}
	}
}

func TestSortSecurityPriority(t *testing.T) {
	tasks := []SecurityTask{
		{Name: "loose", C: 1, TDes: 10, TMax: 1000},
		{Name: "tight", C: 1, TDes: 10, TMax: 100},
		{Name: "mid", C: 1, TDes: 10, TMax: 500},
	}
	SortSecurityPriority(tasks)
	want := []string{"tight", "mid", "loose"}
	for i, w := range want {
		if tasks[i].Name != w {
			t.Fatalf("position %d = %s, want %s", i, tasks[i].Name, w)
		}
	}
}

func TestUtilizationSums(t *testing.T) {
	rt := []RTTask{NewRTTask("a", 1, 10), NewRTTask("b", 2, 10)}
	if got := TotalRTUtilization(rt); !near(got, 0.3, 1e-12) {
		t.Fatalf("TotalRTUtilization = %v", got)
	}
	sec := []SecurityTask{{Name: "s", C: 5, TDes: 50, TMax: 500}}
	if got := TotalSecurityDesiredUtilization(sec); !near(got, 0.1, 1e-12) {
		t.Fatalf("TotalSecurityDesiredUtilization = %v", got)
	}
}

func TestValidateAll(t *testing.T) {
	rt := []RTTask{NewRTTask("a", 1, 10)}
	sec := []SecurityTask{{Name: "s", C: 5, TDes: 50, TMax: 500}}
	if err := ValidateAll(rt, sec); err != nil {
		t.Fatalf("ValidateAll: %v", err)
	}
	if err := ValidateAll([]RTTask{{Name: "bad", C: -1, T: 1, D: 1}}, nil); err == nil {
		t.Fatal("expected RT validation error")
	}
	if err := ValidateAll(nil, []SecurityTask{{Name: "bad", C: -1, TDes: 1, TMax: 1}}); err == nil {
		t.Fatal("expected security validation error")
	}
}

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(b)) }

func TestResponseTimeTextbook(t *testing.T) {
	// Classic example: tasks (C,T): (1,4), (2,6), (3,12). R3 = 1+2+... :
	// R1=1, R2=2+1*ceil? Let's compute: R2 = 2 + ceil(R2/4)*1 -> R2=3.
	// R3 = 3 + ceil(R/4)*1 + ceil(R/6)*2: R=3+1+2=6 -> 3+2+2=7... iterate:
	// R=6: 3+ceil(6/4)=2*1+ceil(6/6)=1*2 => 3+2+2=7; R=7: 3+2+4=9;
	// R=9: 3+3+4=10; R=10: 3+3+4=10 fixpoint.
	hp := []RTTask{NewRTTask("t1", 1, 4), NewRTTask("t2", 2, 6)}
	r, ok := ResponseTime(3, 12, hp)
	if !ok || r != 10 {
		t.Fatalf("R3 = %v ok=%v, want 10 true", r, ok)
	}
	r1, ok1 := ResponseTime(1, 4, nil)
	if !ok1 || r1 != 1 {
		t.Fatalf("R1 = %v ok=%v", r1, ok1)
	}
}

func TestResponseTimeUnschedulable(t *testing.T) {
	hp := []RTTask{NewRTTask("hog", 5, 10)}
	if _, ok := ResponseTime(6, 10, hp); ok {
		t.Fatal("should be unschedulable: 6+5 > 10")
	}
}

func TestCoreSchedulable(t *testing.T) {
	ok := []RTTask{NewRTTask("a", 1, 4), NewRTTask("b", 2, 6), NewRTTask("c", 3, 12)}
	if !CoreSchedulable(ok) {
		t.Fatal("textbook set should be schedulable")
	}
	bad := []RTTask{NewRTTask("a", 3, 4), NewRTTask("b", 3, 6)}
	if CoreSchedulable(bad) {
		t.Fatal("overloaded set should be unschedulable")
	}
	if !CoreSchedulable(nil) {
		t.Fatal("empty core is schedulable")
	}
}

func TestLiuLaylandBound(t *testing.T) {
	if got := LiuLaylandBound(1); !near(got, 1, 1e-12) {
		t.Fatalf("LL(1) = %v", got)
	}
	if got := LiuLaylandBound(2); !near(got, 2*(math.Sqrt2-1), 1e-12) {
		t.Fatalf("LL(2) = %v", got)
	}
	if got := LiuLaylandBound(0); got != 0 {
		t.Fatalf("LL(0) = %v", got)
	}
	// Monotone decreasing toward ln 2.
	prev := LiuLaylandBound(1)
	for n := 2; n < 50; n++ {
		cur := LiuLaylandBound(n)
		if cur >= prev {
			t.Fatalf("LL not decreasing at n=%d", n)
		}
		prev = cur
	}
	if prev < math.Ln2 {
		t.Fatalf("LL(49)=%v below ln2", prev)
	}
}

// Property: utilization below the Liu-Layland bound implies RTA passes.
func TestLLImpliesRTAProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		bound := LiuLaylandBound(n)
		tasks := make([]RTTask, n)
		// Generate with total utilization just under the bound.
		share := bound * 0.95 / float64(n)
		for i := range tasks {
			period := 10 + 990*r.Float64()
			tasks[i] = NewRTTask("t", share*period, period)
		}
		return CoreSchedulable(tasks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCoreLoad(t *testing.T) {
	var l CoreLoad
	l.AddRT(NewRTTask("a", 2, 10)) // C=2 U=0.2
	l.AddPeriodic(3, 30)           // C=3 U=0.1
	if !near(l.SumC, 5, 1e-12) || !near(l.SumU, 0.3, 1e-12) {
		t.Fatalf("load = %+v", l)
	}
	// I(ts) = 5 + 0.3*ts.
	if got := l.LinearInterference(10); !near(got, 8, 1e-12) {
		t.Fatalf("LinearInterference = %v", got)
	}
	// Min feasible period for c=2: (2+5)/(1-0.3) = 10.
	if got := l.MinFeasiblePeriod(2); !near(got, 10, 1e-12) {
		t.Fatalf("MinFeasiblePeriod = %v", got)
	}
}

func TestMinFeasiblePeriodSaturated(t *testing.T) {
	l := CoreLoad{SumC: 1, SumU: 1.0}
	if got := l.MinFeasiblePeriod(1); !math.IsInf(got, 1) {
		t.Fatalf("saturated core should give +Inf, got %v", got)
	}
	l.SumU = 1.5
	if got := l.MinFeasiblePeriod(1); !math.IsInf(got, 1) {
		t.Fatalf("overloaded core should give +Inf, got %v", got)
	}
}

// Property: at the minimum feasible period the constraint is tight:
// c + I(ts) == ts (within float tolerance), and any smaller period violates.
func TestMinFeasiblePeriodTightProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := CoreLoad{SumC: 5 * r.Float64(), SumU: 0.9 * r.Float64()}
		c := 0.1 + 2*r.Float64()
		ts := l.MinFeasiblePeriod(c)
		lhs := c + l.LinearInterference(ts)
		if math.Abs(lhs-ts) > 1e-9*(1+ts) {
			return false
		}
		smaller := ts * 0.99
		return c+l.LinearInterference(smaller) > smaller
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDBF(t *testing.T) {
	task := NewRTTask("a", 2, 10) // implicit deadline 10
	cases := []struct {
		t    Time
		want Time
	}{
		{0, 0}, {5, 0}, {9.99, 0}, {10, 2}, {19.99, 2}, {20, 4}, {100, 20},
	}
	for _, tc := range cases {
		if got := DBF(task, tc.t); got != tc.want {
			t.Errorf("DBF(t=%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	constrained := RTTask{Name: "c", C: 1, T: 10, D: 5}
	if got := DBF(constrained, 5); got != 1 {
		t.Errorf("constrained DBF(5) = %v, want 1", got)
	}
	if got := DBF(constrained, 4.9); got != 0 {
		t.Errorf("constrained DBF(4.9) = %v, want 0", got)
	}
}

func TestNecessaryCondition(t *testing.T) {
	light := []RTTask{NewRTTask("a", 1, 10), NewRTTask("b", 1, 10)}
	if !NecessaryConditionHolds(light, 1) {
		t.Fatal("U=0.2 on 1 core must pass")
	}
	heavy := []RTTask{NewRTTask("a", 9, 10), NewRTTask("b", 9, 10)}
	if NecessaryConditionHolds(heavy, 1) {
		t.Fatal("U=1.8 on 1 core must fail")
	}
	if !NecessaryConditionHolds(heavy, 2) {
		t.Fatal("U=1.8 on 2 cores must pass (implicit deadlines)")
	}
	if NecessaryConditionHolds(light, 0) {
		t.Fatal("no cores with tasks must fail")
	}
	if !NecessaryConditionHolds(nil, 0) {
		t.Fatal("no cores, no tasks is trivially fine")
	}
}

func TestNecessaryConditionConstrained(t *testing.T) {
	// Two tasks with tiny deadlines: each needs 1 unit by t=1, so demand at
	// t=1 is 2 > M*1 for M=1 — fails even though utilization is low.
	tasks := []RTTask{
		{Name: "a", C: 1, T: 100, D: 1},
		{Name: "b", C: 1, T: 100, D: 1},
	}
	if NecessaryConditionHolds(tasks, 1) {
		t.Fatal("constrained-deadline overload must fail on 1 core")
	}
	if !NecessaryConditionHolds(tasks, 2) {
		t.Fatal("2 cores fit the two unit demands")
	}
}

// Property: utilization over M always violates; utilization under M with
// implicit deadlines always holds.
func TestNecessaryConditionUtilizationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(4)
		n := 1 + r.Intn(10)
		target := float64(m) * (0.5 + r.Float64()) // in (0.5M, 1.5M)
		tasks := make([]RTTask, n)
		share := target / float64(n)
		for i := range tasks {
			period := 10 + 990*r.Float64()
			c := share * period
			tasks[i] = NewRTTask("t", c, period)
		}
		got := NecessaryConditionHolds(tasks, m)
		return got == (target <= float64(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
