package core

import (
	"math"
	"strings"
	"testing"

	"hydra/internal/rts"
)

func TestExplainHydraMatchesHydra(t *testing.T) {
	sec := []rts.SecurityTask{
		{Name: "a", C: 10, TDes: 100, TMax: 2000},
		{Name: "b", C: 15, TDes: 150, TMax: 3000},
		{Name: "c", C: 20, TDes: 200, TMax: 4000},
	}
	in := twoCoreInput(t, 0.6, 0.5, sec)
	plain := Hydra(in, HydraOptions{})
	ex := ExplainHydra(in)
	if !ex.Result.Schedulable || !plain.Schedulable {
		t.Fatalf("feasibility mismatch: %v vs %v", ex.Result.Schedulable, plain.Schedulable)
	}
	for i := range sec {
		if plain.Assignment[i] != ex.Result.Assignment[i] || plain.Periods[i] != ex.Result.Periods[i] {
			t.Fatalf("task %d: explained run diverged from plain run", i)
		}
	}
	if len(ex.Decisions) != len(sec) {
		t.Fatalf("decisions = %d", len(ex.Decisions))
	}
	for _, d := range ex.Decisions {
		if len(d.Candidates) != in.M {
			t.Fatalf("decision %s evaluated %d cores", d.TaskName, len(d.Candidates))
		}
		if d.Chosen < 0 {
			t.Fatalf("decision %s unexpectedly infeasible", d.TaskName)
		}
		// The chosen candidate is the feasible one with max tightness.
		best := -1.0
		for _, c := range d.Candidates {
			if c.Feasible && c.Tightness > best {
				best = c.Tightness
			}
		}
		var chosenTight float64
		for _, c := range d.Candidates {
			if c.Core == d.Chosen {
				chosenTight = c.Tightness
			}
		}
		if chosenTight != best {
			t.Fatalf("decision %s chose tightness %v, best was %v", d.TaskName, chosenTight, best)
		}
	}
}

func TestExplainHydraInfeasibleHints(t *testing.T) {
	sec := []rts.SecurityTask{{Name: "s", C: 10, TDes: 50, TMax: 100}}
	in := twoCoreInput(t, 0.9, 0.9, sec)
	ex := ExplainHydra(in)
	if ex.Result.Schedulable {
		t.Fatal("expected infeasible")
	}
	d := ex.Decisions[len(ex.Decisions)-1]
	if d.Chosen != -1 {
		t.Fatalf("failing decision should have Chosen=-1: %+v", d)
	}
	c, p, ok := d.ClosestCore()
	if !ok {
		t.Fatal("ClosestCore must report for infeasible decision")
	}
	if c != 0 && c != 1 {
		t.Fatalf("closest core = %d", c)
	}
	// Min period with C=10, SumC=90, SumU=0.9: 100/0.1 = 1000.
	if math.Abs(p-1000) > 1e-6 {
		t.Fatalf("closest min period = %v, want 1000", p)
	}
	var sb strings.Builder
	if err := ex.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "infeasible everywhere") || !strings.Contains(out, "hint:") {
		t.Fatalf("report missing hint:\n%s", out)
	}
}

func TestExplainHydraInvalidInput(t *testing.T) {
	ex := ExplainHydra(&Input{M: 0})
	if ex.Result.Schedulable {
		t.Fatal("invalid input must fail")
	}
}

func TestClosestCoreOnFeasible(t *testing.T) {
	d := Decision{Chosen: 1}
	if _, _, ok := d.ClosestCore(); ok {
		t.Fatal("feasible decision has no closest-core hint")
	}
}

func TestExplainWriteTextFeasible(t *testing.T) {
	sec := []rts.SecurityTask{{Name: "s", C: 10, TDes: 100, TMax: 5000}}
	in := twoCoreInput(t, 0.3, 0.7, sec)
	ex := ExplainHydra(in)
	var sb strings.Builder
	if err := ex.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "* core") || !strings.Contains(out, "cumulative tightness") {
		t.Fatalf("report incomplete:\n%s", out)
	}
}
