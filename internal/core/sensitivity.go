package core

import (
	"fmt"
	"math"

	"hydra/internal/rts"
)

// The paper notes that an unschedulability verdict "will provide hints to
// the designers to update the parameters of security tasks" (Sec. III-B).
// This file turns that remark into tooling: breakdown analysis (how much
// security load the platform can absorb) and minimal-relaxation suggestions
// (how much the security requirements must be loosened to become feasible).

// BreakdownSecurityScale returns the largest factor k (within tol) such
// that multiplying every security WCET by k keeps HYDRA schedulable, plus
// the schedulability at k itself. A value > 1 measures headroom; < 1 means
// the given workload is already infeasible and must shrink. The search
// covers [0, maxScale] by bisection.
func BreakdownSecurityScale(in *Input, opt HydraOptions, maxScale, tol float64) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if maxScale <= 0 {
		maxScale = 16
	}
	if tol <= 0 {
		tol = 1e-3
	}
	feasible := func(k float64) bool {
		scaled := make([]rts.SecurityTask, len(in.Sec))
		for i, s := range in.Sec {
			scaled[i] = s
			scaled[i].C = s.C * k
			if scaled[i].C > scaled[i].TDes {
				return false // would violate C <= TDes validity
			}
		}
		trial := &Input{M: in.M, RT: in.RT, RTPartition: in.RTPartition, Sec: scaled}
		return Hydra(trial, opt).Schedulable
	}
	if !feasible(0 + tol) {
		return 0, nil // even near-zero security load fails (RT side broken)
	}
	lo, hi := tol, maxScale
	if feasible(hi) {
		return hi, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// Relaxation is a suggested parameter change that restores schedulability.
type Relaxation struct {
	// TMaxFactor is the uniform multiplier applied to every security task's
	// TMax (monitoring-effectiveness horizon) that makes HYDRA succeed.
	TMaxFactor float64
	// Result is the allocation obtained after applying the relaxation.
	Result *Result
}

// SuggestTMaxRelaxation searches for the smallest uniform TMax multiplier in
// [1, maxFactor] under which HYDRA schedules the workload, mirroring the
// designer guidance the paper describes. It returns ok = false when even
// maxFactor does not help (the bottleneck is not the period range).
func SuggestTMaxRelaxation(in *Input, opt HydraOptions, maxFactor, tol float64) (Relaxation, bool, error) {
	if err := in.Validate(); err != nil {
		return Relaxation{}, false, err
	}
	if maxFactor < 1 {
		maxFactor = 16
	}
	if tol <= 0 {
		tol = 1e-3
	}
	attempt := func(f float64) *Result {
		scaled := make([]rts.SecurityTask, len(in.Sec))
		for i, s := range in.Sec {
			scaled[i] = s
			scaled[i].TMax = s.TMax * f
		}
		trial := &Input{M: in.M, RT: in.RT, RTPartition: in.RTPartition, Sec: scaled}
		return Hydra(trial, opt)
	}
	if r := attempt(1); r.Schedulable {
		return Relaxation{TMaxFactor: 1, Result: r}, true, nil
	}
	if r := attempt(maxFactor); !r.Schedulable {
		return Relaxation{}, false, nil
	}
	lo, hi := 1.0, maxFactor
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if attempt(mid).Schedulable {
			hi = mid
		} else {
			lo = mid
		}
	}
	r := attempt(hi)
	if !r.Schedulable {
		return Relaxation{}, false, fmt.Errorf("core: bisection landed on an infeasible factor %g", hi)
	}
	return Relaxation{TMaxFactor: hi, Result: r}, true, nil
}

// SecuritySlack reports, per core, the utilization left for security work
// after the real-time tasks and an existing allocation are accounted for:
// 1 - SumU(core). Designers use it to see where additional monitors fit.
func SecuritySlack(in *Input, r *Result) ([]float64, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	loads := in.RTLoads()
	if r != nil && r.Schedulable {
		for i := range in.Sec {
			c := r.Assignment[i]
			if c < 0 || c >= in.M {
				return nil, fmt.Errorf("core: task %d on invalid core %d", i, c)
			}
			loads[c].AddPeriodic(in.Sec[i].C, r.Periods[i])
		}
	}
	out := make([]float64, in.M)
	for c := range out {
		out[c] = math.Max(0, 1-loads[c].SumU)
	}
	return out, nil
}
