// Package core implements the paper's contribution: allocation of sporadic
// security tasks onto a partitioned multicore real-time system with period
// adaptation — the HYDRA heuristic (Algorithm 1), the SingleCore baseline
// (dedicated security core), and the OPT exhaustive baseline (enumeration of
// all M^NS assignments with per-assignment joint period optimization).
//
// Security tasks run at priorities strictly below every real-time task
// ("opportunistic execution"); among themselves they are prioritized by
// smaller TMax (Sec. II-C). The schedulability constraint is the linear
// interference bound of Eq. (5)–(6); the quality metric is the cumulative
// weighted tightness of Eq. (3).
package core

import (
	"fmt"
	"sort"
	"sync"

	"hydra/internal/partition"
	"hydra/internal/rts"
)

// Input is a fully specified allocation problem: a platform of M cores, the
// real-time tasks with their (given, immutable) partition, and the security
// tasks to place.
//
// An Input lazily caches analysis state derived purely from its fields (the
// per-core load aggregates and the security priority order), so the several
// schemes and verification passes an experiment cell or serving request runs
// against the same problem derive them once instead of re-sorting and
// re-folding per call. The fields must therefore not be mutated once any
// scheme has run; build a new Input instead.
type Input struct {
	M           int
	RT          []rts.RTTask
	RTPartition []int // RTPartition[i] is the core of RT[i]
	Sec         []rts.SecurityTask

	loadsOnce sync.Once
	loads     []rts.CoreLoad // cached RTLoads, read-only after loadsOnce
	orderOnce sync.Once
	order     []int // cached secOrder, read-only after orderOnce
	validOnce sync.Once
	validErr  error // cached Validate verdict
}

// NewInput bundles and validates an allocation problem.
func NewInput(m int, rt []rts.RTTask, part []int, sec []rts.SecurityTask) (*Input, error) {
	in := &Input{M: m, RT: rt, RTPartition: part, Sec: sec}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// Validate checks structural consistency of the input. The verdict is
// cached: every scheme an experiment cell or serving request runs against
// the same Input re-checks it, and the fields are immutable once in use.
func (in *Input) Validate() error {
	in.validOnce.Do(func() { in.validErr = in.validate() })
	return in.validErr
}

func (in *Input) validate() error {
	if in.M <= 0 {
		return fmt.Errorf("core: need at least one core, got %d", in.M)
	}
	if len(in.RT) != len(in.RTPartition) {
		return fmt.Errorf("core: %d real-time tasks but %d partition entries", len(in.RT), len(in.RTPartition))
	}
	for i, c := range in.RTPartition {
		if c < 0 || c >= in.M {
			return fmt.Errorf("core: RT task %d on invalid core %d of %d", i, c, in.M)
		}
	}
	return rts.ValidateAll(in.RT, in.Sec)
}

// sharedRTLoads returns the cached Eq. 5 aggregates of the real-time tasks
// per core. The returned slice is shared and must not be mutated; callers
// that commit security load on top of it copy first (see copyRTLoads).
func (in *Input) sharedRTLoads() []rts.CoreLoad {
	in.loadsOnce.Do(func() {
		loads := make([]rts.CoreLoad, in.M)
		for i, c := range in.RTPartition {
			loads[c].AddRT(in.RT[i])
		}
		in.loads = loads
	})
	return in.loads
}

// copyRTLoads copies the cached per-core aggregates into dst (grown as
// needed) and returns it — the mutable working set of the allocation loops.
func (in *Input) copyRTLoads(dst []rts.CoreLoad) []rts.CoreLoad {
	shared := in.sharedRTLoads()
	if cap(dst) < len(shared) {
		dst = make([]rts.CoreLoad, len(shared))
	}
	dst = dst[:len(shared)]
	copy(dst, shared)
	return dst
}

// RTLoads returns the Eq. 5 aggregates of the real-time tasks per core. The
// returned slice is the caller's to mutate.
func (in *Input) RTLoads() []rts.CoreLoad {
	return in.copyRTLoads(nil)
}

// SecurityPriorityOrder returns sec indices sorted from highest to lowest
// priority (ascending TMax, ties by name then index — Sec. II-C): the
// processing order of every allocation scheme. It is exported because the
// online admission layer commits its cold allocations in exactly this order
// to keep its load folds bit-identical to the scheme's run — a drifting copy
// of the comparator would silently break that contract.
func SecurityPriorityOrder(sec []rts.SecurityTask) []int {
	order := make([]int, len(sec))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := sec[order[a]], sec[order[b]]
		if sa.TMax != sb.TMax {
			return sa.TMax < sb.TMax
		}
		if sa.Name != sb.Name {
			return sa.Name < sb.Name
		}
		return order[a] < order[b]
	})
	return order
}

// secOrder returns the cached SecurityPriorityOrder of in.Sec. The returned
// slice is shared: callers must treat it as read-only.
func (in *Input) secOrder() []int {
	in.orderOnce.Do(func() {
		if in.order != nil {
			return // pre-seeded (EffectiveInput shares the parent's order)
		}
		in.order = SecurityPriorityOrder(in.Sec)
	})
	return in.order
}

// Result is the outcome of an allocation scheme. All slices are indexed by
// the *input* order of Input.Sec.
type Result struct {
	Schedulable bool
	Scheme      string     // "hydra", "singlecore", "opt", ...
	Assignment  []int      // core per security task
	Periods     []rts.Time // adapted period per security task
	Tightness   []float64  // eta_s = TDes/T per task
	Cumulative  float64    // sum of weight * eta over all tasks (Eq. 3)
	Reason      string     // populated when Schedulable is false
	// RTPartition records the real-time partition the scheme actually solved
	// against. Most schemes keep the caller's partition; schemes that
	// repartition (SingleCore evicts real-time tasks from the dedicated
	// security core) record their own here so verification and simulation
	// analyze the problem that was really solved. See EffectiveInput.
	RTPartition []int
}

// newInfeasible builds an unschedulable result with a diagnostic reason.
func newInfeasible(scheme, reason string) *Result {
	return &Result{Schedulable: false, Scheme: scheme, Reason: reason}
}

// finalize computes tightness metrics from assignment and periods.
func finalize(in *Input, scheme string, assign []int, periods []rts.Time) *Result {
	r := &Result{
		Schedulable: true,
		Scheme:      scheme,
		Assignment:  assign,
		Periods:     periods,
		Tightness:   make([]float64, len(in.Sec)),
		RTPartition: in.RTPartition,
	}
	for i, s := range in.Sec {
		r.Tightness[i] = s.Tightness(periods[i])
		r.Cumulative += s.EffectiveWeight() * r.Tightness[i]
	}
	return r
}

// EffectiveInput returns the allocation problem a result was actually solved
// against: the given input with the result's recorded real-time partition (if
// any) substituted. Schemes that keep the caller's partition return the input
// unchanged; repartitioning schemes like SingleCore return a copy carrying
// their own partition.
func EffectiveInput(in *Input, r *Result) *Input {
	if r == nil || len(r.RTPartition) != len(in.RT) {
		return in
	}
	out := &Input{M: in.M, RT: in.RT, RTPartition: r.RTPartition, Sec: in.Sec}
	// The security priority order depends only on Sec, which is unchanged:
	// seed it from the parent before out escapes, so verifying a
	// self-partitioning result does not re-sort per call. The load and
	// validation caches depend on the substituted partition and stay lazy.
	out.order = in.secOrder()
	return out
}

// Verify checks that a schedulable result satisfies every model constraint:
// exactly one core per task, periods within [TDes, TMax], and the Eq. (6)
// schedulability test Cs + I_s <= Ts on every core with the linear
// interference of Eq. (5) from real-time tasks and higher-priority security
// tasks. Results carrying their own RT partition (see Result.RTPartition) are
// verified against it. It returns nil for a valid result.
func Verify(in *Input, r *Result) error {
	in = EffectiveInput(in, r)
	if !r.Schedulable {
		return fmt.Errorf("core: cannot verify an unschedulable result (%s)", r.Reason)
	}
	if len(r.Assignment) != len(in.Sec) || len(r.Periods) != len(in.Sec) {
		return fmt.Errorf("core: result covers %d/%d tasks, want %d", len(r.Assignment), len(r.Periods), len(in.Sec))
	}
	for i, s := range in.Sec {
		if c := r.Assignment[i]; c < 0 || c >= in.M {
			return fmt.Errorf("core: task %q on invalid core %d", s.Name, c)
		}
		const tol = 1e-6
		if r.Periods[i] < s.TDes*(1-tol) || r.Periods[i] > s.TMax*(1+tol) {
			return fmt.Errorf("core: task %q period %g outside [%g, %g]", s.Name, r.Periods[i], s.TDes, s.TMax)
		}
	}
	loads := in.sharedRTLoads() // read-only; per-core copies taken below
	order := in.secOrder()
	// Walk in priority order, checking each task against the interference of
	// real-time tasks plus already-walked (higher-priority) security tasks.
	sc := acquireScratch()
	defer releaseScratch(sc)
	sc.committed = zeroLoads(sc.committed, in.M)
	committed := sc.committed
	for _, i := range order {
		s := in.Sec[i]
		c := r.Assignment[i]
		load := loads[c]
		load.SumC += committed[c].SumC
		load.SumU += committed[c].SumU
		ts := r.Periods[i]
		lhs := s.C + load.LinearInterference(ts)
		if lhs > ts*(1+1e-6) {
			return fmt.Errorf("core: task %q violates Eq. 6 on core %d: %g > %g", s.Name, c, lhs, ts)
		}
		committed[c].AddPeriodic(s.C, ts)
	}
	return nil
}

// PartitionForHydra partitions the real-time tasks across all M cores with
// the given heuristic — the RT-side preparation step the paper assumes for
// HYDRA and OPT (Sec. II-A / IV-B).
func PartitionForHydra(rt []rts.RTTask, m int, h partition.Heuristic) ([]int, error) {
	p, err := partition.PartitionRT(rt, m, h)
	if err != nil {
		return nil, err
	}
	return p.CoreOf, nil
}
