package core

import (
	"fmt"

	"hydra/internal/rts"
)

// VerifyExact checks a schedulable result against the *exact* ceiling-based
// response-time analysis instead of the paper's linear interference bound:
// every security task, on its assigned core, must have a worst-case response
// time (under interference from all real-time tasks on that core and all
// higher-priority security tasks assigned there) no larger than its adapted
// period. Because the linear bound of Eq. (5) dominates the ceiling bound,
// any result accepted by Verify must also pass VerifyExact; the converse
// does not hold (the exact test admits more). The function exists both as a
// defence-in-depth check and to quantify the pessimism of the paper's
// analysis.
//
// The per-core interferer lists live in a pooled rts.AnalysisState (seeded
// in RT-partition order, security tasks committed in priority order — the
// same interference summation order as the historical slice-building code),
// so repeated verification allocates nothing in steady state.
func VerifyExact(in *Input, r *Result) error {
	in = EffectiveInput(in, r)
	if !r.Schedulable {
		return fmt.Errorf("core: cannot verify an unschedulable result (%s)", r.Reason)
	}
	if len(r.Assignment) != len(in.Sec) || len(r.Periods) != len(in.Sec) {
		return fmt.Errorf("core: result covers %d/%d tasks, want %d", len(r.Assignment), len(r.Periods), len(in.Sec))
	}
	st := rts.AcquireAnalysisState(in.M)
	defer rts.ReleaseAnalysisState(st)
	for i, c := range in.RTPartition {
		st.SeedRT(c, in.RT[i])
	}
	for _, i := range in.secOrder() {
		s := in.Sec[i]
		c := r.Assignment[i]
		if c < 0 || c >= in.M {
			return fmt.Errorf("core: task %q on invalid core %d", s.Name, c)
		}
		ts := r.Periods[i]
		resp, ok, converged := st.SecurityResponseTime(c, s.C, ts)
		if !ok {
			if !converged {
				// Not a proven miss: the fixed point was not reached within
				// the iteration budget. Conservatively reject, but say so.
				return fmt.Errorf("core: task %q: exact RTA did not converge on core %d (R >= %g, T=%g); treating as unschedulable", s.Name, c, resp, ts)
			}
			return fmt.Errorf("core: task %q misses its adapted deadline on core %d: R=%g > T=%g", s.Name, c, resp, ts)
		}
		st.CommitSecurity(c, s.C, ts)
	}
	return nil
}

// AnalysisPessimism quantifies how conservative the paper's linear bound is
// for a given schedulable result: for each security task it returns
// (linear bound)/(exact response time); values > 1 measure the headroom the
// exact analysis would recover.
func AnalysisPessimism(in *Input, r *Result) ([]float64, error) {
	in = EffectiveInput(in, r)
	if !r.Schedulable {
		return nil, fmt.Errorf("core: cannot analyse an unschedulable result")
	}
	st := rts.AcquireAnalysisState(in.M)
	defer rts.ReleaseAnalysisState(st)
	for i, c := range in.RTPartition {
		st.SeedRT(c, in.RT[i])
	}
	out := make([]float64, len(in.Sec))
	for _, i := range in.secOrder() {
		s := in.Sec[i]
		c := r.Assignment[i]
		ts := r.Periods[i]
		linear := st.LinearSecurityBound(c, s.C, ts)
		exact, ok, converged := st.SecurityResponseTime(c, s.C, ts)
		if !ok || exact <= 0 {
			if !converged {
				return nil, fmt.Errorf("core: task %q: exact RTA did not converge (response time >= %g)", s.Name, exact)
			}
			return nil, fmt.Errorf("core: task %q fails the exact analysis", s.Name)
		}
		out[i] = linear / exact
		st.CommitSecurity(c, s.C, ts)
	}
	return out, nil
}
