package core

import (
	"fmt"

	"hydra/internal/rts"
)

// VerifyExact checks a schedulable result against the *exact* ceiling-based
// response-time analysis instead of the paper's linear interference bound:
// every security task, on its assigned core, must have a worst-case response
// time (under interference from all real-time tasks on that core and all
// higher-priority security tasks assigned there) no larger than its adapted
// period. Because the linear bound of Eq. (5) dominates the ceiling bound,
// any result accepted by Verify must also pass VerifyExact; the converse
// does not hold (the exact test admits more). The function exists both as a
// defence-in-depth check and to quantify the pessimism of the paper's
// analysis.
func VerifyExact(in *Input, r *Result) error {
	in = EffectiveInput(in, r)
	if !r.Schedulable {
		return fmt.Errorf("core: cannot verify an unschedulable result (%s)", r.Reason)
	}
	if len(r.Assignment) != len(in.Sec) || len(r.Periods) != len(in.Sec) {
		return fmt.Errorf("core: result covers %d/%d tasks, want %d", len(r.Assignment), len(r.Periods), len(in.Sec))
	}
	// Interferer lists per core, seeded with the real-time tasks.
	perCore := make([][]rts.InterferingTask, in.M)
	for i, c := range in.RTPartition {
		perCore[c] = append(perCore[c], rts.InterferingTask{C: in.RT[i].C, T: in.RT[i].T})
	}
	for _, i := range in.secOrder() {
		s := in.Sec[i]
		c := r.Assignment[i]
		if c < 0 || c >= in.M {
			return fmt.Errorf("core: task %q on invalid core %d", s.Name, c)
		}
		ts := r.Periods[i]
		resp, ok := rts.ExactSecurityResponseTime(s.C, ts, perCore[c])
		if !ok {
			return fmt.Errorf("core: task %q misses its adapted deadline on core %d: R=%g > T=%g", s.Name, c, resp, ts)
		}
		perCore[c] = append(perCore[c], rts.InterferingTask{C: s.C, T: ts})
	}
	return nil
}

// AnalysisPessimism quantifies how conservative the paper's linear bound is
// for a given schedulable result: for each security task it returns
// (linear bound)/(exact response time); values > 1 measure the headroom the
// exact analysis would recover.
func AnalysisPessimism(in *Input, r *Result) ([]float64, error) {
	in = EffectiveInput(in, r)
	if !r.Schedulable {
		return nil, fmt.Errorf("core: cannot analyse an unschedulable result")
	}
	perCore := make([][]rts.InterferingTask, in.M)
	for i, c := range in.RTPartition {
		perCore[c] = append(perCore[c], rts.InterferingTask{C: in.RT[i].C, T: in.RT[i].T})
	}
	out := make([]float64, len(in.Sec))
	for _, i := range in.secOrder() {
		s := in.Sec[i]
		c := r.Assignment[i]
		ts := r.Periods[i]
		linear := rts.LinearSecurityResponseBound(s.C, ts, perCore[c])
		exact, ok := rts.ExactSecurityResponseTime(s.C, ts, perCore[c])
		if !ok || exact <= 0 {
			return nil, fmt.Errorf("core: task %q fails the exact analysis", s.Name)
		}
		out[i] = linear / exact
		perCore[c] = append(perCore[c], rts.InterferingTask{C: s.C, T: ts})
	}
	return out, nil
}
