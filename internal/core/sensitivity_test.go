package core

import (
	"testing"

	"hydra/internal/rts"
)

func TestBreakdownSecurityScale(t *testing.T) {
	sec := []rts.SecurityTask{{Name: "s", C: 10, TDes: 1000, TMax: 10000}}
	in := twoCoreInput(t, 0.5, 0.5, sec)
	k, err := BreakdownSecurityScale(in, HydraOptions{}, 64, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// The task fits easily at k=1; headroom must be substantially above 1.
	if k <= 1 {
		t.Fatalf("breakdown scale %v should exceed 1", k)
	}
	// At the breakdown point, scaling by k must be feasible but 2k must not
	// (unless capped by the C <= TDes validity bound).
	scaled := sec[0]
	scaled.C = sec[0].C * k
	trial := &Input{M: in.M, RT: in.RT, RTPartition: in.RTPartition, Sec: []rts.SecurityTask{scaled}}
	if !Hydra(trial, HydraOptions{}).Schedulable {
		t.Fatalf("scale %v reported feasible but is not", k)
	}
}

func TestBreakdownSecurityScaleZeroWhenRTBroken(t *testing.T) {
	// Saturated cores: even epsilon security load fails.
	sec := []rts.SecurityTask{{Name: "s", C: 10, TDes: 50, TMax: 60}}
	in := twoCoreInput(t, 0.99, 0.99, sec)
	k, err := BreakdownSecurityScale(in, HydraOptions{}, 16, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if k != 0 {
		t.Fatalf("breakdown scale = %v, want 0", k)
	}
}

func TestBreakdownValidatesInput(t *testing.T) {
	if _, err := BreakdownSecurityScale(&Input{M: 0}, HydraOptions{}, 0, 0); err == nil {
		t.Fatal("invalid input must error")
	}
}

func TestSuggestTMaxRelaxation(t *testing.T) {
	// TMax is just too tight: min feasible period is 450 but TMax = 400.
	sec := []rts.SecurityTask{{Name: "s", C: 10, TDes: 50, TMax: 400}}
	in := twoCoreInput(t, 0.8, 0.8, sec)
	if Hydra(in, HydraOptions{}).Schedulable {
		t.Fatal("test premise: base workload must be infeasible")
	}
	rel, ok, err := SuggestTMaxRelaxation(in, HydraOptions{}, 16, 1e-4)
	if err != nil || !ok {
		t.Fatalf("relaxation failed: ok=%v err=%v", ok, err)
	}
	// Needed factor: 450/400 = 1.125.
	if rel.TMaxFactor < 1.12 || rel.TMaxFactor > 1.14 {
		t.Fatalf("TMax factor = %v, want ~1.125", rel.TMaxFactor)
	}
	if !rel.Result.Schedulable {
		t.Fatal("relaxed result must be schedulable")
	}
}

func TestSuggestTMaxRelaxationAlreadyFeasible(t *testing.T) {
	sec := []rts.SecurityTask{{Name: "s", C: 10, TDes: 1000, TMax: 10000}}
	in := twoCoreInput(t, 0.3, 0.3, sec)
	rel, ok, err := SuggestTMaxRelaxation(in, HydraOptions{}, 16, 1e-3)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if rel.TMaxFactor != 1 {
		t.Fatalf("factor = %v, want 1 (already feasible)", rel.TMaxFactor)
	}
}

func TestSuggestTMaxRelaxationHopeless(t *testing.T) {
	// Cores saturated by RT load: no TMax stretch helps.
	sec := []rts.SecurityTask{{Name: "s", C: 60, TDes: 100, TMax: 200}}
	in := twoCoreInput(t, 0.999, 0.999, sec)
	_, ok, err := SuggestTMaxRelaxation(in, HydraOptions{}, 4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("saturated platform must report no relaxation")
	}
}

func TestSecuritySlack(t *testing.T) {
	sec := []rts.SecurityTask{{Name: "s", C: 10, TDes: 100, TMax: 1000}}
	in := twoCoreInput(t, 0.4, 0.2, sec)
	// Without allocation: slack = 1 - RT utilization.
	slack, err := SecuritySlack(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !near(slack[0], 0.6, 1e-9) || !near(slack[1], 0.8, 1e-9) {
		t.Fatalf("slack = %v", slack)
	}
	// With allocation: the chosen core loses C/T.
	r := Hydra(in, HydraOptions{})
	slack2, err := SecuritySlack(in, r)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Assignment[0]
	if slack2[c] >= slack[c] {
		t.Fatalf("allocated core slack should shrink: %v vs %v", slack2[c], slack[c])
	}
	// Invalid allocation rejected.
	bad := &Result{Schedulable: true, Assignment: []int{9}, Periods: []rts.Time{100}}
	if _, err := SecuritySlack(in, bad); err == nil {
		t.Fatal("invalid core index must error")
	}
}
