package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hydra/internal/partition"
	"hydra/internal/rts"
	"hydra/internal/taskgen"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(b)) }

// twoCoreInput builds a small deterministic platform: 2 cores, one RT task
// per core with utilization u0 and u1 (period 100), plus the given security
// tasks.
func twoCoreInput(t *testing.T, u0, u1 float64, sec []rts.SecurityTask) *Input {
	t.Helper()
	rt := []rts.RTTask{
		rts.NewRTTask("rt0", u0*100, 100),
		rts.NewRTTask("rt1", u1*100, 100),
	}
	in, err := NewInput(2, rt, []int{0, 1}, sec)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestInputValidate(t *testing.T) {
	rt := []rts.RTTask{rts.NewRTTask("a", 1, 10)}
	if _, err := NewInput(0, rt, []int{0}, nil); err == nil {
		t.Fatal("M=0 must error")
	}
	if _, err := NewInput(2, rt, []int{}, nil); err == nil {
		t.Fatal("partition length mismatch must error")
	}
	if _, err := NewInput(2, rt, []int{5}, nil); err == nil {
		t.Fatal("out-of-range core must error")
	}
	bad := []rts.SecurityTask{{Name: "s", C: -1, TDes: 1, TMax: 2}}
	if _, err := NewInput(2, rt, []int{0}, bad); err == nil {
		t.Fatal("invalid security task must error")
	}
	if _, err := NewInput(2, rt, []int{0}, nil); err != nil {
		t.Fatal("valid input rejected")
	}
}

func TestRTLoads(t *testing.T) {
	in := twoCoreInput(t, 0.2, 0.4, nil)
	loads := in.RTLoads()
	if !near(loads[0].SumU, 0.2, 1e-12) || !near(loads[1].SumU, 0.4, 1e-12) {
		t.Fatalf("loads = %+v", loads)
	}
	if !near(loads[0].SumC, 20, 1e-12) || !near(loads[1].SumC, 40, 1e-12) {
		t.Fatalf("loads C = %+v", loads)
	}
}

func TestSecOrder(t *testing.T) {
	sec := []rts.SecurityTask{
		{Name: "loose", C: 1, TDes: 100, TMax: 3000},
		{Name: "tight", C: 1, TDes: 100, TMax: 1000},
		{Name: "mid", C: 1, TDes: 100, TMax: 2000},
	}
	in := twoCoreInput(t, 0.1, 0.1, sec)
	order := in.secOrder()
	if in.Sec[order[0]].Name != "tight" || in.Sec[order[1]].Name != "mid" || in.Sec[order[2]].Name != "loose" {
		t.Fatalf("order = %v", order)
	}
}

func TestPeriodAdaptationClosedForm(t *testing.T) {
	s := rts.SecurityTask{Name: "s", C: 10, TDes: 100, TMax: 1000}
	// Empty core: Ts = TDes.
	ts, ok := PeriodAdaptation(s, rts.CoreLoad{})
	if !ok || ts != 100 {
		t.Fatalf("empty core: ts=%v ok=%v", ts, ok)
	}
	// Loaded core: (10+50)/(1-0.5) = 120 > TDes.
	ts, ok = PeriodAdaptation(s, rts.CoreLoad{SumC: 50, SumU: 0.5})
	if !ok || !near(ts, 120, 1e-12) {
		t.Fatalf("loaded core: ts=%v ok=%v", ts, ok)
	}
	// Saturated core: infeasible.
	if _, ok := PeriodAdaptation(s, rts.CoreLoad{SumC: 1, SumU: 1}); ok {
		t.Fatal("saturated core must be infeasible")
	}
	// Beyond TMax: infeasible. (10+990)/(1-0) = 1000 fits exactly; 991 doesn't.
	ts, ok = PeriodAdaptation(s, rts.CoreLoad{SumC: 990})
	if !ok || !near(ts, 1000, 1e-12) {
		t.Fatalf("boundary: ts=%v ok=%v", ts, ok)
	}
	if _, ok := PeriodAdaptation(s, rts.CoreLoad{SumC: 991}); ok {
		t.Fatal("just over TMax must be infeasible")
	}
}

// The GP route and the closed form must agree — this is the paper's
// Appendix reformulation cross-check.
func TestPeriodAdaptationGPMatchesClosedForm(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := rts.SecurityTask{
			Name: "s",
			C:    1 + 50*r.Float64(),
			TDes: 100 + 900*r.Float64(),
		}
		s.TMax = s.TDes * (1 + 9*r.Float64())
		load := rts.CoreLoad{SumC: 100 * r.Float64(), SumU: 0.95 * r.Float64()}
		cf, okCF := PeriodAdaptation(s, load)
		gpT, okGP := PeriodAdaptationGP(s, load)
		if okCF != okGP {
			return false
		}
		if !okCF {
			return true
		}
		return near(gpT, cf, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHydraEmptySecuritySet(t *testing.T) {
	in := twoCoreInput(t, 0.5, 0.5, nil)
	r := Hydra(in, HydraOptions{})
	if !r.Schedulable || r.Cumulative != 0 {
		t.Fatalf("empty security set: %+v", r)
	}
}

func TestHydraPicksEmptierCoreForTightness(t *testing.T) {
	sec := []rts.SecurityTask{{Name: "s", C: 10, TDes: 50, TMax: 5000}}
	in := twoCoreInput(t, 0.8, 0.1, sec)
	r := Hydra(in, HydraOptions{})
	if !r.Schedulable {
		t.Fatalf("unschedulable: %s", r.Reason)
	}
	if r.Assignment[0] != 1 {
		t.Fatalf("should choose core 1 (lighter), got %d", r.Assignment[0])
	}
	// Core 1 load: SumC=10, SumU=0.1 -> min period (10+10)/0.9 = 22.2 < TDes.
	if !near(r.Periods[0], 50, 1e-9) {
		t.Fatalf("period = %v, want TDes=50", r.Periods[0])
	}
	if !near(r.Tightness[0], 1, 1e-9) {
		t.Fatalf("tightness = %v, want 1", r.Tightness[0])
	}
	if err := Verify(in, r); err != nil {
		t.Fatal(err)
	}
}

func TestHydraAdaptsPeriodUnderLoad(t *testing.T) {
	// Both cores heavily loaded: period must stretch above TDes.
	sec := []rts.SecurityTask{{Name: "s", C: 10, TDes: 50, TMax: 5000}}
	in := twoCoreInput(t, 0.8, 0.8, sec)
	r := Hydra(in, HydraOptions{})
	if !r.Schedulable {
		t.Fatalf("unschedulable: %s", r.Reason)
	}
	// min period = (10+80)/(0.2) = 450.
	if !near(r.Periods[0], 450, 1e-9) {
		t.Fatalf("period = %v, want 450", r.Periods[0])
	}
	if !near(r.Tightness[0], 50.0/450, 1e-9) {
		t.Fatalf("tightness = %v", r.Tightness[0])
	}
	if err := Verify(in, r); err != nil {
		t.Fatal(err)
	}
}

func TestHydraUnschedulable(t *testing.T) {
	// TMax too small for the achievable period on either core.
	sec := []rts.SecurityTask{{Name: "s", C: 10, TDes: 50, TMax: 100}}
	in := twoCoreInput(t, 0.9, 0.9, sec)
	r := Hydra(in, HydraOptions{})
	if r.Schedulable {
		t.Fatal("expected unschedulable")
	}
	if !strings.Contains(r.Reason, "s") {
		t.Fatalf("reason should name the task: %q", r.Reason)
	}
}

func TestHydraPriorityOrderCommits(t *testing.T) {
	// Two security tasks; the tighter-TMax one must be placed first and thus
	// get the better (lower) period on the shared best core.
	sec := []rts.SecurityTask{
		{Name: "low", C: 20, TDes: 100, TMax: 10000},
		{Name: "high", C: 20, TDes: 100, TMax: 1000},
	}
	in := twoCoreInput(t, 0.7, 0.7, sec)
	r := Hydra(in, HydraOptions{})
	if !r.Schedulable {
		t.Fatalf("unschedulable: %s", r.Reason)
	}
	if err := Verify(in, r); err != nil {
		t.Fatal(err)
	}
	// high priority processed first: its period reflects only RT load.
	// min period high = (20+70)/(1-0.7) = 300.
	if !near(r.Periods[1], 300, 1e-9) {
		t.Fatalf("high-priority period = %v, want 300", r.Periods[1])
	}
	// low priority lands on the other core (same load): also 300 here.
	if r.Assignment[0] == r.Assignment[1] {
		t.Fatalf("best-tightness should spread equal tasks, got same core %d", r.Assignment[0])
	}
}

func TestHydraGPVariantAgrees(t *testing.T) {
	sec := []rts.SecurityTask{
		{Name: "a", C: 10, TDes: 100, TMax: 2000},
		{Name: "b", C: 15, TDes: 150, TMax: 3000},
		{Name: "c", C: 20, TDes: 200, TMax: 4000},
	}
	in := twoCoreInput(t, 0.6, 0.5, sec)
	cf := Hydra(in, HydraOptions{})
	gpR := Hydra(in, HydraOptions{UseGP: true})
	if cf.Schedulable != gpR.Schedulable {
		t.Fatalf("feasibility mismatch: cf=%v gp=%v", cf.Schedulable, gpR.Schedulable)
	}
	for i := range cf.Periods {
		if !near(cf.Periods[i], gpR.Periods[i], 1e-4) {
			t.Fatalf("period %d: cf=%v gp=%v", i, cf.Periods[i], gpR.Periods[i])
		}
		if cf.Assignment[i] != gpR.Assignment[i] {
			t.Fatalf("assignment %d: cf=%v gp=%v", i, cf.Assignment[i], gpR.Assignment[i])
		}
	}
}

func TestHydraPolicies(t *testing.T) {
	sec := []rts.SecurityTask{{Name: "s", C: 10, TDes: 50, TMax: 5000}}
	in := twoCoreInput(t, 0.8, 0.1, sec)
	ff := Hydra(in, HydraOptions{Policy: FirstFeasible})
	if !ff.Schedulable || ff.Assignment[0] != 0 {
		t.Fatalf("first-feasible should pick core 0: %+v", ff)
	}
	ll := Hydra(in, HydraOptions{Policy: LeastLoaded})
	if !ll.Schedulable || ll.Assignment[0] != 1 {
		t.Fatalf("least-loaded should pick core 1: %+v", ll)
	}
	bad := Hydra(in, HydraOptions{Policy: Policy(77)})
	if bad.Schedulable {
		t.Fatal("unknown policy must fail")
	}
	for p, want := range map[Policy]string{
		BestTightness: "best-tightness", FirstFeasible: "first-feasible",
		LeastLoaded: "least-loaded", Policy(9): "policy(9)",
	} {
		if p.String() != want {
			t.Errorf("Policy(%d) = %q want %q", int(p), p.String(), want)
		}
	}
}

func TestSingleCoreBasic(t *testing.T) {
	rt := []rts.RTTask{
		rts.NewRTTask("rt0", 30, 100),
		rts.NewRTTask("rt1", 30, 100),
	}
	sec := []rts.SecurityTask{
		{Name: "s0", C: 10, TDes: 100, TMax: 1000},
		{Name: "s1", C: 10, TDes: 100, TMax: 2000},
	}
	r := SingleCore(2, rt, sec, partition.BestFit)
	if !r.Schedulable {
		t.Fatalf("unschedulable: %s", r.Reason)
	}
	for i := range sec {
		if r.Assignment[i] != 1 {
			t.Fatalf("security task %d not on dedicated core: %d", i, r.Assignment[i])
		}
	}
	// Priority order: s0 (TMax 1000) first: period = TDes = 100.
	// s1 next: load SumC=10 SumU=0.1 -> min = (10+10)/0.9 = 22.2 -> TDes=100.
	if !near(r.Periods[0], 100, 1e-9) || !near(r.Periods[1], 100, 1e-9) {
		t.Fatalf("periods = %v", r.Periods)
	}
}

func TestSingleCoreNeedsTwoCores(t *testing.T) {
	r := SingleCore(1, nil, nil, partition.BestFit)
	if r.Schedulable {
		t.Fatal("M=1 must be unschedulable for SingleCore")
	}
}

func TestSingleCoreRTOverflow(t *testing.T) {
	// RT tasks need 2 cores; with M=2 SingleCore leaves only 1 for them.
	rt := []rts.RTTask{
		rts.NewRTTask("rt0", 70, 100),
		rts.NewRTTask("rt1", 70, 100),
	}
	r := SingleCore(2, rt, nil, partition.BestFit)
	if r.Schedulable {
		t.Fatal("RT overflow must be unschedulable")
	}
	if !strings.Contains(r.Reason, "fit") {
		t.Fatalf("reason: %q", r.Reason)
	}
}

func TestSingleCoreSecOverflow(t *testing.T) {
	// Security tasks saturate the dedicated core.
	sec := []rts.SecurityTask{
		{Name: "s0", C: 90, TDes: 100, TMax: 110},
		{Name: "s1", C: 90, TDes: 100, TMax: 110},
	}
	rt := []rts.RTTask{rts.NewRTTask("rt0", 10, 100)}
	r := SingleCore(2, rt, sec, partition.BestFit)
	if r.Schedulable {
		t.Fatal("security overload must be unschedulable")
	}
}

func TestSingleCoreInput(t *testing.T) {
	rt := []rts.RTTask{rts.NewRTTask("rt0", 30, 100)}
	sec := []rts.SecurityTask{{Name: "s", C: 10, TDes: 100, TMax: 1000}}
	in, err := NewInput(2, rt, []int{0}, sec)
	if err != nil {
		t.Fatal(err)
	}
	r := SingleCoreInput(in)
	if !r.Schedulable || r.Assignment[0] != 1 {
		t.Fatalf("result: %+v (%s)", r, r.Reason)
	}
	// RT task on the dedicated core must be rejected.
	in2, _ := NewInput(2, rt, []int{1}, sec)
	if r2 := SingleCoreInput(in2); r2.Schedulable {
		t.Fatal("RT on security core must fail")
	}
	in3, _ := NewInput(1, rt, []int{0}, sec)
	if r3 := SingleCoreInput(in3); r3.Schedulable {
		t.Fatal("M=1 must fail")
	}
}

func TestOptimalSmall(t *testing.T) {
	sec := []rts.SecurityTask{
		{Name: "a", C: 10, TDes: 100, TMax: 2000},
		{Name: "b", C: 15, TDes: 150, TMax: 3000},
	}
	in := twoCoreInput(t, 0.5, 0.5, sec)
	r := Optimal(in, OptimalOptions{})
	if !r.Schedulable {
		t.Fatalf("unschedulable: %s", r.Reason)
	}
	if err := Verify(in, r); err != nil {
		t.Fatal(err)
	}
	// Equal cores: optimal spreads the two tasks, each at min feasible period.
	if r.Assignment[0] == r.Assignment[1] {
		t.Fatalf("optimal should spread tasks, got %v", r.Assignment)
	}
}

func TestOptimalAtLeastAsGoodAsHydra(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		w, err := taskgen.Generate(taskgen.Params{
			M: 2, NR: 4, NS: 2 + rng.Intn(4),
			TotalUtil:   0.4 + 1.2*rng.Float64(),
			RTPeriodMin: 10, RTPeriodMax: 1000,
			SecTDesMin: 1000, SecTDesMax: 3000,
			TMaxFactor: 10, SecUtilFraction: 0.3, MinTaskUtil: 0.001,
		}, rng)
		if err != nil {
			continue
		}
		part, err := partition.PartitionRT(w.RT, 2, partition.BestFit)
		if err != nil {
			continue
		}
		in, err := NewInput(2, w.RT, part.CoreOf, w.Sec)
		if err != nil {
			t.Fatal(err)
		}
		h := Hydra(in, HydraOptions{})
		o := Optimal(in, OptimalOptions{RefineJointGP: true})
		if h.Schedulable && !o.Schedulable {
			t.Fatalf("trial %d: HYDRA schedulable but OPT not", trial)
		}
		if h.Schedulable && o.Schedulable {
			if o.Cumulative < h.Cumulative*(1-1e-6) {
				t.Fatalf("trial %d: OPT %v < HYDRA %v", trial, o.Cumulative, h.Cumulative)
			}
			if err := Verify(in, o); err != nil {
				t.Fatalf("trial %d: OPT invalid: %v", trial, err)
			}
			if err := Verify(in, h); err != nil {
				t.Fatalf("trial %d: HYDRA invalid: %v", trial, err)
			}
		}
	}
}

func TestOptimalAssignmentCap(t *testing.T) {
	sec := make([]rts.SecurityTask, 8)
	for i := range sec {
		sec[i] = rts.SecurityTask{Name: "s", C: 1, TDes: 100, TMax: 1000}
	}
	in := twoCoreInput(t, 0.1, 0.1, sec)
	r := Optimal(in, OptimalOptions{MaxAssignments: 10})
	if r.Schedulable {
		t.Fatal("cap exceeded must refuse, not truncate")
	}
	if !strings.Contains(r.Reason, "cap") {
		t.Fatalf("reason: %q", r.Reason)
	}
}

func TestOptimalEmpty(t *testing.T) {
	in := twoCoreInput(t, 0.3, 0.3, nil)
	r := Optimal(in, OptimalOptions{})
	if !r.Schedulable || r.Cumulative != 0 {
		t.Fatalf("empty: %+v", r)
	}
}

func TestOptimalInfeasible(t *testing.T) {
	sec := []rts.SecurityTask{{Name: "s", C: 10, TDes: 50, TMax: 100}}
	in := twoCoreInput(t, 0.9, 0.9, sec)
	r := Optimal(in, OptimalOptions{})
	if r.Schedulable {
		t.Fatal("expected infeasible")
	}
}

func TestTightnessGap(t *testing.T) {
	opt := &Result{Schedulable: true, Cumulative: 10}
	hyd := &Result{Schedulable: true, Cumulative: 8}
	gap, ok := TightnessGap(opt, hyd)
	if !ok || !near(gap, 20, 1e-12) {
		t.Fatalf("gap = %v ok=%v", gap, ok)
	}
	// HYDRA better than OPT (possible with greedy-period OPT): clamp to 0.
	gap, ok = TightnessGap(&Result{Schedulable: true, Cumulative: 8}, &Result{Schedulable: true, Cumulative: 9})
	if !ok || gap != 0 {
		t.Fatalf("clamped gap = %v ok=%v", gap, ok)
	}
	if _, ok := TightnessGap(nil, hyd); ok {
		t.Fatal("nil opt must be not-ok")
	}
	if _, ok := TightnessGap(&Result{Schedulable: false}, hyd); ok {
		t.Fatal("unschedulable opt must be not-ok")
	}
	if _, ok := TightnessGap(&Result{Schedulable: true, Cumulative: 0}, hyd); ok {
		t.Fatal("zero cumulative must be not-ok")
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	sec := []rts.SecurityTask{{Name: "s", C: 10, TDes: 50, TMax: 5000}}
	in := twoCoreInput(t, 0.8, 0.1, sec)
	r := Hydra(in, HydraOptions{})
	if err := Verify(in, r); err != nil {
		t.Fatal(err)
	}
	// Tamper: period below TDes.
	bad := *r
	bad.Periods = []rts.Time{10}
	if err := Verify(in, &bad); err == nil {
		t.Fatal("period below TDes must fail verification")
	}
	// Tamper: move to the loaded core with an unschedulable period.
	bad2 := *r
	bad2.Assignment = []int{0}
	bad2.Periods = []rts.Time{50}
	if err := Verify(in, &bad2); err == nil {
		t.Fatal("Eq.6 violation must fail verification")
	}
	// Tamper: invalid core index.
	bad3 := *r
	bad3.Assignment = []int{7}
	if err := Verify(in, &bad3); err == nil {
		t.Fatal("invalid core must fail verification")
	}
	// Unschedulable result cannot be verified.
	if err := Verify(in, newInfeasible("x", "y")); err == nil {
		t.Fatal("unschedulable result must fail verification")
	}
	// Length mismatch.
	bad4 := *r
	bad4.Assignment = []int{}
	bad4.Periods = []rts.Time{}
	if err := Verify(in, &bad4); err == nil {
		t.Fatal("length mismatch must fail verification")
	}
}

// Property: on random workloads, every schedulable result from every scheme
// passes Verify, and whenever SingleCore is schedulable HYDRA is too (HYDRA
// dominates: it can always emulate the dedicated-core layout when the RT
// partition leaves a core free — here we check the weaker, always-true
// property that HYDRA results are valid and its cumulative tightness is
// finite and within bounds).
func TestSchemesSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(3)
		w, err := taskgen.Generate(taskgen.DefaultParams(m, float64(m)*(0.1+0.6*rng.Float64())), rng)
		if err != nil {
			return true
		}
		part, err := partition.PartitionRT(w.RT, m, partition.BestFit)
		if err != nil {
			return true
		}
		in, err := NewInput(m, w.RT, part.CoreOf, w.Sec)
		if err != nil {
			return false
		}
		r := Hydra(in, HydraOptions{})
		if !r.Schedulable {
			return true
		}
		if Verify(in, r) != nil {
			return false
		}
		// Tightness bounds: TDes/TMax <= eta <= 1.
		for i, s := range in.Sec {
			eta := r.Tightness[i]
			if eta < s.TDes/s.TMax-1e-9 || eta > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Regression for the LeastLoaded tie-break floor: bestScore starts at
// math.Inf(-1), not a finite sentinel like -1.0, because the least-loaded
// score 1 - SumU is only bounded below by the analysis that decides
// feasibility — with a finite floor, a feasible core scoring at or below it
// could never be selected even when it is the only feasible one. The paper's
// closed-form adaptation keeps feasible cores under SumU < 1, so this pins
// the nearest observable behavior: the sole feasible core is selected however
// small its score, and every policy agrees on sole-feasible instances.
func TestLeastLoadedSelectsSoleFeasibleCore(t *testing.T) {
	// Core 0 is nearly saturated by real-time work (U = 0.98): no adapted
	// period can absorb the security task there. Core 1 is heavily loaded
	// too (U = 0.9, score 1-SumU barely above zero after commitment) but
	// feasible.
	// TMax = 2000 rules core 0 out (its min feasible period is (2+98)/0.02 =
	// 5000) while core 1 stays feasible ((2+90)/0.1 = 920).
	sec := []rts.SecurityTask{
		{Name: "s1", C: 2, TDes: 100, TMax: 2000},
		{Name: "s2", C: 2, TDes: 120, TMax: 2000},
	}
	in := twoCoreInput(t, 0.98, 0.9, sec)
	for _, p := range []Policy{BestTightness, FirstFeasible, LeastLoaded} {
		r := Hydra(in, HydraOptions{Policy: p})
		if !r.Schedulable {
			t.Fatalf("policy %v: sole-feasible-core workload rejected: %s", p, r.Reason)
		}
		for i, c := range r.Assignment {
			if c != 1 {
				t.Fatalf("policy %v: task %d on core %d, want the sole feasible core 1", p, i, c)
			}
		}
	}
	ext := HydraExt(in, ExtOptions{HydraOptions: HydraOptions{Policy: LeastLoaded}})
	if !ext.Schedulable || ext.Assignment[0] != 1 || ext.Assignment[1] != 1 {
		t.Fatalf("hydra-ext least-loaded: %+v", ext)
	}
}
