package core

import (
	"math"

	"hydra/internal/gp"
	"hydra/internal/rts"
)

// PeriodAdaptation solves Eq. (7) for one security task on one candidate
// core: maximize eta = TDes/Ts subject to TDes <= Ts <= TMax and the Eq. (6)
// schedulability constraint Cs + I(Ts) <= Ts, where the interfering load
// (real-time tasks plus committed higher-priority security tasks) is
// summarized by the Eq. (5) aggregates in load.
//
// With the linear interference bound, the smallest schedulable period is
// (Cs + SumC)/(1 - SumU), so the optimum has the closed form
//
//	Ts* = max(TDes, (Cs + SumC)/(1 - SumU)),
//
// feasible iff SumU < 1 and Ts* <= TMax.
func PeriodAdaptation(s rts.SecurityTask, load rts.CoreLoad) (rts.Time, bool) {
	minT := load.MinFeasiblePeriod(s.C)
	ts := math.Max(s.TDes, minT)
	if ts > s.TMax || math.IsInf(ts, 1) {
		return 0, false
	}
	return ts, true
}

// PeriodAdaptationGP solves the same problem with the geometric-programming
// route of the paper's Appendix: minimize Ts subject to the posynomial
// constraint (Cs + SumC)*Ts^-1 + SumU <= 1 and the period bounds. It exists
// to mirror the authors' GPkit/CVXOPT pipeline and to cross-validate the
// closed form; both must agree to solver tolerance.
func PeriodAdaptationGP(s rts.SecurityTask, load rts.CoreLoad) (rts.Time, bool) {
	m := gp.NewModel()
	ts := m.AddBoundedVar("Ts", s.TDes, s.TMax)
	m.Minimize(gp.Posy(gp.X(ts)))
	lhs := gp.Posy(gp.Mon(s.C+load.SumC).MulVar(ts, -1))
	if load.SumU > 0 {
		lhs = lhs.AddMon(gp.Mon(load.SumU))
	}
	m.AddConstraint(lhs, "eq6")
	sol, err := m.Solve(nil)
	if err != nil || sol.Status != gp.StatusOptimal {
		return 0, false
	}
	return sol.X[ts.Index()], true
}

// coreTask is a security task pinned to one core, in priority order, used by
// the joint per-core period optimizer.
type coreTask struct {
	task rts.SecurityTask
	idx  int // index into Input.Sec
}

// greedyCorePeriods assigns each task on a core its minimum feasible period
// in priority order (the same rule HYDRA applies incrementally). It returns
// the periods aligned with tasks and reports feasibility.
func greedyCorePeriods(tasks []coreTask, rtLoad rts.CoreLoad) ([]rts.Time, bool) {
	periods := make([]rts.Time, len(tasks))
	load := rtLoad
	for i, ct := range tasks {
		ts, ok := PeriodAdaptation(ct.task, load)
		if !ok {
			return nil, false
		}
		periods[i] = ts
		load.AddPeriodic(ct.task.C, ts)
	}
	return periods, true
}

// jointCorePeriods maximizes the weighted cumulative tightness
// sum_s w_s*TDes_s/Ts over all tasks on one core simultaneously — the
// signomial program behind the paper's "optimal" baseline. Constraint for
// the k-th task (priority order):
//
//	(C_k + SumC_RT + sum_{h<k} C_h) * T_k^-1 + SumU_RT + sum_{h<k} C_h*T_h^-1 <= 1.
//
// It is seeded by the greedy solution and never returns a worse objective;
// the greedy periods are returned when the GP refinement cannot improve.
func jointCorePeriods(tasks []coreTask, rtLoad rts.CoreLoad) ([]rts.Time, bool) {
	greedy, ok := greedyCorePeriods(tasks, rtLoad)
	if !ok {
		return nil, false
	}
	if len(tasks) <= 1 {
		return greedy, true // single variable: greedy is exactly optimal
	}

	m := gp.NewModel()
	vars := make([]gp.Var, len(tasks))
	for i, ct := range tasks {
		vars[i] = m.AddBoundedVar(ct.task.Name, ct.task.TDes, ct.task.TMax)
	}
	var sumCHigh rts.Time
	for k, ct := range tasks {
		lhs := gp.Posy(gp.Mon(ct.task.C+rtLoad.SumC+sumCHigh).MulVar(vars[k], -1))
		if rtLoad.SumU > 0 {
			lhs = lhs.AddMon(gp.Mon(rtLoad.SumU))
		}
		for h := 0; h < k; h++ {
			lhs = lhs.AddMon(gp.Mon(tasks[h].task.C).MulVar(vars[h], -1))
		}
		m.AddConstraint(lhs, "eq6:"+ct.task.Name)
		sumCHigh += ct.task.C
	}
	obj := gp.Posynomial{}
	for k, ct := range tasks {
		obj = obj.AddMon(gp.Mon(ct.task.EffectiveWeight()*ct.task.TDes).MulVar(vars[k], -1))
	}
	sol, err := m.MaximizePosynomial(obj, nil)
	if err != nil || sol.Status != gp.StatusOptimal {
		return greedy, true
	}

	refined := make([]rts.Time, len(tasks))
	for k := range tasks {
		refined[k] = sol.X[vars[k].Index()]
	}
	if cumTightness(tasks, refined) > cumTightness(tasks, greedy) && periodsFeasible(tasks, refined, rtLoad) {
		return refined, true
	}
	return greedy, true
}

// cumTightness evaluates sum w*TDes/T for tasks on one core.
func cumTightness(tasks []coreTask, periods []rts.Time) float64 {
	var s float64
	for k, ct := range tasks {
		s += ct.task.EffectiveWeight() * ct.task.Tightness(periods[k])
	}
	return s
}

// periodsFeasible re-checks Eq. (6) exactly for a candidate period vector.
func periodsFeasible(tasks []coreTask, periods []rts.Time, rtLoad rts.CoreLoad) bool {
	load := rtLoad
	for k, ct := range tasks {
		ts := periods[k]
		if ts < ct.task.TDes*(1-1e-9) || ts > ct.task.TMax*(1+1e-9) {
			return false
		}
		if ct.task.C+load.LinearInterference(ts) > ts*(1+1e-9) {
			return false
		}
		load.AddPeriodic(ct.task.C, ts)
	}
	return true
}
