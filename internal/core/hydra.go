package core

import (
	"fmt"
	"math"

	"hydra/internal/rts"
)

// Policy selects the core-commitment rule HYDRA applies per security task.
// The paper's Algorithm 1 uses BestTightness; the others exist for the
// design-space ablations in the evaluation harness.
type Policy int

const (
	// BestTightness commits to the feasible core with maximum achievable
	// tightness (Algorithm 1, line 11). Ties break to the lowest core index.
	BestTightness Policy = iota
	// FirstFeasible commits to the lowest-indexed feasible core.
	FirstFeasible
	// LeastLoaded commits to the feasible core with the smallest current
	// total utilization (real-time plus committed security).
	LeastLoaded
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case BestTightness:
		return "best-tightness"
	case FirstFeasible:
		return "first-feasible"
	case LeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// HydraOptions tunes the HYDRA allocator. The zero value reproduces the
// paper's Algorithm 1 exactly.
type HydraOptions struct {
	Policy Policy
	// UseGP solves each per-core period-adaptation subproblem with the
	// geometric-programming solver (the paper's implementation route)
	// instead of the equivalent closed form. Results agree to solver
	// tolerance; the flag exists for fidelity checks and ablations.
	UseGP bool
}

// Hydra runs Algorithm 1: process security tasks from highest to lowest
// priority; for each, solve the period-adaptation problem of Eq. (7) on
// every core, and commit the task (with its adapted period) to the core
// chosen by the policy. It returns an unschedulable Result when some task
// has no feasible core (line 9).
func Hydra(in *Input, opt HydraOptions) *Result {
	if err := in.Validate(); err != nil {
		return newInfeasible("hydra", err.Error())
	}
	sc := acquireScratch()
	defer releaseScratch(sc)
	sc.loads = in.copyRTLoads(sc.loads)
	loads := sc.loads // mutated as security tasks are committed
	assign := make([]int, len(in.Sec))
	periods := make([]rts.Time, len(in.Sec))

	adapt := PeriodAdaptation
	if opt.UseGP {
		adapt = PeriodAdaptationGP
	}

	for _, i := range in.secOrder() {
		s := in.Sec[i]
		bestCore := -1
		var bestPeriod rts.Time
		// Start below any achievable score: LeastLoaded scores 1 - SumU,
		// which can go negative on a loaded core, and a stale finite floor
		// would make such a core unselectable even when it is the only
		// feasible one.
		bestScore := math.Inf(-1)
		for c := 0; c < in.M; c++ {
			ts, ok := adapt(s, loads[c])
			if !ok {
				continue
			}
			var score float64
			switch opt.Policy {
			case BestTightness:
				score = s.Tightness(ts)
			case FirstFeasible:
				score = float64(in.M - c) // first feasible wins
			case LeastLoaded:
				score = 1 - loads[c].SumU // emptier core wins
			default:
				return newInfeasible("hydra", fmt.Sprintf("unknown policy %v", opt.Policy))
			}
			if score > bestScore {
				bestScore, bestCore, bestPeriod = score, c, ts
			}
			if opt.Policy == FirstFeasible {
				break
			}
		}
		if bestCore < 0 {
			return newInfeasible("hydra",
				fmt.Sprintf("no feasible core for security task %q (C=%g, TDes=%g, TMax=%g)", s.Name, s.C, s.TDes, s.TMax))
		}
		assign[i] = bestCore
		periods[i] = bestPeriod
		loads[bestCore].AddPeriodic(s.C, bestPeriod)
	}
	return finalize(in, "hydra", assign, periods)
}
