package core

import (
	"testing"

	"hydra/internal/rts"
)

func TestHydraExtMatchesHydraWithoutExtensions(t *testing.T) {
	sec := []rts.SecurityTask{
		{Name: "a", C: 10, TDes: 100, TMax: 2000},
		{Name: "b", C: 15, TDes: 150, TMax: 3000},
		{Name: "c", C: 20, TDes: 200, TMax: 4000},
	}
	in := twoCoreInput(t, 0.6, 0.5, sec)
	plain := Hydra(in, HydraOptions{})
	ext := HydraExt(in, ExtOptions{})
	if plain.Schedulable != ext.Schedulable {
		t.Fatalf("feasibility mismatch")
	}
	for i := range sec {
		if plain.Assignment[i] != ext.Assignment[i] || plain.Periods[i] != ext.Periods[i] {
			t.Fatalf("task %d: plain (%d, %v) vs ext (%d, %v)", i,
				plain.Assignment[i], plain.Periods[i], ext.Assignment[i], ext.Periods[i])
		}
	}
}

func TestHydraExtNonPreemptiveBlocking(t *testing.T) {
	// Two tasks; the higher-priority one must absorb the lower one's WCET as
	// blocking, stretching its minimum feasible period.
	sec := []rts.SecurityTask{
		{Name: "high", C: 10, TDes: 50, TMax: 5000}, // TMax smaller: higher prio
		{Name: "low", C: 40, TDes: 100, TMax: 9000},
	}
	in := twoCoreInput(t, 0.8, 0.8, sec)
	plain := Hydra(in, HydraOptions{})
	np := HydraExt(in, ExtOptions{NonPreemptiveSecurity: true})
	if !plain.Schedulable || !np.Schedulable {
		t.Fatalf("both must be schedulable: %v %v", plain.Reason, np.Reason)
	}
	// high's min period plain: (10+80)/0.2 = 450.
	// With blocking B = C_low = 40: (10+40+80)/0.2 = 650.
	if !near(plain.Periods[0], 450, 1e-9) {
		t.Fatalf("plain high period = %v", plain.Periods[0])
	}
	if !near(np.Periods[0], 650, 1e-9) {
		t.Fatalf("non-preemptive high period = %v, want 650", np.Periods[0])
	}
	// The lowest-priority task suffers no blocking.
	if np.Periods[1] < plain.Periods[1] {
		t.Fatalf("low-priority period should not shrink: %v vs %v", np.Periods[1], plain.Periods[1])
	}
}

func TestHydraExtChainSameCoreAndPeriodOrder(t *testing.T) {
	sec := []rts.SecurityTask{
		{Name: "self-check", C: 10, TDes: 100, TMax: 1000},
		{Name: "bin-check", C: 10, TDes: 50, TMax: 5000}, // wants to run faster than its predecessor
	}
	in := twoCoreInput(t, 0.5, 0.1, sec)
	res := HydraExt(in, ExtOptions{Chains: [][]int{{0, 1}}})
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	if res.Assignment[0] != res.Assignment[1] {
		t.Fatalf("chain must share a core: %v", res.Assignment)
	}
	if res.Periods[1] < res.Periods[0]-1e-9 {
		t.Fatalf("successor period %v < predecessor %v", res.Periods[1], res.Periods[0])
	}
}

func TestHydraExtChainInfeasiblePeriodInheritance(t *testing.T) {
	// Successor's TMax is below any period the predecessor can achieve.
	sec := []rts.SecurityTask{
		{Name: "pred", C: 10, TDes: 1000, TMax: 10000},
		{Name: "succ", C: 5, TDes: 50, TMax: 500}, // TMax 500 < pred period 1000
	}
	in := twoCoreInput(t, 0.1, 0.1, sec)
	res := HydraExt(in, ExtOptions{Chains: [][]int{{0, 1}}})
	if res.Schedulable {
		t.Fatal("chain period inheritance should make this infeasible")
	}
}

func TestHydraExtChainValidation(t *testing.T) {
	sec := []rts.SecurityTask{
		{Name: "a", C: 10, TDes: 100, TMax: 1000},
		{Name: "b", C: 10, TDes: 100, TMax: 2000},
	}
	in := twoCoreInput(t, 0.1, 0.1, sec)
	if r := HydraExt(in, ExtOptions{Chains: [][]int{{0, 5}}}); r.Schedulable {
		t.Fatal("out-of-range chain index must fail")
	}
	if r := HydraExt(in, ExtOptions{Chains: [][]int{{0, 0}}}); r.Schedulable {
		t.Fatal("self-precedence must fail")
	}
	// Tree-shaped precedence (shared predecessor) is allowed.
	if r := HydraExt(in, ExtOptions{Chains: [][]int{{0, 1}, {0, 1}}}); !r.Schedulable {
		t.Fatalf("duplicate consistent chain must be accepted: %s", r.Reason)
	}
	// Two *different* predecessors for one task are rejected.
	sec3 := append(append([]rts.SecurityTask(nil), sec...),
		rts.SecurityTask{Name: "c", C: 10, TDes: 100, TMax: 3000})
	in3 := twoCoreInput(t, 0.1, 0.1, sec3)
	if r := HydraExt(in3, ExtOptions{Chains: [][]int{{0, 2}, {1, 2}}}); r.Schedulable {
		t.Fatal("two different predecessors must fail")
	}
}

func TestHydraExtOrderRespectsChains(t *testing.T) {
	// Chain successor has *smaller* TMax (would normally be processed first);
	// the topological adjustment must still put the predecessor first.
	sec := []rts.SecurityTask{
		{Name: "pred", C: 10, TDes: 100, TMax: 5000},
		{Name: "succ", C: 10, TDes: 100, TMax: 1000},
	}
	in := twoCoreInput(t, 0.1, 0.1, sec)
	sc := acquireScratch()
	defer releaseScratch(sc)
	order, chainPred, err := extOrder(in, [][]int{{0, 1}}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 0 || order[1] != 1 {
		t.Fatalf("order = %v, want [0 1]", order)
	}
	if chainPred[1] != 0 || chainPred[0] != -1 {
		t.Fatalf("chainPred = %v", chainPred)
	}
	res := HydraExt(in, ExtOptions{Chains: [][]int{{0, 1}}})
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
}

func TestHydraExtPolicies(t *testing.T) {
	sec := []rts.SecurityTask{{Name: "s", C: 10, TDes: 50, TMax: 5000}}
	in := twoCoreInput(t, 0.8, 0.1, sec)
	ll := HydraExt(in, ExtOptions{HydraOptions: HydraOptions{Policy: LeastLoaded}})
	if !ll.Schedulable || ll.Assignment[0] != 1 {
		t.Fatalf("least-loaded ext: %+v", ll)
	}
	bad := HydraExt(in, ExtOptions{HydraOptions: HydraOptions{Policy: Policy(99)}})
	if bad.Schedulable {
		t.Fatal("unknown policy must fail")
	}
}

func TestHydraExtInvalidInput(t *testing.T) {
	in := &Input{M: 0}
	if r := HydraExt(in, ExtOptions{}); r.Schedulable {
		t.Fatal("invalid input must fail")
	}
}
