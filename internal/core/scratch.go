package core

import (
	"sync"

	"hydra/internal/rts"
)

// allocScratch is the pooled working memory of the allocation and
// verification hot paths: the mutable per-core load vectors the schemes
// commit security tasks into. Pooling keeps the steady-state serving and
// sweep paths free of per-call slice churn; result slices (assignments,
// periods, tightness) still allocate, since they escape into the Result.
type allocScratch struct {
	loads     []rts.CoreLoad
	committed []rts.CoreLoad

	// HydraExt's per-call precedence machinery: the chain-adjusted processing
	// order, each task's direct predecessor, the topological-sort visit
	// marks, and the non-preemptive blocking terms. Online reallocation makes
	// the -np/chain schemes hot, so these ride the pool too.
	order     []int
	chainPred []int
	placed    []bool
	blocking  []rts.Time
}

// filled returns buf resized to n with every element set to v — the
// grow-and-reset step every pooled scratch buffer needs before reuse.
func filled[T any](buf []T, n int, v T) []T {
	if cap(buf) < n {
		buf = make([]T, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = v
	}
	return buf
}

var scratchPool = sync.Pool{New: func() any { return new(allocScratch) }}

func acquireScratch() *allocScratch  { return scratchPool.Get().(*allocScratch) }
func releaseScratch(s *allocScratch) { scratchPool.Put(s) }

// zeroLoads returns a zeroed m-length CoreLoad slice backed by buf when it
// is large enough.
func zeroLoads(buf []rts.CoreLoad, m int) []rts.CoreLoad {
	if cap(buf) < m {
		buf = make([]rts.CoreLoad, m)
	}
	buf = buf[:m]
	for i := range buf {
		buf[i] = rts.CoreLoad{}
	}
	return buf
}
