package core

import (
	"sync"

	"hydra/internal/rts"
)

// allocScratch is the pooled working memory of the allocation and
// verification hot paths: the mutable per-core load vectors the schemes
// commit security tasks into. Pooling keeps the steady-state serving and
// sweep paths free of per-call slice churn; result slices (assignments,
// periods, tightness) still allocate, since they escape into the Result.
type allocScratch struct {
	loads     []rts.CoreLoad
	committed []rts.CoreLoad
}

var scratchPool = sync.Pool{New: func() any { return new(allocScratch) }}

func acquireScratch() *allocScratch  { return scratchPool.Get().(*allocScratch) }
func releaseScratch(s *allocScratch) { scratchPool.Put(s) }

// zeroLoads returns a zeroed m-length CoreLoad slice backed by buf when it
// is large enough.
func zeroLoads(buf []rts.CoreLoad, m int) []rts.CoreLoad {
	if cap(buf) < m {
		buf = make([]rts.CoreLoad, m)
	}
	buf = buf[:m]
	for i := range buf {
		buf[i] = rts.CoreLoad{}
	}
	return buf
}
