package core

import (
	"fmt"

	"hydra/internal/partition"
	"hydra/internal/rts"
)

// PartitionBaseline allocates security tasks with a classic bin-packing
// heuristic at their *desired* periods — no period adaptation at all. It is
// the "treat security tasks like real-time tasks" strawman the paper argues
// against: every admitted task runs at maximum tightness (eta = 1), but the
// scheme rejects any workload whose security tasks do not fit at their
// densest configuration, where HYDRA would have relaxed periods to fit.
//
// Tasks are processed in the paper's priority order (ascending TMax); a core
// admits a task iff the Eq. (6) test holds at ts = TDes. Among admitting
// cores the heuristic picks: first-fit the lowest index, best-fit the highest
// current load, worst-fit the lowest current load, next-fit a cyclic cursor.
func PartitionBaseline(in *Input, h partition.Heuristic) *Result {
	scheme := "partition-" + h.String()
	if err := in.Validate(); err != nil {
		return newInfeasible(scheme, err.Error())
	}
	sc := acquireScratch()
	defer releaseScratch(sc)
	sc.loads = in.copyRTLoads(sc.loads)
	loads := sc.loads
	assign := make([]int, len(in.Sec))
	periods := make([]rts.Time, len(in.Sec))
	next := 0 // next-fit cursor
	for _, i := range in.secOrder() {
		s := in.Sec[i]
		chosen, err := partition.ChooseCore(h, in.M,
			func(c int) bool { return s.C+loads[c].LinearInterference(s.TDes) <= s.TDes },
			func(c int) float64 { return loads[c].SumU },
			&next)
		if err != nil {
			return newInfeasible(scheme, err.Error())
		}
		if chosen < 0 {
			return newInfeasible(scheme,
				fmt.Sprintf("no core admits security task %q at its desired period %g", s.Name, s.TDes))
		}
		assign[i] = chosen
		periods[i] = s.TDes
		loads[chosen].AddPeriodic(s.C, s.TDes)
	}
	return finalize(in, scheme, assign, periods)
}
