package core

import (
	"fmt"
	"io"
	"sort"

	"hydra/internal/rts"
)

// CandidateEval records the outcome of the period-adaptation subproblem for
// one (task, core) pair during an explained HYDRA run.
type CandidateEval struct {
	Core      int
	Feasible  bool
	Period    rts.Time // adapted period when feasible
	Tightness float64  // TDes/Period when feasible
	MinPeriod rts.Time // (C + SumC)/(1 - SumU) before clamping; +Inf if saturated
	CoreUtil  float64  // committed utilization on the core before this task
}

// Decision is one step of Algorithm 1 with its full candidate table.
type Decision struct {
	TaskIndex  int // index into Input.Sec
	TaskName   string
	Rank       int // position in the priority order (0 = highest)
	Candidates []CandidateEval
	Chosen     int // chosen core, -1 when infeasible everywhere
}

// Explanation is the complete decision trace of a HYDRA run.
type Explanation struct {
	Decisions []Decision
	Result    *Result
}

// ExplainHydra runs Algorithm 1 with the paper's best-tightness policy while
// recording every per-core evaluation, so a designer can see *why* each task
// landed where it did — and, for an unschedulable verdict, which core came
// closest (the actionable hint the paper promises in Sec. III-B).
func ExplainHydra(in *Input) *Explanation {
	ex := &Explanation{}
	if err := in.Validate(); err != nil {
		ex.Result = newInfeasible("hydra", err.Error())
		return ex
	}
	loads := in.RTLoads()
	assign := make([]int, len(in.Sec))
	periods := make([]rts.Time, len(in.Sec))

	for rank, i := range in.secOrder() {
		s := in.Sec[i]
		d := Decision{TaskIndex: i, TaskName: s.Name, Rank: rank, Chosen: -1}
		bestScore := -1.0
		var bestPeriod rts.Time
		for c := 0; c < in.M; c++ {
			cand := CandidateEval{
				Core:      c,
				MinPeriod: loads[c].MinFeasiblePeriod(s.C),
				CoreUtil:  loads[c].SumU,
			}
			if ts, ok := PeriodAdaptation(s, loads[c]); ok {
				cand.Feasible = true
				cand.Period = ts
				cand.Tightness = s.Tightness(ts)
				if cand.Tightness > bestScore {
					bestScore = cand.Tightness
					bestPeriod = ts
					d.Chosen = c
				}
			}
			d.Candidates = append(d.Candidates, cand)
		}
		ex.Decisions = append(ex.Decisions, d)
		if d.Chosen < 0 {
			ex.Result = newInfeasible("hydra",
				fmt.Sprintf("no feasible core for security task %q (C=%g, TDes=%g, TMax=%g)", s.Name, s.C, s.TDes, s.TMax))
			return ex
		}
		assign[i] = d.Chosen
		periods[i] = bestPeriod
		loads[d.Chosen].AddPeriodic(s.C, bestPeriod)
	}
	ex.Result = finalize(in, "hydra", assign, periods)
	return ex
}

// ClosestCore returns, for an infeasible decision, the core whose minimum
// feasible period came closest to the task's TMax, plus that period — the
// most promising direction for parameter relaxation. ok is false when the
// decision was feasible or has no candidates.
func (d Decision) ClosestCore() (int, rts.Time, bool) {
	if d.Chosen >= 0 || len(d.Candidates) == 0 {
		return 0, 0, false
	}
	idx := -1
	best := rts.Time(0)
	for _, c := range d.Candidates {
		if idx < 0 || c.MinPeriod < best {
			best = c.MinPeriod
			idx = c.Core
		}
	}
	return idx, best, true
}

// WriteText renders the trace as an indented report.
func (ex *Explanation) WriteText(w io.Writer) error {
	for _, d := range ex.Decisions {
		status := "infeasible everywhere"
		if d.Chosen >= 0 {
			status = fmt.Sprintf("-> core %d", d.Chosen)
		}
		if _, err := fmt.Fprintf(w, "[%d] %s %s\n", d.Rank, d.TaskName, status); err != nil {
			return err
		}
		cands := append([]CandidateEval(nil), d.Candidates...)
		sort.SliceStable(cands, func(a, b int) bool { return cands[a].Core < cands[b].Core })
		for _, c := range cands {
			marker := " "
			if c.Core == d.Chosen {
				marker = "*"
			}
			if c.Feasible {
				fmt.Fprintf(w, "  %s core %d: period %8.1f ms, tightness %.3f (core util %.2f)\n",
					marker, c.Core, c.Period, c.Tightness, c.CoreUtil)
			} else {
				fmt.Fprintf(w, "  %s core %d: infeasible (needs >= %.1f ms, core util %.2f)\n",
					marker, c.Core, c.MinPeriod, c.CoreUtil)
			}
		}
		if d.Chosen < 0 {
			if c, p, ok := d.ClosestCore(); ok {
				fmt.Fprintf(w, "  hint: core %d is closest; raising TMax above %.1f ms would fit\n", c, p)
			}
		}
	}
	if ex.Result != nil && ex.Result.Schedulable {
		fmt.Fprintf(w, "cumulative tightness: %.3f\n", ex.Result.Cumulative)
	}
	return nil
}
