package core

import (
	"fmt"

	"hydra/internal/partition"
	"hydra/internal/rts"
)

// SingleCore evaluates the alternate design point of Sec. IV: dedicate the
// last core entirely to security tasks and pack all real-time tasks onto the
// remaining M-1 cores. Security tasks suffer no real-time interference (the
// first term of Eq. 5 vanishes) but interfere with each other; periods are
// adapted in priority order exactly as in HYDRA's per-core subproblem.
//
// It takes the raw real-time taskset (not a partition) because the scheme
// repartitions onto M-1 cores itself, using heuristic h (the paper uses
// best-fit). The returned assignment places every security task on core M-1.
func SingleCore(m int, rt []rts.RTTask, sec []rts.SecurityTask, h partition.Heuristic) *Result {
	in, err := NewSingleCoreInput(m, rt, sec, h)
	if err != nil {
		return newInfeasible("singlecore", err.Error())
	}
	return SingleCoreInput(in)
}

// NewSingleCoreInput prepares the SingleCore scheme's Input: the real-time
// tasks are packed onto cores 0..m-2 with heuristic h, leaving core m-1
// dedicated to security tasks. It errs when m < 2, when any task is invalid,
// or when the real-time tasks do not fit on m-1 cores.
func NewSingleCoreInput(m int, rt []rts.RTTask, sec []rts.SecurityTask, h partition.Heuristic) (*Input, error) {
	if m < 2 {
		return nil, fmt.Errorf("core: singlecore needs at least 2 cores (1 for security), got %d", m)
	}
	if err := rts.ValidateAll(rt, sec); err != nil {
		return nil, err
	}
	part, err := partition.PartitionRT(rt, m-1, h)
	if err != nil {
		return nil, fmt.Errorf("core: real-time tasks do not fit on %d cores: %w", m-1, err)
	}
	return NewInput(m, rt, part.CoreOf, sec)
}

// SingleCoreInput mirrors SingleCore but reuses an existing Input whose RT
// partition already avoids the dedicated core. It returns an error result if
// any real-time task sits on the security core.
func SingleCoreInput(in *Input) *Result {
	if in.M < 2 {
		return newInfeasible("singlecore", fmt.Sprintf("needs at least 2 cores, got %d", in.M))
	}
	if err := in.Validate(); err != nil {
		return newInfeasible("singlecore", err.Error())
	}
	secCore := in.M - 1
	for i, c := range in.RTPartition {
		if c == secCore {
			return newInfeasible("singlecore",
				fmt.Sprintf("real-time task %q occupies the dedicated security core %d", in.RT[i].Name, secCore))
		}
	}
	var load rts.CoreLoad
	assign := make([]int, len(in.Sec))
	periods := make([]rts.Time, len(in.Sec))
	for _, i := range in.secOrder() {
		s := in.Sec[i]
		ts, ok := PeriodAdaptation(s, load)
		if !ok {
			return newInfeasible("singlecore",
				fmt.Sprintf("security core cannot fit task %q", s.Name))
		}
		assign[i] = secCore
		periods[i] = ts
		load.AddPeriodic(s.C, ts)
	}
	return finalize(in, "singlecore", assign, periods)
}
