package core

import (
	"fmt"
	"math"

	"hydra/internal/rts"
)

// OptimalOptions tunes the exhaustive baseline.
type OptimalOptions struct {
	// RefineJointGP additionally solves each per-core period vector with the
	// signomial (sequential-GP) maximizer of the cumulative tightness,
	// matching the paper's "convex optimization per assignment" description
	// (Sec. IV-B.2). When false only the greedy priority-order periods are
	// used, which is already optimal per task but can sacrifice weighted
	// cumulative tightness on loaded cores.
	RefineJointGP bool
	// MaxAssignments caps the enumeration (M^NS grows fast); 0 means no cap.
	// When the cap is exceeded the search returns an unschedulable result
	// with an explanatory reason rather than silently truncating.
	MaxAssignments int
}

// Optimal enumerates every assignment of security tasks to cores (M^NS
// combinations) and, for each, optimizes the per-core period vectors; it
// returns the assignment maximizing the cumulative weighted tightness of
// Eq. (3). This is the paper's "optimal" comparison baseline (Fig. 3) and is
// exponential — intended for small instances (the paper uses M=2, NS <= 6).
func Optimal(in *Input, opt OptimalOptions) *Result {
	if err := in.Validate(); err != nil {
		return newInfeasible("opt", err.Error())
	}
	ns := len(in.Sec)
	if ns == 0 {
		return finalize(in, "opt", []int{}, []rts.Time{})
	}
	total := math.Pow(float64(in.M), float64(ns))
	if opt.MaxAssignments > 0 && total > float64(opt.MaxAssignments) {
		return newInfeasible("opt",
			fmt.Sprintf("search space %.0f exceeds cap %d", total, opt.MaxAssignments))
	}

	order := in.secOrder()
	rtLoads := in.sharedRTLoads() // read-only: evalAssignment copies per-core values

	best := (*Result)(nil)
	assign := make([]int, ns) // per-priority-rank core choice
	var walk func(rank int)
	walk = func(rank int) {
		if rank == ns {
			r := evalAssignment(in, order, assign, rtLoads, opt.RefineJointGP)
			if r != nil && (best == nil || r.Cumulative > best.Cumulative) {
				best = r
			}
			return
		}
		for c := 0; c < in.M; c++ {
			assign[rank] = c
			walk(rank + 1)
		}
	}
	walk(0)
	if best == nil {
		return newInfeasible("opt", "no assignment of security tasks to cores is schedulable")
	}
	return best
}

// evalAssignment scores one complete assignment: tasks are grouped per core
// in priority order and each core's period vector is optimized
// independently (cores do not couple in Eq. 5). It returns nil when any core
// is infeasible.
func evalAssignment(in *Input, order, assign []int, rtLoads []rts.CoreLoad, refine bool) *Result {
	perCore := make([][]coreTask, in.M)
	for rank, i := range order {
		c := assign[rank]
		perCore[c] = append(perCore[c], coreTask{task: in.Sec[i], idx: i})
	}
	resAssign := make([]int, len(in.Sec))
	resPeriods := make([]rts.Time, len(in.Sec))
	for c := 0; c < in.M; c++ {
		if len(perCore[c]) == 0 {
			continue
		}
		var periods []rts.Time
		var ok bool
		if refine {
			periods, ok = jointCorePeriods(perCore[c], rtLoads[c])
		} else {
			periods, ok = greedyCorePeriods(perCore[c], rtLoads[c])
		}
		if !ok {
			return nil
		}
		for k, ct := range perCore[c] {
			resAssign[ct.idx] = c
			resPeriods[ct.idx] = periods[k]
		}
	}
	return finalize(in, "opt", resAssign, resPeriods)
}

// TightnessGap returns the paper's Fig. 3 metric
//
//	(eta_OPT - eta_HYDRA) / eta_OPT * 100%
//
// for two schedulable results, and false when either is unschedulable or the
// optimal cumulative tightness is zero.
func TightnessGap(opt, hydra *Result) (float64, bool) {
	if opt == nil || hydra == nil || !opt.Schedulable || !hydra.Schedulable || opt.Cumulative <= 0 {
		return 0, false
	}
	gap := (opt.Cumulative - hydra.Cumulative) / opt.Cumulative * 100
	if gap < 0 {
		gap = 0 // HYDRA can exceed the greedy-period OPT only by rounding
	}
	return gap, true
}
