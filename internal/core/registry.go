package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hydra/internal/partition"
)

// Allocator is the uniform seam every allocation scheme implements: given a
// fully specified problem it produces a Result. Implementations must be pure
// (no retained state between calls) and safe for concurrent use — the
// experiment engine calls Allocate from many goroutines.
//
// An Allocator receives the Input with the caller's real-time partition over
// all M cores. Schemes that repartition the real-time tasks themselves (e.g.
// SingleCore, which evicts them from the dedicated security core) record the
// partition they actually used in Result.RTPartition; consumers that need the
// effective problem (verification, simulation) obtain it with EffectiveInput.
type Allocator interface {
	// Name returns the registry key, e.g. "hydra" or "singlecore".
	Name() string
	// Allocate solves the problem. It never returns nil: infeasible or
	// invalid inputs yield a Result with Schedulable=false and a Reason.
	Allocate(in *Input) *Result
}

// SelfPartitioning marks allocators that ignore the Input's real-time
// partition and solve against one of their own (recorded in
// Result.RTPartition). Callers use SelfPartitions to decide whether a scheme
// can still run when no valid partition of the real-time tasks over all M
// cores exists.
type SelfPartitioning interface {
	SelfPartitions() bool
}

// SelfPartitions reports whether the allocator repartitions the real-time
// tasks itself.
func SelfPartitions(a Allocator) bool {
	s, ok := a.(SelfPartitioning)
	return ok && s.SelfPartitions()
}

// allocatorFunc adapts a function to the Allocator interface.
type allocatorFunc struct {
	name string
	fn   func(*Input) *Result
}

func (a allocatorFunc) Name() string               { return a.name }
func (a allocatorFunc) Allocate(in *Input) *Result { return a.fn(in) }

// selfPartitioningFunc is an allocatorFunc that advertises the
// SelfPartitioning capability.
type selfPartitioningFunc struct{ allocatorFunc }

func (selfPartitioningFunc) SelfPartitions() bool { return true }

// NewAllocator wraps a plain function as a named Allocator.
func NewAllocator(name string, fn func(*Input) *Result) Allocator {
	return allocatorFunc{name: name, fn: fn}
}

// NewHydraAllocator builds a HYDRA allocator with the given options. The name
// encodes the non-default knobs: "hydra", "hydra-first-feasible",
// "hydra-least-loaded", with a "-gp" suffix for the GP solver route.
func NewHydraAllocator(opt HydraOptions) Allocator {
	name := "hydra"
	switch opt.Policy {
	case FirstFeasible:
		name += "-first-feasible"
	case LeastLoaded:
		name += "-least-loaded"
	}
	if opt.UseGP {
		name += "-gp"
	}
	return NewAllocator(name, func(in *Input) *Result { return Hydra(in, opt) })
}

// NewHydraExtAllocator builds a HydraExt allocator; non-preemptive security
// execution is encoded as a "-np" suffix on the corresponding HYDRA name.
func NewHydraExtAllocator(opt ExtOptions) Allocator {
	name := NewHydraAllocator(opt.HydraOptions).Name()
	if opt.NonPreemptiveSecurity {
		name += "-np"
	}
	return NewAllocator(name, func(in *Input) *Result { return HydraExt(in, opt) })
}

// NewOptimalAllocator builds an exhaustive-optimal allocator ("opt", or
// "opt-gp" with the sequential-GP period refinement).
func NewOptimalAllocator(opt OptimalOptions) Allocator {
	name := "opt"
	if opt.RefineJointGP {
		name += "-gp"
	}
	return NewAllocator(name, func(in *Input) *Result { return Optimal(in, opt) })
}

// NewSingleCoreAllocator builds the dedicated-security-core baseline. The
// allocator ignores the Input's RT partition and repacks the real-time tasks
// onto M-1 cores with heuristic h; the partition it used is recorded in
// Result.RTPartition.
func NewSingleCoreAllocator(h partition.Heuristic) Allocator {
	return selfPartitioningFunc{allocatorFunc{
		name: "singlecore",
		fn: func(in *Input) *Result {
			return SingleCore(in.M, in.RT, in.Sec, h)
		},
	}}
}

// NewPartitionBaselineAllocator builds a "partition-<heuristic>" baseline:
// security tasks are bin-packed at their desired periods with no period
// adaptation (see PartitionBaseline).
func NewPartitionBaselineAllocator(h partition.Heuristic) Allocator {
	return NewAllocator("partition-"+h.String(), func(in *Input) *Result {
		return PartitionBaseline(in, h)
	})
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Allocator{}
)

// Register adds an allocator to the global registry. It panics on an empty
// name or a duplicate registration — schemes are identities; silently
// replacing one would corrupt every experiment that selects it by name.
func Register(a Allocator) {
	name := a.Name()
	if name == "" {
		panic("core: Register with empty allocator name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: Register called twice for allocator %q", name))
	}
	registry[name] = a
}

// Lookup returns the registered allocator with the given name.
func Lookup(name string) (Allocator, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	a, ok := registry[name]
	return a, ok
}

// MustLookup is Lookup that panics on unknown names; use for scheme names
// fixed at compile time.
func MustLookup(name string) Allocator {
	a, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("core: unknown allocator %q (have: %s)", name, strings.Join(Names(), ", ")))
	}
	return a
}

// Resolve maps scheme names to allocators, failing with a helpful message on
// the first unknown name. It is the parsing seam for -schemes CLI flags.
func Resolve(names ...string) ([]Allocator, error) {
	out := make([]Allocator, 0, len(names))
	for _, name := range names {
		a, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("core: unknown scheme %q (available: %s)", name, strings.Join(Names(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Names returns all registered scheme names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// The standard scheme catalogue. Paper defaults throughout: best-fit RT
// partitioning, and a capped search space for the exponential "opt" baseline
// (instances beyond the cap report an explanatory infeasible Result instead
// of running forever).
func init() {
	Register(NewHydraAllocator(HydraOptions{}))
	Register(NewHydraAllocator(HydraOptions{UseGP: true}))
	Register(NewHydraAllocator(HydraOptions{Policy: FirstFeasible}))
	Register(NewHydraAllocator(HydraOptions{Policy: LeastLoaded}))
	Register(NewHydraExtAllocator(ExtOptions{NonPreemptiveSecurity: true}))
	Register(NewHydraExtAllocator(ExtOptions{HydraOptions: HydraOptions{Policy: FirstFeasible}, NonPreemptiveSecurity: true}))
	Register(NewHydraExtAllocator(ExtOptions{HydraOptions: HydraOptions{Policy: LeastLoaded}, NonPreemptiveSecurity: true}))
	Register(NewSingleCoreAllocator(partition.BestFit))
	Register(NewOptimalAllocator(OptimalOptions{MaxAssignments: 1 << 20}))
	Register(NewOptimalAllocator(OptimalOptions{RefineJointGP: true, MaxAssignments: 1 << 20}))
	for _, h := range []partition.Heuristic{partition.FirstFit, partition.BestFit, partition.WorstFit, partition.NextFit} {
		Register(NewPartitionBaselineAllocator(h))
	}
}
