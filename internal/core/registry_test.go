package core

import (
	"strings"
	"testing"

	"hydra/internal/partition"
	"hydra/internal/rts"
)

// registryInput builds a small 2-core problem every standard scheme can solve.
func registryInput(t *testing.T) *Input {
	t.Helper()
	rt := []rts.RTTask{
		rts.NewRTTask("ctl", 5, 20),
		rts.NewRTTask("nav", 30, 100),
	}
	sec := []rts.SecurityTask{
		{Name: "tw", C: 50, TDes: 1000, TMax: 10000},
		{Name: "bro", C: 30, TDes: 500, TMax: 5000},
	}
	part, err := partition.PartitionRT(rt, 2, partition.BestFit)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInput(2, rt, part.CoreOf, sec)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRegistryRoundTrip(t *testing.T) {
	for _, name := range []string{
		"hydra", "hydra-gp", "hydra-first-feasible", "hydra-least-loaded",
		"hydra-np", "singlecore", "opt", "opt-gp",
		"partition-first-fit", "partition-best-fit", "partition-worst-fit", "partition-next-fit",
	} {
		a, ok := Lookup(name)
		if !ok {
			t.Fatalf("standard scheme %q not registered (have: %s)", name, strings.Join(Names(), ", "))
		}
		if a.Name() != name {
			t.Fatalf("Lookup(%q) returned allocator named %q", name, a.Name())
		}
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted/unique: %v", names)
		}
	}
	if _, ok := Lookup("no-such-scheme"); ok {
		t.Fatal("unknown scheme must not resolve")
	}
	if _, err := Resolve("hydra", "no-such-scheme"); err == nil {
		t.Fatal("Resolve must fail on unknown names")
	}
	got, err := Resolve("singlecore", "hydra")
	if err != nil || len(got) != 2 || got[0].Name() != "singlecore" || got[1].Name() != "hydra" {
		t.Fatalf("Resolve order broken: %v %v", got, err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	Register(NewAllocator("hydra", func(in *Input) *Result { return nil }))
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name registration must panic")
		}
	}()
	Register(NewAllocator("", func(in *Input) *Result { return nil }))
}

// Every registered scheme must produce a verifiable result (or a reasoned
// rejection) on a small well-posed problem, through the uniform seam.
func TestRegisteredSchemesAllocateAndVerify(t *testing.T) {
	in := registryInput(t)
	for _, name := range Names() {
		a := MustLookup(name)
		res := a.Allocate(in)
		if res == nil {
			t.Fatalf("%s: Allocate returned nil", name)
		}
		if !res.Schedulable {
			t.Fatalf("%s: rejected the easy problem: %s", name, res.Reason)
		}
		if err := Verify(in, res); err != nil {
			t.Fatalf("%s: result fails verification: %v", name, err)
		}
		if err := VerifyExact(in, res); err != nil {
			t.Fatalf("%s: result fails exact verification: %v", name, err)
		}
	}
}

// Only singlecore advertises the SelfPartitioning capability.
func TestSelfPartitionsCapability(t *testing.T) {
	for _, name := range Names() {
		got := SelfPartitions(MustLookup(name))
		if want := name == "singlecore"; got != want {
			t.Fatalf("SelfPartitions(%s) = %v, want %v", name, got, want)
		}
	}
	if SelfPartitions(NewSingleCoreAllocator(partition.WorstFit)) != true {
		t.Fatal("constructed singlecore allocator must self-partition")
	}
}

// SingleCore repartitions internally; the result must carry the partition it
// solved against, and EffectiveInput must surface it.
func TestSingleCoreResultCarriesPartition(t *testing.T) {
	in := registryInput(t)
	res := MustLookup("singlecore").Allocate(in)
	if !res.Schedulable {
		t.Fatalf("singlecore rejected: %s", res.Reason)
	}
	if len(res.RTPartition) != len(in.RT) {
		t.Fatalf("RTPartition missing: %v", res.RTPartition)
	}
	eff := EffectiveInput(in, res)
	secCore := in.M - 1
	for i, c := range eff.RTPartition {
		if c == secCore {
			t.Fatalf("RT task %d still on the dedicated security core", i)
		}
	}
	for _, c := range res.Assignment {
		if c != secCore {
			t.Fatalf("security task not on dedicated core: %v", res.Assignment)
		}
	}
}

// The partition baseline never adapts periods: every admitted task runs at
// its desired period (tightness exactly 1).
func TestPartitionBaselineDesiredPeriods(t *testing.T) {
	in := registryInput(t)
	for _, h := range []partition.Heuristic{partition.FirstFit, partition.BestFit, partition.WorstFit, partition.NextFit} {
		res := PartitionBaseline(in, h)
		if !res.Schedulable {
			t.Fatalf("%v: rejected: %s", h, res.Reason)
		}
		for i, s := range in.Sec {
			if res.Periods[i] != s.TDes {
				t.Fatalf("%v: task %q period %g != TDes %g", h, s.Name, res.Periods[i], s.TDes)
			}
			if res.Tightness[i] != 1 {
				t.Fatalf("%v: task %q tightness %g != 1", h, s.Name, res.Tightness[i])
			}
		}
	}
	// A workload that only fits with period adaptation must be rejected by
	// the baseline but accepted by HYDRA — the paper's core argument.
	rt := []rts.RTTask{rts.NewRTTask("busy", 60, 100)}
	sec := []rts.SecurityTask{{Name: "s", C: 30, TDes: 60, TMax: 2000}}
	tight, err := NewInput(1, rt, []int{0}, sec)
	if err != nil {
		t.Fatal(err)
	}
	if res := PartitionBaseline(tight, partition.BestFit); res.Schedulable {
		t.Fatal("baseline must reject a workload infeasible at desired periods")
	}
	if res := Hydra(tight, HydraOptions{}); !res.Schedulable {
		t.Fatalf("HYDRA should fit it by relaxing the period: %s", res.Reason)
	}
}
