package core

import (
	"fmt"
	"math"

	"hydra/internal/rts"
)

// ExtOptions configures HydraExt, which implements the extensions sketched
// in the paper's Discussion (Sec. V) on top of Algorithm 1.
type ExtOptions struct {
	HydraOptions

	// NonPreemptiveSecurity makes every security task execute its jobs
	// non-preemptively *within the security band* (real-time tasks still
	// preempt, so the real-time schedule is never perturbed). Analytically
	// each security task then suffers a blocking term equal to the largest
	// WCET among lower-priority security tasks, added to Eq. (6):
	//
	//	Cs + B_s + I_s <= Ts,  B_s = max_{l in lpS(s)} C_l.
	//
	// The blocking bound is core-agnostic (any lower-priority task might
	// later land on the same core), hence conservative but safe.
	NonPreemptiveSecurity bool

	// Chains lists precedence chains by Input.Sec index: within a chain,
	// earlier tasks are predecessors (e.g. Tripwire must verify its own
	// binary before checking system binaries). HydraExt enforces, for each
	// consecutive pair (p, s):
	//
	//	1. p is allocated before s and has higher effective priority;
	//	2. s is placed on the same core as p (so the priority relation
	//	   serializes every p-job before the next s-job);
	//	3. Ts >= Tp (s cannot usefully run more often than its predecessor).
	//
	// A task may appear in at most one chain.
	Chains [][]int
}

// HydraExt runs HYDRA with the Sec. V extensions. With the zero ExtOptions
// it behaves exactly like Hydra.
func HydraExt(in *Input, opt ExtOptions) *Result {
	if err := in.Validate(); err != nil {
		return newInfeasible("hydra-ext", err.Error())
	}
	sc := acquireScratch()
	defer releaseScratch(sc)
	order, chainPred, err := extOrder(in, opt.Chains, sc)
	if err != nil {
		return newInfeasible("hydra-ext", err.Error())
	}

	// Blocking terms: for each task (by priority rank), the largest WCET of
	// any task processed after it. Computed over the processing order.
	sc.blocking = filled(sc.blocking, len(in.Sec), 0)
	blocking := sc.blocking
	if opt.NonPreemptiveSecurity {
		var maxC rts.Time
		for k := len(order) - 1; k >= 0; k-- {
			blocking[order[k]] = maxC
			if c := in.Sec[order[k]].C; c > maxC {
				maxC = c
			}
		}
	}

	sc.loads = in.copyRTLoads(sc.loads)
	loads := sc.loads
	assign := make([]int, len(in.Sec))
	periods := make([]rts.Time, len(in.Sec))
	for i := range assign {
		assign[i] = -1
	}

	for _, i := range order {
		s := in.Sec[i]
		// Blocking enters the analysis exactly like extra execution demand.
		s.C += blocking[i]
		minPeriod := s.TDes
		cores := allCores(in.M)
		if p := chainPred[i]; p >= 0 {
			if assign[p] < 0 {
				return newInfeasible("hydra-ext", fmt.Sprintf("internal: predecessor of %q not yet allocated", s.Name))
			}
			cores = []int{assign[p]}
			if periods[p] > minPeriod {
				minPeriod = periods[p]
			}
		}
		if minPeriod > s.TMax {
			return newInfeasible("hydra-ext",
				fmt.Sprintf("task %q: chain-inherited period %g exceeds TMax %g", s.Name, minPeriod, s.TMax))
		}
		adjusted := s
		adjusted.TDes = minPeriod

		// math.Inf(-1), not a finite floor: LeastLoaded's 1 - SumU score can
		// go negative on a loaded core (see the same fix in Hydra).
		bestCore, bestPeriod, bestScore := -1, rts.Time(0), math.Inf(-1)
		for _, c := range cores {
			ts, ok := PeriodAdaptation(adjusted, loads[c])
			if !ok {
				continue
			}
			// Score by tightness against the *original* desired period.
			score := in.Sec[i].Tightness(ts)
			switch opt.Policy {
			case BestTightness:
			case FirstFeasible:
				score = float64(in.M - c)
			case LeastLoaded:
				score = 1 - loads[c].SumU
			default:
				return newInfeasible("hydra-ext", fmt.Sprintf("unknown policy %v", opt.Policy))
			}
			if score > bestScore {
				bestScore, bestCore, bestPeriod = score, c, ts
			}
		}
		if bestCore < 0 {
			return newInfeasible("hydra-ext", fmt.Sprintf("no feasible core for security task %q", in.Sec[i].Name))
		}
		assign[i] = bestCore
		periods[i] = bestPeriod
		// Commit the inflated demand (WCET + blocking is pessimistic for
		// interference on later tasks but keeps the analysis one-sided).
		loads[bestCore].AddPeriodic(s.C, bestPeriod)
	}
	r := finalize(in, "hydra-ext", assign, periods)
	return r
}

// extOrder derives the processing order: the usual priority order (ascending
// TMax) stably adjusted so every chain predecessor precedes its successors.
// It returns the order plus, per task, its direct chain predecessor (-1 for
// none). Both returned slices are backed by sc's pooled buffers and are only
// valid until the scratch is released.
func extOrder(in *Input, chains [][]int, sc *allocScratch) ([]int, []int, error) {
	chainPred := filled(sc.chainPred, len(in.Sec), -1)
	sc.chainPred = chainPred
	for ci, chain := range chains {
		for k, idx := range chain {
			if idx < 0 || idx >= len(in.Sec) {
				return nil, nil, fmt.Errorf("core: chain %d references unknown security task %d", ci, idx)
			}
			if k == 0 {
				continue
			}
			pred := chain[k-1]
			if idx == pred {
				return nil, nil, fmt.Errorf("core: chain %d has task %d preceding itself", ci, idx)
			}
			// Tree-shaped precedence is allowed (one task may head several
			// chains), but each task has at most one predecessor.
			if chainPred[idx] >= 0 && chainPred[idx] != pred {
				return nil, nil, fmt.Errorf("core: security task %d has two different predecessors (%d and %d)", idx, chainPred[idx], pred)
			}
			chainPred[idx] = pred
		}
	}

	base := in.secOrder()
	// Kahn-style stable topological sort over the chain edges, scanning the
	// base priority order repeatedly; chains are short so this stays cheap.
	sc.placed = filled(sc.placed, len(in.Sec), false)
	placed := sc.placed
	order := sc.order[:0]
	for len(order) < len(base) {
		progressed := false
		for _, i := range base {
			if placed[i] {
				continue
			}
			if p := chainPred[i]; p >= 0 && !placed[p] {
				continue
			}
			placed[i] = true
			order = append(order, i)
			progressed = true
		}
		if !progressed {
			return nil, nil, fmt.Errorf("core: precedence chains contain a cycle")
		}
	}
	sc.order = order
	return order, chainPred, nil
}

// allCores returns [0, 1, ..., m-1].
func allCores(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}
