package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hydra/internal/partition"
	"hydra/internal/rts"
	"hydra/internal/taskgen"
)

func TestVerifyExactAcceptsHydraResults(t *testing.T) {
	sec := []rts.SecurityTask{
		{Name: "a", C: 10, TDes: 100, TMax: 2000},
		{Name: "b", C: 15, TDes: 150, TMax: 3000},
	}
	in := twoCoreInput(t, 0.6, 0.5, sec)
	r := Hydra(in, HydraOptions{})
	if !r.Schedulable {
		t.Fatalf("unschedulable: %s", r.Reason)
	}
	if err := VerifyExact(in, r); err != nil {
		t.Fatalf("exact verification must accept a linear-bound-feasible result: %v", err)
	}
}

func TestVerifyExactRejectsOverload(t *testing.T) {
	sec := []rts.SecurityTask{{Name: "s", C: 50, TDes: 100, TMax: 1000}}
	in := twoCoreInput(t, 0.8, 0.8, sec)
	bad := &Result{
		Schedulable: true,
		Assignment:  []int{0},
		Periods:     []rts.Time{100}, // C=50 + RT interference cannot fit 100
	}
	if err := VerifyExact(in, bad); err == nil {
		t.Fatal("overloaded period must fail exact verification")
	}
	if err := VerifyExact(in, newInfeasible("x", "y")); err == nil {
		t.Fatal("unschedulable result must be rejected")
	}
	short := &Result{Schedulable: true, Assignment: []int{}, Periods: []rts.Time{}}
	if err := VerifyExact(in, short); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
	badCore := &Result{Schedulable: true, Assignment: []int{9}, Periods: []rts.Time{100}}
	if err := VerifyExact(in, badCore); err == nil {
		t.Fatal("invalid core must be rejected")
	}
}

// The soundness theorem behind the paper's analysis: every allocation that
// satisfies the linear bound (Eq. 5-6, what Hydra/SingleCore/Optimal emit)
// also passes the exact ceiling-based RTA, because (1+x) >= ceil(x).
func TestLinearImpliesExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(3)
		w, err := taskgen.Generate(taskgen.DefaultParams(m, float64(m)*(0.2+0.7*rng.Float64())), rng)
		if err != nil {
			return true
		}
		part, err := partition.PartitionRT(w.RT, m, partition.BestFit)
		if err != nil {
			return true
		}
		in, err := NewInput(m, w.RT, part.CoreOf, w.Sec)
		if err != nil {
			return false
		}
		for _, res := range []*Result{
			Hydra(in, HydraOptions{}),
			Optimal(in, OptimalOptions{MaxAssignments: 4096}),
		} {
			if !res.Schedulable {
				continue
			}
			if err := VerifyExact(in, res); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalysisPessimism(t *testing.T) {
	sec := []rts.SecurityTask{{Name: "s", C: 10, TDes: 100, TMax: 5000}}
	in := twoCoreInput(t, 0.5, 0.5, sec)
	r := Hydra(in, HydraOptions{})
	if !r.Schedulable {
		t.Fatalf("unschedulable: %s", r.Reason)
	}
	p, err := AnalysisPessimism(in, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 {
		t.Fatalf("pessimism = %v", p)
	}
	// Linear bound always dominates the exact response time.
	if p[0] < 1 {
		t.Fatalf("pessimism ratio %v < 1 violates the domination theorem", p[0])
	}
	if _, err := AnalysisPessimism(in, newInfeasible("x", "y")); err == nil {
		t.Fatal("unschedulable result must be rejected")
	}
}

func TestExactSecurityRTAKnownValues(t *testing.T) {
	// Security task C=2, period 20, against one RT interferer (1,4):
	// R = 2 + ceil(R/4)*1: R=2 -> 2+1=3 -> 2+1=3 fixpoint.
	hp := []rts.InterferingTask{{C: 1, T: 4}}
	r, ok := rts.ExactSecurityResponseTime(2, 20, hp)
	if !ok || r != 3 {
		t.Fatalf("R = %v ok=%v, want 3 true", r, ok)
	}
	// Linear bound at ts=20: 2 + (1+20/4)*1 = 8 >= exact 3.
	if b := rts.LinearSecurityResponseBound(2, 20, hp); b != 8 {
		t.Fatalf("linear bound = %v, want 8", b)
	}
	// Saturation: interferer with utilization 1 never converges.
	if _, ok := rts.ExactSecurityResponseTime(2, 1e6, []rts.InterferingTask{{C: 4, T: 4}}); ok {
		t.Fatal("saturated interference must fail")
	}
}

// TestVerifyExactReportsNonConvergence pins the divergence-contract fix in
// VerifyExact: when the exact security RTA blows its iteration budget while
// still below the period, the error must name non-convergence instead of
// claiming a proven miss with R > T (the last iterate is below T).
func TestVerifyExactReportsNonConvergence(t *testing.T) {
	// One RT interferer with utilization within 1e-4 of 1: the security
	// task's fixed point ~ (1.5+1)/1e-4 is approached in ~unit steps, far
	// beyond MaxRTAIterations, while the adapted period 20000 is never
	// exceeded along the way.
	rt := []rts.RTTask{rts.NewRTTask("creep", 1, 1.0001)}
	sec := []rts.SecurityTask{{Name: "s", C: 1.5, TDes: 10, TMax: 30000}}
	in := &Input{M: 1, RT: rt, RTPartition: []int{0}, Sec: sec}
	res := &Result{
		Schedulable: true,
		Scheme:      "test",
		Assignment:  []int{0},
		Periods:     []rts.Time{20000},
		Tightness:   []float64{10.0 / 20000},
	}
	err := VerifyExact(in, res)
	if err == nil {
		t.Fatal("non-convergent RTA must be conservatively rejected")
	}
	if !strings.Contains(err.Error(), "did not converge") {
		t.Fatalf("divergence misreported: %v", err)
	}
	if strings.Contains(err.Error(), "misses its adapted deadline") {
		t.Fatalf("divergence reported as a proven miss: %v", err)
	}
	if _, aerr := AnalysisPessimism(in, res); aerr == nil || !strings.Contains(aerr.Error(), "did not converge") {
		t.Fatalf("AnalysisPessimism divergence report: %v", aerr)
	}
}
