// Package online hosts long-lived allocation systems whose tasksets churn
// while the system runs — the serving-side counterpart of the paper's one-shot
// design-space question "can this static taskset host these security tasks?".
//
// A System owns a committed allocation (real-time partition, security
// assignments and adapted periods) plus the per-core incremental
// rts.AnalysisState it was admitted against, so task arrival is an O(M)
// admission trial on warm state instead of a cold full allocation:
//
//   - AddSecurity runs the registered HYDRA policy's per-core period
//     adaptation against the committed load folds and commits to the winning
//     core, or rejects with a structured per-core Rejection;
//   - AddRT places a real-time task with the system's partition heuristic
//     under exact-RTA admission, additionally requiring every committed
//     security task on the destination core to keep meeting its committed
//     period (their periods are contracts; tightly adapted tasks make the
//     core RT-frozen until a Reallocate re-tunes them);
//   - Remove retires a task by name; real-time removals cold-reseed the
//     affected core through rts.AnalysisState.RemoveRT so the surviving
//     state is bit-identical to one that never saw the task;
//   - Reallocate is the escape hatch: a full re-run of the system's scheme
//     on the current taskset, byte-identical to a cold allocation of that
//     taskset, replacing the committed state only on success.
//
// Incrementally admitted security tasks take analysis priority in commit
// order (each new arrival is tested against the interference of everything
// already committed, leaving committed tasks untouched) — sound under
// Eq. (5)/(6) for the commit-order priority assignment, but possibly looser
// than the TMax-priority order a cold run uses; Reallocate recovers that
// tightness. Every admit/reject/remove/reallocate decision is recorded in a
// monotonically versioned event log.
//
// All System methods are safe for concurrent use; mutations serialize on a
// per-system lock.
package online

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"hydra/internal/core"
	"hydra/internal/partition"
	"hydra/internal/rts"
)

// incrementalSchemes maps the allocation schemes a System can host onto the
// HYDRA options their incremental admission step mirrors. Schemes outside
// this set (opt's exhaustive search, singlecore's repartitioning, the -np
// blocking variants whose terms are global over lower-priority tasks) have no
// sound per-task incremental counterpart and are rejected at creation.
var incrementalSchemes = map[string]core.HydraOptions{
	"hydra":                {},
	"hydra-gp":             {UseGP: true},
	"hydra-first-feasible": {Policy: core.FirstFeasible},
	"hydra-least-loaded":   {Policy: core.LeastLoaded},
}

// SupportedSchemes returns the scheme names a System can host, sorted.
func SupportedSchemes() []string {
	out := make([]string, 0, len(incrementalSchemes))
	for name := range incrementalSchemes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TaskKind distinguishes the two task populations of a system.
type TaskKind string

const (
	// KindRT marks a real-time task.
	KindRT TaskKind = "rt"
	// KindSecurity marks a security task.
	KindSecurity TaskKind = "security"
)

// PlacedRT is one committed real-time task.
type PlacedRT struct {
	Task rts.RTTask
	Core int
}

// PlacedSec is one committed security task with its adapted period.
type PlacedSec struct {
	Task   rts.SecurityTask
	Core   int
	Period rts.Time
}

// Tightness returns the achieved eta = TDes/period of the placement.
func (p PlacedSec) Tightness() float64 { return p.Task.Tightness(p.Period) }

// Placement reports a successful admission.
type Placement struct {
	Core      int
	Period    rts.Time // security tasks only (0 for real-time)
	Tightness float64  // security tasks only
	Version   uint64   // the admit event's version
}

// Removed reports a successful removal.
type Removed struct {
	Kind    TaskKind
	Core    int
	Version uint64
}

// CoreVerdict is one core's reason for refusing a task.
type CoreVerdict struct {
	Core   int    `json:"core"`
	Reason string `json:"reason"`
}

// Rejection is the structured no-core-admits error: one verdict per core, in
// core order. It satisfies error so callers can errors.As it out of the
// admission path.
type Rejection struct {
	Task    string        `json:"task"`
	Kind    TaskKind      `json:"kind"`
	Version uint64        `json:"version"` // the reject event's version
	Cores   []CoreVerdict `json:"cores"`
}

// Error renders the rejection as a one-line summary.
func (r *Rejection) Error() string {
	parts := make([]string, len(r.Cores))
	for i, v := range r.Cores {
		parts[i] = fmt.Sprintf("core %d: %s", v.Core, v.Reason)
	}
	return fmt.Sprintf("online: no core admits %s task %q (%s)", r.Kind, r.Task, strings.Join(parts, "; "))
}

// ErrNotFound is returned by Remove for unknown task names.
var ErrNotFound = fmt.Errorf("online: no such task")

// ErrDuplicateName is returned when an added task's name is already committed.
var ErrDuplicateName = fmt.Errorf("online: task name already in use")

// System is one long-lived allocation system. Create with NewSystem.
type System struct {
	id        string
	scheme    string
	opts      core.HydraOptions
	heuristic partition.Heuristic
	m         int

	mu      sync.Mutex
	st      *rts.AnalysisState // long-lived incremental per-core state
	rt      []PlacedRT         // commit order
	sec     []PlacedSec        // commit order == analysis priority order
	names   map[string]TaskKind
	cursor  int // NextFit cursor for RT placements
	version uint64
	events  []Event
	maxEv   int
	changed chan struct{}
	onEvent func(Event) // registry counter sink; may be nil

	// reallocAfter is the auto-reallocate policy knob: after reallocAfter
	// consecutive rejections the system runs Reallocate once and retries the
	// rejected admission (0 = off). rejects is the running rejection streak.
	reallocAfter int
	rejects      int
}

// NewSystem builds a system by running the scheme cold on the initial
// taskset: the real-time tasks are partitioned with the heuristic — or
// placed on the caller's pinned partition (part[i] = core of rt[i]; nil
// leaves partitioning to the heuristic), checked for exact-RTA
// schedulability — the security tasks allocated by the registered scheme,
// and the committed state seeded from that allocation. A pinned partition
// seeds creation only: the system owns every placement afterwards, and
// Reallocate re-partitions with the heuristic. The initial taskset may be
// empty. Task names must be unique across both populations (removal is by
// name).
func NewSystem(id, scheme string, h partition.Heuristic, m int, rt []rts.RTTask, part []int, sec []rts.SecurityTask) (*System, error) {
	if scheme == "" {
		scheme = "hydra"
	}
	opts, ok := incrementalSchemes[scheme]
	if !ok {
		return nil, fmt.Errorf("online: scheme %q has no incremental admission step (supported: %s)",
			scheme, strings.Join(SupportedSchemes(), ", "))
	}
	if m <= 0 {
		return nil, fmt.Errorf("online: need at least one core, got %d", m)
	}
	if err := rts.ValidateAll(rt, sec); err != nil {
		return nil, err
	}
	names := make(map[string]TaskKind, len(rt)+len(sec))
	for _, t := range rt {
		if _, dup := names[t.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateName, t.Name)
		}
		names[t.Name] = KindRT
	}
	for _, t := range sec {
		if _, dup := names[t.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateName, t.Name)
		}
		names[t.Name] = KindSecurity
	}
	s := &System{
		id:        id,
		scheme:    scheme,
		opts:      opts,
		heuristic: h,
		m:         m,
		st:        rts.NewAnalysisState(m),
		names:     names,
		maxEv:     defaultMaxEvents,
		changed:   make(chan struct{}),
	}
	if err := s.commitColdAllocation(rt, sec, part); err != nil {
		return nil, err
	}
	s.logEvent(Event{Type: EventCreate, Core: -1,
		Reason: fmt.Sprintf("scheme %s, %d cores, %d rt + %d security tasks", scheme, m, len(rt), len(sec))})
	return s, nil
}

// commitColdAllocation runs the scheme cold on (rt, sec) and replaces the
// committed state with its outcome, placing the real-time tasks on pinned
// (validated for shape and exact-RTA schedulability) when non-nil, else on a
// fresh heuristic partition. The caller holds no lock (creation) or the
// system lock (Reallocate); on error the state is left untouched.
func (s *System) commitColdAllocation(rt []rts.RTTask, sec []rts.SecurityTask, pinned []int) error {
	var part []int
	switch {
	case pinned != nil:
		if len(pinned) != len(rt) {
			return fmt.Errorf("online: pinned partition covers %d tasks, taskset has %d", len(pinned), len(rt))
		}
		for i, c := range pinned {
			if c < 0 || c >= s.m {
				return fmt.Errorf("online: pinned partition places task %d on invalid core %d of %d", i, c, s.m)
			}
		}
		// Heuristic partitions are exact-RTA-admitted by construction; a
		// pinned one must be checked before it becomes committed state.
		probe := rts.AcquireAnalysisState(s.m)
		for i, c := range pinned {
			probe.SeedRT(c, rt[i])
		}
		for c := 0; c < s.m; c++ {
			if !probe.RTSchedulable(c) {
				rts.ReleaseAnalysisState(probe)
				return fmt.Errorf("online: pinned partition is not schedulable under exact RTA on core %d", c)
			}
		}
		rts.ReleaseAnalysisState(probe)
		part = pinned
	case len(rt) > 0:
		p, err := partition.PartitionRT(rt, s.m, s.heuristic)
		if err != nil {
			return err
		}
		part = p.CoreOf
	}
	var res *core.Result
	if len(sec) > 0 {
		in, err := core.NewInput(s.m, rt, part, sec)
		if err != nil {
			return err
		}
		res = core.Hydra(in, s.opts)
		if !res.Schedulable {
			return fmt.Errorf("online: scheme %s rejects the taskset: %s", s.scheme, res.Reason)
		}
	}

	s.st.Reset(s.m)
	s.rt = s.rt[:0]
	for i, t := range rt {
		s.st.SeedRT(part[i], t)
		s.rt = append(s.rt, PlacedRT{Task: t, Core: part[i]})
	}
	s.sec = s.sec[:0]
	if res != nil {
		// Commit in the scheme's own processing order (core.
		// SecurityPriorityOrder — ascending TMax, ties by name then index),
		// so the commit-order load folds match the cold run's bit for bit.
		for _, i := range core.SecurityPriorityOrder(sec) {
			s.sec = append(s.sec, PlacedSec{Task: sec[i], Core: res.Assignment[i], Period: res.Periods[i]})
			s.st.CommitSecurity(res.Assignment[i], sec[i].C, res.Periods[i])
		}
	}
	s.cursor = 0
	return nil
}

// SetEventSink attaches a decision-log sink (the registry counter feed). It
// must be attached before the system is shared across goroutines; events
// logged earlier (the create event, replayed decisions) are not re-delivered.
func (s *System) SetEventSink(fn func(Event)) {
	s.mu.Lock()
	s.onEvent = fn
	s.mu.Unlock()
}

// SetReallocateAfter sets the auto-reallocate policy: after n consecutive
// rejections the system reallocates once (re-running the scheme cold, which
// re-tunes every adapted security period) and retries the rejected admission.
// Zero (the default) disables the policy. Commit-order analysis priorities
// and frozen period contracts are both looser than a cold run, so an arrival
// the warm state rejects can be admissible after a reallocation — this knob
// closes that loop without operator action.
func (s *System) SetReallocateAfter(n int) {
	s.mu.Lock()
	if n < 0 {
		n = 0
	}
	s.reallocAfter = n
	s.mu.Unlock()
}

// ReallocateAfter returns the auto-reallocate threshold (0 = off).
func (s *System) ReallocateAfter() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reallocAfter
}

// Has reports whether a task with the given name is committed.
func (s *System) Has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.names[name]
	return ok
}

// ID returns the system id.
func (s *System) ID() string { return s.id }

// Scheme returns the registered scheme name the system runs.
func (s *System) Scheme() string { return s.scheme }

// Heuristic returns the real-time partition heuristic.
func (s *System) Heuristic() partition.Heuristic { return s.heuristic }

// M returns the platform size.
func (s *System) M() int { return s.m }

// coreFold returns the committed Eq. 5 load fold of core c: the real-time
// load (arrival order, maintained by AnalysisState) plus every committed
// security task on c folded in commit order.
func (s *System) coreFold(c int) rts.CoreLoad {
	load := s.st.RTLoad(c)
	for i := range s.sec {
		if s.sec[i].Core == c {
			load.AddPeriodic(s.sec[i].Task.C, s.sec[i].Period)
		}
	}
	return load
}

// AddSecurity try-admits a security task on the committed state: the
// scheme's period adaptation runs against every core's committed fold and
// the task commits to the core its policy scores best, at analysis priority
// below everything already committed. On success the placement is returned;
// when no core admits, the returned error is a *Rejection carrying one
// verdict per core.
func (s *System) AddSecurity(t rts.SecurityTask) (Placement, error) {
	if err := t.Validate(); err != nil {
		return Placement{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Surface the long-lived state's staged RTA counters after each batch;
	// runs under the lock (defers are LIFO).
	defer s.st.FlushMetrics()
	if _, dup := s.names[t.Name]; dup {
		return Placement{}, fmt.Errorf("%w: %q", ErrDuplicateName, t.Name)
	}
	p, rej := s.admitSecurityLocked(t)
	if rej == nil {
		return p, nil
	}
	rej.Version = s.logEvent(Event{Type: EventReject, Task: t.Name, Kind: KindSecurity, Core: -1, Reason: rej.Error()})
	if p, ok := s.autoReallocateLocked(func() *Rejection { var r *Rejection; p, r = s.admitSecurityLocked(t); return r }, &p); ok {
		return p, nil
	}
	return Placement{}, rej
}

// admitSecurityLocked runs one security admission trial on the committed
// state, committing and logging the admit on success. On failure it returns
// an unlogged Rejection (the caller decides whether to log it — a retry
// after an auto-reallocate must not double-log). Callers hold s.mu.
func (s *System) admitSecurityLocked(t rts.SecurityTask) (Placement, *Rejection) {
	adapt := core.PeriodAdaptation
	if s.opts.UseGP {
		adapt = core.PeriodAdaptationGP
	}
	bestCore, bestPeriod, bestScore := -1, rts.Time(0), math.Inf(-1)
	verdicts := make([]CoreVerdict, 0, s.m)
	for c := 0; c < s.m; c++ {
		fold := s.coreFold(c)
		ts, ok := adapt(t, fold)
		if !ok {
			verdicts = append(verdicts, CoreVerdict{Core: c, Reason: fmt.Sprintf(
				"no feasible period in [%g, %g] against committed load (sum C %.4g ms, util %.4g)",
				t.TDes, t.TMax, fold.SumC, fold.SumU)})
			continue
		}
		var score float64
		switch s.opts.Policy {
		case core.BestTightness:
			score = t.Tightness(ts)
		case core.FirstFeasible:
			score = float64(s.m - c)
		case core.LeastLoaded:
			score = 1 - fold.SumU
		}
		if score > bestScore {
			bestScore, bestCore, bestPeriod = score, c, ts
		}
		if s.opts.Policy == core.FirstFeasible {
			break
		}
	}
	if bestCore < 0 {
		return Placement{}, &Rejection{Task: t.Name, Kind: KindSecurity, Cores: verdicts}
	}
	s.sec = append(s.sec, PlacedSec{Task: t, Core: bestCore, Period: bestPeriod})
	s.st.CommitSecurity(bestCore, t.C, bestPeriod)
	s.names[t.Name] = KindSecurity
	s.rejects = 0
	v := s.logEvent(Event{Type: EventAdmit, Task: t.Name, Kind: KindSecurity, Core: bestCore,
		PeriodMS: bestPeriod, Tightness: t.Tightness(bestPeriod)})
	return Placement{Core: bestCore, Period: bestPeriod, Tightness: t.Tightness(bestPeriod), Version: v}, nil
}

// autoReallocateLocked implements the ReallocateAfter policy after a
// just-logged rejection: it grows the rejection streak, and once the streak
// reaches the threshold it reallocates (the cold re-run re-tunes every
// adapted security period and re-derives analysis priorities) and retries
// the rejected admission exactly once via retry, which must write the retry
// outcome into *p. It reports whether the retry admitted. Callers hold s.mu
// and have already logged the triggering rejection; a failed retry is not
// logged again.
func (s *System) autoReallocateLocked(retry func() *Rejection, p *Placement) (Placement, bool) {
	s.rejects++
	if s.reallocAfter <= 0 || s.rejects < s.reallocAfter {
		return Placement{}, false
	}
	s.rejects = 0
	if err := s.reallocateLocked(); err != nil {
		// The cold run rejected the committed taskset (bin packing is not
		// monotone); the streak was reset so the next rejection starts over.
		return Placement{}, false
	}
	if rej := retry(); rej != nil {
		return Placement{}, false
	}
	return *p, true
}

// AddRT try-admits a real-time task: the system's partition heuristic picks
// among the cores that (a) stay exact-RTA schedulable with t added and
// (b) keep every committed security task within its committed period under
// the grown interference. When no core qualifies the returned error is a
// *Rejection.
func (s *System) AddRT(t rts.RTTask) (Placement, error) {
	if err := t.Validate(); err != nil {
		return Placement{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.st.FlushMetrics()
	if _, dup := s.names[t.Name]; dup {
		return Placement{}, fmt.Errorf("%w: %q", ErrDuplicateName, t.Name)
	}
	p, rej, err := s.admitRTLocked(t)
	if err != nil {
		return Placement{}, err
	}
	if rej == nil {
		return p, nil
	}
	rej.Version = s.logEvent(Event{Type: EventReject, Task: t.Name, Kind: KindRT, Core: -1, Reason: rej.Error()})
	if p, ok := s.autoReallocateLocked(func() *Rejection { var r *Rejection; p, r, err = s.admitRTLocked(t); return r }, &p); ok && err == nil {
		return p, nil
	}
	return Placement{}, rej
}

// admitRTLocked runs one real-time admission trial on the committed state,
// committing and logging the admit on success. On a no-core-admits outcome
// it returns an unlogged Rejection; the error return is reserved for
// heuristic misconfiguration and internal inconsistencies. Callers hold s.mu.
func (s *System) admitRTLocked(t rts.RTTask) (Placement, *Rejection, error) {
	verdicts := make([]CoreVerdict, s.m)
	admits := func(c int) bool {
		if !s.st.TryAddRT(c, t) {
			verdicts[c] = CoreVerdict{Core: c, Reason: "real-time tasks would miss a deadline under exact RTA"}
			return false
		}
		if victim, ok := s.securityStaysFeasible(c, t); !ok {
			verdicts[c] = CoreVerdict{Core: c, Reason: fmt.Sprintf(
				"committed security task %q would miss its period %g ms (reallocate to re-tune periods)",
				victim.Task.Name, victim.Period)}
			return false
		}
		return true
	}
	chosen, err := partition.ChooseCore(s.heuristic, s.m, admits, s.st.RTUtil, &s.cursor)
	if err != nil {
		return Placement{}, nil, err
	}
	if chosen < 0 {
		rej := &Rejection{Task: t.Name, Kind: KindRT}
		for c := 0; c < s.m; c++ {
			if verdicts[c].Reason != "" {
				rej.Cores = append(rej.Cores, verdicts[c])
			}
		}
		return Placement{}, rej, nil
	}
	if !s.st.AddRT(chosen, t) {
		return Placement{}, nil, fmt.Errorf("online: internal: core %d admitted task %q on trial but refused the commit", chosen, t.Name)
	}
	s.rt = append(s.rt, PlacedRT{Task: t, Core: chosen})
	s.names[t.Name] = KindRT
	s.rejects = 0
	v := s.logEvent(Event{Type: EventAdmit, Task: t.Name, Kind: KindRT, Core: chosen})
	return Placement{Core: chosen, Version: v}, nil, nil
}

// securityStaysFeasible checks Eq. (6) for every committed security task on
// core c with the real-time load grown by t, walking the commit-order fold.
// It returns the first violated placement when the check fails.
func (s *System) securityStaysFeasible(c int, t rts.RTTask) (PlacedSec, bool) {
	load := s.st.RTLoad(c)
	load.AddRT(t)
	const tol = 1e-6
	for i := range s.sec {
		if s.sec[i].Core != c {
			continue
		}
		ts := s.sec[i].Period
		if s.sec[i].Task.C+load.LinearInterference(ts) > ts*(1+tol) {
			return s.sec[i], false
		}
		load.AddPeriodic(s.sec[i].Task.C, ts)
	}
	return PlacedSec{}, true
}

// Remove retires the named task. Real-time removals evict and cold-reseed
// the affected core's analysis state; security removals splice the committed
// interferer (later tasks keep their commit order and their — now looser —
// period contracts). It returns ErrNotFound for unknown names.
func (s *System) Remove(name string) (Removed, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.st.FlushMetrics()
	kind, ok := s.names[name]
	if !ok {
		return Removed{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	var corec int
	switch kind {
	case KindRT:
		for i := range s.rt {
			if s.rt[i].Task.Name == name {
				corec = s.rt[i].Core
				if !s.st.RemoveRT(corec, s.rt[i].Task) {
					return Removed{}, fmt.Errorf("online: internal: task %q missing from core %d analysis state", name, corec)
				}
				s.rt = append(s.rt[:i], s.rt[i+1:]...)
				break
			}
		}
	case KindSecurity:
		for i := range s.sec {
			if s.sec[i].Task.Name != name {
				continue
			}
			corec = s.sec[i].Core
			// Distinct tasks can share (C, period); tell the state which of
			// the equal interferers this one is (its ordinal among matching
			// commits on the core) so the fold order stays exact.
			ordinal := 0
			for j := 0; j < i; j++ {
				if s.sec[j].Core == corec && s.sec[j].Task.C == s.sec[i].Task.C && s.sec[j].Period == s.sec[i].Period {
					ordinal++
				}
			}
			if !s.st.RemoveSecurity(corec, s.sec[i].Task.C, s.sec[i].Period, ordinal) {
				return Removed{}, fmt.Errorf("online: internal: task %q missing from core %d interferer list", name, corec)
			}
			s.sec = append(s.sec[:i], s.sec[i+1:]...)
			break
		}
	}
	delete(s.names, name)
	v := s.logEvent(Event{Type: EventRemove, Task: name, Kind: kind, Core: corec})
	return Removed{Kind: kind, Core: corec, Version: v}, nil
}

// Reallocate re-runs the system's scheme from scratch on the current
// taskset — the escape hatch when incremental admission rejects (commit-order
// priorities and frozen period contracts are both looser than a cold run).
// On success the committed state is replaced by the cold allocation, which is
// byte-identical to allocating the same taskset on a fresh system; on
// failure (the heuristics can reject a taskset whose committed state is
// feasible — bin packing is not monotone) the committed state is untouched.
func (s *System) Reallocate() (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.st.FlushMetrics()
	if err := s.reallocateLocked(); err != nil {
		return Snapshot{}, err
	}
	return s.snapshotLocked(), nil
}

// reallocateLocked re-runs the scheme cold on the current taskset and logs
// the outcome; callers hold s.mu. A successful reallocation resets the
// rejection streak.
func (s *System) reallocateLocked() error {
	rt := make([]rts.RTTask, len(s.rt))
	for i := range s.rt {
		rt[i] = s.rt[i].Task
	}
	sec := make([]rts.SecurityTask, len(s.sec))
	for i := range s.sec {
		sec[i] = s.sec[i].Task
	}
	if err := s.commitColdAllocation(rt, sec, nil); err != nil {
		s.logEvent(Event{Type: EventReallocateReject, Core: -1, Reason: err.Error()})
		return fmt.Errorf("online: reallocate: %w (committed state unchanged)", err)
	}
	s.rejects = 0
	s.logEvent(Event{Type: EventReallocate, Core: -1,
		Reason: fmt.Sprintf("%d rt + %d security tasks, cumulative tightness %.6g", len(s.rt), len(s.sec), s.cumulativeLocked())})
	return nil
}

// cumulativeLocked sums weight * tightness over the committed security tasks
// (Eq. 3); callers hold s.mu.
func (s *System) cumulativeLocked() float64 {
	var sum float64
	for i := range s.sec {
		sum += s.sec[i].Task.EffectiveWeight() * s.sec[i].Tightness()
	}
	return sum
}

// Snapshot is a point-in-time copy of a system's committed state.
type Snapshot struct {
	ID        string
	Scheme    string
	Heuristic partition.Heuristic
	M         int
	Version   uint64
	RT        []PlacedRT
	Sec       []PlacedSec
	// Cumulative is the Eq. 3 weighted tightness over the committed
	// security tasks.
	Cumulative float64
}

// Snapshot returns a copy of the committed state.
func (s *System) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *System) snapshotLocked() Snapshot {
	return Snapshot{
		ID:         s.id,
		Scheme:     s.scheme,
		Heuristic:  s.heuristic,
		M:          s.m,
		Version:    s.version,
		RT:         append([]PlacedRT(nil), s.rt...),
		Sec:        append([]PlacedSec(nil), s.sec...),
		Cumulative: s.cumulativeLocked(),
	}
}

// PersistedState is everything beyond the creation parameters a restarted
// process needs to continue a system's decision sequence exactly where it
// stopped: the committed placements in commit order plus the internal
// decision-affecting counters (the event-version counter, the NextFit
// cursor, the auto-reallocate rejection streak). It is the payload of a
// persistence snapshot; RestoreSystem is its inverse.
type PersistedState struct {
	Version      uint64
	Cursor       int
	RejectStreak int
	RT           []PlacedRT
	Sec          []PlacedSec
}

// PersistedState snapshots the system for persistence.
func (s *System) PersistedState() PersistedState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return PersistedState{
		Version:      s.version,
		Cursor:       s.cursor,
		RejectStreak: s.rejects,
		RT:           append([]PlacedRT(nil), s.rt...),
		Sec:          append([]PlacedSec(nil), s.sec...),
	}
}

// RestoreSystem rebuilds a System from a persisted state without re-running
// any allocation: the analysis state is re-seeded from the committed
// placements in commit order — the same order an uninterrupted process
// maintains through its admissions and cold-reseeding removals — so every
// future decision (admit verdicts, period adaptations, Reallocate outcomes)
// and every future event version is identical to the never-restarted
// process's. No event is logged; the version counter resumes where the
// persisted state left it. reallocAfter restores the auto-reallocate knob.
func RestoreSystem(id, scheme string, h partition.Heuristic, m, reallocAfter int, ps PersistedState) (*System, error) {
	if scheme == "" {
		scheme = "hydra"
	}
	opts, ok := incrementalSchemes[scheme]
	if !ok {
		return nil, fmt.Errorf("online: scheme %q has no incremental admission step (supported: %s)",
			scheme, strings.Join(SupportedSchemes(), ", "))
	}
	if m <= 0 {
		return nil, fmt.Errorf("online: need at least one core, got %d", m)
	}
	if reallocAfter < 0 {
		reallocAfter = 0
	}
	names := make(map[string]TaskKind, len(ps.RT)+len(ps.Sec))
	for _, p := range ps.RT {
		if p.Core < 0 || p.Core >= m {
			return nil, fmt.Errorf("online: restore: rt task %q on invalid core %d of %d", p.Task.Name, p.Core, m)
		}
		if _, dup := names[p.Task.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateName, p.Task.Name)
		}
		names[p.Task.Name] = KindRT
	}
	for _, p := range ps.Sec {
		if p.Core < 0 || p.Core >= m {
			return nil, fmt.Errorf("online: restore: security task %q on invalid core %d of %d", p.Task.Name, p.Core, m)
		}
		if !(p.Period > 0) {
			return nil, fmt.Errorf("online: restore: security task %q has non-positive period %g", p.Task.Name, p.Period)
		}
		if _, dup := names[p.Task.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateName, p.Task.Name)
		}
		names[p.Task.Name] = KindSecurity
	}
	s := &System{
		id:           id,
		scheme:       scheme,
		opts:         opts,
		heuristic:    h,
		m:            m,
		st:           rts.NewAnalysisState(m),
		names:        names,
		maxEv:        defaultMaxEvents,
		changed:      make(chan struct{}),
		reallocAfter: reallocAfter,
		cursor:       ps.Cursor,
		version:      ps.Version,
		rejects:      ps.RejectStreak,
	}
	for _, p := range ps.RT {
		s.st.SeedRT(p.Core, p.Task)
		s.rt = append(s.rt, PlacedRT{Task: p.Task, Core: p.Core})
	}
	for _, p := range ps.Sec {
		s.sec = append(s.sec, PlacedSec{Task: p.Task, Core: p.Core, Period: p.Period})
		s.st.CommitSecurity(p.Core, p.Task.C, p.Period)
	}
	return s, nil
}
