package online

// EventType classifies one logged admission-control decision.
type EventType string

const (
	// EventCreate is the system's birth record (version 1).
	EventCreate EventType = "create"
	// EventAdmit records a task committed by AddRT or AddSecurity.
	EventAdmit EventType = "admit"
	// EventReject records an arrival no core admitted.
	EventReject EventType = "reject"
	// EventRemove records a task retired by Remove.
	EventRemove EventType = "remove"
	// EventReallocate records a successful full re-run of the scheme.
	EventReallocate EventType = "reallocate"
	// EventReallocateReject records a Reallocate whose cold run failed; the
	// committed state was kept.
	EventReallocateReject EventType = "reallocate-reject"
)

// defaultMaxEvents bounds the per-system event retention; older events are
// dropped from the log (versions stay monotone — consumers detect the gap).
const defaultMaxEvents = 1024

// Event is one entry of a system's decision log. Versions are assigned from
// a per-system monotone counter; every decision — including rejections —
// increments it, so the version doubles as a total mutation-attempt count.
type Event struct {
	Version   uint64    `json:"version"`
	Type      EventType `json:"type"`
	Task      string    `json:"task,omitempty"`
	Kind      TaskKind  `json:"kind,omitempty"`
	Core      int       `json:"core"` // -1 when no core applies
	PeriodMS  float64   `json:"period_ms,omitempty"`
	Tightness float64   `json:"tightness,omitempty"`
	Reason    string    `json:"reason,omitempty"`
}

// logEvent assigns the next version, appends to the bounded log, wakes
// watchers and feeds the registry sink. Callers hold s.mu (or own the system
// exclusively during construction). It returns the assigned version.
func (s *System) logEvent(e Event) uint64 {
	s.version++
	e.Version = s.version
	s.events = append(s.events, e)
	if len(s.events) > s.maxEv {
		// Trim the oldest half in one move so appends stay amortized O(1).
		keep := s.maxEv / 2
		s.events = append(s.events[:0], s.events[len(s.events)-keep:]...)
	}
	close(s.changed)
	s.changed = make(chan struct{})
	if s.onEvent != nil {
		s.onEvent(e)
	}
	return e.Version
}

// Wake wakes event watchers without logging anything. The registry calls it
// on deletion so follow-mode streams re-check liveness instead of blocking
// for an event that will never come.
func (s *System) Wake() {
	s.mu.Lock()
	close(s.changed)
	s.changed = make(chan struct{})
	s.mu.Unlock()
}

// Version returns the system's current (latest assigned) version.
func (s *System) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// EventsSince returns a copy of the retained events with Version > since, in
// version order, plus a channel closed on the next logged event — the
// snapshot-then-wait seam of the SSE stream.
func (s *System) EventsSince(since uint64) ([]Event, <-chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Event
	for _, e := range s.events {
		if e.Version > since {
			out = append(out, e)
		}
	}
	return out, s.changed
}
