package online_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"hydra/internal/core"
	"hydra/internal/online"
	"hydra/internal/partition"
	"hydra/internal/rts"
	"hydra/internal/stats"
	"hydra/internal/taskgen"
)

// benchmarkable base workload: small, schedulable, deterministic.
func baseWorkload(t testing.TB, m int, util float64, seed int64) *taskgen.Workload {
	t.Helper()
	rng := stats.SplitRNG(99, seed)
	w, err := taskgen.Generate(taskgen.DefaultParams(m, util), rng)
	if err != nil {
		t.Fatalf("generate workload: %v", err)
	}
	return w
}

// coldAllocation runs the scheme exactly like a fresh system creation would.
func coldAllocation(t *testing.T, scheme string, h partition.Heuristic, m int, rt []rts.RTTask, sec []rts.SecurityTask) ([]int, *core.Result) {
	t.Helper()
	p, err := partition.PartitionRT(rt, m, h)
	if err != nil {
		t.Fatalf("cold partition: %v", err)
	}
	in, err := core.NewInput(m, rt, p.CoreOf, sec)
	if err != nil {
		t.Fatal(err)
	}
	allocs, err := core.Resolve(scheme)
	if err != nil {
		t.Fatal(err)
	}
	return p.CoreOf, allocs[0].Allocate(in)
}

// assertMatchesCold checks a snapshot's committed placements are bit-identical
// to a cold allocation of the same taskset.
func assertMatchesCold(t *testing.T, snap online.Snapshot) {
	t.Helper()
	rt := make([]rts.RTTask, len(snap.RT))
	for i := range snap.RT {
		rt[i] = snap.RT[i].Task
	}
	sec := make([]rts.SecurityTask, len(snap.Sec))
	secIdx := map[string]int{}
	for i := range snap.Sec {
		sec[i] = snap.Sec[i].Task
		secIdx[snap.Sec[i].Task.Name] = i
	}
	part, res := coldAllocation(t, snap.Scheme, snap.Heuristic, snap.M, rt, sec)
	if !res.Schedulable {
		t.Fatalf("cold run rejects the committed taskset: %s", res.Reason)
	}
	for i := range snap.RT {
		if snap.RT[i].Core != part[i] {
			t.Fatalf("rt task %q on core %d, cold run puts it on %d", snap.RT[i].Task.Name, snap.RT[i].Core, part[i])
		}
	}
	for name, i := range secIdx {
		if snap.Sec[i].Core != res.Assignment[i] || snap.Sec[i].Period != res.Periods[i] {
			t.Fatalf("security task %q: committed (core %d, period %g), cold run (core %d, period %g)",
				name, snap.Sec[i].Core, snap.Sec[i].Period, res.Assignment[i], res.Periods[i])
		}
	}
	if snap.Cumulative != res.Cumulative {
		t.Fatalf("cumulative tightness %g, cold run %g", snap.Cumulative, res.Cumulative)
	}
}

// TestCreateMatchesColdRun: a fresh system's committed state is exactly the
// cold allocation of its initial taskset.
func TestCreateMatchesColdRun(t *testing.T) {
	for seed := int64(1); seed < 8; seed++ {
		w := baseWorkload(t, 2, 1.0, seed)
		s, err := online.NewSystem("t", "hydra", partition.BestFit, 2, w.RT, nil, w.Sec)
		if err != nil {
			continue // infeasible draw: creation correctly failed
		}
		assertMatchesCold(t, s.Snapshot())
	}
}

// TestUnsupportedSchemeRejected: schemes without an incremental admission
// step are refused at creation with a message listing the supported set.
func TestUnsupportedSchemeRejected(t *testing.T) {
	for _, scheme := range []string{"opt", "singlecore", "hydra-np", "partition-best-fit", "bogus"} {
		if _, err := online.NewSystem("t", scheme, partition.BestFit, 2, nil, nil, nil); err == nil {
			t.Fatalf("scheme %q must be rejected", scheme)
		}
	}
	for _, scheme := range online.SupportedSchemes() {
		if _, err := online.NewSystem("t", scheme, partition.BestFit, 2, nil, nil, nil); err != nil {
			t.Fatalf("supported scheme %q rejected: %v", scheme, err)
		}
	}
}

// checkCommittedFeasible re-derives every committed security task's Eq. (6)
// test from scratch (fresh folds, commit order) — the invariant every
// mutation must preserve.
func checkCommittedFeasible(t *testing.T, snap online.Snapshot) {
	t.Helper()
	perCore := make([][]rts.RTTask, snap.M)
	for _, p := range snap.RT {
		perCore[p.Core] = append(perCore[p.Core], p.Task)
	}
	loads := make([]rts.CoreLoad, snap.M)
	for c := range perCore {
		if !rts.CoreSchedulable(perCore[c]) {
			t.Fatalf("core %d not RT-schedulable", c)
		}
		for _, task := range perCore[c] {
			loads[c].AddRT(task)
		}
	}
	for _, p := range snap.Sec {
		if p.Task.C+loads[p.Core].LinearInterference(p.Period) > p.Period*(1+1e-6) {
			t.Fatalf("security task %q violates Eq. 6 on core %d", p.Task.Name, p.Core)
		}
		loads[p.Core].AddPeriodic(p.Task.C, p.Period)
	}
}

// TestChurnThenReallocateMatchesCold is the acceptance-criterion test: a
// remove/readd/reallocate sequence lands on a committed state byte-identical
// to a cold run of the scheme on the surviving taskset.
func TestChurnThenReallocateMatchesCold(t *testing.T) {
	w := baseWorkload(t, 2, 0.9, 3)
	s, err := online.NewSystem("churn", "hydra", partition.BestFit, 2, w.RT, nil, w.Sec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	rng := stats.SplitRNG(7, 7)
	added := 0
	for op := 0; op < 60; op++ {
		snap := s.Snapshot()
		if len(snap.Sec) > 0 && rng.Float64() < 0.4 {
			victim := snap.Sec[rng.Intn(len(snap.Sec))].Task.Name
			if _, err := s.Remove(victim); err != nil {
				t.Fatalf("remove %q: %v", victim, err)
			}
		} else {
			tdes := 1000 + 2000*rng.Float64()
			task := rts.SecurityTask{
				Name: fmt.Sprintf("dyn%03d", op),
				C:    (0.002 + 0.03*rng.Float64()) * tdes,
				TDes: tdes,
				TMax: 10 * tdes,
			}
			if _, err := s.AddSecurity(task); err != nil {
				var rej *online.Rejection
				if !errors.As(err, &rej) {
					t.Fatalf("add: %v", err)
				}
			} else {
				added++
			}
		}
		checkCommittedFeasible(t, s.Snapshot())
	}
	if added == 0 {
		t.Fatal("no dynamic task was ever admitted; test exercises nothing")
	}
	snap, err := s.Reallocate()
	if err != nil {
		t.Fatalf("reallocate: %v", err)
	}
	assertMatchesCold(t, snap)
	checkCommittedFeasible(t, snap)
	// A second reallocate is a fixed point: same committed state again.
	again, err := s.Reallocate()
	if err != nil {
		t.Fatalf("second reallocate: %v", err)
	}
	again.Version = snap.Version
	if fmt.Sprintf("%+v", again) != fmt.Sprintf("%+v", snap) {
		t.Fatal("reallocate is not a fixed point")
	}
}

// TestRemoveDistinguishesEqualValuedSecurityTasks: two distinct committed
// security tasks sharing (C, adapted period) on one core — removing the
// later one must keep the earlier one's commit-order position, so exact-RTA
// probes stay bit-identical to a system that never saw the removed task.
func TestRemoveDistinguishesEqualValuedSecurityTasks(t *testing.T) {
	rt := []rts.RTTask{rts.NewRTTask("ctl", 2, 20)}
	mk := func(name string) rts.SecurityTask {
		return rts.SecurityTask{Name: name, C: 5, TDes: 500, TMax: 5000}
	}
	build := func(secs ...string) *online.System {
		s, err := online.NewSystem("t", "hydra", partition.BestFit, 1, rt, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range secs {
			if _, err := s.AddSecurity(mk(name)); err != nil {
				t.Fatalf("add %s: %v", name, err)
			}
			// An in-between distinct task so the duplicates are not adjacent.
			if name == "twin-a" {
				if _, err := s.AddSecurity(rts.SecurityTask{Name: "mid", C: 3, TDes: 700, TMax: 7000}); err != nil {
					t.Fatal(err)
				}
			}
		}
		return s
	}
	s := build("twin-a", "twin-b")
	if _, err := s.Remove("twin-b"); err != nil {
		t.Fatal(err)
	}
	ref := build("twin-a")
	got, _ := json.Marshal(s.Snapshot().Sec)
	want, _ := json.Marshal(ref.Snapshot().Sec)
	if !bytes.Equal(got, want) {
		t.Fatalf("after removing twin-b:\n%s\nwant\n%s", got, want)
	}
	// The committed analysis state must agree with the reference on further
	// admissions (same folds, same interferer order).
	pa, err1 := s.AddSecurity(rts.SecurityTask{Name: "probe", C: 4, TDes: 600, TMax: 6000})
	pb, err2 := ref.AddSecurity(rts.SecurityTask{Name: "probe", C: 4, TDes: 600, TMax: 6000})
	if (err1 == nil) != (err2 == nil) || pa.Core != pb.Core || pa.Period != pb.Period {
		t.Fatalf("post-removal admission diverges: (%+v, %v) vs (%+v, %v)", pa, err1, pb, err2)
	}
}

// TestPinnedPartitionHonored: a caller-pinned RT partition seeds the
// committed placements verbatim (where the heuristic would choose
// differently), and an unschedulable or malformed pin is rejected.
func TestPinnedPartitionHonored(t *testing.T) {
	rt := []rts.RTTask{rts.NewRTTask("a", 1, 10), rts.NewRTTask("b", 1, 10)}
	s, err := online.NewSystem("t", "hydra", partition.BestFit, 2, rt, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.RT[0].Core != 0 || snap.RT[1].Core != 1 {
		t.Fatalf("pinned placement not honored: %+v", snap.RT)
	}
	// Best-fit would have packed both on core 0; prove the pin overrode it.
	auto, err := online.NewSystem("t", "hydra", partition.BestFit, 2, rt, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if autoSnap := auto.Snapshot(); autoSnap.RT[0].Core != autoSnap.RT[1].Core {
		t.Fatalf("premise broken: heuristic no longer co-locates: %+v", autoSnap.RT)
	}
	// Unschedulable pin: two 60%-utilization tasks forced onto one core.
	heavy := []rts.RTTask{rts.NewRTTask("x", 6, 10), rts.NewRTTask("y", 6, 10)}
	if _, err := online.NewSystem("t", "hydra", partition.BestFit, 2, heavy, []int{0, 0}, nil); err == nil {
		t.Fatal("unschedulable pinned partition must be rejected")
	}
	if _, err := online.NewSystem("t", "hydra", partition.BestFit, 2, rt, []int{0}, nil); err == nil {
		t.Fatal("short pinned partition must be rejected")
	}
	if _, err := online.NewSystem("t", "hydra", partition.BestFit, 2, rt, []int{0, 5}, nil); err == nil {
		t.Fatal("out-of-range pinned core must be rejected")
	}
}

// TestRemoveRTColdReseed: removing a real-time task frees capacity that a
// subsequent admission can use, and the committed folds match a from-scratch
// derivation.
func TestRemoveRTColdReseed(t *testing.T) {
	rt := []rts.RTTask{
		rts.NewRTTask("heavy", 6, 10),
		rts.NewRTTask("light", 1, 100),
	}
	s, err := online.NewSystem("t", "hydra", partition.BestFit, 1, rt, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	probe := rts.NewRTTask("probe", 5, 10)
	if _, err := s.AddRT(probe); err == nil {
		t.Fatal("probe must not fit while heavy is committed")
	}
	if _, err := s.Remove("heavy"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddRT(probe); err != nil {
		t.Fatalf("probe must fit after removal: %v", err)
	}
	if _, err := s.Remove("nope"); !errors.Is(err, online.ErrNotFound) {
		t.Fatalf("removing an unknown task: err = %v, want ErrNotFound", err)
	}
}

// TestAddRTGuardsCommittedSecurityPeriods: an RT arrival that would push a
// committed (tightly adapted) security task past its period contract is
// rejected with a structured verdict naming the task, and a reallocate
// admits it by re-tuning the periods.
func TestAddRTGuardsCommittedSecurityPeriods(t *testing.T) {
	rt := []rts.RTTask{rts.NewRTTask("ctl", 5, 20)}
	sec := []rts.SecurityTask{{Name: "tw", C: 50, TDes: 60, TMax: 10000}}
	s, err := online.NewSystem("t", "hydra", partition.BestFit, 1, rt, nil, sec)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Sec[0].Period <= snap.Sec[0].Task.TDes {
		t.Fatalf("setup: expected a tightly adapted period, got %g", snap.Sec[0].Period)
	}
	_, err = s.AddRT(rts.NewRTTask("nav", 4, 40))
	var rej *online.Rejection
	if !errors.As(err, &rej) {
		t.Fatalf("want *Rejection, got %v", err)
	}
	if rej.Kind != online.KindRT || len(rej.Cores) != 1 || rej.Cores[0].Core != 0 {
		t.Fatalf("unexpected rejection shape: %+v", rej)
	}
	if want := `committed security task "tw"`; !bytes.Contains([]byte(rej.Cores[0].Reason), []byte(want)) {
		t.Fatalf("verdict %q does not name the violated task", rej.Cores[0].Reason)
	}
}

// TestSecurityRejectionStructured pins the per-core verdicts of a security
// rejection.
func TestSecurityRejectionStructured(t *testing.T) {
	rt := []rts.RTTask{rts.NewRTTask("a", 9, 10), rts.NewRTTask("b", 9, 10)}
	s, err := online.NewSystem("t", "hydra", partition.BestFit, 2, rt, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.AddSecurity(rts.SecurityTask{Name: "fat", C: 90, TDes: 100, TMax: 120})
	var rej *online.Rejection
	if !errors.As(err, &rej) {
		t.Fatalf("want *Rejection, got %v", err)
	}
	if len(rej.Cores) != 2 || rej.Cores[0].Core != 0 || rej.Cores[1].Core != 1 {
		t.Fatalf("want one verdict per core, got %+v", rej.Cores)
	}
	if rej.Version == 0 {
		t.Fatal("rejection must carry its event version")
	}
}

// opScript applies a deterministic op sequence; used twice to prove replay
// determinism.
func opScript(t *testing.T, s *online.System, seed int64) {
	t.Helper()
	rng := stats.SplitRNG(55, seed)
	for op := 0; op < 40; op++ {
		switch {
		case op%7 == 3:
			snap := s.Snapshot()
			if len(snap.Sec) > 0 {
				if _, err := s.Remove(snap.Sec[rng.Intn(len(snap.Sec))].Task.Name); err != nil {
					t.Fatal(err)
				}
			}
		case op%11 == 5:
			if _, err := s.Reallocate(); err != nil {
				t.Fatal(err)
			}
		default:
			tdes := 1000 + 2000*rng.Float64()
			task := rts.SecurityTask{
				Name: fmt.Sprintf("dyn%03d", op),
				C:    (0.002 + 0.02*rng.Float64()) * tdes,
				TDes: tdes,
				TMax: 10 * tdes,
			}
			_, err := s.AddSecurity(task)
			var rej *online.Rejection
			if err != nil && !errors.As(err, &rej) {
				t.Fatal(err)
			}
		}
	}
}

// TestSerializedReplayDeterminism: the same op sequence on two fresh systems
// produces byte-identical snapshots and event logs.
func TestSerializedReplayDeterminism(t *testing.T) {
	w := baseWorkload(t, 2, 0.8, 11)
	run := func() ([]byte, []byte) {
		s, err := online.NewSystem("replay", "hydra-least-loaded", partition.BestFit, 2, w.RT, nil, w.Sec)
		if err != nil {
			t.Fatal(err)
		}
		opScript(t, s, 1)
		snap, _ := json.Marshal(s.Snapshot())
		events, _ := s.EventsSince(0)
		ev, _ := json.Marshal(events)
		return snap, ev
	}
	snap1, ev1 := run()
	snap2, ev2 := run()
	if !bytes.Equal(snap1, snap2) {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", snap1, snap2)
	}
	if !bytes.Equal(ev1, ev2) {
		t.Fatalf("event logs differ:\n%s\nvs\n%s", ev1, ev2)
	}
}

// TestConcurrentAdmitsHammer fires concurrent adds/removes at one system
// (run with -race): per-system locking must serialize them into a contiguous
// monotone event log, duplicate names must collapse to exactly one admit,
// and the final committed state must verify from scratch.
func TestConcurrentAdmitsHammer(t *testing.T) {
	w := baseWorkload(t, 2, 0.6, 21)
	s, err := online.NewSystem("hammer", "hydra", partition.BestFit, 2, w.RT, nil, w.Sec)
	if err != nil {
		t.Fatal(err)
	}
	base := s.Version()
	const goroutines = 16
	var admitsOfShared int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Everybody races to add the same task name...
			if _, err := s.AddSecurity(rts.SecurityTask{Name: "shared", C: 0.5, TDes: 2000, TMax: 20000}); err == nil {
				mu.Lock()
				admitsOfShared++
				mu.Unlock()
			} else if !errors.Is(err, online.ErrDuplicateName) {
				var rej *online.Rejection
				if !errors.As(err, &rej) {
					t.Errorf("goroutine %d: %v", g, err)
				}
			}
			// ...then churns its own tasks.
			name := fmt.Sprintf("g%02d", g)
			if _, err := s.AddSecurity(rts.SecurityTask{Name: name, C: 0.2, TDes: 2500, TMax: 25000}); err == nil {
				if _, err := s.Remove(name); err != nil {
					t.Errorf("goroutine %d remove: %v", g, err)
				}
			}
		}(g)
	}
	wg.Wait()
	if admitsOfShared != 1 {
		t.Fatalf("shared task admitted %d times, want exactly 1", admitsOfShared)
	}
	events, _ := s.EventsSince(base)
	for i := 1; i < len(events); i++ {
		if events[i].Version != events[i-1].Version+1 {
			t.Fatalf("event versions not contiguous: %d then %d", events[i-1].Version, events[i].Version)
		}
	}
	if s.Version() != base+uint64(len(events)) {
		t.Fatalf("version %d does not match %d logged events after %d", s.Version(), len(events), base)
	}
	checkCommittedFeasible(t, s.Snapshot())
}

// fragmentedSystem builds the canonical defragmentation scenario on two
// cores under first-feasible packing: a2 and a3 end up on different cores
// after a removal, so a big arrival with a narrow period window fits neither
// core warm, while a cold re-pack stacks a2+a3 together and frees a core.
func fragmentedSystem(t *testing.T, reallocAfter int) *online.System {
	t.Helper()
	s, err := online.NewSystem("frag", "hydra-first-feasible", partition.BestFit, 2, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.SetReallocateAfter(reallocAfter)
	for _, task := range []rts.SecurityTask{
		{Name: "a1", C: 10, TDes: 50, TMax: 300},
		{Name: "a2", C: 30, TDes: 100, TMax: 300},
		{Name: "a3", C: 60, TDes: 100, TMax: 130},
	} {
		if _, err := s.AddSecurity(task); err != nil {
			t.Fatalf("admit %s: %v", task.Name, err)
		}
	}
	if _, err := s.Remove("a1"); err != nil {
		t.Fatal(err)
	}
	return s
}

// bigArrival is the admission that fails on the fragmented warm state but
// succeeds after a reallocation re-packs a2+a3 onto one core.
var bigArrival = rts.SecurityTask{Name: "b", C: 70, TDes: 100, TMax: 130}

// TestReallocateUnlocksRejectedAdmit pins the escape-hatch claim directly:
// the fragmented state rejects the arrival, an explicit Reallocate re-packs
// the committed tasks, and the identical arrival then admits.
func TestReallocateUnlocksRejectedAdmit(t *testing.T) {
	s := fragmentedSystem(t, 0)
	var rej *online.Rejection
	if _, err := s.AddSecurity(bigArrival); !errors.As(err, &rej) {
		t.Fatalf("warm admit: got %v, want a rejection", err)
	}
	if _, err := s.Reallocate(); err != nil {
		t.Fatal(err)
	}
	p, err := s.AddSecurity(bigArrival)
	if err != nil {
		t.Fatalf("post-reallocate admit: %v", err)
	}
	if p.Period != 100 {
		t.Fatalf("post-reallocate placement %+v, want period 100", p)
	}
	checkCommittedFeasible(t, s.Snapshot())
}

// TestAutoReallocateAfterRejects covers the ReallocateAfter policy knob: with
// the threshold at 1, the rejected arrival triggers reallocate-and-retry
// inside AddSecurity itself and the caller sees a clean admit, with the
// decision log reading reject -> reallocate -> admit at contiguous versions.
func TestAutoReallocateAfterRejects(t *testing.T) {
	s := fragmentedSystem(t, 1)
	if got := s.ReallocateAfter(); got != 1 {
		t.Fatalf("ReallocateAfter() = %d, want 1", got)
	}
	base := s.Version()
	p, err := s.AddSecurity(bigArrival)
	if err != nil {
		t.Fatalf("auto-reallocate admit: %v", err)
	}
	events, _ := s.EventsSince(base)
	if len(events) != 3 ||
		events[0].Type != online.EventReject ||
		events[1].Type != online.EventReallocate ||
		events[2].Type != online.EventAdmit {
		t.Fatalf("event sequence %+v, want reject/reallocate/admit", events)
	}
	if p.Version != events[2].Version || events[2].Version != base+3 {
		t.Fatalf("admit version %d, want %d", p.Version, base+3)
	}
	checkCommittedFeasible(t, s.Snapshot())
}

// TestAutoReallocateThresholdAndStreak: below the threshold nothing happens;
// admits reset the rejection streak; and when the retry still rejects (an
// RT-frozen core a reallocation cannot unfreeze — the security period
// re-tightens to the same value), the caller gets the original rejection.
func TestAutoReallocateThresholdAndStreak(t *testing.T) {
	s := fragmentedSystem(t, 3)
	base := s.Version()
	// Two rejections stay below the threshold: no reallocate event.
	for i := 0; i < 2; i++ {
		if _, err := s.AddSecurity(bigArrival); err == nil {
			t.Fatal("warm admit must reject")
		}
	}
	events, _ := s.EventsSince(base)
	for _, e := range events {
		if e.Type == online.EventReallocate {
			t.Fatalf("reallocated below threshold: %+v", events)
		}
	}
	// An admit resets the streak, so two more rejections still stay below.
	if _, err := s.AddSecurity(rts.SecurityTask{Name: "small", C: 1, TDes: 400, TMax: 500}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.AddSecurity(bigArrival); err == nil {
			t.Fatal("warm admit must reject")
		}
	}
	events, _ = s.EventsSince(base)
	for _, e := range events {
		if e.Type == online.EventReallocate {
			t.Fatalf("streak not reset by admit: %+v", events)
		}
	}

	// A frozen single core: the security period is interference-bound, so a
	// reallocation re-derives the same tight period and the RT retry fails
	// again — the caller sees the original rejection, after a logged
	// reallocate attempt.
	frozen, err := online.NewSystem("frozen", "hydra", partition.BestFit, 1,
		[]rts.RTTask{{Name: "r0", C: 30, T: 100, D: 100}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	frozen.SetReallocateAfter(1)
	// The RT interference pushes the adapted period above TDes, so the
	// minimal feasible period binds exactly — zero slack.
	if _, err := frozen.AddSecurity(rts.SecurityTask{Name: "tight", C: 10, TDes: 50, TMax: 1000}); err != nil {
		t.Fatal(err)
	}
	base = frozen.Version()
	var rej *online.Rejection
	if _, err := frozen.AddRT(rts.RTTask{Name: "r", C: 1, T: 100, D: 100}); !errors.As(err, &rej) {
		t.Fatalf("frozen-core rt admit: got %v, want a rejection", err)
	}
	events, _ = frozen.EventsSince(base)
	if len(events) != 2 || events[0].Type != online.EventReject || events[1].Type != online.EventReallocate {
		t.Fatalf("event sequence %+v, want reject then reallocate", events)
	}
	checkCommittedFeasible(t, frozen.Snapshot())
}
