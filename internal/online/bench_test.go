package online_test

import (
	"testing"

	"hydra/internal/core"
	"hydra/internal/online"
	"hydra/internal/partition"
	"hydra/internal/rts"
)

// BenchmarkOnlineAdmit compares the two ways of answering "can this system
// take one more security task":
//
//   - incremental: AddSecurity on a warm system (an O(M) period-adaptation
//     trial against the committed folds) followed by Remove, so the system
//     returns to its starting state every iteration;
//   - cold: a full cold allocation of the same taskset plus the probe task —
//     repartition the real-time tasks, re-run the scheme over every security
//     task — which is what the stateless /v1/allocate path has to do.
//
// The acceptance bar for the online subsystem is incremental >= 3x faster
// than cold; both series feed the benchjson -compare gate via
// BENCH_serve.json.
func BenchmarkOnlineAdmit(b *testing.B) {
	const m = 4
	w := baseWorkload(b, m, 0.5*m, 5)
	probe := rts.SecurityTask{Name: "probe", C: 2, TDes: 1500, TMax: 15000}

	b.Run("incremental", func(b *testing.B) {
		sys, err := online.NewSystem("bench", "hydra", partition.BestFit, m, w.RT, nil, w.Sec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.AddSecurity(probe); err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Remove(probe.Name); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("cold", func(b *testing.B) {
		sec := append(append([]rts.SecurityTask(nil), w.Sec...), probe)
		alloc := core.MustLookup("hydra")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := partition.PartitionRT(w.RT, m, partition.BestFit)
			if err != nil {
				b.Fatal(err)
			}
			in, err := core.NewInput(m, w.RT, p.CoreOf, sec)
			if err != nil {
				b.Fatal(err)
			}
			if r := alloc.Allocate(in); !r.Schedulable {
				b.Fatalf("cold allocation infeasible: %s", r.Reason)
			}
		}
	})
}
