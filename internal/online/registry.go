package online

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"regexp"
	"sort"
	"sync"

	"hydra/internal/partition"
	"hydra/internal/rts"
)

// Counters aggregates registry activity for /v1/stats: gauges over the live
// systems plus monotone decision counters fed by every hosted system's event
// log (they keep counting for systems that are later deleted).
type Counters struct {
	Active        int    `json:"active"`
	Created       uint64 `json:"created"`
	Deleted       uint64 `json:"deleted"`
	Admitted      uint64 `json:"admitted"`
	Rejected      uint64 `json:"rejected"`
	Removed       uint64 `json:"removed"`
	Reallocations uint64 `json:"reallocations"`
	Events        uint64 `json:"events"`
}

// Registry hosts the long-lived systems of one server process.
type Registry struct {
	mu      sync.Mutex
	systems map[string]*System
	max     int

	created, deleted, admitted, rejected, removed, realloc, events uint64
}

// idPattern restricts caller-chosen system ids to path- and log-safe names.
var idPattern = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// ErrSystemExists is returned by Create for an id already in use — a
// conflict with existing state, not a malformed request.
var ErrSystemExists = fmt.Errorf("online: system id already in use")

// ErrRegistryFull is returned by Create when the live-system bound is
// reached; the request is well-formed, capacity is the problem.
var ErrRegistryFull = fmt.Errorf("online: registry full")

// NewRegistry builds a registry bounded to max live systems (<= 0 selects 64).
func NewRegistry(max int) *Registry {
	if max <= 0 {
		max = 64
	}
	return &Registry{systems: map[string]*System{}, max: max}
}

// Create builds a new system (see NewSystem) and registers it. An empty id
// draws a random one; a caller-chosen id must match [a-zA-Z0-9._-]{1,64}
// (starting alphanumeric) and be unused.
func (r *Registry) Create(id, scheme string, h partition.Heuristic, m int, rt []rts.RTTask, part []int, sec []rts.SecurityTask) (*System, error) {
	if id == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, err
		}
		id = hex.EncodeToString(b[:])
	} else if !idPattern.MatchString(id) {
		return nil, fmt.Errorf("online: invalid system id %q (want 1-64 chars of [a-zA-Z0-9._-], starting alphanumeric)", id)
	}
	r.mu.Lock()
	if len(r.systems) >= r.max {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w (%d systems); delete one first", ErrRegistryFull, r.max)
	}
	if _, dup := r.systems[id]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrSystemExists, id)
	}
	// Reserve the id while the (lock-free) cold allocation runs.
	r.systems[id] = nil
	r.mu.Unlock()

	s, err := NewSystem(id, scheme, h, m, rt, part, sec)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		delete(r.systems, id)
		return nil, err
	}
	s.onEvent = r.countEvent
	r.events++ // NewSystem logged its create event before the sink was attached
	r.systems[id] = s
	r.created++
	return s, nil
}

// countEvent folds one system event into the registry counters. It is called
// under the emitting system's lock; it takes only the registry lock (lock
// order: system before registry, never the reverse).
func (r *Registry) countEvent(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events++
	switch e.Type {
	case EventAdmit:
		r.admitted++
	case EventReject:
		r.rejected++
	case EventRemove:
		r.removed++
	case EventReallocate:
		r.realloc++
	}
}

// Get returns the system with the given id.
func (r *Registry) Get(id string) (*System, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.systems[id]
	if s == nil {
		return nil, false // reserved id mid-creation counts as absent
	}
	return s, ok
}

// Delete removes a system from the registry. Its in-flight operations finish
// normally; watchers of its event stream observe no further events.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	s, ok := r.systems[id]
	if !ok || s == nil {
		r.mu.Unlock()
		return false
	}
	delete(r.systems, id)
	r.deleted++
	r.mu.Unlock()
	// Outside r.mu: the lock order is system before registry (countEvent),
	// never the reverse.
	s.Wake()
	return true
}

// List returns the live systems sorted by id.
func (r *Registry) List() []*System {
	r.mu.Lock()
	out := make([]*System, 0, len(r.systems))
	for _, s := range r.systems {
		if s != nil {
			out = append(out, s)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// Counters snapshots the registry counters.
func (r *Registry) Counters() Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	active := 0
	for _, s := range r.systems {
		if s != nil {
			active++
		}
	}
	return Counters{
		Active:        active,
		Created:       r.created,
		Deleted:       r.deleted,
		Admitted:      r.admitted,
		Rejected:      r.rejected,
		Removed:       r.removed,
		Reallocations: r.realloc,
		Events:        r.events,
	}
}
