package engine

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"hydra/internal/stats"
)

// drawGrid runs a tiny grid whose cells just report their first draw — the
// most direct probe of which RNG family the engine handed each cell.
func drawGrid(t *testing.T, opts Options) []float64 {
	t.Helper()
	cells := []int{0, 1, 2, 3, 4, 5, 6, 7}
	out, err := Run(context.Background(), cells, func(ctx context.Context, idx int, rng *rand.Rand, cell int) (float64, error) {
		return rng.Float64(), nil
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// A zero Options.ResultsVersion must keep replaying the historical v1
// streams: existing callers (and old checkpoints) cannot have their draws
// move under them just because a newer default exists.
func TestEngineZeroVersionIsV1(t *testing.T) {
	implicit := drawGrid(t, Options{Workers: 1, Seed: 7})
	explicit := drawGrid(t, Options{Workers: 1, Seed: 7, ResultsVersion: stats.RNGv1})
	if !reflect.DeepEqual(implicit, explicit) {
		t.Fatal("zero ResultsVersion drew differently from explicit v1")
	}
	// And the streams really are the historical stats.SplitRNG ones.
	for idx, got := range implicit {
		if want := stats.SplitRNG(7, int64(idx)).Float64(); got != want {
			t.Fatalf("cell %d: draw %v, want historical v1 draw %v", idx, got, want)
		}
	}
}

// v2 is a genuinely different generator family, not a relabeling: the same
// (seed, stream) grid must produce different draws, and v2 itself must be
// deterministic across worker counts like v1 always was.
func TestEngineV2DiffersAndStaysDeterministic(t *testing.T) {
	v1 := drawGrid(t, Options{Workers: 1, Seed: 7, ResultsVersion: stats.RNGv1})
	v2 := drawGrid(t, Options{Workers: 1, Seed: 7, ResultsVersion: stats.RNGv2})
	if reflect.DeepEqual(v1, v2) {
		t.Fatal("v1 and v2 produced identical draws — the version is not routing the generator")
	}
	v2wide := drawGrid(t, Options{Workers: 8, Seed: 7, ResultsVersion: stats.RNGv2})
	if !reflect.DeepEqual(v2, v2wide) {
		t.Fatal("v2 draws differ across worker counts")
	}
}

// An unknown version is an explicit Run error — never a silent fallback that
// would quietly move every stream in the grid.
func TestEngineRejectsUnknownVersion(t *testing.T) {
	_, err := Run(context.Background(), []int{0}, func(ctx context.Context, idx int, rng *rand.Rand, cell int) (float64, error) {
		return rng.Float64(), nil
	}, Options{Workers: 1, Seed: 7, ResultsVersion: 9})
	if err == nil || !strings.Contains(err.Error(), "results_version") {
		t.Fatalf("unknown version: err = %v, want explicit results_version error", err)
	}
}
