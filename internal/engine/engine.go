// Package engine provides the deterministic parallel grid runner behind the
// experiment drivers. The evaluation of the paper — and every scaling sweep
// beyond it — has the same shape: a large grid of independent cells
// (scheme × platform size × taskset draw), each cheap to evaluate, whose
// results are aggregated into figures. Run executes such a grid on a bounded
// worker pool while guaranteeing that the output is byte-identical regardless
// of worker count or goroutine scheduling:
//
//   - every cell receives its own RNG, derived from the run seed and the
//     cell's stream label (never from shared rand state), so a cell's draw
//     does not depend on which worker executes it or in what order;
//   - results are collected positionally, so the returned slice is in cell
//     order no matter which cells finished first.
//
// The cell function must be pure modulo its RNG: it must not read or write
// state shared with other cells.
package engine

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"hydra/internal/stats"
)

// Options tunes a Run.
type Options struct {
	// Workers bounds the number of concurrently executing cells.
	// Zero or negative selects runtime.GOMAXPROCS(0).
	Workers int
	// Seed is the base RNG seed for the run. Each cell gets an independent
	// generator split from (Seed, Stream(idx)).
	Seed int64
	// Stream labels the RNG stream of each cell; nil defaults to the cell
	// index. Drivers use explicit labels to keep streams stable when the
	// grid is resized (e.g. label by (utilization level, taskset draw) so
	// adding a utilization level does not reshuffle every draw), or to share
	// a workload stream across comparison arms.
	Stream func(idx int) int64
	// Precomputed, when non-nil, supplies results for cells that were
	// already evaluated (e.g. replayed from a campaign checkpoint). A cell
	// for which it returns ok is not scheduled onto a worker and keeps the
	// supplied value; the value must have the Run's result type R, or the
	// cell fails with an error. Because every cell draws its RNG from the
	// run seed and its own stream label — never from shared state — skipping
	// cells cannot perturb the draws of the cells that do run, which is what
	// makes checkpoint/resume byte-identical to an uninterrupted run.
	Precomputed func(idx int) (any, bool)
	// OnCell, when non-nil, is called after each freshly evaluated cell
	// with its index and result (type R). It is not called for precomputed
	// or failed cells. Calls may come concurrently from multiple worker
	// goroutines; the callback must synchronize internally.
	OnCell func(idx int, result any)
	// ResultsVersion selects the generator family behind every cell RNG
	// (stats.RNGVersion): v1 = the historical math/rand streams, v2 = the
	// splittable SplitMix64 generator. Zero selects v1, so existing callers'
	// draws never move; any other unknown version fails the Run explicitly —
	// a version mismatch must never become a silent stream change.
	ResultsVersion stats.RNGVersion
}

// Run evaluates fn over every cell on a bounded worker pool and returns the
// results in cell order. It stops early when ctx is cancelled or any cell
// fails; the first error (by cell index, deterministically) is returned.
// Cells still in flight when an error occurs are allowed to finish, but no
// new cells are started.
func Run[C, R any](ctx context.Context, cells []C, fn func(ctx context.Context, idx int, rng *rand.Rand, cell C) (R, error), opts Options) ([]R, error) {
	if len(cells) == 0 {
		return []R{}, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	stream := opts.Stream
	if stream == nil {
		stream = func(idx int) int64 { return int64(idx) }
	}
	version := opts.ResultsVersion
	if version == 0 {
		version = stats.LegacyResultsVersion
	}
	if _, err := stats.ParseResultsVersion(int(version)); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]R, len(cells))
	errs := make([]error, len(cells))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				// Re-check cancellation per cell: the feed's send can race
				// with ctx.Done in its select, so a cancelled run may still
				// hand out queued cells. Skipping them here guarantees no
				// cell *starts* after cancellation — a cancelled Run returns
				// within the work of the cells already in flight.
				if ctx.Err() != nil {
					continue
				}
				rng := stats.VersionedRNG(version, opts.Seed, stream(idx))
				r, err := fn(ctx, idx, rng, cells[idx])
				if err != nil {
					errs[idx] = err
					cancel() // stop feeding new cells
					continue
				}
				results[idx] = r
				if opts.OnCell != nil {
					opts.OnCell(idx, r)
				}
			}
		}()
	}

feed:
	for i := range cells {
		if opts.Precomputed != nil {
			if v, ok := opts.Precomputed(i); ok {
				// Writes race with nothing: each index is owned either by
				// the feed (precomputed) or by exactly one worker (fresh).
				if r, ok := v.(R); ok {
					results[i] = r
				} else {
					errs[i] = fmt.Errorf("precomputed result has type %T, want %T", v, results[i])
					cancel()
				}
				continue
			}
		}
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: cell %d: %w", i, err)
		}
	}
	if err := parent.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
