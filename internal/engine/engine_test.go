package engine

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hydra/internal/core"
	"hydra/internal/partition"
	"hydra/internal/taskgen"
)

// fig2Cell is one (utilization level, taskset draw) grid cell, mirroring the
// acceptance-ratio experiment's shape.
type fig2Cell struct {
	k, t int
	util float64
}

type fig2CellResult struct {
	Generated bool
	Accepted  []bool
	Checksum  float64
}

// fig2Grid builds a small fig2-style grid: levels × draws at M=2.
func fig2Grid(levels, draws int) []fig2Cell {
	var cells []fig2Cell
	for k := 1; k <= levels; k++ {
		for t := 0; t < draws; t++ {
			cells = append(cells, fig2Cell{k: k, t: t, util: 0.2 * float64(k) * 2})
		}
	}
	return cells
}

// fig2Fn evaluates one cell exactly like the acceptance-ratio driver: draw a
// workload from the cell RNG, then run both schemes from the registry.
func fig2Fn(schemes []core.Allocator) func(ctx context.Context, idx int, rng *rand.Rand, cell fig2Cell) (fig2CellResult, error) {
	return func(ctx context.Context, idx int, rng *rand.Rand, cell fig2Cell) (fig2CellResult, error) {
		w, err := taskgen.Generate(taskgen.DefaultParams(2, cell.util), rng)
		if err != nil {
			return fig2CellResult{}, nil // this draw not splittable; skip
		}
		part, err := partition.PartitionRT(w.RT, 2, partition.BestFit)
		if err != nil {
			return fig2CellResult{Generated: true, Accepted: make([]bool, len(schemes))}, nil
		}
		in, err := core.NewInput(2, w.RT, part.CoreOf, w.Sec)
		if err != nil {
			return fig2CellResult{}, err
		}
		res := fig2CellResult{Generated: true, Accepted: make([]bool, len(schemes))}
		for i, a := range schemes {
			r := a.Allocate(in)
			res.Accepted[i] = r.Schedulable
			if r.Schedulable {
				res.Checksum += r.Cumulative
			}
		}
		return res, nil
	}
}

// The tentpole guarantee: a fig2-style grid produces identical results for 1
// worker and 8 workers under the same seed.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	schemes, err := core.Resolve("hydra", "singlecore")
	if err != nil {
		t.Fatal(err)
	}
	cells := fig2Grid(4, 12)
	fn := fig2Fn(schemes)
	stream := func(idx int) int64 { return int64(cells[idx].k)<<32 | int64(cells[idx].t) }

	serial, err := Run(context.Background(), cells, fn, Options{Workers: 1, Seed: 42, Stream: stream})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), cells, fn, Options{Workers: 8, Seed: 42, Stream: stream})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("workers=1 and workers=8 produced different results for the same seed")
	}
	// Sanity: the grid exercised real work.
	var generated, accepted int
	for _, r := range serial {
		if r.Generated {
			generated++
		}
		for _, ok := range r.Accepted {
			if ok {
				accepted++
			}
		}
	}
	if generated == 0 || accepted == 0 {
		t.Fatalf("degenerate grid: generated=%d accepted=%d", generated, accepted)
	}
}

// Results come back in cell order even when later cells finish first.
func TestRunOrderedResults(t *testing.T) {
	cells := make([]int, 32)
	for i := range cells {
		cells[i] = i
	}
	out, err := Run(context.Background(), cells, func(ctx context.Context, idx int, rng *rand.Rand, cell int) (int, error) {
		time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond) // scramble finish order
		return cell * cell, nil
	}, Options{Workers: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// Per-cell RNG depends only on (seed, stream label), not on worker placement.
func TestRunStreamLabels(t *testing.T) {
	cells := []int{0, 1, 2, 3}
	fn := func(ctx context.Context, idx int, rng *rand.Rand, cell int) (int64, error) {
		return rng.Int63(), nil
	}
	a, err := Run(context.Background(), cells, fn, Options{Workers: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Same labels through an explicit Stream: identical draws.
	b, err := Run(context.Background(), cells, fn, Options{Workers: 1, Seed: 5, Stream: func(i int) int64 { return int64(i) }})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical stream labels must yield identical draws")
	}
	// Distinct labels: independent draws.
	seen := map[int64]bool{}
	for _, v := range a {
		if seen[v] {
			t.Fatalf("stream collision: %v", a)
		}
		seen[v] = true
	}
}

func TestRunError(t *testing.T) {
	boom := errors.New("boom")
	cells := make([]int, 64)
	_, err := Run(context.Background(), cells, func(ctx context.Context, idx int, rng *rand.Rand, cell int) (int, error) {
		if idx == 5 || idx == 40 {
			return 0, boom
		}
		return 0, nil
	}, Options{Workers: 4, Seed: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// Deterministic attribution: the lowest failing cell index is reported.
	if want := "cell 5"; err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %v, want mention of %q", err, want)
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cells := make([]int, 1000)
	started := make(chan struct{}, 1)
	_, err := Run(ctx, cells, func(ctx context.Context, idx int, rng *rand.Rand, cell int) (int, error) {
		select {
		case started <- struct{}{}:
			cancel()
		default:
		}
		return 0, nil
	}, Options{Workers: 2, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunCancelReturnsWithinOneCell(t *testing.T) {
	// Cancelling mid-grid must stop new cells from starting even though the
	// cell function never looks at its context: on one worker, exactly the
	// cell that triggered the cancel executes, and Run returns after it.
	const cellWork = 10 * time.Millisecond
	cells := make([]int, 500)
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	start := time.Now()
	_, err := Run(ctx, cells, func(_ context.Context, idx int, _ *rand.Rand, _ int) (int, error) {
		if executed.Add(1) == 1 {
			cancel()
		}
		time.Sleep(cellWork)
		return 0, nil
	}, Options{Workers: 1, Seed: 1})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := executed.Load(); n != 1 {
		t.Fatalf("executed %d cells after cancellation, want exactly 1", n)
	}
	if limit := 20 * cellWork; elapsed > limit {
		t.Fatalf("cancelled run took %v, want under %v (one cell is %v)", elapsed, limit, cellWork)
	}
}

// OnCell fires once per freshly evaluated cell; Precomputed cells are skipped
// entirely (no RNG draw, no worker slot, no OnCell) and keep their value.
func TestRunPrecomputedAndOnCell(t *testing.T) {
	cells := make([]int, 20)
	for i := range cells {
		cells[i] = i
	}
	fn := func(ctx context.Context, idx int, rng *rand.Rand, cell int) (int, error) {
		return cell * 10, nil
	}

	var mu sync.Mutex
	fresh := map[int]int{}
	var executed atomic.Int64
	out, err := Run(context.Background(), cells, func(ctx context.Context, idx int, rng *rand.Rand, cell int) (int, error) {
		executed.Add(1)
		return fn(ctx, idx, rng, cell)
	}, Options{
		Workers: 4,
		Seed:    1,
		Precomputed: func(idx int) (any, bool) {
			if idx%3 == 0 {
				return idx * 10, true // what the cell would have computed
			}
			return nil, false
		},
		OnCell: func(idx int, result any) {
			mu.Lock()
			defer mu.Unlock()
			fresh[idx] = result.(int)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*10 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*10)
		}
	}
	wantFresh := 0
	for i := range cells {
		if i%3 != 0 {
			wantFresh++
		}
	}
	if int(executed.Load()) != wantFresh {
		t.Fatalf("executed %d cells, want %d (precomputed cells must not run)", executed.Load(), wantFresh)
	}
	if len(fresh) != wantFresh {
		t.Fatalf("OnCell fired for %d cells, want %d", len(fresh), wantFresh)
	}
	for idx, v := range fresh {
		if idx%3 == 0 {
			t.Fatalf("OnCell fired for precomputed cell %d", idx)
		}
		if v != idx*10 {
			t.Fatalf("OnCell(%d) saw %d, want %d", idx, v, idx*10)
		}
	}
}

// Precomputing a subset of cells must not change what the remaining cells
// draw: the run's output equals the uninterrupted run's, which is the
// property campaign resume relies on.
func TestRunPrecomputedPreservesDeterminism(t *testing.T) {
	cells := make([]int, 16)
	fn := func(ctx context.Context, idx int, rng *rand.Rand, cell int) (int64, error) {
		return rng.Int63(), nil
	}
	full, err := Run(context.Background(), cells, fn, Options{Workers: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Run(context.Background(), cells, fn, Options{
		Workers: 4, Seed: 9,
		Precomputed: func(idx int) (any, bool) {
			if idx < 7 {
				return full[idx], true
			}
			return nil, false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Fatal("precomputed prefix changed the remaining cells' results")
	}
}

// A precomputed value of the wrong type is an error, not a silent zero value.
func TestRunPrecomputedTypeMismatch(t *testing.T) {
	cells := []int{0, 1, 2}
	_, err := Run(context.Background(), cells, func(ctx context.Context, idx int, rng *rand.Rand, cell int) (int, error) {
		return cell, nil
	}, Options{Workers: 2, Seed: 1, Precomputed: func(idx int) (any, bool) {
		if idx == 1 {
			return "not an int", true
		}
		return nil, false
	}})
	if err == nil || !strings.Contains(err.Error(), "precomputed") {
		t.Fatalf("err = %v, want precomputed type mismatch", err)
	}
}

func TestRunEmptyAndDefaults(t *testing.T) {
	out, err := Run(context.Background(), nil, func(ctx context.Context, idx int, rng *rand.Rand, cell struct{}) (int, error) {
		return 1, nil
	}, Options{})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty grid: %v %v", out, err)
	}
	// Workers defaulting (0 => GOMAXPROCS) still runs every cell.
	cells := []int{1, 2, 3}
	got, err := Run(context.Background(), cells, func(ctx context.Context, idx int, rng *rand.Rand, cell int) (int, error) {
		return cell, nil
	}, Options{})
	if err != nil || !reflect.DeepEqual(got, cells) {
		t.Fatalf("got %v err %v", got, err)
	}
}
