package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hydra/internal/core"
	"hydra/internal/partition"
	"hydra/internal/stats"
	"hydra/internal/taskgen"
)

// benchCellWork is one grid cell of a scaled fig2-style sweep: draw a
// workload, partition, allocate with HYDRA. The latency variant additionally
// blocks for blockFactor times the cell's own CPU time, modeling grid cells
// dominated by blocking that scales with the work they do (an external GP
// solver, trace IO, a remote evaluation service) — the regime where the
// worker pool pays off even on a single hardware thread. Tying the blocking
// floor to the measured work (instead of a fixed 2 ms) keeps the benchmark
// latency-bound without letting the sleep swallow allocation-path speedups:
// faster cells now shrink the whole grid's wall clock.
func benchCellWork(rng *rand.Rand, blockFactor int) float64 {
	start := time.Now()
	out := 0.0
	w, err := taskgen.Generate(taskgen.DefaultParams(2, 1.2), rng)
	if err == nil {
		if part, err := partition.PartitionRT(w.RT, 2, partition.BestFit); err == nil {
			if in, err := core.NewInput(2, w.RT, part.CoreOf, w.Sec); err == nil {
				if r := core.Hydra(in, core.HydraOptions{}); r.Schedulable {
					out = r.Cumulative
				}
			}
		}
	}
	if blockFactor > 0 {
		time.Sleep(time.Duration(blockFactor) * time.Since(start))
	}
	return out
}

// blockFactor is the latency-bound grid's blocking multiplier: each cell
// blocks for this many times its own CPU work, so cells stay ~99% blocked
// (the regime the worker-pool speedup targets) while the grid's wall clock
// still tracks allocation-path wins.
const blockFactor = 80

// BenchmarkEngineGrid compares the serial loop the experiment drivers used to
// run against the engine at increasing worker counts, on a 64-cell grid whose
// cells block for blockFactor x their own work (latency-bound regime).
// Expected shape: the serial path and workers=1 cost ~64 x cell time;
// workers=4 is >= 2x faster; workers=8 ~2x faster again. On multi-core
// hardware the same scaling shows up for the CPU-bound grid
// (BenchmarkEngineGridCPU).
func BenchmarkEngineGrid(b *testing.B) {
	const cells = 64
	grid := make([]int, cells)
	for i := range grid {
		grid[i] = i
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sum float64
			for idx := range grid {
				rng := stats.SplitRNG(1, int64(idx))
				sum += benchCellWork(rng, blockFactor)
			}
			_ = sum
		}
	})
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run(context.Background(), grid, func(ctx context.Context, idx int, rng *rand.Rand, cell int) (float64, error) {
					return benchCellWork(rng, blockFactor), nil
				}, Options{Workers: workers, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineGridCPU is the pure-CPU variant: no blocking, so speedup
// tracks available hardware threads (flat on a single-CPU host, near-linear
// up to GOMAXPROCS elsewhere). It runs the grid under both results versions:
// v1 pays math/rand's expensive Seed per cell (historically ~1/3 of a
// CPU-bound cell), v2 constructs a SplitMix64 stream in O(1) — the per-cell
// throughput win the results_version bump buys.
func BenchmarkEngineGridCPU(b *testing.B) {
	const cells = 64
	grid := make([]int, cells)
	for i := range grid {
		grid[i] = i
	}
	for _, v := range []stats.RNGVersion{stats.RNGv1, stats.RNGv2} {
		b.Run(v.String()+"/serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for idx := range grid {
					rng := stats.VersionedRNG(v, 1, int64(idx))
					benchCellWork(rng, 0)
				}
			}
		})
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", v, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := Run(context.Background(), grid, func(ctx context.Context, idx int, rng *rand.Rand, cell int) (float64, error) {
						return benchCellWork(rng, 0), nil
					}, Options{Workers: workers, Seed: 1, ResultsVersion: v})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
