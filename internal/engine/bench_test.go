package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hydra/internal/core"
	"hydra/internal/partition"
	"hydra/internal/stats"
	"hydra/internal/taskgen"
)

// benchCellWork is one grid cell of a scaled fig2-style sweep: draw a
// workload, partition, allocate with HYDRA. The latency variant additionally
// blocks for a fixed wait, modeling grid cells dominated by blocking time
// (an external GP solver, trace IO, a remote evaluation service) — the regime
// where the worker pool pays off even on a single hardware thread.
func benchCellWork(rng *rand.Rand, wait time.Duration) float64 {
	if wait > 0 {
		time.Sleep(wait)
	}
	w, err := taskgen.Generate(taskgen.DefaultParams(2, 1.2), rng)
	if err != nil {
		return 0
	}
	part, err := partition.PartitionRT(w.RT, 2, partition.BestFit)
	if err != nil {
		return 0
	}
	in, err := core.NewInput(2, w.RT, part.CoreOf, w.Sec)
	if err != nil {
		return 0
	}
	if r := core.Hydra(in, core.HydraOptions{}); r.Schedulable {
		return r.Cumulative
	}
	return 0
}

// BenchmarkEngineGrid compares the serial loop the experiment drivers used to
// run against the engine at increasing worker counts, on a 64-cell grid whose
// cells block for 2 ms each (latency-bound regime). Expected shape: the
// serial path and workers=1 cost ~64 x cell time; workers=4 is >= 2x faster;
// workers=8 ~2x faster again. On multi-core hardware the same scaling shows
// up for the CPU-bound grid (BenchmarkEngineGridCPU).
func BenchmarkEngineGrid(b *testing.B) {
	const cells = 64
	const wait = 2 * time.Millisecond
	grid := make([]int, cells)
	for i := range grid {
		grid[i] = i
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sum float64
			for idx := range grid {
				rng := stats.SplitRNG(1, int64(idx))
				sum += benchCellWork(rng, wait)
			}
			_ = sum
		}
	})
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run(context.Background(), grid, func(ctx context.Context, idx int, rng *rand.Rand, cell int) (float64, error) {
					return benchCellWork(rng, wait), nil
				}, Options{Workers: workers, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineGridCPU is the pure-CPU variant: no blocking, so speedup
// tracks available hardware threads (flat on a single-CPU host, near-linear
// up to GOMAXPROCS elsewhere).
func BenchmarkEngineGridCPU(b *testing.B) {
	const cells = 64
	grid := make([]int, cells)
	for i := range grid {
		grid[i] = i
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for idx := range grid {
				rng := stats.SplitRNG(1, int64(idx))
				benchCellWork(rng, 0)
			}
		}
	})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run(context.Background(), grid, func(ctx context.Context, idx int, rng *rand.Rand, cell int) (float64, error) {
					return benchCellWork(rng, 0), nil
				}, Options{Workers: workers, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
