package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hydra/internal/service"
)

// startTarget serves a fresh in-process service over a real listener.
func startTarget(t *testing.T) string {
	t.Helper()
	svc, err := service.New(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestClosedLoopMixedRun drives a short closed-loop run with all three
// classes and sanity-checks the report's accounting and quantile ordering.
func TestClosedLoopMixedRun(t *testing.T) {
	url := startTarget(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:  url,
		Duration: 300 * time.Millisecond,
		Workers:  4,
		Mix:      Mix{CacheHit: 0.6, AllocateCold: 0.2, TryAdmit: 0.2},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OpenLoop {
		t.Fatal("TargetQPS 0 must select closed-loop mode")
	}
	if rep.Completed == 0 || rep.AchievedRPS <= 0 {
		t.Fatalf("no completed requests: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("unexpected errors: %+v", rep)
	}
	if rep.Sent != rep.Completed+rep.Errors {
		t.Fatalf("sent(%d) != completed(%d)+errors(%d)", rep.Sent, rep.Completed, rep.Errors)
	}
	for _, class := range []string{ClassCacheHit, ClassAllocateCold, ClassTryAdmit} {
		cs, ok := rep.Classes[class]
		if !ok || cs.Count == 0 {
			t.Fatalf("class %s absent from report: %+v", class, rep.Classes)
		}
		if !(cs.P50NS <= cs.P90NS && cs.P90NS <= cs.P99NS && cs.P99NS <= cs.P999NS && cs.P999NS <= cs.MaxNS) {
			t.Fatalf("class %s quantiles not monotone: %+v", class, cs)
		}
		if cs.MeanNS <= 0 {
			t.Fatalf("class %s mean not positive: %+v", class, cs)
		}
	}
	var total int
	for _, cs := range rep.Classes {
		total += cs.Count
	}
	if total != rep.Overall.Count || total != rep.Completed {
		t.Fatalf("class counts (%d) != overall (%d) != completed (%d)", total, rep.Overall.Count, rep.Completed)
	}
}

// TestOpenLoopHitsTargetRate: well below saturation, the open-loop generator
// achieves (approximately) the requested rate and leaves no backlog.
func TestOpenLoopHitsTargetRate(t *testing.T) {
	url := startTarget(t)
	const qps = 200.0
	rep, err := Run(context.Background(), Config{
		BaseURL:   url,
		Duration:  500 * time.Millisecond,
		TargetQPS: qps,
		Workers:   4,
		Mix:       Mix{CacheHit: 1},
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OpenLoop {
		t.Fatal("TargetQPS > 0 must select open-loop mode")
	}
	// ~100 arrivals expected; allow generous scheduling slop in both
	// directions but catch order-of-magnitude failures.
	if rep.Completed < 50 || rep.Completed > 150 {
		t.Fatalf("completed %d requests at %g qps over 500ms, want roughly 100", rep.Completed, qps)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors: %+v", rep)
	}
}

// TestBenchLines: the bench output parses as benchmark result lines with the
// req/s and quantile metrics benchjson consumes.
func TestBenchLines(t *testing.T) {
	url := startTarget(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:  url,
		Duration: 150 * time.Millisecond,
		Workers:  2,
		Mix:      Mix{CacheHit: 1, TryAdmit: 1},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.BenchLines("LoadgenSmoke")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 { // two classes + overall
		t.Fatalf("want >= 3 bench lines, got %d:\n%s", len(lines), out)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "BenchmarkLoadgenSmoke/") {
			t.Fatalf("line %q lacks the benchmark prefix", line)
		}
		for _, unit := range []string{"ns/op", "req/s", "p50_ns", "p99_ns", "p999_ns"} {
			if !strings.Contains(line, unit) {
				t.Fatalf("line %q lacks %s", line, unit)
			}
		}
	}
}

// TestConfigValidation: nonsense configurations fail fast.
func TestConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{Duration: time.Second}); err == nil {
		t.Fatal("missing BaseURL must error")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", Duration: 0}); err == nil {
		t.Fatal("zero duration must error")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", Duration: time.Second, Mix: Mix{CacheHit: -1}}); err == nil {
		t.Fatal("negative mix weight must error")
	}
}

// TestChurnClassFullLifecycle: each churn arrival is one whole
// create/admit/retire/delete cycle counted as a single sample, so a clean
// run leaves no systems behind on the server (except the try-admit probe).
func TestChurnClassFullLifecycle(t *testing.T) {
	url := startTarget(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:  url,
		Duration: 300 * time.Millisecond,
		Workers:  4,
		Mix:      Mix{Churn: 1},
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := rep.Classes[ClassChurn]
	if !ok || cs.Count == 0 {
		t.Fatalf("no churn samples: %+v", rep.Classes)
	}
	if cs.Errors != 0 {
		t.Fatalf("churn errors: %+v", cs)
	}
	// Every cycle deleted its system: the server must be empty again.
	var list struct {
		Systems []struct {
			ID string `json:"id"`
		} `json:"systems"`
	}
	resp, err := http.Get(url + "/v1/systems")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Systems) != 0 {
		t.Fatalf("churn leaked %d systems: %+v", len(list.Systems), list.Systems)
	}
}

// TestParseMix pins the CLI mix syntax.
func TestParseMix(t *testing.T) {
	m, err := ParseMix("hit=0.9,cold=0.05,admit=0.04,churn=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{CacheHit: 0.9, AllocateCold: 0.05, TryAdmit: 0.04, Churn: 0.01}) {
		t.Fatalf("parsed %+v", m)
	}
	if m, err := ParseMix(""); err != nil || m != (Mix{CacheHit: 1}) {
		t.Fatalf("empty mix: %+v %v", m, err)
	}
	if m, err := ParseMix("cache-hit=2,try-admit=1"); err != nil || m != (Mix{CacheHit: 2, TryAdmit: 1}) {
		t.Fatalf("long names: %+v %v", m, err)
	}
	for _, bad := range []string{"hit", "hit=x", "bogus=1", "hit=-1", "hit=0,cold=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q): want error", bad)
		}
	}
}
