// Package loadgen drives a live hydra-serve instance with a configurable
// request mix at a target arrival rate and reports achieved throughput plus
// latency quantiles — the measurement half of the "serves heavy traffic"
// claim. It is the engine behind cmd/hydra-loadgen and the CI load smoke.
//
// The generator is open-loop and closed-duration: arrivals are scheduled by
// wall clock at the target QPS regardless of how fast responses come back
// (so a saturated server shows up as a growing backlog and rising latencies,
// not as a silently throttled request rate), and the run stops after a fixed
// duration. A target of zero selects closed-loop mode instead: every worker
// fires continuously, measuring the server's saturation throughput.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hydra/internal/stats"
)

// Request classes. Class names appear in reports, bench lines and flags.
const (
	ClassCacheHit     = "cache-hit"     // the same allocation problem every time: steady-state cache hit
	ClassAllocateCold = "allocate-cold" // a unique problem every time: full decode+allocate+encode
	ClassTryAdmit     = "try-admit"     // incremental admission probe against a long-lived system
	ClassChurn        = "churn"         // full system lifecycle: create, admit, retire, delete
)

// probeSystemID is the long-lived system the try-admit class probes.
const probeSystemID = "loadgen-probe"

// Mix is the request-class composition of the generated load, as relative
// weights (they are normalized; zero everything selects pure cache hits).
type Mix struct {
	CacheHit     float64 `json:"cache_hit"`
	AllocateCold float64 `json:"allocate_cold"`
	TryAdmit     float64 `json:"try_admit"`
	// Churn exercises the whole hosted-system lifecycle: each arrival
	// creates a unique system, admits one security task, retires it and
	// deletes the system, measured as one latency sample. Against a durable
	// registry (-systems-dir) this is the WAL-heavy path.
	Churn float64 `json:"churn"`
}

// normalized returns the mix as fractions summing to 1.
func (m Mix) normalized() (Mix, error) {
	if m.CacheHit < 0 || m.AllocateCold < 0 || m.TryAdmit < 0 || m.Churn < 0 {
		return Mix{}, fmt.Errorf("loadgen: mix weights must be non-negative, got %+v", m)
	}
	total := m.CacheHit + m.AllocateCold + m.TryAdmit + m.Churn
	if total == 0 {
		return Mix{CacheHit: 1}, nil
	}
	return Mix{
		CacheHit:     m.CacheHit / total,
		AllocateCold: m.AllocateCold / total,
		TryAdmit:     m.TryAdmit / total,
		Churn:        m.Churn / total,
	}, nil
}

// ParseMix parses the CLI mix syntax "hit=0.9,cold=0.05,admit=0.05" (weights
// are relative; omitted classes are zero; empty selects pure cache hits).
// Known classes: hit, cold, admit, churn.
func ParseMix(s string) (Mix, error) {
	var m Mix
	if strings.TrimSpace(s) == "" {
		return Mix{CacheHit: 1}, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Mix{}, fmt.Errorf("loadgen: bad mix component %q (want class=weight)", part)
		}
		var w float64
		if _, err := fmt.Sscanf(strings.TrimSpace(v), "%g", &w); err != nil {
			return Mix{}, fmt.Errorf("loadgen: bad mix weight %q: %v", v, err)
		}
		if w < 0 {
			return Mix{}, fmt.Errorf("loadgen: mix weight %q must be non-negative", part)
		}
		switch strings.TrimSpace(k) {
		case "hit", ClassCacheHit:
			m.CacheHit = w
		case "cold", ClassAllocateCold:
			m.AllocateCold = w
		case "admit", ClassTryAdmit:
			m.TryAdmit = w
		case ClassChurn:
			m.Churn = w
		default:
			return Mix{}, fmt.Errorf("loadgen: unknown mix class %q (want hit, cold, admit or churn)", k)
		}
	}
	if m.CacheHit+m.AllocateCold+m.TryAdmit+m.Churn == 0 {
		return Mix{}, fmt.Errorf("loadgen: mix %q has zero total weight", s)
	}
	return m, nil
}

// Config parametrizes one load run.
type Config struct {
	// BaseURL is the target server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Duration is the fixed run length (closed duration). Minimum 1ms.
	Duration time.Duration
	// TargetQPS is the open-loop arrival rate. Zero or negative selects
	// closed-loop mode: workers fire back to back, measuring saturation
	// throughput.
	TargetQPS float64
	// Workers is the number of concurrent request senders (minimum 1,
	// default 8 when zero).
	Workers int
	// Mix is the request-class composition.
	Mix Mix
	// Seed drives the class-selection stream (deterministic schedule of
	// classes; wall-clock behavior of course is not deterministic).
	Seed int64
	// Timeout bounds one request (default 10s when zero).
	Timeout time.Duration
	// Client optionally overrides the HTTP client (the default is tuned for
	// Workers persistent connections).
	Client *http.Client
}

// ClassStats summarizes one request class of a run. Latencies are in
// nanoseconds, quantiles over all completed requests of the class.
type ClassStats struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	RPS    float64 `json:"rps"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  float64 `json:"p50_ns"`
	P90NS  float64 `json:"p90_ns"`
	P99NS  float64 `json:"p99_ns"`
	P999NS float64 `json:"p999_ns"`
	MaxNS  float64 `json:"max_ns"`
}

// Report is the outcome of one load run.
type Report struct {
	BaseURL     string  `json:"base_url"`
	DurationSec float64 `json:"duration_sec"`
	TargetQPS   float64 `json:"target_qps"` // 0 = closed loop
	OpenLoop    bool    `json:"open_loop"`
	Workers     int     `json:"workers"`
	Mix         Mix     `json:"mix"`

	// Sent counts requests actually issued; Completed those that returned an
	// expected status in time; Errors unexpected statuses or transport
	// failures; Backlog open-loop arrivals that could not be issued before
	// the run ended (the saturation signal: sustained TargetQPS above the
	// server's capacity makes this grow).
	Sent      int `json:"sent"`
	Completed int `json:"completed"`
	Errors    int `json:"errors"`
	Backlog   int `json:"backlog"`

	// AchievedRPS is completed requests per second of run duration.
	AchievedRPS float64 `json:"achieved_rps"`

	Overall ClassStats            `json:"overall"`
	Classes map[string]ClassStats `json:"classes"`
}

// workerState accumulates per-worker, contention-free.
type workerState struct {
	samples map[string][]float64 // class -> latency ns
	errors  map[string]int
	sent    int
	backlog int
}

// Run executes one load run against cfg.BaseURL. The target must already be
// serving; Run primes the cache-hit problem and creates the try-admit probe
// system before the measured window starts.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	mix, err := cfg.Mix.normalized()
	if err != nil {
		return nil, err
	}
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Duration < time.Millisecond {
		return nil, fmt.Errorf("loadgen: duration %v too short (minimum 1ms)", cfg.Duration)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				MaxIdleConns:        2 * workers,
				MaxIdleConnsPerHost: 2 * workers,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}

	base := strings.TrimRight(cfg.BaseURL, "/")
	if err := setup(ctx, client, base, mix); err != nil {
		return nil, err
	}

	// The open-loop arrival queue: the scheduler enqueues class tokens on
	// the wall-clock schedule; workers drain. A bounded queue keeps memory
	// flat when the server saturates — arrivals that cannot even be queued
	// count into the backlog, exactly like the queued-but-never-issued ones.
	queue := make(chan string, 16384)
	var droppedArrivals atomic.Int64

	states := make([]*workerState, workers)
	for i := range states {
		states[i] = &workerState{samples: map[string][]float64{}, errors: map[string]int{}}
	}

	var coldSeq, churnSeq atomic.Int64
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	runCtx, cancel := context.WithDeadline(ctx, deadline.Add(timeout))
	defer cancel()

	var wg sync.WaitGroup
	openLoop := cfg.TargetQPS > 0
	if openLoop {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(queue)
			schedule(runCtx, queue, &droppedArrivals, mix, cfg.TargetQPS, cfg.Seed, start, deadline)
		}()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := states[w]
			// Splittable (v2) generator unconditionally: loadgen reports are
			// not results-versioned artifacts, so worker seeding takes the
			// cheap split with no compatibility story.
			rng := stats.Split(cfg.Seed, int64(w)+1)
			for {
				var class string
				if openLoop {
					c, ok := <-queue
					if !ok {
						return
					}
					if time.Now().After(deadline) {
						st.backlog++
						continue
					}
					class = c
				} else {
					if time.Now().After(deadline) || runCtx.Err() != nil {
						return
					}
					class = pickClass(rng, mix)
				}
				st.sent++
				elapsed, ok := issue(runCtx, client, base, class, &coldSeq, &churnSeq)
				if ok {
					st.samples[class] = append(st.samples[class], float64(elapsed.Nanoseconds()))
				} else {
					st.errors[class]++
				}
			}
		}(w)
	}
	wg.Wait()
	actual := time.Since(start)

	return summarize(cfg, mix, base, openLoop, workers, actual, states, int(droppedArrivals.Load())), nil
}

// schedule produces the open-loop arrival stream: class tokens at the target
// rate on the wall clock, independent of response completions.
func schedule(ctx context.Context, queue chan<- string, dropped *atomic.Int64, mix Mix, qps float64, seed int64, start, deadline time.Time) {
	rng := stats.Split(seed, 0)
	interval := time.Duration(float64(time.Second) / qps)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	next := time.Duration(0)
	for {
		if ctx.Err() != nil {
			return
		}
		now := time.Now()
		if !now.Before(deadline) {
			return
		}
		elapsed := now.Sub(start)
		for next <= elapsed {
			select {
			case queue <- pickClass(rng, mix):
			default:
				dropped.Add(1)
			}
			next += interval
		}
		if sleep := next - time.Since(start); sleep > 0 {
			if sleep > time.Millisecond {
				sleep = time.Millisecond
			}
			time.Sleep(sleep)
		}
	}
}

// pickClass draws one request class from the mix.
func pickClass(rng *rand.Rand, mix Mix) string {
	r := rng.Float64()
	switch {
	case r < mix.CacheHit:
		return ClassCacheHit
	case r < mix.CacheHit+mix.AllocateCold:
		return ClassAllocateCold
	case r < mix.CacheHit+mix.AllocateCold+mix.TryAdmit:
		return ClassTryAdmit
	default:
		if mix.Churn > 0 {
			return ClassChurn
		}
		return ClassTryAdmit // float rounding with a zero churn weight
	}
}

// hitTaskset is the fixed allocation problem of the cache-hit class (primed
// once during setup, then answered from the result cache forever).
const hitTaskset = `{
  "cores": 2,
  "rt_tasks": [
    {"name": "ctl", "wcet_ms": 5, "period_ms": 20},
    {"name": "nav", "wcet_ms": 30, "period_ms": 100}
  ],
  "security_tasks": [
    {"name": "tw", "wcet_ms": 50, "desired_period_ms": 1000, "max_period_ms": 10000},
    {"name": "bro", "wcet_ms": 30, "desired_period_ms": 500, "max_period_ms": 5000}
  ]
}`

var hitBody = fmt.Sprintf(`{"taskset": %s}`, hitTaskset)

// coldBody yields a problem made unique by n, defeating the cache so the
// request takes the full decode+allocate+verify+encode path.
func coldBody(n int64) string {
	return fmt.Sprintf(`{"taskset": {
  "cores": 2,
  "rt_tasks": [
    {"name": "ctl", "wcet_ms": 5, "period_ms": 20},
    {"name": "nav", "wcet_ms": 30, "period_ms": 100}
  ],
  "security_tasks": [
    {"name": "tw", "wcet_ms": 50, "desired_period_ms": 1000, "max_period_ms": %d},
    {"name": "bro", "wcet_ms": 30, "desired_period_ms": 500, "max_period_ms": 5000}
  ]
}}`, 100000+n)
}

// probeSystemBody creates the tight long-lived system the try-admit class
// probes: both cores are nearly full, so the probe task below is analyzed
// incrementally and rejected every time — a pure, state-stable admission
// workload (an admitted probe would mutate the system and skew later
// requests).
const probeSystemBody = `{"id": "` + probeSystemID + `", "taskset": {
  "cores": 2,
  "rt_tasks": [
    {"name": "a", "wcet_ms": 80, "period_ms": 100},
    {"name": "b", "wcet_ms": 80, "period_ms": 100}
  ],
  "security_tasks": []
}}`

const probeTaskBody = `{"security_task": {"name": "probe", "wcet_ms": 90, "desired_period_ms": 100, "max_period_ms": 120}}`

// churnSystemBody creates the short-lived system of one churn cycle: a small
// single-core system with plenty of slack so the admit below always lands.
func churnSystemBody(id string) string {
	return fmt.Sprintf(`{"id": %q, "taskset": {
  "cores": 1,
  "rt_tasks": [{"name": "ctl", "wcet_ms": 5, "period_ms": 20}],
  "security_tasks": []
}}`, id)
}

const churnTaskBody = `{"security_task": {"name": "scan", "wcet_ms": 10, "desired_period_ms": 500, "max_period_ms": 5000}}`

// churnCycle runs one full system lifecycle: create -> admit -> retire ->
// delete. All four steps must succeed for the sample to count; the caller
// times the whole cycle as one arrival.
func churnCycle(ctx context.Context, client *http.Client, base, id string) bool {
	if s, err := doPost(ctx, client, base+"/v1/systems", churnSystemBody(id)); err != nil || s != http.StatusCreated {
		return false
	}
	if s, err := doPost(ctx, client, base+"/v1/systems/"+id+"/tasks", churnTaskBody); err != nil || s != http.StatusOK {
		return false
	}
	if s, err := doDelete(ctx, client, base+"/v1/systems/"+id+"/tasks/scan"); err != nil || s != http.StatusOK {
		return false
	}
	if s, err := doDelete(ctx, client, base+"/v1/systems/"+id); err != nil || s != http.StatusOK {
		return false
	}
	return true
}

// setup primes the cache-hit entry and creates the try-admit probe system
// (idempotent: an already existing probe system from a previous run is fine).
func setup(ctx context.Context, client *http.Client, base string, mix Mix) error {
	if mix.CacheHit > 0 {
		status, err := doPost(ctx, client, base+"/v1/allocate", hitBody)
		if err != nil {
			return fmt.Errorf("loadgen: prime cache-hit problem: %w", err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("loadgen: prime cache-hit problem: status %d", status)
		}
	}
	if mix.TryAdmit > 0 {
		status, err := doPost(ctx, client, base+"/v1/systems", probeSystemBody)
		if err != nil {
			return fmt.Errorf("loadgen: create probe system: %w", err)
		}
		// 409 = already exists from a previous run against the same server.
		if status != http.StatusCreated && status != http.StatusConflict {
			return fmt.Errorf("loadgen: create probe system: status %d", status)
		}
	}
	return nil
}

// issue sends one request of the class and reports its latency and whether
// the response status was expected.
func issue(ctx context.Context, client *http.Client, base, class string, coldSeq, churnSeq *atomic.Int64) (time.Duration, bool) {
	var (
		url    string
		body   string
		okFunc func(int) bool
	)
	switch class {
	case ClassCacheHit:
		url, body = base+"/v1/allocate", hitBody
		okFunc = func(s int) bool { return s == http.StatusOK }
	case ClassAllocateCold:
		url, body = base+"/v1/allocate", coldBody(coldSeq.Add(1))
		okFunc = func(s int) bool { return s == http.StatusOK }
	case ClassChurn:
		id := fmt.Sprintf("churn-%d", churnSeq.Add(1))
		start := time.Now()
		ok := churnCycle(ctx, client, base, id)
		return time.Since(start), ok
	default: // ClassTryAdmit
		url, body = base+"/v1/systems/"+probeSystemID+"/tasks", probeTaskBody
		// The probe is built to be rejected; 409 is the expected verdict and
		// 200 tolerated (a differently shaped target system).
		okFunc = func(s int) bool { return s == http.StatusConflict || s == http.StatusOK }
	}
	start := time.Now()
	status, err := doPost(ctx, client, url, body)
	elapsed := time.Since(start)
	return elapsed, err == nil && okFunc(status)
}

// doPost posts a JSON body and drains the response.
func doPost(ctx context.Context, client *http.Client, url, body string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// doDelete issues a DELETE and drains the response.
func doDelete(ctx context.Context, client *http.Client, url string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// summarize merges the per-worker states into the final report.
func summarize(cfg Config, mix Mix, base string, openLoop bool, workers int, actual time.Duration, states []*workerState, droppedArrivals int) *Report {
	rep := &Report{
		BaseURL:     base,
		DurationSec: actual.Seconds(),
		TargetQPS:   cfg.TargetQPS,
		OpenLoop:    openLoop,
		Workers:     workers,
		Mix:         mix,
		Backlog:     droppedArrivals,
		Classes:     map[string]ClassStats{},
	}
	merged := map[string][]float64{}
	errors := map[string]int{}
	for _, st := range states {
		rep.Sent += st.sent
		rep.Backlog += st.backlog
		for class, s := range st.samples {
			merged[class] = append(merged[class], s...)
		}
		for class, n := range st.errors {
			errors[class] += n
		}
	}
	var all []float64
	classes := make([]string, 0, len(merged))
	for class := range merged {
		classes = append(classes, class)
	}
	for class := range errors {
		if _, ok := merged[class]; !ok {
			classes = append(classes, class)
		}
	}
	sort.Strings(classes)
	for _, class := range classes {
		samples := merged[class]
		rep.Classes[class] = classStats(samples, errors[class], actual)
		rep.Completed += len(samples)
		rep.Errors += errors[class]
		all = append(all, samples...)
	}
	rep.Overall = classStats(all, rep.Errors, actual)
	rep.AchievedRPS = float64(rep.Completed) / actual.Seconds()
	return rep
}

// classStats computes one class's latency summary.
func classStats(samples []float64, errs int, actual time.Duration) ClassStats {
	out := ClassStats{Count: len(samples), Errors: errs}
	if len(samples) == 0 {
		return out
	}
	out.RPS = float64(len(samples)) / actual.Seconds()
	e := stats.NewECDF(samples)
	out.MeanNS = e.Mean()
	out.P50NS = e.Quantile(0.5)
	out.P90NS = e.Quantile(0.9)
	out.P99NS = e.Quantile(0.99)
	out.P999NS = e.Quantile(0.999)
	out.MaxNS = e.Max()
	return out
}

// BenchLines renders the report as `go test -bench`-shaped result lines that
// cmd/benchjson parses, one per non-empty class plus an overall line:
//
//	Benchmark<name>/cache-hit  <count>  <mean> ns/op  <rps> req/s  <p50> p50_ns  <p99> p99_ns  <p999> p999_ns
//
// ns/op is the class's mean latency (lower is better, gated like any other
// benchmark); req/s is gated as higher-is-better by benchjson -compare.
func (r *Report) BenchLines(name string) string {
	var b strings.Builder
	classes := make([]string, 0, len(r.Classes))
	for class := range r.Classes {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		cs := r.Classes[class]
		if cs.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "Benchmark%s/%s \t %d \t %.0f ns/op \t %.1f req/s \t %.0f p50_ns \t %.0f p99_ns \t %.0f p999_ns\n",
			name, class, cs.Count, cs.MeanNS, cs.RPS, cs.P50NS, cs.P99NS, cs.P999NS)
	}
	if r.Overall.Count > 0 && len(classes) > 1 {
		fmt.Fprintf(&b, "Benchmark%s/overall \t %d \t %.0f ns/op \t %.1f req/s \t %.0f p50_ns \t %.0f p99_ns \t %.0f p999_ns\n",
			name, r.Overall.Count, r.Overall.MeanNS, r.Overall.RPS, r.Overall.P50NS, r.Overall.P99NS, r.Overall.P999NS)
	}
	return b.String()
}
