package workloads

import (
	"testing"

	"hydra/internal/core"
	"hydra/internal/partition"
	"hydra/internal/rts"
)

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("bogus"); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestAllWorkloadsValidAndAllocatable(t *testing.T) {
	for _, name := range Names() {
		w, err := Get(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.Name != name || w.Description == "" {
			t.Fatalf("%s: metadata incomplete: %+v", name, w)
		}
		if err := rts.ValidateAll(w.RT, w.Sec); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(w.RT) == 0 || len(w.Sec) == 0 {
			t.Fatalf("%s: empty workload", name)
		}
		// Every registered workload must be HYDRA-allocatable on 2 and 4
		// cores — the registry exists to feed demos that should not fail.
		for _, m := range []int{2, 4} {
			part, err := core.PartitionForHydra(w.RT, m, partition.BestFit)
			if err != nil {
				t.Fatalf("%s: RT partition on %d cores: %v", name, m, err)
			}
			in, err := core.NewInput(m, w.RT, part, w.Sec)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			r := core.Hydra(in, core.HydraOptions{})
			if !r.Schedulable {
				t.Fatalf("%s on %d cores: %s", name, m, r.Reason)
			}
			if err := core.Verify(in, r); err != nil {
				t.Fatalf("%s on %d cores: %v", name, m, err)
			}
			if err := core.VerifyExact(in, r); err != nil {
				t.Fatalf("%s on %d cores (exact): %v", name, m, err)
			}
		}
	}
}

func TestWorkloadsSingleCoreFeasibleAtTwoCores(t *testing.T) {
	// The SingleCore baseline needs the RT side to fit M-1 cores; the
	// registry workloads are designed to allow the comparison at M=2.
	for _, name := range Names() {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		r := core.SingleCore(2, w.RT, w.Sec, partition.BestFit)
		if !r.Schedulable {
			t.Fatalf("%s: SingleCore at 2 cores: %s", name, r.Reason)
		}
	}
}

func TestWorkloadUtilizationProfilesDiffer(t *testing.T) {
	// The registry's value is diversity: the three workloads must not share
	// near-identical RT utilization.
	var utils []float64
	for _, name := range Names() {
		w, _ := Get(name)
		utils = append(utils, rts.TotalRTUtilization(w.RT))
	}
	for i := 0; i < len(utils); i++ {
		for j := i + 1; j < len(utils); j++ {
			if diff := utils[i] - utils[j]; diff < 0.02 && diff > -0.02 {
				t.Fatalf("workloads %d and %d have near-identical utilization %v", i, j, utils)
			}
		}
	}
}
