// Package workloads is a registry of named case-study workloads for the
// command-line tools and examples: the paper's UAV system plus two further
// representative control systems (automotive engine control and an
// avionics-style partition set), each paired with a security workload in
// the Table-I spirit. The extra workloads exercise different period scales
// and utilization profiles than the UAV study; their parameters are
// representative, documented values, not measurements.
package workloads

import (
	"fmt"
	"sort"

	"hydra/internal/rts"
	"hydra/internal/uav"
)

// Workload is a named, self-contained allocation scenario.
type Workload struct {
	Name        string
	Description string
	RT          []rts.RTTask
	Sec         []rts.SecurityTask
}

// Get returns a registered workload by name.
func Get(name string) (*Workload, error) {
	switch name {
	case "uav":
		return &Workload{
			Name:        "uav",
			Description: "UAV control system + Tripwire/Bro security tasks (paper Fig. 1)",
			RT:          uav.RTTasks(),
			Sec:         uav.SecurityTaskSet(),
		}, nil
	case "automotive":
		return automotive(), nil
	case "avionics":
		return avionics(), nil
	default:
		return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
}

// Names lists the registered workload names, sorted.
func Names() []string {
	names := []string{"uav", "automotive", "avionics"}
	sort.Strings(names)
	return names
}

// automotive models an engine-control unit: very short periods (crank-angle
// synchronous work approximated at 5 ms), a heavy 100 ms diagnostics tier,
// and CAN-bus-oriented security monitoring. High-rate tasks make the
// security interference constants (sum of WCETs) small but the utilization
// term large.
func automotive() *Workload {
	return &Workload{
		Name:        "automotive",
		Description: "engine-control unit with CAN-bus intrusion monitoring",
		RT: []rts.RTTask{
			rts.NewRTTask("injection-control", 1.2, 5),
			rts.NewRTTask("ignition-timing", 0.8, 5),
			rts.NewRTTask("knock-detection", 1.5, 10),
			rts.NewRTTask("lambda-control", 2.0, 20),
			rts.NewRTTask("idle-speed", 2.5, 50),
			rts.NewRTTask("thermal-management", 5.0, 100),
			rts.NewRTTask("diagnostics", 10.0, 200),
			rts.NewRTTask("telemetry-uplink", 20.0, 1000),
		},
		Sec: []rts.SecurityTask{
			{Name: "can-anomaly-scan", C: 40, TDes: 500, TMax: 5000},
			{Name: "ecu-flash-hash", C: 250, TDes: 5000, TMax: 50000},
			{Name: "sensor-plausibility", C: 60, TDes: 1000, TMax: 10000},
			{Name: "obd-port-monitor", C: 30, TDes: 2000, TMax: 20000},
		},
	}
}

// avionics models an integrated-modular-avionics style partition set:
// harmonic periods from 25 to 800 ms and moderate utilization, with
// integrity monitoring of configuration tables and partition binaries.
func avionics() *Workload {
	return &Workload{
		Name:        "avionics",
		Description: "IMA-style partition set with configuration-integrity monitoring",
		RT: []rts.RTTask{
			rts.NewRTTask("flight-control-law", 5, 25),
			rts.NewRTTask("air-data", 6, 50),
			rts.NewRTTask("autopilot", 10, 100),
			rts.NewRTTask("nav-fusion", 15, 200),
			rts.NewRTTask("display-manager", 30, 400),
			rts.NewRTTask("maintenance-log", 40, 800),
		},
		Sec: []rts.SecurityTask{
			{Name: "partition-table-hash", C: 200, TDes: 2000, TMax: 20000},
			{Name: "config-integrity", C: 300, TDes: 4000, TMax: 40000},
			{Name: "bus-traffic-monitor", C: 150, TDes: 1000, TMax: 10000},
			{Name: "binary-attestation", C: 500, TDes: 8000, TMax: 80000},
			{Name: "sensor-crosscheck", C: 100, TDes: 1500, TMax: 15000},
		},
	}
}
