package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"hydra/internal/online"
	"hydra/internal/partition"
	"hydra/internal/rts"
	"hydra/internal/syspersist"
	"hydra/internal/tasksetio"
)

// SystemCreateRequest is the body of POST /v1/systems: the initial taskset
// plus the scheme and partition heuristic the system will live under. The id
// is optional (a random one is drawn when absent); supply one for idempotent
// infrastructure-as-code setups.
type SystemCreateRequest struct {
	ID        string             `json:"id,omitempty"`
	Scheme    string             `json:"scheme,omitempty"`
	Heuristic string             `json:"heuristic,omitempty"`
	Taskset   tasksetio.Document `json:"taskset"`
	// ReallocateAfter sets the system's auto-reallocate policy: after this
	// many consecutive rejections the system reallocates once and retries
	// the rejected admission. Zero (the default) disables the policy.
	ReallocateAfter int `json:"reallocate_after,omitempty"`
}

// SystemRTTaskJSON is one committed real-time task of a system.
type SystemRTTaskJSON struct {
	Name     string  `json:"name"`
	WCET     float64 `json:"wcet_ms"`
	Period   float64 `json:"period_ms"`
	Deadline float64 `json:"deadline_ms,omitempty"` // omitted when equal to the period
	Core     int     `json:"core"`
}

// SystemSecTaskJSON is one committed security task of a system with its
// adapted period.
type SystemSecTaskJSON struct {
	Name          string  `json:"name"`
	WCET          float64 `json:"wcet_ms"`
	DesiredPeriod float64 `json:"desired_period_ms"`
	MaxPeriod     float64 `json:"max_period_ms"`
	Weight        float64 `json:"weight,omitempty"`
	Core          int     `json:"core"`
	PeriodMS      float64 `json:"period_ms"`
	Tightness     float64 `json:"tightness"`
}

// SystemJSON is the wire form of one system's committed state.
type SystemJSON struct {
	ID                  string              `json:"id"`
	Scheme              string              `json:"scheme"`
	Heuristic           string              `json:"heuristic"`
	Cores               int                 `json:"cores"`
	Version             uint64              `json:"version"`
	RTTasks             []SystemRTTaskJSON  `json:"rt_tasks"`
	SecurityTasks       []SystemSecTaskJSON `json:"security_tasks"`
	CumulativeTightness float64             `json:"cumulative_tightness"`
}

// SystemListResponse is the body of GET /v1/systems.
type SystemListResponse struct {
	Schemes []string     `json:"schemes"` // schemes systems can be created with
	Systems []SystemJSON `json:"systems"`
}

// SystemTaskRequest is the body of POST /v1/systems/{id}/tasks: exactly one
// of the two task shapes.
type SystemTaskRequest struct {
	RTTask       *tasksetio.RTTaskJSON       `json:"rt_task,omitempty"`
	SecurityTask *tasksetio.SecurityTaskJSON `json:"security_task,omitempty"`
}

// SystemTaskResponse reports an admission decision. Admitted decisions carry
// the placement; rejections (HTTP 409) carry the per-core verdicts.
type SystemTaskResponse struct {
	Admitted  bool                 `json:"admitted"`
	Task      string               `json:"task"`
	Kind      string               `json:"kind"`
	Version   uint64               `json:"version"`
	Core      int                  `json:"core"`
	PeriodMS  float64              `json:"period_ms,omitempty"`
	Tightness float64              `json:"tightness,omitempty"`
	Reason    string               `json:"reason,omitempty"`
	Cores     []online.CoreVerdict `json:"cores,omitempty"`
}

// SystemRemoveResponse reports a removal.
type SystemRemoveResponse struct {
	Removed bool   `json:"removed"`
	Task    string `json:"task"`
	Kind    string `json:"kind"`
	Core    int    `json:"core"`
	Version uint64 `json:"version"`
}

// SystemDeleteResponse reports a system deletion.
type SystemDeleteResponse struct {
	Deleted bool   `json:"deleted"`
	ID      string `json:"id"`
}

func systemJSON(snap online.Snapshot) SystemJSON {
	out := SystemJSON{
		ID:                  snap.ID,
		Scheme:              snap.Scheme,
		Heuristic:           snap.Heuristic.String(),
		Cores:               snap.M,
		Version:             snap.Version,
		RTTasks:             []SystemRTTaskJSON{},
		SecurityTasks:       []SystemSecTaskJSON{},
		CumulativeTightness: snap.Cumulative,
	}
	for _, p := range snap.RT {
		j := SystemRTTaskJSON{Name: p.Task.Name, WCET: p.Task.C, Period: p.Task.T, Core: p.Core}
		if p.Task.D != p.Task.T {
			j.Deadline = p.Task.D
		}
		out.RTTasks = append(out.RTTasks, j)
	}
	for _, p := range snap.Sec {
		out.SecurityTasks = append(out.SecurityTasks, SystemSecTaskJSON{
			Name:          p.Task.Name,
			WCET:          p.Task.C,
			DesiredPeriod: p.Task.TDes,
			MaxPeriod:     p.Task.TMax,
			Weight:        p.Task.Weight,
			Core:          p.Core,
			PeriodMS:      p.Period,
			Tightness:     p.Tightness(),
		})
	}
	return out
}

// systemStatus maps an online-package error onto an HTTP status: conflicts
// with existing state (duplicate names/ids, a full registry) are 409s,
// unknown names 404s, and everything else a malformed request.
func systemStatus(err error) int {
	var rej *online.Rejection
	switch {
	case errors.As(err, &rej),
		errors.Is(err, online.ErrDuplicateName),
		errors.Is(err, syspersist.ErrSystemExists),
		errors.Is(err, syspersist.ErrRegistryFull),
		errors.Is(err, syspersist.ErrClosed):
		return http.StatusConflict
	case errors.Is(err, online.ErrNotFound):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleSystemCreate(w http.ResponseWriter, r *http.Request) {
	var req SystemCreateRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	h, err := partition.ParseHeuristic(req.Heuristic)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := req.Taskset.ToProblem()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.ReallocateAfter < 0 {
		writeError(w, http.StatusBadRequest, "reallocate_after must be >= 0, got %d", req.ReallocateAfter)
		return
	}
	sp := traceFrom(r.Context()).StartSpan("persist-apply")
	sys, err := s.systems.Create(req.ID, req.Scheme, h, p.M, p.RT, p.RTPartition, p.Sec, req.ReallocateAfter)
	sp.End()
	if err != nil {
		writeError(w, systemStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, systemJSON(sys.Snapshot()))
}

func (s *Server) handleSystemList(w http.ResponseWriter, r *http.Request) {
	resp := SystemListResponse{Schemes: online.SupportedSchemes(), Systems: []SystemJSON{}}
	for _, sys := range s.systems.List() {
		resp.Systems = append(resp.Systems, systemJSON(sys.Snapshot()))
	}
	writeJSON(w, http.StatusOK, resp)
}

// getSystem resolves {id} or writes a 404.
func (s *Server) getSystem(w http.ResponseWriter, r *http.Request) (*syspersist.DurableSystem, bool) {
	id := r.PathValue("id")
	sys, ok := s.systems.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such system %q", id)
		return nil, false
	}
	return sys, true
}

func (s *Server) handleSystemGet(w http.ResponseWriter, r *http.Request) {
	sys, ok := s.getSystem(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, systemJSON(sys.Snapshot()))
}

func (s *Server) handleSystemDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.systems.Delete(id) {
		writeError(w, http.StatusNotFound, "no such system %q", id)
		return
	}
	writeJSON(w, http.StatusOK, SystemDeleteResponse{Deleted: true, ID: id})
}

func (s *Server) handleSystemAddTask(w http.ResponseWriter, r *http.Request) {
	sys, ok := s.getSystem(w, r)
	if !ok {
		return
	}
	var req SystemTaskRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if (req.RTTask == nil) == (req.SecurityTask == nil) {
		writeError(w, http.StatusBadRequest, "supply exactly one of rt_task or security_task")
		return
	}
	var (
		name      string
		kind      online.TaskKind
		placement online.Placement
		err       error
	)
	sp := traceFrom(r.Context()).StartSpan("persist-apply")
	if req.RTTask != nil {
		t := *req.RTTask
		deadline := t.Deadline
		if deadline == 0 {
			deadline = t.Period
		}
		name, kind = t.Name, online.KindRT
		placement, err = sys.AddRT(rts.RTTask{Name: t.Name, C: t.WCET, T: t.Period, D: deadline})
	} else {
		t := *req.SecurityTask
		name, kind = t.Name, online.KindSecurity
		placement, err = sys.AddSecurity(rts.SecurityTask{
			Name: t.Name, C: t.WCET, TDes: t.DesiredPeriod, TMax: t.MaxPeriod, Weight: t.Weight,
		})
	}
	sp.End()
	if err != nil {
		var rej *online.Rejection
		if errors.As(err, &rej) {
			writeJSON(w, http.StatusConflict, SystemTaskResponse{
				Admitted: false, Task: name, Kind: string(kind), Version: rej.Version,
				Core: -1, Reason: rej.Error(), Cores: rej.Cores,
			})
			return
		}
		writeError(w, systemStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, SystemTaskResponse{
		Admitted: true, Task: name, Kind: string(kind), Version: placement.Version,
		Core: placement.Core, PeriodMS: placement.Period, Tightness: placement.Tightness,
	})
}

func (s *Server) handleSystemRemoveTask(w http.ResponseWriter, r *http.Request) {
	sys, ok := s.getSystem(w, r)
	if !ok {
		return
	}
	name := r.PathValue("task")
	sp := traceFrom(r.Context()).StartSpan("persist-apply")
	removed, err := sys.Remove(name)
	sp.End()
	if err != nil {
		writeError(w, systemStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, SystemRemoveResponse{
		Removed: true, Task: name, Kind: string(removed.Kind), Core: removed.Core, Version: removed.Version,
	})
}

func (s *Server) handleSystemReallocate(w http.ResponseWriter, r *http.Request) {
	sys, ok := s.getSystem(w, r)
	if !ok {
		return
	}
	sp := traceFrom(r.Context()).StartSpan("persist-apply")
	snap, err := sys.Reallocate()
	sp.End()
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, systemJSON(snap))
}

// handleSystemEvents streams the system's decision log as server-sent
// events, mirroring the experiment jobs stream: one "decision" event per log
// entry, in version order. Retained events with version > ?since (default 0:
// everything retained) are replayed first; with ?follow=1 the stream then
// stays open for live decisions until the client disconnects or the system
// is deleted, otherwise it closes once caught up (the curl- and golden-
// friendly default).
func (s *Server) handleSystemEvents(w http.ResponseWriter, r *http.Request) {
	sys, ok := s.getSystem(w, r)
	if !ok {
		return
	}
	since := uint64(0)
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad since %q: %v", q, err)
			return
		}
		since = v
	}
	follow := r.URL.Query().Get("follow") == "1"
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		events, changed := sys.EventsSince(since)
		for _, e := range events {
			body, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: decision\ndata: %s\n\n", body); err != nil {
				return
			}
			since = e.Version
		}
		flusher.Flush()
		if !follow {
			return
		}
		select {
		case <-changed:
			// Deleted systems log no further events; detect deletion so the
			// stream does not linger until the client gives up. Compare by
			// identity, not id: a delete-and-recreate under the same id must
			// end this stream (its watch channel belongs to the dead system).
			if cur, live := s.systems.Get(sys.ID()); !live || cur != sys {
				return
			}
		case <-ctx.Done():
			return
		}
	}
}
