package service

import (
	"sync"
	"sync/atomic"
	"time"

	"hydra/internal/stats"
)

// latencyStripes is how many independently locked sample rings one latency
// series spreads over. Record picks a stripe round-robin with a single atomic
// increment, so the hot path never serializes concurrent requests on one
// mutex; snapshots merge every stripe's window. A fixed power of two keeps
// stripe selection a mask and the zero value of latencyRecorder usable.
const latencyStripes = 8

// latencyWindow is how many recent samples each latency series retains in
// total (split evenly across stripes); the reported quantiles are over this
// sliding window, keeping the recorder's memory bounded no matter how long
// the server runs.
const latencyWindow = 4096

// latencyStripeWindow is one stripe's share of the window.
const latencyStripeWindow = latencyWindow / latencyStripes

// LatencyStats summarizes one request-latency series in milliseconds.
type LatencyStats struct {
	Count  uint64  `json:"count"`   // total requests observed (not just the window)
	MeanMS float64 `json:"mean_ms"` // over the retained window
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// latencyStripe is one independently locked ring of recent samples.
type latencyStripe struct {
	mu      sync.Mutex
	samples []float64 // milliseconds, ring buffer
	next    int
	count   uint64
}

func (l *latencyStripe) add(ms float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count++
	if len(l.samples) < latencyStripeWindow {
		l.samples = append(l.samples, ms)
		return
	}
	l.samples[l.next] = ms
	l.next = (l.next + 1) % latencyStripeWindow
}

// latencyRecorder keeps a bounded, striped ring of recent latency samples.
// The zero value is ready to use.
type latencyRecorder struct {
	n       atomic.Uint64
	stripes [latencyStripes]latencyStripe
}

func (l *latencyRecorder) add(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	// Round-robin stripe selection: one atomic add instead of one shared
	// mutex. Concurrent recorders land on different stripes and proceed
	// independently.
	l.stripes[l.n.Add(1)&(latencyStripes-1)].add(ms)
}

func (l *latencyRecorder) snapshot() LatencyStats {
	window := make([]float64, 0, latencyWindow)
	var count uint64
	for i := range l.stripes {
		s := &l.stripes[i]
		s.mu.Lock()
		window = append(window, s.samples...)
		count += s.count
		s.mu.Unlock()
	}
	out := LatencyStats{Count: count}
	if len(window) == 0 {
		return out
	}
	e := stats.NewECDF(window)
	out.MeanMS = e.Mean()
	out.P50MS = e.Quantile(0.5)
	out.P90MS = e.Quantile(0.9)
	out.P99MS = e.Quantile(0.99)
	out.MaxMS = e.Max()
	return out
}
