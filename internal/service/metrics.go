package service

import (
	"sync"
	"time"

	"hydra/internal/stats"
)

// latencyWindow is how many recent samples each latency series retains; the
// reported quantiles are over this sliding window, keeping the recorder's
// memory bounded no matter how long the server runs.
const latencyWindow = 4096

// LatencyStats summarizes one request-latency series in milliseconds.
type LatencyStats struct {
	Count  uint64  `json:"count"`   // total requests observed (not just the window)
	MeanMS float64 `json:"mean_ms"` // over the retained window
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// latencyRecorder keeps a bounded ring of recent latency samples.
type latencyRecorder struct {
	mu      sync.Mutex
	samples []float64 // milliseconds, ring buffer
	next    int
	count   uint64
}

func (l *latencyRecorder) add(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count++
	if len(l.samples) < latencyWindow {
		l.samples = append(l.samples, ms)
		return
	}
	l.samples[l.next] = ms
	l.next = (l.next + 1) % latencyWindow
}

func (l *latencyRecorder) snapshot() LatencyStats {
	l.mu.Lock()
	window := append([]float64(nil), l.samples...)
	count := l.count
	l.mu.Unlock()
	out := LatencyStats{Count: count}
	if len(window) == 0 {
		return out
	}
	e := stats.NewECDF(window)
	out.MeanMS = e.Mean()
	out.P50MS = e.Quantile(0.5)
	out.P90MS = e.Quantile(0.9)
	out.MaxMS = e.Max()
	return out
}
