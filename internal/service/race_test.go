//go:build race

package service

// The race detector's runtime instrumentation allocates on its own behalf,
// so AllocsPerRun-based gates are meaningless under -race. Tests that pin
// allocation counts check this flag and skip.
func init() { raceEnabled = true }
