package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hydra/internal/jobs"
)

func postJSON(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	return post(t, s, path, body)
}

func del(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodDelete, path, nil))
	return w
}

// submitExperiment posts a campaign and returns its queued status.
func submitExperiment(t *testing.T, s *Server, body string) jobs.Status {
	t.Helper()
	w := postJSON(t, s, "/v1/experiments", body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", w.Code, w.Body)
	}
	var st jobs.Status
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatalf("submit returned no job id: %s", w.Body)
	}
	return st
}

// waitJob polls the status endpoint until the job reaches a terminal state.
func waitJob(t *testing.T, s *Server, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		w := get(t, s, "/v1/experiments/"+id)
		if w.Code != http.StatusOK {
			t.Fatalf("status: %d: %s", w.Code, w.Body)
		}
		var st jobs.Status
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never finished")
	return jobs.Status{}
}

func TestExperimentLifecycle(t *testing.T) {
	s := newServer(t)
	st := submitExperiment(t, s, `{"experiment": "fig2", "config": {"M": 2, "TasksetsPerPoint": 2, "UtilStepFrac": 0.25, "Seed": 7}}`)
	final := waitJob(t, s, st.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("final state %s (error %q)", final.State, final.Error)
	}
	if final.TotalCells != 6 || final.DoneCells != 6 {
		t.Fatalf("progress %+v, want 6/6 cells", final)
	}

	first := get(t, s, "/v1/experiments/"+st.ID+"/result")
	if first.Code != http.StatusOK {
		t.Fatalf("result: %d: %s", first.Code, first.Body)
	}
	var res struct {
		ResultsVersion int `json:"results_version"`
		Points         []struct {
			TotalUtil float64
			Schemes   []string
		}
	}
	if err := json.Unmarshal(first.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.ResultsVersion != 2 || len(res.Points) != 3 || res.Points[0].Schemes[0] != "hydra" {
		t.Fatalf("unexpected result: %s", first.Body)
	}
	// Result replays are byte-identical.
	second := get(t, s, "/v1/experiments/"+st.ID+"/result")
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("repeated result request returned different bytes")
	}

	// The job shows up in the listing together with the spec catalogue.
	var list ExperimentListResponse
	if err := json.Unmarshal(get(t, s, "/v1/experiments").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("listing: %+v", list.Jobs)
	}
	found := false
	for _, n := range list.Experiments {
		if n == "fig2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("spec catalogue missing fig2: %v", list.Experiments)
	}

	// Job counters surface on /v1/stats.
	var stats StatsResponse
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Jobs.Submitted != 1 || stats.Jobs.Done != 1 || stats.Jobs.CellsCompleted != 6 {
		t.Fatalf("job stats: %+v", stats.Jobs)
	}
}

func TestExperimentSubmitErrors(t *testing.T) {
	s := newServer(t)
	cases := []struct {
		body string
		code int
	}{
		{`{"experiment": "bogus"}`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{not json`, http.StatusBadRequest},
		{`{"experiment": "fig2", "bogus": 1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if w := postJSON(t, s, "/v1/experiments", tc.body); w.Code != tc.code {
			t.Errorf("body %q: status %d, want %d (%s)", tc.body, w.Code, tc.code, w.Body)
		}
	}
	// A syntactically valid config with unknown fields fails the job, not
	// the submission.
	st := submitExperiment(t, s, `{"experiment": "fig2", "config": {"Bogus": 1}}`)
	final := waitJob(t, s, st.ID)
	if final.State != jobs.StateFailed || final.Error == "" {
		t.Fatalf("final %+v, want failed with error", final)
	}
	if w := get(t, s, "/v1/experiments/"+st.ID+"/result"); w.Code != http.StatusInternalServerError {
		t.Fatalf("failed job result: status %d, want 500", w.Code)
	}
}

func TestExperimentUnknownJob(t *testing.T) {
	s := newServer(t)
	for _, probe := range []func() *httptest.ResponseRecorder{
		func() *httptest.ResponseRecorder { return get(t, s, "/v1/experiments/nope") },
		func() *httptest.ResponseRecorder { return get(t, s, "/v1/experiments/nope/result") },
		func() *httptest.ResponseRecorder { return get(t, s, "/v1/experiments/nope/events") },
		func() *httptest.ResponseRecorder { return del(t, s, "/v1/experiments/nope") },
	} {
		if w := probe(); w.Code != http.StatusNotFound {
			t.Errorf("status %d, want 404: %s", w.Code, w.Body)
		}
	}
}

func TestExperimentCancel(t *testing.T) {
	s := newServer(t)
	// A big fig2 grid: 39 levels x 250 draws won't finish before the cancel.
	st := submitExperiment(t, s, `{"experiment": "fig2", "config": {"M": 2, "Seed": 1, "Workers": 1}}`)
	w := del(t, s, "/v1/experiments/"+st.ID)
	if w.Code != http.StatusOK {
		t.Fatalf("cancel: %d: %s", w.Code, w.Body)
	}
	final := waitJob(t, s, st.ID)
	if final.State != jobs.StateCancelled {
		t.Fatalf("state %s, want cancelled", final.State)
	}
	if w := get(t, s, "/v1/experiments/"+st.ID+"/result"); w.Code != http.StatusConflict {
		t.Fatalf("cancelled job result: status %d, want 409", w.Code)
	}
	// Cancelling again is a no-op.
	if w := del(t, s, "/v1/experiments/"+st.ID); w.Code != http.StatusOK {
		t.Fatalf("re-cancel: %d", w.Code)
	}
}

// The SSE stream delivers status snapshots and terminates on the terminal
// one.
func TestExperimentEventsStream(t *testing.T) {
	s := newServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := submitExperiment(t, s, `{"experiment": "fig2", "config": {"M": 2, "TasksetsPerPoint": 4, "UtilStepFrac": 0.1, "Seed": 3}}`)
	resp, err := http.Get(ts.URL + "/v1/experiments/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var events []jobs.Status
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev jobs.Status
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	last := events[len(events)-1]
	if last.State != jobs.StateDone || last.DoneCells != 36 {
		t.Fatalf("terminal event %+v", last)
	}
	for _, ev := range events {
		if ev.ID != st.ID {
			t.Fatalf("event for wrong job: %+v", ev)
		}
	}
}

// Campaigns persisted in a jobs dir survive a server restart: an interrupted
// job resumes and its result is byte-identical to an uninterrupted run.
func TestExperimentSurvivesServerRestart(t *testing.T) {
	dir := t.TempDir()
	// A big one-worker grid so the shutdown reliably lands mid-campaign;
	// the reference runs at 8 workers, which by the engine's determinism
	// guarantee must not change a byte of the result.
	config := `{"experiment": "fig2", "config": {"M": 2, "TasksetsPerPoint": 400, "UtilStepFrac": 0.05, "Seed": 9, "Workers": 1}}`
	reference := strings.Replace(config, `"Workers": 1`, `"Workers": 8`, 1)

	// Uninterrupted reference run on a throwaway server.
	ref := newServer(t)
	refSt := submitExperiment(t, ref, reference)
	if final := waitJob(t, ref, refSt.ID); final.State != jobs.StateDone {
		t.Fatalf("reference run: %+v", final)
	}
	want := get(t, ref, "/v1/experiments/"+refSt.ID+"/result").Body.Bytes()

	s1, err := New(Config{JobsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st := submitExperiment(t, s1, config)
	// Wait until the campaign is well inside the grid (so the shutdown
	// cannot race its completion), then kill the server.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var got jobs.Status
		if err := json.Unmarshal(get(t, s1, "/v1/experiments/"+st.ID).Body.Bytes(), &got); err != nil {
			t.Fatal(err)
		}
		if got.DoneCells >= 100 && got.DoneCells <= got.TotalCells/2 {
			break
		}
		if got.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("campaign too fast or stuck to interrupt mid-grid: %+v", got)
		}
	}
	s1.Close()

	s2, err := New(Config{JobsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	final := waitJob(t, s2, st.ID)
	if final.State != jobs.StateDone || final.ReplayedCells < 100 {
		t.Fatalf("resumed job: %+v", final)
	}
	got := get(t, s2, "/v1/experiments/"+st.ID+"/result")
	if got.Code != http.StatusOK {
		t.Fatalf("result: %d: %s", got.Code, got.Body)
	}
	if !bytes.Equal(got.Body.Bytes(), want) {
		t.Fatal("resumed result differs from uninterrupted run")
	}
	var stats StatsResponse
	if err := json.Unmarshal(get(t, s2, "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Jobs.Resumed != 1 {
		t.Fatalf("resumed counter: %+v", stats.Jobs)
	}
}

// Sorted scheme listing pins stable diffs for clients and golden files.
func TestSchemesSorted(t *testing.T) {
	s := newServer(t)
	var sr SchemesResponse
	if err := json.Unmarshal(get(t, s, "/v1/schemes").Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sr.Schemes); i++ {
		if sr.Schemes[i-1] >= sr.Schemes[i] {
			t.Fatalf("schemes not sorted at %d: %v", i, sr.Schemes)
		}
	}
	if len(sr.Schemes) == 0 {
		t.Fatal("no schemes listed")
	}
}
