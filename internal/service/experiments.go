package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"hydra/internal/experiments"
	"hydra/internal/jobs"
)

// ExperimentRequest is the body of POST /v1/experiments: the experiment spec
// name (see experiments.SpecNames: table1, fig1, fig2, fig3, ablation) plus
// its JSON config (empty selects the paper's defaults). The campaign runs in
// the background; the response is the queued job's status, led by its id.
type ExperimentRequest struct {
	Experiment string          `json:"experiment"`
	Config     json.RawMessage `json:"config,omitempty"`
}

// ExperimentListResponse is the body of GET /v1/experiments.
type ExperimentListResponse struct {
	Experiments []string      `json:"experiments"` // runnable spec names
	Jobs        []jobs.Status `json:"jobs"`        // every known job, by id
}

func (s *Server) handleExperimentSubmit(w http.ResponseWriter, r *http.Request) {
	var req ExperimentRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if req.Experiment == "" {
		writeError(w, http.StatusBadRequest, "experiment name required (one of: %v)", experiments.SpecNames())
		return
	}
	// The caller's fault (unknown experiment) is a 400; everything Submit
	// can fail with beyond that (jobs dir I/O, entropy) is the server's.
	if _, err := experiments.ResolveSpec(req.Experiment); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st, err := s.jobs.Submit(req.Experiment, req.Config)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ExperimentListResponse{
		Experiments: experiments.SpecNames(),
		Jobs:        s.jobs.List(),
	})
}

func (s *Server) handleExperimentStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such experiment job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleExperimentResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such experiment job %q", id)
		return
	}
	switch st.State {
	case jobs.StateDone:
	case jobs.StateFailed:
		writeError(w, http.StatusInternalServerError, "experiment job %s failed: %s", id, st.Error)
		return
	default:
		writeError(w, http.StatusConflict, "experiment job %s is %s; result not ready", id, st.State)
		return
	}
	body, err := s.jobs.Result(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// The persisted result bytes verbatim: identical for resumed and
	// uninterrupted campaigns, and for every repeat of this request.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) handleExperimentCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, "no such experiment job %q", r.PathValue("id"))
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleExperimentEvents streams job status snapshots as server-sent events:
// one "status" event per state/progress change, closing after the terminal
// snapshot. Consecutive changes may be coalesced into one event; the last
// event always carries the job's final state.
func (s *Server) handleExperimentEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.jobs.Get(id); !ok {
		writeError(w, http.StatusNotFound, "no such experiment job %q", id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		// Grab the change channel BEFORE snapshotting so an update between
		// snapshot and wait still wakes the loop.
		changed, ok := s.jobs.Watch(id)
		if !ok {
			return
		}
		st, ok := s.jobs.Get(id)
		if !ok {
			return
		}
		body, err := json.Marshal(st)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: status\ndata: %s\n\n", body); err != nil {
			return
		}
		flusher.Flush()
		if st.State.Terminal() {
			return
		}
		select {
		case <-changed:
		case <-ctx.Done():
			return
		}
	}
}
