package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// hashedKey builds a realistic cache key (hex SHA-256) from a label, the
// same shape Key produces, so the stripe selector exercises its real path.
func hashedKey(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

// TestStripedCacheHammer drives 32 goroutines over overlapping keys and pins
// the striped cache's contracts: exactly one computation per unique key
// (singleflight preserved across stripes), per-stripe counters that sum
// losslessly to the totals Stats reports, and contiguous eviction accounting
// (inserts = entries + evictions). Run with -race.
func TestStripedCacheHammer(t *testing.T) {
	const (
		goroutines = 32
		uniqueKeys = 48
		rounds     = 64
	)
	c := NewCacheStriped(16, 8) // small capacity so evictions actually happen
	if c.Stripes() != 8 {
		t.Fatalf("stripes = %d, want 8", c.Stripes())
	}

	keys := make([]string, uniqueKeys)
	for i := range keys {
		keys[i] = hashedKey(fmt.Sprintf("key-%03d", i))
	}
	var computed [uniqueKeys]atomic.Int64
	var inFlightComputes [uniqueKeys]atomic.Int64

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Overlapping access pattern: every goroutine walks the key
				// space at its own phase, so identical keys race constantly.
				i := (g*7 + r) % uniqueKeys
				val, _, err := c.Do(keys[i], func() ([]byte, error) {
					if n := inFlightComputes[i].Add(1); n != 1 {
						t.Errorf("key %d: %d concurrent computations", i, n)
					}
					defer inFlightComputes[i].Add(-1)
					computed[i].Add(1)
					return []byte(fmt.Sprintf("value-%03d", i)), nil
				})
				if err != nil {
					t.Errorf("Do(%d): %v", i, err)
					return
				}
				if want := fmt.Sprintf("value-%03d", i); string(val) != want {
					t.Errorf("key %d returned %q, want %q", i, val, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Never more than one computation at a time per key; with a cache larger
	// than zero, every key computes at least once.
	var totalComputes uint64
	for i := range computed {
		n := computed[i].Load()
		if n < 1 {
			t.Errorf("key %d never computed", i)
		}
		totalComputes += uint64(n)
	}

	total := c.Stats()
	perStripe := c.StripeStats()
	if len(perStripe) != c.Stripes() {
		t.Fatalf("StripeStats returned %d stripes, want %d", len(perStripe), c.Stripes())
	}
	var summed CacheStats
	for _, st := range perStripe {
		summed.add(st)
	}
	if summed != total {
		t.Fatalf("per-stripe counters do not sum to totals:\nsum    %+v\ntotals %+v", summed, total)
	}

	// Counter book-keeping: every Do is a hit, a miss or a coalesced wait;
	// misses equal actual computations; eviction accounting is contiguous
	// (every successful computation was inserted, and every insert is either
	// still resident or was evicted).
	if got, want := total.Hits+total.Misses+total.Coalesced, uint64(goroutines*rounds); got != want {
		t.Fatalf("hits+misses+coalesced = %d, want %d", got, want)
	}
	if total.Misses != totalComputes {
		t.Fatalf("misses = %d, computations = %d", total.Misses, totalComputes)
	}
	if uint64(total.Entries)+total.Evictions != total.Misses {
		t.Fatalf("entries(%d) + evictions(%d) != inserts(%d)", total.Entries, total.Evictions, total.Misses)
	}
	if total.Entries > total.Capacity {
		t.Fatalf("entries %d exceed capacity %d", total.Entries, total.Capacity)
	}
	for i, st := range perStripe {
		if st.Entries > st.Capacity {
			t.Fatalf("stripe %d: entries %d exceed capacity %d", i, st.Entries, st.Capacity)
		}
	}
}

// TestStripedCacheStatsMatchServiceTotals pins that the totals /v1/stats
// reports are exactly the lossless sum of the per-stripe counters after
// concurrent load through the full HTTP path.
func TestStripedCacheStatsMatchServiceTotals(t *testing.T) {
	s := newServer(t)
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 8; r++ {
				// A few distinct problems plus repeats: hits, misses and
				// coalesced waits all occur.
				body := allocateBody(sampleTaskset, "")
				if g%2 == 0 {
					body = allocateBody(fmt.Sprintf(`{
					  "cores": 2,
					  "rt_tasks": [{"name": "ctl", "wcet_ms": 5, "period_ms": %d}],
					  "security_tasks": [{"name": "tw", "wcet_ms": 50, "desired_period_ms": 1000, "max_period_ms": 10000}]
					}`, 20+r), "")
				}
				if w := post(t, s, "/v1/allocate", body); w.Code != 200 {
					t.Errorf("status %d: %s", w.Code, w.Body)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	var st StatsResponse
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	var summed CacheStats
	for _, stripe := range s.cache.StripeStats() {
		summed.add(stripe)
	}
	if summed != st.Cache {
		t.Fatalf("/v1/stats cache counters != per-stripe sum:\nstats %+v\nsum   %+v", st.Cache, summed)
	}
	if st.Cache.Hits+st.Cache.Misses+st.Cache.Coalesced != goroutines*8 {
		t.Fatalf("request accounting off: %+v", st.Cache)
	}
}

// TestCacheStripesConfigValidation pins the Config.CacheStripes contract:
// zero selects the GOMAXPROCS-derived default, in-range values are rounded
// up to a power of two, and out-of-range values fail construction with a
// clear error.
func TestCacheStripesConfigValidation(t *testing.T) {
	for _, bad := range []int{-1, -100, maxCacheStripes + 1} {
		if _, err := New(Config{CacheStripes: bad}); err == nil {
			t.Errorf("CacheStripes=%d: want construction error", bad)
		}
	}
	s, err := New(Config{CacheStripes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.cache.Stripes(); got != 4 {
		t.Fatalf("CacheStripes=3 rounded to %d stripes, want 4", got)
	}
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got, want := d.cache.Stripes(), DefaultCacheStripes(); got != want {
		t.Fatalf("default stripes = %d, want %d", got, want)
	}
}
