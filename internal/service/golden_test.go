package service

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden response files")

// TestGoldenResponses pins the exact JSON shape of each endpoint's response.
// Regenerate with: go test ./internal/service -run TestGoldenResponses -update
func TestGoldenResponses(t *testing.T) {
	s := newServer(t)
	allocate := post(t, s, "/v1/allocate", allocateBody(sampleTaskset, ""))
	if allocate.Code != 200 {
		t.Fatalf("allocate: %d %s", allocate.Code, allocate.Body)
	}
	verifyBody := fmt.Sprintf(`{"taskset": %s, "result": %s}`, sampleTaskset, strings.TrimSpace(allocate.Body.String()))
	batchBody := fmt.Sprintf(`{"workers": 2, "tasksets": [%s, %s]}`, sampleTaskset, sampleTasksetPermuted)

	// Stats come from a fresh server so every counter is deterministically
	// zero; schemes likewise (the listing includes this test binary's
	// registered test allocators, which is fine — goldens pin the shape).
	fresh := newServer(t)

	// Online systems: a deterministic decision sequence on fixed ids pins
	// every /v1/systems endpoint's shape, including an admission rejection.
	sysCreate := post(t, s, "/v1/systems", createSystemBody("golden"))
	sysAdd := post(t, s, "/v1/systems/golden/tasks",
		`{"security_task": {"name": "scan", "wcet_ms": 10, "desired_period_ms": 2000, "max_period_ms": 20000}}`)
	tightCreate := post(t, s, "/v1/systems", `{"id": "golden-tight", "taskset": {
	  "cores": 2,
	  "rt_tasks": [
	    {"name": "a", "wcet_ms": 80, "period_ms": 100},
	    {"name": "b", "wcet_ms": 80, "period_ms": 100}
	  ],
	  "security_tasks": []
	}}`)
	if sysCreate.Code != 201 || sysAdd.Code != 200 || tightCreate.Code != 201 {
		t.Fatalf("system setup: %d %d %d", sysCreate.Code, sysAdd.Code, tightCreate.Code)
	}
	sysReject := post(t, s, "/v1/systems/golden-tight/tasks",
		`{"security_task": {"name": "fat", "wcet_ms": 90, "desired_period_ms": 100, "max_period_ms": 120}}`)
	sysGet := get(t, s, "/v1/systems/golden")
	sysList := get(t, s, "/v1/systems")
	sysRemove := del(t, s, "/v1/systems/golden/tasks/scan")
	sysRealloc := post(t, s, "/v1/systems/golden/reallocate", "")
	sysEvents := get(t, s, "/v1/systems/golden/events")
	sysDelete := del(t, s, "/v1/systems/golden-tight")

	cases := []struct {
		name string
		got  []byte
	}{
		{"allocate", allocate.Body.Bytes()},
		{"allocate_batch", post(t, s, "/v1/allocate/batch", batchBody).Body.Bytes()},
		{"verify", post(t, s, "/v1/verify", verifyBody).Body.Bytes()},
		{"simulate", post(t, s, "/v1/simulate", allocateBody(sampleTaskset, `"horizon_ms": 2000`)).Body.Bytes()},
		{"schemes", get(t, fresh, "/v1/schemes").Body.Bytes()},
		{"stats", get(t, fresh, "/v1/stats").Body.Bytes()},
		{"systems_create", sysCreate.Body.Bytes()},
		{"systems_add", sysAdd.Body.Bytes()},
		{"systems_add_reject", sysReject.Body.Bytes()},
		{"systems_get", sysGet.Body.Bytes()},
		{"systems_list", sysList.Body.Bytes()},
		{"systems_remove", sysRemove.Body.Bytes()},
		{"systems_reallocate", sysRealloc.Body.Bytes()},
		{"systems_events", sysEvents.Body.Bytes()},
		{"systems_delete", sysDelete.Body.Bytes()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", tc.name+".golden.json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, tc.got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(tc.got, want) {
				t.Fatalf("response drifted from golden %s:\ngot:\n%s\nwant:\n%s", path, tc.got, want)
			}
		})
	}
}
