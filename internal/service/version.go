package service

import (
	"net/http"
	"runtime"
	"runtime/debug"

	"hydra/internal/stats"
)

// VersionResponse is the body of GET /v1/version: what is running and under
// which default results contract — the first thing support asks for.
type VersionResponse struct {
	Version        string `json:"version"`         // module version ("devel" for untagged builds)
	Commit         string `json:"commit"`          // VCS revision ("unknown" outside a checkout)
	Modified       bool   `json:"modified"`        // VCS tree had local modifications
	GoVersion      string `json:"go_version"`      // toolchain that built the binary
	ResultsVersion int    `json:"results_version"` // default results contract for unpinned requests
}

// buildVersion derives the version report from the binary's embedded build
// info. Every field degrades to a stable placeholder when the info is
// absent (tests, go run): the endpoint never errors.
func buildVersion() VersionResponse {
	v := VersionResponse{
		Version:        "devel",
		Commit:         "unknown",
		GoVersion:      runtime.Version(),
		ResultsVersion: int(stats.DefaultResultsVersion),
	}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	if mv := info.Main.Version; mv != "" && mv != "(devel)" {
		v.Version = mv
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			if s.Value != "" {
				v.Commit = s.Value
			}
		case "vcs.modified":
			v.Modified = s.Value == "true"
		}
	}
	return v
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, buildVersion())
}
