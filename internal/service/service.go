package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hydra/internal/core"
	"hydra/internal/engine"
	"hydra/internal/experiments"
	"hydra/internal/jobs"
	"hydra/internal/obs"
	"hydra/internal/partition"
	"hydra/internal/sim"
	"hydra/internal/stats"
	"hydra/internal/syspersist"
	"hydra/internal/tasksetio"
)

// DefaultScheme is the allocation scheme used when a request leaves the
// scheme unset — the paper's HYDRA heuristic with its default configuration.
const DefaultScheme = "hydra"

// maxRequestBytes bounds request bodies; tasksets are small, so anything
// beyond this is either a mistake or abuse.
const maxRequestBytes = 8 << 20

// maxSimHorizonMS caps /v1/simulate horizons: simulation cost is linear in
// the horizon, and a serving endpoint must not run unbounded work.
const maxSimHorizonMS = 10_000_000

// defaultSimHorizonMS is the /v1/simulate horizon when the request leaves it
// unset.
const defaultSimHorizonMS = 10_000

// Config tunes a Server.
type Config struct {
	// CacheSize bounds the allocation result cache (entries). Zero or
	// negative selects 1024.
	CacheSize int
	// CacheStripes is the number of independently locked result-cache
	// stripes (rounded up to a power of two, max 256). Zero selects a
	// GOMAXPROCS-derived default (DefaultCacheStripes); negative is invalid.
	CacheStripes int
	// Workers is the default worker-pool width for batch requests that leave
	// workers unset. Zero selects GOMAXPROCS.
	Workers int
	// JobsDir is the experiment-campaign checkpoint directory. Interrupted
	// campaigns found there are resumed on startup. Empty selects a fresh
	// temporary directory (campaigns then do not survive the process).
	JobsDir string
	// MaxJobs bounds concurrently running experiment campaigns; queued
	// submissions wait for a slot. Zero or negative selects 2.
	MaxJobs int
	// MaxSystems bounds the long-lived online systems hosted under
	// /v1/systems. Zero or negative selects 64.
	MaxSystems int
	// SystemsDir is the persistence root for hosted systems: each lives as a
	// manifest + write-ahead op log + periodic snapshot and is recovered on
	// startup by log replay. Empty selects a fresh temporary directory
	// (systems then do not survive the process).
	SystemsDir string
	// SystemShards is the number of independently locked registry shards
	// (rounded up to a power of two, max 256), selected by consistent hash
	// of the system id. Zero selects a GOMAXPROCS-derived default
	// (syspersist.DefaultShards); negative is invalid.
	SystemShards int
	// SnapshotEvery is the op count between per-system snapshots (the replay
	// bound on recovery). Zero or negative selects 64.
	SnapshotEvery int
	// SystemWALSync forces every system op-log append to stable storage
	// before the mutation is acknowledged. Off by default — admissions stay
	// in the page cache and survive process crashes, not kernel crashes.
	SystemWALSync bool
	// TraceSample enables head-sampled request tracing: one trace per N
	// requests lands in the /v1/debug/traces ring. Zero (the default)
	// disables tracing entirely; the serving path then performs no trace
	// work at all.
	TraceSample int
	// TraceRing bounds the completed-trace ring. Zero or negative selects
	// obs.DefaultTraceRing.
	TraceRing int
	// Logger receives structured logs (service lifecycle plus the
	// per-request access log, the latter at Debug and 5xx at Error). Nil
	// selects a disabled logger: no levels enabled, no logging cost.
	Logger *slog.Logger
}

// Server implements the allocation service. Create with New; it is an
// http.Handler factory (Handler) plus a Close that cancels in-flight batch
// runs, which the hydra-serve binary ties to SIGINT.
type Server struct {
	cfg       Config
	cache     *Cache
	jobs      *jobs.Manager
	systems   *syspersist.Registry
	obs       *serverObs      // metrics registry, tracer, structured logger
	cold      latencyRecorder // allocate latency when the allocation actually ran
	hot       latencyRecorder // allocate latency when served from cache
	coalesced latencyRecorder // allocate latency when waiting on an identical in-flight run
	mux       *http.ServeMux
	ctx       context.Context
	cancel    context.CancelFunc
}

// New builds a Server with the given configuration. It opens the jobs
// directory and resumes any experiment campaigns interrupted by a previous
// process.
func New(cfg Config) (*Server, error) {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 1024
	}
	if cfg.CacheStripes < 0 || cfg.CacheStripes > maxCacheStripes {
		return nil, fmt.Errorf("service: cache stripes must be in [0, %d] (0 = GOMAXPROCS-derived default), got %d", maxCacheStripes, cfg.CacheStripes)
	}
	if cfg.SystemShards < 0 || cfg.SystemShards > 256 {
		return nil, fmt.Errorf("service: system shards must be in [0, 256] (0 = GOMAXPROCS-derived default), got %d", cfg.SystemShards)
	}
	if cfg.TraceSample < 0 {
		return nil, fmt.Errorf("service: trace sample must be non-negative (0 = off), got %d", cfg.TraceSample)
	}
	sobs := newServerObs(cfg)
	mgr, err := jobs.NewManager(cfg.JobsDir, cfg.MaxJobs)
	if err != nil {
		return nil, fmt.Errorf("service: open jobs dir: %w", err)
	}
	registry, err := syspersist.Open(syspersist.Options{
		Dir:           cfg.SystemsDir,
		Shards:        cfg.SystemShards,
		MaxSystems:    cfg.MaxSystems,
		SnapshotEvery: cfg.SnapshotEvery,
		Fsync:         cfg.SystemWALSync,
		Observer:      sobs,
	})
	if err != nil {
		mgr.Close()
		return nil, fmt.Errorf("service: open systems dir: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		cache:   NewCacheStriped(cfg.CacheSize, cfg.CacheStripes),
		jobs:    mgr,
		systems: registry,
		obs:     sobs,
		mux:     http.NewServeMux(),
		ctx:     ctx,
		cancel:  cancel,
	}
	s.bindMetrics()
	s.handle("POST /v1/allocate", s.handleAllocate)
	s.handle("POST /v1/allocate/batch", s.handleBatch)
	s.handle("POST /v1/verify", s.handleVerify)
	s.handle("POST /v1/simulate", s.handleSimulate)
	s.handle("POST /v1/experiments", s.handleExperimentSubmit)
	s.handle("GET /v1/experiments", s.handleExperimentList)
	s.handle("GET /v1/experiments/{id}", s.handleExperimentStatus)
	s.handle("GET /v1/experiments/{id}/result", s.handleExperimentResult)
	s.handle("GET /v1/experiments/{id}/events", s.handleExperimentEvents)
	s.handle("DELETE /v1/experiments/{id}", s.handleExperimentCancel)
	s.handle("POST /v1/systems", s.handleSystemCreate)
	s.handle("GET /v1/systems", s.handleSystemList)
	s.handle("GET /v1/systems/{id}", s.handleSystemGet)
	s.handle("DELETE /v1/systems/{id}", s.handleSystemDelete)
	s.handle("POST /v1/systems/{id}/tasks", s.handleSystemAddTask)
	s.handle("DELETE /v1/systems/{id}/tasks/{task}", s.handleSystemRemoveTask)
	s.handle("POST /v1/systems/{id}/reallocate", s.handleSystemReallocate)
	s.handle("GET /v1/systems/{id}/events", s.handleSystemEvents)
	s.handle("GET /v1/schemes", s.handleSchemes)
	s.handle("GET /v1/stats", s.handleStats)
	s.handle("GET /v1/version", s.handleVersion)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /v1/debug/traces", s.handleTraces)
	s.handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s, nil
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// JobsDir returns the experiment-campaign checkpoint directory.
func (s *Server) JobsDir() string { return s.jobs.Dir() }

// SystemsDir returns the hosted-system persistence root.
func (s *Server) SystemsDir() string { return s.systems.Dir() }

// Close cancels the server's base context — in-flight batch runs observe the
// cancellation between grid cells and return promptly — then stops the job
// manager, which interrupts running campaigns between cells and waits for
// their checkpoints to settle (they resume on the next start). Hosted
// systems flush a final snapshot so the next start recovers them without
// replay. Safe to call more than once.
func (s *Server) Close() {
	s.cancel()
	s.jobs.Close()
	s.systems.Close()
}

// requestContext derives a context cancelled when either the client goes
// away or the server is shut down.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.ctx, cancel)
	return ctx, func() { stop(); cancel() }
}

// AllocateRequest is the body of POST /v1/allocate: one taskset document
// plus the scheme (registry name, default "hydra") and the RT partition
// heuristic (default "best-fit"). ResultsVersion selects the RNG/results
// contract the answer is served under (0 = the current default); allocation
// itself is deterministic, but the version partitions the result cache and
// is echoed in the X-Results-Version response header, so clients pinning v1
// artifacts never share cache entries with v2 traffic. The response is a
// tasksetio.ResultJSON with tasks in canonical (name-sorted) order.
type AllocateRequest struct {
	Scheme         string             `json:"scheme,omitempty"`
	Heuristic      string             `json:"heuristic,omitempty"`
	ResultsVersion int                `json:"results_version,omitempty"`
	Taskset        tasksetio.Document `json:"taskset"`
}

// BatchRequest is the body of POST /v1/allocate/batch: many tasksets
// allocated under one scheme, fanned out on the experiment engine. Results
// are returned in request order regardless of worker scheduling.
type BatchRequest struct {
	Scheme         string               `json:"scheme,omitempty"`
	Heuristic      string               `json:"heuristic,omitempty"`
	ResultsVersion int                  `json:"results_version,omitempty"`
	Workers        int                  `json:"workers,omitempty"`
	Tasksets       []tasksetio.Document `json:"tasksets"`
}

// BatchResponse carries one ResultJSON document per requested taskset.
type BatchResponse struct {
	Results []json.RawMessage `json:"results"`
}

// VerifyRequest is the body of POST /v1/verify: a taskset and a previously
// computed result to check. When the taskset has no fixed rt_partition the
// result's own is used, else one is computed with the heuristic.
type VerifyRequest struct {
	Heuristic string               `json:"heuristic,omitempty"`
	Taskset   tasksetio.Document   `json:"taskset"`
	Result    tasksetio.ResultJSON `json:"result"`
}

// VerifyResponse reports the linear-bound (core.Verify) and exact-RTA
// (core.VerifyExact) verdicts for the submitted result.
type VerifyResponse struct {
	Valid      bool   `json:"valid"`
	Error      string `json:"error,omitempty"`
	ExactValid bool   `json:"exact_valid"`
	ExactError string `json:"exact_error,omitempty"`
}

// SimulateRequest is the body of POST /v1/simulate: allocate the taskset,
// then run the discrete-event schedule simulator over the horizon.
type SimulateRequest struct {
	Scheme    string             `json:"scheme,omitempty"`
	Heuristic string             `json:"heuristic,omitempty"`
	HorizonMS float64            `json:"horizon_ms,omitempty"`
	Taskset   tasksetio.Document `json:"taskset"`
}

// SimCoreJSON is one simulated core's summary.
type SimCoreJSON struct {
	Core        int     `json:"core"`
	Tasks       int     `json:"tasks"`
	Utilization float64 `json:"utilization"`
	IdleMS      float64 `json:"idle_ms"`
	Misses      int     `json:"misses"`
}

// SimulateResponse summarizes a simulation run (empty Cores when the
// allocation itself was infeasible).
type SimulateResponse struct {
	Scheme              string        `json:"scheme"`
	Schedulable         bool          `json:"schedulable"`
	Reason              string        `json:"reason,omitempty"`
	HorizonMS           float64       `json:"horizon_ms"`
	CumulativeTightness float64       `json:"cumulative_tightness"`
	Cores               []SimCoreJSON `json:"cores,omitempty"`
	TotalMisses         int           `json:"total_misses"`
}

// SchemesResponse lists the registered allocation schemes.
type SchemesResponse struct {
	Schemes []string `json:"schemes"`
}

// AllocateLatency splits allocate latencies by cache outcome. Coalesced
// requests waited on another request's computation, so their latencies are
// cold-scale — keeping them out of Hit preserves the cold-vs-hit comparison.
type AllocateLatency struct {
	Cold      LatencyStats `json:"cold"`
	Hit       LatencyStats `json:"hit"`
	Coalesced LatencyStats `json:"coalesced"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Cache    CacheStats          `json:"cache"`
	Allocate AllocateLatency     `json:"allocate_latency"`
	Jobs     jobs.Counters       `json:"jobs"`
	Systems  syspersist.Counters `json:"systems"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// respBufPool recycles response-encoding buffers: every JSON response is
// built by an encoder writing into a pooled buffer instead of MarshalIndent
// allocating a fresh (and internally doubled) one per request.
var respBufPool = sync.Pool{New: func() any {
	respBufNews.Add(1)
	return new(bytes.Buffer)
}}

// encodeJSON renders v in the service's uniform shape (two-space indent,
// trailing newline — byte-identical to the historical MarshalIndent path)
// into a pooled buffer. The caller must releaseBuf it after use.
func encodeJSON(v any) (*bytes.Buffer, error) {
	respBufGets.Add(1)
	buf := respBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		respBufPool.Put(buf)
		return nil, err
	}
	return buf, nil
}

func releaseBuf(buf *bytes.Buffer) { respBufPool.Put(buf) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := encodeJSON(v)
	if err != nil {
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
	releaseBuf(buf)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// bodyBufPool recycles request-body decode buffers for the hot POST
// endpoints (allocate, batch, system task admission): the body is drained
// into a pooled buffer and decoded from memory, instead of the JSON decoder
// growing a fresh internal read buffer per request.
var bodyBufPool = sync.Pool{New: func() any {
	bodyBufNews.Add(1)
	return new(bytes.Buffer)
}}

// decodeRequest strictly parses a JSON request body into v through a pooled
// decode buffer.
func decodeRequest(w http.ResponseWriter, r *http.Request, v any) bool {
	bodyBufGets.Add(1)
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bodyBufPool.Put(buf)
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxRequestBytes)); err != nil {
		writeError(w, http.StatusBadRequest, "parse request: %v", err)
		return false
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "parse request: %v", err)
		return false
	}
	return true
}

// resolveScheme maps a request's scheme name (empty = DefaultScheme) to an
// allocator.
func resolveScheme(name string) (core.Allocator, error) {
	if name == "" {
		name = DefaultScheme
	}
	allocs, err := core.Resolve(name)
	if err != nil {
		return nil, err
	}
	return allocs[0], nil
}

// resolveResultsVersion maps a request's results_version (0 = absent) to a
// validated stats.RNGVersion; new requests default to the current version.
func resolveResultsVersion(v int) (stats.RNGVersion, error) {
	if v == 0 {
		return stats.DefaultResultsVersion, nil
	}
	return stats.ParseResultsVersion(v)
}

// allocate serves one allocation problem through the canonical-hash cache,
// recording latency under the cold or hit series (both the /v1/stats window
// recorders and the /metrics histograms — same events, so the two surfaces
// agree on counts). tr may be nil (the unsampled case); span recording then
// costs nothing. The returned body is the exact bytes every identical
// request receives.
func (s *Server) allocate(tr *obs.Trace, doc *tasksetio.Document, schemeName, heuristicName string, resultsVersion int) ([]byte, bool, int, error) {
	alloc, err := resolveScheme(schemeName)
	if err != nil {
		return nil, false, http.StatusBadRequest, err
	}
	h, err := partition.ParseHeuristic(heuristicName)
	if err != nil {
		return nil, false, http.StatusBadRequest, err
	}
	version, err := resolveResultsVersion(resultsVersion)
	if err != nil {
		return nil, false, http.StatusBadRequest, err
	}
	p, err := doc.ToProblem()
	if err != nil {
		return nil, false, http.StatusBadRequest, err
	}
	sp := tr.StartSpan("canonical-key")
	canon := p.Canonical()
	key := Key(canon, alloc.Name(), h, version)
	sp.End()
	sp = tr.StartSpan("cache-do")
	start := time.Now()
	body, outcome, err := s.cache.Do(key, func() ([]byte, error) {
		csp := tr.StartSpan("allocate-compute")
		defer csp.End()
		return computeAllocation(canon, alloc, h)
	})
	d := time.Since(start)
	sp.End()
	switch outcome {
	case OutcomeHit:
		s.hot.add(d)
		s.obs.allocHit.ObserveDuration(d)
	case OutcomeCoalesced:
		s.coalesced.add(d)
		s.obs.allocCoalesced.ObserveDuration(d)
	default:
		s.cold.add(d)
		s.obs.allocCold.ObserveDuration(d)
	}
	hit := outcome.FromMemory()
	if err != nil {
		return nil, hit, http.StatusInternalServerError, err
	}
	return body, hit, http.StatusOK, nil
}

// computeAllocation runs one allocation on the canonical problem and encodes
// the response body. Infeasibility (no RT partition, or the scheme rejecting
// the taskset) is a cacheable verdict, not an error; errors are reserved for
// internal inconsistencies (an allocation failing its own verification).
func computeAllocation(canon *tasksetio.Problem, alloc core.Allocator, h partition.Heuristic) ([]byte, error) {
	var res *core.Result
	in, err := tasksetio.BuildInput(canon, alloc, h)
	if err != nil {
		res = &core.Result{Schedulable: false, Scheme: alloc.Name(), Reason: err.Error()}
	} else {
		res = alloc.Allocate(in)
		if res.Schedulable {
			if verr := core.Verify(in, res); verr != nil {
				return nil, fmt.Errorf("allocation failed verification: %w", verr)
			}
		}
	}
	buf, err := encodeJSON(tasksetio.ResultToJSON(canon, res))
	if err != nil {
		return nil, err
	}
	// The body escapes into the cache, so copy it out of the pooled buffer.
	body := append([]byte(nil), buf.Bytes()...)
	releaseBuf(buf)
	return body, nil
}

func (s *Server) handleAllocate(w http.ResponseWriter, r *http.Request) {
	tr := traceFrom(r.Context())
	sp := tr.StartSpan("decode")
	var req AllocateRequest
	ok := decodeRequest(w, r, &req)
	sp.End()
	if !ok {
		return
	}
	body, hit, status, err := s.allocate(tr, &req.Taskset, req.Scheme, req.Heuristic, req.ResultsVersion)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	version, _ := resolveResultsVersion(req.ResultsVersion) // validated by allocate
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Results-Version", strconv.Itoa(int(version)))
	if hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	sp = tr.StartSpan("write-body")
	w.WriteHeader(status)
	_, _ = w.Write(body)
	sp.End()
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	// Resolve shared parameters once so a bad scheme fails the whole batch
	// up front instead of per cell.
	if _, err := resolveScheme(req.Scheme); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, err := partition.ParseHeuristic(req.Heuristic); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, err := resolveResultsVersion(req.ResultsVersion); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	results, err := engine.Run(ctx, req.Tasksets,
		func(ctx context.Context, idx int, _ *rand.Rand, doc tasksetio.Document) (json.RawMessage, error) {
			body, _, _, err := s.allocate(nil, &doc, req.Scheme, req.Heuristic, req.ResultsVersion)
			if err != nil {
				return nil, fmt.Errorf("taskset %d: %w", idx, err)
			}
			return body, nil
		},
		engine.Options{Workers: workers})
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, "batch cancelled: %v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	h, err := partition.ParseHeuristic(req.Heuristic)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := req.Taskset.ToProblem()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := req.Result.ToResult(p)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	part := p.RTPartition
	if part == nil && len(res.RTPartition) == len(p.RT) {
		part = res.RTPartition
	}
	if part == nil {
		if part, err = p.Partition(h); err != nil {
			writeError(w, http.StatusBadRequest, "cannot determine real-time partition (supply taskset.rt_partition or result.rt_partition): %v", err)
			return
		}
	}
	in, err := core.NewInput(p.M, p.RT, part, p.Sec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var resp VerifyResponse
	if err := core.Verify(in, res); err != nil {
		resp.Error = err.Error()
	} else {
		resp.Valid = true
	}
	if err := core.VerifyExact(in, res); err != nil {
		resp.ExactError = err.Error()
	} else {
		resp.ExactValid = true
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	horizon := req.HorizonMS
	if horizon == 0 {
		horizon = defaultSimHorizonMS
	}
	if horizon < 0 || horizon > maxSimHorizonMS {
		writeError(w, http.StatusBadRequest, "horizon_ms must be in (0, %d], got %g", maxSimHorizonMS, horizon)
		return
	}
	alloc, err := resolveScheme(req.Scheme)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	h, err := partition.ParseHeuristic(req.Heuristic)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := req.Taskset.ToProblem()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	canon := p.Canonical()
	resp := SimulateResponse{Scheme: alloc.Name(), HorizonMS: horizon}
	in, err := tasksetio.BuildInput(canon, alloc, h)
	if err != nil {
		resp.Reason = err.Error()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	res := alloc.Allocate(in)
	resp.Scheme = res.Scheme
	if !res.Schedulable {
		resp.Reason = res.Reason
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp.Schedulable = true
	resp.CumulativeTightness = res.Cumulative
	in = core.EffectiveInput(in, res)
	perCore, _, _, err := experiments.BuildSimSpecs(in, res)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	trace, err := sim.SimulateSystem(perCore, horizon)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	for c, tr := range trace.Cores {
		resp.Cores = append(resp.Cores, SimCoreJSON{
			Core:        c,
			Tasks:       len(tr.Specs),
			Utilization: tr.Utilization(),
			IdleMS:      tr.IdleTime,
			Misses:      tr.Misses,
		})
	}
	resp.TotalMisses = trace.TotalMisses()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SchemesResponse{Schemes: core.Names()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Cache: s.cache.Stats(),
		Allocate: AllocateLatency{
			Cold:      s.cold.snapshot(),
			Hit:       s.hot.snapshot(),
			Coalesced: s.coalesced.snapshot(),
		},
		Jobs:    s.jobs.Counters(),
		Systems: s.systems.Counters(),
	})
}
