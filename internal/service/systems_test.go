package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// createSystemBody wraps the shared sample taskset into a create request.
func createSystemBody(id string) string {
	return fmt.Sprintf(`{"id": %q, "scheme": "hydra", "taskset": %s}`, id, sampleTaskset)
}

func TestSystemLifecycleOverHTTP(t *testing.T) {
	s := newServer(t)
	w := post(t, s, "/v1/systems", createSystemBody("uav"))
	if w.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}
	var sys SystemJSON
	if err := json.Unmarshal(w.Body.Bytes(), &sys); err != nil {
		t.Fatal(err)
	}
	if sys.ID != "uav" || sys.Version != 1 || len(sys.RTTasks) != 2 || len(sys.SecurityTasks) != 2 {
		t.Fatalf("unexpected system doc: %+v", sys)
	}
	// The created allocation matches the stateless endpoint's for the same
	// taskset and scheme.
	var rj struct {
		Tasks []struct {
			Name     string  `json:"name"`
			Core     int     `json:"core"`
			PeriodMS float64 `json:"period_ms"`
		} `json:"tasks"`
	}
	alloc := post(t, s, "/v1/allocate", allocateBody(sampleTaskset, ""))
	if err := json.Unmarshal(alloc.Body.Bytes(), &rj); err != nil {
		t.Fatal(err)
	}
	for _, want := range rj.Tasks {
		found := false
		for _, got := range sys.SecurityTasks {
			if got.Name == want.Name {
				found = true
				if got.Core != want.Core || got.PeriodMS != want.PeriodMS {
					t.Fatalf("system placement of %q (core %d, period %g) differs from /v1/allocate (core %d, period %g)",
						want.Name, got.Core, got.PeriodMS, want.Core, want.PeriodMS)
				}
			}
		}
		if !found {
			t.Fatalf("task %q missing from system doc", want.Name)
		}
	}

	// Duplicate id is a conflict with existing state, not a bad request.
	if w := post(t, s, "/v1/systems", createSystemBody("uav")); w.Code != http.StatusConflict {
		t.Fatalf("duplicate create: %d, want 409", w.Code)
	}
	var list SystemListResponse
	if err := json.Unmarshal(get(t, s, "/v1/systems").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Systems) != 1 || list.Systems[0].ID != "uav" || len(list.Schemes) == 0 {
		t.Fatalf("list: %+v", list)
	}
	if w := get(t, s, "/v1/systems/uav"); w.Code != http.StatusOK {
		t.Fatalf("get: %d", w.Code)
	}
	if w := get(t, s, "/v1/systems/nope"); w.Code != http.StatusNotFound {
		t.Fatalf("get unknown: %d", w.Code)
	}

	// Admit a security task, remove it, reallocate.
	addBody := `{"security_task": {"name": "scan", "wcet_ms": 10, "desired_period_ms": 2000, "max_period_ms": 20000}}`
	w = post(t, s, "/v1/systems/uav/tasks", addBody)
	if w.Code != http.StatusOK {
		t.Fatalf("add: %d %s", w.Code, w.Body)
	}
	var tr SystemTaskResponse
	if err := json.Unmarshal(w.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Admitted || tr.Task != "scan" || tr.Kind != "security" || tr.Version != 2 || tr.PeriodMS <= 0 {
		t.Fatalf("add response: %+v", tr)
	}
	if w := post(t, s, "/v1/systems/uav/tasks", addBody); w.Code != http.StatusConflict {
		t.Fatalf("duplicate task add: %d %s", w.Code, w.Body)
	}
	if w := del(t, s, "/v1/systems/uav/tasks/scan"); w.Code != http.StatusOK {
		t.Fatalf("remove: %d %s", w.Code, w.Body)
	}
	if w := del(t, s, "/v1/systems/uav/tasks/scan"); w.Code != http.StatusNotFound {
		t.Fatalf("remove again: %d", w.Code)
	}
	w = post(t, s, "/v1/systems/uav/reallocate", "")
	if w.Code != http.StatusOK {
		t.Fatalf("reallocate: %d %s", w.Code, w.Body)
	}

	// Events replay: every decision so far, versions contiguous from 1.
	ev := get(t, s, "/v1/systems/uav/events")
	if ev.Code != http.StatusOK {
		t.Fatalf("events: %d", ev.Code)
	}
	if ct := ev.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	// Expected log: create, admit, remove, reallocate (the duplicate-name
	// add fails fast, before any admission decision is logged).
	var versions []uint64
	for _, chunk := range strings.Split(strings.TrimSpace(ev.Body.String()), "\n\n") {
		for _, l := range strings.Split(chunk, "\n") {
			if rest, ok := strings.CutPrefix(l, "data: "); ok {
				var e struct {
					Version uint64 `json:"version"`
					Type    string `json:"type"`
				}
				if err := json.Unmarshal([]byte(rest), &e); err != nil {
					t.Fatalf("bad event %q: %v", rest, err)
				}
				versions = append(versions, e.Version)
			}
		}
	}
	if len(versions) != 4 {
		t.Fatalf("got %d events, want 4 (create, admit, remove, reallocate):\n%s", len(versions), ev.Body.String())
	}
	for i, v := range versions {
		if v != uint64(i+1) {
			t.Fatalf("event versions %v not contiguous from 1", versions)
		}
	}
	// since-filtering.
	ev = get(t, s, "/v1/systems/uav/events?since=3")
	if got := strings.Count(ev.Body.String(), "event: decision"); got != 1 {
		t.Fatalf("since=3 replayed %d events, want 1", got)
	}

	// Delete; everything 404s afterwards.
	if w := del(t, s, "/v1/systems/uav"); w.Code != http.StatusOK {
		t.Fatalf("delete: %d", w.Code)
	}
	for _, probe := range []func() *httptest.ResponseRecorder{
		func() *httptest.ResponseRecorder { return get(t, s, "/v1/systems/uav") },
		func() *httptest.ResponseRecorder { return del(t, s, "/v1/systems/uav") },
		func() *httptest.ResponseRecorder { return post(t, s, "/v1/systems/uav/reallocate", "") },
		func() *httptest.ResponseRecorder { return get(t, s, "/v1/systems/uav/events") },
	} {
		if w := probe(); w.Code != http.StatusNotFound {
			t.Fatalf("after delete: %d, want 404", w.Code)
		}
	}

	// Stats carry the online counters.
	var st StatsResponse
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Systems.Created != 1 || st.Systems.Deleted != 1 || st.Systems.Active != 0 ||
		st.Systems.Admitted != 1 || st.Systems.Removed != 1 || st.Systems.Reallocations != 1 {
		t.Fatalf("system counters: %+v", st.Systems)
	}
}

func TestSystemRejectionPayload(t *testing.T) {
	s := newServer(t)
	body := `{"id": "tight", "taskset": {
	  "cores": 2,
	  "rt_tasks": [
	    {"name": "a", "wcet_ms": 80, "period_ms": 100},
	    {"name": "b", "wcet_ms": 80, "period_ms": 100}
	  ],
	  "security_tasks": []
	}}`
	if w := post(t, s, "/v1/systems", body); w.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}
	w := post(t, s, "/v1/systems/tight/tasks",
		`{"security_task": {"name": "fat", "wcet_ms": 90, "desired_period_ms": 100, "max_period_ms": 120}}`)
	if w.Code != http.StatusConflict {
		t.Fatalf("status %d, want 409: %s", w.Code, w.Body)
	}
	var tr SystemTaskResponse
	if err := json.Unmarshal(w.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Admitted || len(tr.Cores) != 2 || tr.Reason == "" || tr.Version == 0 {
		t.Fatalf("rejection payload: %+v", tr)
	}
	// Malformed add requests are 400s.
	for _, bad := range []string{
		`{}`,
		`{"rt_task": {"name": "x", "wcet_ms": 1, "period_ms": 10}, "security_task": {"name": "y", "wcet_ms": 1, "desired_period_ms": 10, "max_period_ms": 20}}`,
		`{"security_task": {"name": "neg", "wcet_ms": -1, "desired_period_ms": 10, "max_period_ms": 20}}`,
	} {
		if w := post(t, s, "/v1/systems/tight/tasks", bad); w.Code != http.StatusBadRequest {
			t.Fatalf("body %s: %d, want 400", bad, w.Code)
		}
	}
}

// TestSystemConcurrentAdmitsSerializeOverHTTP is the endpoint-level hammer:
// concurrent admits against one system serialize on the per-system lock into
// a contiguous event log with exactly one admit per unique task, and the
// final committed state reallocates to the same answer a cold run gives.
func TestSystemConcurrentAdmitsSerializeOverHTTP(t *testing.T) {
	s := newServer(t)
	if w := post(t, s, "/v1/systems", createSystemBody("hammer")); w.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}
	const goroutines = 32
	codes := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Half the goroutines race on the same name, half add unique ones.
			name := "dup"
			if g%2 == 0 {
				name = fmt.Sprintf("uniq%02d", g)
			}
			body := fmt.Sprintf(`{"security_task": {"name": %q, "wcet_ms": 0.2, "desired_period_ms": 3000, "max_period_ms": 30000}}`, name)
			codes[g] = post(t, s, "/v1/systems/hammer/tasks", body).Code
		}(g)
	}
	wg.Wait()
	okDup, conflictDup := 0, 0
	for g := 0; g < goroutines; g++ {
		switch {
		case g%2 == 0:
			if codes[g] != http.StatusOK {
				t.Fatalf("unique add %d: status %d", g, codes[g])
			}
		case codes[g] == http.StatusOK:
			okDup++
		case codes[g] == http.StatusConflict:
			conflictDup++
		default:
			t.Fatalf("dup add %d: status %d", g, codes[g])
		}
	}
	if okDup != 1 || conflictDup != goroutines/2-1 {
		t.Fatalf("dup adds: %d ok, %d conflict; want exactly 1 ok", okDup, conflictDup)
	}
	var sys SystemJSON
	if err := json.Unmarshal(get(t, s, "/v1/systems/hammer").Body.Bytes(), &sys); err != nil {
		t.Fatal(err)
	}
	if len(sys.SecurityTasks) != 2+goroutines/2+1 {
		t.Fatalf("committed %d security tasks, want %d", len(sys.SecurityTasks), 2+goroutines/2+1)
	}
	// Version = create + one admit per committed dynamic task (rejected
	// duplicates fail before an event is logged).
	if want := uint64(1 + goroutines/2 + 1); sys.Version != want {
		t.Fatalf("version %d, want %d", sys.Version, want)
	}
	// Reallocating twice is deterministic: identical bytes.
	first := post(t, s, "/v1/systems/hammer/reallocate", "")
	if first.Code != http.StatusOK {
		t.Fatalf("reallocate: %d %s", first.Code, first.Body)
	}
	second := post(t, s, "/v1/systems/hammer/reallocate", "")
	var a, b SystemJSON
	if err := json.Unmarshal(first.Body.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	a.Version, b.Version = 0, 0
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	if !bytes.Equal(ab, bb) {
		t.Fatalf("repeated reallocate differs:\n%s\nvs\n%s", ab, bb)
	}
}

// TestSystemCreateHonorsPinnedPartition: a taskset-supplied rt_partition
// seeds the committed placements (it is not silently re-partitioned away).
func TestSystemCreateHonorsPinnedPartition(t *testing.T) {
	s := newServer(t)
	body := `{"id": "pinned", "taskset": {
	  "cores": 2,
	  "rt_tasks": [
	    {"name": "a", "wcet_ms": 1, "period_ms": 10},
	    {"name": "b", "wcet_ms": 1, "period_ms": 10}
	  ],
	  "security_tasks": [],
	  "rt_partition": [0, 1]
	}}`
	w := post(t, s, "/v1/systems", body)
	if w.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}
	var sys SystemJSON
	if err := json.Unmarshal(w.Body.Bytes(), &sys); err != nil {
		t.Fatal(err)
	}
	if sys.RTTasks[0].Core != 0 || sys.RTTasks[1].Core != 1 {
		t.Fatalf("pinned partition not honored: %+v", sys.RTTasks)
	}
	// An unschedulable pin is a 400, not a silent re-partition.
	overPinned := `{"taskset": {
	  "cores": 2,
	  "rt_tasks": [
	    {"name": "a", "wcet_ms": 6, "period_ms": 10},
	    {"name": "b", "wcet_ms": 6, "period_ms": 10}
	  ],
	  "security_tasks": [],
	  "rt_partition": [0, 0]
	}}`
	if w := post(t, s, "/v1/systems", overPinned); w.Code != http.StatusBadRequest {
		t.Fatalf("unschedulable pin: %d, want 400", w.Code)
	}
}

func TestSystemCreateRejectsInfeasibleAndBadSchemes(t *testing.T) {
	s := newServer(t)
	overload := `{"taskset": {
	  "cores": 1,
	  "rt_tasks": [
	    {"name": "a", "wcet_ms": 90, "period_ms": 100},
	    {"name": "b", "wcet_ms": 90, "period_ms": 100}
	  ],
	  "security_tasks": []
	}}`
	if w := post(t, s, "/v1/systems", overload); w.Code != http.StatusBadRequest {
		t.Fatalf("infeasible create: %d", w.Code)
	}
	if w := post(t, s, "/v1/systems", fmt.Sprintf(`{"scheme": "opt", "taskset": %s}`, sampleTaskset)); w.Code != http.StatusBadRequest {
		t.Fatalf("non-incremental scheme: %d", w.Code)
	}
}
