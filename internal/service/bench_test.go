package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// benchDoc yields a schedulable taskset made unique by i, defeating the
// cache so every request allocates from scratch.
func benchDoc(i int) string {
	return fmt.Sprintf(`{"taskset": {
	  "cores": 2,
	  "rt_tasks": [
	    {"name": "ctl", "wcet_ms": 5, "period_ms": 20},
	    {"name": "nav", "wcet_ms": 30, "period_ms": 100}
	  ],
	  "security_tasks": [
	    {"name": "tw", "wcet_ms": 50, "desired_period_ms": 1000, "max_period_ms": %d},
	    {"name": "bro", "wcet_ms": 30, "desired_period_ms": 500, "max_period_ms": 5000}
	  ]
	}}`, 10000+i)
}

func benchRequest(b *testing.B, h http.Handler, body string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/allocate", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body)
	}
}

// BenchmarkServeAllocateCold measures the full request path with a cache
// miss on every iteration: decode, canonicalize, partition, allocate,
// verify, encode.
func BenchmarkServeAllocateCold(b *testing.B) {
	s, err := New(Config{CacheSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchRequest(b, h, benchDoc(i))
	}
}

// BenchmarkServeAllocateCacheHit measures the steady-state serving path:
// the same request answered from the canonical-hash cache.
func BenchmarkServeAllocateCacheHit(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	body := benchDoc(0)
	benchRequest(b, h, body) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, h, body)
	}
}
