package service

import (
	"context"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hydra/internal/jobs"
	"hydra/internal/obs"
	"hydra/internal/rts"
	"hydra/internal/syspersist"
)

// headerRequestID is the request-correlation header, in canonical MIME form
// so header map lookups never re-canonicalize (and never allocate).
const headerRequestID = "X-Request-Id"

// serverObs bundles the server's observability surface: the metric registry
// behind /metrics, the head-sampled request tracer behind /v1/debug/traces,
// and the structured logger. Everything here obeys one contract: with
// tracing off and the log level above Debug, the cache-hit serving path
// costs zero additional allocations (pinned by TestMiddlewareZeroAllocs and
// the cache-hit benchmark gate).
type serverObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	log    *slog.Logger

	inflight *obs.Gauge

	// Allocate-outcome latency histograms, observed on the same events as
	// the /v1/stats window recorders (so the two surfaces agree on counts).
	allocCold      *obs.Histogram
	allocHit       *obs.Histogram
	allocCoalesced *obs.Histogram

	// Persistence latency histograms, fed by the syspersist Observer hook.
	walAppend *obs.Histogram
	walFsync  *obs.Histogram
	snapWrite *obs.Histogram

	// scrape holds the per-scrape snapshots the registry's scrape-time
	// closures read; handleMetrics fills it under mu before rendering, so
	// every series in one exposition comes from one consistent cut.
	scrape struct {
		mu      sync.Mutex
		stripes []CacheStats
		jobs    jobs.Counters
		systems syspersist.Counters
		rta     rts.AnalysisMetricsSnapshot
	}
}

// Pool efficiency counters: gets at the acquisition sites, news inside the
// pool New closures. news/gets is the pool miss rate the capacity planning
// docs watch.
var (
	respBufGets atomic.Uint64
	respBufNews atomic.Uint64
	bodyBufGets atomic.Uint64
	bodyBufNews atomic.Uint64
	keyBufGets  atomic.Uint64
	keyBufNews  atomic.Uint64
)

// discardHandler is a slog.Handler that is disabled at every level — the
// default when no Config.Logger is supplied. Unlike a leveled handler over
// io.Discard, Enabled returning false keeps the access-log path from
// assembling attributes at all. (slog.DiscardHandler ships in Go 1.24; this
// module still supports 1.23.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// rtaIterBounds converts the rts iteration bucket bounds once for the
// exposition.
func rtaIterBounds() []float64 {
	out := make([]float64, len(rts.IterationBucketBounds))
	for i, b := range rts.IterationBucketBounds {
		out[i] = float64(b)
	}
	return out
}

// newServerObs builds the observability spine. Metric families that read
// server state at scrape time are registered later by bindMetrics, once the
// cache, jobs manager and registry exist.
func newServerObs(cfg Config) *serverObs {
	o := &serverObs{
		reg:    obs.NewRegistry(),
		tracer: obs.NewTracer(cfg.TraceRing),
	}
	if cfg.Logger != nil {
		o.log = cfg.Logger
	} else {
		o.log = slog.New(discardHandler{})
	}
	o.tracer.SetSample(cfg.TraceSample)
	o.inflight = o.reg.Gauge("hydra_http_in_flight", "", "Requests currently being served.")
	lat := obs.DefLatencyBuckets
	o.allocCold = o.reg.Histogram("hydra_allocate_seconds", `outcome="cold"`, "Allocate latency by cache outcome.", lat)
	o.allocHit = o.reg.Histogram("hydra_allocate_seconds", `outcome="hit"`, "Allocate latency by cache outcome.", lat)
	o.allocCoalesced = o.reg.Histogram("hydra_allocate_seconds", `outcome="coalesced"`, "Allocate latency by cache outcome.", lat)
	o.walAppend = o.reg.Histogram("hydra_wal_append_seconds", "", "System op-log line write latency (excluding fsync).", lat)
	o.walFsync = o.reg.Histogram("hydra_wal_fsync_seconds", "", "System op-log fsync latency.", lat)
	o.snapWrite = o.reg.Histogram("hydra_snapshot_write_seconds", "", "System snapshot file write latency.", lat)
	sampled := o.tracer
	o.reg.CounterFunc("hydra_traces_sampled_total", "", "Request traces started by the head sampler.",
		func() uint64 { s, _ := sampled.Stats(); return s })
	o.reg.CounterFunc("hydra_traces_dropped_total", "", "Completed traces evicted from the debug ring.",
		func() uint64 { _, d := sampled.Stats(); return d })
	obs.RegisterRuntimeMetrics(o.reg)
	return o
}

// ObserveWALAppend implements syspersist.Observer.
func (o *serverObs) ObserveWALAppend(d time.Duration) { o.walAppend.ObserveDuration(d) }

// ObserveWALFsync implements syspersist.Observer.
func (o *serverObs) ObserveWALFsync(d time.Duration) { o.walFsync.ObserveDuration(d) }

// ObserveSnapshot implements syspersist.Observer.
func (o *serverObs) ObserveSnapshot(d time.Duration) { o.snapWrite.ObserveDuration(d) }

// bindMetrics registers the metric families that read live server state at
// scrape time: per-stripe cache counters, jobs and systems counters, RTA
// totals, and pool efficiency. Called once from New after the subsystems
// exist.
func (s *Server) bindMetrics() {
	o := s.obs
	o.scrape.stripes = make([]CacheStats, s.cache.Stripes())
	for i := range o.scrape.stripes {
		i := i
		label := `stripe="` + strconv.Itoa(i) + `"`
		o.reg.CounterFunc("hydra_cache_hits_total", label, "Result-cache hits per stripe.",
			func() uint64 { return o.scrape.stripes[i].Hits })
		o.reg.CounterFunc("hydra_cache_misses_total", label, "Result-cache misses (computations run) per stripe.",
			func() uint64 { return o.scrape.stripes[i].Misses })
		o.reg.CounterFunc("hydra_cache_coalesced_total", label, "Requests coalesced onto an identical in-flight computation, per stripe.",
			func() uint64 { return o.scrape.stripes[i].Coalesced })
		o.reg.CounterFunc("hydra_cache_evictions_total", label, "LRU evictions per stripe.",
			func() uint64 { return o.scrape.stripes[i].Evictions })
	}
	o.reg.GaugeFunc("hydra_cache_entries", "", "Cached result bodies across all stripes.", func() float64 {
		var n int
		for i := range o.scrape.stripes {
			n += o.scrape.stripes[i].Entries
		}
		return float64(n)
	})
	o.reg.GaugeFunc("hydra_cache_capacity", "", "Result-cache capacity across all stripes.", func() float64 {
		var n int
		for i := range o.scrape.stripes {
			n += o.scrape.stripes[i].Capacity
		}
		return float64(n)
	})

	o.reg.ConstHistogram("hydra_rta_iterations", "", "Iterations per RTA fixed-point computation.", rtaIterBounds(),
		func() obs.HistogramSnapshot {
			r := o.scrape.rta
			return obs.HistogramSnapshot{Buckets: r.IterBuckets[:], Sum: float64(r.Iterations), Count: r.FixedPoints}
		})
	o.reg.CounterFunc("hydra_rta_fixed_points_total", "", "RTA fixed-point computations.",
		func() uint64 { return o.scrape.rta.FixedPoints })
	o.reg.CounterFunc("hydra_rta_warm_starts_total", "", "RTA computations warm-started from a memoized response time.",
		func() uint64 { return o.scrape.rta.WarmStarts })
	o.reg.CounterFunc("hydra_rta_trial_reuses_total", "", "Admission commits that reused the trial analysis.",
		func() uint64 { return o.scrape.rta.TrialReuses })

	o.reg.CounterFunc("hydra_jobs_submitted_total", "", "Experiment campaigns submitted.",
		func() uint64 { return o.scrape.jobs.Submitted })
	o.reg.CounterFunc("hydra_jobs_resumed_total", "", "Campaigns resumed from checkpoints on startup.",
		func() uint64 { return o.scrape.jobs.Resumed })
	o.reg.GaugeFunc("hydra_jobs_queued", "", "Campaigns waiting for a run slot.",
		func() float64 { return float64(o.scrape.jobs.Queued) })
	o.reg.GaugeFunc("hydra_jobs_running", "", "Campaigns currently running.",
		func() float64 { return float64(o.scrape.jobs.Running) })
	o.reg.GaugeFunc("hydra_jobs_done", "", "Campaigns completed.",
		func() float64 { return float64(o.scrape.jobs.Done) })
	o.reg.GaugeFunc("hydra_jobs_failed", "", "Campaigns failed.",
		func() float64 { return float64(o.scrape.jobs.Failed) })
	o.reg.GaugeFunc("hydra_jobs_cancelled", "", "Campaigns cancelled.",
		func() float64 { return float64(o.scrape.jobs.Cancelled) })
	o.reg.CounterFunc("hydra_jobs_cells_completed_total", "", "Experiment grid cells completed.",
		func() uint64 { return o.scrape.jobs.CellsCompleted })

	o.reg.GaugeFunc("hydra_systems_active", "", "Live hosted systems.",
		func() float64 { return float64(o.scrape.systems.Active) })
	o.reg.CounterFunc("hydra_systems_created_total", "", "Systems created.",
		func() uint64 { return o.scrape.systems.Created })
	o.reg.CounterFunc("hydra_systems_deleted_total", "", "Systems deleted.",
		func() uint64 { return o.scrape.systems.Deleted })
	o.reg.CounterFunc("hydra_systems_admitted_total", "", "Task admissions across all systems.",
		func() uint64 { return o.scrape.systems.Admitted })
	o.reg.CounterFunc("hydra_systems_rejected_total", "", "Task rejections across all systems.",
		func() uint64 { return o.scrape.systems.Rejected })
	o.reg.CounterFunc("hydra_systems_removed_total", "", "Task removals across all systems.",
		func() uint64 { return o.scrape.systems.Removed })
	o.reg.CounterFunc("hydra_systems_reallocations_total", "", "System-wide reallocations.",
		func() uint64 { return o.scrape.systems.Reallocations })
	o.reg.CounterFunc("hydra_systems_events_total", "", "Decision-log events across all systems.",
		func() uint64 { return o.scrape.systems.Events })

	o.reg.CounterFunc("hydra_pool_gets_total", `pool="resp"`, "Response-buffer pool acquisitions.",
		func() uint64 { return respBufGets.Load() })
	o.reg.CounterFunc("hydra_pool_news_total", `pool="resp"`, "Response-buffer pool misses (fresh allocations).",
		func() uint64 { return respBufNews.Load() })
	o.reg.CounterFunc("hydra_pool_gets_total", `pool="body"`, "Request-body buffer pool acquisitions.",
		func() uint64 { return bodyBufGets.Load() })
	o.reg.CounterFunc("hydra_pool_news_total", `pool="body"`, "Request-body buffer pool misses (fresh allocations).",
		func() uint64 { return bodyBufNews.Load() })
	o.reg.CounterFunc("hydra_pool_gets_total", `pool="key"`, "Cache-key scratch pool acquisitions.",
		func() uint64 { return keyBufGets.Load() })
	o.reg.CounterFunc("hydra_pool_news_total", `pool="key"`, "Cache-key scratch pool misses (fresh allocations).",
		func() uint64 { return keyBufNews.Load() })
}

// routeMetrics is one route's pre-registered metric handles; created at
// registration time so the serving path performs no registry lookups.
type routeMetrics struct {
	route   string
	byClass [6]*obs.Counter // index = status/100 (0 = out-of-range)
	latency *obs.Histogram
}

func (s *Server) newRouteMetrics(route string) *routeMetrics {
	m := &routeMetrics{route: route}
	label := `route="` + route + `"`
	for class := 1; class <= 5; class++ {
		m.byClass[class] = s.obs.reg.Counter("hydra_http_requests_total",
			label+`,code="`+strconv.Itoa(class)+`xx"`, "Requests served, by route and status class.")
	}
	m.byClass[0] = m.byClass[5] // degenerate status codes count as server errors
	m.latency = s.obs.reg.Histogram("hydra_http_request_seconds", label,
		"Request latency by route.", obs.DefLatencyBuckets)
	return m
}

// observe folds one served request into the route's counters.
func (m *routeMetrics) observe(status int, d time.Duration) {
	class := status / 100
	if class < 1 || class > 5 {
		class = 0
	}
	m.byClass[class].Inc()
	m.latency.ObserveDuration(d)
}

// statusWriter captures the response status (and implements http.Flusher so
// the SSE handlers' Flusher assertion still holds through the wrapper).
// Instances are pooled: the middleware must not allocate per request.
type statusWriter struct {
	http.ResponseWriter
	status int
}

var statusWriterPool = sync.Pool{New: func() any { return new(statusWriter) }}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController passthrough.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// traceKey carries the request's *obs.Trace through the context; only
// sampled requests pay the context allocation.
type traceKey struct{}

// traceFrom returns the request's trace, or nil (every span method on a nil
// trace is a no-op).
func traceFrom(ctx context.Context) *obs.Trace {
	tr, _ := ctx.Value(traceKey{}).(*obs.Trace)
	return tr
}

// handle registers a route with the instrumentation middleware: request and
// latency metrics, head-sampled tracing, and the access log. The fast path —
// tracing off, access log disabled — adds no allocations over the bare
// handler.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	m := s.newRouteMetrics(pattern)
	o := s.obs
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		o.inflight.Add(1)
		sw := statusWriterPool.Get().(*statusWriter)
		sw.ResponseWriter, sw.status = w, 0

		var reqID string
		if o.tracer.Sample() > 0 {
			reqID = r.Header.Get(headerRequestID)
		}
		tr := o.tracer.Start(pattern, reqID)
		if tr != nil {
			w.Header().Set(headerRequestID, tr.ID())
			r = r.WithContext(context.WithValue(r.Context(), traceKey{}, tr))
		}

		h(sw, r)

		d := time.Since(start)
		tr.Finish()
		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing; net/http will send 200
		}
		m.observe(status, d)
		o.inflight.Add(-1)

		lvl := slog.LevelDebug
		if status >= 500 {
			lvl = slog.LevelError
		}
		if o.log.Enabled(r.Context(), lvl) {
			o.log.LogAttrs(r.Context(), lvl, "request",
				slog.String("route", pattern),
				slog.String("request_id", tr.ID()),
				slog.Int("status", status),
				slog.Duration("duration", d),
				slog.String("cache", w.Header().Get("X-Cache")),
			)
		}
		sw.ResponseWriter = nil
		statusWriterPool.Put(sw)
	})
}

// handleMetrics serves the Prometheus text exposition. Scrape-time state is
// snapshotted under the scrape lock first, so the rendered series are one
// consistent cut (and concurrent scrapes serialize instead of racing the
// snapshot slots).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	o := s.obs
	o.scrape.mu.Lock()
	defer o.scrape.mu.Unlock()
	copy(o.scrape.stripes, s.cache.StripeStats())
	o.scrape.jobs = s.jobs.Counters()
	o.scrape.systems = s.systems.Counters()
	o.scrape.rta = rts.ReadAnalysisMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = o.reg.WritePrometheus(w)
}

// TracesResponse is the body of GET /v1/debug/traces.
type TracesResponse struct {
	Sample  int             `json:"sample"`  // current 1-in-N sampling rate (0 = off)
	Sampled uint64          `json:"sampled"` // traces started since boot
	Dropped uint64          `json:"dropped"` // completed traces evicted unread
	Traces  []obs.TraceJSON `json:"traces"`  // newest first
}

// handleTraces serves the completed-trace ring, newest first. ?min_ms=N
// keeps only traces at least that long.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	var minDur time.Duration
	if v := r.URL.Query().Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "min_ms must be a non-negative number, got %q", v)
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	sampled, dropped := s.obs.tracer.Stats()
	writeJSON(w, http.StatusOK, TracesResponse{
		Sample:  s.obs.tracer.Sample(),
		Sampled: sampled,
		Dropped: dropped,
		Traces:  s.obs.tracer.Snapshot(minDur),
	})
}

// DebugHandler returns the handler for the separate debug listener
// (-debug-addr): pprof, the metric exposition and the trace ring. pprof is
// only served here — profiling endpoints do not belong on the API port.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/debug/traces", s.handleTraces)
	return mux
}

// Log returns the server's structured logger (a disabled logger when the
// configuration supplied none).
func (s *Server) Log() *slog.Logger { return s.obs.log }
