// Package service exposes the allocator registry, the batch engine, the
// verifiers and the schedule simulator as an HTTP JSON API — the serving
// layer that turns the reproduction into a long-running allocation backend.
//
// At its heart is a result cache keyed by the canonical hash of (taskset,
// scheme, partition heuristic): identical allocation problems — regardless of
// task ordering or spelled-out defaults — are answered from memory with
// byte-identical bodies, and concurrent identical requests are collapsed into
// a single allocation (singleflight).
package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sync"

	"hydra/internal/partition"
	"hydra/internal/tasksetio"
)

// keyBufPool recycles the canonical-bytes scratch of Key: the cold request
// path used to rebuild a JSON document per request just to feed the hash,
// which the serving benchmarks showed costing about as much as the
// allocation itself.
var keyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// Key returns the canonical cache key of an allocation problem: the SHA-256
// of the scheme name, the partition heuristic, and a compact binary encoding
// of the canonical taskset (sorted tasks, normalized defaults — see
// Problem.Canonical). The problem must already be in canonical form; the
// canonical bytes are built once in a pooled buffer and hashed directly
// instead of round-tripping through a JSON document.
func Key(p *tasksetio.Problem, scheme string, h partition.Heuristic) string {
	bufp := keyBufPool.Get().(*[]byte)
	buf := (*bufp)[:0]
	buf = append(buf, scheme...)
	buf = append(buf, 0)
	buf = append(buf, h.String()...)
	buf = append(buf, 0)
	buf = appendCanonicalBytes(buf, p)
	sum := sha256.Sum256(buf)
	*bufp = buf
	keyBufPool.Put(bufp)
	return hex.EncodeToString(sum[:])
}

// appendCanonicalBytes serializes a canonical problem into an unambiguous
// binary form (length-prefixed strings, IEEE-754 bit patterns): every field
// that distinguishes two problems is covered, so equal bytes iff equal
// canonical problems.
func appendCanonicalBytes(buf []byte, p *tasksetio.Problem) []byte {
	appendStr := func(s string) {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	appendF := func(f float64) {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(f))
	}
	buf = binary.AppendUvarint(buf, uint64(p.M))
	buf = binary.AppendUvarint(buf, uint64(len(p.RT)))
	for _, t := range p.RT {
		appendStr(t.Name)
		appendF(t.C)
		appendF(t.T)
		appendF(t.D)
	}
	if p.RTPartition == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		for _, c := range p.RTPartition {
			buf = binary.AppendUvarint(buf, uint64(c))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Sec)))
	for _, s := range p.Sec {
		appendStr(s.Name)
		appendF(s.C)
		appendF(s.TDes)
		appendF(s.TMax)
		appendF(s.EffectiveWeight())
	}
	return buf
}

// flight is one in-progress computation other requests can wait on.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// centry is one cached value in the LRU list.
type centry struct {
	key string
	val []byte
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`      // served from memory
	Misses    uint64 `json:"misses"`    // computations actually run
	Coalesced uint64 `json:"coalesced"` // requests that waited on an identical in-flight computation
	Evictions uint64 `json:"evictions"` // entries dropped by the LRU bound
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// Cache is a bounded, concurrency-safe LRU of computed response bodies with
// singleflight deduplication: at most one computation per key runs at a time;
// identical concurrent requests wait for it and share its result. Errors are
// returned to every waiter but never cached.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	inflight  map[string]*flight
	hits      uint64
	misses    uint64
	coalesced uint64
	evictions uint64
}

// NewCache builds a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Outcome classifies how Do produced its value.
type Outcome int

const (
	// OutcomeMiss means this call ran the computation itself.
	OutcomeMiss Outcome = iota
	// OutcomeHit means the value was already cached.
	OutcomeHit
	// OutcomeCoalesced means this call waited on an identical in-flight
	// computation started by another request.
	OutcomeCoalesced
)

// FromMemory reports whether the value was served without running a
// computation in this call.
func (o Outcome) FromMemory() bool { return o != OutcomeMiss }

// Do returns the cached value for key, or runs compute to produce it. The
// returned bytes must be treated as immutable.
func (c *Cache) Do(key string, compute func() ([]byte, error)) (val []byte, outcome Outcome, err error) {
	c.mu.Lock()
	if e, ok := c.items[key]; ok {
		c.ll.MoveToFront(e)
		c.hits++
		val = e.Value.(*centry).val
		c.mu.Unlock()
		return val, OutcomeHit, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-f.done
		return f.val, OutcomeCoalesced, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	// A panicking compute must not poison the key: record an error for the
	// coalesced waiters, release the flight, then let the panic continue
	// (net/http recovers it per request).
	defer func() {
		if r := recover(); r != nil {
			f.err = fmt.Errorf("service: computation for key %s panicked: %v", key, r)
			c.finish(key, f)
			panic(r)
		}
	}()
	f.val, f.err = compute()
	c.finish(key, f)
	return f.val, OutcomeMiss, f.err
}

// finish publishes a completed flight: deregisters it, caches successful
// values (evicting beyond capacity), and releases every waiter.
func (c *Cache) finish(key string, f *flight) {
	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.items[key] = c.ll.PushFront(&centry{key: key, val: f.val})
		for c.ll.Len() > c.capacity {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*centry).key)
			c.evictions++
		}
	}
	c.mu.Unlock()
	close(f.done)
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
	}
}
