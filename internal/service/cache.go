// Package service exposes the allocator registry, the batch engine, the
// verifiers and the schedule simulator as an HTTP JSON API — the serving
// layer that turns the reproduction into a long-running allocation backend.
//
// At its heart is a result cache keyed by the canonical hash of (taskset,
// scheme, partition heuristic): identical allocation problems — regardless of
// task ordering or spelled-out defaults — are answered from memory with
// byte-identical bodies, and concurrent identical requests are collapsed into
// a single allocation (singleflight).
package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"sync"

	"hydra/internal/partition"
	"hydra/internal/stats"
	"hydra/internal/tasksetio"
)

// keyBufPool recycles the canonical-bytes scratch of Key: the cold request
// path used to rebuild a JSON document per request just to feed the hash,
// which the serving benchmarks showed costing about as much as the
// allocation itself.
var keyBufPool = sync.Pool{New: func() any {
	keyBufNews.Add(1)
	b := make([]byte, 0, 1024)
	return &b
}}

// Key returns the canonical cache key of an allocation problem: the SHA-256
// of the scheme name, the partition heuristic, the results version, and a
// compact binary encoding of the canonical taskset (sorted tasks, normalized
// defaults — see Problem.Canonical). The results version participates even
// though allocation itself draws no randomness: the key names the full
// contract a cached body was computed under, so entries can never be shared
// across versions if any version-dependent step joins the pipeline. The
// problem must already be in canonical form; the canonical bytes are built
// once in a pooled buffer and hashed directly instead of round-tripping
// through a JSON document.
func Key(p *tasksetio.Problem, scheme string, h partition.Heuristic, version stats.RNGVersion) string {
	keyBufGets.Add(1)
	bufp := keyBufPool.Get().(*[]byte)
	buf := (*bufp)[:0]
	buf = append(buf, scheme...)
	buf = append(buf, 0)
	buf = append(buf, h.String()...)
	buf = append(buf, 0)
	buf = append(buf, byte(version))
	buf = append(buf, 0)
	buf = appendCanonicalBytes(buf, p)
	sum := sha256.Sum256(buf)
	*bufp = buf
	keyBufPool.Put(bufp)
	return hex.EncodeToString(sum[:])
}

// appendCanonicalBytes serializes a canonical problem into an unambiguous
// binary form (length-prefixed strings, IEEE-754 bit patterns): every field
// that distinguishes two problems is covered, so equal bytes iff equal
// canonical problems.
func appendCanonicalBytes(buf []byte, p *tasksetio.Problem) []byte {
	appendStr := func(s string) {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	appendF := func(f float64) {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(f))
	}
	buf = binary.AppendUvarint(buf, uint64(p.M))
	buf = binary.AppendUvarint(buf, uint64(len(p.RT)))
	for _, t := range p.RT {
		appendStr(t.Name)
		appendF(t.C)
		appendF(t.T)
		appendF(t.D)
	}
	if p.RTPartition == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		for _, c := range p.RTPartition {
			buf = binary.AppendUvarint(buf, uint64(c))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Sec)))
	for _, s := range p.Sec {
		appendStr(s.Name)
		appendF(s.C)
		appendF(s.TDes)
		appendF(s.TMax)
		appendF(s.EffectiveWeight())
	}
	return buf
}

// flight is one in-progress computation other requests can wait on.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// centry is one cached value in the LRU list.
type centry struct {
	key string
	val []byte
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`      // served from memory
	Misses    uint64 `json:"misses"`    // computations actually run
	Coalesced uint64 `json:"coalesced"` // requests that waited on an identical in-flight computation
	Evictions uint64 `json:"evictions"` // entries dropped by the LRU bound
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// add folds another snapshot into s (the lossless per-stripe aggregation
// behind Cache.Stats and /v1/stats).
func (s *CacheStats) add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Coalesced += o.Coalesced
	s.Evictions += o.Evictions
	s.Entries += o.Entries
	s.Capacity += o.Capacity
}

// maxCacheStripes caps the stripe count at the cache's shard-selector width:
// stripes are selected by the top byte of the SHA-256 key, so more than 256
// could not be addressed.
const maxCacheStripes = 256

// DefaultCacheStripes returns the stripe count used when the configuration
// leaves it unset: the next power of two at or above 4x GOMAXPROCS (capped at
// 256), so that even with every processor in the serving hot path the
// probability of two concurrent requests colliding on one stripe mutex stays
// low.
func DefaultCacheStripes() int {
	return normalizeStripes(4 * runtime.GOMAXPROCS(0))
}

// normalizeStripes rounds n up to a power of two in [1, maxCacheStripes]
// (power-of-two counts make shard selection a mask of the key's top byte).
func normalizeStripes(n int) int {
	if n < 1 {
		n = 1
	}
	s := 1
	for s < n && s < maxCacheStripes {
		s <<= 1
	}
	return s
}

// cacheShard is one independently locked LRU + singleflight stripe. A key
// lives on exactly one shard (selected by the top bits of its SHA-256), so
// the per-key coalescing guarantee is preserved: concurrent identical
// requests meet on the same shard and collapse to one computation.
type cacheShard struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	inflight  map[string]*flight
	hits      uint64
	misses    uint64
	coalesced uint64
	evictions uint64
}

// Cache is a bounded, concurrency-safe LRU of computed response bodies with
// singleflight deduplication: at most one computation per key runs at a time;
// identical concurrent requests wait for it and share its result. Errors are
// returned to every waiter but never cached.
//
// Internally the cache is striped: keys are spread over independently locked
// LRU shards by the top bits of their SHA-256, so concurrent requests for
// different problems never serialize on one mutex. Counters are kept per
// stripe and summed losslessly on Stats.
type Cache struct {
	shards []*cacheShard
	mask   uint8 // len(shards)-1; stripe counts are powers of two
}

// NewCache builds a cache bounded to capacity entries (minimum 1) with the
// default stripe count (DefaultCacheStripes).
func NewCache(capacity int) *Cache {
	return NewCacheStriped(capacity, 0)
}

// NewCacheStriped builds a cache bounded to capacity entries (minimum 1)
// spread over the given number of stripes. Stripes are rounded up to a power
// of two in [1, 256]; zero or negative selects DefaultCacheStripes. The
// capacity is distributed across stripes (every stripe holds at least one
// entry), so the total bound is max(capacity, stripes).
func NewCacheStriped(capacity, stripes int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	if stripes <= 0 {
		stripes = DefaultCacheStripes()
	}
	stripes = normalizeStripes(stripes)
	c := &Cache{shards: make([]*cacheShard, stripes), mask: uint8(stripes - 1)}
	base, extra := capacity/stripes, capacity%stripes
	for i := range c.shards {
		cap := base
		if i < extra {
			cap++
		}
		if cap < 1 {
			cap = 1
		}
		c.shards[i] = &cacheShard{
			capacity: cap,
			ll:       list.New(),
			items:    make(map[string]*list.Element),
			inflight: make(map[string]*flight),
		}
	}
	return c
}

// Stripes returns the stripe count.
func (c *Cache) Stripes() int { return len(c.shards) }

// shardFor maps a key to its stripe by the top byte of the canonical SHA-256
// (keys are its hex encoding, so the first two hex digits are the top 8
// bits). Keys that are not hex — only synthetic test keys — fold their first
// bytes instead; they still land on a single consistent shard.
func (c *Cache) shardFor(key string) *cacheShard {
	var top uint8
	if len(key) >= 2 {
		hi, okHi := hexNibble(key[0])
		lo, okLo := hexNibble(key[1])
		if okHi && okLo {
			top = hi<<4 | lo
		} else {
			top = key[0] ^ key[1]
		}
	} else if len(key) == 1 {
		top = key[0]
	}
	return c.shards[top&c.mask]
}

// hexNibble decodes one lowercase-hex digit.
func hexNibble(b byte) (uint8, bool) {
	switch {
	case b >= '0' && b <= '9':
		return b - '0', true
	case b >= 'a' && b <= 'f':
		return b - 'a' + 10, true
	case b >= 'A' && b <= 'F':
		return b - 'A' + 10, true
	}
	return 0, false
}

// Outcome classifies how Do produced its value.
type Outcome int

const (
	// OutcomeMiss means this call ran the computation itself.
	OutcomeMiss Outcome = iota
	// OutcomeHit means the value was already cached.
	OutcomeHit
	// OutcomeCoalesced means this call waited on an identical in-flight
	// computation started by another request.
	OutcomeCoalesced
)

// FromMemory reports whether the value was served without running a
// computation in this call.
func (o Outcome) FromMemory() bool { return o != OutcomeMiss }

// Do returns the cached value for key, or runs compute to produce it. The
// returned bytes must be treated as immutable.
func (c *Cache) Do(key string, compute func() ([]byte, error)) (val []byte, outcome Outcome, err error) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.items[key]; ok {
		sh.ll.MoveToFront(e)
		sh.hits++
		val = e.Value.(*centry).val
		sh.mu.Unlock()
		return val, OutcomeHit, nil
	}
	if f, ok := sh.inflight[key]; ok {
		sh.coalesced++
		sh.mu.Unlock()
		<-f.done
		return f.val, OutcomeCoalesced, f.err
	}
	f := &flight{done: make(chan struct{})}
	sh.inflight[key] = f
	sh.misses++
	sh.mu.Unlock()

	// A panicking compute must not poison the key: record an error for the
	// coalesced waiters, release the flight, then let the panic continue
	// (net/http recovers it per request).
	defer func() {
		if r := recover(); r != nil {
			f.err = fmt.Errorf("service: computation for key %s panicked: %v", key, r)
			sh.finish(key, f)
			panic(r)
		}
	}()
	f.val, f.err = compute()
	sh.finish(key, f)
	return f.val, OutcomeMiss, f.err
}

// finish publishes a completed flight on its shard: deregisters it, caches
// successful values (evicting beyond the shard capacity), and releases every
// waiter.
func (sh *cacheShard) finish(key string, f *flight) {
	sh.mu.Lock()
	delete(sh.inflight, key)
	if f.err == nil {
		sh.items[key] = sh.ll.PushFront(&centry{key: key, val: f.val})
		for sh.ll.Len() > sh.capacity {
			oldest := sh.ll.Back()
			sh.ll.Remove(oldest)
			delete(sh.items, oldest.Value.(*centry).key)
			sh.evictions++
		}
	}
	sh.mu.Unlock()
	close(f.done)
}

// stats snapshots one shard's counters.
func (sh *cacheShard) stats() CacheStats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return CacheStats{
		Hits:      sh.hits,
		Misses:    sh.misses,
		Coalesced: sh.coalesced,
		Evictions: sh.evictions,
		Entries:   sh.ll.Len(),
		Capacity:  sh.capacity,
	}
}

// Stats snapshots the counters, summed losslessly across stripes.
func (c *Cache) Stats() CacheStats {
	var out CacheStats
	for _, sh := range c.shards {
		out.add(sh.stats())
	}
	return out
}

// StripeStats snapshots every stripe's counters individually (stripe order).
// Their field-wise sum equals Stats — the invariant the striped-cache hammer
// test pins.
func (c *Cache) StripeStats() []CacheStats {
	out := make([]CacheStats, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.stats()
	}
	return out
}
