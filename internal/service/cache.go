// Package service exposes the allocator registry, the batch engine, the
// verifiers and the schedule simulator as an HTTP JSON API — the serving
// layer that turns the reproduction into a long-running allocation backend.
//
// At its heart is a result cache keyed by the canonical hash of (taskset,
// scheme, partition heuristic): identical allocation problems — regardless of
// task ordering or spelled-out defaults — are answered from memory with
// byte-identical bodies, and concurrent identical requests are collapsed into
// a single allocation (singleflight).
package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"hydra/internal/partition"
	"hydra/internal/tasksetio"
)

// Key returns the canonical cache key of an allocation problem: the SHA-256
// of the scheme name, the partition heuristic, and the canonical encoding of
// the taskset (sorted tasks, normalized defaults — see Problem.Canonical).
// The problem must already be in canonical form.
func Key(p *tasksetio.Problem, scheme string, h partition.Heuristic) string {
	hash := sha256.New()
	hash.Write([]byte(scheme))
	hash.Write([]byte{0})
	hash.Write([]byte(h.String()))
	hash.Write([]byte{0})
	if err := tasksetio.Encode(hash, p); err != nil {
		// Encode to a hash never fails; a marshal error here would mean the
		// model types stopped being JSON-encodable, which tests would catch.
		panic("service: encode canonical taskset: " + err.Error())
	}
	return hex.EncodeToString(hash.Sum(nil))
}

// flight is one in-progress computation other requests can wait on.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// centry is one cached value in the LRU list.
type centry struct {
	key string
	val []byte
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`      // served from memory
	Misses    uint64 `json:"misses"`    // computations actually run
	Coalesced uint64 `json:"coalesced"` // requests that waited on an identical in-flight computation
	Evictions uint64 `json:"evictions"` // entries dropped by the LRU bound
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// Cache is a bounded, concurrency-safe LRU of computed response bodies with
// singleflight deduplication: at most one computation per key runs at a time;
// identical concurrent requests wait for it and share its result. Errors are
// returned to every waiter but never cached.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	inflight  map[string]*flight
	hits      uint64
	misses    uint64
	coalesced uint64
	evictions uint64
}

// NewCache builds a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Outcome classifies how Do produced its value.
type Outcome int

const (
	// OutcomeMiss means this call ran the computation itself.
	OutcomeMiss Outcome = iota
	// OutcomeHit means the value was already cached.
	OutcomeHit
	// OutcomeCoalesced means this call waited on an identical in-flight
	// computation started by another request.
	OutcomeCoalesced
)

// FromMemory reports whether the value was served without running a
// computation in this call.
func (o Outcome) FromMemory() bool { return o != OutcomeMiss }

// Do returns the cached value for key, or runs compute to produce it. The
// returned bytes must be treated as immutable.
func (c *Cache) Do(key string, compute func() ([]byte, error)) (val []byte, outcome Outcome, err error) {
	c.mu.Lock()
	if e, ok := c.items[key]; ok {
		c.ll.MoveToFront(e)
		c.hits++
		val = e.Value.(*centry).val
		c.mu.Unlock()
		return val, OutcomeHit, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-f.done
		return f.val, OutcomeCoalesced, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	// A panicking compute must not poison the key: record an error for the
	// coalesced waiters, release the flight, then let the panic continue
	// (net/http recovers it per request).
	defer func() {
		if r := recover(); r != nil {
			f.err = fmt.Errorf("service: computation for key %s panicked: %v", key, r)
			c.finish(key, f)
			panic(r)
		}
	}()
	f.val, f.err = compute()
	c.finish(key, f)
	return f.val, OutcomeMiss, f.err
}

// finish publishes a completed flight: deregisters it, caches successful
// values (evicting beyond capacity), and releases every waiter.
func (c *Cache) finish(key string, f *flight) {
	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.items[key] = c.ll.PushFront(&centry{key: key, val: f.val})
		for c.ll.Len() > c.capacity {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*centry).key)
			c.evictions++
		}
	}
	c.mu.Unlock()
	close(f.done)
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
	}
}
