package service

import (
	"reflect"
	"testing"

	"hydra/internal/partition"
	"hydra/internal/rts"
	"hydra/internal/stats"
	"hydra/internal/tasksetio"
)

// keyBase builds a fresh canonical-shaped problem for mutation testing.
func keyBase() *tasksetio.Problem {
	return &tasksetio.Problem{
		M:           2,
		RT:          []rts.RTTask{{Name: "a", C: 1, T: 10, D: 10}, {Name: "b", C: 2, T: 20, D: 20}},
		RTPartition: []int{0, 1},
		Sec:         []rts.SecurityTask{{Name: "s", C: 3, TDes: 100, TMax: 1000, Weight: 1}},
	}
}

// TestCacheKeyCoversEveryProblemField is the drift tripwire for the
// hand-rolled binary key encoding: the old path hashed the full JSON
// document, so new Problem fields entered the key automatically;
// appendCanonicalBytes must be taught each one by hand. Every semantic
// mutation of every field must change the key, and the struct itself may
// not grow without this test (and the encoder) being updated.
func TestCacheKeyCoversEveryProblemField(t *testing.T) {
	if n := reflect.TypeOf(tasksetio.Problem{}).NumField(); n != 4 {
		t.Fatalf("tasksetio.Problem has %d fields, this test knows 4: teach appendCanonicalBytes the new field(s), add mutations below, then update this count", n)
	}
	mutations := map[string]func(p *tasksetio.Problem){
		"M":       func(p *tasksetio.Problem) { p.M = 3 },
		"RT.Name": func(p *tasksetio.Problem) { p.RT[0].Name = "z" },
		"RT.C":    func(p *tasksetio.Problem) { p.RT[0].C = 1.5 },
		"RT.T":    func(p *tasksetio.Problem) { p.RT[0].T = 11 },
		"RT.D":    func(p *tasksetio.Problem) { p.RT[0].D = 9 },
		"RT.append": func(p *tasksetio.Problem) {
			p.RT = append(p.RT, rts.RTTask{Name: "c", C: 1, T: 30, D: 30})
			p.RTPartition = append(p.RTPartition, 0)
		},
		"RTPartition": func(p *tasksetio.Problem) { p.RTPartition[1] = 0 },
		"RTPart.nil":  func(p *tasksetio.Problem) { p.RTPartition = nil },
		"Sec.Name":    func(p *tasksetio.Problem) { p.Sec[0].Name = "q" },
		"Sec.C":       func(p *tasksetio.Problem) { p.Sec[0].C = 4 },
		"Sec.TDes":    func(p *tasksetio.Problem) { p.Sec[0].TDes = 200 },
		"Sec.TMax":    func(p *tasksetio.Problem) { p.Sec[0].TMax = 2000 },
		"Sec.Weight":  func(p *tasksetio.Problem) { p.Sec[0].Weight = 2 },
		"Sec.append": func(p *tasksetio.Problem) {
			p.Sec = append(p.Sec, rts.SecurityTask{Name: "t", C: 1, TDes: 50, TMax: 500})
		},
		"arg.scheme":     nil, // handled below: Key args, not Problem fields
		"arg.heuristc":   nil,
		"arg.rngversion": nil,
	}
	baseKey := Key(keyBase(), "hydra", partition.BestFit, stats.RNGv2)
	seen := map[string]string{"<base>": baseKey}
	for name, mutate := range mutations {
		var key string
		switch name {
		case "arg.scheme":
			key = Key(keyBase(), "singlecore", partition.BestFit, stats.RNGv2)
		case "arg.heuristc":
			key = Key(keyBase(), "hydra", partition.FirstFit, stats.RNGv2)
		case "arg.rngversion":
			key = Key(keyBase(), "hydra", partition.BestFit, stats.RNGv1)
		default:
			p := keyBase()
			mutate(p)
			key = Key(p, "hydra", partition.BestFit, stats.RNGv2)
		}
		if key == baseKey {
			t.Errorf("mutation %q does not change the cache key — appendCanonicalBytes misses it", name)
		}
		for other, k := range seen {
			if k == key {
				t.Errorf("mutations %q and %q collide on the same key", name, other)
			}
		}
		seen[name] = key
	}
	// Determinism: the same problem always hashes to the same key.
	if again := Key(keyBase(), "hydra", partition.BestFit, stats.RNGv2); again != baseKey {
		t.Errorf("key not deterministic: %s vs %s", again, baseKey)
	}
}
