package service

import (
	"net/http"
	"testing"
)

// The allocate path accepts a results_version, reports the resolved version
// in X-Results-Version, and rejects unknown versions with a 400 instead of
// silently serving a cache entry computed under a different version.
func TestAllocateResultsVersion(t *testing.T) {
	s := newServer(t)

	def := post(t, s, "/v1/allocate", allocateBody(sampleTaskset, ""))
	if def.Code != http.StatusOK {
		t.Fatalf("status %d: %s", def.Code, def.Body)
	}
	if got := def.Header().Get("X-Results-Version"); got != "2" {
		t.Fatalf("default X-Results-Version = %q, want 2", got)
	}

	v1 := post(t, s, "/v1/allocate", allocateBody(sampleTaskset, `"results_version": 1`))
	if v1.Code != http.StatusOK {
		t.Fatalf("v1 status %d: %s", v1.Code, v1.Body)
	}
	if got := v1.Header().Get("X-Results-Version"); got != "1" {
		t.Fatalf("v1 X-Results-Version = %q, want 1", got)
	}
	// Allocation is RNG-free, so the body matches — but the versions live in
	// separate cache partitions: the v1 request must be a miss, not a hit on
	// the default-version entry.
	if got := v1.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("v1 request hit the v2 cache partition (X-Cache %q)", got)
	}
	again := post(t, s, "/v1/allocate", allocateBody(sampleTaskset, `"results_version": 1`))
	if got := again.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("repeated v1 request X-Cache = %q, want HIT", got)
	}

	bad := post(t, s, "/v1/allocate", allocateBody(sampleTaskset, `"results_version": 9`))
	if bad.Code != http.StatusBadRequest {
		t.Fatalf("unknown version: status %d, want 400: %s", bad.Code, bad.Body)
	}
}

// The batch path validates the version up front with the same rule.
func TestBatchResultsVersion(t *testing.T) {
	s := newServer(t)
	bad := post(t, s, "/v1/allocate/batch", `{"tasksets": [`+sampleTaskset+`], "results_version": 9}`)
	if bad.Code != http.StatusBadRequest {
		t.Fatalf("unknown version: status %d, want 400: %s", bad.Code, bad.Body)
	}
	ok := post(t, s, "/v1/allocate/batch", `{"tasksets": [`+sampleTaskset+`], "results_version": 1}`)
	if ok.Code != http.StatusOK {
		t.Fatalf("v1 batch: status %d: %s", ok.Code, ok.Body)
	}
}
