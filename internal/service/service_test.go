package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hydra/internal/core"
	"hydra/internal/tasksetio"
)

const sampleTaskset = `{
  "cores": 2,
  "rt_tasks": [
    {"name": "ctl", "wcet_ms": 5, "period_ms": 20},
    {"name": "nav", "wcet_ms": 30, "period_ms": 100}
  ],
  "security_tasks": [
    {"name": "tw", "wcet_ms": 50, "desired_period_ms": 1000, "max_period_ms": 10000},
    {"name": "bro", "wcet_ms": 30, "desired_period_ms": 500, "max_period_ms": 5000}
  ]
}`

// sampleTasksetPermuted is the same system with both task lists reordered —
// canonicalization must map it to the same cache entry.
const sampleTasksetPermuted = `{
  "cores": 2,
  "rt_tasks": [
    {"name": "nav", "wcet_ms": 30, "period_ms": 100},
    {"name": "ctl", "wcet_ms": 5, "period_ms": 20}
  ],
  "security_tasks": [
    {"name": "bro", "wcet_ms": 30, "desired_period_ms": 500, "max_period_ms": 5000},
    {"name": "tw", "wcet_ms": 50, "desired_period_ms": 1000, "max_period_ms": 10000}
  ]
}`

// testAllocator wraps a registered scheme with a call counter and an
// optional artificial delay, for singleflight and cancellation tests.
type testAllocator struct {
	name  string
	delay time.Duration
	calls atomic.Int64
	inner core.Allocator
}

func (a *testAllocator) Name() string { return a.name }
func (a *testAllocator) Allocate(in *core.Input) *core.Result {
	a.calls.Add(1)
	if a.delay > 0 {
		time.Sleep(a.delay)
	}
	return a.inner.Allocate(in)
}

var (
	countingAlloc = &testAllocator{name: "test-counting", delay: 5 * time.Millisecond, inner: core.MustLookup("hydra")}
	slowAlloc     = &testAllocator{name: "test-slow", delay: 30 * time.Millisecond, inner: core.MustLookup("hydra")}
)

func TestMain(m *testing.M) {
	core.Register(countingAlloc)
	core.Register(slowAlloc)
	os.Exit(m.Run())
}

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// post calls the handler directly and returns the recorded response.
func post(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func allocateBody(taskset string, extra string) string {
	if extra != "" {
		extra = ", " + extra
	}
	return fmt.Sprintf(`{"taskset": %s%s}`, taskset, extra)
}

func TestAllocateCachedByteIdentical(t *testing.T) {
	s := newServer(t)
	first := post(t, s, "/v1/allocate", allocateBody(sampleTaskset, ""))
	if first.Code != http.StatusOK {
		t.Fatalf("status %d: %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("first request X-Cache = %q, want MISS", got)
	}
	second := post(t, s, "/v1/allocate", allocateBody(sampleTaskset, ""))
	if second.Code != http.StatusOK {
		t.Fatalf("status %d: %s", second.Code, second.Body)
	}
	if got := second.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("second request X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatalf("cached response differs from uncached:\n%s\nvs\n%s", first.Body, second.Body)
	}
	var rj tasksetio.ResultJSON
	if err := json.Unmarshal(first.Body.Bytes(), &rj); err != nil {
		t.Fatal(err)
	}
	if !rj.Schedulable || rj.Scheme != "hydra" || len(rj.Tasks) != 2 {
		t.Fatalf("unexpected result: %+v", rj)
	}
	// Canonical ordering: tasks sorted by name.
	if rj.Tasks[0].Name != "bro" || rj.Tasks[1].Name != "tw" {
		t.Fatalf("tasks not in canonical order: %+v", rj.Tasks)
	}
}

func TestAllocatePermutedTasksetHitsCache(t *testing.T) {
	s := newServer(t)
	first := post(t, s, "/v1/allocate", allocateBody(sampleTaskset, ""))
	perm := post(t, s, "/v1/allocate", allocateBody(sampleTasksetPermuted, ""))
	if got := perm.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("permuted taskset X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(first.Body.Bytes(), perm.Body.Bytes()) {
		t.Fatalf("permuted taskset got a different body")
	}
}

func TestAllocateHitRateOverRepeatLoop(t *testing.T) {
	s := newServer(t)
	const n = 1000
	for i := 0; i < n; i++ {
		w := post(t, s, "/v1/allocate", allocateBody(sampleTaskset, ""))
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, w.Code, w.Body)
		}
	}
	var st StatsResponse
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Cache.Misses)
	}
	rate := float64(st.Cache.Hits) / float64(st.Cache.Hits+st.Cache.Misses)
	if rate <= 0.9 {
		t.Fatalf("hit rate %.3f, want > 0.9 (stats: %+v)", rate, st.Cache)
	}
	if st.Allocate.Hit.Count != n-1 || st.Allocate.Cold.Count != 1 {
		t.Fatalf("latency counts cold=%d hit=%d, want 1 and %d", st.Allocate.Cold.Count, st.Allocate.Hit.Count, n-1)
	}
}

func TestAllocateInfeasibleIsAVerdict(t *testing.T) {
	s := newServer(t)
	overload := `{
	  "cores": 2,
	  "rt_tasks": [
	    {"name": "a", "wcet_ms": 90, "period_ms": 100},
	    {"name": "b", "wcet_ms": 90, "period_ms": 100},
	    {"name": "c", "wcet_ms": 90, "period_ms": 100}
	  ],
	  "security_tasks": [
	    {"name": "s", "wcet_ms": 1, "desired_period_ms": 100, "max_period_ms": 200}
	  ]
	}`
	w := post(t, s, "/v1/allocate", allocateBody(overload, ""))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var rj tasksetio.ResultJSON
	if err := json.Unmarshal(w.Body.Bytes(), &rj); err != nil {
		t.Fatal(err)
	}
	if rj.Schedulable || rj.Reason == "" {
		t.Fatalf("want an unschedulable verdict with a reason, got %+v", rj)
	}
	// The verdict is cached like any other result.
	if got := post(t, s, "/v1/allocate", allocateBody(overload, "")).Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("repeat infeasible request X-Cache = %q, want HIT", got)
	}
}

func TestAllocateBadRequests(t *testing.T) {
	s := newServer(t)
	cases := []string{
		allocateBody(sampleTaskset, `"scheme": "bogus"`),
		allocateBody(sampleTaskset, `"heuristic": "bogus"`),
		`{"taskset": {"cores": 0, "rt_tasks": [], "security_tasks": []}}`,
		`{"taskset": {"cores": 2, "bogus_field": 1, "rt_tasks": [], "security_tasks": []}}`,
		`{not json`,
	}
	for _, body := range cases {
		if w := post(t, s, "/v1/allocate", body); w.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, w.Code)
		}
	}
	// Wrong method.
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/allocate", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/allocate: status %d, want 405", w.Code)
	}
}

// batchTasksets builds n distinct schedulable tasksets.
func batchTasksets(n int) []string {
	docs := make([]string, n)
	for i := range docs {
		docs[i] = fmt.Sprintf(`{
		  "cores": 2,
		  "rt_tasks": [
		    {"name": "ctl", "wcet_ms": 5, "period_ms": %d},
		    {"name": "nav", "wcet_ms": 30, "period_ms": 100}
		  ],
		  "security_tasks": [
		    {"name": "tw", "wcet_ms": 50, "desired_period_ms": 1000, "max_period_ms": 10000}
		  ]
		}`, 20+i)
	}
	return docs
}

func TestBatchOrderedAndDeterministic(t *testing.T) {
	s := newServer(t)
	docs := batchTasksets(16)
	body := fmt.Sprintf(`{"workers": 4, "tasksets": [%s]}`, strings.Join(docs, ","))
	first := post(t, s, "/v1/allocate/batch", body)
	if first.Code != http.StatusOK {
		t.Fatalf("status %d: %s", first.Code, first.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(first.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(docs) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(docs))
	}
	// Results are in request order: each must match the sequential answer.
	// (Embedding in the batch envelope re-indents the JSON, so compare the
	// compacted forms.)
	for i, doc := range docs {
		seq := post(t, s, "/v1/allocate", allocateBody(doc, ""))
		var a, b bytes.Buffer
		if err := json.Compact(&a, seq.Body.Bytes()); err != nil {
			t.Fatal(err)
		}
		if err := json.Compact(&b, resp.Results[i]); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("result %d differs from sequential allocate:\n%s\nvs\n%s", i, b.String(), a.String())
		}
	}
	// Re-running the batch (all cache hits now) is byte-identical.
	second := post(t, s, "/v1/allocate/batch", body)
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("repeated batch response differs")
	}
	// And a different worker count produces the same bytes on a cold cache.
	s2 := newServer(t)
	w1 := post(t, s2, "/v1/allocate/batch", strings.Replace(body, `"workers": 4`, `"workers": 1`, 1))
	if !bytes.Equal(first.Body.Bytes(), w1.Body.Bytes()) {
		t.Fatal("batch response depends on worker count")
	}
}

func TestBatchCancelledByServerClose(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	docs := batchTasksets(100)
	body := fmt.Sprintf(`{"scheme": "test-slow", "workers": 1, "tasksets": [%s]}`, strings.Join(docs, ","))
	done := make(chan *httptest.ResponseRecorder, 1)
	start := time.Now()
	go func() {
		done <- post(t, s, "/v1/allocate/batch", body)
	}()
	time.Sleep(60 * time.Millisecond) // let a cell or two start
	s.Close()
	w := <-done
	elapsed := time.Since(start)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", w.Code, w.Body)
	}
	// 100 cells x 30ms on one worker would be 3s; cancellation between cells
	// must cut that to roughly the in-flight cell plus overhead.
	if elapsed > time.Second {
		t.Fatalf("cancelled batch took %v", elapsed)
	}
}

func TestVerifyEndpoint(t *testing.T) {
	s := newServer(t)
	res := post(t, s, "/v1/allocate", allocateBody(sampleTaskset, ""))
	verifyBody := fmt.Sprintf(`{"taskset": %s, "result": %s}`, sampleTaskset, strings.TrimSpace(res.Body.String()))
	w := post(t, s, "/v1/verify", verifyBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &vr); err != nil {
		t.Fatal(err)
	}
	if !vr.Valid || !vr.ExactValid {
		t.Fatalf("valid allocation rejected: %+v", vr)
	}

	// Tamper: shrink a period below WCET-feasible range.
	var rj tasksetio.ResultJSON
	if err := json.Unmarshal(res.Body.Bytes(), &rj); err != nil {
		t.Fatal(err)
	}
	rj.Tasks[0].PeriodMS = 1
	tampered, _ := json.Marshal(rj)
	w = post(t, s, "/v1/verify", fmt.Sprintf(`{"taskset": %s, "result": %s}`, sampleTaskset, tampered))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Valid {
		t.Fatalf("tampered result accepted: %+v", vr)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	s := newServer(t)
	w := post(t, s, "/v1/simulate", allocateBody(sampleTaskset, `"horizon_ms": 5000`))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Schedulable || len(sr.Cores) != 2 || sr.HorizonMS != 5000 {
		t.Fatalf("unexpected simulation: %+v", sr)
	}
	if sr.TotalMisses != 0 {
		t.Fatalf("verified allocation missed deadlines in simulation: %+v", sr)
	}
	// Horizon bounds are enforced.
	if w := post(t, s, "/v1/simulate", allocateBody(sampleTaskset, `"horizon_ms": 99999999999`)); w.Code != http.StatusBadRequest {
		t.Fatalf("oversized horizon: status %d", w.Code)
	}
}

func TestSchemesEndpoint(t *testing.T) {
	s := newServer(t)
	w := get(t, s, "/v1/schemes")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var sr SchemesResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, n := range sr.Schemes {
		have[n] = true
	}
	for _, want := range []string{"hydra", "singlecore", "opt", "partition-best-fit"} {
		if !have[want] {
			t.Fatalf("schemes listing missing %q: %v", want, sr.Schemes)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := newServer(t)
	if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
}

// TestConcurrentHammerSingleflight fires many concurrent identical requests
// at a counting allocator: the singleflight layer must collapse them into
// exactly one allocation, and every caller must receive identical bytes.
// Run with -race.
func TestConcurrentHammerSingleflight(t *testing.T) {
	s := newServer(t)
	body := allocateBody(sampleTaskset, `"scheme": "test-counting"`)
	countingAlloc.calls.Store(0)
	const goroutines = 64
	bodies := make([][]byte, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := post(t, s, "/v1/allocate", body)
			if w.Code == http.StatusOK {
				bodies[g] = w.Body.Bytes()
			}
		}(g)
	}
	wg.Wait()
	if calls := countingAlloc.calls.Load(); calls != 1 {
		t.Fatalf("allocator ran %d times under concurrent identical load, want 1", calls)
	}
	for g := 1; g < goroutines; g++ {
		if bodies[g] == nil || !bytes.Equal(bodies[0], bodies[g]) {
			t.Fatalf("goroutine %d got a different (or no) body", g)
		}
	}
	var st StatsResponse
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Misses != 1 || st.Cache.Hits+st.Cache.Coalesced != goroutines-1 {
		t.Fatalf("cache stats after hammer: %+v", st.Cache)
	}
}

// TestEndToEndOverHTTP exercises the full stack through a real listener.
func TestEndToEndOverHTTP(t *testing.T) {
	s := newServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/allocate", "application/json", strings.NewReader(allocateBody(sampleTaskset, "")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var rj tasksetio.ResultJSON
	if err := json.Unmarshal(raw, &rj); err != nil {
		t.Fatal(err)
	}
	if !rj.Schedulable {
		t.Fatalf("allocation over HTTP: %+v", rj)
	}
}

func TestCacheLRUBound(t *testing.T) {
	// One stripe pins the classic LRU semantics; multi-stripe eviction
	// accounting is covered by the striped hammer test.
	c := NewCacheStriped(2, 1)
	val := func(s string) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte(s), nil }
	}
	c.Do("a", val("A"))
	c.Do("b", val("B"))
	if v, o, _ := c.Do("a", val("never")); o != OutcomeHit || string(v) != "A" {
		t.Fatalf("a: outcome=%v v=%q", o, v) // refresh: a is MRU
	}
	c.Do("c", val("C")) // evicts b (LRU), keeps the refreshed a
	if _, o, _ := c.Do("b", val("B2")); o.FromMemory() {
		t.Fatal("b should have been evicted")
	}
	if v, o, _ := c.Do("c", val("never")); o != OutcomeHit || string(v) != "C" {
		t.Fatalf("c: outcome=%v v=%q", o, v)
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(4)
	calls := 0
	fail := func() ([]byte, error) { calls++; return nil, fmt.Errorf("boom %d", calls) }
	if _, _, err := c.Do("k", fail); err == nil {
		t.Fatal("want error")
	}
	if _, o, err := c.Do("k", fail); err == nil || o.FromMemory() {
		t.Fatalf("errors must not be cached: outcome=%v err=%v", o, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}

// TestCachePanicDoesNotPoisonKey: a panicking computation must release its
// singleflight slot (waiters get an error, later calls recompute) instead of
// leaving the key permanently in flight.
func TestCachePanicDoesNotPoisonKey(t *testing.T) {
	c := NewCache(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic must propagate")
			}
		}()
		c.Do("k", func() ([]byte, error) { panic("boom") })
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if v, o, err := c.Do("k", func() ([]byte, error) { return []byte("ok"), nil }); err != nil || o.FromMemory() || string(v) != "ok" {
			t.Errorf("after panic: v=%q outcome=%v err=%v", v, o, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key poisoned: Do blocked after a panicking computation")
	}
}
