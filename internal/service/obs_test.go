package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"hydra/internal/obs"
)

// raceEnabled is set by race_test.go when the race detector is compiled in.
var raceEnabled bool

// scrapeMetrics fetches /metrics and parses the exposition into a
// series → value map.
func scrapeMetrics(t *testing.T, s *Server) map[string]float64 {
	t.Helper()
	w := get(t, s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	series, err := obs.ParsePrometheus(w.Body)
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	return series
}

// normalizeExposition replaces every sample value with "V", keeping names,
// labels and comment lines: the golden pins the series set and ordering, not
// the (run-dependent) values.
func normalizeExposition(text string) string {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for i, line := range lines {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if sp := strings.LastIndexByte(line, ' '); sp >= 0 {
			lines[i] = line[:sp] + " V"
		}
	}
	return strings.Join(lines, "\n") + "\n"
}

// TestMetricsGolden pins the full series set of the exposition: every family,
// every label combination, in registration order. Stripe and shard counts are
// fixed so the per-stripe series are stable.
func TestMetricsGolden(t *testing.T) {
	s, err := New(Config{CacheStripes: 2, SystemShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	// A miss and a hit, so the scrape reflects live traffic (values are
	// normalized away; this guards against a scrape-time panic under load).
	post(t, s, "/v1/allocate", allocateBody(sampleTaskset, ""))
	post(t, s, "/v1/allocate", allocateBody(sampleTaskset, ""))

	w := get(t, s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", w.Code, w.Body)
	}
	got := normalizeExposition(w.Body.String())
	path := filepath.Join("testdata", "metrics.golden.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden %s:\ngot:\n%s", path, got)
	}
}

// TestMetricsStatsAgree asserts the exposition is a lossless superset of
// /v1/stats: every count the JSON stats report must be recoverable from the
// scrape, so dashboards built on either surface agree.
func TestMetricsStatsAgree(t *testing.T) {
	s := newServer(t)

	// Traffic: one cold allocate, two hits, plus a hosted system with one
	// admission (which also exercises the WAL observer).
	for i := 0; i < 3; i++ {
		if w := post(t, s, "/v1/allocate", allocateBody(sampleTaskset, "")); w.Code != http.StatusOK {
			t.Fatalf("allocate %d: %d %s", i, w.Code, w.Body)
		}
	}
	if w := post(t, s, "/v1/systems", createSystemBody("obs-agree")); w.Code != http.StatusCreated {
		t.Fatalf("create system: %d %s", w.Code, w.Body)
	}
	if w := post(t, s, "/v1/systems/obs-agree/tasks",
		`{"security_task": {"name": "scan", "wcet_ms": 10, "desired_period_ms": 2000, "max_period_ms": 20000}}`); w.Code != http.StatusOK {
		t.Fatalf("add task: %d %s", w.Code, w.Body)
	}

	var stats StatsResponse
	w := get(t, s, "/v1/stats")
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	series := scrapeMetrics(t, s)

	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{`hydra_allocate_seconds_count{outcome="cold"}`, series[`hydra_allocate_seconds_count{outcome="cold"}`], float64(stats.Allocate.Cold.Count)},
		{`hydra_allocate_seconds_count{outcome="hit"}`, series[`hydra_allocate_seconds_count{outcome="hit"}`], float64(stats.Allocate.Hit.Count)},
		{`hydra_allocate_seconds_count{outcome="coalesced"}`, series[`hydra_allocate_seconds_count{outcome="coalesced"}`], float64(stats.Allocate.Coalesced.Count)},
		{"sum hydra_cache_hits_total", obs.SumSeries(series, "hydra_cache_hits_total"), float64(stats.Cache.Hits)},
		{"sum hydra_cache_misses_total", obs.SumSeries(series, "hydra_cache_misses_total"), float64(stats.Cache.Misses)},
		{"sum hydra_cache_coalesced_total", obs.SumSeries(series, "hydra_cache_coalesced_total"), float64(stats.Cache.Coalesced)},
		{"sum hydra_cache_evictions_total", obs.SumSeries(series, "hydra_cache_evictions_total"), float64(stats.Cache.Evictions)},
		{"hydra_cache_entries", series["hydra_cache_entries"], float64(stats.Cache.Entries)},
		{"hydra_cache_capacity", series["hydra_cache_capacity"], float64(stats.Cache.Capacity)},
		{"hydra_jobs_submitted_total", series["hydra_jobs_submitted_total"], float64(stats.Jobs.Submitted)},
		{"hydra_jobs_queued", series["hydra_jobs_queued"], float64(stats.Jobs.Queued)},
		{"hydra_systems_active", series["hydra_systems_active"], float64(stats.Systems.Active)},
		{"hydra_systems_created_total", series["hydra_systems_created_total"], float64(stats.Systems.Created)},
		{"hydra_systems_admitted_total", series["hydra_systems_admitted_total"], float64(stats.Systems.Admitted)},
		{"hydra_systems_events_total", series["hydra_systems_events_total"], float64(stats.Systems.Events)},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, stats say %v", c.name, c.got, c.want)
		}
	}
	if got := series[`hydra_http_requests_total{route="POST /v1/allocate",code="2xx"}`]; got != 3 {
		t.Errorf("allocate 2xx counter = %v, want 3", got)
	}
	if got := series["hydra_wal_append_seconds_count"]; got < 1 {
		t.Errorf("WAL append count = %v, want >= 1 (the admission op)", got)
	}
	if sampled := stats.Allocate.Cold.Count + stats.Allocate.Hit.Count; sampled != 3 {
		t.Errorf("stats allocate counts sum to %d, want 3", sampled)
	}
}

// postWithHeader is post with one extra request header.
func postWithHeader(t *testing.T, s *Server, path, body, key, val string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set(key, val)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// TestTracesEndpoint exercises the head-sampled trace ring end to end:
// request-id propagation and generation, the recorded span tree for a cold
// allocate, the min_ms filter, and its validation.
func TestTracesEndpoint(t *testing.T) {
	s, err := New(Config{TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	w := postWithHeader(t, s, "/v1/allocate", allocateBody(sampleTaskset, ""), "X-Request-Id", "req-cold-1")
	if w.Code != http.StatusOK {
		t.Fatalf("allocate: %d %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Request-Id"); got != "req-cold-1" {
		t.Fatalf("X-Request-Id echo = %q, want req-cold-1", got)
	}
	anon := post(t, s, "/v1/allocate", allocateBody(sampleTaskset, ""))
	if got := anon.Header().Get("X-Request-Id"); got == "" {
		t.Fatal("no generated X-Request-Id on headerless request")
	}

	var resp TracesResponse
	tw := get(t, s, "/v1/debug/traces")
	if tw.Code != http.StatusOK {
		t.Fatalf("traces: %d %s", tw.Code, tw.Body)
	}
	if err := json.Unmarshal(tw.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode traces: %v", err)
	}
	if resp.Sample != 1 {
		t.Fatalf("sample = %d, want 1", resp.Sample)
	}
	if resp.Sampled < 2 {
		t.Fatalf("sampled = %d, want >= 2", resp.Sampled)
	}
	var cold *obs.TraceJSON
	for i := range resp.Traces {
		if resp.Traces[i].RequestID == "req-cold-1" {
			cold = &resp.Traces[i]
		}
	}
	if cold == nil {
		t.Fatalf("trace req-cold-1 not in ring: %s", tw.Body)
	}
	if cold.Route != "POST /v1/allocate" {
		t.Fatalf("trace route = %q", cold.Route)
	}
	want := []string{"decode", "canonical-key", "cache-do", "allocate-compute", "write-body"}
	names := make(map[string]bool, len(cold.Spans))
	for _, sp := range cold.Spans {
		names[sp.Name] = true
	}
	for _, n := range want {
		if !names[n] {
			t.Errorf("cold allocate trace missing span %q (have %v)", n, cold.Spans)
		}
	}

	// An absurd min_ms filters everything; a malformed one is a 400.
	var empty TracesResponse
	fw := get(t, s, "/v1/debug/traces?min_ms=3600000")
	if err := json.Unmarshal(fw.Body.Bytes(), &empty); err != nil {
		t.Fatal(err)
	}
	if len(empty.Traces) != 0 {
		t.Fatalf("min_ms=3600000 returned %d traces", len(empty.Traces))
	}
	if bad := get(t, s, "/v1/debug/traces?min_ms=banana"); bad.Code != http.StatusBadRequest {
		t.Fatalf("min_ms=banana: status %d, want 400", bad.Code)
	}
	if bad := get(t, s, "/v1/debug/traces?min_ms=-1"); bad.Code != http.StatusBadRequest {
		t.Fatalf("min_ms=-1: status %d, want 400", bad.Code)
	}
}

// TestDebugHandlerServesMetricsAndPprof covers the separate debug listener's
// mux: the exposition, the trace ring and the pprof index all answer there.
func TestDebugHandlerServesMetricsAndPprof(t *testing.T) {
	s := newServer(t)
	h := s.DebugHandler()
	for _, path := range []string{"/metrics", "/v1/debug/traces", "/debug/pprof/"} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		if w.Code != http.StatusOK {
			t.Errorf("%s: status %d", path, w.Code)
		}
	}
}

// TestMiddlewareZeroAllocs pins the zero-overhead-when-off contract: with
// tracing disabled and no logger, a cache-hit allocate through the full
// instrumented handler chain stays within the benchmark baseline's allocation
// budget (BENCH_serve.json: 64 allocs/op including the test request and
// recorder themselves).
func TestMiddlewareZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector runtime allocates; counts only meaningful without -race")
	}
	s := newServer(t)
	h := s.Handler()
	body := allocateBody(sampleTaskset, "")
	serve := func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/allocate", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			panic("allocate failed: " + w.Body.String())
		}
	}
	serve() // prime the cache and the pools
	serve()
	if allocs := testing.AllocsPerRun(200, serve); allocs > 64 {
		t.Fatalf("cache-hit request = %.1f allocs/op, budget 64 — instrumentation leaked onto the hot path", allocs)
	}
}

// TestObsConcurrentScrape hammers serving, scraping and the trace ring from
// many goroutines at once; run under -race this pins the scrape snapshot and
// tracer locking.
func TestObsConcurrentScrape(t *testing.T) {
	s, err := New(Config{TraceSample: 2, TraceRing: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	body := allocateBody(sampleTaskset, "")
	post(t, s, "/v1/allocate", body) // prime

	const perWorker = 50
	var wg sync.WaitGroup
	paths := []struct {
		method, path, body string
	}{
		{http.MethodPost, "/v1/allocate", body},
		{http.MethodPost, "/v1/allocate", body},
		{http.MethodPost, "/v1/allocate", body},
		{http.MethodGet, "/metrics", ""},
		{http.MethodGet, "/metrics", ""},
		{http.MethodGet, "/v1/debug/traces", ""},
		{http.MethodGet, "/v1/stats", ""},
	}
	h := s.Handler()
	for _, p := range paths {
		wg.Add(1)
		go func(method, path, body string) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var r *http.Request
				if body != "" {
					r = httptest.NewRequest(method, path, strings.NewReader(body))
				} else {
					r = httptest.NewRequest(method, path, nil)
				}
				w := httptest.NewRecorder()
				h.ServeHTTP(w, r)
				if w.Code != http.StatusOK {
					t.Errorf("%s %s: status %d", method, path, w.Code)
					return
				}
			}
		}(p.method, p.path, p.body)
	}
	wg.Wait()

	series := scrapeMetrics(t, s)
	if got := series[`hydra_http_requests_total{route="POST /v1/allocate",code="2xx"}`]; got != 3*perWorker+1 {
		t.Fatalf("allocate 2xx counter = %v, want %d", got, 3*perWorker+1)
	}
	// The scrape goes through the instrumented mux, so the one request in
	// flight at render time is the scrape itself.
	if got := series["hydra_http_in_flight"]; got != 1 {
		t.Fatalf("in-flight gauge = %v after quiesce, want 1 (the scrape itself)", got)
	}
}

// TestVersionGolden pins the /v1/version shape. The toolchain string is the
// only run-dependent field (the test binary carries no VCS stamp), so it is
// substituted before comparing.
func TestVersionGolden(t *testing.T) {
	s := newServer(t)
	w := get(t, s, "/v1/version")
	if w.Code != http.StatusOK {
		t.Fatalf("version: %d %s", w.Code, w.Body)
	}
	var v VersionResponse
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode version: %v", err)
	}
	if v.GoVersion != runtime.Version() {
		t.Fatalf("go_version = %q, want %q", v.GoVersion, runtime.Version())
	}
	got := strings.ReplaceAll(w.Body.String(), runtime.Version(), "GOVERSION")
	path := filepath.Join("testdata", "version.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("version drifted from golden %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}
