package lal

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major n×m matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("lal: NewMatrix negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i,j).
func (a *Matrix) At(i, j int) float64 { return a.Data[i*a.Cols+j] }

// Set assigns element (i,j).
func (a *Matrix) Set(i, j int, x float64) { a.Data[i*a.Cols+j] = x }

// Add increments element (i,j) by x.
func (a *Matrix) Add(i, j int, x float64) { a.Data[i*a.Cols+j] += x }

// Row returns a view (not a copy) of row i.
func (a *Matrix) Row(i int) Vector { return Vector(a.Data[i*a.Cols : (i+1)*a.Cols]) }

// Clone returns a deep copy of a.
func (a *Matrix) Clone() *Matrix {
	b := NewMatrix(a.Rows, a.Cols)
	copy(b.Data, a.Data)
	return b
}

// Zero sets all elements of a to 0.
func (a *Matrix) Zero() {
	for i := range a.Data {
		a.Data[i] = 0
	}
}

// MulVec computes dst = A*x. dst must have length A.Rows and x length A.Cols.
func (a *Matrix) MulVec(dst, x Vector) {
	if len(x) != a.Cols || len(dst) != a.Rows {
		panic(fmt.Sprintf("lal: MulVec shape mismatch A=%dx%d x=%d dst=%d", a.Rows, a.Cols, len(x), len(dst)))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MulTransVec computes dst = Aᵀ*x. dst must have length A.Cols and x length A.Rows.
func (a *Matrix) MulTransVec(dst, x Vector) {
	if len(x) != a.Rows || len(dst) != a.Cols {
		panic(fmt.Sprintf("lal: MulTransVec shape mismatch A=%dx%d x=%d dst=%d", a.Rows, a.Cols, len(x), len(dst)))
	}
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// AddOuterScaled computes A += alpha * u*uᵀ for a square symmetric update.
// A must be len(u)×len(u).
func (a *Matrix) AddOuterScaled(alpha float64, u Vector) {
	n := len(u)
	if a.Rows != n || a.Cols != n {
		panic(fmt.Sprintf("lal: AddOuterScaled shape mismatch A=%dx%d u=%d", a.Rows, a.Cols, n))
	}
	for i := 0; i < n; i++ {
		ui := alpha * u[i]
		if ui == 0 {
			continue
		}
		row := a.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] += ui * u[j]
		}
	}
}

// AddDiag computes A += alpha*I.
func (a *Matrix) AddDiag(alpha float64) {
	n := a.Rows
	if a.Cols < n {
		n = a.Cols
	}
	for i := 0; i < n; i++ {
		a.Data[i*a.Cols+i] += alpha
	}
}

// MaxAbsDiag returns the largest absolute diagonal entry (0 for empty).
func (a *Matrix) MaxAbsDiag() float64 {
	n := a.Rows
	if a.Cols < n {
		n = a.Cols
	}
	var m float64
	for i := 0; i < n; i++ {
		if v := math.Abs(a.Data[i*a.Cols+i]); v > m {
			m = v
		}
	}
	return m
}

// Cholesky computes in place the lower-triangular Cholesky factor L of the
// symmetric positive-definite matrix A (only the lower triangle of A is
// read), so that L*Lᵀ = A. It returns false if A is not (numerically)
// positive definite; in that case the matrix contents are undefined.
func (a *Matrix) Cholesky() bool {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("lal: Cholesky of non-square %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := a.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return false
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s*inv)
		}
	}
	// Zero the strict upper triangle so the factor is clean.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a.Set(i, j, 0)
		}
	}
	return true
}

// SolveCholesky solves L*Lᵀ*x = b in place given the Cholesky factor L
// (as produced by Cholesky). b is overwritten with the solution.
func (a *Matrix) SolveCholesky(b Vector) {
	n := a.Rows
	if len(b) != n {
		panic(fmt.Sprintf("lal: SolveCholesky length mismatch n=%d b=%d", n, len(b)))
	}
	// Forward solve L*y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		row := a.Data[i*n : i*n+i]
		for k, v := range row {
			s -= v * b[k]
		}
		b[i] = s / a.At(i, i)
	}
	// Back solve Lᵀ*x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= a.At(k, i) * b[k]
		}
		b[i] = s / a.At(i, i)
	}
}

// SolveSPD solves A*x = b for a symmetric positive-definite A, using a
// Cholesky factorisation with diagonal regularisation fallback: if the
// factorisation fails, a multiple of the identity proportional to the
// diagonal magnitude is added until it succeeds. It returns the solution
// (a fresh vector) and false only if even heavy regularisation fails.
// A is not modified.
func SolveSPD(a *Matrix, b Vector) (Vector, bool) {
	if a.Rows != a.Cols || len(b) != a.Rows {
		panic(fmt.Sprintf("lal: SolveSPD shape mismatch A=%dx%d b=%d", a.Rows, a.Cols, len(b)))
	}
	base := a.MaxAbsDiag()
	if base == 0 {
		base = 1
	}
	reg := 0.0
	for attempt := 0; attempt < 12; attempt++ {
		w := a.Clone()
		if reg > 0 {
			w.AddDiag(reg)
		}
		if w.Cholesky() {
			x := b.Clone()
			w.SolveCholesky(x)
			if !x.HasNaN() {
				return x, true
			}
		}
		if reg == 0 {
			reg = base * 1e-12
		} else {
			reg *= 100
		}
	}
	return nil, false
}
