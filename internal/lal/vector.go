// Package lal provides the small dense linear-algebra kernel used by the
// geometric-programming solver (internal/gp): vectors, column-major matrices,
// Cholesky factorisation and triangular solves.
//
// The package is deliberately minimal — it implements exactly the operations
// an equality-free log-barrier Newton method needs — and allocation-conscious:
// every mutating operation writes into a receiver or destination the caller
// owns, so inner solver loops can run without garbage.
package lal

import (
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// CopyFrom copies src into v. The lengths must match.
func (v Vector) CopyFrom(src Vector) {
	if len(v) != len(src) {
		panic(fmt.Sprintf("lal: CopyFrom length mismatch %d != %d", len(v), len(src)))
	}
	copy(v, src)
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Zero sets every element of v to 0.
func (v Vector) Zero() { v.Fill(0) }

// AddScaled computes v += alpha*w in place.
func (v Vector) AddScaled(alpha float64, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("lal: AddScaled length mismatch %d != %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Scale computes v *= alpha in place.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Dot returns the inner product v.w.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("lal: Dot length mismatch %d != %d", len(v), len(w)))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v, guarding against overflow.
func (v Vector) Norm2() float64 {
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute element of v (0 for an empty vector).
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Max returns the maximum element of v. It panics on an empty vector.
func (v Vector) Max() float64 {
	if len(v) == 0 {
		panic("lal: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum element of v. It panics on an empty vector.
func (v Vector) Min() float64 {
	if len(v) == 0 {
		panic("lal: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// HasNaN reports whether any element of v is NaN or infinite.
func (v Vector) HasNaN() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}
