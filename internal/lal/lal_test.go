package lal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestVectorBasics(t *testing.T) {
	v := NewVector(3)
	if len(v) != 3 {
		t.Fatalf("NewVector length = %d, want 3", len(v))
	}
	v[0], v[1], v[2] = 1, 2, 3
	w := v.Clone()
	w[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
	if got := v.Dot(Vector{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := v.Sum(); got != 6 {
		t.Fatalf("Sum = %v, want 6", got)
	}
	if got := v.Max(); got != 3 {
		t.Fatalf("Max = %v, want 3", got)
	}
	if got := v.Min(); got != 1 {
		t.Fatalf("Min = %v, want 1", got)
	}
	v.AddScaled(2, Vector{1, 1, 1})
	if v[0] != 3 || v[1] != 4 || v[2] != 5 {
		t.Fatalf("AddScaled = %v", v)
	}
	v.Scale(2)
	if v[2] != 10 {
		t.Fatalf("Scale = %v", v)
	}
	v.Fill(7)
	if v[0] != 7 || v[2] != 7 {
		t.Fatalf("Fill = %v", v)
	}
	v.Zero()
	if v.NormInf() != 0 {
		t.Fatalf("Zero left %v", v)
	}
}

func TestVectorNorm2(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm2(); !almostEq(got, 5, 1e-14) {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	// Overflow guard: naive sum of squares would overflow here.
	big := Vector{1e200, 1e200}
	if got := big.Norm2(); math.IsInf(got, 0) || !almostEq(got, 1e200*math.Sqrt2, 1e-12) {
		t.Fatalf("Norm2 big = %v", got)
	}
	empty := Vector{}
	if got := empty.Norm2(); got != 0 {
		t.Fatalf("Norm2 empty = %v, want 0", got)
	}
}

func TestVectorHasNaN(t *testing.T) {
	clean := Vector{1, 2, 3}
	if clean.HasNaN() {
		t.Fatal("clean vector reported NaN")
	}
	withNaN := Vector{1, math.NaN()}
	if !withNaN.HasNaN() {
		t.Fatal("NaN not detected")
	}
	withInf := Vector{math.Inf(1)}
	if !withInf.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestVectorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Dot", func() { Vector{1}.Dot(Vector{1, 2}) })
	mustPanic("AddScaled", func() { Vector{1}.AddScaled(1, Vector{1, 2}) })
	mustPanic("CopyFrom", func() { Vector{1}.CopyFrom(Vector{1, 2}) })
	mustPanic("MaxEmpty", func() { Vector{}.Max() })
	mustPanic("MinEmpty", func() { Vector{}.Min() })
}

func TestMatrixBasics(t *testing.T) {
	a := NewMatrix(2, 3)
	a.Set(0, 0, 1)
	a.Set(0, 2, 2)
	a.Set(1, 1, 3)
	if a.At(0, 2) != 2 || a.At(1, 1) != 3 {
		t.Fatal("Set/At mismatch")
	}
	a.Add(1, 1, 1)
	if a.At(1, 1) != 4 {
		t.Fatal("Add mismatch")
	}
	row := a.Row(1)
	row[0] = 9
	if a.At(1, 0) != 9 {
		t.Fatal("Row should be a view")
	}
	b := a.Clone()
	b.Set(0, 0, 100)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone aliases")
	}
	a.Zero()
	if a.At(1, 1) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatrix(2, 3)
	// [1 2 3; 4 5 6]
	for j := 0; j < 3; j++ {
		a.Set(0, j, float64(j+1))
		a.Set(1, j, float64(j+4))
	}
	x := Vector{1, 1, 1}
	dst := NewVector(2)
	a.MulVec(dst, x)
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MulVec = %v", dst)
	}
	y := Vector{1, 2}
	dt := NewVector(3)
	a.MulTransVec(dt, y)
	if dt[0] != 9 || dt[1] != 12 || dt[2] != 15 {
		t.Fatalf("MulTransVec = %v", dt)
	}
}

func TestAddOuterScaledAndDiag(t *testing.T) {
	a := NewMatrix(2, 2)
	a.AddOuterScaled(2, Vector{1, 3})
	// 2*[1;3][1 3] = [2 6; 6 18]
	if a.At(0, 0) != 2 || a.At(0, 1) != 6 || a.At(1, 0) != 6 || a.At(1, 1) != 18 {
		t.Fatalf("AddOuterScaled = %+v", a.Data)
	}
	a.AddDiag(1)
	if a.At(0, 0) != 3 || a.At(1, 1) != 19 {
		t.Fatalf("AddDiag = %+v", a.Data)
	}
	if got := a.MaxAbsDiag(); got != 19 {
		t.Fatalf("MaxAbsDiag = %v", got)
	}
}

func TestCholeskyKnown(t *testing.T) {
	// A = [4 2; 2 3], L = [2 0; 1 sqrt2].
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	if !a.Cholesky() {
		t.Fatal("Cholesky failed on SPD matrix")
	}
	if !almostEq(a.At(0, 0), 2, 1e-14) || !almostEq(a.At(1, 0), 1, 1e-14) ||
		!almostEq(a.At(1, 1), math.Sqrt2, 1e-14) || a.At(0, 1) != 0 {
		t.Fatalf("Cholesky factor = %+v", a.Data)
	}
}

func TestCholeskyIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if a.Cholesky() {
		t.Fatal("Cholesky succeeded on indefinite matrix")
	}
}

// randomSPD builds A = Bᵀ B + n*I which is symmetric positive definite.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b.At(k, i) * b.At(k, j)
			}
			a.Set(i, j, s)
		}
	}
	a.AddDiag(float64(n))
	return a
}

func TestSolveSPDRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		a := randomSPD(rng, n)
		xTrue := NewVector(n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := NewVector(n)
		a.MulVec(b, xTrue)
		x, ok := SolveSPD(a, b)
		if !ok {
			t.Fatalf("trial %d: SolveSPD failed", trial)
		}
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-8) {
				t.Fatalf("trial %d: x[%d]=%v want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestSolveSPDRegularizes(t *testing.T) {
	// Singular PSD matrix: SolveSPD should still return something finite
	// thanks to the regularisation fallback.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	x, ok := SolveSPD(a, Vector{1, 1})
	if !ok {
		t.Fatal("SolveSPD gave up on a singular PSD matrix")
	}
	if x.HasNaN() {
		t.Fatalf("SolveSPD returned non-finite %v", x)
	}
}

// Property: Cholesky round trip L*Lᵀ reproduces the original matrix.
func TestCholeskyRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randomSPD(r, n)
		l := a.Clone()
		if !l.Cholesky() {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				var s float64
				for k := 0; k <= j; k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				if !almostEq(s, a.At(i, j), 1e-9) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: SolveSPD residual ||Ax-b|| is tiny relative to ||b||.
func TestSolveSPDResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randomSPD(r, n)
		b := NewVector(n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, ok := SolveSPD(a, b)
		if !ok {
			return false
		}
		res := NewVector(n)
		a.MulVec(res, x)
		res.AddScaled(-1, b)
		return res.Norm2() <= 1e-8*(1+b.Norm2())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	a := NewMatrix(2, 3)
	mustPanic("MulVec", func() { a.MulVec(NewVector(2), NewVector(2)) })
	mustPanic("MulTransVec", func() { a.MulTransVec(NewVector(2), NewVector(2)) })
	mustPanic("CholeskyNonSquare", func() { a.Cholesky() })
	mustPanic("AddOuterScaled", func() { a.AddOuterScaled(1, NewVector(2)) })
	mustPanic("NewMatrixNegative", func() { NewMatrix(-1, 2) })
	sq := NewMatrix(2, 2)
	mustPanic("SolveCholeskyLen", func() { sq.SolveCholesky(NewVector(3)) })
	mustPanic("SolveSPDShape", func() { SolveSPD(a, NewVector(2)) })
}
