// Package worker is an rngstream fixture outside the internal/stats
// exemption: constructors and goroutine-crossing generators are flagged.
package worker

import (
	"math/rand"
)

// construct exercises the constructor positives.
func construct() *rand.Rand {
	src := rand.NewSource(1) // want `constructs a stream outside internal/stats`
	r := rand.New(src)       // want `constructs a stream outside internal/stats`
	return r
}

// allowedConstruct shows the escape hatch.
func allowedConstruct() rand.Source {
	return rand.NewSource(42) //lint:allow rngstream fixture: throwaway source for a non-result shuffle
}

// crossings exercises the goroutine-boundary positives.
func crossings(r *rand.Rand, src rand.Source, done chan struct{}) {
	go use(r, done) // want `generator passed into a goroutine`
	go func() {
		_ = r.Intn(10) // want `goroutine captures generator r`
		done <- struct{}{}
	}()
	go func() {
		_ = src.Int63() // want `goroutine captures generator src`
		done <- struct{}{}
	}()
}

// negatives: seeds cross goroutines freely, and a generator declared inside
// the goroutine body is owned by it.
func negatives(seed int64, derive func(int64) *rand.Rand, done chan struct{}) {
	go func(s int64) {
		local := derive(s)
		_ = local.Intn(10)
		done <- struct{}{}
	}(seed)
	r := derive(seed)
	_ = r.Intn(10) // same-goroutine draw: fine
	done <- struct{}{}
}

func use(r *rand.Rand, done chan struct{}) {
	_ = r.Intn(10)
	done <- struct{}{}
}
