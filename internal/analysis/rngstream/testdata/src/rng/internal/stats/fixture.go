// Package stats is an rngstream fixture for the exemption: this path ends in
// internal/stats, the one place allowed to construct math/rand generators.
package stats

import "math/rand"

// Derive stands in for the real stream-derivation seam: construction here is
// the sanctioned implementation of the (seed, stream) story, not a finding.
func Derive(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
