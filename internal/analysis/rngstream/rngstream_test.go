package rngstream_test

import (
	"testing"

	"hydra/internal/analysis/antest"
	"hydra/internal/analysis/rngstream"
)

func TestRngstream(t *testing.T) {
	antest.Run(t, "testdata", rngstream.Analyzer,
		"rng/worker",
		"rng/internal/stats",
	)
}
