// Package rngstream implements the hydra-vet analyzer that enforces the
// repo's RNG stream discipline.
//
// Worker-count determinism rests on every random stream being derived from a
// (seed, stream) pair through internal/stats — SplitRNG (v1), Split (v2), or
// VersionedRNG — never constructed ad hoc and never shared across
// goroutines. A raw rand.New(rand.NewSource(...)) invents a stream outside
// the results_version story (its draws can silently diverge between v1 and
// v2 replays), and a *rand.Rand reaching two goroutines makes the
// interleaving — and therefore every downstream draw — scheduling-dependent.
//
// rngstream flags both: construction of rand.New/rand.NewSource anywhere
// outside internal/stats, and any *rand.Rand that crosses a goroutine
// boundary (passed as a `go` call argument or captured by a `go` function
// literal from an enclosing scope). The sanctioned pattern is to derive a
// fresh generator inside the goroutine via stats.VersionedRNG or
// taskgen.GenerateAt's per-shard streams.
package rngstream

import (
	"go/ast"
	"go/types"

	"hydra/internal/analysis"
)

// ExemptPackage is the path suffix of the one package allowed to construct
// math/rand generators: the stream-derivation seams themselves live there.
const ExemptPackage = "internal/stats"

// Analyzer is the rngstream check.
var Analyzer = &analysis.Analyzer{
	Name: "rngstream",
	Doc: `enforce RNG stream discipline: construct in internal/stats, never share across goroutines

Flags rand.New/rand.NewSource construction outside internal/stats (streams
must be derived from (seed, stream) pairs via stats.Split, stats.SplitRNG or
stats.VersionedRNG so the results_version story covers them) and any
*rand.Rand passed to or captured by a goroutine (shared streams make draws
scheduling-dependent, destroying worker-count determinism — derive a fresh
generator inside the goroutine instead).`,
	Run: run,
}

func isRand(t types.Type) bool {
	return analysis.IsNamedType(t, "math/rand", "Rand") || analysis.IsNamedType(t, "math/rand", "Source")
}

func run(pass *analysis.Pass) error {
	exempt := analysis.PathHasSuffix(pass.Path(), ExemptPackage)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if exempt {
					return true
				}
				fn := analysis.Callee(pass.Info, n)
				if analysis.IsPkgFunc(fn, "math/rand", "New") || analysis.IsPkgFunc(fn, "math/rand", "NewSource") {
					pass.Reportf(n.Pos(), "rand.%s constructs a stream outside internal/stats: derive it from a (seed, stream) pair via stats.Split/stats.SplitRNG/stats.VersionedRNG so replay and results_version cover it", fn.Name())
				}
			case *ast.GoStmt:
				checkGo(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkGo flags *rand.Rand values crossing the goroutine boundary of g.
func checkGo(pass *analysis.Pass, g *ast.GoStmt) {
	// Arguments evaluated in the parent goroutine but handed to the new one.
	for _, arg := range g.Call.Args {
		if tv, ok := pass.Info.Types[arg]; ok && isRand(tv.Type) {
			pass.Reportf(arg.Pos(), "generator passed into a goroutine: a *rand.Rand must stay with one goroutine — derive an independent stream inside it (stats.VersionedRNG with its own stream label)")
		}
	}
	// Free variables of a `go func(){...}` literal.
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || seen[obj] || !isRand(obj.Type()) {
			return true
		}
		// Captured iff declared outside the literal.
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			seen[obj] = true
			pass.Reportf(id.Pos(), "goroutine captures generator %s from the enclosing scope: shared *rand.Rand draws are scheduling-dependent — derive an independent stream inside the goroutine", obj.Name())
		}
		return true
	})
}
