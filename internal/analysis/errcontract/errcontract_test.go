package errcontract_test

import (
	"testing"

	"hydra/internal/analysis/antest"
	"hydra/internal/analysis/errcontract"
)

func TestErrcontract(t *testing.T) {
	antest.Run(t, "testdata", errcontract.Analyzer,
		"ec/caller",
		"ec/internal/rts",
	)
}
