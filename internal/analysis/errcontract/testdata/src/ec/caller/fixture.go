// Package caller is the errcontract fixture exercising every way a caller
// can lose the converged verdict, plus the patterns that honor it.
package caller

import "ec/internal/rts"

// dropEverything discards all results in statement position.
func dropEverything() {
	rts.ResponseTimeFull(3, 10) // want `all results of ResponseTimeFull discarded`
}

// blankConverged assigns the verdict to _.
func blankConverged() (int, bool) {
	rt, ok, _ := rts.ResponseTimeFull(3, 10) // want `converged result of ResponseTimeFull assigned to _`
	return rt, ok
}

// neverRead binds the verdict but only compiler-silences it, which is the
// same fold in disguise.
func neverRead() (int, bool) {
	rt, ok, conv := rts.ExactSecurityResponseTimeFull(3, 10) // want `assigned to conv but never read`
	_ = conv
	return rt, ok
}

// allowedFold is the documented legacy-wrapper idiom.
func allowedFold() (int, bool) {
	rt, ok, _ := rts.ResponseTimeFull(3, 10) //lint:allow errcontract fixture: documented legacy fold
	return rt, ok
}

// branches honors the contract by branching on the verdict.
func branches() (int, bool) {
	rt, ok, conv := rts.ResponseTimeFull(3, 10)
	if !conv {
		return 0, false
	}
	return rt, ok
}

// forwards honors the contract by handing the verdict to the caller.
func forwards() (int, bool, bool) {
	length, conv := rts.BusyPeriodFull(7)
	return length, true, conv
}

// twoResult covers the two-result Full variant's blank case.
func twoResult() int {
	length, _ := rts.BusyPeriodFull(7) // want `converged result of BusyPeriodFull assigned to _`
	return length
}

// ResponseTimeFull here shadows the tracked name in a package that is not
// internal/rts: calls to it are not findings.
func ResponseTimeFull(c int) (int, bool, bool) {
	return c, true, true
}

type analyzer struct{}

// BusyPeriodFull as a method is likewise outside the contract.
func (analyzer) BusyPeriodFull(c int) (int, bool) {
	return c, true
}

// negatives calls the local shadow and the method in statement position.
func negatives() {
	ResponseTimeFull(3)
	var a analyzer
	a.BusyPeriodFull(7)
}
