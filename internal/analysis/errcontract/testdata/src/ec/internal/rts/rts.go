// Package rts is an errcontract fixture standing in for the real
// internal/rts: it defines the Full-contract analyses whose trailing result
// is the converged verdict.
package rts

func ResponseTimeFull(c, period int) (rt int, schedulable, converged bool) {
	return c, true, true
}

func ExactSecurityResponseTimeFull(c, period int) (rt int, schedulable, converged bool) {
	return c, true, true
}

func BusyPeriodFull(c int) (length int, converged bool) {
	return c, true
}

func ResponseTimeWithJitterBlockingFull(c, jitter int) (rt int, schedulable, converged bool) {
	return c, true, true
}
