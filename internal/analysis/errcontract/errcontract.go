// Package errcontract implements the hydra-vet analyzer enforcing the RTA
// divergence contract.
//
// The ...Full response-time analyses (ResponseTimeFull,
// ExactSecurityResponseTimeFull, BusyPeriodFull,
// ResponseTimeWithJitterBlockingFull) exist precisely to separate two
// outcomes the legacy API folds together: a *proven* deadline miss and a
// blown MaxRTAIterations budget where the true response time is unknown.
// A caller that reaches for the Full variant and then ignores the trailing
// `converged` result has silently rebuilt the legacy fold — a blown
// iteration budget reads as a proven miss again, which is the exact bug
// class PR 4 fixed in core.VerifyExact and AnalysisPessimism.
//
// errcontract flags call sites of the Full variants that discard the
// converged result (statement-position calls, `_` in the assignment, or a
// variable that is never subsequently read). The documented legacy wrappers
// inside internal/rts fold deliberately and carry //lint:allow annotations.
package errcontract

import (
	"go/ast"
	"go/types"

	"hydra/internal/analysis"
)

// Functions names the Full-contract analyses, all in internal/rts, whose
// last result is the converged verdict.
var Functions = map[string]bool{
	"ResponseTimeFull":                   true,
	"ExactSecurityResponseTimeFull":      true,
	"BusyPeriodFull":                     true,
	"ResponseTimeWithJitterBlockingFull": true,
}

// Analyzer is the errcontract check.
var Analyzer = &analysis.Analyzer{
	Name: "errcontract",
	Doc: `require callers of the ...Full RTA variants to branch on the converged result

The Full analyses return (value, verdict, converged); converged=false means
the iteration budget blew before a fixed point, so the verdict is
conservative, not proven. Discarding converged (statement call, assigning it
to _, or never reading the variable) silently turns "budget exhausted" back
into "proven deadline miss". Branch on it, forward it, or use the documented
legacy wrapper that folds the two on purpose.`,
	Run: run,
}

// isFullCall reports whether call invokes one of the tracked analyses and
// returns its result count.
func isFullCall(pass *analysis.Pass, call *ast.CallExpr) (int, bool) {
	fn := analysis.Callee(pass.Info, call)
	if fn == nil || !Functions[fn.Name()] || fn.Pkg() == nil || !analysis.PathHasSuffix(fn.Pkg().Path(), "internal/rts") {
		return 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return 0, false
	}
	return sig.Results().Len(), true
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// reads[obj] counts real reads of obj: uses excluding `_ = obj`
	// discards, which exist only to silence the compiler.
	reads := map[types.Object]int{}
	discards := map[*ast.Ident]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if lhs, ok := as.Lhs[0].(*ast.Ident); ok && lhs.Name == "_" {
				if rhs, ok := ast.Unparen(as.Rhs[0]).(*ast.Ident); ok {
					discards[rhs] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !discards[id] {
			if obj, ok := pass.Info.Uses[id].(*types.Var); ok {
				reads[obj]++
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if _, ok := isFullCall(pass, call); ok {
					pass.Reportf(call.Pos(), "all results of %s discarded: the converged verdict is lost, so a blown iteration budget is indistinguishable from a proven miss", callName(call))
				}
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			nres, ok := isFullCall(pass, call)
			if !ok || len(st.Lhs) != nres {
				return true
			}
			conv, ok := st.Lhs[nres-1].(*ast.Ident)
			if !ok {
				return true
			}
			if conv.Name == "_" {
				pass.Reportf(call.Pos(), "converged result of %s assigned to _: a blown iteration budget now reads as a proven miss — branch on it or use the documented legacy wrapper", callName(call))
				return true
			}
			obj := objOf(pass, conv)
			if obj == nil {
				return true
			}
			if reads[obj] == 0 {
				pass.Reportf(call.Pos(), "converged result of %s assigned to %s but never read: branch on it (or forward it) so a blown iteration budget is not misread as a proven miss", callName(call), conv.Name)
			}
		}
		return true
	})
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}
