// Package analysis is a small, dependency-free static-analysis framework
// modeled on golang.org/x/tools/go/analysis. It exists because this module
// deliberately carries no external dependencies: the repo's invariants
// (deterministic result paths, RNG stream discipline, pooled-buffer safety,
// the RTA divergence contract, WAL write-before-apply ordering) are encoded
// as analyzers over go/ast + go/types from the standard library only.
//
// The API mirrors x/tools so the analyzers port mechanically if the real
// framework ever becomes available: an Analyzer has a Name, a Doc, and a Run
// function over a Pass; diagnostics carry a token.Pos and a message. What is
// intentionally missing is the facts machinery (no analyzer here needs
// cross-package facts) and the dependency graph between analyzers.
//
// Every diagnostic can be suppressed at the offending line with
//
//	//lint:allow <analyzer>[,<analyzer>...] <reason>
//
// either trailing on the flagged line or on the line directly above it; see
// allow.go. Suppressions are the escape hatch for code that violates the
// letter of an invariant deliberately (e.g. wall-clock reads feeding the
// machine-relative timing section of a result document).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in lint:allow
	// annotations. By convention it is a short lowercase word.
	Name string
	// Doc is the help text surfaced by `hydra-vet help`: first line is a
	// one-sentence summary, the rest explains the invariant and the
	// sanctioned alternatives.
	Doc string
	// Run performs the check on one package, reporting findings through
	// pass.Report.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Path returns the package's import path as it was loaded. Path-scoped
// analyzers match on suffixes of it (e.g. "internal/engine") so fixture
// packages under testdata can opt into a scope by mirroring the path shape.
func (p *Pass) Path() string { return p.Pkg.Path() }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding before position resolution.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved diagnostic as emitted by RunPackage: the analyzer
// that produced it plus a printable file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// A Package is one loaded, type-checked compilation unit, as produced by the
// loaders in internal/analysis/load or by the unitchecker mode of
// cmd/hydra-vet.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// PathHasSuffix reports whether the package path is exactly suffix or ends
// with "/"+suffix — the matching rule every path-scoped analyzer uses, so
// that "hydra/internal/engine" and a fixture's "det/internal/engine" are
// both in scope for "internal/engine".
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// Callee resolves the *types.Func a call expression invokes, or nil for
// calls through function values, type conversions, and built-ins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function pkgPath.name
// (not a method). pkgPath is matched exactly for standard-library packages.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// IsMethodOf reports whether fn is a method whose receiver's named type is
// typeName declared in a package whose path ends in pkgSuffix (via
// PathHasSuffix), regardless of pointerness.
func IsMethodOf(fn *types.Func, pkgSuffix, typeName string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && PathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// IsNamedType reports whether t (after stripping pointers) is the named type
// typeName from a package whose path ends in pkgSuffix.
func IsNamedType(t types.Type, pkgSuffix, typeName string) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && PathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}
