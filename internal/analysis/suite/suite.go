// Package suite assembles the full hydra-vet analyzer set. cmd/hydra-vet
// and any future golangci-lint plugin shim import this one package instead
// of the individual analyzers.
package suite

import (
	"hydra/internal/analysis"
	"hydra/internal/analysis/detpath"
	"hydra/internal/analysis/errcontract"
	"hydra/internal/analysis/obsbound"
	"hydra/internal/analysis/poolsafety"
	"hydra/internal/analysis/rngstream"
	"hydra/internal/analysis/walorder"
)

// Analyzers returns the repo's invariant checks in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detpath.Analyzer,
		errcontract.Analyzer,
		obsbound.Analyzer,
		poolsafety.Analyzer,
		rngstream.Analyzer,
		walorder.Analyzer,
	}
}
