// Package obsbound implements the hydra-vet analyzer that keeps the
// observability layer's timing surface out of deterministic-result packages.
//
// The obs package carries two kinds of instruments. Counters are pure event
// counts — recording one is an atomic add with no clock read, so a
// deterministic package can count fixed-point iterations or warm starts
// without its results depending on the machine. Everything else (gauges,
// histogram observations, request tracing, registry wiring) either reads a
// clock, samples runtime state, or belongs to the serving layer — and a
// clock read on a deterministic path is exactly the bug class detpath
// exists to keep out (latency numbers leaking into result documents, or
// timing-dependent control flow).
//
// obsbound enforces the boundary mechanically: inside the deterministic-
// result packages (the detpath scope), the only obs API calls allowed are
// the count-only ones — Registry.Counter/CounterFunc and
// Counter.Inc/Add/Value. Histograms over deterministic counts are still
// exportable: keep plain counters in the package and bridge them at the
// service layer via obs.ConstHistogram (see the RTA iteration buckets).
package obsbound

import (
	"go/ast"

	"hydra/internal/analysis"
	"hydra/internal/analysis/detpath"
)

// obsPkgSuffix identifies the observability package by path shape, so
// fixture packages can stand in for the real one.
const obsPkgSuffix = "internal/obs"

// countOnly is the allowlist: the obs functions and methods with pure
// counter semantics (no clock, no runtime sampling, no tracing).
var countOnly = map[string]bool{
	"Counter":     true, // Registry.Counter
	"CounterFunc": true, // Registry.CounterFunc
	"Inc":         true, // Counter.Inc
	"Add":         true, // Counter.Add
	"Value":       true, // Counter.Value
}

// Analyzer is the obsbound check.
var Analyzer = &analysis.Analyzer{
	Name: "obsbound",
	Doc: `restrict deterministic-result packages to count-only observability

Inside the detpath scope (internal/engine, experiments, rts, stats, taskgen,
jobs), the only obs package calls allowed are counter operations:
Registry.Counter/CounterFunc and Counter.Inc/Add/Value. Histogram
observations, gauges, tracing and registry wiring read clocks or runtime
state and belong to the service and persistence layers; export
deterministic counts as plain counters and bridge them into histograms with
obs.ConstHistogram at the service layer instead.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, p := range detpath.Packages {
		if analysis.PathHasSuffix(pass.Path(), p) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || !analysis.PathHasSuffix(fn.Pkg().Path(), obsPkgSuffix) {
				return true
			}
			if countOnly[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(), "obs.%s is outside the count-only observability surface allowed in deterministic-result package %s: gauges, histogram observations, tracing and registry wiring read clocks or runtime state — keep plain counters here and bridge them at the service layer (obs.ConstHistogram)", fn.Name(), pass.Path())
			return true
		})
	}
	return nil
}
