package obsbound_test

import (
	"testing"

	"hydra/internal/analysis/antest"
	"hydra/internal/analysis/obsbound"
)

func TestObsbound(t *testing.T) {
	antest.Run(t, "testdata", obsbound.Analyzer,
		"ob/internal/rts",
		"ob/outofscope",
	)
}
