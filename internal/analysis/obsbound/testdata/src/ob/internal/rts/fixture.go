// Package rts is an obsbound fixture: its import path ends in internal/rts,
// so it is inside the deterministic-result scope.
package rts

import "ob/internal/obs"

// counts exercises the full count-only allowlist: every line here must stay
// silent.
func counts(r *obs.Registry, c *obs.Counter) uint64 {
	fixed := r.Counter("rta_fixed_points_total", "", "RTA fixed points.")
	r.CounterFunc("rta_warm_starts_total", "", "Warm starts.", func() uint64 { return 0 })
	fixed.Inc()
	c.Add(3)
	return c.Value()
}

// timingSurface exercises every true positive: gauges, histogram
// observations, tracing, and registry wiring.
func timingSurface(r *obs.Registry, h *obs.Histogram, tr *obs.Tracer) {
	_ = obs.NewRegistry()           // want `obs.NewRegistry is outside the count-only observability surface`
	g := r.Gauge("depth", "", "")   // want `obs.Gauge is outside the count-only observability surface`
	g.Set(4)                        // want `obs.Set is outside the count-only observability surface`
	r.Histogram("lat", "", "", nil) // want `obs.Histogram is outside the count-only observability surface`
	h.Observe(0.5)                  // want `obs.Observe is outside the count-only observability surface`
	h.ObserveDuration(100)          // want `obs.ObserveDuration is outside the count-only observability surface`
	_ = obs.NewTracer(16)           // want `obs.NewTracer is outside the count-only observability surface`
	t := tr.Start("route", "id")    // want `obs.Start is outside the count-only observability surface`
	sp := t.StartSpan("phase")      // want `obs.StartSpan is outside the count-only observability surface`
	sp.End()                        // want `obs.End is outside the count-only observability surface`
}

// allowed shows the escape hatch.
func allowed(h *obs.Histogram) {
	h.Observe(1) //lint:allow obsbound fixture: test-only bridge, value is a count not a time
}
