// Package obs is an obsbound fixture standing in for the real
// observability package: its import path ends in internal/obs, which is how
// the analyzer identifies it.
package obs

// Counter mirrors the count-only instrument.
type Counter struct{ n uint64 }

func (c *Counter) Inc()          { c.n++ }
func (c *Counter) Add(n uint64)  { c.n += n }
func (c *Counter) Value() uint64 { return c.n }

// Gauge mirrors the instantaneous-value instrument.
type Gauge struct{ v float64 }

func (g *Gauge) Set(v float64) { g.v = v }

// Histogram mirrors the timing instrument.
type Histogram struct{}

func (h *Histogram) Observe(v float64)        {}
func (h *Histogram) ObserveDuration(ns int64) {}

// Registry mirrors the metric registry.
type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name, labels, help string) *Counter                  { return &Counter{} }
func (r *Registry) CounterFunc(name, labels, help string, fn func() uint64)     {}
func (r *Registry) Gauge(name, labels, help string) *Gauge                      { return &Gauge{} }
func (r *Registry) Histogram(name, labels, help string, b []float64) *Histogram { return &Histogram{} }

// Tracer mirrors the request tracer.
type Tracer struct{}

func NewTracer(ring int) *Tracer                { return &Tracer{} }
func (t *Tracer) Start(route, id string) *Trace { return nil }

// Trace mirrors one sampled request trace.
type Trace struct{}

func (t *Trace) StartSpan(name string) Span { return Span{} }

// Span mirrors one trace span.
type Span struct{}

func (s Span) End() {}
