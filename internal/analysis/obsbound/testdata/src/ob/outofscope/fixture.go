// Package outofscope proves obsbound's scoping: the serving layer may use
// the whole observability surface.
package outofscope

import "ob/internal/obs"

func wire(tr *obs.Tracer) {
	r := obs.NewRegistry()
	h := r.Histogram("lat", "", "", nil)
	h.Observe(0.5)
	h.ObserveDuration(100)
	g := r.Gauge("depth", "", "")
	g.Set(4)
	t := tr.Start("route", "id")
	sp := t.StartSpan("phase")
	sp.End()
}
