// Package load type-checks Go packages for the hydra-vet analyzers using
// only the standard library: package metadata comes from `go list -deps
// -json` (or, for test fixtures, from scanning a source tree), and types
// come from go/types checking the actual sources. Dependencies are checked
// with IgnoreFuncBodies — analyzers only need their exported API shapes —
// while target packages are checked fully with a populated types.Info.
//
// Checking from source (rather than reading compiler export data) is what
// lets the whole pipeline run without golang.org/x/tools: the standard
// library's own sources under GOROOT type-check with the toolchain that
// ships them. CGO_ENABLED=0 is forced so every package resolves to its pure
// Go file set.
package load

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"hydra/internal/analysis"
)

// meta records where one package's sources live and how its imports resolve.
type meta struct {
	dir       string
	goFiles   []string
	importMap map[string]string // source import path -> resolved package path
	goVersion string
	full      bool // type-check bodies and build an analysis.Package
}

// Loader lazily type-checks packages by path.
type Loader struct {
	fset     *token.FileSet
	metas    map[string]*meta
	types    map[string]*types.Package
	full     map[string]*analysis.Package
	checking map[string]bool
	// roots, when non-empty, enables lazy source-tree resolution (antest
	// fixtures): a package path is looked up under each root in order,
	// then under GOROOT/src and GOROOT/src/vendor.
	roots []string
}

func newLoader() *Loader {
	return &Loader{
		fset:     token.NewFileSet(),
		metas:    map[string]*meta{},
		types:    map[string]*types.Package{},
		full:     map[string]*analysis.Package{},
		checking: map[string]bool{},
	}
}

// toolchainGoVersion returns the running toolchain's language version in the
// form go/types accepts, or "" when it cannot be determined (devel builds).
func toolchainGoVersion() string {
	v := runtime.Version()
	if strings.HasPrefix(v, "go1") {
		return v
	}
	return ""
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// GoList loads the packages matched by patterns (run in dir, e.g. "." and
// "./..."), type-checks them and their dependency closure, and returns the
// matched packages sorted by import path, ready for analysis.RunPackage.
func GoList(dir string, patterns []string) ([]*analysis.Package, error) {
	args := append([]string{"list", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, ee.Stderr)
		}
		return nil, fmt.Errorf("go list %s: %v", strings.Join(patterns, " "), err)
	}

	l := newLoader()
	toolVersion := toolchainGoVersion()
	var targets []string
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("decode go list output: %v", err)
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		goVersion := toolVersion
		if !p.Standard && p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
		l.metas[p.ImportPath] = &meta{
			dir:       p.Dir,
			goFiles:   p.GoFiles,
			importMap: p.ImportMap,
			goVersion: goVersion,
			full:      !p.DepOnly,
		}
		if !p.DepOnly {
			targets = append(targets, p.ImportPath)
		}
	}
	sort.Strings(targets)

	var pkgs []*analysis.Package
	for _, path := range targets {
		if _, err := l.ensure(path); err != nil {
			return nil, err
		}
		pkgs = append(pkgs, l.full[path])
	}
	return pkgs, nil
}

// SrcTree returns a loader that resolves package paths by scanning source
// directories: first each of roots (in order), then GOROOT/src and
// GOROOT/src/vendor. It backs the antest fixture runner, where fixture
// packages live under testdata/src/<importpath> in the analysistest layout.
func SrcTree(roots ...string) *Loader {
	l := newLoader()
	l.roots = roots
	return l
}

// LoadFull type-checks the package at path (resolved against the loader's
// roots) with function bodies and full type information.
func (l *Loader) LoadFull(path string) (*analysis.Package, error) {
	if m, err := l.resolve(path); err != nil {
		return nil, err
	} else {
		m.full = true
	}
	// The package may already have been checked in dependency mode (bodies
	// ignored, no info) because an earlier fixture imported it; drop that
	// result so ensure re-checks it fully. Packages that imported the old
	// *types.Package keep it — both describe the same sources.
	if l.full[path] == nil {
		delete(l.types, path)
	}
	if _, err := l.ensure(path); err != nil {
		return nil, err
	}
	return l.full[path], nil
}

// resolve finds or creates the meta for path in source-tree mode.
func (l *Loader) resolve(path string) (*meta, error) {
	if m, ok := l.metas[path]; ok {
		return m, nil
	}
	if len(l.roots) == 0 {
		return nil, fmt.Errorf("package %s not in go list output", path)
	}
	ctx := build.Default
	ctx.CgoEnabled = false
	roots := append(append([]string{}, l.roots...),
		filepath.Join(ctx.GOROOT, "src"), filepath.Join(ctx.GOROOT, "src", "vendor"))
	for _, root := range roots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		bp, err := ctx.ImportDir(dir, 0)
		if err != nil {
			return nil, fmt.Errorf("resolve %s in %s: %v", path, dir, err)
		}
		m := &meta{dir: dir, goFiles: bp.GoFiles, goVersion: toolchainGoVersion()}
		l.metas[path] = m
		return m, nil
	}
	return nil, fmt.Errorf("package %s not found under %s", path, strings.Join(roots, ", "))
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ensure type-checks path (once), recursing through its imports.
func (l *Loader) ensure(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tp, ok := l.types[path]; ok {
		return tp, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	m, err := l.resolve(path)
	if err != nil {
		return nil, err
	}

	mode := parser.SkipObjectResolution
	if m.full {
		mode |= parser.ParseComments
	}
	var files []*ast.File
	for _, name := range m.goFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(m.dir, name), nil, mode)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}

	conf := types.Config{
		IgnoreFuncBodies: !m.full,
		GoVersion:        m.goVersion,
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if resolved, ok := m.importMap[imp]; ok {
				imp = resolved
			}
			return l.ensure(imp)
		}),
		Sizes: types.SizesFor("gc", build.Default.GOARCH),
	}
	var info *types.Info
	if m.full {
		info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
	}
	tp, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	l.types[path] = tp
	if m.full {
		l.full[path] = &analysis.Package{
			Path:  path,
			Fset:  l.fset,
			Files: files,
			Types: tp,
			Info:  info,
		}
	}
	return tp, nil
}
