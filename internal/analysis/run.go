package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// RunPackage runs every analyzer over one loaded package and returns the
// surviving findings sorted by position.
//
// Two filters apply centrally so every driver (standalone hydra-vet, the
// go vet -vettool unitchecker mode, and the antest fixture runner) behaves
// identically:
//
//   - findings positioned in _test.go files are dropped: the invariants
//     target production code, and tests legitimately iterate maps, read
//     wall clocks, and discard contract results while asserting on them;
//   - findings on a line carrying (or directly below) a matching
//     //lint:allow annotation are dropped.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	allows := collectAllows(pkg.Fset, pkg.Files)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		pass.report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if strings.HasSuffix(pos.Filename, "_test.go") {
				return
			}
			if allows.allowed(a.Name, pos) {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
