// Package antest runs hydra-vet analyzers over fixture packages in the
// golang.org/x/tools analysistest layout: fixtures live under
// <testdata>/src/<importpath>, and every line expecting a diagnostic carries
// a trailing comment of the form
//
//	// want `regexp`
//
// (one backquoted regexp per expected diagnostic on that line). Lines with
// no want comment must produce no diagnostic — so fixtures prove both the
// true positives and the tricky negatives, and //lint:allow annotations in
// fixtures prove the escape hatch actually suppresses.
package antest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"hydra/internal/analysis"
	"hydra/internal/analysis/load"
)

var (
	wantRE  = regexp.MustCompile("// want (`[^`]*`(?: `[^`]*`)*)")
	quoteRE = regexp.MustCompile("`[^`]*`")
)

// Run loads each fixture package (resolved under testdata/src) with full
// type information, runs the analyzer, and compares diagnostics against the
// fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := load.SrcTree(filepath.Join(testdata, "src"))
	for _, path := range pkgPaths {
		pkg, err := loader.LoadFull(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, path, err)
		}
		check(t, pkg, findings)
	}
}

// wantKey locates one expectation.
type wantKey struct {
	file string
	line int
}

func check(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	// Collect want expectations from comments.
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, q := range quoteRE.FindAllString(m[1], -1) {
					expr := strings.Trim(q, "`")
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", position(pos), expr, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}

	// Match findings to wants.
	for _, f := range findings {
		key := wantKey{f.Pos.Filename, f.Pos.Line}
		matched := -1
		for i, re := range wants[key] {
			if re.MatchString(f.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s: %s", position(f.Pos), f.Analyzer, f.Message)
			continue
		}
		wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", relPath(key.file), key.line, re)
		}
	}
}

func position(pos token.Position) string {
	return fmt.Sprintf("%s:%d", relPath(pos.Filename), pos.Line)
}

// relPath trims the testdata prefix for readable failure messages.
func relPath(file string) string {
	if i := strings.Index(file, "testdata"); i >= 0 {
		return file[i:]
	}
	return file
}
