// Package syspersist is the walorder fixture: its path ends in
// internal/syspersist, so every online.System mutation needs a WAL append
// lexically earlier in the same function.
package syspersist

import "wal/internal/online"

type store struct {
	sys *online.System
}

func (s *store) appendLocked(op string) error { return nil }

// good follows write-before-apply.
func (s *store) good(id string) error {
	if err := s.appendLocked("add-rt " + id); err != nil {
		return err
	}
	s.sys.AddRT(id)
	return nil
}

// missingAppend applies with no append anywhere in the function.
func (s *store) missingAppend(id string) {
	s.sys.AddRT(id) // want `no WAL append earlier in this function`
}

// applyThenAppend has the append, but after the apply: a crash between the
// two loses the acknowledged op.
func (s *store) applyThenAppend(id string) error {
	s.sys.Remove(id) // want `no WAL append earlier in this function`
	return s.appendLocked("remove " + id)
}

// replay is the sanctioned apply-without-append path: the ops are already on
// the log.
func (s *store) replay(ops []string) {
	for _, id := range ops {
		//lint:allow walorder replaying ops already on the log
		s.sys.AddSecurity(id)
	}
}

// reader never mutates: no finding.
func (s *store) reader() int {
	return s.sys.Len()
}

// localRemove is a tricky negative: Remove on a type that is not
// online.System is outside the contract.
type ring struct{ items []string }

func (r *ring) Remove(id string) {}

func (s *store) localRemove(r *ring, id string) {
	r.Remove(id)
}
