// Package online is a walorder fixture standing in for the real
// internal/online: a System whose mutating methods fall under the
// write-before-apply contract.
package online

type System struct {
	n int
}

func (s *System) AddRT(id string)       { s.n++ }
func (s *System) AddSecurity(id string) { s.n++ }
func (s *System) Remove(id string)      { s.n-- }
func (s *System) Reallocate(id string)  {}
func (s *System) Len() int              { return s.n }
