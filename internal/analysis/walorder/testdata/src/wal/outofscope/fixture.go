// Package outofscope proves walorder's scoping: mutations outside
// internal/syspersist are some other layer's business.
package outofscope

import "wal/internal/online"

func mutate(sys *online.System, id string) {
	sys.AddRT(id)
	sys.Remove(id)
}
