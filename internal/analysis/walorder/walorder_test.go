package walorder_test

import (
	"testing"

	"hydra/internal/analysis/antest"
	"hydra/internal/analysis/walorder"
)

func TestWalorder(t *testing.T) {
	antest.Run(t, "testdata", walorder.Analyzer,
		"wal/internal/syspersist",
		"wal/outofscope",
	)
}
