// Package walorder implements the hydra-vet analyzer enforcing
// write-ahead-log ordering in internal/syspersist.
//
// The durability contract is write-before-apply: every mutation of a hosted
// online.System (AddRT, AddSecurity, Remove, Reallocate) must append its op
// record to the WAL before the op is applied in memory, so an acknowledged
// decision can never be lost to a crash and replay reconstructs state
// bit-identically. A new code path that applies first — or forgets the
// append entirely — silently breaks crash recovery in a way no unit test
// notices until a kill/recover property test happens to cross it.
//
// walorder approximates the contract lexically: inside internal/syspersist,
// a call to a mutating *online.System method must be preceded, earlier in
// the same function, by a WAL append call (appendLocked). Replay and
// recovery paths intentionally apply ops that are already on the log; they
// carry //lint:allow walorder annotations saying so.
package walorder

import (
	"go/ast"

	"hydra/internal/analysis"
)

// Scope is the path suffix of the package under the WAL contract.
const Scope = "internal/syspersist"

// MutatingMethods are the *online.System methods that mutate committed
// state and therefore require a prior WAL append.
var MutatingMethods = map[string]bool{
	"AddRT":       true,
	"AddSecurity": true,
	"Remove":      true,
	"Reallocate":  true,
}

// AppendFuncs are the function/method names recognized as performing the
// WAL append.
var AppendFuncs = map[string]bool{"appendLocked": true}

// Analyzer is the walorder check.
var Analyzer = &analysis.Analyzer{
	Name: "walorder",
	Doc: `require a WAL append before applying any online.System mutation in internal/syspersist

Durability means write-before-apply: AddRT/AddSecurity/Remove/Reallocate on
a hosted system must be reachable only after the op record was appended to
events.jsonl (appendLocked), or a crash loses an acknowledged decision.
Replay paths that apply already-logged ops annotate with //lint:allow
walorder. The check is a lexical approximation: the append must appear
earlier in the same function body than the apply.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathHasSuffix(pass.Path(), Scope) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			appended := false
			// ast.Inspect visits children in source order, so within one
			// function body a call is visited after every call that
			// lexically precedes it — the approximation documented above.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.Callee(pass.Info, call)
				if fn == nil {
					return true
				}
				if AppendFuncs[fn.Name()] {
					appended = true
					return true
				}
				if MutatingMethods[fn.Name()] && analysis.IsMethodOf(fn, "internal/online", "System") && !appended {
					pass.Reportf(call.Pos(), "%s applies a system mutation with no WAL append earlier in this function: write-before-apply is the durability contract (append the op record first, or //lint:allow walorder on replay paths)", fn.Name())
				}
				return true
			})
		}
	}
	return nil
}
