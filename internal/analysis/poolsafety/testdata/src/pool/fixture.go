// Package pool is a poolsafety fixture: pooled values escaping past Put,
// JSON decoded into pooled structs, and the sanctioned idioms that must stay
// silent.
package pool

import (
	"bytes"
	"encoding/json"
	"sync"
)

type request struct {
	Tasks []string
}

var reqPool = sync.Pool{New: func() any { return new(request) }}

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// escapeDeferred returns a pooled object that a deferred Put releases: the
// caller and a future Get alias the same memory.
func escapeDeferred() *request {
	req := reqPool.Get().(*request)
	defer reqPool.Put(req)
	return req // want `escapes past its release`
}

// escapeStraightLine Puts and then returns in the same statement list.
func escapeStraightLine() *request {
	req := reqPool.Get().(*request)
	req.Tasks = nil
	reqPool.Put(req)
	return req // want `caller and a future Get now share the referent`
}

// decodeIntoPooled unmarshal-targets a pooled struct: omitted fields inherit
// stale slice elements from the previous user.
func decodeIntoPooled(data []byte) error {
	req := reqPool.Get().(*request)
	defer reqPool.Put(req)
	if err := json.Unmarshal(data, req); err != nil { // want `JSON-decoding into pooled req`
		return err
	}
	return nil
}

// decoderIntoPooled is the streaming variant of the same bug.
func decoderIntoPooled(dec *json.Decoder) error {
	req := reqPool.Get().(*request)
	defer reqPool.Put(req)
	return dec.Decode(req) // want `JSON-decoding into pooled req`
}

// allowedEscape shows the escape hatch on a finding line.
func allowedEscape() *request {
	req := reqPool.Get().(*request)
	defer reqPool.Put(req)
	return req //lint:allow poolsafety fixture: caller contract guarantees copy-before-release
}

// errorPathPut is the sanctioned idiom: Put on the failure branch, return on
// the success path. The Put and the return live in different statement
// lists, so nothing escapes past a release.
func errorPathPut(data []byte) (*bytes.Buffer, error) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.Write(data); err != nil {
		bufPool.Put(buf)
		return nil, err
	}
	return buf, nil
}

// scratchBuffer is the pooled-scratch idiom: the pooled buffer never escapes
// and the decode target is a fresh stack value.
func scratchBuffer(data []byte) (request, error) {
	buf := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(buf)
	buf.Reset()
	buf.Write(data)
	var req request
	err := json.Unmarshal(buf.Bytes(), &req)
	return req, err
}

// acquire is half of an acquire/release helper pair: Get without a Put in
// the same function is the release-elsewhere contract, not a finding.
func acquire() *request {
	return reqPool.Get().(*request)
}

// release is the other half.
func release(req *request) {
	req.Tasks = req.Tasks[:0]
	reqPool.Put(req)
}
