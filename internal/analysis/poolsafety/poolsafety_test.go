package poolsafety_test

import (
	"testing"

	"hydra/internal/analysis/antest"
	"hydra/internal/analysis/poolsafety"
)

func TestPoolsafety(t *testing.T) {
	antest.Run(t, "testdata", poolsafety.Analyzer, "pool")
}
