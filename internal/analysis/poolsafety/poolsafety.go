// Package poolsafety implements the hydra-vet analyzer guarding sync.Pool
// use.
//
// Two bug classes have bitten (or been deliberately engineered around) in
// this repo's pooled hot paths:
//
//   - returning a pooled object to the caller while also returning it to the
//     pool in the same function: the referent escapes past its Put, so a
//     future Get hands two goroutines the same backing memory;
//   - decoding JSON into a pooled struct: encoding/json reuses the backing
//     arrays of existing slices without zeroing the tail, so a request that
//     omits a field silently inherits stale elements from whatever request
//     used the struct last. The service layer deliberately pools only
//     decode *buffers*, never request structs, for exactly this reason.
//
// poolsafety flags both patterns wherever a function both acquires from a
// sync.Pool and releases to it. The sanctioned idioms — acquire/release
// helper pairs where Get and Put live in different functions, and pooled
// bytes.Buffer scratch — are untouched.
package poolsafety

import (
	"go/ast"
	"go/types"

	"hydra/internal/analysis"
)

// Analyzer is the poolsafety check.
var Analyzer = &analysis.Analyzer{
	Name: "poolsafety",
	Doc: `forbid pooled values escaping past Put and JSON decoding into pooled structs

Flags (1) returning a sync.Pool Get result from a function that also Puts it
(deferred, or earlier in the same block) — the referent escapes past its
release and a future Get aliases live memory; (2) json.Unmarshal or
(*json.Decoder).Decode into a value obtained from a sync.Pool — encoding/json
reuses slice backing arrays without zeroing, leaking stale elements into
requests that omit fields. Pool scratch buffers, not decode targets.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// poolCall returns the called method's name ("Get"/"Put") when call invokes
// a method on sync.Pool, else "".
func poolCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := analysis.Callee(pass.Info, call)
	if analysis.IsMethodOf(fn, "sync", "Pool") {
		return fn.Name()
	}
	return ""
}

// baseIdentObj unwraps parens, unary &, type assertions and slicing to the
// underlying identifier's object, or nil.
func baseIdentObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op.String() != "&" {
				return nil
			}
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			return pass.Info.Uses[x]
		default:
			return nil
		}
	}
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Pass 1: objects assigned from pool.Get() (optionally type-asserted).
	pooled := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			e := ast.Unparen(rhs)
			if ta, ok := e.(*ast.TypeAssertExpr); ok {
				e = ast.Unparen(ta.X)
			}
			call, ok := e.(*ast.CallExpr)
			if !ok || poolCall(pass, call) != "Get" {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if obj := objOf(pass, id); obj != nil {
				pooled[obj] = true
			}
		}
		return true
	})
	if len(pooled) == 0 {
		return
	}

	// Pass 2a: deferred Puts cover every return in the function.
	deferred := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if poolCall(pass, ds.Call) == "Put" && len(ds.Call.Args) == 1 {
			if obj := baseIdentObj(pass, ds.Call.Args[0]); obj != nil && pooled[obj] {
				deferred[obj] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkDecode(pass, n, pooled)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if obj := baseIdentObj(pass, res); obj != nil && deferred[obj] {
					pass.Reportf(res.Pos(), "pooled %s is returned to the caller but a deferred Put releases it to the pool: the referent escapes past its release and a future Get will alias it", obj.Name())
				}
			}
		case *ast.BlockStmt:
			checkPutThenReturn(pass, n.List, pooled)
		case *ast.CaseClause:
			checkPutThenReturn(pass, n.Body, pooled)
		case *ast.CommClause:
			checkPutThenReturn(pass, n.Body, pooled)
		}
		return true
	})
}

// checkPutThenReturn flags a return of a pooled object appearing after a
// non-deferred Put of it in the same statement list (straight-line escape
// past release). Puts on one branch with the return on another — the
// release-on-error-path idiom — are in different lists and not flagged.
func checkPutThenReturn(pass *analysis.Pass, stmts []ast.Stmt, pooled map[types.Object]bool) {
	put := map[types.Object]bool{}
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && poolCall(pass, call) == "Put" && len(call.Args) == 1 {
				if obj := baseIdentObj(pass, call.Args[0]); obj != nil && pooled[obj] {
					put[obj] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if obj := baseIdentObj(pass, res); obj != nil && put[obj] {
					pass.Reportf(res.Pos(), "pooled %s is returned after being Put back to the pool: the caller and a future Get now share the referent", obj.Name())
				}
			}
		}
	}
}

// checkDecode flags json.Unmarshal / (*json.Decoder).Decode into a pooled
// object.
func checkDecode(pass *analysis.Pass, call *ast.CallExpr, pooled map[types.Object]bool) {
	fn := analysis.Callee(pass.Info, call)
	var target ast.Expr
	switch {
	case analysis.IsPkgFunc(fn, "encoding/json", "Unmarshal") && len(call.Args) == 2:
		target = call.Args[1]
	case analysis.IsMethodOf(fn, "encoding/json", "Decoder") && fn.Name() == "Decode" && len(call.Args) == 1:
		target = call.Args[0]
	default:
		return
	}
	if obj := baseIdentObj(pass, target); obj != nil && pooled[obj] {
		pass.Reportf(target.Pos(), "JSON-decoding into pooled %s: encoding/json reuses slice backing arrays without zeroing, so omitted fields inherit stale elements from the previous user — decode into a fresh value and pool buffers instead", obj.Name())
	}
}

// objOf resolves an identifier in either defining or using position.
func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}
