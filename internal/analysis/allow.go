package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression comment:
//
//	//lint:allow detpath timing fields are machine-relative by design
//	//lint:allow detpath,rngstream reason covering both analyzers
//
// The annotation suppresses the named analyzers' findings on the same line
// and on the line immediately below it (so it works both trailing on the
// flagged statement and as a standalone comment line above it). A reason is
// conventionally required — annotations in this repo always carry one — but
// the suppression itself keys only on the analyzer names, so a missing
// reason never silently re-arms a finding.
const allowPrefix = "lint:allow"

// allowSet maps file name -> line -> analyzer names allowed there.
type allowSet map[string]map[int]map[string]bool

// collectAllows scans every comment in files for lint:allow annotations.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if lines[line] == nil {
							lines[line] = map[string]bool{}
						}
						lines[line][name] = true
					}
				}
			}
		}
	}
	return set
}

// allowed reports whether a finding by analyzer at pos is suppressed.
func (s allowSet) allowed(analyzer string, pos token.Position) bool {
	return s[pos.Filename][pos.Line][analyzer]
}
