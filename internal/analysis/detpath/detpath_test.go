package detpath_test

import (
	"testing"

	"hydra/internal/analysis/antest"
	"hydra/internal/analysis/detpath"
)

func TestDetpath(t *testing.T) {
	antest.Run(t, "testdata", detpath.Analyzer,
		"det/internal/engine",
		"det/outofscope",
	)
}
