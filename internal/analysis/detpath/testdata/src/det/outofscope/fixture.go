// Package outofscope proves detpath's scoping: this path matches no
// deterministic-result package, so nothing here is flagged.
package outofscope

import (
	"math/rand"
	"time"
)

func clocky(m map[string]int) int {
	t := time.Now()
	_ = time.Since(t)
	n := rand.Intn(10)
	for range m {
		n++
	}
	return n
}
