// Package engine is a detpath fixture: its import path ends in
// internal/engine, so it is in the deterministic-result scope.
package engine

import (
	"math/rand"
	"sort"
	"time"
)

// bad exercises every true positive.
func bad(m map[string]int) int {
	t := time.Now()                    // want `wall-clock read time.Now`
	_ = time.Since(t)                  // want `wall-clock read time.Since`
	n := rand.Intn(10)                 // want `shared global math/rand stream`
	rand.Shuffle(n, func(a, b int) {}) // want `shared global math/rand stream`
	total := 0
	for k := range m { // want `map iteration order is nondeterministic`
		total += len(k)
	}
	return total
}

// allowedTrailing shows the trailing-comment escape hatch.
func allowedTrailing() time.Time {
	return time.Now() //lint:allow detpath fixture: feeds a machine-relative timing field
}

// allowedAbove shows the standalone-comment-above escape hatch.
func allowedAbove(m map[string]int) {
	//lint:allow detpath fixture: pure commutative sum, order-insensitive
	for _, v := range m {
		_ = v
	}
}

// negatives: instance-method draws, constructors (rngstream's business, not
// detpath's), slice ranges, and sorted-key iteration patterns stay silent.
func negatives(r *rand.Rand, m map[string]int) []string {
	_ = r.Intn(10)           // method on an owned generator: fine
	src := rand.NewSource(1) // constructor: detpath leaves this to rngstream
	_ = rand.New(src)        // constructor: detpath leaves this to rngstream
	keys := make([]string, 0, len(m))
	//lint:allow detpath fixture: keys collected then sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys { // slice range: fine
		_ = k
	}
	var d time.Duration
	_ = d.String() // time package use that is not a wall-clock read: fine
	return keys
}
