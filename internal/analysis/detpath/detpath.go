// Package detpath implements the hydra-vet analyzer that keeps
// nondeterminism out of deterministic-result packages.
//
// The reproduction's core promise is byte-identical replay: the same
// (seed, results_version, config) must produce the same result document at
// any worker count, on any machine, forever. Three bug classes quietly break
// that promise and are only caught today when a frozen fixture diff fires in
// CI:
//
//   - wall-clock reads (time.Now / time.Since) leaking into result fields;
//   - draws from the shared global math/rand stream, whose state depends on
//     whatever else the process has drawn;
//   - iteration over a map, whose order differs run to run.
//
// detpath flags all three inside the packages that build deterministic
// results. Wall-clock reads that feed the explicitly machine-relative
// `timing` section of a result document (the points/timing split) are the
// sanctioned exception and carry //lint:allow detpath annotations; map
// ranges whose bodies are order-insensitive (pure counting/summing) may be
// annotated likewise, but sorting the keys first is preferred.
package detpath

import (
	"go/ast"
	"go/types"

	"hydra/internal/analysis"
)

// Packages lists the path suffixes of the deterministic-result packages in
// scope. A package is in scope when its import path equals an entry or ends
// with "/"+entry (so fixture packages can opt in by path shape).
var Packages = []string{
	"internal/engine",
	"internal/experiments",
	"internal/rts",
	"internal/stats",
	"internal/taskgen",
	"internal/jobs",
}

// Analyzer is the detpath check.
var Analyzer = &analysis.Analyzer{
	Name: "detpath",
	Doc: `forbid nondeterminism sources in deterministic-result packages

Flags time.Now/time.Since calls, global math/rand draws, and map iteration
inside the packages whose output must replay byte-identically (internal/
engine, experiments, rts, stats, taskgen, jobs). Use the engine-provided
per-cell RNG or stats.VersionedRNG for randomness, sort map keys before
ranging, and keep wall-clock reads behind //lint:allow detpath annotations
that name the machine-relative field they feed.`,
	Run: run,
}

// globalRandExempt names the math/rand package-level functions that do not
// draw from the shared global source: constructors, which rngstream (not
// detpath) polices.
var globalRandExempt = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, p := range Packages {
		if analysis.PathHasSuffix(pass.Path(), p) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := analysis.Callee(pass.Info, n)
				if fn == nil {
					return true
				}
				if analysis.IsPkgFunc(fn, "time", "Now") || analysis.IsPkgFunc(fn, "time", "Since") {
					pass.Reportf(n.Pos(), "wall-clock read time.%s in deterministic-result package %s: results must replay byte-identically; keep wall-clock data in the machine-relative timing section and annotate the read", fn.Name(), pass.Path())
					return true
				}
				if fn.Pkg() != nil && fn.Pkg().Path() == "math/rand" && !globalRandExempt[fn.Name()] {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
						pass.Reportf(n.Pos(), "rand.%s draws from the shared global math/rand stream: derive a generator with stats.VersionedRNG/stats.Split (or use the engine's per-cell RNG) so the draw sequence is owned by a (seed, stream) pair", fn.Name())
					}
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "map iteration order is nondeterministic and this package builds deterministic results: collect and sort the keys first (or //lint:allow detpath with the reason the body is order-insensitive)")
					}
				}
			}
			return true
		})
	}
	return nil
}
