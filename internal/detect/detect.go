// Package detect implements the intrusion-detection latency measurement of
// the paper's case study (Fig. 1): synthetic attacks are injected at random
// instants of a simulated schedule, and the detection time is the latency
// until the monitoring security task next completes a full scan.
//
// Following the paper, detection capability is assumed perfect (no false
// positives/negatives); the measurement isolates the *scheduling* component
// of detection latency. A job can only detect an attack if its execution
// started at or after the attack instant — a scan that began earlier may
// have already passed the corrupted state, so the measurement is the
// worst-case (conservative) detection time.
package detect

import (
	"fmt"
	"math/rand"

	"hydra/internal/sim"
)

// Attack is one injected intrusion: it corrupts the surface monitored by a
// specific security task at a specific time.
type Attack struct {
	Task int      // index of the detecting security task in the trace's specs
	At   sim.Time // injection instant
}

// Detection pairs an attack with its measured outcome.
type Detection struct {
	Attack   Attack
	Detected bool
	Latency  sim.Time // completion of the detecting job minus Attack.At
}

// DetectionTime returns the worst-case detection latency of an attack on
// one task given the task's jobs (release order): the completion time of the
// first job whose execution started at or after the attack instant. ok is
// false when no such job completes within the trace (censored observation).
// Unstarted jobs (Start < 0) are skipped.
func DetectionTime(jobs []sim.Job, at sim.Time) (sim.Time, bool) {
	for _, j := range jobs {
		if j.Start < 0 || j.Start < at {
			continue
		}
		if j.Finish >= 0 {
			return j.Finish - at, true
		}
	}
	return 0, false
}

// Campaign measures a batch of attacks against a system trace. taskCore and
// taskIndex map each security task (by campaign task id) to its core and
// in-core spec index.
type Campaign struct {
	Trace     *sim.SystemTrace
	TaskCore  []int // campaign task id -> core
	TaskIndex []int // campaign task id -> spec index within that core
}

// NewCampaign validates and builds a campaign over a simulated system.
func NewCampaign(trace *sim.SystemTrace, taskCore, taskIndex []int) (*Campaign, error) {
	if len(taskCore) != len(taskIndex) {
		return nil, fmt.Errorf("detect: taskCore and taskIndex lengths differ: %d vs %d", len(taskCore), len(taskIndex))
	}
	for i := range taskCore {
		c := taskCore[i]
		if c < 0 || c >= len(trace.Cores) {
			return nil, fmt.Errorf("detect: task %d mapped to invalid core %d", i, c)
		}
		if ti := taskIndex[i]; ti < 0 || ti >= len(trace.Cores[c].Specs) {
			return nil, fmt.Errorf("detect: task %d mapped to invalid spec index %d on core %d", i, ti, c)
		}
	}
	return &Campaign{Trace: trace, TaskCore: taskCore, TaskIndex: taskIndex}, nil
}

// Run measures every attack. Attacks on unknown tasks return an error.
func (c *Campaign) Run(attacks []Attack) ([]Detection, error) {
	// Pre-extract per-task job streams once.
	jobs := make([][]sim.Job, len(c.TaskCore))
	for i := range c.TaskCore {
		jobs[i] = c.Trace.Cores[c.TaskCore[i]].JobsOf(c.TaskIndex[i])
	}
	out := make([]Detection, len(attacks))
	for k, a := range attacks {
		if a.Task < 0 || a.Task >= len(jobs) {
			return nil, fmt.Errorf("detect: attack %d targets unknown task %d", k, a.Task)
		}
		lat, ok := DetectionTime(jobs[a.Task], a.At)
		out[k] = Detection{Attack: a, Detected: ok, Latency: lat}
	}
	return out, nil
}

// Latencies filters the detected attacks and returns their latencies.
func Latencies(ds []Detection) []float64 {
	out := make([]float64, 0, len(ds))
	for _, d := range ds {
		if d.Detected {
			out = append(out, d.Latency)
		}
	}
	return out
}

// SampleAttacks draws n attacks uniformly over tasks [0, numTasks) and over
// time [0, horizon*margin], where margin < 1 keeps injections away from the
// end of the window so detections are rarely censored (the paper triggers
// attacks "during any random time of execution" of a 500 s window).
func SampleAttacks(rng *rand.Rand, n, numTasks int, horizon sim.Time, margin float64) []Attack {
	if margin <= 0 || margin > 1 {
		margin = 0.8
	}
	attacks := make([]Attack, n)
	for i := range attacks {
		attacks[i] = Attack{
			Task: rng.Intn(numTasks),
			At:   rng.Float64() * horizon * margin,
		}
	}
	return attacks
}

// WorstCaseDetection returns the supremum of the detection latency over all
// attack instants within the trace for one task's job stream: an adversary
// who knows the schedule strikes immediately after a scan begins, so the
// worst case over attacks in [start_k, start_{k+1}) is achieved just after
// start_k and detected at finish_{k+1}:
//
//	WCD = max_k (finish_{k+1} - start_k).
//
// ok is false when fewer than two finished jobs exist (no interior worst
// case is measurable). Unfinished or unstarted jobs truncate the scan.
func WorstCaseDetection(jobs []sim.Job) (sim.Time, bool) {
	var started []sim.Job
	for _, j := range jobs {
		if j.Start >= 0 && j.Finish >= 0 {
			started = append(started, j)
		}
	}
	if len(started) < 2 {
		return 0, false
	}
	worst := sim.Time(0)
	for k := 0; k+1 < len(started); k++ {
		if d := started[k+1].Finish - started[k].Start; d > worst {
			worst = d
		}
	}
	return worst, true
}

// ExpectedDetection estimates the mean detection latency for an attacker
// striking uniformly at random in time, by integrating the detection-time
// profile over the span between the first and last job start. For attack
// time t in [start_k, start_{k+1}), the latency is finish_{k+1} - t, so each
// segment contributes gap * (finish_{k+1} - midpoint).
func ExpectedDetection(jobs []sim.Job) (sim.Time, bool) {
	var started []sim.Job
	for _, j := range jobs {
		if j.Start >= 0 && j.Finish >= 0 {
			started = append(started, j)
		}
	}
	if len(started) < 2 {
		return 0, false
	}
	var area, span sim.Time
	for k := 0; k+1 < len(started); k++ {
		gap := started[k+1].Start - started[k].Start
		if gap <= 0 {
			continue
		}
		mid := started[k].Start + gap/2
		area += gap * (started[k+1].Finish - mid)
		span += gap
	}
	if span <= 0 {
		return 0, false
	}
	return area / span, true
}
