package detect

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hydra/internal/sim"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(b)) }

func TestDetectionTimeBasic(t *testing.T) {
	jobs := []sim.Job{
		{Task: 0, Release: 0, Start: 0, Finish: 2},
		{Task: 0, Release: 10, Start: 10, Finish: 12},
		{Task: 0, Release: 20, Start: 21, Finish: 23},
	}
	// Attack at t=1: first job started at 0 < 1, so job 2 detects at 12.
	lat, ok := DetectionTime(jobs, 1)
	if !ok || !near(lat, 11, 1e-12) {
		t.Fatalf("lat=%v ok=%v, want 11 true", lat, ok)
	}
	// Attack exactly at a start instant is caught by that job.
	lat, ok = DetectionTime(jobs, 10)
	if !ok || !near(lat, 2, 1e-12) {
		t.Fatalf("lat=%v ok=%v, want 2 true", lat, ok)
	}
	// Attack after all starts: censored.
	if _, ok := DetectionTime(jobs, 25); ok {
		t.Fatal("attack after last start must be censored")
	}
	// Unfinished job cannot detect.
	jobs2 := []sim.Job{{Task: 0, Release: 0, Start: 5, Finish: -1}}
	if _, ok := DetectionTime(jobs2, 1); ok {
		t.Fatal("unfinished job must not detect")
	}
	// Unstarted jobs are skipped.
	jobs3 := []sim.Job{{Task: 0, Release: 0, Start: -1, Finish: -1}}
	if _, ok := DetectionTime(jobs3, 0); ok {
		t.Fatal("unstarted job must not detect")
	}
}

func simpleTrace(t *testing.T) *sim.SystemTrace {
	t.Helper()
	perCore := [][]sim.TaskSpec{
		{
			{Name: "rt", C: 2, T: 10, Prio: 0, Kind: sim.KindRT},
			{Name: "sec0", C: 1, T: 20, Prio: 10, Kind: sim.KindSecurity},
		},
		{
			{Name: "sec1", C: 1, T: 40, Prio: 10, Kind: sim.KindSecurity},
		},
	}
	st, err := sim.SimulateSystem(perCore, 400)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCampaignValidation(t *testing.T) {
	st := simpleTrace(t)
	if _, err := NewCampaign(st, []int{0}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := NewCampaign(st, []int{5}, []int{0}); err == nil {
		t.Fatal("invalid core must error")
	}
	if _, err := NewCampaign(st, []int{0}, []int{9}); err == nil {
		t.Fatal("invalid spec index must error")
	}
	c, err := NewCampaign(st, []int{0, 1}, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run([]Attack{{Task: 7, At: 0}}); err == nil {
		t.Fatal("unknown attack task must error")
	}
}

func TestCampaignRun(t *testing.T) {
	st := simpleTrace(t)
	c, err := NewCampaign(st, []int{0, 1}, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	attacks := []Attack{
		{Task: 0, At: 0},   // sec0 job at release 0 starts at 2 (after rt), finishes 3
		{Task: 1, At: 50},  // sec1 next start at 80, finishes 81
		{Task: 0, At: 395}, // near horizon: censored (no later start)
	}
	ds, err := c.Run(attacks)
	if err != nil {
		t.Fatal(err)
	}
	if !ds[0].Detected || !near(ds[0].Latency, 3, 1e-9) {
		t.Fatalf("attack 0: %+v", ds[0])
	}
	if !ds[1].Detected || !near(ds[1].Latency, 31, 1e-9) {
		t.Fatalf("attack 1: %+v", ds[1])
	}
	if ds[2].Detected {
		t.Fatalf("attack 2 should be censored: %+v", ds[2])
	}
	lats := Latencies(ds)
	if len(lats) != 2 {
		t.Fatalf("latencies = %v", lats)
	}
}

func TestSampleAttacks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	attacks := SampleAttacks(rng, 100, 3, 1000, 0.8)
	if len(attacks) != 100 {
		t.Fatalf("count = %d", len(attacks))
	}
	for _, a := range attacks {
		if a.Task < 0 || a.Task >= 3 {
			t.Fatalf("task out of range: %d", a.Task)
		}
		if a.At < 0 || a.At > 800 {
			t.Fatalf("time out of range: %v", a.At)
		}
	}
	// Bad margin falls back to 0.8.
	attacks = SampleAttacks(rng, 10, 1, 1000, -1)
	for _, a := range attacks {
		if a.At > 800 {
			t.Fatalf("fallback margin violated: %v", a.At)
		}
	}
}

// Property: detection latency is at least the WCET of the detecting task
// (a full scan must complete) and detection time decreases (weakly) when the
// monitoring period shrinks.
func TestLatencyLowerBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + 4*rng.Float64()
		period := 20 + 100*rng.Float64()
		specs := []sim.TaskSpec{{Name: "sec", C: c, T: period, Prio: 0, Kind: sim.KindSecurity}}
		tr, err := sim.SimulateCore(specs, 50*period)
		if err != nil {
			return false
		}
		jobs := tr.JobsOf(0)
		for trial := 0; trial < 20; trial++ {
			at := rng.Float64() * 40 * period
			lat, ok := DetectionTime(jobs, at)
			if !ok {
				continue
			}
			if lat < c-1e-9 {
				return false
			}
			// Upper bound for an otherwise idle core: period + C.
			if lat > period+c+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWorstCaseDetection(t *testing.T) {
	jobs := []sim.Job{
		{Start: 0, Finish: 2},
		{Start: 10, Finish: 12},
		{Start: 30, Finish: 33},
	}
	// Candidates: 12-0=12, 33-10=23 -> 23.
	wcd, ok := WorstCaseDetection(jobs)
	if !ok || wcd != 23 {
		t.Fatalf("wcd=%v ok=%v, want 23", wcd, ok)
	}
	// Fewer than two jobs: not measurable.
	if _, ok := WorstCaseDetection(jobs[:1]); ok {
		t.Fatal("single job must not measure")
	}
	// Unfinished jobs excluded.
	withBad := append(append([]sim.Job{}, jobs...), sim.Job{Start: 40, Finish: -1})
	wcd2, ok := WorstCaseDetection(withBad)
	if !ok || wcd2 != 23 {
		t.Fatalf("unfinished job changed WCD: %v", wcd2)
	}
}

func TestExpectedDetection(t *testing.T) {
	// Perfectly periodic: starts 0,10,20, each finishing 2 after start.
	jobs := []sim.Job{
		{Start: 0, Finish: 2},
		{Start: 10, Finish: 12},
		{Start: 20, Finish: 22},
	}
	// Segment [0,10): latency 12-t, mean 12-5 = 7. Segment [10,20): mean 7.
	e, ok := ExpectedDetection(jobs)
	if !ok || !near(e, 7, 1e-12) {
		t.Fatalf("expected=%v ok=%v, want 7", e, ok)
	}
	if _, ok := ExpectedDetection(jobs[:1]); ok {
		t.Fatal("single job must not measure")
	}
}

// Property: empirical attack sampling converges to the analytical
// ExpectedDetection, and no sample exceeds WorstCaseDetection.
func TestDetectionAnalyticsMatchSamplingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + 3*rng.Float64()
		period := 20 + 80*rng.Float64()
		specs := []sim.TaskSpec{
			{Name: "rt", C: 0.3 * period, T: period, Prio: 0},
			{Name: "sec", C: c, T: 4 * period, Prio: 10, Kind: sim.KindSecurity},
		}
		tr, err := sim.SimulateCore(specs, 200*period)
		if err != nil {
			return false
		}
		jobs := tr.JobsOf(1)
		wcd, ok1 := WorstCaseDetection(jobs)
		exp, ok2 := ExpectedDetection(jobs)
		if !ok1 || !ok2 {
			return false
		}
		// Sample attacks uniformly inside the measurable span, using only
		// jobs that actually started (the tail job released just before the
		// horizon may have Start = -1).
		var started []sim.Job
		for _, j := range jobs {
			if j.Start >= 0 && j.Finish >= 0 {
				started = append(started, j)
			}
		}
		if len(started) < 2 {
			return false
		}
		first, last := started[0].Start, started[len(started)-1].Start
		var sum float64
		n := 0
		for i := 0; i < 400; i++ {
			at := first + rng.Float64()*(last-first)
			lat, ok := DetectionTime(jobs, at)
			if !ok {
				continue
			}
			if lat > wcd+1e-9 {
				return false // sample exceeded the analytical worst case
			}
			sum += lat
			n++
		}
		if n < 100 {
			return false
		}
		mean := sum / float64(n)
		return mean <= exp*1.2+1 && mean >= exp*0.8-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
