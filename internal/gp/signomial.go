package gp

import (
	"fmt"
	"math"
)

// MaximizePosynomial maximizes the posynomial g over the model's feasible
// set. This is a signomial program (maximizing a posynomial is not a GP), so
// it is solved by monomial condensation — the classic sequential-GP scheme:
// at the current iterate x, g is replaced by its best local monomial
// under-approximation
//
//	g~(x) = prod_k (m_k(x)/w_k)^{w_k},  w_k = m_k(x̂)/g(x̂),
//
// (arithmetic–geometric mean inequality: g~(x) <= g(x) with equality at x̂),
// and the GP "minimize 1/g~" is solved; the process repeats until the true
// objective stops improving. The result converges to a KKT point of the
// signomial program and is monotone non-decreasing in g, so the returned
// point is never worse than the first feasible iterate.
//
// The model's own objective is ignored; constraints and bounds are honoured.
func (m *Model) MaximizePosynomial(g Posynomial, o *Options) (*Solution, error) {
	if err := g.validate(len(m.names)); err != nil {
		return nil, fmt.Errorf("gp: maximize objective: %w", err)
	}
	// Find an initial feasible point with a neutral (constant) objective.
	work := m.shallowClone()
	work.Minimize(Posynomial{Mon(1)})
	sol, err := work.Solve(o)
	if err != nil {
		return nil, err
	}
	if sol.Status == StatusInfeasible || sol.X == nil {
		return sol, nil
	}

	best := sol
	bestVal := g.Eval(sol.X)
	x := sol.X
	const maxRounds = 40
	totalIters := sol.Iterations
	for round := 0; round < maxRounds; round++ {
		mono, ok := condense(g, x)
		if !ok {
			break
		}
		work = m.shallowClone()
		// maximize g~  <=>  minimize g~^{-1} (a monomial, hence GP-valid).
		work.Minimize(Posynomial{mono.Pow(-1)})
		s, err := work.Solve(o)
		if err != nil {
			return nil, err
		}
		totalIters += s.Iterations
		if s.Status == StatusInfeasible || s.X == nil {
			break
		}
		v := g.Eval(s.X)
		if math.IsNaN(v) || v <= bestVal*(1+1e-9) {
			if v > bestVal {
				bestVal, best, x = v, s, s.X
			}
			break
		}
		bestVal, best, x = v, s, s.X
	}
	out := *best
	out.Iterations = totalIters
	out.Objective = bestVal
	return &out, nil
}

// condense returns the monomial condensation of g at the positive point x.
// It reports false if g or any weight is degenerate at x.
func condense(g Posynomial, x []float64) (Monomial, bool) {
	total := g.Eval(x)
	if !(total > 0) || math.IsInf(total, 0) {
		return Monomial{}, false
	}
	logC := 0.0
	exps := map[int]float64{}
	for _, mk := range g {
		w := mk.Eval(x) / total
		if !(w > 0) {
			continue // vanishing term contributes nothing
		}
		logC += w * (math.Log(mk.Coeff) - math.Log(w))
		for j, e := range mk.Exps {
			exps[j] += w * e
			if exps[j] == 0 {
				delete(exps, j)
			}
		}
	}
	c := math.Exp(logC)
	if !(c > 0) || math.IsInf(c, 0) {
		return Monomial{}, false
	}
	return Monomial{Coeff: c, Exps: exps}, true
}

// shallowClone copies the model structure (variables, bounds, constraints)
// but not the objective, so a new objective can be attached per solve.
func (m *Model) shallowClone() *Model {
	w := &Model{
		names: append([]string(nil), m.names...),
		lo:    append([]float64(nil), m.lo...),
		hi:    append([]float64(nil), m.hi...),
		tags:  append([]string(nil), m.tags...),
	}
	w.cons = make([]Posynomial, len(m.cons))
	copy(w.cons, m.cons)
	return w
}
