package gp

import (
	"fmt"
	"math"

	"hydra/internal/lal"
)

// Model is a geometric program under construction: positive variables, a
// posynomial objective to minimize, and posynomial inequality constraints
// fi(x) <= 1.
type Model struct {
	names []string
	lo    []float64 // lower bounds (>0) or 0 when absent
	hi    []float64 // upper bounds or +Inf when absent
	obj   Posynomial
	cons  []Posynomial
	tags  []string // one diagnostic tag per constraint
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// AddVar adds a positive variable with the given name and returns its handle.
func (m *Model) AddVar(name string) Var {
	m.names = append(m.names, name)
	m.lo = append(m.lo, 0)
	m.hi = append(m.hi, math.Inf(1))
	return Var{idx: len(m.names) - 1, model: m}
}

// AddBoundedVar adds a positive variable with bounds lo <= x <= hi
// (enforced as the monomial constraints lo*x^-1 <= 1 and x/hi <= 1).
// lo must be positive and <= hi.
func (m *Model) AddBoundedVar(name string, lo, hi float64) Var {
	v := m.AddVar(name)
	m.lo[v.idx] = lo
	m.hi[v.idx] = hi
	return v
}

// NumVars returns the number of variables in the model.
func (m *Model) NumVars() int { return len(m.names) }

// Minimize sets the posynomial objective.
func (m *Model) Minimize(p Posynomial) { m.obj = p }

// AddConstraint adds the posynomial constraint p <= 1. The tag is used in
// diagnostics and infeasibility reports.
func (m *Model) AddConstraint(p Posynomial, tag string) {
	m.cons = append(m.cons, p)
	m.tags = append(m.tags, tag)
}

// AddLessEq adds the constraint lhs <= rhs for a posynomial lhs and monomial
// rhs, by dividing through: lhs/rhs <= 1.
func (m *Model) AddLessEq(lhs Posynomial, rhs Monomial, tag string) {
	m.AddConstraint(lhs.MulMon(Mon(1).Div(rhs)), tag)
}

// compiled is the log-space representation of the program. Constraint i is
// Fi(t) = logsumexp(A_i t + b_i) <= 0; the objective is F0 in the same form.
type compiled struct {
	n    int // variables
	obj  logSumExp
	cons []logSumExp
	tags []string
}

// compile validates the model and lowers posynomials to log-space data,
// materialising variable bounds as extra monomial constraints.
func (m *Model) compile() (*compiled, error) {
	n := len(m.names)
	if n == 0 {
		return nil, fmt.Errorf("gp: model has no variables")
	}
	if m.obj == nil {
		return nil, fmt.Errorf("gp: model has no objective")
	}
	if err := m.obj.validate(n); err != nil {
		return nil, fmt.Errorf("gp: objective: %w", err)
	}
	c := &compiled{n: n, obj: newLogSumExp(m.obj, n)}
	for i, p := range m.cons {
		if err := p.validate(n); err != nil {
			return nil, fmt.Errorf("gp: constraint %q: %w", m.tags[i], err)
		}
		c.cons = append(c.cons, newLogSumExp(p, n))
		c.tags = append(c.tags, m.tags[i])
	}
	for j := 0; j < n; j++ {
		if m.lo[j] < 0 || math.IsNaN(m.lo[j]) {
			return nil, fmt.Errorf("gp: variable %s has invalid lower bound %g", m.names[j], m.lo[j])
		}
		if m.lo[j] > m.hi[j] {
			return nil, fmt.Errorf("gp: variable %s has empty bound interval [%g,%g]", m.names[j], m.lo[j], m.hi[j])
		}
		if m.lo[j] > 0 {
			p := Posynomial{Monomial{Coeff: m.lo[j], Exps: map[int]float64{j: -1}}}
			c.cons = append(c.cons, newLogSumExp(p, n))
			c.tags = append(c.tags, fmt.Sprintf("lb(%s)", m.names[j]))
		}
		if !math.IsInf(m.hi[j], 1) {
			if !(m.hi[j] > 0) {
				return nil, fmt.Errorf("gp: variable %s has non-positive upper bound %g", m.names[j], m.hi[j])
			}
			p := Posynomial{Monomial{Coeff: 1 / m.hi[j], Exps: map[int]float64{j: 1}}}
			c.cons = append(c.cons, newLogSumExp(p, n))
			c.tags = append(c.tags, fmt.Sprintf("ub(%s)", m.names[j]))
		}
	}
	return c, nil
}

// initialPoint returns a log-space starting point: the geometric midpoint of
// each variable's bound interval, or 1 (t=0) when unbounded.
func (m *Model) initialPoint() lal.Vector {
	t := lal.NewVector(len(m.names))
	for j := range t {
		lo, hi := m.lo[j], m.hi[j]
		switch {
		case lo > 0 && !math.IsInf(hi, 1):
			t[j] = 0.5 * (math.Log(lo) + math.Log(hi))
		case lo > 0:
			t[j] = math.Log(lo) + 1
		case !math.IsInf(hi, 1):
			t[j] = math.Log(hi) - 1
		default:
			t[j] = 0
		}
	}
	return t
}

// equalitySlack relaxes monomial equalities to a thin band so the feasible
// set keeps a strict interior — required by the log-barrier method. The
// returned ratio a/b is guaranteed within 1 ± 2*equalitySlack.
const equalitySlack = 1e-7

// AddEquality adds the monomial equality constraint a == b (valid in GP for
// monomials only), encoded as the near-tight inequality pair
// a/b <= 1+eps and b/a <= 1+eps with eps = equalitySlack, because an exact
// pair would leave the interior-point method no strictly feasible interior.
func (m *Model) AddEquality(a, b Monomial, tag string) {
	scale := 1 / (1 + equalitySlack)
	m.AddConstraint(Posynomial{a.Div(b).Scale(scale)}, tag+" (<=)")
	m.AddConstraint(Posynomial{b.Div(a).Scale(scale)}, tag+" (>=)")
}

// ConstraintValues evaluates every user constraint posynomial at x and
// returns (tag, value) pairs; a constraint is satisfied when value <= 1 and
// binding when value is within tol of 1. Variable-bound constraints are not
// included (inspect x against the bounds directly).
func (m *Model) ConstraintValues(x []float64) []ConstraintValue {
	out := make([]ConstraintValue, len(m.cons))
	for i, p := range m.cons {
		out[i] = ConstraintValue{Tag: m.tags[i], Value: p.Eval(x)}
	}
	return out
}

// ConstraintValue pairs a constraint tag with its left-hand-side value.
type ConstraintValue struct {
	Tag   string
	Value float64
}

// Binding reports whether the constraint is active within tol.
func (c ConstraintValue) Binding(tol float64) bool {
	return c.Value >= 1-tol && c.Value <= 1+tol
}
