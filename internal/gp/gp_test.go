package gp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOrDie(t *testing.T, m *Model, o *Options) *Solution {
	t.Helper()
	sol, err := m.Solve(o)
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("Solve status = %v (violation %g)", sol.Status, sol.Violation)
	}
	return sol
}

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(b)) }

func TestMonomialAlgebra(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x")
	y := m.AddVar("y")
	mono := Mon(2).MulVar(x, 1).MulVar(y, -2)
	pt := []float64{3, 2}
	if got := mono.Eval(pt); !near(got, 2*3/4.0, 1e-15) {
		t.Fatalf("Eval = %v", got)
	}
	sq := mono.Pow(2)
	if got := sq.Eval(pt); !near(got, 1.5*1.5, 1e-15) {
		t.Fatalf("Pow Eval = %v", got)
	}
	div := mono.Div(Mon(2).MulVar(x, 1))
	if got := div.Eval(pt); !near(got, 0.25, 1e-15) {
		t.Fatalf("Div Eval = %v", got)
	}
	if _, ok := div.Exps[x.Index()]; ok {
		t.Fatal("Div should cancel x exponent entirely")
	}
	prod := X(x).Mul(X(y))
	if got := prod.Eval(pt); got != 6 {
		t.Fatalf("Mul Eval = %v", got)
	}
	if X(x).String() == "" || Posy(Mon(1), X(y)).String() == "" {
		t.Fatal("String should be non-empty")
	}
	if Posynomial(nil).String() != "0" {
		t.Fatal("empty posynomial String")
	}
}

func TestPosynomialAlgebra(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x")
	p := Posy(Mon(1), X(x)).Add(Posy(Mon(3)))
	pt := []float64{2}
	if got := p.Eval(pt); got != 6 {
		t.Fatalf("Add Eval = %v", got)
	}
	p2 := p.MulMon(Mon(2))
	if got := p2.Eval(pt); got != 12 {
		t.Fatalf("MulMon Eval = %v", got)
	}
	p3 := p.Scale(0.5)
	if got := p3.Eval(pt); got != 3 {
		t.Fatalf("Scale Eval = %v", got)
	}
	p4 := p.AddMon(Mon(4))
	if got := p4.Eval(pt); got != 10 {
		t.Fatalf("AddMon Eval = %v", got)
	}
}

func TestValidateErrors(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x")
	cases := []struct {
		name string
		prep func(*Model)
	}{
		{"no objective", func(mm *Model) {}},
		{"empty posynomial", func(mm *Model) { mm.Minimize(Posynomial{}) }},
		{"negative coeff", func(mm *Model) { mm.Minimize(Posy(Mon(-1))) }},
		{"zero coeff", func(mm *Model) { mm.Minimize(Posy(Mon(0))) }},
		{"NaN exponent", func(mm *Model) {
			mono := X(x)
			mono.Exps[x.Index()] = math.NaN()
			mm.Minimize(Posynomial{mono})
		}},
		{"bad constraint", func(mm *Model) {
			mm.Minimize(Posy(X(x)))
			mm.AddConstraint(Posy(Mon(-2)), "bad")
		}},
	}
	for _, tc := range cases {
		mm := NewModel()
		xv := mm.AddVar("x")
		_ = xv
		tc.prep(mm)
		if _, err := mm.Solve(nil); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	empty := NewModel()
	if _, err := empty.Solve(nil); err == nil {
		t.Error("model with no variables should error")
	}
}

// minimize x + 1/x has optimum 2 at x=1.
func TestUnconstrainedScalar(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x")
	m.Minimize(Posy(X(x), X(x).Pow(-1)))
	sol := solveOrDie(t, m, nil)
	if !near(sol.X[0], 1, 1e-6) || !near(sol.Objective, 2, 1e-8) {
		t.Fatalf("got x=%v obj=%v, want 1, 2", sol.X[0], sol.Objective)
	}
}

// minimize x subject to 5/x <= 1  =>  x* = 5.
func TestSimpleBoundConstraint(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x")
	m.Minimize(Posy(X(x)))
	m.AddConstraint(Posy(Mon(5).MulVar(x, -1)), "x>=5")
	sol := solveOrDie(t, m, nil)
	if !near(sol.X[0], 5, 1e-6) {
		t.Fatalf("x = %v, want 5", sol.X[0])
	}
}

// Classic box-volume GP (Boyd tutorial §2.4 flavor): maximize volume hwd
// subject to wall area 2(hw+hd) <= Awall, floor area wd <= Aflr, and aspect
// ratio bounds. Maximizing hwd == minimizing h^-1 w^-1 d^-1.
func TestBoxDesign(t *testing.T) {
	const (
		aWall = 200.0
		aFlr  = 50.0
	)
	m := NewModel()
	h := m.AddBoundedVar("h", 0.1, 100)
	w := m.AddBoundedVar("w", 0.1, 100)
	d := m.AddBoundedVar("d", 0.1, 100)
	m.Minimize(Posy(X(h).Pow(-1).Mul(X(w).Pow(-1)).Mul(X(d).Pow(-1))))
	wall := Posy(
		Mon(2).MulVar(h, 1).MulVar(w, 1),
		Mon(2).MulVar(h, 1).MulVar(d, 1),
	).Scale(1 / aWall)
	m.AddConstraint(wall, "wall area")
	m.AddConstraint(Posy(Mon(1/aFlr).MulVar(w, 1).MulVar(d, 1)), "floor area")
	// Aspect bounds keep the problem bounded: 0.5 <= h/w <= 2, 0.5 <= d/w <= 2.
	m.AddConstraint(Posy(Mon(0.5).MulVar(h, -1).MulVar(w, 1)), "h/w lower")
	m.AddConstraint(Posy(Mon(0.5).MulVar(h, 1).MulVar(w, -1)), "h/w upper")
	m.AddConstraint(Posy(Mon(0.5).MulVar(d, -1).MulVar(w, 1)), "d/w lower")
	m.AddConstraint(Posy(Mon(0.5).MulVar(d, 1).MulVar(w, -1)), "d/w upper")
	sol := solveOrDie(t, m, nil)
	vol := sol.X[0] * sol.X[1] * sol.X[2]
	// Check feasibility and local optimality sanity: wall area binding.
	wallUsed := 2 * (sol.X[0]*sol.X[1] + sol.X[0]*sol.X[2])
	if wallUsed > aWall*(1+1e-6) {
		t.Fatalf("wall constraint violated: %v > %v", wallUsed, aWall)
	}
	floorUsed := sol.X[1] * sol.X[2]
	if floorUsed > aFlr*(1+1e-6) {
		t.Fatalf("floor constraint violated: %v > %v", floorUsed, aFlr)
	}
	if vol < 100 {
		t.Fatalf("volume %v suspiciously small", vol)
	}
	// The optimum of this standard instance is ~77.98 wall-limited...
	// verify stationarity by perturbation: no feasible 1% scaling improves.
	if !near(1/sol.Objective, vol, 1e-9) {
		t.Fatalf("objective inconsistent with volume: 1/obj=%v vol=%v", 1/sol.Objective, vol)
	}
}

// Infeasible: x <= 1 and x >= 3.
func TestInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x")
	m.Minimize(Posy(X(x)))
	m.AddConstraint(Posy(X(x)), "x<=1")
	m.AddConstraint(Posy(Mon(3).MulVar(x, -1)), "x>=3")
	sol, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestBoundedVarBoundsRespected(t *testing.T) {
	m := NewModel()
	x := m.AddBoundedVar("x", 2, 10)
	// minimize x => hits lower bound 2.
	m.Minimize(Posy(X(x)))
	sol := solveOrDie(t, m, nil)
	if !near(sol.X[0], 2, 1e-6) {
		t.Fatalf("x = %v, want 2", sol.X[0])
	}
	// maximize x == minimize 1/x => hits upper bound 10.
	m2 := NewModel()
	y := m2.AddBoundedVar("y", 2, 10)
	m2.Minimize(Posy(X(y).Pow(-1)))
	sol2 := solveOrDie(t, m2, nil)
	if !near(sol2.X[0], 10, 1e-6) {
		t.Fatalf("y = %v, want 10", sol2.X[0])
	}
}

func TestEmptyBoundsError(t *testing.T) {
	m := NewModel()
	m.AddBoundedVar("x", 5, 2)
	m.Minimize(Posy(Mon(1)))
	if _, err := m.Solve(nil); err == nil {
		t.Fatal("expected error for lo > hi")
	}
}

func TestAddLessEq(t *testing.T) {
	// x + 3 <= 2y with y <= 4  =>  min x feasible region needs x <= 2y-3.
	// minimize 1/x => maximize x => x* = 2*4 - 3 = 5.
	m := NewModel()
	x := m.AddVar("x")
	y := m.AddBoundedVar("y", 0.1, 4)
	m.Minimize(Posy(X(x).Pow(-1)))
	m.AddLessEq(Posy(X(x), Mon(3)), Mon(2).MulVar(y, 1), "x+3<=2y")
	sol := solveOrDie(t, m, nil)
	if !near(sol.X[x.Index()], 5, 1e-5) {
		t.Fatalf("x = %v, want 5", sol.X[x.Index()])
	}
}

// The exact shape of the paper's period-adaptation GP (Eq. 7, Appendix):
// minimize Ts subject to (C + A)/Ts + U + 0 <= 1 and Tdes <= Ts <= Tmax.
// Closed form: Ts* = max(Tdes, (C+A)/(1-U)).
func TestPeriodAdaptationShape(t *testing.T) {
	cases := []struct {
		c, a, u, tdes, tmax float64
		want                float64
		feasible            bool
	}{
		{1, 2, 0.5, 4, 100, 6, true},   // schedulability binds: (1+2)/0.5 = 6
		{1, 2, 0.5, 10, 100, 10, true}, // desired period binds
		{1, 2, 0.5, 4, 5, 0, false},    // needs 6 > Tmax=5: infeasible
		{1, 2, 0.99, 4, 100, 0, false}, // (C+A)/(1-U)=300 > 100: infeasible
		{0.5, 0, 0.0, 1, 10, 1, true},  // no interference at all
	}
	for i, tc := range cases {
		m := NewModel()
		ts := m.AddBoundedVar("Ts", tc.tdes, tc.tmax)
		m.Minimize(Posy(X(ts)))
		lhs := Posy(Mon(tc.c+tc.a).MulVar(ts, -1))
		if tc.u > 0 {
			lhs = lhs.AddMon(Mon(tc.u))
		}
		m.AddConstraint(lhs, "schedulability")
		sol, err := m.Solve(nil)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if tc.feasible {
			if sol.Status != StatusOptimal {
				t.Fatalf("case %d: status %v", i, sol.Status)
			}
			if !near(sol.X[0], tc.want, 1e-6) {
				t.Fatalf("case %d: Ts = %v, want %v", i, sol.X[0], tc.want)
			}
		} else if sol.Status != StatusInfeasible {
			t.Fatalf("case %d: status %v, want infeasible", i, sol.Status)
		}
	}
}

func TestMaximizePosynomialMonomialObjective(t *testing.T) {
	// maximize 1/x with x >= 2 => x* = 2, objective 0.5. Monomial objective,
	// condensation converges in one round.
	m := NewModel()
	x := m.AddBoundedVar("x", 2, 50)
	sol, err := m.MaximizePosynomial(Posy(X(x).Pow(-1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !near(sol.X[0], 2, 1e-5) || !near(sol.Objective, 0.5, 1e-5) {
		t.Fatalf("x=%v obj=%v, want 2, 0.5", sol.X[0], sol.Objective)
	}
}

func TestMaximizePosynomialCoupled(t *testing.T) {
	// maximize 1/x + 1/y subject to 1/x + 1/y <= 1 scaled... use:
	// constraint 2/x + 1/y <= 1, x,y in [1.01, 100].
	// At optimum the constraint binds; maximize f = 1/x + 1/y.
	// With g = 2/x + 1/y = 1, f = 1 - 1/x, so maximize f => maximize x...
	// but x <= 100 bound, then 1/y = 1 - 2/100 => y = 1/(0.98).
	m := NewModel()
	x := m.AddBoundedVar("x", 1.01, 100)
	y := m.AddBoundedVar("y", 1.01, 100)
	m.AddConstraint(Posy(Mon(2).MulVar(x, -1), X(y).Pow(-1)), "2/x+1/y<=1")
	obj := Posy(X(x).Pow(-1), X(y).Pow(-1))
	sol, err := m.MaximizePosynomial(obj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !near(sol.X[x.Index()], 100, 1e-3) {
		t.Fatalf("x = %v, want 100", sol.X[x.Index()])
	}
	wantY := 1 / 0.98
	if !near(sol.X[y.Index()], wantY, 1e-3) {
		t.Fatalf("y = %v, want %v", sol.X[y.Index()], wantY)
	}
	if !near(sol.Objective, 1-1.0/100, 1e-4) {
		t.Fatalf("obj = %v, want %v", sol.Objective, 0.99)
	}
}

func TestMaximizePosynomialInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x")
	m.AddConstraint(Posy(X(x)), "x<=1")
	m.AddConstraint(Posy(Mon(3).MulVar(x, -1)), "x>=3")
	sol, err := m.MaximizePosynomial(Posy(X(x).Pow(-1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestMaximizeValidatesObjective(t *testing.T) {
	m := NewModel()
	m.AddVar("x")
	if _, err := m.MaximizePosynomial(Posy(Mon(-1)), nil); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusOptimal:        "optimal",
		StatusInfeasible:     "infeasible",
		StatusIterationLimit: "iteration-limit",
		StatusNumericalError: "numerical-error",
		Status(99):           "status(99)",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

// Property: for randomized feasible period-adaptation instances, the GP
// solution matches the closed form max(Tdes, (C+A)/(1-U)) within tolerance.
func TestPeriodAdaptationClosedFormProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := 0.1 + 2*r.Float64()
		a := 3 * r.Float64()
		u := 0.85 * r.Float64()
		tdes := 1 + 9*r.Float64()
		bound := (c + a) / (1 - u)
		want := math.Max(tdes, bound)
		tmax := want * (1.5 + r.Float64()) // always feasible
		m := NewModel()
		ts := m.AddBoundedVar("Ts", tdes, tmax)
		m.Minimize(Posy(X(ts)))
		lhs := Posy(Mon(c+a).MulVar(ts, -1), Mon(u))
		m.AddConstraint(lhs, "sched")
		sol, err := m.Solve(nil)
		if err != nil || sol.Status != StatusOptimal {
			return false
		}
		return near(sol.X[0], want, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: solver solutions always satisfy every constraint (violation <= tol).
func TestSolutionsFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		m := NewModel()
		vars := make([]Var, n)
		for i := range vars {
			lo := 0.5 + r.Float64()
			vars[i] = m.AddBoundedVar("x", lo, lo*(2+5*r.Float64()))
		}
		// Objective: sum of a few random monomials with positive coeffs.
		obj := Posynomial{}
		for k := 0; k < 1+r.Intn(3); k++ {
			mono := Mon(0.1 + r.Float64())
			for i := range vars {
				mono = mono.MulVar(vars[i], float64(r.Intn(5)-2))
			}
			obj = obj.AddMon(mono)
		}
		m.Minimize(obj)
		// One random coupling constraint scaled to be feasible at bound mids.
		coup := Mon(1)
		for i := range vars {
			coup = coup.MulVar(vars[i], float64(r.Intn(3)-1))
		}
		mid := make([]float64, n)
		for i := range mid {
			mid[i] = math.Sqrt(m.lo[vars[i].idx] * m.hi[vars[i].idx])
		}
		scale := coup.Eval(mid)
		m.AddConstraint(Posy(coup.Scale(0.5/scale)), "coupling")
		sol, err := m.Solve(nil)
		if err != nil {
			return false
		}
		if sol.Status == StatusInfeasible {
			return true // acceptable outcome; nothing to verify
		}
		if sol.X == nil {
			return false
		}
		return sol.Violation <= 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
