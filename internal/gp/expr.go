// Package gp implements geometric programming (GP) in standard form:
//
//	minimize    f0(x)
//	subject to  fi(x) <= 1,  i = 1..p
//	            x > 0
//
// where every fi is a posynomial — a sum of monomials c * x1^a1 * ... * xn^an
// with c > 0 and real exponents. A GP is transformed to a convex program by
// the change of variables t = log x and is solved here with a log-barrier
// interior-point Newton method (Boyd et al., "A tutorial on geometric
// programming", Optimization & Engineering 2007).
//
// The package exists because the paper this repository reproduces (Hasan et
// al., DATE 2018) solves its period-adaptation problem with GPkit + CVXOPT;
// Go has no geometric-programming library, so we provide one, plus the
// signomial extension (monomial condensation) needed to *maximize* a
// posynomial objective such as the cumulative tightness of Eq. (3).
package gp

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Var identifies a positive decision variable in a Model.
type Var struct {
	idx   int
	model *Model
}

// Index returns the variable's position in the model's solution vector.
func (v Var) Index() int { return v.idx }

// Name returns the variable's name.
func (v Var) Name() string { return v.model.names[v.idx] }

// Monomial is c * prod_j x_j^{a_j} with c > 0. The zero value is invalid;
// build monomials with Mon and the Mul/Div/Pow combinators.
type Monomial struct {
	Coeff float64
	Exps  map[int]float64 // variable index -> exponent; absent means 0
}

// Mon returns the constant monomial c. c must be positive (validated at
// model-solve time so expression building never fails mid-formula).
func Mon(c float64) Monomial {
	return Monomial{Coeff: c, Exps: map[int]float64{}}
}

// X returns the monomial x^1 for a variable.
func X(v Var) Monomial {
	return Monomial{Coeff: 1, Exps: map[int]float64{v.idx: 1}}
}

// clone returns a deep copy of m.
func (m Monomial) clone() Monomial {
	e := make(map[int]float64, len(m.Exps))
	for k, v := range m.Exps {
		e[k] = v
	}
	return Monomial{Coeff: m.Coeff, Exps: e}
}

// Mul returns m scaled by the monomial n (coefficients multiply, exponents add).
func (m Monomial) Mul(n Monomial) Monomial {
	r := m.clone()
	r.Coeff *= n.Coeff
	for k, v := range n.Exps {
		r.Exps[k] += v
		if r.Exps[k] == 0 {
			delete(r.Exps, k)
		}
	}
	return r
}

// MulVar returns m * v^e.
func (m Monomial) MulVar(v Var, e float64) Monomial {
	r := m.clone()
	r.Exps[v.idx] += e
	if r.Exps[v.idx] == 0 {
		delete(r.Exps, v.idx)
	}
	return r
}

// Div returns m / n.
func (m Monomial) Div(n Monomial) Monomial {
	inv := n.clone()
	inv.Coeff = 1 / n.Coeff
	for k := range inv.Exps {
		inv.Exps[k] = -inv.Exps[k]
	}
	return m.Mul(inv)
}

// Pow returns m^p (valid for any real p because monomials are log-linear).
func (m Monomial) Pow(p float64) Monomial {
	r := m.clone()
	r.Coeff = math.Pow(m.Coeff, p)
	for k := range r.Exps {
		r.Exps[k] *= p
		if r.Exps[k] == 0 {
			delete(r.Exps, k)
		}
	}
	return r
}

// Scale returns m with the coefficient multiplied by c.
func (m Monomial) Scale(c float64) Monomial {
	r := m.clone()
	r.Coeff *= c
	return r
}

// Eval evaluates the monomial at x (indexed by variable index).
func (m Monomial) Eval(x []float64) float64 {
	v := m.Coeff
	for k, e := range m.Exps {
		v *= math.Pow(x[k], e)
	}
	return v
}

// String renders the monomial for diagnostics, with variables sorted by index.
func (m Monomial) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%g", m.Coeff)
	idx := make([]int, 0, len(m.Exps))
	for k := range m.Exps {
		idx = append(idx, k)
	}
	sort.Ints(idx)
	for _, k := range idx {
		e := m.Exps[k]
		if e == 1 {
			fmt.Fprintf(&sb, "*x%d", k)
		} else {
			fmt.Fprintf(&sb, "*x%d^%g", k, e)
		}
	}
	return sb.String()
}

// Posynomial is a sum of monomials. The empty posynomial is the constant 0
// and is invalid in objectives and constraints.
type Posynomial []Monomial

// Posy builds a posynomial from monomial terms.
func Posy(terms ...Monomial) Posynomial {
	p := make(Posynomial, 0, len(terms))
	for _, t := range terms {
		p = append(p, t.clone())
	}
	return p
}

// Add returns p + q.
func (p Posynomial) Add(q Posynomial) Posynomial {
	r := make(Posynomial, 0, len(p)+len(q))
	for _, m := range p {
		r = append(r, m.clone())
	}
	for _, m := range q {
		r = append(r, m.clone())
	}
	return r
}

// AddMon returns p + m.
func (p Posynomial) AddMon(m Monomial) Posynomial {
	return p.Add(Posynomial{m})
}

// MulMon returns p * m (distributes the monomial across every term).
func (p Posynomial) MulMon(m Monomial) Posynomial {
	r := make(Posynomial, 0, len(p))
	for _, t := range p {
		r = append(r, t.Mul(m))
	}
	return r
}

// Scale returns p with every coefficient multiplied by c > 0.
func (p Posynomial) Scale(c float64) Posynomial {
	r := make(Posynomial, 0, len(p))
	for _, t := range p {
		r = append(r, t.Scale(c))
	}
	return r
}

// Eval evaluates the posynomial at x.
func (p Posynomial) Eval(x []float64) float64 {
	var s float64
	for _, m := range p {
		s += m.Eval(x)
	}
	return s
}

// String renders the posynomial for diagnostics.
func (p Posynomial) String() string {
	if len(p) == 0 {
		return "0"
	}
	parts := make([]string, len(p))
	for i, m := range p {
		parts[i] = m.String()
	}
	return strings.Join(parts, " + ")
}

// validate checks that every coefficient is positive and finite and every
// exponent is finite. It returns a descriptive error otherwise.
func (p Posynomial) validate(nvars int) error {
	if len(p) == 0 {
		return fmt.Errorf("gp: empty posynomial")
	}
	for i, m := range p {
		if !(m.Coeff > 0) || math.IsInf(m.Coeff, 0) {
			return fmt.Errorf("gp: term %d has non-positive or non-finite coefficient %g", i, m.Coeff)
		}
		for k, e := range m.Exps {
			if k < 0 || k >= nvars {
				return fmt.Errorf("gp: term %d references unknown variable index %d", i, k)
			}
			if math.IsNaN(e) || math.IsInf(e, 0) {
				return fmt.Errorf("gp: term %d has non-finite exponent for x%d", i, k)
			}
		}
	}
	return nil
}
