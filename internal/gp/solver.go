package gp

import (
	"fmt"
	"math"

	"hydra/internal/lal"
)

// Status reports the outcome of a solve.
type Status int

const (
	// StatusOptimal means the solver converged to the requested tolerance.
	StatusOptimal Status = iota
	// StatusInfeasible means phase I proved no strictly feasible point exists
	// (up to numerical tolerance).
	StatusInfeasible
	// StatusIterationLimit means the Newton budget was exhausted; the
	// returned point is the best feasible iterate.
	StatusIterationLimit
	// StatusNumericalError means a linear solve failed irrecoverably.
	StatusNumericalError
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusIterationLimit:
		return "iteration-limit"
	case StatusNumericalError:
		return "numerical-error"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution is the result of solving a geometric program.
type Solution struct {
	Status     Status
	X          []float64 // primal point (positive variables), nil if infeasible
	Objective  float64   // posynomial objective value at X
	Iterations int       // total Newton iterations across both phases
	Violation  float64   // max_i log fi(X); <= 0 means feasible

	// Sensitivities are approximate log-log dual multipliers for every
	// constraint (user constraints first, then the materialized variable
	// bounds, in compile order): the relative decrease of the optimal
	// objective per relative relaxation of the constraint. Near-zero values
	// mark slack constraints; large values mark the binding bottlenecks.
	Sensitivities []ConstraintSensitivity
}

// ConstraintSensitivity pairs a constraint tag with its dual multiplier.
type ConstraintSensitivity struct {
	Tag  string
	Dual float64
}

// Options tunes the interior-point solver. The zero value selects defaults.
type Options struct {
	Tol       float64 // barrier duality-gap tolerance (default 1e-9)
	FeasTol   float64 // strict-feasibility margin for phase I (default 1e-9)
	MaxNewton int     // total Newton iteration budget (default 600)
	BarrierMu float64 // barrier parameter multiplier (default 20)
}

func (o *Options) withDefaults() Options {
	opt := Options{Tol: 1e-9, FeasTol: 1e-9, MaxNewton: 600, BarrierMu: 20}
	if o == nil {
		return opt
	}
	if o.Tol > 0 {
		opt.Tol = o.Tol
	}
	if o.FeasTol > 0 {
		opt.FeasTol = o.FeasTol
	}
	if o.MaxNewton > 0 {
		opt.MaxNewton = o.MaxNewton
	}
	if o.BarrierMu > 1 {
		opt.BarrierMu = o.BarrierMu
	}
	return opt
}

// Solve compiles and solves the model. A non-nil error indicates a malformed
// model; solver outcomes (infeasibility, iteration limits) are reported via
// Solution.Status instead.
func (m *Model) Solve(o *Options) (*Solution, error) {
	c, err := m.compile()
	if err != nil {
		return nil, err
	}
	opt := o.withDefaults()
	t := m.initialPoint()
	iters := 0

	// Phase I: find a strictly feasible point unless we already have one.
	if maxConstraint(c, t) >= -opt.FeasTol {
		feasible, n := phaseOne(c, t, opt)
		iters += n
		if !feasible {
			return &Solution{Status: StatusInfeasible, Iterations: iters, Violation: maxConstraint(c, t)}, nil
		}
	}

	// Phase II: barrier path following on the true objective.
	sol, kappa := phaseTwo(c, t, opt)
	sol.Iterations += iters
	// Barrier duals: lambda_i = 1/(kappa * (-Fi(t*))) approximates the
	// log-space KKT multiplier of constraint i at the central-path point.
	if kappa > 0 {
		sol.Sensitivities = make([]ConstraintSensitivity, len(c.cons))
		for i := range c.cons {
			fi := c.cons[i].Value(t)
			dual := 0.0
			if fi < 0 {
				dual = 1 / (kappa * (-fi))
			}
			sol.Sensitivities[i] = ConstraintSensitivity{Tag: c.tags[i], Dual: dual}
		}
	}

	x := make([]float64, c.n)
	for j := range x {
		x[j] = math.Exp(t[j])
	}
	sol.X = x
	sol.Objective = m.obj.Eval(x)
	sol.Violation = maxConstraint(c, t)
	return sol, nil
}

// maxConstraint returns max_i Fi(t) (log-space), or -Inf with no constraints.
func maxConstraint(c *compiled, t lal.Vector) float64 {
	worst := math.Inf(-1)
	for i := range c.cons {
		if v := c.cons[i].Value(t); v > worst {
			worst = v
		}
	}
	return worst
}

// phaseOne minimizes s subject to Fi(t) <= s over (t, s) until s < -FeasTol,
// mutating t toward a strictly feasible point. It returns whether a strictly
// feasible point was found and the Newton iterations used.
func phaseOne(c *compiled, t lal.Vector, opt Options) (bool, int) {
	n := c.n
	p := len(c.cons)
	if p == 0 {
		return true, 0
	}
	s := maxConstraint(c, t) + 1.0
	fi := lal.NewVector(p)
	gi := lal.NewVector(n)
	grad := lal.NewVector(n + 1)
	scratch := lal.NewVector(n)
	hess := lal.NewMatrix(n+1, n+1)
	kappa := 1.0
	iters := 0

	// psi(t,s) = kappa*s - sum log(s - Fi(t))
	eval := func(tt lal.Vector, ss float64) (float64, bool) {
		v := kappa * ss
		for i := range c.cons {
			ci := ss - c.cons[i].Value(tt)
			if ci <= 0 {
				return 0, false
			}
			v -= math.Log(ci)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, false
		}
		return v, true
	}

	tTrial := lal.NewVector(n)
	for outer := 0; outer < 64; outer++ {
		for inner := 0; inner < 80; inner++ {
			if iters >= opt.MaxNewton {
				return maxConstraint(c, t) < -opt.FeasTol, iters
			}
			iters++
			// Assemble gradient and Hessian at (t, s).
			grad.Zero()
			hess.Zero()
			grad[n] = kappa
			for i := range c.cons {
				fi[i] = c.cons[i].Value(t) // refresh weights
				ci := s - fi[i]
				inv := 1 / ci
				c.cons[i].Grad(gi)
				// Gradient of -log(s - Fi): (inv * gradFi, -inv).
				for j := 0; j < n; j++ {
					grad[j] += inv * gi[j]
				}
				grad[n] -= inv
				// Hessian: inv^2 * (gradFi,-1)(gradFi,-1)ᵀ + inv * hess Fi.
				u := lal.NewVector(n + 1)
				copy(u, gi)
				u[n] = -1
				hess.AddOuterScaled(inv*inv, u)
				addHessTopLeft(hess, &c.cons[i], inv, scratch, n)
			}
			d, ok := lal.SolveSPD(hess, grad)
			if !ok {
				return maxConstraint(c, t) < -opt.FeasTol, iters
			}
			d.Scale(-1)
			lambda2 := -grad.Dot(d)
			if lambda2/2 < 1e-10 {
				break
			}
			// Backtracking line search on psi.
			f0, _ := eval(t, s)
			alpha := 1.0
			improved := false
			for ls := 0; ls < 60; ls++ {
				for j := 0; j < n; j++ {
					tTrial[j] = t[j] + alpha*d[j]
				}
				sTrial := s + alpha*d[n]
				if v, okv := eval(tTrial, sTrial); okv && v <= f0-1e-4*alpha*lambda2 {
					t.CopyFrom(tTrial)
					s = sTrial
					improved = true
					break
				}
				alpha *= 0.5
			}
			if !improved {
				break
			}
			if maxConstraint(c, t) < -10*opt.FeasTol {
				return true, iters // strictly feasible, done early
			}
		}
		if maxConstraint(c, t) < -10*opt.FeasTol {
			return true, iters
		}
		if float64(p)/kappa < opt.Tol {
			break
		}
		kappa *= opt.BarrierMu
	}
	return maxConstraint(c, t) < -opt.FeasTol, iters
}

// addHessTopLeft accumulates alpha * hess Fi(t) into the top-left n×n block
// of the (n+1)×(n+1) matrix h, using the weights cached in f.
func addHessTopLeft(h *lal.Matrix, f *logSumExp, alpha float64, scratch lal.Vector, n int) {
	scratch.Zero()
	for k := range f.a {
		wk := f.w[k]
		if wk == 0 {
			continue
		}
		ak := f.a[k]
		for i := 0; i < n; i++ {
			ai := alpha * wk * ak[i]
			if ai == 0 {
				continue
			}
			row := h.Row(i)
			for j := 0; j < n; j++ {
				row[j] += ai * ak[j]
			}
		}
		scratch.AddScaled(wk, ak)
	}
	for i := 0; i < n; i++ {
		si := -alpha * scratch[i]
		if si == 0 {
			continue
		}
		row := h.Row(i)
		for j := 0; j < n; j++ {
			row[j] += si * scratch[j]
		}
	}
}

// phaseTwo runs the barrier method from a strictly feasible t, mutating t to
// the optimum. It also returns the final barrier parameter kappa, from which
// approximate dual multipliers are recovered.
func phaseTwo(c *compiled, t lal.Vector, opt Options) (*Solution, float64) {
	n := c.n
	p := len(c.cons)
	grad := lal.NewVector(n)
	gi := lal.NewVector(n)
	scratch := lal.NewVector(n)
	hess := lal.NewMatrix(n, n)
	tTrial := lal.NewVector(n)
	kappa := 1.0
	iters := 0

	// psi(t) = kappa*F0(t) - sum log(-Fi(t))
	eval := func(tt lal.Vector) (float64, bool) {
		v := kappa * c.obj.Value(tt)
		for i := range c.cons {
			ci := -c.cons[i].Value(tt)
			if ci <= 0 {
				return 0, false
			}
			v -= math.Log(ci)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, false
		}
		return v, true
	}

	status := StatusOptimal
	for outer := 0; ; outer++ {
		for inner := 0; inner < 100; inner++ {
			if iters >= opt.MaxNewton {
				return &Solution{Status: StatusIterationLimit, Iterations: iters}, kappa
			}
			iters++
			grad.Zero()
			hess.Zero()
			c.obj.Value(t) // refresh objective weights
			c.obj.AddGrad(grad, kappa)
			c.obj.AddHess(hess, kappa, scratch)
			for i := range c.cons {
				fiv := c.cons[i].Value(t)
				inv := 1 / (-fiv)
				c.cons[i].Grad(gi)
				grad.AddScaled(inv, gi)
				hess.AddOuterScaled(inv*inv, gi)
				c.cons[i].AddHess(hess, inv, scratch)
			}
			d, ok := lal.SolveSPD(hess, grad)
			if !ok {
				return &Solution{Status: StatusNumericalError, Iterations: iters}, kappa
			}
			d.Scale(-1)
			lambda2 := -grad.Dot(d)
			if lambda2/2 < 1e-11 {
				break
			}
			f0, _ := eval(t)
			alpha := 1.0
			improved := false
			for ls := 0; ls < 60; ls++ {
				tTrial.CopyFrom(t)
				tTrial.AddScaled(alpha, d)
				if v, okv := eval(tTrial); okv && v <= f0-1e-4*alpha*lambda2 {
					t.CopyFrom(tTrial)
					improved = true
					break
				}
				alpha *= 0.5
			}
			if !improved {
				break
			}
		}
		if p == 0 || float64(p)/kappa < opt.Tol {
			break
		}
		kappa *= opt.BarrierMu
		if outer > 64 {
			status = StatusIterationLimit
			break
		}
	}
	return &Solution{Status: status, Iterations: iters}, kappa
}
