package gp

import "testing"

// For minimize x s.t. 5/x <= 1, the optimal value is 5 and relaxing the
// constraint to 5/(1+u) scales the optimum by 1/(1+u): the log-log
// sensitivity of the binding constraint is exactly 1.
func TestSensitivityBindingConstraint(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x")
	m.Minimize(Posy(X(x)))
	m.AddConstraint(Posy(Mon(5).MulVar(x, -1)), "x>=5")
	sol := solveOrDie(t, m, nil)
	if len(sol.Sensitivities) != 1 {
		t.Fatalf("sensitivities = %v", sol.Sensitivities)
	}
	s := sol.Sensitivities[0]
	if s.Tag != "x>=5" {
		t.Fatalf("tag = %q", s.Tag)
	}
	if !near(s.Dual, 1, 0.05) {
		t.Fatalf("binding dual = %v, want ~1", s.Dual)
	}
}

func TestSensitivitySlackConstraintNearZero(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x")
	m.Minimize(Posy(X(x)))
	m.AddConstraint(Posy(Mon(5).MulVar(x, -1)), "binding")
	m.AddConstraint(Posy(Mon(0.001).MulVar(x, 1)), "very slack") // x <= 1000
	sol := solveOrDie(t, m, nil)
	var binding, slack float64
	for _, s := range sol.Sensitivities {
		switch s.Tag {
		case "binding":
			binding = s.Dual
		case "very slack":
			slack = s.Dual
		}
	}
	if binding < 0.5 {
		t.Fatalf("binding dual = %v, want large", binding)
	}
	if slack > 0.01 {
		t.Fatalf("slack dual = %v, want near zero", slack)
	}
}

// Finite-difference validation: perturb the binding constraint by 1% and
// compare the objective change against the dual's prediction.
func TestSensitivityFiniteDifference(t *testing.T) {
	build := func(relax float64) float64 {
		m := NewModel()
		x := m.AddVar("x")
		y := m.AddVar("y")
		m.Minimize(Posy(X(x), X(y)))
		// x*y >= 9, relaxed to 9/(1+relax).
		m.AddConstraint(Posy(Mon(9/(1+relax)).MulVar(x, -1).MulVar(y, -1)), "xy>=9")
		m.AddConstraint(Posy(Mon(1).MulVar(x, 1).MulVar(y, -1)), "x<=y")
		sol, err := m.Solve(nil)
		if err != nil || sol.Status != StatusOptimal {
			t.Fatalf("solve failed: %v %v", err, sol)
		}
		return sol.Objective
	}
	m := NewModel()
	x := m.AddVar("x")
	y := m.AddVar("y")
	m.Minimize(Posy(X(x), X(y)))
	m.AddConstraint(Posy(Mon(9).MulVar(x, -1).MulVar(y, -1)), "xy>=9")
	m.AddConstraint(Posy(Mon(1).MulVar(x, 1).MulVar(y, -1)), "x<=y")
	sol := solveOrDie(t, m, nil)
	var dual float64
	for _, s := range sol.Sensitivities {
		if s.Tag == "xy>=9" {
			dual = s.Dual
		}
	}
	const h = 0.01
	f0, f1 := build(0), build(h)
	// Predicted relative objective change: -dual * relative relaxation.
	predicted := -dual * h
	actual := (f1 - f0) / f0
	if diff := predicted - actual; diff > 0.01 || diff < -0.01 {
		t.Fatalf("dual prediction %v vs finite difference %v (dual %v)", predicted, actual, dual)
	}
}
