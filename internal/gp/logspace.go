package gp

import (
	"math"

	"hydra/internal/lal"
)

// logSumExp is the log-space image of a posynomial:
//
//	F(t) = log sum_k exp(a_k . t + b_k)
//
// which is convex in t. It caches the per-term softmax weights of the last
// evaluation so gradient and Hessian accumulation reuse them.
type logSumExp struct {
	a []lal.Vector // K rows of exponents, each length n
	b lal.Vector   // K log-coefficients
	w lal.Vector   // scratch: softmax weights from the last Value call
}

// newLogSumExp lowers a validated posynomial with n model variables.
func newLogSumExp(p Posynomial, n int) logSumExp {
	ls := logSumExp{
		a: make([]lal.Vector, len(p)),
		b: lal.NewVector(len(p)),
		w: lal.NewVector(len(p)),
	}
	for k, m := range p {
		row := lal.NewVector(n)
		for j, e := range m.Exps {
			row[j] = e
		}
		ls.a[k] = row
		ls.b[k] = math.Log(m.Coeff)
	}
	return ls
}

// Value computes F(t) and refreshes the cached softmax weights.
func (f *logSumExp) Value(t lal.Vector) float64 {
	ymax := math.Inf(-1)
	for k := range f.a {
		y := f.b[k] + f.a[k].Dot(t)
		f.w[k] = y // temporarily store raw exponents
		if y > ymax {
			ymax = y
		}
	}
	var s float64
	for k := range f.w {
		f.w[k] = math.Exp(f.w[k] - ymax)
		s += f.w[k]
	}
	for k := range f.w {
		f.w[k] /= s
	}
	return ymax + math.Log(s)
}

// AddGrad accumulates alpha * grad F(t) into g, using the weights cached by
// the immediately preceding Value call at the same t.
func (f *logSumExp) AddGrad(g lal.Vector, alpha float64) {
	for k := range f.a {
		wk := f.w[k]
		if wk == 0 {
			continue
		}
		g.AddScaled(alpha*wk, f.a[k])
	}
}

// Grad writes grad F(t) into g (which is zeroed first), using cached weights.
func (f *logSumExp) Grad(g lal.Vector) {
	g.Zero()
	f.AddGrad(g, 1)
}

// AddHess accumulates alpha * hess F(t) into h, using cached weights:
//
//	hess F = sum_k w_k a_k a_kᵀ - (sum_k w_k a_k)(sum_k w_k a_k)ᵀ
//
// scratch must have the same length as t and is clobbered.
func (f *logSumExp) AddHess(h *lal.Matrix, alpha float64, scratch lal.Vector) {
	scratch.Zero()
	for k := range f.a {
		wk := f.w[k]
		if wk == 0 {
			continue
		}
		h.AddOuterScaled(alpha*wk, f.a[k])
		scratch.AddScaled(wk, f.a[k])
	}
	h.AddOuterScaled(-alpha, scratch)
}
