package gp

import "testing"

func TestAddEquality(t *testing.T) {
	// minimize x + y subject to x*y == 4, x,y > 0: optimum x=y=2, obj 4.
	m := NewModel()
	x := m.AddBoundedVar("x", 0.01, 100)
	y := m.AddBoundedVar("y", 0.01, 100)
	m.Minimize(Posy(X(x), X(y)))
	m.AddEquality(X(x).Mul(X(y)), Mon(4), "xy=4")
	sol := solveOrDie(t, m, nil)
	if !near(sol.X[0], 2, 1e-4) || !near(sol.X[1], 2, 1e-4) {
		t.Fatalf("x=%v y=%v, want 2, 2", sol.X[0], sol.X[1])
	}
	if !near(sol.Objective, 4, 1e-6) {
		t.Fatalf("obj = %v", sol.Objective)
	}
}

func TestEqualityPinsVariable(t *testing.T) {
	// x == 3 exactly.
	m := NewModel()
	x := m.AddVar("x")
	m.Minimize(Posy(X(x), X(x).Pow(-1)))
	m.AddEquality(X(x), Mon(3), "x=3")
	sol := solveOrDie(t, m, nil)
	if !near(sol.X[0], 3, 1e-5) {
		t.Fatalf("x = %v, want 3", sol.X[0])
	}
}

func TestConstraintValues(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x")
	m.Minimize(Posy(X(x)))
	m.AddConstraint(Posy(Mon(5).MulVar(x, -1)), "x>=5")
	m.AddConstraint(Posy(Mon(0.01).MulVar(x, 1)), "x<=100")
	sol := solveOrDie(t, m, nil)
	cvs := m.ConstraintValues(sol.X)
	if len(cvs) != 2 {
		t.Fatalf("constraint values = %v", cvs)
	}
	if cvs[0].Tag != "x>=5" || !cvs[0].Binding(1e-4) {
		t.Fatalf("lower constraint should bind at the optimum: %+v", cvs[0])
	}
	if cvs[1].Binding(1e-4) {
		t.Fatalf("upper constraint should be slack: %+v", cvs[1])
	}
	if cvs[1].Value > 1 {
		t.Fatalf("upper constraint violated: %+v", cvs[1])
	}
}

func TestEqualityInfeasibleCombination(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x")
	m.Minimize(Posy(X(x)))
	m.AddEquality(X(x), Mon(3), "x=3")
	m.AddEquality(X(x), Mon(5), "x=5")
	sol, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}
