// Package taskgen synthesizes random tasksets with the parameters of the
// paper's evaluation (Sec. IV-B): per-task utilizations drawn unbiasedly via
// the Randfixedsum algorithm of Emberson, Stafford and Davis (WATERS 2010)
// [23], log-uniform real-time periods in [10,1000] ms, security desired
// periods in [1000,3000] ms with Tmax = 10*Tdes, and a security utilization
// share of at most 30% of the real-time share.
package taskgen

import (
	"fmt"
	"math"
	"math/rand"
)

// RandFixedSum draws n values x_i in [lo, hi] with sum(x) == total,
// distributed uniformly over that section of the simplex (Stafford's
// randfixedsum algorithm, as used for unbiased utilization generation by
// Emberson et al.). The rng makes the draw deterministic and reproducible.
func RandFixedSum(n int, total, lo, hi float64, rng *rand.Rand) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("taskgen: RandFixedSum needs n > 0, got %d", n)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("taskgen: RandFixedSum needs hi > lo, got [%g,%g]", lo, hi)
	}
	if total < float64(n)*lo-1e-12 || total > float64(n)*hi+1e-12 {
		return nil, fmt.Errorf("taskgen: sum %g unreachable with %d values in [%g,%g]", total, n, lo, hi)
	}
	if n == 1 {
		return []float64{total}, nil
	}

	// Rescale to the unit cube: u = (total - n*lo)/(hi - lo) in [0, n].
	u := (total - float64(n)*lo) / (hi - lo)
	nf := float64(n)
	if u < 0 {
		u = 0
	}
	if u > nf {
		u = nf
	}

	k := math.Floor(u)
	if k > nf-1 {
		k = nf - 1
	}
	if k < 0 {
		k = 0
	}
	if u < k {
		u = k
	}
	if u > k+1 {
		u = k + 1
	}

	// s1[i] = u - k + i, s2[i] = k + n - i - u  (0-based translation of the
	// MATLAB reference s1 = s-(k:-1:k-n+1), s2 = (k+n:-1:k+1)-s).
	s1 := make([]float64, n)
	s2 := make([]float64, n)
	for i := 0; i < n; i++ {
		s1[i] = u - k + float64(i)
		s2[i] = k + nf - float64(i) - u
	}

	// Probability table. w[i][j] follows the reference recursion scaled by
	// "big" to retain precision; t[i][j] are the transition probabilities.
	const big = 1e300
	const tiny = math.SmallestNonzeroFloat64
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n+1)
	}
	w[0][1] = big
	t := make([][]float64, n-1)
	for i := range t {
		t[i] = make([]float64, n)
	}
	for i := 2; i <= n; i++ {
		fi := float64(i)
		for j := 1; j <= i; j++ {
			tmp1 := w[i-2][j] * s1[j-1] / fi
			tmp2 := w[i-2][j-1] * s2[n-i+j-1] / fi
			w[i-1][j] = tmp1 + tmp2
			tmp3 := w[i-1][j] + tiny
			if s2[n-i+j-1] > s1[j-1] {
				t[i-2][j-1] = tmp2 / tmp3
			} else {
				t[i-2][j-1] = 1 - tmp1/tmp3
			}
		}
	}

	// Sample one point by walking the simplex decomposition.
	x := make([]float64, n)
	s := u
	j := int(k) + 1 // 1-based column cursor
	var sm, pr float64
	sm, pr = 0, 1
	for i := n - 1; i >= 1; i-- {
		e := 0.0
		if rng.Float64() <= t[i-1][j-1] {
			e = 1
		}
		sx := math.Pow(rng.Float64(), 1/float64(i))
		sm += (1 - sx) * pr * s / float64(i+1)
		pr *= sx
		x[n-i-1] = sm + pr*e
		s -= e
		j -= int(e)
	}
	x[n-1] = sm + pr*s

	// Random permutation for exchangeability, then scale back to [lo, hi].
	rng.Shuffle(n, func(a, b int) { x[a], x[b] = x[b], x[a] })
	for i := range x {
		x[i] = lo + (hi-lo)*x[i]
		// Numerical safety: clamp tiny excursions from rounding.
		if x[i] < lo {
			x[i] = lo
		}
		if x[i] > hi {
			x[i] = hi
		}
	}
	return x, nil
}
