package taskgen

import (
	"fmt"
	"math"
	"math/rand"

	"hydra/internal/rts"
	"hydra/internal/stats"
)

// Params mirrors Sec. IV-B of the paper. The zero value is not valid; use
// DefaultParams and override fields as needed.
type Params struct {
	M         int     // number of cores
	NR        int     // real-time task count; 0 means draw from [3M, 10M]
	NS        int     // security task count; 0 means draw from [2M, 5M]
	TotalUtil float64 // combined RT + security utilization target

	RTPeriodMin, RTPeriodMax rts.Time // real-time periods (log-uniform)
	SecTDesMin, SecTDesMax   rts.Time // security desired periods (uniform)
	TMaxFactor               float64  // Tmax = TMaxFactor * Tdes
	SecUtilFraction          float64  // U_S = frac * U_R (paper: <= 30%)
	MinTaskUtil              float64  // per-task utilization floor (>0)
}

// DefaultParams returns the paper's synthetic-experiment parameters for m
// cores at the given total utilization.
func DefaultParams(m int, totalUtil float64) Params {
	return Params{
		M:           m,
		TotalUtil:   totalUtil,
		RTPeriodMin: 10, RTPeriodMax: 1000,
		SecTDesMin: 1000, SecTDesMax: 3000,
		TMaxFactor:      10,
		SecUtilFraction: 0.3,
		MinTaskUtil:     0.001,
	}
}

// Workload is one generated taskset instance.
type Workload struct {
	RT  []rts.RTTask
	Sec []rts.SecurityTask
}

// TotalUtilization returns U_R + U_S(desired) of the workload.
func (w *Workload) TotalUtilization() float64 {
	return rts.TotalRTUtilization(w.RT) + rts.TotalSecurityDesiredUtilization(w.Sec)
}

// GenerateAt draws workload number draw of the stream owned by (version,
// seed, shard), deriving the draw's generator directly instead of consuming
// a shared sequential stream. Shard k of a scaled-out sweep can therefore
// produce its own draws without replaying anyone else's — under
// results_version 2 the derivation is an O(1) SplitMix64 split, which is
// what makes per-shard forking free. The stream label packs (shard, draw)
// exactly like the fig2/fig3 grid cells, so a sharded sweep's draw (k, t)
// equals the single-process engine cell with the same label.
func GenerateAt(p Params, version stats.RNGVersion, seed, shard, draw int64) (*Workload, error) {
	return Generate(p, stats.VersionedRNG(version, seed, shard<<32|draw))
}

// Generate draws one workload. The split between real-time and security
// utilization follows the paper's rule that security tasks get at most
// SecUtilFraction (30%) of the real-time utilization:
//
//	U_R = U_total / (1 + frac),  U_S = U_total - U_R.
func Generate(p Params, rng *rand.Rand) (*Workload, error) {
	if p.M <= 0 {
		return nil, fmt.Errorf("taskgen: M must be positive, got %d", p.M)
	}
	if !(p.TotalUtil > 0) {
		return nil, fmt.Errorf("taskgen: TotalUtil must be positive, got %g", p.TotalUtil)
	}
	if p.MinTaskUtil <= 0 {
		p.MinTaskUtil = 0.001
	}
	nr := p.NR
	if nr == 0 {
		nr = randIntIn(rng, 3*p.M, 10*p.M)
	}
	ns := p.NS
	if ns == 0 {
		ns = randIntIn(rng, 2*p.M, 5*p.M)
	}
	if nr <= 0 || ns < 0 {
		return nil, fmt.Errorf("taskgen: invalid task counts NR=%d NS=%d", nr, ns)
	}

	frac := p.SecUtilFraction
	if frac < 0 {
		frac = 0
	}
	uR := p.TotalUtil / (1 + frac)
	uS := p.TotalUtil - uR
	if ns == 0 {
		uR, uS = p.TotalUtil, 0
	}

	// Feasibility of the draw itself (not of scheduling): every task must
	// fit its per-task utilization in [MinTaskUtil, 1].
	if uR < float64(nr)*p.MinTaskUtil || uR > float64(nr) {
		return nil, fmt.Errorf("taskgen: RT utilization %g not splittable over %d tasks", uR, nr)
	}
	rtUtils, err := RandFixedSum(nr, uR, p.MinTaskUtil, 1, rng)
	if err != nil {
		return nil, fmt.Errorf("taskgen: RT utilizations: %w", err)
	}
	w := &Workload{RT: make([]rts.RTTask, nr)}
	for i, u := range rtUtils {
		period := logUniform(rng, p.RTPeriodMin, p.RTPeriodMax)
		w.RT[i] = rts.NewRTTask(taskName("rt", i), u*period, period)
	}

	if ns > 0 {
		if uS < float64(ns)*p.MinTaskUtil || uS > float64(ns) {
			return nil, fmt.Errorf("taskgen: security utilization %g not splittable over %d tasks", uS, ns)
		}
		secUtils, err := RandFixedSum(ns, uS, p.MinTaskUtil, 1, rng)
		if err != nil {
			return nil, fmt.Errorf("taskgen: security utilizations: %w", err)
		}
		w.Sec = make([]rts.SecurityTask, ns)
		for i, u := range secUtils {
			tdes := p.SecTDesMin + (p.SecTDesMax-p.SecTDesMin)*rng.Float64()
			w.Sec[i] = rts.SecurityTask{
				Name: taskName("sec", i),
				C:    u * tdes,
				TDes: tdes,
				TMax: p.TMaxFactor * tdes,
			}
		}
	}
	if err := rts.ValidateAll(w.RT, w.Sec); err != nil {
		return nil, fmt.Errorf("taskgen: generated invalid workload: %w", err)
	}
	return w, nil
}

// taskNames memoizes the two-digit generated task names ("rt00", "sec17",
// ...): name formatting was a measurable slice of a sweep cell's budget, and
// every draw re-creates the same handful of strings. Indices >= 100 (never
// produced by the paper's parameter ranges) fall back to fmt.
var taskNames [100][2]string

func init() {
	for i := range taskNames {
		digits := string([]byte{'0' + byte(i/10), '0' + byte(i%10)})
		taskNames[i] = [2]string{"rt" + digits, "sec" + digits}
	}
}

// taskName returns prefix+"%02d" for the given index, from the memoized
// table when possible. Only the prefixes "rt" and "sec" are memoized.
func taskName(prefix string, i int) string {
	if i >= 0 && i < len(taskNames) {
		switch prefix {
		case "rt":
			return taskNames[i][0]
		case "sec":
			return taskNames[i][1]
		}
	}
	return fmt.Sprintf("%s%02d", prefix, i)
}

// randIntIn returns a uniform integer in [lo, hi].
func randIntIn(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// logUniform draws from [lo, hi] uniformly in log space, the standard
// period distribution for multiprocessor taskset synthesis [23].
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	if !(hi > lo) {
		return lo
	}
	return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
}
