package taskgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hydra/internal/rts"
)

func TestRandFixedSumArgValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandFixedSum(0, 1, 0, 1, rng); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := RandFixedSum(3, 1, 1, 0, rng); err == nil {
		t.Fatal("hi <= lo must error")
	}
	if _, err := RandFixedSum(3, 5, 0, 1, rng); err == nil {
		t.Fatal("sum > n*hi must error")
	}
	if _, err := RandFixedSum(3, -1, 0, 1, rng); err == nil {
		t.Fatal("sum < n*lo must error")
	}
}

func TestRandFixedSumSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, err := RandFixedSum(1, 0.7, 0, 1, rng)
	if err != nil || len(x) != 1 || x[0] != 0.7 {
		t.Fatalf("x=%v err=%v", x, err)
	}
}

func TestRandFixedSumSumAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(20)
		lo := 0.0
		hi := 1.0
		total := hi * float64(n) * rng.Float64()
		x, err := RandFixedSum(n, total, lo, hi, rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var sum float64
		for _, v := range x {
			if v < lo-1e-9 || v > hi+1e-9 {
				t.Fatalf("trial %d: value %v out of [%v,%v]", trial, v, lo, hi)
			}
			sum += v
		}
		if math.Abs(sum-total) > 1e-9*(1+total) {
			t.Fatalf("trial %d: sum %v != %v", trial, sum, total)
		}
	}
}

func TestRandFixedSumNonUnitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, err := RandFixedSum(5, 2.5, 0.1, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range x {
		if v < 0.1-1e-12 || v > 0.9+1e-12 {
			t.Fatalf("value %v out of [0.1,0.9]", v)
		}
		sum += v
	}
	if math.Abs(sum-2.5) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestRandFixedSumDeterministic(t *testing.T) {
	a, _ := RandFixedSum(6, 2, 0, 1, rand.New(rand.NewSource(99)))
	b, _ := RandFixedSum(6, 2, 0, 1, rand.New(rand.NewSource(99)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Unbiasedness: each coordinate's empirical mean must approach total/n.
// This is the property that distinguishes Randfixedsum from naive scaling.
func TestRandFixedSumUnbiased(t *testing.T) {
	const (
		n      = 5
		total  = 2.0
		rounds = 4000
	)
	rng := rand.New(rand.NewSource(123))
	means := make([]float64, n)
	for r := 0; r < rounds; r++ {
		x, err := RandFixedSum(n, total, 0, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range x {
			means[i] += v
		}
	}
	want := total / n
	for i := range means {
		means[i] /= rounds
		if math.Abs(means[i]-want) > 0.02 {
			t.Fatalf("coordinate %d mean %v, want ~%v", i, means[i], want)
		}
	}
}

// Property: sums hold across the whole admissible (n, total) space.
func TestRandFixedSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		total := float64(n) * rng.Float64()
		x, err := RandFixedSum(n, total, 0, 1, rng)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range x {
			if v < -1e-9 || v > 1+1e-9 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-total) <= 1e-8*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(4, 2.0)
	if p.M != 4 || p.TotalUtil != 2.0 {
		t.Fatalf("params = %+v", p)
	}
	if p.TMaxFactor != 10 || p.SecUtilFraction != 0.3 {
		t.Fatalf("paper constants wrong: %+v", p)
	}
	if p.RTPeriodMin != 10 || p.RTPeriodMax != 1000 {
		t.Fatalf("RT period range wrong: %+v", p)
	}
	if p.SecTDesMin != 1000 || p.SecTDesMax != 3000 {
		t.Fatalf("security period range wrong: %+v", p)
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := Generate(Params{M: 0, TotalUtil: 1}, rng); err == nil {
		t.Fatal("M=0 must error")
	}
	if _, err := Generate(Params{M: 2, TotalUtil: 0}, rng); err == nil {
		t.Fatal("zero utilization must error")
	}
	// Unsplittable: too much utilization for a single RT task.
	p := DefaultParams(1, 4)
	p.NR, p.NS = 2, 2
	if _, err := Generate(p, rng); err == nil {
		t.Fatal("over-dense utilization must error")
	}
}

func TestGenerateRespectsPaperRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		m := []int{2, 4, 8}[rng.Intn(3)]
		util := (0.1 + 0.7*rng.Float64()) * float64(m)
		w, err := Generate(DefaultParams(m, util), rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(w.RT) < 3*m || len(w.RT) > 10*m {
			t.Fatalf("NR=%d out of [3M,10M] for M=%d", len(w.RT), m)
		}
		if len(w.Sec) < 2*m || len(w.Sec) > 5*m {
			t.Fatalf("NS=%d out of [2M,5M] for M=%d", len(w.Sec), m)
		}
		for _, task := range w.RT {
			if task.T < 10-1e-9 || task.T > 1000+1e-9 {
				t.Fatalf("RT period %v out of [10,1000]", task.T)
			}
		}
		for _, s := range w.Sec {
			if s.TDes < 1000-1e-9 || s.TDes > 3000+1e-9 {
				t.Fatalf("TDes %v out of [1000,3000]", s.TDes)
			}
			if math.Abs(s.TMax-10*s.TDes) > 1e-9 {
				t.Fatalf("TMax %v != 10*TDes %v", s.TMax, s.TDes)
			}
		}
		// Utilization split: U_S ≈ 0.3 * U_R and total matches.
		uR := rts.TotalRTUtilization(w.RT)
		uS := rts.TotalSecurityDesiredUtilization(w.Sec)
		if math.Abs(uR+uS-util) > 1e-6*(1+util) {
			t.Fatalf("total util %v != target %v", uR+uS, util)
		}
		if math.Abs(uS-0.3*uR) > 1e-6*(1+uR) {
			t.Fatalf("security util %v != 0.3 * RT util %v", uS, uR)
		}
	}
}

func TestGenerateFixedCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := DefaultParams(2, 1.0)
	p.NR, p.NS = 7, 4
	w, err := Generate(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.RT) != 7 || len(w.Sec) != 4 {
		t.Fatalf("counts = %d,%d want 7,4", len(w.RT), len(w.Sec))
	}
	if w.TotalUtilization() <= 0 {
		t.Fatal("TotalUtilization must be positive")
	}
}

func TestLogUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 1000; i++ {
		v := logUniform(rng, 10, 1000)
		if v < 10 || v > 1000 {
			t.Fatalf("logUniform out of range: %v", v)
		}
	}
	if got := logUniform(rng, 5, 5); got != 5 {
		t.Fatalf("degenerate range: %v", got)
	}
	// Log-uniformity: median should be near geometric mean (100), far from
	// the arithmetic midpoint (505).
	var below int
	const rounds = 4000
	for i := 0; i < rounds; i++ {
		if logUniform(rng, 10, 1000) < 100 {
			below++
		}
	}
	frac := float64(below) / rounds
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("median check failed: frac below geometric mean = %v", frac)
	}
}

func TestRandIntIn(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		v := randIntIn(rng, 3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("randIntIn out of range: %d", v)
		}
	}
	if got := randIntIn(rng, 5, 5); got != 5 {
		t.Fatalf("degenerate = %d", got)
	}
	if got := randIntIn(rng, 5, 2); got != 5 {
		t.Fatalf("inverted = %d", got)
	}
}
