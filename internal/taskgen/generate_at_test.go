package taskgen

import (
	"reflect"
	"testing"

	"hydra/internal/stats"
)

// GenerateAt's contract: draw (shard, draw) is the cell with stream label
// shard<<32|draw — a sharded sweep reproduces exactly what the in-process
// engine would have drawn for the same labeled cell, under either version.
func TestGenerateAtMatchesLabeledStream(t *testing.T) {
	p := DefaultParams(2, 1.2)
	for _, v := range []stats.RNGVersion{stats.RNGv1, stats.RNGv2} {
		want, err := Generate(p, stats.VersionedRNG(v, 9, 3<<32|5))
		if err != nil {
			t.Fatal(err)
		}
		got, err := GenerateAt(p, v, 9, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: GenerateAt(shard=3, draw=5) differs from the labeled engine stream", v)
		}
	}
}

// Distinct shards own distinct streams: the same draw number on two shards
// must not produce the same workload (that would mean shards duplicate work),
// and v1 vs v2 must disagree (the version really routes the generator).
func TestGenerateAtShardAndVersionSeparation(t *testing.T) {
	p := DefaultParams(2, 1.2)
	a, err := GenerateAt(p, stats.RNGv2, 9, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateAt(p, stats.RNGv2, 9, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("shards 0 and 1 drew the same workload for draw 0")
	}
	v1, err := GenerateAt(p, stats.RNGv1, 9, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, v1) {
		t.Fatal("v1 and v2 drew the same workload — version not routed")
	}
	// Determinism: the same coordinates reproduce byte-for-byte.
	again, err := GenerateAt(p, stats.RNGv2, 9, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, again) {
		t.Fatal("GenerateAt is not deterministic for fixed coordinates")
	}
}
