package taskgen

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzRandFixedSum drives the simplex sampler with arbitrary shapes and
// checks its two invariants (sum and bounds) whenever it accepts the input.
func FuzzRandFixedSum(f *testing.F) {
	f.Add(int64(1), 5, 2.0)
	f.Add(int64(2), 1, 0.5)
	f.Add(int64(3), 30, 29.9)
	f.Add(int64(4), 7, 0.0)
	f.Fuzz(func(t *testing.T, seed int64, n int, total float64) {
		if n < 1 || n > 200 || math.IsNaN(total) || math.IsInf(total, 0) {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		x, err := RandFixedSum(n, total, 0, 1, rng)
		if err != nil {
			return // out-of-range totals are correctly rejected
		}
		var sum float64
		for _, v := range x {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("value %v out of [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-total) > 1e-6*(1+math.Abs(total)) {
			t.Fatalf("sum %v != %v", sum, total)
		}
	})
}

// FuzzGenerate checks the workload generator never emits an invalid taskset.
func FuzzGenerate(f *testing.F) {
	f.Add(int64(1), 2, 1.0)
	f.Add(int64(2), 8, 7.5)
	f.Fuzz(func(t *testing.T, seed int64, m int, util float64) {
		if m < 1 || m > 16 || !(util > 0) || util > float64(m) || math.IsNaN(util) {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		w, err := Generate(DefaultParams(m, util), rng)
		if err != nil {
			return
		}
		if len(w.RT) == 0 {
			t.Fatal("generated workload without RT tasks")
		}
		got := w.TotalUtilization()
		if math.Abs(got-util) > 1e-6*(1+util) {
			t.Fatalf("utilization %v != target %v", got, util)
		}
	})
}
