package partition

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hydra/internal/rts"
)

func mkTasks(utils []float64) []rts.RTTask {
	tasks := make([]rts.RTTask, len(utils))
	for i, u := range utils {
		period := 100.0
		tasks[i] = rts.NewRTTask("t", u*period, period)
	}
	return tasks
}

func TestHeuristicString(t *testing.T) {
	for h, want := range map[Heuristic]string{
		FirstFit: "first-fit", BestFit: "best-fit",
		WorstFit: "worst-fit", NextFit: "next-fit",
		Heuristic(9): "heuristic(9)",
	} {
		if h.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(h), h.String(), want)
		}
	}
}

func TestPartitionValidatesInput(t *testing.T) {
	if _, err := PartitionRT(mkTasks([]float64{0.5}), 0, BestFit); err == nil {
		t.Fatal("m=0 must error")
	}
	bad := []rts.RTTask{{Name: "bad", C: -1, T: 10, D: 10}}
	if _, err := PartitionRT(bad, 2, BestFit); err == nil {
		t.Fatal("invalid task must error")
	}
	if _, err := PartitionRT(mkTasks([]float64{0.5}), 1, Heuristic(42)); err == nil {
		t.Fatal("unknown heuristic must error")
	}
}

func TestAllHeuristicsPartitionLightLoad(t *testing.T) {
	tasks := mkTasks([]float64{0.3, 0.3, 0.3, 0.3})
	for _, h := range []Heuristic{FirstFit, BestFit, WorstFit, NextFit} {
		p, err := PartitionRT(tasks, 2, h)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if err := p.Validate(tasks); err != nil {
			t.Fatalf("%v: invalid partition: %v", h, err)
		}
	}
}

func TestBestFitPacksTightly(t *testing.T) {
	// Harmonic single-period tasks: RTA admits up to U=1 per core. Best-fit
	// with utilizations 0.6, 0.6, 0.4, 0.4 on 2 cores must pair 0.6+0.4.
	tasks := mkTasks([]float64{0.6, 0.6, 0.4, 0.4})
	p, err := PartitionRT(tasks, 2, BestFit)
	if err != nil {
		t.Fatal(err)
	}
	u := p.Utilizations(tasks)
	for c, uc := range u {
		if uc > 1.0+1e-9 {
			t.Fatalf("core %d overloaded: %v", c, uc)
		}
	}
	if u[0] < 0.99 || u[1] < 0.99 {
		t.Fatalf("best-fit should fill both cores to 1.0, got %v", u)
	}
}

func TestWorstFitBalances(t *testing.T) {
	tasks := mkTasks([]float64{0.4, 0.4})
	p, err := PartitionRT(tasks, 2, WorstFit)
	if err != nil {
		t.Fatal(err)
	}
	if p.CoreOf[0] == p.CoreOf[1] {
		t.Fatal("worst-fit should spread two tasks across two cores")
	}
}

func TestFirstFitPrefersLowIndex(t *testing.T) {
	tasks := mkTasks([]float64{0.4, 0.4})
	p, err := PartitionRT(tasks, 4, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if p.CoreOf[0] != 0 || p.CoreOf[1] != 0 {
		t.Fatalf("first-fit should stack on core 0, got %v", p.CoreOf)
	}
}

func TestNextFitAdvances(t *testing.T) {
	tasks := mkTasks([]float64{0.9, 0.9, 0.9})
	p, err := PartitionRT(tasks, 3, NextFit)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range p.CoreOf {
		seen[c] = true
	}
	if len(seen) != 3 {
		t.Fatalf("next-fit should use 3 cores for 3 x 0.9, got %v", p.CoreOf)
	}
}

func TestUnschedulableOverload(t *testing.T) {
	tasks := mkTasks([]float64{0.9, 0.9, 0.9})
	_, err := PartitionRT(tasks, 2, BestFit)
	if !errors.Is(err, ErrUnschedulable) {
		t.Fatalf("err = %v, want ErrUnschedulable", err)
	}
}

func TestCoresAndLoads(t *testing.T) {
	tasks := []rts.RTTask{
		rts.NewRTTask("a", 20, 100),
		rts.NewRTTask("b", 30, 100),
	}
	p := &Partition{M: 2, CoreOf: []int{0, 1}}
	cores := p.Cores(tasks)
	if len(cores[0]) != 1 || cores[0][0].Name != "a" || len(cores[1]) != 1 {
		t.Fatalf("Cores = %+v", cores)
	}
	loads := p.Loads(tasks)
	if loads[0].SumC != 20 || loads[1].SumC != 30 {
		t.Fatalf("Loads = %+v", loads)
	}
	if loads[0].SumU != 0.2 || loads[1].SumU != 0.3 {
		t.Fatalf("Loads U = %+v", loads)
	}
}

func TestValidateCatchesBadPartition(t *testing.T) {
	tasks := mkTasks([]float64{0.9, 0.9})
	p := &Partition{M: 2, CoreOf: []int{0, 0}} // both on one core: overload
	if err := p.Validate(tasks); err == nil {
		t.Fatal("overloaded core must fail validation")
	}
	p2 := &Partition{M: 2, CoreOf: []int{0}}
	if err := p2.Validate(tasks); err == nil {
		t.Fatal("length mismatch must fail validation")
	}
	p3 := &Partition{M: 2, CoreOf: []int{0, 5}}
	if err := p3.Validate(tasks); err == nil {
		t.Fatal("out-of-range core must fail validation")
	}
}

// Property: whenever PartitionRT succeeds, the result passes Validate
// (every core schedulable, all tasks assigned), for all heuristics.
func TestPartitionSoundProperty(t *testing.T) {
	heuristics := []Heuristic{FirstFit, BestFit, WorstFit, NextFit}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(4)
		n := 1 + r.Intn(4*m)
		tasks := make([]rts.RTTask, n)
		for i := range tasks {
			period := 10 + 990*r.Float64()
			u := 0.05 + 0.6*r.Float64()
			tasks[i] = rts.NewRTTask("t", u*period, period)
		}
		h := heuristics[r.Intn(len(heuristics))]
		p, err := PartitionRT(tasks, m, h)
		if err != nil {
			return errors.Is(err, ErrUnschedulable)
		}
		return p.Validate(tasks) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: first-fit succeeds whenever best-fit succeeds on harmonic
// workloads is NOT guaranteed in general; instead check the weaker sound
// property that more cores never hurt: if a heuristic packs on m cores it
// also packs on m+1 cores.
func TestMoreCoresNeverHurtProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(3)
		n := 1 + r.Intn(3*m)
		tasks := make([]rts.RTTask, n)
		for i := range tasks {
			period := 10 + 990*r.Float64()
			u := 0.05 + 0.6*r.Float64()
			tasks[i] = rts.NewRTTask("t", u*period, period)
		}
		_, err := PartitionRT(tasks, m, FirstFit)
		if err != nil {
			return true // nothing to compare
		}
		_, err2 := PartitionRT(tasks, m+1, FirstFit)
		return err2 == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
