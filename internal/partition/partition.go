// Package partition implements multicore partitioning heuristics for the
// real-time tasks (Davis & Burns survey [13]): first-fit, best-fit,
// worst-fit and next-fit over decreasing-utilization task order, each with
// exact response-time-analysis admission on every core. The paper's
// evaluation partitions real-time tasks with best-fit (Sec. IV-B).
package partition

import (
	"errors"
	"fmt"
	"math"

	"hydra/internal/rts"
)

// Heuristic selects a bin-packing rule.
type Heuristic int

const (
	// BestFit assigns to the admitting core with the least remaining
	// capacity (highest utilization) — the paper's choice, and therefore
	// the zero value: configs that leave their heuristic unset get the
	// paper's setup.
	BestFit Heuristic = iota
	// FirstFit assigns each task to the lowest-indexed core that admits it.
	FirstFit
	// WorstFit assigns to the admitting core with the most remaining capacity.
	WorstFit
	// NextFit keeps a moving current core, advancing (cyclically, one lap)
	// when the task does not fit.
	NextFit
)

// String implements fmt.Stringer.
func (h Heuristic) String() string {
	switch h {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	case NextFit:
		return "next-fit"
	default:
		return fmt.Sprintf("heuristic(%d)", int(h))
	}
}

// ParseHeuristic is the inverse of Heuristic.String: it maps the CLI/API
// spelling of a heuristic ("best-fit", ...) to its value. The empty string
// selects the paper's default (BestFit).
func ParseHeuristic(s string) (Heuristic, error) {
	switch s {
	case "", "best-fit":
		return BestFit, nil
	case "first-fit":
		return FirstFit, nil
	case "worst-fit":
		return WorstFit, nil
	case "next-fit":
		return NextFit, nil
	default:
		return 0, fmt.Errorf("partition: unknown heuristic %q (want first-fit, best-fit, worst-fit or next-fit)", s)
	}
}

// ErrUnschedulable is returned when no admissible partition is found.
var ErrUnschedulable = errors.New("partition: no core can admit a task")

// Partition maps every real-time task to a core.
type Partition struct {
	M      int   // number of cores
	CoreOf []int // task index (in the input order) -> core index
}

// Cores groups the tasks by core, preserving input order within a core.
func (p *Partition) Cores(tasks []rts.RTTask) [][]rts.RTTask {
	out := make([][]rts.RTTask, p.M)
	for i, c := range p.CoreOf {
		out[c] = append(out[c], tasks[i])
	}
	return out
}

// Loads returns the Eq. 5 load aggregates (sum C, sum U) per core.
func (p *Partition) Loads(tasks []rts.RTTask) []rts.CoreLoad {
	loads := make([]rts.CoreLoad, p.M)
	for i, c := range p.CoreOf {
		loads[c].AddRT(tasks[i])
	}
	return loads
}

// Utilizations returns per-core total utilization.
func (p *Partition) Utilizations(tasks []rts.RTTask) []float64 {
	u := make([]float64, p.M)
	for i, c := range p.CoreOf {
		u[c] += tasks[i].Utilization()
	}
	return u
}

// PartitionRT partitions the real-time tasks onto m cores with the given
// heuristic. Tasks are considered in decreasing-utilization order (the
// standard companion ordering for these heuristics) and each placement is
// admitted only if the destination core remains schedulable under exact RTA.
// The returned partition indexes tasks in their *input* order.
//
// Admission runs on a pooled rts.AnalysisState: each core's RM-sorted task
// set is maintained incrementally across placements and every admission
// trial re-analyzes only the incoming task plus the tasks it would preempt,
// warm-starting their RTA fixed points from the memoized response times —
// instead of re-sorting and re-iterating the whole core from scratch per
// candidate. Placements and verdicts are identical to the historical
// cold-start implementation.
func PartitionRT(tasks []rts.RTTask, m int, h Heuristic) (*Partition, error) {
	if m <= 0 {
		return nil, fmt.Errorf("partition: need at least one core, got %d", m)
	}
	for i := range tasks {
		if err := tasks[i].Validate(); err != nil {
			return nil, err
		}
	}
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	// Decreasing utilization; ties by input index for determinism.
	sortByUtilDesc(order, tasks)

	st := rts.AcquireAnalysisState(m)
	defer rts.ReleaseAnalysisState(st)
	coreOf := make([]int, len(tasks))
	next := 0 // NextFit cursor
	for _, ti := range order {
		task := tasks[ti]
		chosen, err := ChooseCore(h, m,
			func(c int) bool { return st.TryAddRT(c, task) },
			st.RTUtil,
			&next)
		if err != nil {
			return nil, err
		}
		if chosen < 0 {
			return nil, fmt.Errorf("%w: task %q (U=%.3f) on %d cores with %v",
				ErrUnschedulable, task.Name, task.Utilization(), m, h)
		}
		st.AddRT(chosen, task)
		coreOf[ti] = chosen
	}
	return &Partition{M: m, CoreOf: coreOf}, nil
}

// ChooseCore applies a bin-packing heuristic to one placement decision over
// cores 0..m-1: admits reports whether a core can take the item, util is the
// load metric the fit heuristics compare, and cursor carries the NextFit
// position across calls. It returns -1 when no core admits the item, and an
// error for an unknown heuristic. Both the real-time partitioner and the
// security-task bin-packing baseline route their selection through here so
// tie-breaking stays identical.
func ChooseCore(h Heuristic, m int, admits func(int) bool, util func(int) float64, cursor *int) (int, error) {
	chosen := -1
	switch h {
	case FirstFit:
		for c := 0; c < m; c++ {
			if admits(c) {
				chosen = c
				break
			}
		}
	case BestFit:
		bestU := -1.0
		for c := 0; c < m; c++ {
			if admits(c) && util(c) > bestU {
				bestU = util(c)
				chosen = c
			}
		}
	case WorstFit:
		bestU := math.Inf(1)
		for c := 0; c < m; c++ {
			if admits(c) && util(c) < bestU {
				bestU = util(c)
				chosen = c
			}
		}
	case NextFit:
		for tries := 0; tries < m; tries++ {
			c := (*cursor + tries) % m
			if admits(c) {
				chosen = c
				*cursor = c
				break
			}
		}
	default:
		return -1, fmt.Errorf("partition: unknown heuristic %v", h)
	}
	return chosen, nil
}

// sortByUtilDesc sorts the index slice by decreasing task utilization,
// breaking ties by index (stable, deterministic).
func sortByUtilDesc(order []int, tasks []rts.RTTask) {
	// Insertion sort keeps the dependency surface minimal and is plenty fast
	// for the taskset sizes of the paper's evaluation (<= 10M tasks).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			ua, ub := tasks[a].Utilization(), tasks[b].Utilization()
			if ua > ub || (ua == ub && a < b) {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
}

// Validate checks internal consistency of a partition against a taskset.
func (p *Partition) Validate(tasks []rts.RTTask) error {
	if len(p.CoreOf) != len(tasks) {
		return fmt.Errorf("partition: covers %d tasks, taskset has %d", len(p.CoreOf), len(tasks))
	}
	for i, c := range p.CoreOf {
		if c < 0 || c >= p.M {
			return fmt.Errorf("partition: task %d assigned to invalid core %d of %d", i, c, p.M)
		}
	}
	for c, core := range p.Cores(tasks) {
		if !rts.CoreSchedulable(core) {
			return fmt.Errorf("partition: core %d is not schedulable", c)
		}
	}
	return nil
}
