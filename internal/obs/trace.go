package obs

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records head-sampled request traces into a bounded ring.
//
// Sampling is decided once, up front (head sampling): every Nth request gets
// a *Trace, every other request gets nil, and a nil *Trace makes every span
// method a no-op nil check — the contract that keeps the steady-state
// serving path allocation-free when tracing is off (SetSample(0)).
//
// A Trace is owned by one goroutine (the request handler); the ring and the
// sampling counter are safe for concurrent use across requests.
type Tracer struct {
	every   atomic.Int64  // sample 1 in N; 0 = off
	tick    atomic.Uint64 // head-sampling counter
	ids     atomic.Uint64 // request-id sequence
	idBase  string        // per-process prefix so ids from different runs never collide
	sampled atomic.Uint64 // traces started
	dropped atomic.Uint64 // finished traces evicted from the ring unread

	mu   sync.Mutex
	ring []*Trace // completed traces; next points at the oldest slot
	next int
	n    int
}

// DefaultTraceRing bounds the completed-trace ring when the configuration
// leaves it unset.
const DefaultTraceRing = 256

// NewTracer builds a tracer whose completed-trace ring holds up to ringSize
// traces (zero or negative selects DefaultTraceRing). Sampling starts off;
// enable with SetSample.
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultTraceRing
	}
	return &Tracer{
		ring:   make([]*Trace, ringSize),
		idBase: fmt.Sprintf("%06x%04x", time.Now().UnixNano()&0xffffff, os.Getpid()&0xffff),
	}
}

// SetSample sets head sampling to one trace per n requests: 0 disables, 1
// traces everything.
func (t *Tracer) SetSample(n int) {
	if n < 0 {
		n = 0
	}
	t.every.Store(int64(n))
}

// Sample returns the current 1-in-N sampling rate (0 = off).
func (t *Tracer) Sample() int { return int(t.every.Load()) }

// Stats reports how many traces were started and how many completed traces
// were evicted from the ring before anyone read them.
func (t *Tracer) Stats() (sampled, dropped uint64) {
	return t.sampled.Load(), t.dropped.Load()
}

// Start begins a trace for one request when the head sampler selects it,
// returning nil otherwise (and always, cheaply, when sampling is off).
// requestID is the caller-provided id to honor (e.g. an X-Request-ID header);
// empty generates one. The root span is the route.
func (t *Tracer) Start(route, requestID string) *Trace {
	n := t.every.Load()
	if n <= 0 {
		return nil
	}
	if n > 1 && t.tick.Add(1)%uint64(n) != 0 {
		return nil
	}
	t.sampled.Add(1)
	if requestID == "" {
		requestID = fmt.Sprintf("%s-%06d", t.idBase, t.ids.Add(1))
	}
	tr := &Trace{
		tracer: t,
		id:     requestID,
		route:  route,
		start:  time.Now(),
		spans:  make([]span, 1, 8),
	}
	tr.spans[0] = span{name: route, parent: -1, start: tr.start}
	return tr
}

// push records a completed trace, evicting the oldest when the ring is full.
func (t *Tracer) push(tr *Trace) {
	t.mu.Lock()
	if t.ring[t.next] != nil {
		t.dropped.Add(1)
	}
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// span is one recorded stage.
type span struct {
	name   string
	parent int32
	start  time.Time
	dur    time.Duration
}

// Trace is one sampled request's span tree under construction. All methods
// are nil-safe: a nil receiver (the unsampled case) is a no-op.
type Trace struct {
	tracer *Tracer
	id     string
	route  string
	start  time.Time
	dur    time.Duration
	spans  []span
	cur    int32 // index of the currently open span (parent for StartSpan)
}

// ID returns the trace's request id ("" for a nil trace).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// StartSpan opens a child span of the innermost open span. End it with
// Span.End; mis-nested or unclosed spans degrade to zero durations, never
// corruption.
func (tr *Trace) StartSpan(name string) Span {
	if tr == nil {
		return Span{}
	}
	idx := int32(len(tr.spans))
	tr.spans = append(tr.spans, span{name: name, parent: tr.cur, start: time.Now()})
	tr.cur = idx
	return Span{tr: tr, idx: idx}
}

// Span is a handle on one open span.
type Span struct {
	tr  *Trace
	idx int32
}

// End closes the span, recording its duration.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	sp := &s.tr.spans[s.idx]
	sp.dur = time.Since(sp.start)
	if s.tr.cur == s.idx {
		s.tr.cur = sp.parent
	}
}

// Annotate renames the root span's route (used when the route is only known
// after Start, e.g. wildcard patterns).
func (tr *Trace) Annotate(route string) {
	if tr == nil {
		return
	}
	tr.route = route
	tr.spans[0].name = route
}

// Finish closes the root span and publishes the trace into the tracer ring.
// The trace must not be used afterwards.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.dur = time.Since(tr.start)
	tr.spans[0].dur = tr.dur
	tr.tracer.push(tr)
}

// SpanJSON is one span in the exported trace tree: its parent's index in the
// spans slice (-1 for the root), its start offset from the trace start, and
// its duration.
type SpanJSON struct {
	Name    string  `json:"name"`
	Parent  int     `json:"parent"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
}

// TraceJSON is one completed trace as served by /v1/debug/traces.
type TraceJSON struct {
	RequestID string     `json:"request_id"`
	Route     string     `json:"route"`
	Start     time.Time  `json:"start"`
	DurMS     float64    `json:"dur_ms"`
	Spans     []SpanJSON `json:"spans"`
}

// Snapshot returns the completed traces at least minDur long, newest first.
func (t *Tracer) Snapshot(minDur time.Duration) []TraceJSON {
	t.mu.Lock()
	traces := make([]*Trace, 0, t.n)
	for i := 0; i < t.n; i++ {
		// next-1 is the newest slot; walk backwards.
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		if tr := t.ring[idx]; tr != nil {
			traces = append(traces, tr)
		}
	}
	t.mu.Unlock()
	out := make([]TraceJSON, 0, len(traces))
	for _, tr := range traces {
		if tr.dur < minDur {
			continue
		}
		tj := TraceJSON{
			RequestID: tr.id,
			Route:     tr.route,
			Start:     tr.start,
			DurMS:     float64(tr.dur) / float64(time.Millisecond),
			Spans:     make([]SpanJSON, len(tr.spans)),
		}
		for i, sp := range tr.spans {
			tj.Spans[i] = SpanJSON{
				Name:    sp.name,
				Parent:  int(sp.parent),
				StartUS: float64(sp.start.Sub(tr.start)) / float64(time.Microsecond),
				DurUS:   float64(sp.dur) / float64(time.Microsecond),
			}
		}
		out = append(out, tj)
	}
	return out
}
