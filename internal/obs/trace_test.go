package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTracerOffIsNil(t *testing.T) {
	tr := NewTracer(8)
	if got := tr.Start("GET /x", ""); got != nil {
		t.Fatal("tracer with sampling off returned a trace")
	}
	// The nil trace must be safe through the whole span API.
	var nilTr *Trace
	sp := nilTr.StartSpan("decode")
	sp.End()
	nilTr.Annotate("route")
	nilTr.Finish()
	if nilTr.ID() != "" {
		t.Fatal("nil trace ID not empty")
	}
}

func TestTraceSpansNest(t *testing.T) {
	tc := NewTracer(8)
	tc.SetSample(1)
	tr := tc.Start("POST /v1/allocate", "req-1")
	if tr == nil {
		t.Fatal("sample=1 did not trace")
	}
	if tr.ID() != "req-1" {
		t.Fatalf("ID = %q, want req-1", tr.ID())
	}
	outer := tr.StartSpan("cache")
	inner := tr.StartSpan("allocate")
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()
	sibling := tr.StartSpan("encode")
	sibling.End()
	tr.Finish()

	traces := tc.Snapshot(0)
	if len(traces) != 1 {
		t.Fatalf("snapshot has %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.RequestID != "req-1" || got.Route != "POST /v1/allocate" {
		t.Fatalf("trace header = %+v", got)
	}
	if len(got.Spans) != 4 {
		t.Fatalf("spans = %d, want 4 (root, cache, allocate, encode)", len(got.Spans))
	}
	// Root, then cache under root, allocate under cache, encode under root.
	wantParents := []int{-1, 0, 1, 0}
	for i, s := range got.Spans {
		if s.Parent != wantParents[i] {
			t.Errorf("span %d (%s) parent = %d, want %d", i, s.Name, s.Parent, wantParents[i])
		}
	}
	if got.Spans[2].DurUS <= 0 || got.DurMS <= 0 {
		t.Errorf("durations not recorded: %+v", got)
	}
}

func TestHeadSampling(t *testing.T) {
	tc := NewTracer(64)
	tc.SetSample(4)
	n := 0
	for i := 0; i < 40; i++ {
		if tr := tc.Start("GET /x", ""); tr != nil {
			tr.Finish()
			n++
		}
	}
	if n != 10 {
		t.Fatalf("1-in-4 sampling over 40 requests traced %d, want 10", n)
	}
	sampled, _ := tc.Stats()
	if sampled != 10 {
		t.Fatalf("Stats sampled = %d, want 10", sampled)
	}
}

func TestRingBoundsAndNewestFirst(t *testing.T) {
	tc := NewTracer(4)
	tc.SetSample(1)
	for i := 0; i < 10; i++ {
		tr := tc.Start("GET /x", fmt.Sprintf("req-%d", i))
		tr.Finish()
	}
	traces := tc.Snapshot(0)
	if len(traces) != 4 {
		t.Fatalf("ring holds %d, want 4", len(traces))
	}
	for i, want := range []string{"req-9", "req-8", "req-7", "req-6"} {
		if traces[i].RequestID != want {
			t.Errorf("trace %d = %s, want %s", i, traces[i].RequestID, want)
		}
	}
	_, dropped := tc.Stats()
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
}

func TestSnapshotMinDuration(t *testing.T) {
	tc := NewTracer(8)
	tc.SetSample(1)
	fast := tc.Start("GET /fast", "fast")
	fast.Finish()
	slow := tc.Start("GET /slow", "slow")
	time.Sleep(5 * time.Millisecond)
	slow.Finish()
	traces := tc.Snapshot(2 * time.Millisecond)
	if len(traces) != 1 || traces[0].RequestID != "slow" {
		t.Fatalf("min_ms filter returned %+v, want only slow", traces)
	}
}

// TestTraceRingConcurrent hammers Start/Finish against Snapshot readers
// under the race detector: the ring must stay bounded and every snapshot
// internally consistent.
func TestTraceRingConcurrent(t *testing.T) {
	tc := NewTracer(16)
	tc.SetSample(1)
	const writers, per = 8, 500
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < per; i++ {
				tr := tc.Start("GET /x", "")
				sp := tr.StartSpan("stage")
				sp.End()
				tr.Finish()
			}
		}()
	}
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tr := range tc.Snapshot(0) {
				if len(tr.Spans) != 2 {
					t.Errorf("trace with %d spans, want 2", len(tr.Spans))
					return
				}
			}
		}
	}()
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if got := len(tc.Snapshot(0)); got != 16 {
		t.Fatalf("final ring size %d, want 16", got)
	}
	sampled, dropped := tc.Stats()
	if sampled != writers*per {
		t.Fatalf("sampled = %d, want %d", sampled, writers*per)
	}
	if dropped != sampled-16 {
		t.Fatalf("dropped = %d, want %d", dropped, sampled-16)
	}
}
