package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParsePrometheus reads a text-format exposition back into a flat
// series→value map, keyed exactly as rendered (name plus the literal label
// body, e.g. `hydra_cache_hits_total{stripe="3"}`). It exists for the
// scrape-parse round-trip tests and the CI load smoke: the exposition this
// package writes must survive a parse with no information loss. Duplicate
// series are an error — Prometheus rejects them too.
func ParsePrometheus(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("obs: exposition line %d: no value separator: %q", lineNo, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: bad value %q: %v", lineNo, valStr, err)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("obs: exposition line %d: duplicate series %q", lineNo, key)
		}
		out[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SumSeries sums every parsed series whose name (the part before any '{')
// equals name — the per-stripe → total aggregation the round-trip tests
// assert against /v1/stats.
func SumSeries(series map[string]float64, name string) float64 {
	var sum float64
	for k, v := range series {
		base := k
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if base == name {
			sum += v
		}
	}
	return sum
}
