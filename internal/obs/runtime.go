package obs

import (
	"runtime/metrics"
)

// runtimeSeries maps one runtime/metrics sample to one exported series.
type runtimeSeries struct {
	name    string // exported metric name
	help    string
	src     string // runtime/metrics key
	counter bool   // monotone source → counter, else gauge
}

// runtimeCatalogue is the fixed set of runtime health series the serving
// stack exports. All keys exist since Go 1.20, well under this module's
// minimum toolchain.
var runtimeCatalogue = []runtimeSeries{
	{"hydra_go_goroutines", "Live goroutines.", "/sched/goroutines:goroutines", false},
	{"hydra_go_heap_objects_bytes", "Bytes of live heap objects.", "/memory/classes/heap/objects:bytes", false},
	{"hydra_go_heap_goal_bytes", "Heap size target of the next GC cycle.", "/gc/heap/goal:bytes", false},
	{"hydra_go_mem_total_bytes", "Total memory mapped by the Go runtime.", "/memory/classes/total:bytes", false},
	{"hydra_go_gc_cycles_total", "Completed GC cycles.", "/gc/cycles/total:gc-cycles", true},
	{"hydra_go_heap_allocs_bytes_total", "Cumulative bytes allocated on the heap.", "/gc/heap/allocs:bytes", true},
}

// RegisterRuntimeMetrics exports the runtime health catalogue (goroutines,
// heap, GC) on r. Values are read from runtime/metrics at scrape time.
func RegisterRuntimeMetrics(r *Registry) {
	for _, rs := range runtimeCatalogue {
		src := rs.src
		if rs.counter {
			r.CounterFunc(rs.name, "", rs.help, func() uint64 { return readRuntimeUint(src) })
		} else {
			r.GaugeFunc(rs.name, "", rs.help, func() float64 { return float64(readRuntimeUint(src)) })
		}
	}
}

// readRuntimeUint reads one uint64-valued runtime/metrics sample (0 when the
// key is unknown to this toolchain — scrapes degrade, never fail).
func readRuntimeUint(name string) uint64 {
	sample := []metrics.Sample{{Name: name}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}
