package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", `route="/a"`, "Requests.")
	c2 := r.Counter("test_requests_total", `route="/b"`, "Requests.")
	g := r.Gauge("test_inflight", "", "In-flight requests.")
	r.CounterFunc("test_fn_total", "", "From a closure.", func() uint64 { return 7 })
	r.GaugeFunc("test_gfn", "", "Gauge closure.", func() float64 { return 2.5 })

	c.Inc()
	c.Add(2)
	c2.Inc()
	g.Set(4)
	g.Add(-1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests.\n",
		"# TYPE test_requests_total counter\n",
		"test_requests_total{route=\"/a\"} 3\n",
		"test_requests_total{route=\"/b\"} 1\n",
		"# TYPE test_inflight gauge\n",
		"test_inflight 3\n",
		"test_fn_total 7\n",
		"test_gfn 2.5\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %g, want 56.05", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# TYPE test_lat_seconds histogram\n",
		"test_lat_seconds_bucket{le=\"0.1\"} 1\n",
		"test_lat_seconds_bucket{le=\"1\"} 3\n",
		"test_lat_seconds_bucket{le=\"10\"} 4\n",
		"test_lat_seconds_bucket{le=\"+Inf\"} 5\n",
		"test_lat_seconds_sum 56.05\n",
		"test_lat_seconds_count 5\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
}

func TestConstHistogram(t *testing.T) {
	r := NewRegistry()
	r.ConstHistogram("test_iters", "", "Iterations.", []float64{1, 4},
		func() HistogramSnapshot {
			return HistogramSnapshot{Buckets: []uint64{2, 3, 1}, Sum: 17, Count: 6}
		})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"test_iters_bucket{le=\"1\"} 2\n",
		"test_iters_bucket{le=\"4\"} 5\n",
		"test_iters_bucket{le=\"+Inf\"} 6\n",
		"test_iters_sum 17\n",
		"test_iters_count 6\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x", "", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("registering test_x as a gauge after a counter did not panic")
		}
	}()
	r.Gauge("test_x", "", "X.")
}

func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", `stripe="0"`, "T.")
	b := r.Counter("test_total", `stripe="1"`, "T.")
	h := r.Histogram("test_h", "", "H.", []float64{1})
	a.Add(3)
	b.Add(4)
	h.Observe(0.5)
	h.Observe(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	series, err := ParsePrometheus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := series[`test_total{stripe="0"}`]; got != 3 {
		t.Errorf("stripe 0 = %g, want 3", got)
	}
	if got := SumSeries(series, "test_total"); got != 7 {
		t.Errorf("sum = %g, want 7", got)
	}
	if got := series[`test_h_bucket{le="+Inf"}`]; got != 2 {
		t.Errorf("+Inf bucket = %g, want 2", got)
	}
	if got := series["test_h_count"]; got != 2 {
		t.Errorf("count = %g, want 2", got)
	}
}

func TestParseRejectsDuplicates(t *testing.T) {
	_, err := ParsePrometheus(strings.NewReader("a 1\na 2\n"))
	if err == nil {
		t.Fatal("duplicate series parsed without error")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines and
// checks nothing is lost: bucket sums, count and value sum all agree.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc", "", "C.", []float64{1, 2, 3})
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%4) + 0.5)
			}
		}(g)
	}
	wg.Wait()
	want := uint64(goroutines * per)
	if h.Count() != want {
		t.Fatalf("count = %d, want %d", h.Count(), want)
	}
	snap := h.snapshot()
	var total uint64
	for _, b := range snap.Buckets {
		total += b
	}
	if total != want {
		t.Fatalf("bucket sum = %d, want %d", total, want)
	}
	wantSum := float64(goroutines) * per / 4 * (0.5 + 1.5 + 2.5 + 3.5)
	if math.Abs(snap.Sum-wantSum) > 1e-6 {
		t.Fatalf("sum = %g, want %g", snap.Sum, wantSum)
	}
}

func TestRuntimeMetricsRegister(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	series, err := ParsePrometheus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if series["hydra_go_goroutines"] < 1 {
		t.Errorf("hydra_go_goroutines = %g, want >= 1", series["hydra_go_goroutines"])
	}
	if series["hydra_go_heap_objects_bytes"] <= 0 {
		t.Errorf("hydra_go_heap_objects_bytes = %g, want > 0", series["hydra_go_heap_objects_bytes"])
	}
}
