// Package obs is the stdlib-only observability layer of the serving stack:
// a hand-rolled Prometheus-text-format metrics registry, a lightweight
// request tracer with head sampling and a bounded trace ring, and gauges
// sourced from runtime/metrics. It exists because this module deliberately
// carries no external dependencies (the hydra-vet philosophy): everything a
// standard scrape-and-profile toolchain needs — counters, gauges,
// histograms, span trees, pprof — is served from the standard library.
//
// Design constraints, in order:
//
//   - The hot path must stay allocation-free. Counters and histograms are
//     pre-registered at wiring time and updated with atomic adds only;
//     nothing on the record path locks, formats, or allocates. With tracing
//     disabled a traced code path costs a nil check.
//   - Deterministic-result packages may only feed counters (no clocks) —
//     enforced mechanically by the obsbound analyzer. Timing therefore
//     lives at the service and persistence layers; count-only sources
//     (e.g. rts RTA iteration buckets) are exported into histograms via
//     ConstHistogram snapshots.
//   - Exposition is the Prometheus text format (version 0.0.4): families in
//     registration order, HELP/TYPE comments, histogram buckets cumulative
//     with a +Inf terminal — parseable by any standard scraper, and by this
//     package's own ParsePrometheus (used by the round-trip tests and the
//     CI smoke).
package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// A Counter is a monotone event count, updated lock-free.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// A Gauge is a settable instantaneous value, updated lock-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// A Histogram counts observations into fixed buckets with an exact sum.
// Observe is lock-free and allocation-free; bucket bounds are upper bounds
// (le), with an implicit +Inf terminal bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last = +Inf overflow
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds (the Prometheus base unit).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot reads the buckets (non-cumulative), sum and count. Concurrent
// observers may skew count vs buckets by in-flight updates; Prometheus
// scrape semantics tolerate that.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets: make([]uint64, len(h.counts)),
		Sum:     h.Sum(),
		Count:   h.count.Load(),
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time histogram state: per-bucket counts
// (not cumulative, one per bound plus the +Inf overflow), the value sum, and
// the observation count. ConstHistogram sources return it on every scrape.
type HistogramSnapshot struct {
	Buckets []uint64
	Sum     float64
	Count   uint64
}

// DefLatencyBuckets are the default request-latency bounds in seconds:
// 10 µs to 2.5 s, covering everything from a cache hit to a saturated
// cold-allocation queue.
var DefLatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1, 2.5,
}

// metricKind partitions families by exposition TYPE.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled child of a family. Exactly one of the value sources
// is set.
type series struct {
	labels    string // rendered label pairs without braces, e.g. `route="/v1/allocate"`; empty = unlabeled
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
	constHist func() HistogramSnapshot
	bounds    []float64 // histogram bounds (hist or constHist)
}

// family is one metric name: help, type and its labeled series in
// registration order.
type family struct {
	name, help string
	kind       metricKind
	series     []*series
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration happens at wiring time (it locks);
// recording happens on pre-registered handles (it never locks).
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// familyFor returns (creating if needed) the family, enforcing that a name
// keeps one kind and one help string. Mismatches are programmer errors and
// panic at wiring time.
func (r *Registry) familyFor(name, help string, kind metricKind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.kind, kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

func (f *family) addSeries(s *series) {
	s2 := *s
	f.series = append(f.series, &s2)
}

// Counter registers (or extends) a counter family and returns the handle for
// the given label set. labels is a pre-rendered Prometheus label body
// (`k="v",k2="v2"`), empty for an unlabeled series.
func (r *Registry) Counter(name, labels, help string) *Counter {
	f := r.familyFor(name, help, kindCounter)
	c := &Counter{}
	r.mu.Lock()
	f.addSeries(&series{labels: labels, counter: c})
	r.mu.Unlock()
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge for counters owned elsewhere (cache stripes, job
// manager, rts analysis counters). fn must be monotone for counter semantics
// to hold.
func (r *Registry) CounterFunc(name, labels, help string, fn func() uint64) {
	f := r.familyFor(name, help, kindCounter)
	r.mu.Lock()
	f.addSeries(&series{labels: labels, counterFn: fn})
	r.mu.Unlock()
}

// Gauge registers a settable gauge series and returns its handle.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	f := r.familyFor(name, help, kindGauge)
	g := &Gauge{}
	r.mu.Lock()
	f.addSeries(&series{labels: labels, gauge: g})
	r.mu.Unlock()
	return g
}

// GaugeFunc registers a gauge series read from fn at scrape time.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	f := r.familyFor(name, help, kindGauge)
	r.mu.Lock()
	f.addSeries(&series{labels: labels, gaugeFn: fn})
	r.mu.Unlock()
}

// Histogram registers a histogram series with the given upper bounds (a
// +Inf terminal bucket is implicit) and returns its handle.
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *Histogram {
	f := r.familyFor(name, help, kindHistogram)
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.mu.Lock()
	f.addSeries(&series{labels: labels, hist: h, bounds: bounds})
	r.mu.Unlock()
	return h
}

// ConstHistogram registers a histogram series whose buckets are snapshotted
// from fn at scrape time — the bridge for count-only histograms owned by
// deterministic packages (e.g. the rts RTA iteration buckets), which must
// not import this package's timing surface. fn returns per-bucket counts
// (len(bounds)+1, last = overflow), a sum and a count.
func (r *Registry) ConstHistogram(name, labels, help string, bounds []float64, fn func() HistogramSnapshot) {
	f := r.familyFor(name, help, kindHistogram)
	r.mu.Lock()
	f.addSeries(&series{labels: labels, constHist: fn, bounds: bounds})
	r.mu.Unlock()
}

// formatFloat renders a value the way Prometheus clients do.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in registration order in the text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	var buf []byte
	for _, f := range fams {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.kind.String()...)
		buf = append(buf, '\n')
		r.mu.Lock()
		children := make([]*series, len(f.series))
		copy(children, f.series)
		r.mu.Unlock()
		for _, s := range children {
			switch {
			case s.counter != nil:
				buf = appendSample(buf, f.name, "", s.labels, "", float64(s.counter.Value()))
			case s.counterFn != nil:
				buf = appendSample(buf, f.name, "", s.labels, "", float64(s.counterFn()))
			case s.gauge != nil:
				buf = appendSample(buf, f.name, "", s.labels, "", s.gauge.Value())
			case s.gaugeFn != nil:
				buf = appendSample(buf, f.name, "", s.labels, "", s.gaugeFn())
			default:
				var snap HistogramSnapshot
				if s.hist != nil {
					snap = s.hist.snapshot()
				} else {
					snap = s.constHist()
				}
				buf = appendHistogram(buf, f.name, s.labels, s.bounds, snap)
			}
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendSample renders one `name[suffix]{labels[,extra]} value` line.
func appendSample(buf []byte, name, suffix, labels, extra string, v float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	if labels != "" || extra != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		if labels != "" && extra != "" {
			buf = append(buf, ',')
		}
		buf = append(buf, extra...)
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = append(buf, formatFloat(v)...)
	buf = append(buf, '\n')
	return buf
}

// appendHistogram renders the cumulative _bucket series plus _sum and
// _count. A snapshot with fewer buckets than bounds+1 (a zero-value source)
// renders as all-zero.
func appendHistogram(buf []byte, name, labels string, bounds []float64, snap HistogramSnapshot) []byte {
	var cum uint64
	for i := 0; i <= len(bounds); i++ {
		var n uint64
		if i < len(snap.Buckets) {
			n = snap.Buckets[i]
		}
		cum += n
		le := "+Inf"
		if i < len(bounds) {
			le = formatFloat(bounds[i])
		}
		buf = appendSample(buf, name, "_bucket", labels, `le="`+le+`"`, float64(cum))
	}
	buf = appendSample(buf, name, "_sum", labels, "", snap.Sum)
	buf = appendSample(buf, name, "_count", labels, "", float64(cum))
	return buf
}
