package tasksetio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"hydra/internal/core"
	"hydra/internal/partition"
)

const resultSampleDoc = `{
  "cores": 2,
  "rt_tasks": [
    {"name": "ctl", "wcet_ms": 5, "period_ms": 20},
    {"name": "nav", "wcet_ms": 30, "period_ms": 100}
  ],
  "security_tasks": [
    {"name": "tw", "wcet_ms": 50, "desired_period_ms": 1000, "max_period_ms": 10000},
    {"name": "bro", "wcet_ms": 30, "desired_period_ms": 500, "max_period_ms": 5000}
  ]
}`

func allocateSample(t *testing.T) (*Problem, *core.Result) {
	t.Helper()
	p, err := Decode(strings.NewReader(resultSampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	alloc := core.MustLookup("hydra")
	in, err := BuildInput(p, alloc, partition.BestFit)
	if err != nil {
		t.Fatal(err)
	}
	res := alloc.Allocate(in)
	if !res.Schedulable {
		t.Fatalf("sample taskset must be schedulable: %s", res.Reason)
	}
	return p, res
}

func TestResultRoundTrip(t *testing.T) {
	p, res := allocateSample(t)
	var buf bytes.Buffer
	if err := EncodeResult(&buf, p, res); err != nil {
		t.Fatal(err)
	}
	rj, err := DecodeResult(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	back, err := rj.ToResult(p)
	if err != nil {
		t.Fatal(err)
	}
	// The effective RT partition is carried through the encoding even when
	// the scheme kept the caller's; mirror that for the comparison.
	want := *res
	want.RTPartition = core.EffectiveInput(&core.Input{M: p.M, RT: p.RT, RTPartition: p.RTPartition, Sec: p.Sec}, res).RTPartition
	if !reflect.DeepEqual(back.Assignment, want.Assignment) ||
		!reflect.DeepEqual(back.Periods, want.Periods) ||
		!reflect.DeepEqual(back.Tightness, want.Tightness) ||
		!reflect.DeepEqual(back.RTPartition, want.RTPartition) ||
		back.Scheme != want.Scheme || back.Schedulable != want.Schedulable ||
		back.Cumulative != want.Cumulative {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", back, want)
	}
	// The reconstructed result must still verify against the problem.
	in := &core.Input{M: p.M, RT: p.RT, RTPartition: p.RTPartition, Sec: p.Sec}
	if err := core.Verify(in, back); err != nil {
		t.Fatalf("round-tripped result fails verification: %v", err)
	}
}

func TestResultRoundTripUnschedulable(t *testing.T) {
	p, _ := allocateSample(t)
	res := &core.Result{Schedulable: false, Scheme: "hydra", Reason: "no core admits task tw"}
	var buf bytes.Buffer
	if err := EncodeResult(&buf, p, res); err != nil {
		t.Fatal(err)
	}
	rj, err := DecodeResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := rj.ToResult(p)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schedulable || back.Reason != res.Reason || back.Scheme != "hydra" {
		t.Fatalf("got %+v", back)
	}
}

func TestResultToResultByNameReordering(t *testing.T) {
	p, res := allocateSample(t)
	rj := ResultToJSON(p, res)
	rj.SortTasksCanonical() // "bro" before "tw": different order than input
	back, err := rj.ToResult(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Assignment, res.Assignment) || !reflect.DeepEqual(back.Periods, res.Periods) {
		t.Fatalf("name-keyed reconstruction must be order independent:\ngot  %+v\nwant %+v", back, res)
	}
}

func TestResultToResultErrors(t *testing.T) {
	p, res := allocateSample(t)
	rj := ResultToJSON(p, res)
	rj.Tasks = rj.Tasks[:1]
	if _, err := rj.ToResult(p); err == nil {
		t.Fatal("truncated task list must error")
	}
	rj = ResultToJSON(p, res)
	rj.Tasks[0].Name = "ghost"
	if _, err := rj.ToResult(p); err == nil {
		t.Fatal("unknown task name must error")
	}
	rj = ResultToJSON(p, res)
	rj.RTPartition = rj.RTPartition[:1]
	if _, err := rj.ToResult(p); err == nil {
		t.Fatal("truncated rt partition must error")
	}
}

func TestLoadSharedSeam(t *testing.T) {
	p, err := Load("-", strings.NewReader(resultSampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if p.M != 2 || len(p.RT) != 2 || len(p.Sec) != 2 {
		t.Fatalf("unexpected problem: %+v", p)
	}
	if _, err := Load("/nonexistent/taskset.json", nil); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestBuildInputSelfPartitioningFallback(t *testing.T) {
	// Real-time load that no 2-core partition admits, so partitioning fails;
	// the self-partitioning singlecore scheme must still get an input.
	doc := `{
	  "cores": 2,
	  "rt_tasks": [
	    {"name": "a", "wcet_ms": 90, "period_ms": 100},
	    {"name": "b", "wcet_ms": 90, "period_ms": 100},
	    {"name": "c", "wcet_ms": 90, "period_ms": 100}
	  ],
	  "security_tasks": [
	    {"name": "s", "wcet_ms": 1, "desired_period_ms": 100, "max_period_ms": 200}
	  ]
	}`
	p, err := Decode(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildInput(p, core.MustLookup("hydra"), partition.BestFit); err == nil {
		t.Fatal("hydra on an unpartitionable RT set must error")
	}
	if _, err := BuildInput(p, core.MustLookup("singlecore"), partition.BestFit); err != nil {
		t.Fatalf("singlecore must run on the placeholder partition: %v", err)
	}
}
