package tasksetio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode checks that arbitrary input never panics the decoder and that
// every accepted document survives an encode/decode round trip.
func FuzzDecode(f *testing.F) {
	f.Add(sample)
	f.Add(`{"cores": 1}`)
	f.Add(`{"cores": 3, "rt_tasks": [{"name":"x","wcet_ms":1,"period_ms":2}]}`)
	f.Add(`[]`)
	f.Add(``)
	f.Add(`{"cores": 2, "security_tasks": [{"name":"s","wcet_ms":1,"desired_period_ms":5,"max_period_ms":50}]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		p, err := Decode(strings.NewReader(doc))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Encode(&buf, p); err != nil {
			t.Fatalf("accepted problem failed to encode: %v", err)
		}
		p2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, buf.String())
		}
		if len(p2.RT) != len(p.RT) || len(p2.Sec) != len(p.Sec) || p2.M != p.M {
			t.Fatal("round trip changed the problem shape")
		}
	})
}
