package tasksetio

import (
	"reflect"
	"testing"

	"hydra/internal/rts"
)

func TestCanonicalSortsAndNormalizes(t *testing.T) {
	p := &Problem{
		M: 2,
		RT: []rts.RTTask{
			rts.NewRTTask("nav", 30, 100),
			rts.NewRTTask("ctl", 5, 20),
		},
		RTPartition: []int{1, 0},
		Sec: []rts.SecurityTask{
			{Name: "tw", C: 50, TDes: 1000, TMax: 10000}, // weight 0 => effective 1
			{Name: "bro", C: 30, TDes: 500, TMax: 5000, Weight: 2},
		},
	}
	c := p.Canonical()
	if c.RT[0].Name != "ctl" || c.RT[1].Name != "nav" {
		t.Fatalf("RT not sorted: %+v", c.RT)
	}
	// The fixed partition must follow its tasks through the sort.
	if !reflect.DeepEqual(c.RTPartition, []int{0, 1}) {
		t.Fatalf("partition not permuted with tasks: %v", c.RTPartition)
	}
	if c.Sec[0].Name != "bro" || c.Sec[1].Name != "tw" {
		t.Fatalf("Sec not sorted: %+v", c.Sec)
	}
	if c.Sec[1].Weight != 1 {
		t.Fatalf("default weight not normalized: %+v", c.Sec[1])
	}
	// The original problem is untouched.
	if p.RT[0].Name != "nav" || p.Sec[0].Weight != 0 {
		t.Fatalf("Canonical mutated its receiver: %+v", p)
	}
	// Idempotent, and equal for a permuted equivalent problem.
	if !reflect.DeepEqual(c.Canonical(), c) {
		t.Fatal("Canonical is not idempotent")
	}
	perm := &Problem{
		M:           2,
		RT:          []rts.RTTask{p.RT[1], p.RT[0]},
		RTPartition: []int{0, 1},
		Sec:         []rts.SecurityTask{{Name: "bro", C: 30, TDes: 500, TMax: 5000, Weight: 2}, {Name: "tw", C: 50, TDes: 1000, TMax: 10000, Weight: 1}},
	}
	if !reflect.DeepEqual(perm.Canonical(), c) {
		t.Fatalf("permuted problem canonicalizes differently:\n%+v\nvs\n%+v", perm.Canonical(), c)
	}
}

func TestCanonicalBreaksTiesOnWeightAndPinnedCore(t *testing.T) {
	// Two security tasks identical except for weight: reversing their input
	// order must not change the canonical form.
	sec := func(w1, w2 float64) *Problem {
		return &Problem{
			M: 2,
			Sec: []rts.SecurityTask{
				{Name: "s", C: 1, TDes: 10, TMax: 20, Weight: w1},
				{Name: "s", C: 1, TDes: 10, TMax: 20, Weight: w2},
			},
		}
	}
	if !reflect.DeepEqual(sec(2, 3).Canonical(), sec(3, 2).Canonical()) {
		t.Fatal("security weight is not part of the canonical order")
	}
	// Two identical RT tasks pinned to different cores: reversing tasks and
	// partition together must canonicalize equally.
	rt := func(c1, c2 int) *Problem {
		return &Problem{
			M:           2,
			RT:          []rts.RTTask{rts.NewRTTask("t", 1, 10), rts.NewRTTask("t", 1, 10)},
			RTPartition: []int{c1, c2},
		}
	}
	if !reflect.DeepEqual(rt(0, 1).Canonical(), rt(1, 0).Canonical()) {
		t.Fatal("pinned core is not part of the canonical order")
	}
}
