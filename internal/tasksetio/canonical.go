package tasksetio

import "sort"

// Canonical returns a copy of the problem in canonical form: real-time and
// security tasks sorted by (name, parameters), a fixed partition permuted
// alongside its tasks, and defaulted fields normalized (security weights
// resolve to their effective value, so weight 0 and weight 1 compare equal).
// Two problems describing the same system — regardless of task ordering or
// spelled-out defaults — have identical canonical forms, which is what the
// allocation service hashes for its result cache. Allocating the canonical
// form also makes the answer independent of the ordering the client sent.
func (p *Problem) Canonical() *Problem {
	c := &Problem{M: p.M}

	rtOrder := make([]int, len(p.RT))
	for i := range rtOrder {
		rtOrder[i] = i
	}
	// Pinned core (when a fixed partition exists) is part of a task's
	// identity: two otherwise-identical tasks on different cores must sort
	// deterministically for equivalent documents to canonicalize equally.
	coreOf := func(i int) int {
		if p.RTPartition != nil {
			return p.RTPartition[i]
		}
		return 0
	}
	sort.SliceStable(rtOrder, func(a, b int) bool {
		ia, ib := rtOrder[a], rtOrder[b]
		ta, tb := p.RT[ia], p.RT[ib]
		if ta.Name != tb.Name {
			return ta.Name < tb.Name
		}
		if ta.T != tb.T {
			return ta.T < tb.T
		}
		if ta.C != tb.C {
			return ta.C < tb.C
		}
		if ta.D != tb.D {
			return ta.D < tb.D
		}
		return coreOf(ia) < coreOf(ib)
	})
	for _, i := range rtOrder {
		c.RT = append(c.RT, p.RT[i])
	}
	if p.RTPartition != nil {
		c.RTPartition = make([]int, len(rtOrder))
		for pos, i := range rtOrder {
			c.RTPartition[pos] = p.RTPartition[i]
		}
	}

	secOrder := make([]int, len(p.Sec))
	for i := range secOrder {
		secOrder[i] = i
	}
	sort.SliceStable(secOrder, func(a, b int) bool {
		sa, sb := p.Sec[secOrder[a]], p.Sec[secOrder[b]]
		if sa.Name != sb.Name {
			return sa.Name < sb.Name
		}
		if sa.TMax != sb.TMax {
			return sa.TMax < sb.TMax
		}
		if sa.TDes != sb.TDes {
			return sa.TDes < sb.TDes
		}
		if sa.C != sb.C {
			return sa.C < sb.C
		}
		return sa.EffectiveWeight() < sb.EffectiveWeight()
	})
	for _, i := range secOrder {
		s := p.Sec[i]
		s.Weight = s.EffectiveWeight()
		c.Sec = append(c.Sec, s)
	}
	return c
}
