// Package tasksetio reads and writes taskset problem descriptions as JSON,
// the interchange format of the cmd/hydra tool. A document carries the
// platform size, real-time tasks (optionally with a fixed partition) and
// security tasks.
package tasksetio

import (
	"encoding/json"
	"fmt"
	"io"

	"hydra/internal/partition"
	"hydra/internal/rts"
)

// RTTaskJSON mirrors rts.RTTask in milliseconds-based JSON.
type RTTaskJSON struct {
	Name     string  `json:"name"`
	WCET     float64 `json:"wcet_ms"`
	Period   float64 `json:"period_ms"`
	Deadline float64 `json:"deadline_ms,omitempty"` // defaults to the period
}

// SecurityTaskJSON mirrors rts.SecurityTask.
type SecurityTaskJSON struct {
	Name          string  `json:"name"`
	WCET          float64 `json:"wcet_ms"`
	DesiredPeriod float64 `json:"desired_period_ms"`
	MaxPeriod     float64 `json:"max_period_ms"`
	Weight        float64 `json:"weight,omitempty"`
}

// Document is one allocation problem.
type Document struct {
	Cores         int                `json:"cores"`
	RTTasks       []RTTaskJSON       `json:"rt_tasks"`
	SecurityTasks []SecurityTaskJSON `json:"security_tasks"`
	// RTPartition optionally pins each real-time task to a core; when
	// omitted the consumer partitions with a heuristic.
	RTPartition []int `json:"rt_partition,omitempty"`
}

// Decode parses a document and converts it to model types. It returns the
// platform size, tasks, and the optional fixed partition (nil when absent).
func Decode(r io.Reader) (*Problem, error) {
	var doc Document
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("tasksetio: parse: %w", err)
	}
	return doc.ToProblem()
}

// Problem is the decoded, validated model form of a Document.
type Problem struct {
	M           int
	RT          []rts.RTTask
	Sec         []rts.SecurityTask
	RTPartition []int // nil when the document left partitioning open
}

// ToProblem validates and converts the document.
func (d *Document) ToProblem() (*Problem, error) {
	if d.Cores <= 0 {
		return nil, fmt.Errorf("tasksetio: cores must be positive, got %d", d.Cores)
	}
	p := &Problem{M: d.Cores}
	for _, t := range d.RTTasks {
		deadline := t.Deadline
		if deadline == 0 {
			deadline = t.Period
		}
		p.RT = append(p.RT, rts.RTTask{Name: t.Name, C: t.WCET, T: t.Period, D: deadline})
	}
	for _, s := range d.SecurityTasks {
		p.Sec = append(p.Sec, rts.SecurityTask{
			Name: s.Name, C: s.WCET, TDes: s.DesiredPeriod, TMax: s.MaxPeriod, Weight: s.Weight,
		})
	}
	if err := rts.ValidateAll(p.RT, p.Sec); err != nil {
		return nil, err
	}
	if d.RTPartition != nil {
		if len(d.RTPartition) != len(p.RT) {
			return nil, fmt.Errorf("tasksetio: rt_partition has %d entries for %d tasks", len(d.RTPartition), len(p.RT))
		}
		for i, c := range d.RTPartition {
			if c < 0 || c >= d.Cores {
				return nil, fmt.Errorf("tasksetio: rt_partition[%d] = %d outside [0,%d)", i, c, d.Cores)
			}
		}
		p.RTPartition = append([]int(nil), d.RTPartition...)
	}
	return p, nil
}

// Partition returns the document's fixed partition, or computes one with the
// heuristic when the document left it open.
func (p *Problem) Partition(h partition.Heuristic) ([]int, error) {
	if p.RTPartition != nil {
		return p.RTPartition, nil
	}
	part, err := partition.PartitionRT(p.RT, p.M, h)
	if err != nil {
		return nil, err
	}
	return part.CoreOf, nil
}

// Encode serializes a Problem back to a Document and writes it as indented
// JSON.
func Encode(w io.Writer, p *Problem) error {
	doc := Document{Cores: p.M, RTPartition: p.RTPartition}
	for _, t := range p.RT {
		j := RTTaskJSON{Name: t.Name, WCET: t.C, Period: t.T}
		if t.D != t.T {
			j.Deadline = t.D
		}
		doc.RTTasks = append(doc.RTTasks, j)
	}
	for _, s := range p.Sec {
		doc.SecurityTasks = append(doc.SecurityTasks, SecurityTaskJSON{
			Name: s.Name, WCET: s.C, DesiredPeriod: s.TDes, MaxPeriod: s.TMax, Weight: s.Weight,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}
