package tasksetio

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"hydra/internal/core"
)

// TaskResultJSON is the allocation outcome for one security task: the core it
// was placed on, its adapted period, and the achieved tightness. Accepted is
// per-task so future partial-acceptance schemes keep the same wire format;
// today it equals the result's Schedulable verdict for every task.
type TaskResultJSON struct {
	Name      string  `json:"name"`
	Core      int     `json:"core"`
	PeriodMS  float64 `json:"period_ms"`
	Tightness float64 `json:"tightness"`
	Accepted  bool    `json:"accepted"`
}

// RTPlacementJSON records which core a real-time task ended up on in the
// partition the scheme actually solved against (see core.Result.RTPartition).
type RTPlacementJSON struct {
	Name string `json:"name"`
	Core int    `json:"core"`
}

// ResultJSON is the interchange encoding of a core.Result — the response body
// of the allocation service and the -json output of cmd/hydra. Per-task
// entries carry task names so the document is meaningful independent of the
// ordering of the taskset it was computed from.
type ResultJSON struct {
	Scheme              string            `json:"scheme"`
	Schedulable         bool              `json:"schedulable"`
	Reason              string            `json:"reason,omitempty"`
	CumulativeTightness float64           `json:"cumulative_tightness"`
	Tasks               []TaskResultJSON  `json:"tasks,omitempty"`
	RTPartition         []RTPlacementJSON `json:"rt_partition,omitempty"`
}

// ResultToJSON converts a core.Result (indexed by the input order of the
// problem it solved) to the named wire form. The RT partition recorded is the
// effective one: the result's own when present, else the input's.
func ResultToJSON(p *Problem, res *core.Result) *ResultJSON {
	rj := &ResultJSON{
		Scheme:              res.Scheme,
		Schedulable:         res.Schedulable,
		Reason:              res.Reason,
		CumulativeTightness: res.Cumulative,
	}
	if res.Schedulable {
		for i, s := range p.Sec {
			rj.Tasks = append(rj.Tasks, TaskResultJSON{
				Name:      s.Name,
				Core:      res.Assignment[i],
				PeriodMS:  res.Periods[i],
				Tightness: res.Tightness[i],
				Accepted:  true,
			})
		}
		part := res.RTPartition
		if len(part) != len(p.RT) {
			part = p.RTPartition
		}
		if len(part) == len(p.RT) {
			for i, t := range p.RT {
				rj.RTPartition = append(rj.RTPartition, RTPlacementJSON{Name: t.Name, Core: part[i]})
			}
		}
	}
	return rj
}

// ToResult reconstructs a core.Result aligned with the given problem's task
// order, matching per-task entries by name. Duplicate names are matched
// positionally among equals (stable), so round-tripping any encodable result
// is lossless.
func (rj *ResultJSON) ToResult(p *Problem) (*core.Result, error) {
	res := &core.Result{
		Scheme:      rj.Scheme,
		Schedulable: rj.Schedulable,
		Reason:      rj.Reason,
		Cumulative:  rj.CumulativeTightness,
	}
	if !rj.Schedulable {
		return res, nil
	}
	if len(rj.Tasks) != len(p.Sec) {
		return nil, fmt.Errorf("tasksetio: result covers %d security tasks, problem has %d", len(rj.Tasks), len(p.Sec))
	}
	// Name -> queue of entry indices (stable for duplicates).
	byName := map[string][]int{}
	for i, t := range rj.Tasks {
		byName[t.Name] = append(byName[t.Name], i)
	}
	res.Assignment = make([]int, len(p.Sec))
	res.Periods = make([]float64, len(p.Sec))
	res.Tightness = make([]float64, len(p.Sec))
	for i, s := range p.Sec {
		q := byName[s.Name]
		if len(q) == 0 {
			return nil, fmt.Errorf("tasksetio: result has no entry for security task %q", s.Name)
		}
		e := rj.Tasks[q[0]]
		byName[s.Name] = q[1:]
		res.Assignment[i] = e.Core
		res.Periods[i] = e.PeriodMS
		res.Tightness[i] = e.Tightness
	}
	if len(rj.RTPartition) > 0 {
		if len(rj.RTPartition) != len(p.RT) {
			return nil, fmt.Errorf("tasksetio: result partitions %d real-time tasks, problem has %d", len(rj.RTPartition), len(p.RT))
		}
		rtByName := map[string][]int{}
		for i, t := range rj.RTPartition {
			rtByName[t.Name] = append(rtByName[t.Name], i)
		}
		res.RTPartition = make([]int, len(p.RT))
		for i, t := range p.RT {
			q := rtByName[t.Name]
			if len(q) == 0 {
				return nil, fmt.Errorf("tasksetio: result has no placement for real-time task %q", t.Name)
			}
			res.RTPartition[i] = rj.RTPartition[q[0]].Core
			rtByName[t.Name] = q[1:]
		}
	}
	return res, nil
}

// EncodeResult writes the result as indented JSON.
func EncodeResult(w io.Writer, p *Problem, res *core.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ResultToJSON(p, res))
}

// DecodeResult parses a ResultJSON document.
func DecodeResult(r io.Reader) (*ResultJSON, error) {
	var rj ResultJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rj); err != nil {
		return nil, fmt.Errorf("tasksetio: parse result: %w", err)
	}
	return &rj, nil
}

// SortTasksCanonical sorts the result's per-task entries into the canonical
// name order used by the allocation service, making encodings comparable
// regardless of the originating taskset ordering.
func (rj *ResultJSON) SortTasksCanonical() {
	sort.SliceStable(rj.Tasks, func(a, b int) bool { return rj.Tasks[a].Name < rj.Tasks[b].Name })
	sort.SliceStable(rj.RTPartition, func(a, b int) bool { return rj.RTPartition[a].Name < rj.RTPartition[b].Name })
}
