package tasksetio

import (
	"fmt"
	"io"
	"os"

	"hydra/internal/core"
	"hydra/internal/partition"
)

// Load decodes a taskset document from the named file, or from stdin when
// path is "-" or empty. It is the shared input seam of cmd/hydra,
// cmd/hydra-sim and the allocation service, so all of them parse tasksets
// identically.
func Load(path string, stdin io.Reader) (*Problem, error) {
	var src io.Reader = stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		src = f
	}
	return Decode(src)
}

// BuildInput partitions the problem's real-time tasks (honoring a fixed
// rt_partition in the document, else running heuristic h) and bundles a
// core.Input for the allocator. When no valid partition over all M cores
// exists, schemes that repartition the real-time tasks themselves (see
// core.SelfPartitions) still run against a placeholder partition; everyone
// else gets the partitioning error.
//
// On success with a computed partition, p.RTPartition is filled in, so the
// problem records the real-time placement the allocation was solved against.
func BuildInput(p *Problem, alloc core.Allocator, h partition.Heuristic) (*core.Input, error) {
	part, err := p.Partition(h)
	if err != nil {
		if !core.SelfPartitions(alloc) {
			return nil, fmt.Errorf("partition real-time tasks: %w", err)
		}
		part = make([]int, len(p.RT))
	} else if p.RTPartition == nil {
		p.RTPartition = part
	}
	return core.NewInput(p.M, p.RT, part, p.Sec)
}
