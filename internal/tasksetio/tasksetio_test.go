package tasksetio

import (
	"bytes"
	"strings"
	"testing"

	"hydra/internal/partition"
)

const sample = `{
  "cores": 2,
  "rt_tasks": [
    {"name": "ctl", "wcet_ms": 5, "period_ms": 20},
    {"name": "nav", "wcet_ms": 10, "period_ms": 100, "deadline_ms": 80}
  ],
  "security_tasks": [
    {"name": "tw", "wcet_ms": 50, "desired_period_ms": 1000, "max_period_ms": 10000, "weight": 2}
  ]
}`

func TestDecode(t *testing.T) {
	p, err := Decode(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if p.M != 2 || len(p.RT) != 2 || len(p.Sec) != 1 {
		t.Fatalf("problem = %+v", p)
	}
	if p.RT[0].D != 20 {
		t.Fatalf("implicit deadline not applied: %v", p.RT[0].D)
	}
	if p.RT[1].D != 80 {
		t.Fatalf("explicit deadline lost: %v", p.RT[1].D)
	}
	if p.Sec[0].Weight != 2 {
		t.Fatalf("weight lost: %v", p.Sec[0].Weight)
	}
	if p.RTPartition != nil {
		t.Fatal("no partition given, should be nil")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":         `{`,
		"unknown field":    `{"cores": 2, "bogus": 1}`,
		"zero cores":       `{"cores": 0}`,
		"invalid task":     `{"cores": 1, "rt_tasks": [{"name":"x","wcet_ms":0,"period_ms":10}]}`,
		"partition length": `{"cores": 1, "rt_tasks": [{"name":"x","wcet_ms":1,"period_ms":10}], "rt_partition": [0,0]}`,
		"partition range":  `{"cores": 1, "rt_tasks": [{"name":"x","wcet_ms":1,"period_ms":10}], "rt_partition": [3]}`,
		"invalid sec":      `{"cores": 1, "security_tasks": [{"name":"s","wcet_ms":1,"desired_period_ms":10,"max_period_ms":5}]}`,
	}
	for name, doc := range cases {
		if _, err := Decode(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDecodeFixedPartition(t *testing.T) {
	doc := `{"cores": 2,
	  "rt_tasks": [{"name":"a","wcet_ms":1,"period_ms":10},{"name":"b","wcet_ms":1,"period_ms":10}],
	  "rt_partition": [1, 0]}`
	p, err := Decode(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	part, err := p.Partition(partition.BestFit)
	if err != nil {
		t.Fatal(err)
	}
	if part[0] != 1 || part[1] != 0 {
		t.Fatalf("fixed partition not honoured: %v", part)
	}
}

func TestPartitionComputed(t *testing.T) {
	p, err := Decode(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	part, err := p.Partition(partition.BestFit)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != 2 {
		t.Fatalf("partition = %v", part)
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	p, err := Decode(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatal(err)
	}
	p2, err := Decode(&buf)
	if err != nil {
		t.Fatalf("round-trip decode: %v\n%s", err, buf.String())
	}
	if len(p2.RT) != len(p.RT) || len(p2.Sec) != len(p.Sec) || p2.M != p.M {
		t.Fatalf("round trip changed shape: %+v vs %+v", p2, p)
	}
	if p2.RT[1].D != 80 || p2.Sec[0].Weight != 2 {
		t.Fatal("round trip lost fields")
	}
}
