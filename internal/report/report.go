// Package report renders experiment results as fixed-width text tables and
// CSV, shared by the command-line tools.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; missing cells render empty, extra cells are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, args ...interface{}) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as RFC-4180-ish CSV (quoting cells containing
// commas, quotes or newlines).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = csvEscape(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// csvEscape quotes a cell when needed.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// F formats a float compactly for table cells.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }
