package report

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22")
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("rule: %q", lines[1])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[3], "22") {
		t.Fatalf("rows:\n%s", out)
	}
}

func TestAddRowShapes(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("only")            // short row padded
	tb.AddRow("x", "y", "extra") // long row truncated
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "extra") {
		t.Fatal("extra cell should be dropped")
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("m", "pct")
	tb.AddRowf("%d\t%s", 4, Pct(12.5))
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "12.50%") {
		t.Fatalf("output: %s", sb.String())
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("name", "note")
	tb.AddRow("a", `has "quotes", and comma`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"has ""quotes"", and comma"`) {
		t.Fatalf("csv escaping wrong: %s", out)
	}
	if !strings.HasPrefix(out, "name,note\n") {
		t.Fatalf("csv header wrong: %s", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Fatalf("F = %s", F(1.23456))
	}
	if Pct(50) != "50.00%" {
		t.Fatalf("Pct = %s", Pct(50))
	}
}
