package stats

import (
	"fmt"
	"math/rand"
)

// RNGVersion selects the generator family behind every randomized stream of
// the reproduction — the results_version of a campaign manifest, an
// experiment config, or a figure document. Versioning exists because
// switching generators changes every drawn workload: a version names the
// exact byte stream a (seed, stream) pair produces, so old artifacts replay
// under the generator that produced them while new runs take the faster one.
type RNGVersion int

const (
	// RNGv1 is the historical generator: the SplitMix64-style mix of
	// (seed, stream) fed through math/rand's default lagged-Fibonacci
	// source (SplitRNG). Its Seed call dominates cheap sweep cells.
	RNGv1 RNGVersion = 1
	// RNGv2 is the truly splittable generator: the same (seed, stream)
	// mixing, but the mixed state directly seeds a SplitMix64 Source64 —
	// Split is O(1) with no Seed cost, so per-cell and per-shard stream
	// forking is free.
	RNGv2 RNGVersion = 2
)

// DefaultResultsVersion is the version newly created artifacts (campaigns,
// requests, direct runs) use when their config does not pin one.
const DefaultResultsVersion = RNGv2

// LegacyResultsVersion is the version assumed when a persisted artifact
// carries no results_version: everything written before versioning existed
// drew from the v1 streams, so absence on read means v1.
const LegacyResultsVersion = RNGv1

// Valid reports whether v names a known generator family.
func (v RNGVersion) Valid() bool { return v == RNGv1 || v == RNGv2 }

// String implements fmt.Stringer ("v1", "v2").
func (v RNGVersion) String() string {
	switch v {
	case RNGv1:
		return "v1"
	case RNGv2:
		return "v2"
	}
	return fmt.Sprintf("invalid-results-version(%d)", int(v))
}

// ParseResultsVersion validates an integer results_version from a config,
// manifest, or request. Zero (absent) is not accepted here: the caller
// decides whether absence means LegacyResultsVersion (reading an old
// artifact) or DefaultResultsVersion (creating a new one), so an unknown
// version is always an explicit error and never a silent stream change.
func ParseResultsVersion(v int) (RNGVersion, error) {
	rv := RNGVersion(v)
	if !rv.Valid() {
		return 0, fmt.Errorf("stats: unknown results_version %d (known: %d = math/rand streams, %d = SplitMix64)", v, RNGv1, RNGv2)
	}
	return rv, nil
}

// splitMix64 is a rand.Source64 implementing Steele et al.'s SplitMix64:
// a 64-bit Weyl sequence through an avalanche finalizer. Construction is a
// single integer assignment, which is the whole point — deriving a
// generator per cell or per shard costs nothing.
type splitMix64 struct{ state uint64 }

func (s *splitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitMix64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitMix64) Seed(seed int64) { s.state = uint64(seed) }

// mix64 is the SplitMix64 finalizer used to spread a (seed, stream) pair
// over the state space; it is the same mixing SplitRNG has always applied,
// so the two versions label streams identically and differ only in the
// generator the mixed value seeds.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split derives an independent, deterministic v2 (SplitMix64) generator for
// (seed, stream). Unlike SplitRNG there is no Seed cost: forking a stream
// is O(1), which makes per-cell, per-worker, and per-shard derivation free.
func Split(seed, stream int64) *rand.Rand {
	state := mix64(uint64(seed) ^ (uint64(stream) * 0x9E3779B97F4A7C15))
	return rand.New(&splitMix64{state: state})
}

// VersionedRNG returns the (seed, stream) generator of the given results
// version. Version zero selects v1 — the zero Options value keeps meaning
// the historical streams, so no existing caller's draws move. Other invalid
// versions panic: boundaries (engine options, campaign manifests, request
// decoding) validate with ParseResultsVersion before any RNG is built, so
// reaching here with one is a programming error, not bad input.
func VersionedRNG(v RNGVersion, seed, stream int64) *rand.Rand {
	switch v {
	case 0, RNGv1:
		return SplitRNG(seed, stream)
	case RNGv2:
		return Split(seed, stream)
	}
	panic(fmt.Sprintf("stats: VersionedRNG called with unvalidated %s", v))
}
