// Package stats provides the small statistical toolkit used by the
// evaluation harness: empirical CDFs (Fig. 1's metric), summary statistics,
// and deterministic RNG splitting for reproducible experiments.
package stats

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
)

// ECDF is an empirical cumulative distribution function over observed
// samples, following the paper's definition under Fig. 1:
//
//	F̂(x) = (1/n) * #{ samples <= x }.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples (copied, then sorted).
func NewECDF(samples []float64) *ECDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the sample count.
func (e *ECDF) Len() int { return len(e.sorted) }

// Eval returns F̂(x).
func (e *ECDF) Eval(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	idx := sort.SearchFloat64s(e.sorted, x)
	for idx < len(e.sorted) && e.sorted[idx] == x {
		idx++
	}
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the smallest sample x with F̂(x) >= p, clamping p to
// (0, 1]. It panics on an empty ECDF.
func (e *ECDF) Quantile(p float64) float64 {
	if len(e.sorted) == 0 {
		panic("stats: Quantile of empty ECDF")
	}
	if p <= 0 {
		return e.sorted[0]
	}
	if p > 1 {
		p = 1
	}
	idx := int(p*float64(len(e.sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx]
}

// Mean returns the sample mean (0 for empty).
func (e *ECDF) Mean() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	var s float64
	for _, v := range e.sorted {
		s += v
	}
	return s / float64(len(e.sorted))
}

// Max returns the largest sample (0 for empty).
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[len(e.sorted)-1]
}

// Series samples the ECDF at n+1 evenly spaced points over [0, hi],
// returning (x, F̂(x)) pairs — the plot-ready representation of Fig. 1.
func (e *ECDF) Series(hi float64, n int) [][2]float64 {
	if n < 1 {
		n = 1
	}
	out := make([][2]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		x := hi * float64(i) / float64(n)
		out = append(out, [2]float64{x, e.Eval(x)})
	}
	return out
}

// MarshalJSON encodes the ECDF as its sorted sample array, so results that
// embed an ECDF (Fig. 1 rows, campaign checkpoints) round-trip through JSON
// without loss.
func (e *ECDF) MarshalJSON() ([]byte, error) {
	samples := e.sorted
	if samples == nil {
		samples = []float64{}
	}
	return json.Marshal(samples)
}

// UnmarshalJSON decodes a sample array produced by MarshalJSON.
func (e *ECDF) UnmarshalJSON(data []byte) error {
	var samples []float64
	if err := json.Unmarshal(data, &samples); err != nil {
		return err
	}
	sort.Float64s(samples) // already sorted when written by MarshalJSON
	e.sorted = samples
	return nil
}

// Summary holds basic descriptive statistics.
type Summary struct {
	N              int
	Mean, Min, Max float64
}

// Summarize computes a Summary of the samples.
func Summarize(samples []float64) Summary {
	s := Summary{N: len(samples)}
	if len(samples) == 0 {
		return s
	}
	s.Min, s.Max = samples[0], samples[0]
	for _, v := range samples {
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean /= float64(len(samples))
	return s
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f", s.N, s.Mean, s.Min, s.Max)
}

// SplitRNG derives an independent, deterministic sub-generator from a base
// seed and a stream label, so parallel experiment arms never share state.
func SplitRNG(seed int64, stream int64) *rand.Rand {
	// SplitMix64-style mixing of seed and stream.
	z := uint64(seed) ^ (uint64(stream) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}
