package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2})
	if e.Len() != 3 {
		t.Fatalf("Len = %d", e.Len())
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 1.0 / 3}, {1.5, 1.0 / 3}, {2, 2.0 / 3}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := e.Eval(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Eval(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := e.Mean(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	if got := e.Max(); got != 3 {
		t.Fatalf("Max = %v", got)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.Eval(5) != 0 || e.Mean() != 0 || e.Max() != 0 || e.Len() != 0 {
		t.Fatal("empty ECDF should be all zeros")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile on empty ECDF must panic")
		}
	}()
	e.Quantile(0.5)
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	e := NewECDF(in)
	in[0] = 100
	if e.Max() != 3 {
		t.Fatal("ECDF aliases its input")
	}
}

func TestQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40})
	cases := []struct{ p, want float64 }{
		{0, 10}, {0.25, 10}, {0.26, 20}, {0.5, 20}, {0.75, 30}, {1, 40}, {2, 40},
	}
	for _, tc := range cases {
		if got := e.Quantile(tc.p); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestSeries(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	s := e.Series(4, 4)
	if len(s) != 5 {
		t.Fatalf("series length = %d", len(s))
	}
	if s[0][0] != 0 || s[0][1] != 0 {
		t.Fatalf("series[0] = %v", s[0])
	}
	if s[4][0] != 4 || s[4][1] != 1 {
		t.Fatalf("series[4] = %v", s[4])
	}
	// Monotone non-decreasing.
	for i := 1; i < len(s); i++ {
		if s[i][1] < s[i-1][1] {
			t.Fatalf("series not monotone at %d", i)
		}
	}
	if got := e.Series(4, 0); len(got) != 2 {
		t.Fatalf("n<1 should clamp to 1: %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 2, 6})
	if s.N != 3 || s.Mean != 4 || s.Min != 2 || s.Max != 6 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("String must be non-empty")
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestSplitRNGIndependence(t *testing.T) {
	a := SplitRNG(42, 0)
	b := SplitRNG(42, 1)
	c := SplitRNG(42, 0)
	sameAsC := true
	diffFromB := false
	for i := 0; i < 10; i++ {
		av, bv, cv := a.Float64(), b.Float64(), c.Float64()
		if av != cv {
			sameAsC = false
		}
		if av != bv {
			diffFromB = true
		}
	}
	if !sameAsC {
		t.Fatal("same (seed, stream) must reproduce")
	}
	if !diffFromB {
		t.Fatal("different streams must diverge")
	}
}

// Property: ECDF is a valid CDF — monotone, 0 below min, 1 at and above max,
// and Eval(Quantile(p)) >= p.
func TestECDFValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.NormFloat64() * 10
		}
		e := NewECDF(samples)
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		if e.Eval(sorted[0]-1) != 0 {
			return false
		}
		if e.Eval(sorted[n-1]) != 1 {
			return false
		}
		prev := -1.0
		for i := 0; i < 20; i++ {
			x := sorted[0] + (sorted[n-1]-sorted[0])*float64(i)/19
			v := e.Eval(x)
			if v < prev {
				return false
			}
			prev = v
		}
		for _, p := range []float64{0.1, 0.5, 0.9, 1} {
			if e.Eval(e.Quantile(p)) < p-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
