package stats

import (
	"testing"
)

// TestSplitDeterminism mirrors TestSplitRNGIndependence for the v2
// generator: the same (seed, stream) reproduces the same sequence, and
// different streams diverge.
func TestSplitDeterminism(t *testing.T) {
	a := Split(42, 0)
	b := Split(42, 1)
	c := Split(42, 0)
	var sameAsC, sameAsB int
	for i := 0; i < 100; i++ {
		av, bv, cv := a.Float64(), b.Float64(), c.Float64()
		if av == cv {
			sameAsC++
		}
		if av == bv {
			sameAsB++
		}
	}
	if sameAsC != 100 {
		t.Errorf("same (seed, stream) reproduced only %d/100 draws", sameAsC)
	}
	if sameAsB > 2 {
		t.Errorf("different streams collided on %d/100 draws", sameAsB)
	}
}

// TestSplitStreamIndependence checks that v2 streams are independent in the
// sense the engine relies on: a stream's draws do not depend on whether, or
// in what order, sibling streams are consumed.
func TestSplitStreamIndependence(t *testing.T) {
	// Draw stream 7 alone.
	alone := make([]float64, 50)
	rng := Split(9, 7)
	for i := range alone {
		alone[i] = rng.Float64()
	}
	// Draw streams 0..9 interleaved; stream 7 must see identical values.
	rngs := make(map[int64]func() float64)
	for s := int64(0); s < 10; s++ {
		r := Split(9, s)
		rngs[s] = r.Float64
	}
	for i := range alone {
		for s := int64(9); s >= 0; s-- { // reversed order on purpose
			v := rngs[s]()
			if s == 7 && v != alone[i] {
				t.Fatalf("draw %d of stream 7 changed when siblings were consumed: %v != %v", i, v, alone[i])
			}
		}
	}
}

// TestSplitDiffersFromSplitRNG pins that the version tag is load-bearing:
// v1 and v2 generators for the same (seed, stream) must produce different
// sequences, otherwise results_version would not name anything.
func TestSplitDiffersFromSplitRNG(t *testing.T) {
	v1 := SplitRNG(1, 0)
	v2 := Split(1, 0)
	for i := 0; i < 10; i++ {
		if v1.Float64() != v2.Float64() {
			return
		}
	}
	t.Fatal("v1 and v2 produced identical 10-draw prefixes for (1, 0)")
}

// TestSplitSeedSensitivity checks adjacent seeds and adjacent streams land
// on well-separated states (the finalizer avalanche), not shifted copies.
func TestSplitSeedSensitivity(t *testing.T) {
	base := Split(100, 5)
	seedAdj := Split(101, 5)
	streamAdj := Split(100, 6)
	var collide int
	for i := 0; i < 100; i++ {
		b := base.Float64()
		if b == seedAdj.Float64() {
			collide++
		}
		if b == streamAdj.Float64() {
			collide++
		}
	}
	if collide > 2 {
		t.Errorf("adjacent (seed, stream) generators collided on %d/200 draws", collide)
	}
}

func TestParseResultsVersion(t *testing.T) {
	for _, tc := range []struct {
		in   int
		want RNGVersion
		ok   bool
	}{
		{1, RNGv1, true},
		{2, RNGv2, true},
		{0, 0, false}, // absence is the caller's decision, never parsed
		{3, 0, false},
		{-1, 0, false},
	} {
		got, err := ParseResultsVersion(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseResultsVersion(%d) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseResultsVersion(%d) accepted an unknown version", tc.in)
		}
	}
}

// TestVersionedRNGRouting pins the routing contract: 0 and v1 select the
// historical SplitRNG streams, v2 selects Split, anything else panics
// (boundaries validate before building generators).
func TestVersionedRNGRouting(t *testing.T) {
	if got, want := VersionedRNG(0, 3, 4).Float64(), SplitRNG(3, 4).Float64(); got != want {
		t.Errorf("version 0 did not route to the v1 streams: %v != %v", got, want)
	}
	if got, want := VersionedRNG(RNGv1, 3, 4).Float64(), SplitRNG(3, 4).Float64(); got != want {
		t.Errorf("v1 did not route to SplitRNG: %v != %v", got, want)
	}
	if got, want := VersionedRNG(RNGv2, 3, 4).Float64(), Split(3, 4).Float64(); got != want {
		t.Errorf("v2 did not route to Split: %v != %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("VersionedRNG(7, ...) did not panic")
		}
	}()
	VersionedRNG(7, 0, 0)
}

func TestRNGVersionString(t *testing.T) {
	if RNGv1.String() != "v1" || RNGv2.String() != "v2" {
		t.Errorf("String() = %q, %q; want v1, v2", RNGv1, RNGv2)
	}
	if DefaultResultsVersion != RNGv2 || LegacyResultsVersion != RNGv1 {
		t.Error("default/legacy version constants moved; the create-v2/read-v1 contract depends on them")
	}
}
