package stats

import "testing"

// BenchmarkSplitRNG compares the cost of deriving one per-cell generator
// and drawing a handful of values — the engine's per-cell pattern — under
// v1 (math/rand reseed, whose Seed call dominates cheap cells) and v2
// (SplitMix64 split, O(1) construction). The gap is the per-cell overhead
// results_version 2 removes from every sweep.
func BenchmarkSplitRNG(b *testing.B) {
	const drawsPerCell = 4
	b.Run("v1-reseed", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			rng := SplitRNG(1, int64(i))
			for d := 0; d < drawsPerCell; d++ {
				sink += rng.Float64()
			}
		}
		_ = sink
	})
	b.Run("v2-split", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			rng := Split(1, int64(i))
			for d := 0; d < drawsPerCell; d++ {
				sink += rng.Float64()
			}
		}
		_ = sink
	})
}
