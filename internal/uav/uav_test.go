package uav

import (
	"testing"

	"hydra/internal/rts"
)

func TestRTTasksValid(t *testing.T) {
	tasks := RTTasks()
	if len(tasks) != 6 {
		t.Fatalf("UAV system has 6 real-time tasks, got %d", len(tasks))
	}
	names := map[string]bool{}
	for _, task := range tasks {
		if err := task.Validate(); err != nil {
			t.Fatal(err)
		}
		if names[task.Name] {
			t.Fatalf("duplicate task name %q", task.Name)
		}
		names[task.Name] = true
	}
	for _, want := range []string{"guidance", "slow-navigation", "fast-navigation", "controller", "missile-control", "reconnaissance"} {
		if !names[want] {
			t.Fatalf("missing paper task %q", want)
		}
	}
	// Design constraint: schedulable on one core (for SingleCore at M=2).
	u := rts.TotalRTUtilization(tasks)
	if u >= 1 {
		t.Fatalf("utilization %v >= 1: cannot fit one core", u)
	}
	if !rts.CoreSchedulable(tasks) {
		t.Fatal("UAV taskset must be RM-schedulable on one core")
	}
}

func TestSecurityTasksValid(t *testing.T) {
	infos := SecurityTasks()
	if len(infos) != 6 {
		t.Fatalf("Table I has 6 security tasks, got %d", len(infos))
	}
	var tripwire, bro int
	for _, info := range infos {
		if err := info.Task.Validate(); err != nil {
			t.Fatal(err)
		}
		switch info.Application {
		case "Tripwire":
			tripwire++
		case "Bro":
			bro++
		default:
			t.Fatalf("unknown application %q", info.Application)
		}
		if info.Function == "" {
			t.Fatalf("task %q missing function description", info.Task.Name)
		}
		if info.Task.TMax != 10*info.Task.TDes {
			t.Fatalf("task %q: TMax should be 10x TDes per the evaluation setup", info.Task.Name)
		}
	}
	if tripwire != 5 || bro != 1 {
		t.Fatalf("expected 5 Tripwire + 1 Bro, got %d + %d", tripwire, bro)
	}
}

func TestSecurityTaskSetMatchesInfos(t *testing.T) {
	infos := SecurityTasks()
	set := SecurityTaskSet()
	if len(set) != len(infos) {
		t.Fatalf("lengths differ: %d vs %d", len(set), len(infos))
	}
	for i := range set {
		if set[i] != infos[i].Task {
			t.Fatalf("task %d differs", i)
		}
	}
}
