// Package uav provides the Fig. 1 case study of the paper: the real-time
// taskset of a UAV control system (Atdelzater et al. [18]) plus the security
// application of Table I — five Tripwire integrity-check tasks and one Bro
// network-monitoring task.
//
// Parameter provenance: the paper does not reprint the UAV task table nor
// the WCETs it measured for Tripwire/Bro on the 1 GHz ARM Cortex-A8
// testbed. The values here are representative substitutes, chosen so that
// (a) the UAV workload is schedulable on a single core (total utilization
// ~0.75, required by the SingleCore baseline at M = 2), (b) security WCETs
// are heavyweight file-hash sweeps of hundreds of milliseconds, and (c)
// desired periods are a few seconds with Tmax = 10x Tdes, consistent with
// the <= 50 s x-axis of Fig. 1. Absolute detection times therefore differ
// from the paper; the HYDRA-vs-SingleCore comparison (the figure's point)
// is preserved because both schemes run the identical workload.
package uav

import "hydra/internal/rts"

// RTTasks returns the six UAV control tasks. All deadlines are implicit.
func RTTasks() []rts.RTTask {
	return []rts.RTTask{
		rts.NewRTTask("fast-navigation", 5, 20),    // sensor reads, high rate
		rts.NewRTTask("controller", 10, 50),        // closed-loop control
		rts.NewRTTask("slow-navigation", 10, 100),  // sensor reads, low rate
		rts.NewRTTask("guidance", 20, 200),         // reference trajectory
		rts.NewRTTask("missile-control", 1, 200),   // actuation command path
		rts.NewRTTask("reconnaissance", 100, 1000), // data collection/uplink
	}
}

// SecurityTaskInfo describes one Table-I security task: the schedulable
// parameters plus the application and monitored function for reporting.
type SecurityTaskInfo struct {
	Task        rts.SecurityTask
	Application string // "Tripwire" or "Bro"
	Function    string // what the task checks (Table I wording)
}

// SecurityTasks returns the Table-I security workload in declaration order.
// Priorities follow the paper's rule (smaller TMax = higher priority), so
// the effective priority order is: bro-net, tw-own-binary, tw-dev-kernel,
// tw-config, tw-libraries, tw-executables.
func SecurityTasks() []SecurityTaskInfo {
	return []SecurityTaskInfo{
		{
			Task:        rts.SecurityTask{Name: "tw-own-binary", C: 400, TDes: 2000, TMax: 20000},
			Application: "Tripwire",
			Function:    "compare hash of the security application's own binary",
		},
		{
			Task:        rts.SecurityTask{Name: "tw-executables", C: 900, TDes: 6000, TMax: 60000},
			Application: "Tripwire",
			Function:    "check hashes of file-system binaries (/bin, /sbin)",
		},
		{
			Task:        rts.SecurityTask{Name: "tw-libraries", C: 700, TDes: 5000, TMax: 50000},
			Application: "Tripwire",
			Function:    "check hashes of critical libraries (/lib)",
		},
		{
			Task:        rts.SecurityTask{Name: "tw-dev-kernel", C: 450, TDes: 3000, TMax: 30000},
			Application: "Tripwire",
			Function:    "check hashes of peripherals and kernel info (/dev, /proc)",
		},
		{
			Task:        rts.SecurityTask{Name: "tw-config", C: 400, TDes: 4000, TMax: 40000},
			Application: "Tripwire",
			Function:    "check configuration-file hashes (/etc)",
		},
		{
			Task:        rts.SecurityTask{Name: "bro-net", C: 300, TDes: 1500, TMax: 15000},
			Application: "Bro",
			Function:    "scan the network interface (e.g. en0)",
		},
	}
}

// SecurityTaskSet extracts just the schedulable tasks from SecurityTasks.
func SecurityTaskSet() []rts.SecurityTask {
	infos := SecurityTasks()
	out := make([]rts.SecurityTask, len(infos))
	for i, info := range infos {
		out[i] = info.Task
	}
	return out
}
