package experiments

import (
	"context"
	"encoding/json"
	"reflect"
	"sort"
	"sync"
	"testing"

	"hydra/internal/stats"
)

func TestSpecCatalogue(t *testing.T) {
	names := SpecNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("SpecNames not sorted: %v", names)
	}
	for _, want := range []string{"table1", "fig1", "fig2", "fig3", "ablation", "online"} {
		if _, ok := LookupSpec(want); !ok {
			t.Fatalf("spec %q not registered (have %v)", want, names)
		}
	}
	if _, err := ResolveSpec("bogus"); err == nil {
		t.Fatal("unknown spec must error")
	}
}

func TestSpecConfigStrict(t *testing.T) {
	spec, err := ResolveSpec("fig2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Run(context.Background(), json.RawMessage(`{"Bogus": 1}`), Hooks{}); err == nil {
		t.Fatal("unknown config field must error")
	}
	if _, err := spec.Run(context.Background(), json.RawMessage(`{nope`), Hooks{}); err == nil {
		t.Fatal("malformed config must error")
	}
}

// An omitted M selects the paper's smallest platform on both entry points
// (the spec path and the direct config), like fig3's default.
func TestFig2DefaultM(t *testing.T) {
	got, err := RunFig2(Fig2Config{TasksetsPerPoint: 2, UtilStepFrac: 0.25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunFig2(Fig2Config{M: 2, TasksetsPerPoint: 2, UtilStepFrac: 0.25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("M=0 must default to M=2")
	}
	if _, err := RunFig2(Fig2Config{M: 1, TasksetsPerPoint: 2, UtilStepFrac: 0.25}); err == nil {
		t.Fatal("explicit M=1 must still error")
	}
}

// A spec run with empty hooks must agree with the direct driver call.
func TestSpecMatchesDirectDriver(t *testing.T) {
	spec, err := ResolveSpec("fig2")
	if err != nil {
		t.Fatal(err)
	}
	got, err := spec.Run(context.Background(), json.RawMessage(`{"M": 2, "TasksetsPerPoint": 3, "UtilStepFrac": 0.25, "Seed": 7}`), Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunFig2(Fig2Config{M: 2, TasksetsPerPoint: 3, UtilStepFrac: 0.25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := got.(*Fig2Result)
	if !ok {
		t.Fatalf("spec result is %T, want *Fig2Result", got)
	}
	if res.ResultsVersion != int(stats.DefaultResultsVersion) {
		t.Fatalf("spec result records results_version %d, want the default %d", res.ResultsVersion, stats.DefaultResultsVersion)
	}
	if !reflect.DeepEqual(res.Points, want) {
		t.Fatalf("spec result differs from direct driver:\n%+v\nvs\n%+v", res.Points, want)
	}
}

// recorder is a Hooks implementation capturing the checkpoint stream.
type recorder struct {
	mu    sync.Mutex
	total int
	cells map[int][]byte
}

func newRecorder() *recorder { return &recorder{cells: map[int][]byte{}} }

func (r *recorder) hooks() Hooks {
	return Hooks{
		Total: func(n int) { r.mu.Lock(); r.total = n; r.mu.Unlock() },
		OnCell: func(idx int, encoded []byte) {
			r.mu.Lock()
			r.cells[idx] = append([]byte(nil), encoded...)
			r.mu.Unlock()
		},
	}
}

// Every spec's checkpoint stream must replay to the byte-identical result:
// run once recording every cell, then run again replaying all of them (no
// cell recomputes) and compare the marshaled results.
func TestSpecCheckpointReplayByteIdentical(t *testing.T) {
	configs := map[string]string{
		"table1":   ``,
		"fig1":     `{"Cores": [2], "Attacks": 40, "Seed": 3}`,
		"fig2":     `{"M": 2, "TasksetsPerPoint": 2, "UtilStepFrac": 0.25, "Seed": 3}`,
		"fig3":     `{"TasksetsPerPoint": 2, "UtilStepFrac": 0.25, "Seed": 3}`,
		"ablation": `{"M": 2, "TasksetsPerCell": 4, "Seed": 3}`,
		"online":   `{"M": 2, "Ops": 30, "SystemsPerCell": 2, "UtilFracs": [0.4], "Seed": 3}`,
	}
	for _, name := range SpecNames() {
		cfg, ok := configs[name]
		if !ok {
			t.Fatalf("no test config for spec %q", name)
		}
		t.Run(name, func(t *testing.T) {
			spec, err := ResolveSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			rec := newRecorder()
			full, err := spec.Run(context.Background(), json.RawMessage(cfg), rec.hooks())
			if err != nil {
				t.Fatal(err)
			}
			if rec.total == 0 || len(rec.cells) != rec.total {
				t.Fatalf("checkpoint stream incomplete: total=%d cells=%d", rec.total, len(rec.cells))
			}
			var recomputed int
			replayed, err := spec.Run(context.Background(), json.RawMessage(cfg), Hooks{
				OnCell: func(idx int, encoded []byte) { recomputed++ },
				Resume: func(idx int) ([]byte, bool) {
					b, ok := rec.cells[idx]
					return b, ok
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if name != "table1" && recomputed != 0 {
				t.Fatalf("%d cells recomputed despite full checkpoint", recomputed)
			}
			a, err := json.Marshal(full)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(replayed)
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Fatalf("replayed result differs from original:\n%s\nvs\n%s", b, a)
			}
		})
	}
}

// A corrupt checkpoint entry is recomputed, not fatal, and determinism makes
// the recomputation byte-identical anyway.
func TestSpecCorruptCheckpointEntryRecomputed(t *testing.T) {
	spec, err := ResolveSpec("fig2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := json.RawMessage(`{"M": 2, "TasksetsPerPoint": 2, "UtilStepFrac": 0.25, "Seed": 3}`)
	rec := newRecorder()
	full, err := spec.Run(context.Background(), cfg, rec.hooks())
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := spec.Run(context.Background(), cfg, Hooks{
		Resume: func(idx int) ([]byte, bool) {
			if idx == 1 {
				return []byte(`{broken`), true
			}
			b, ok := rec.cells[idx]
			return b, ok
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(full)
	b, _ := json.Marshal(replayed)
	if string(a) != string(b) {
		t.Fatal("corrupt entry changed the result")
	}
}
