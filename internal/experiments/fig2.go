package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"hydra/internal/core"
	"hydra/internal/engine"
	"hydra/internal/partition"
	"hydra/internal/rts"
	"hydra/internal/taskgen"
)

// Fig2Config parametrizes the synthetic acceptance-ratio experiment
// (Sec. IV-B.1). Zero values select the paper's setup: utilization swept
// from 0.025M to 0.975M in steps of 0.025M, 250 tasksets per point, HYDRA
// against the SingleCore baseline.
type Fig2Config struct {
	M                int
	TasksetsPerPoint int     // default 250 (paper)
	UtilStepFrac     float64 // default 0.025 (of M)
	Seed             int64
	// Heuristic partitions the real-time tasks of the shared input (zero
	// value: best-fit, the paper's choice). The "singlecore" scheme, which
	// repartitions the RT tasks itself, is rebuilt with this same heuristic
	// so the comparison arms stay apples-to-apples when the heuristic is
	// swept.
	Heuristic partition.Heuristic
	Policy    core.Policy // HYDRA commitment policy; selects the hydra variant when Schemes is empty
	// Schemes selects the allocation schemes by registry name (see
	// core.Names). Default: the HYDRA variant for Policy, then "singlecore".
	// ImprovementPct compares Schemes[0] against Schemes[1].
	Schemes []string
	// Workers bounds the parallel grid workers; 0 selects GOMAXPROCS.
	Workers int
	// ResultsVersion pins the RNG family behind the taskset draws
	// (stats.RNGVersion: 1 = historical math/rand, 2 = SplitMix64). Absent
	// selects the default for new runs; inside a campaign it must match the
	// manifest's pinned version.
	ResultsVersion int `json:"results_version,omitempty"`
}

func (c *Fig2Config) withDefaults() Fig2Config {
	out := *c
	if out.M <= 0 {
		out.M = 2
	}
	if out.TasksetsPerPoint <= 0 {
		out.TasksetsPerPoint = 250
	}
	if out.UtilStepFrac <= 0 {
		out.UtilStepFrac = 0.025
	}
	if len(out.Schemes) == 0 {
		out.Schemes = []string{
			core.NewHydraAllocator(core.HydraOptions{Policy: out.Policy}).Name(),
			"singlecore",
		}
	}
	return out
}

// Fig2Point is one x-position of the figure: a total-utilization level with
// the acceptance counts of every compared scheme.
type Fig2Point struct {
	TotalUtil float64
	Generated int      // tasksets passing the Eq. 1 necessary condition
	Schemes   []string // scheme names, in Fig2Config.Schemes order
	Accepted  []int    // accepted tasksets per scheme, parallel to Schemes
	// ImprovementPct is (delta_0 - delta_1)/delta_0 * 100 for the first two
	// schemes, clamped to [0, 100] when scheme 0 dominates. With the default
	// schemes this is the paper's HYDRA-over-SingleCore improvement. (The
	// paper prints the formula with the subscripts swapped but plots exactly
	// this quantity; see EXPERIMENTS.md.)
	ImprovementPct float64
}

// Ratio returns the acceptance ratio delta of scheme i.
func (p Fig2Point) Ratio(i int) float64 {
	if p.Generated == 0 || i < 0 || i >= len(p.Accepted) {
		return 0
	}
	return float64(p.Accepted[i]) / float64(p.Generated)
}

// HydraRatio returns the acceptance ratio of the first scheme (HYDRA under
// the default configuration).
func (p Fig2Point) HydraRatio() float64 { return p.Ratio(0) }

// SingleRatio returns the acceptance ratio of the second scheme (SingleCore
// under the default configuration).
func (p Fig2Point) SingleRatio() float64 { return p.Ratio(1) }

// RunFig2 reproduces one subplot of Fig. 2 (one M). For every utilization
// level it generates random workloads (Randfixedsum utilizations, paper
// parameter ranges), filters by the Eq. 1 necessary condition, and counts
// how many each scheme schedules. The (level, taskset) grid is evaluated on
// the parallel engine; results are identical for any worker count.
func RunFig2(cfg Fig2Config) ([]Fig2Point, error) {
	return RunFig2Ctx(context.Background(), cfg)
}

// RunFig2Ctx is RunFig2 with cancellation.
func RunFig2Ctx(ctx context.Context, cfg Fig2Config) ([]Fig2Point, error) {
	r, err := runFig2(ctx, cfg, Hooks{})
	if err != nil {
		return nil, err
	}
	return r.Points, nil
}

// Fig2Result is the "fig2" campaign's result document: the
// results_version the draws came from plus the per-utilization points. The
// rest of the config is deliberately not echoed back so results stay
// byte-identical across settings (like Workers) that cannot move a draw.
type Fig2Result struct {
	ResultsVersion int `json:"results_version"`
	Points         []Fig2Point
}

// fig2CellResult is one (utilization level, taskset draw) cell outcome. Its
// fields are exported so campaign checkpoints can round-trip it through JSON.
type fig2CellResult struct {
	Generated bool
	Accepted  []bool
}

// runFig2 is the campaign-hooked driver behind RunFig2Ctx and the "fig2"
// spec.
func runFig2(ctx context.Context, cfg Fig2Config, hooks Hooks) (*Fig2Result, error) {
	c := cfg.withDefaults()
	if c.M < 2 {
		return nil, fmt.Errorf("fig2: M must be >= 2 (SingleCore needs a spare core), got %d", c.M)
	}
	ver, err := resolveResultsVersion("fig2", c.ResultsVersion, hooks)
	if err != nil {
		return nil, err
	}
	c.ResultsVersion = int(ver)
	allocs, err := core.Resolve(c.Schemes...)
	if err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}
	// Rebuild singlecore with the swept heuristic so the comparison arms
	// stay apples-to-apples, and remember which schemes partition the RT
	// tasks themselves — those can run even when the shared M-core
	// partition fails.
	selfPartitions := make([]bool, len(allocs))
	for i, a := range allocs {
		if a.Name() == "singlecore" {
			allocs[i] = core.NewSingleCoreAllocator(c.Heuristic)
		}
		selfPartitions[i] = core.SelfPartitions(allocs[i])
	}

	type cell struct {
		k, t int
		util float64
	}
	mf := float64(c.M)
	steps := int(0.975/c.UtilStepFrac + 1e-9)
	cells := make([]cell, 0, steps*c.TasksetsPerPoint)
	for k := 1; k <= steps; k++ {
		util := c.UtilStepFrac * float64(k) * mf
		for t := 0; t < c.TasksetsPerPoint; t++ {
			cells = append(cells, cell{k: k, t: t, util: util})
		}
	}
	if hooks.Total != nil {
		hooks.Total(len(cells))
	}

	results, err := engine.Run(ctx, cells, func(ctx context.Context, idx int, rng *rand.Rand, cl cell) (fig2CellResult, error) {
		w, err := taskgen.Generate(taskgen.DefaultParams(c.M, cl.util), rng)
		if err != nil {
			return fig2CellResult{}, nil // utilization not splittable at this draw; rare
		}
		if !necessaryCondition(w, c.M) {
			return fig2CellResult{}, nil // trivially unschedulable; excluded per the paper
		}
		out := fig2CellResult{Generated: true, Accepted: make([]bool, len(allocs))}
		part, err := partition.PartitionRT(w.RT, c.M, c.Heuristic)
		if err != nil {
			// The shared M-core partition failed. Partition-dependent schemes
			// reject, but self-partitioning schemes (singlecore repacks onto
			// M-1 cores with exact-RTA admission, where bin-packing anomalies
			// can still succeed) get their shot on a placeholder partition.
			in := &core.Input{M: c.M, RT: w.RT, RTPartition: make([]int, len(w.RT)), Sec: w.Sec}
			for i, a := range allocs {
				if selfPartitions[i] {
					out.Accepted[i] = a.Allocate(in).Schedulable
				}
			}
			return out, nil
		}
		in, err := core.NewInput(c.M, w.RT, part.CoreOf, w.Sec)
		if err != nil {
			return fig2CellResult{}, err
		}
		for i, a := range allocs {
			out.Accepted[i] = a.Allocate(in).Schedulable
		}
		return out, nil
	}, campaignEngineOptions[fig2CellResult](engine.Options{
		Workers: c.Workers,
		Seed:    c.Seed,
		// Stream by (level, draw) so the workload stream is stable under
		// grid reshaping (matching the serial driver's historical streams).
		Stream:         func(idx int) int64 { return int64(cells[idx].k)<<32 | int64(cells[idx].t) },
		ResultsVersion: ver,
	}, hooks))
	if err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}

	points := make([]Fig2Point, 0, steps)
	for k := 1; k <= steps; k++ {
		pt := Fig2Point{
			TotalUtil: c.UtilStepFrac * float64(k) * mf,
			Schemes:   c.Schemes,
			Accepted:  make([]int, len(allocs)),
		}
		for t := 0; t < c.TasksetsPerPoint; t++ {
			r := results[(k-1)*c.TasksetsPerPoint+t]
			if !r.Generated {
				continue
			}
			pt.Generated++
			for i, ok := range r.Accepted {
				if ok {
					pt.Accepted[i]++
				}
			}
		}
		if len(pt.Accepted) >= 2 && pt.Accepted[0] > 0 {
			pt.ImprovementPct = (pt.Ratio(0) - pt.Ratio(1)) / pt.Ratio(0) * 100
			if pt.ImprovementPct < 0 {
				pt.ImprovementPct = 0
			}
		}
		points = append(points, pt)
	}
	return &Fig2Result{ResultsVersion: int(ver), Points: points}, nil
}

// necessaryCondition applies Eq. 1 to the combined workload with security
// tasks at their desired rates (their densest legal configuration).
func necessaryCondition(w *taskgen.Workload, m int) bool {
	all := append([]rts.RTTask(nil), w.RT...)
	for _, s := range w.Sec {
		all = append(all, rts.NewRTTask(s.Name, s.C, s.TDes))
	}
	return rts.NecessaryConditionHolds(all, m)
}
