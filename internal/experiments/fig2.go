package experiments

import (
	"fmt"

	"hydra/internal/core"
	"hydra/internal/partition"
	"hydra/internal/rts"
	"hydra/internal/stats"
	"hydra/internal/taskgen"
)

// Fig2Config parametrizes the synthetic acceptance-ratio experiment
// (Sec. IV-B.1). Zero values select the paper's setup: utilization swept
// from 0.025M to 0.975M in steps of 0.025M, 250 tasksets per point.
type Fig2Config struct {
	M                int
	TasksetsPerPoint int     // default 250 (paper)
	UtilStepFrac     float64 // default 0.025 (of M)
	Seed             int64
	Heuristic        partition.Heuristic // RT partitioning; default best-fit
	Policy           core.Policy         // HYDRA commitment policy ablation
}

func (c *Fig2Config) withDefaults() Fig2Config {
	out := *c
	if out.TasksetsPerPoint <= 0 {
		out.TasksetsPerPoint = 250
	}
	if out.UtilStepFrac <= 0 {
		out.UtilStepFrac = 0.025
	}
	return out
}

// Fig2Point is one x-position of the figure: a total-utilization level with
// the acceptance ratios of both schemes.
type Fig2Point struct {
	TotalUtil      float64
	Generated      int // tasksets passing the Eq. 1 necessary condition
	HydraAccepted  int
	SingleAccepted int
	// ImprovementPct is (delta_HYDRA - delta_SingleCore)/delta_HYDRA * 100,
	// in [0, 100] when HYDRA dominates. (The paper prints the formula with
	// the subscripts swapped but plots exactly this quantity; see
	// EXPERIMENTS.md.)
	ImprovementPct float64
}

// HydraRatio returns delta_HYDRA.
func (p Fig2Point) HydraRatio() float64 {
	if p.Generated == 0 {
		return 0
	}
	return float64(p.HydraAccepted) / float64(p.Generated)
}

// SingleRatio returns delta_SingleCore.
func (p Fig2Point) SingleRatio() float64 {
	if p.Generated == 0 {
		return 0
	}
	return float64(p.SingleAccepted) / float64(p.Generated)
}

// RunFig2 reproduces one subplot of Fig. 2 (one M). For every utilization
// level it generates random workloads (Randfixedsum utilizations, paper
// parameter ranges), filters by the Eq. 1 necessary condition, and counts
// how many each scheme schedules.
func RunFig2(cfg Fig2Config) ([]Fig2Point, error) {
	c := cfg.withDefaults()
	if c.M < 2 {
		return nil, fmt.Errorf("fig2: M must be >= 2 (SingleCore needs a spare core), got %d", c.M)
	}
	var points []Fig2Point
	mf := float64(c.M)
	steps := int(0.975/c.UtilStepFrac + 1e-9)
	for k := 1; k <= steps; k++ {
		util := c.UtilStepFrac * float64(k) * mf
		pt := Fig2Point{TotalUtil: util}
		for t := 0; t < c.TasksetsPerPoint; t++ {
			rng := stats.SplitRNG(c.Seed, int64(k)<<32|int64(t))
			w, err := taskgen.Generate(taskgen.DefaultParams(c.M, util), rng)
			if err != nil {
				continue // utilization not splittable at this draw; rare
			}
			if !necessaryCondition(w, c.M) {
				continue // trivially unschedulable; excluded per the paper
			}
			pt.Generated++
			if hydraAccepts(w, c.M, c.Heuristic, c.Policy) {
				pt.HydraAccepted++
			}
			if singleAccepts(w, c.M, c.Heuristic) {
				pt.SingleAccepted++
			}
		}
		if pt.HydraAccepted > 0 {
			pt.ImprovementPct = (pt.HydraRatio() - pt.SingleRatio()) / pt.HydraRatio() * 100
			if pt.ImprovementPct < 0 {
				pt.ImprovementPct = 0
			}
		}
		points = append(points, pt)
	}
	return points, nil
}

// necessaryCondition applies Eq. 1 to the combined workload with security
// tasks at their desired rates (their densest legal configuration).
func necessaryCondition(w *taskgen.Workload, m int) bool {
	all := append([]rts.RTTask(nil), w.RT...)
	for _, s := range w.Sec {
		all = append(all, rts.NewRTTask(s.Name, s.C, s.TDes))
	}
	return rts.NecessaryConditionHolds(all, m)
}

// hydraAccepts reports whether HYDRA schedules the workload on m cores.
func hydraAccepts(w *taskgen.Workload, m int, h partition.Heuristic, pol core.Policy) bool {
	part, err := partition.PartitionRT(w.RT, m, h)
	if err != nil {
		return false
	}
	in, err := core.NewInput(m, w.RT, part.CoreOf, w.Sec)
	if err != nil {
		return false
	}
	return core.Hydra(in, core.HydraOptions{Policy: pol}).Schedulable
}

// singleAccepts reports whether the SingleCore scheme schedules the workload.
func singleAccepts(w *taskgen.Workload, m int, h partition.Heuristic) bool {
	return core.SingleCore(m, w.RT, w.Sec, h).Schedulable
}
