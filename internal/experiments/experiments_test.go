package experiments

import (
	"reflect"
	"strings"
	"testing"

	"hydra/internal/core"
	"hydra/internal/partition"
	"hydra/internal/rts"
	"hydra/internal/uav"
)

func TestBuildSimSpecs(t *testing.T) {
	rt := []rts.RTTask{
		rts.NewRTTask("fast", 2, 10),
		rts.NewRTTask("slow", 5, 100),
	}
	sec := []rts.SecurityTask{
		{Name: "s0", C: 5, TDes: 200, TMax: 2000},
		{Name: "s1", C: 5, TDes: 300, TMax: 1000},
	}
	in, err := core.NewInput(2, rt, []int{0, 1}, sec)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Hydra(in, core.HydraOptions{})
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	perCore, taskCore, taskIndex, err := BuildSimSpecs(in, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(perCore) != 2 {
		t.Fatalf("cores = %d", len(perCore))
	}
	// Every security task spec must be findable via the returned maps and be
	// in the low-priority band; RT specs in the high band.
	for i := range sec {
		spec := perCore[taskCore[i]][taskIndex[i]]
		if spec.Name != sec[i].Name {
			t.Fatalf("mapping broken for %s: got %s", sec[i].Name, spec.Name)
		}
		if spec.Prio < secPrioBase {
			t.Fatalf("security task %s in RT priority band: %d", spec.Name, spec.Prio)
		}
		if spec.T != res.Periods[i] {
			t.Fatalf("security period mismatch: %v vs %v", spec.T, res.Periods[i])
		}
	}
	for c := range perCore {
		for _, spec := range perCore[c] {
			if spec.Kind == 0 && spec.Prio >= secPrioBase { // KindRT
				t.Fatalf("RT task %s in security band", spec.Name)
			}
		}
	}
	// s1 has smaller TMax: higher security priority than s0.
	var prio0, prio1 int
	for c := range perCore {
		for _, spec := range perCore[c] {
			if spec.Name == "s0" {
				prio0 = spec.Prio
			}
			if spec.Name == "s1" {
				prio1 = spec.Prio
			}
		}
	}
	if prio1 >= prio0 {
		t.Fatalf("s1 (TMax=1000) must outrank s0 (TMax=2000): %d vs %d", prio1, prio0)
	}
	// Unschedulable results must be rejected.
	if _, _, _, err := BuildSimSpecs(in, &core.Result{Schedulable: false}); err == nil {
		t.Fatal("unschedulable result must error")
	}
}

func TestRunFig1SmallScale(t *testing.T) {
	r, err := RunFig1(Fig1Config{Cores: []int{2, 4}, Horizon: 100_000, Attacks: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		hyd, sc := row.Schemes[0], row.Schemes[1]
		if hyd.Misses != 0 || sc.Misses != 0 {
			t.Fatalf("M=%d: deadline misses in simulation: %d/%d", row.M, hyd.Misses, sc.Misses)
		}
		if hyd.MeanDetection <= 0 || sc.MeanDetection <= 0 {
			t.Fatalf("M=%d: zero mean detection", row.M)
		}
		if hyd.Scheme != "hydra" || sc.Scheme != "singlecore" {
			t.Fatalf("M=%d: scheme order broken: %s/%s", row.M, hyd.Scheme, sc.Scheme)
		}
		// The paper's headline: HYDRA detects faster than SingleCore.
		if row.ImprovementPct <= 0 {
			t.Fatalf("M=%d: HYDRA should beat SingleCore, improvement=%v", row.M, row.ImprovementPct)
		}
		// ECDF series sane: last point at the configured range, monotone.
		s := hyd.Series
		if len(s) == 0 || s[len(s)-1][0] != 50_000 {
			t.Fatalf("series range wrong: %v", s[len(s)-1])
		}
		for i := 1; i < len(s); i++ {
			if s[i][1] < s[i-1][1] {
				t.Fatalf("non-monotone ECDF series at %d", i)
			}
		}
	}
}

func TestRunFig1Deterministic(t *testing.T) {
	cfg := Fig1Config{Cores: []int{2}, Horizon: 60_000, Attacks: 100, Seed: 9}
	a, err := RunFig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows[0].Schemes[0].MeanDetection != b.Rows[0].Schemes[0].MeanDetection {
		t.Fatal("same seed must reproduce identical results")
	}
}

func TestRunFig2SmallScale(t *testing.T) {
	pts, err := RunFig2(Fig2Config{M: 2, TasksetsPerPoint: 15, UtilStepFrac: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("points = %d, want 9 (0.1..0.9)", len(pts))
	}
	// Low utilization: both schemes accept everything; improvement 0.
	if pts[0].ImprovementPct != 0 {
		t.Fatalf("lowest utilization should have 0 improvement, got %v", pts[0].ImprovementPct)
	}
	if pts[0].HydraRatio() != 1 || pts[0].SingleRatio() != 1 {
		t.Fatalf("lowest utilization should accept all: %v / %v", pts[0].HydraRatio(), pts[0].SingleRatio())
	}
	// Highest utilization: SingleCore collapses, improvement large.
	last := pts[len(pts)-1]
	if last.ImprovementPct < 50 {
		t.Fatalf("highest utilization improvement = %v, want >= 50", last.ImprovementPct)
	}
	// HYDRA acceptance dominates SingleCore at every point.
	for _, p := range pts {
		if p.Accepted[0] < p.Accepted[1] {
			t.Fatalf("U=%v: HYDRA accepted %d < SingleCore %d", p.TotalUtil, p.Accepted[0], p.Accepted[1])
		}
	}
}

// The tentpole guarantee at the driver level: the full acceptance-ratio
// sweep is byte-identical for 1 worker and 8 workers under the same seed.
func TestRunFig2DeterministicAcrossWorkers(t *testing.T) {
	base := Fig2Config{M: 2, TasksetsPerPoint: 10, UtilStepFrac: 0.15, Seed: 11}
	one := base
	one.Workers = 1
	eight := base
	eight.Workers = 8
	a, err := RunFig2(one)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig2(eight)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("fig2 results differ between 1 and 8 workers")
	}
}

// Schemes are selected by registry name; unknown names fail fast and custom
// scheme lists flow through to the per-point acceptance counts.
func TestRunFig2SchemeSelection(t *testing.T) {
	if _, err := RunFig2(Fig2Config{M: 2, TasksetsPerPoint: 2, UtilStepFrac: 0.3, Schemes: []string{"hydra", "bogus"}}); err == nil {
		t.Fatal("unknown scheme must error")
	}
	pts, err := RunFig2(Fig2Config{
		M: 2, TasksetsPerPoint: 10, UtilStepFrac: 0.3, Seed: 7,
		Schemes: []string{"hydra", "partition-best-fit", "singlecore"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if len(p.Schemes) != 3 || len(p.Accepted) != 3 {
			t.Fatalf("scheme columns missing: %+v", p)
		}
		// Period adaptation dominates the fixed-period bin-packing baseline.
		if p.Accepted[0] < p.Accepted[1] {
			t.Fatalf("U=%v: hydra %d < partition baseline %d", p.TotalUtil, p.Accepted[0], p.Accepted[1])
		}
	}
}

func TestRunFig2RejectsM1(t *testing.T) {
	if _, err := RunFig2(Fig2Config{M: 1}); err == nil {
		t.Fatal("M=1 must error (SingleCore undefined)")
	}
}

func TestRunFig3SmallScale(t *testing.T) {
	pts, err := RunFig3(Fig3Config{TasksetsPerPoint: 8, UtilStepFrac: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Gap must be within [0, 100] and zero at the lowest utilization
	// (paper: no degradation at low/medium utilization).
	for _, p := range pts {
		if p.MeanGapPct < 0 || p.MeanGapPct > 100 || p.MaxGapPct < p.MeanGapPct {
			t.Fatalf("gap out of range: %+v", p)
		}
	}
	if pts[0].MeanGapPct != 0 {
		t.Fatalf("low-utilization gap should be 0, got %v", pts[0].MeanGapPct)
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("Table I must list 6 tasks, got %d", len(rows))
	}
	var tripwire, bro int
	for _, r := range rows {
		switch r.Application {
		case "Tripwire":
			tripwire++
		case "Bro":
			bro++
		default:
			t.Fatalf("unknown application %q", r.Application)
		}
		if r.C <= 0 || r.TDes <= 0 || r.TMax < r.TDes {
			t.Fatalf("invalid parameters in row %+v", r)
		}
	}
	if tripwire != 5 || bro != 1 {
		t.Fatalf("expected 5 Tripwire + 1 Bro, got %d + %d", tripwire, bro)
	}
	text := FormatTable1()
	if !strings.Contains(text, "tw-executables") || !strings.Contains(text, "Bro") {
		t.Fatalf("formatted table incomplete:\n%s", text)
	}
}

func TestUAVWorkloadSchedulableSingleCore(t *testing.T) {
	// The SingleCore baseline at M=2 requires the whole UAV RT workload to
	// fit one core — a documented design constraint of the case study.
	rt := uav.RTTasks()
	if _, err := partition.PartitionRT(rt, 1, partition.BestFit); err != nil {
		t.Fatalf("UAV RT taskset must fit one core: %v", err)
	}
	if err := rts.ValidateAll(rt, uav.SecurityTaskSet()); err != nil {
		t.Fatal(err)
	}
}

func TestRTTasksTotalUtilHelper(t *testing.T) {
	if got := rtTasksTotalUtil(uav.RTTasks()); got <= 0.5 || got >= 1 {
		t.Fatalf("UAV RT utilization = %v, want in (0.5, 1) per the case-study design", got)
	}
}

func TestRunAblation(t *testing.T) {
	cells, err := RunAblation(AblationConfig{M: 2, UtilFrac: 0.7, TasksetsPerCell: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 { // 3 policies x 4 heuristics
		t.Fatalf("cells = %d, want 12", len(cells))
	}
	for _, c := range cells {
		if c.Generated == 0 {
			t.Fatalf("cell %v/%v generated nothing", c.Scheme, c.Heuristic)
		}
		if c.AcceptanceRatio() < 0 || c.AcceptanceRatio() > 1 {
			t.Fatalf("acceptance out of range: %+v", c)
		}
		if c.Accepted > 0 && (c.MeanTightness <= 0 || c.MeanTightness > 1+1e-9) {
			t.Fatalf("tightness out of range: %+v", c)
		}
		if c.NonPreemptive {
			t.Fatalf("non-preemptive cells not requested: %+v", c)
		}
	}
}

func TestRunAblationNonPreemptive(t *testing.T) {
	cells, err := RunAblation(AblationConfig{M: 2, UtilFrac: 0.5, TasksetsPerCell: 5, Seed: 3, NonPreemptiveToo: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 24 { // both modes
		t.Fatalf("cells = %d, want 24", len(cells))
	}
	var sawNP bool
	for _, c := range cells {
		if c.NonPreemptive {
			sawNP = true
		}
	}
	if !sawNP {
		t.Fatal("non-preemptive cells missing")
	}
}

func TestFig1WorstCaseReported(t *testing.T) {
	r, err := RunFig1(Fig1Config{Cores: []int{2}, Horizon: 120_000, Attacks: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	hyd, sc := r.Rows[0].Schemes[0], r.Rows[0].Schemes[1]
	if hyd.WorstCase <= 0 || sc.WorstCase <= 0 {
		t.Fatalf("worst case missing: %v / %v", hyd.WorstCase, sc.WorstCase)
	}
	// Worst case dominates the sampled mean and the sampled maximum.
	if hyd.WorstCase < hyd.ECDF.Max() {
		t.Fatalf("analytic worst case %v below sampled max %v", hyd.WorstCase, hyd.ECDF.Max())
	}
}
