package experiments

import (
	"testing"
)

// zeroLatencies clears the wall-clock fields, leaving only the
// seed-deterministic decision counts.
func zeroLatencies(pts []OnlinePoint) {
	for i := range pts {
		pts[i].IncrementalMeanUS = 0
		pts[i].ColdMeanUS = 0
		pts[i].SpeedupX = 0
	}
}

// TestOnlineChurnDeterministicAcrossWorkers: the churn sweep's admission
// decisions (everything except the measured latencies) are identical for any
// worker count, like every other spec on the engine.
func TestOnlineChurnDeterministicAcrossWorkers(t *testing.T) {
	cfg := OnlineConfig{
		M:              2,
		Schemes:        []string{"hydra", "hydra-least-loaded"},
		UtilFracs:      []float64{0.4, 0.6},
		DepartRates:    []float64{0.3},
		Ops:            60,
		SystemsPerCell: 4,
		Seed:           11,
	}
	cfg.Workers = 1
	one, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	eight, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	zeroLatencies(one)
	zeroLatencies(eight)
	if len(one) != 4 {
		t.Fatalf("got %d points, want 4", len(one))
	}
	for i := range one {
		if one[i] != eight[i] {
			t.Fatalf("point %d differs across worker counts:\n%+v\nvs\n%+v", i, one[i], eight[i])
		}
	}
	// The sweep must actually exercise churn: dynamic admissions, some
	// departures, and at least one live system per point.
	for _, pt := range one {
		if pt.Systems == 0 {
			t.Fatalf("point %+v has no live systems", pt)
		}
		if pt.Attempts == 0 || pt.Admitted == 0 {
			t.Fatalf("point %+v admitted nothing", pt)
		}
		if pt.AcceptanceRatio <= 0 || pt.AcceptanceRatio > 1 {
			t.Fatalf("acceptance ratio %g out of range", pt.AcceptanceRatio)
		}
	}
	var removed int
	for _, pt := range one {
		removed += pt.Removed
	}
	if removed == 0 {
		t.Fatal("no departures happened across the whole sweep")
	}
}

// TestOnlineRejectsUnknownScheme: unknown schemes fail the sweep up front.
func TestOnlineRejectsUnknownScheme(t *testing.T) {
	if _, err := RunOnline(OnlineConfig{Schemes: []string{"bogus"}}); err == nil {
		t.Fatal("unknown scheme must error")
	}
}
