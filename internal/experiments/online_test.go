package experiments

import (
	"testing"
)

// TestOnlineChurnDeterministicAcrossWorkers: the churn sweep's stable section
// (every OnlinePoint field, now free of wall-clock measurements) is identical
// for any worker count, like every other spec on the engine. The wall-clock
// latencies live in the separate Timing section and are only checked for
// shape, never for value.
func TestOnlineChurnDeterministicAcrossWorkers(t *testing.T) {
	cfg := OnlineConfig{
		M:              2,
		Schemes:        []string{"hydra", "hydra-least-loaded"},
		UtilFracs:      []float64{0.4, 0.6},
		DepartRates:    []float64{0.3},
		Ops:            60,
		SystemsPerCell: 4,
		Seed:           11,
	}
	cfg.Workers = 1
	one, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	eight, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(one.Points))
	}
	for i := range one.Points {
		if one.Points[i] != eight.Points[i] {
			t.Fatalf("point %d differs across worker counts:\n%+v\nvs\n%+v", i, one.Points[i], eight.Points[i])
		}
	}
	// The sweep must actually exercise churn: dynamic admissions, some
	// departures, timed cold allocations, and at least one live system per
	// point.
	for _, pt := range one.Points {
		if pt.Systems == 0 {
			t.Fatalf("point %+v has no live systems", pt)
		}
		if pt.Attempts == 0 || pt.Admitted == 0 {
			t.Fatalf("point %+v admitted nothing", pt)
		}
		if pt.AcceptanceRatio <= 0 || pt.AcceptanceRatio > 1 {
			t.Fatalf("acceptance ratio %g out of range", pt.AcceptanceRatio)
		}
		if pt.ColdAllocations == 0 {
			t.Fatalf("point %+v timed no cold allocations", pt)
		}
	}
	var removed int
	for _, pt := range one.Points {
		removed += pt.Removed
	}
	if removed == 0 {
		t.Fatal("no departures happened across the whole sweep")
	}
	// The timing section is index-aligned with Points and carries real
	// measurements (values are machine-relative, so only positivity and
	// identity are asserted).
	if len(one.Timing) != len(one.Points) {
		t.Fatalf("timing section has %d entries for %d points", len(one.Timing), len(one.Points))
	}
	for i, tm := range one.Timing {
		pt := one.Points[i]
		if tm.Scheme != pt.Scheme || tm.TotalUtil != pt.TotalUtil || tm.DepartRate != pt.DepartRate {
			t.Fatalf("timing %d identity mismatch: %+v vs %+v", i, tm, pt)
		}
		if tm.IncrementalMeanUS <= 0 || tm.ColdMeanUS <= 0 || tm.SpeedupX <= 0 {
			t.Fatalf("timing %d has no measurements: %+v", i, tm)
		}
	}
}

// TestOnlineRejectsUnknownScheme: unknown schemes fail the sweep up front.
func TestOnlineRejectsUnknownScheme(t *testing.T) {
	if _, err := RunOnline(OnlineConfig{Schemes: []string{"bogus"}}); err == nil {
		t.Fatal("unknown scheme must error")
	}
}
