package experiments

import (
	"fmt"
	"strings"

	"hydra/internal/uav"
)

// Table1Row is one security task of the paper's Table I with its scheduling
// parameters (the paper lists only task and function; the parameters are the
// case-study substitutes documented in internal/uav).
type Table1Row struct {
	Task        string
	Application string
	Function    string
	C           float64
	TDes        float64
	TMax        float64
}

// Table1 returns the security-task inventory of Table I.
func Table1() []Table1Row {
	infos := uav.SecurityTasks()
	rows := make([]Table1Row, len(infos))
	for i, info := range infos {
		rows[i] = Table1Row{
			Task:        info.Task.Name,
			Application: info.Application,
			Function:    info.Function,
			C:           info.Task.C,
			TDes:        info.Task.TDes,
			TMax:        info.Task.TMax,
		}
	}
	return rows
}

// FormatTable1 renders Table I as fixed-width text.
func FormatTable1() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-9s %9s %10s %10s  %s\n", "Task", "App", "C (ms)", "Tdes (ms)", "Tmax (ms)", "Function")
	for _, r := range Table1() {
		fmt.Fprintf(&sb, "%-16s %-9s %9.0f %10.0f %10.0f  %s\n",
			r.Task, r.Application, r.C, r.TDes, r.TMax, r.Function)
	}
	return sb.String()
}
