package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"hydra/internal/core"
	"hydra/internal/detect"
	"hydra/internal/engine"
	"hydra/internal/partition"
	"hydra/internal/sim"
	"hydra/internal/stats"
	"hydra/internal/uav"
)

// Fig1Config parametrizes the UAV case study (Sec. IV-A). Zero values select
// the paper's setup.
type Fig1Config struct {
	Cores []int // platform sizes; default {2, 4, 8}
	// Schemes selects the compared allocation schemes by registry name (see
	// core.Names); default {"hydra", "singlecore"}. ImprovementPct reports
	// how much faster Schemes[0]'s mean detection is relative to Schemes[1].
	Schemes    []string
	Horizon    sim.Time // observation window; default 500 s
	Attacks    int      // injected attacks per (scheme, M); default 1000
	Seed       int64    // RNG seed for attack sampling
	CDFPoints  int      // resolution of the returned ECDF series; default 50
	CDFRangeMs float64  // x-axis cap of the series; default 50000 ms (paper)
	Workers    int      // parallel grid workers; 0 = GOMAXPROCS
	// ResultsVersion pins the RNG family behind the attack draws
	// (stats.RNGVersion: 1 = historical math/rand, 2 = SplitMix64).
	// Absent selects the default for new runs; inside a campaign it must
	// match the manifest's pinned version. The result document carries the
	// resolved value.
	ResultsVersion int `json:"results_version,omitempty"`
}

func (c *Fig1Config) withDefaults() Fig1Config {
	out := *c
	if len(out.Cores) == 0 {
		out.Cores = []int{2, 4, 8}
	}
	if len(out.Schemes) == 0 {
		out.Schemes = []string{"hydra", "singlecore"}
	}
	if out.Horizon <= 0 {
		out.Horizon = 500_000 // 500 s in ms
	}
	if out.Attacks <= 0 {
		out.Attacks = 1000
	}
	if out.CDFPoints <= 0 {
		out.CDFPoints = 50
	}
	if out.CDFRangeMs <= 0 {
		out.CDFRangeMs = 50_000
	}
	return out
}

// Fig1Scheme is the measured outcome of one allocation scheme at one M.
type Fig1Scheme struct {
	Scheme        string
	Allocation    *core.Result
	MeanDetection float64      // mean detection latency over detected attacks (ms)
	WorstCase     float64      // analytical worst case over ALL attack instants (ms)
	Censored      int          // attacks with no detecting job inside the horizon
	Misses        int          // deadline misses observed in simulation (should be 0)
	ECDF          *stats.ECDF  // raw detection-time distribution
	Series        [][2]float64 // plot-ready (x, F(x)) pairs
}

// Fig1Row compares the configured schemes for one platform size, matching
// one subplot of Fig. 1. Schemes is parallel to Fig1Config.Schemes.
type Fig1Row struct {
	M              int
	Schemes        []Fig1Scheme
	ImprovementPct float64 // (mean_1 - mean_0)/mean_1 * 100 for the first two schemes
}

// Fig1Result is the full figure.
type Fig1Result struct {
	Config Fig1Config
	Rows   []Fig1Row
}

// RunFig1 reproduces Fig. 1: for each platform size, allocate the UAV
// security workload with every configured scheme, simulate the resulting
// schedules over the observation window, inject the *same* random attack
// sequence against all of them (paired comparison), and report
// detection-time ECDFs plus the mean improvement of the first scheme over
// the second. The paper reports ~19.8 % / 27.2 % / 29.8 % faster mean
// detection for HYDRA over SingleCore at 2 / 4 / 8 cores. Platform sizes are
// evaluated in parallel on the engine; results are identical for any worker
// count.
func RunFig1(cfg Fig1Config) (*Fig1Result, error) {
	return RunFig1Ctx(context.Background(), cfg)
}

// RunFig1Ctx is RunFig1 with cancellation.
func RunFig1Ctx(ctx context.Context, cfg Fig1Config) (*Fig1Result, error) {
	return runFig1(ctx, cfg, Hooks{})
}

// runFig1 is the campaign-hooked driver behind RunFig1Ctx and the "fig1"
// spec. One engine cell per platform size; Fig1Row round-trips through JSON
// (including the raw ECDF samples), so checkpointed rows replay losslessly.
func runFig1(ctx context.Context, cfg Fig1Config, hooks Hooks) (*Fig1Result, error) {
	c := cfg.withDefaults()
	ver, err := resolveResultsVersion("fig1", c.ResultsVersion, hooks)
	if err != nil {
		return nil, err
	}
	c.ResultsVersion = int(ver) // the result document records the resolved version
	allocs, err := core.Resolve(c.Schemes...)
	if err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}
	if len(allocs) < 2 {
		return nil, fmt.Errorf("fig1: need at least two schemes to compare, got %d", len(allocs))
	}
	rt := uav.RTTasks()
	sec := uav.SecurityTaskSet()
	if hooks.Total != nil {
		hooks.Total(len(c.Cores))
	}

	rows, err := engine.Run(ctx, c.Cores, func(ctx context.Context, idx int, rng *rand.Rand, m int) (Fig1Row, error) {
		// Identical attack sequence for every scheme: paired comparison.
		attacks := detect.SampleAttacks(rng, c.Attacks, len(sec), c.Horizon, 0.8)

		part, err := core.PartitionForHydra(rt, m, partition.BestFit)
		if err != nil {
			return Fig1Row{}, fmt.Errorf("M=%d: partition RT tasks: %w", m, err)
		}
		in, err := core.NewInput(m, rt, part, sec)
		if err != nil {
			return Fig1Row{}, fmt.Errorf("M=%d: %w", m, err)
		}
		row := Fig1Row{M: m}
		for _, a := range allocs {
			res := a.Allocate(in)
			ms, err := measureScheme(core.EffectiveInput(in, res), res, attacks, c)
			if err != nil {
				return Fig1Row{}, fmt.Errorf("M=%d %s: %w", m, a.Name(), err)
			}
			row.Schemes = append(row.Schemes, *ms)
		}
		if base := row.Schemes[1].MeanDetection; base > 0 {
			row.ImprovementPct = (base - row.Schemes[0].MeanDetection) / base * 100
		}
		return row, nil
	}, campaignEngineOptions[Fig1Row](engine.Options{
		Workers: c.Workers,
		Seed:    c.Seed,
		// Stream by platform size: the attack sequence for a given (seed, M)
		// does not depend on which other sizes are swept.
		Stream:         func(idx int) int64 { return int64(c.Cores[idx]) },
		ResultsVersion: ver,
	}, hooks))
	if err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}
	return &Fig1Result{Config: c, Rows: rows}, nil
}

// measureScheme simulates one allocation and measures the attack campaign.
func measureScheme(in *core.Input, res *core.Result, attacks []detect.Attack, c Fig1Config) (*Fig1Scheme, error) {
	if !res.Schedulable {
		return nil, fmt.Errorf("%s allocation unschedulable: %s", res.Scheme, res.Reason)
	}
	if err := core.Verify(in, res); err != nil {
		return nil, fmt.Errorf("%s allocation failed verification: %w", res.Scheme, err)
	}
	perCore, taskCore, taskIndex, err := BuildSimSpecs(in, res)
	if err != nil {
		return nil, err
	}
	trace, err := sim.SimulateSystem(perCore, c.Horizon)
	if err != nil {
		return nil, err
	}
	campaign, err := detect.NewCampaign(trace, taskCore, taskIndex)
	if err != nil {
		return nil, err
	}
	ds, err := campaign.Run(attacks)
	if err != nil {
		return nil, err
	}
	lats := detect.Latencies(ds)
	e := stats.NewECDF(lats)
	// Analytical worst case: the slowest-detected surface over every
	// possible attack instant, not only the sampled ones.
	var worst float64
	for i := range taskCore {
		jobs := trace.Cores[taskCore[i]].JobsOf(taskIndex[i])
		if w, ok := detect.WorstCaseDetection(jobs); ok && w > worst {
			worst = w
		}
	}
	return &Fig1Scheme{
		Scheme:        res.Scheme,
		Allocation:    res,
		MeanDetection: e.Mean(),
		WorstCase:     worst,
		Censored:      len(ds) - len(lats),
		Misses:        trace.TotalMisses(),
		ECDF:          e,
		Series:        e.Series(c.CDFRangeMs, c.CDFPoints),
	}, nil
}
